# Empty dependencies file for ccdb.
# This may be replaced when dependencies are built.
