
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agg/aggregates.cc" "src/CMakeFiles/ccdb.dir/agg/aggregates.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/agg/aggregates.cc.o.d"
  "/root/repo/src/arith/bigint.cc" "src/CMakeFiles/ccdb.dir/arith/bigint.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/arith/bigint.cc.o.d"
  "/root/repo/src/arith/floatk.cc" "src/CMakeFiles/ccdb.dir/arith/floatk.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/arith/floatk.cc.o.d"
  "/root/repo/src/arith/interval.cc" "src/CMakeFiles/ccdb.dir/arith/interval.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/arith/interval.cc.o.d"
  "/root/repo/src/arith/rational.cc" "src/CMakeFiles/ccdb.dir/arith/rational.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/arith/rational.cc.o.d"
  "/root/repo/src/arith/zsplit.cc" "src/CMakeFiles/ccdb.dir/arith/zsplit.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/arith/zsplit.cc.o.d"
  "/root/repo/src/base/status.cc" "src/CMakeFiles/ccdb.dir/base/status.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/base/status.cc.o.d"
  "/root/repo/src/constraint/atom.cc" "src/CMakeFiles/ccdb.dir/constraint/atom.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/constraint/atom.cc.o.d"
  "/root/repo/src/constraint/formula.cc" "src/CMakeFiles/ccdb.dir/constraint/formula.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/constraint/formula.cc.o.d"
  "/root/repo/src/datalog/datalog.cc" "src/CMakeFiles/ccdb.dir/datalog/datalog.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/datalog/datalog.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/ccdb.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/engine/database.cc.o.d"
  "/root/repo/src/fp/fp_semantics.cc" "src/CMakeFiles/ccdb.dir/fp/fp_semantics.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/fp/fp_semantics.cc.o.d"
  "/root/repo/src/numeric/approx.cc" "src/CMakeFiles/ccdb.dir/numeric/approx.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/numeric/approx.cc.o.d"
  "/root/repo/src/numeric/numerical_eval.cc" "src/CMakeFiles/ccdb.dir/numeric/numerical_eval.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/numeric/numerical_eval.cc.o.d"
  "/root/repo/src/numeric/quadrature.cc" "src/CMakeFiles/ccdb.dir/numeric/quadrature.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/numeric/quadrature.cc.o.d"
  "/root/repo/src/poly/algebraic_number.cc" "src/CMakeFiles/ccdb.dir/poly/algebraic_number.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/poly/algebraic_number.cc.o.d"
  "/root/repo/src/poly/number_field.cc" "src/CMakeFiles/ccdb.dir/poly/number_field.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/poly/number_field.cc.o.d"
  "/root/repo/src/poly/polynomial.cc" "src/CMakeFiles/ccdb.dir/poly/polynomial.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/poly/polynomial.cc.o.d"
  "/root/repo/src/poly/resultant.cc" "src/CMakeFiles/ccdb.dir/poly/resultant.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/poly/resultant.cc.o.d"
  "/root/repo/src/poly/root_isolation.cc" "src/CMakeFiles/ccdb.dir/poly/root_isolation.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/poly/root_isolation.cc.o.d"
  "/root/repo/src/poly/upoly.cc" "src/CMakeFiles/ccdb.dir/poly/upoly.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/poly/upoly.cc.o.d"
  "/root/repo/src/qe/algebraic_point.cc" "src/CMakeFiles/ccdb.dir/qe/algebraic_point.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/qe/algebraic_point.cc.o.d"
  "/root/repo/src/qe/cad.cc" "src/CMakeFiles/ccdb.dir/qe/cad.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/qe/cad.cc.o.d"
  "/root/repo/src/qe/dense_order.cc" "src/CMakeFiles/ccdb.dir/qe/dense_order.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/qe/dense_order.cc.o.d"
  "/root/repo/src/qe/fourier_motzkin.cc" "src/CMakeFiles/ccdb.dir/qe/fourier_motzkin.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/qe/fourier_motzkin.cc.o.d"
  "/root/repo/src/qe/qe.cc" "src/CMakeFiles/ccdb.dir/qe/qe.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/qe/qe.cc.o.d"
  "/root/repo/src/query/ast.cc" "src/CMakeFiles/ccdb.dir/query/ast.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/query/ast.cc.o.d"
  "/root/repo/src/query/calcf.cc" "src/CMakeFiles/ccdb.dir/query/calcf.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/query/calcf.cc.o.d"
  "/root/repo/src/query/lower.cc" "src/CMakeFiles/ccdb.dir/query/lower.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/query/lower.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/ccdb.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/query/parser.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/ccdb.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/ccdb.dir/storage/catalog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
