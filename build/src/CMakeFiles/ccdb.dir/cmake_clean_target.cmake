file(REMOVE_RECURSE
  "libccdb.a"
)
