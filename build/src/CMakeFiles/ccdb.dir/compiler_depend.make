# Empty compiler generated dependencies file for ccdb.
# This may be replaced when dependencies are built.
