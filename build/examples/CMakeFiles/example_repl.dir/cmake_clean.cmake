file(REMOVE_RECURSE
  "CMakeFiles/example_repl.dir/repl.cpp.o"
  "CMakeFiles/example_repl.dir/repl.cpp.o.d"
  "example_repl"
  "example_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
