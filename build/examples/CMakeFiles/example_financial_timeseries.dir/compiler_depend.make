# Empty compiler generated dependencies file for example_financial_timeseries.
# This may be replaced when dependencies are built.
