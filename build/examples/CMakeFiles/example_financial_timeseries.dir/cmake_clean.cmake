file(REMOVE_RECURSE
  "CMakeFiles/example_financial_timeseries.dir/financial_timeseries.cpp.o"
  "CMakeFiles/example_financial_timeseries.dir/financial_timeseries.cpp.o.d"
  "example_financial_timeseries"
  "example_financial_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_financial_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
