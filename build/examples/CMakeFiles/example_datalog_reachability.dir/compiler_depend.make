# Empty compiler generated dependencies file for example_datalog_reachability.
# This may be replaced when dependencies are built.
