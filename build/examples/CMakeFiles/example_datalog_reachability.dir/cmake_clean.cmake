file(REMOVE_RECURSE
  "CMakeFiles/example_datalog_reachability.dir/datalog_reachability.cpp.o"
  "CMakeFiles/example_datalog_reachability.dir/datalog_reachability.cpp.o.d"
  "example_datalog_reachability"
  "example_datalog_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_datalog_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
