file(REMOVE_RECURSE
  "CMakeFiles/example_spatial_land_registry.dir/spatial_land_registry.cpp.o"
  "CMakeFiles/example_spatial_land_registry.dir/spatial_land_registry.cpp.o.d"
  "example_spatial_land_registry"
  "example_spatial_land_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_spatial_land_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
