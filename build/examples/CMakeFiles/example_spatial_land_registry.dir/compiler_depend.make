# Empty compiler generated dependencies file for example_spatial_land_registry.
# This may be replaced when dependencies are built.
