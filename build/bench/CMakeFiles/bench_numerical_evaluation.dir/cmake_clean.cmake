file(REMOVE_RECURSE
  "CMakeFiles/bench_numerical_evaluation.dir/bench_numerical_evaluation.cc.o"
  "CMakeFiles/bench_numerical_evaluation.dir/bench_numerical_evaluation.cc.o.d"
  "bench_numerical_evaluation"
  "bench_numerical_evaluation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_numerical_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
