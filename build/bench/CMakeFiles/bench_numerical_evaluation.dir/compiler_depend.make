# Empty compiler generated dependencies file for bench_numerical_evaluation.
# This may be replaced when dependencies are built.
