file(REMOVE_RECURSE
  "CMakeFiles/bench_fo_data_complexity.dir/bench_fo_data_complexity.cc.o"
  "CMakeFiles/bench_fo_data_complexity.dir/bench_fo_data_complexity.cc.o.d"
  "bench_fo_data_complexity"
  "bench_fo_data_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fo_data_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
