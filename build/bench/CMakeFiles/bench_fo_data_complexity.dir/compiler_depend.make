# Empty compiler generated dependencies file for bench_fo_data_complexity.
# This may be replaced when dependencies are built.
