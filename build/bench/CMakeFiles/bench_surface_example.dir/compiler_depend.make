# Empty compiler generated dependencies file for bench_surface_example.
# This may be replaced when dependencies are built.
