file(REMOVE_RECURSE
  "CMakeFiles/bench_surface_example.dir/bench_surface_example.cc.o"
  "CMakeFiles/bench_surface_example.dir/bench_surface_example.cc.o.d"
  "bench_surface_example"
  "bench_surface_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_surface_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
