file(REMOVE_RECURSE
  "CMakeFiles/bench_figure1_pipeline.dir/bench_figure1_pipeline.cc.o"
  "CMakeFiles/bench_figure1_pipeline.dir/bench_figure1_pipeline.cc.o.d"
  "bench_figure1_pipeline"
  "bench_figure1_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
