# Empty dependencies file for bench_figure1_pipeline.
# This may be replaced when dependencies are built.
