# Empty dependencies file for bench_abase_tradeoff.
# This may be replaced when dependencies are built.
