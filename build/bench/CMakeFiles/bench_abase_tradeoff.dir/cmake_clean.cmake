file(REMOVE_RECURSE
  "CMakeFiles/bench_abase_tradeoff.dir/bench_abase_tradeoff.cc.o"
  "CMakeFiles/bench_abase_tradeoff.dir/bench_abase_tradeoff.cc.o.d"
  "bench_abase_tradeoff"
  "bench_abase_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abase_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
