file(REMOVE_RECURSE
  "CMakeFiles/bench_fp_separation.dir/bench_fp_separation.cc.o"
  "CMakeFiles/bench_fp_separation.dir/bench_fp_separation.cc.o.d"
  "bench_fp_separation"
  "bench_fp_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fp_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
