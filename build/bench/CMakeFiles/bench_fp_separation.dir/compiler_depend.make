# Empty compiler generated dependencies file for bench_fp_separation.
# This may be replaced when dependencies are built.
