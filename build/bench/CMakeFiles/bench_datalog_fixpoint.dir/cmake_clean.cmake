file(REMOVE_RECURSE
  "CMakeFiles/bench_datalog_fixpoint.dir/bench_datalog_fixpoint.cc.o"
  "CMakeFiles/bench_datalog_fixpoint.dir/bench_datalog_fixpoint.cc.o.d"
  "bench_datalog_fixpoint"
  "bench_datalog_fixpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datalog_fixpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
