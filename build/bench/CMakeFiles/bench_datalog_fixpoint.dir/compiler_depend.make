# Empty compiler generated dependencies file for bench_datalog_fixpoint.
# This may be replaced when dependencies are built.
