# Empty dependencies file for bench_fp_speedup.
# This may be replaced when dependencies are built.
