file(REMOVE_RECURSE
  "CMakeFiles/bench_fp_speedup.dir/bench_fp_speedup.cc.o"
  "CMakeFiles/bench_fp_speedup.dir/bench_fp_speedup.cc.o.d"
  "bench_fp_speedup"
  "bench_fp_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fp_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
