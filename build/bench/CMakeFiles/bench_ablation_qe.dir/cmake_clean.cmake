file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_qe.dir/bench_ablation_qe.cc.o"
  "CMakeFiles/bench_ablation_qe.dir/bench_ablation_qe.cc.o.d"
  "bench_ablation_qe"
  "bench_ablation_qe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_qe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
