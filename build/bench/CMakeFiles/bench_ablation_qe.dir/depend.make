# Empty dependencies file for bench_ablation_qe.
# This may be replaced when dependencies are built.
