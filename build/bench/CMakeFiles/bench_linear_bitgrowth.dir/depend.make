# Empty dependencies file for bench_linear_bitgrowth.
# This may be replaced when dependencies are built.
