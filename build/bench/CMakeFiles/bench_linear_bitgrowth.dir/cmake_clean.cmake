file(REMOVE_RECURSE
  "CMakeFiles/bench_linear_bitgrowth.dir/bench_linear_bitgrowth.cc.o"
  "CMakeFiles/bench_linear_bitgrowth.dir/bench_linear_bitgrowth.cc.o.d"
  "bench_linear_bitgrowth"
  "bench_linear_bitgrowth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linear_bitgrowth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
