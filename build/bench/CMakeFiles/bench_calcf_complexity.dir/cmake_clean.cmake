file(REMOVE_RECURSE
  "CMakeFiles/bench_calcf_complexity.dir/bench_calcf_complexity.cc.o"
  "CMakeFiles/bench_calcf_complexity.dir/bench_calcf_complexity.cc.o.d"
  "bench_calcf_complexity"
  "bench_calcf_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_calcf_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
