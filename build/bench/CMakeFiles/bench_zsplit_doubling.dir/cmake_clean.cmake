file(REMOVE_RECURSE
  "CMakeFiles/bench_zsplit_doubling.dir/bench_zsplit_doubling.cc.o"
  "CMakeFiles/bench_zsplit_doubling.dir/bench_zsplit_doubling.cc.o.d"
  "bench_zsplit_doubling"
  "bench_zsplit_doubling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zsplit_doubling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
