# Empty compiler generated dependencies file for bench_zsplit_doubling.
# This may be replaced when dependencies are built.
