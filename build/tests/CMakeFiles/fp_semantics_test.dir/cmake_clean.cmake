file(REMOVE_RECURSE
  "CMakeFiles/fp_semantics_test.dir/fp_semantics_test.cc.o"
  "CMakeFiles/fp_semantics_test.dir/fp_semantics_test.cc.o.d"
  "fp_semantics_test"
  "fp_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
