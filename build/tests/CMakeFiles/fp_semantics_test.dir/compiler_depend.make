# Empty compiler generated dependencies file for fp_semantics_test.
# This may be replaced when dependencies are built.
