file(REMOVE_RECURSE
  "CMakeFiles/qe_property_test.dir/qe_property_test.cc.o"
  "CMakeFiles/qe_property_test.dir/qe_property_test.cc.o.d"
  "qe_property_test"
  "qe_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qe_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
