file(REMOVE_RECURSE
  "CMakeFiles/dense_order_test.dir/dense_order_test.cc.o"
  "CMakeFiles/dense_order_test.dir/dense_order_test.cc.o.d"
  "dense_order_test"
  "dense_order_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
