# Empty dependencies file for dense_order_test.
# This may be replaced when dependencies are built.
