# Empty compiler generated dependencies file for algebraic_test.
# This may be replaced when dependencies are built.
