file(REMOVE_RECURSE
  "CMakeFiles/algebraic_test.dir/algebraic_test.cc.o"
  "CMakeFiles/algebraic_test.dir/algebraic_test.cc.o.d"
  "algebraic_test"
  "algebraic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebraic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
