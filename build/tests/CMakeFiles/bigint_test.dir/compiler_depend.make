# Empty compiler generated dependencies file for bigint_test.
# This may be replaced when dependencies are built.
