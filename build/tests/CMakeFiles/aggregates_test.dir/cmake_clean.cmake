file(REMOVE_RECURSE
  "CMakeFiles/aggregates_test.dir/aggregates_test.cc.o"
  "CMakeFiles/aggregates_test.dir/aggregates_test.cc.o.d"
  "aggregates_test"
  "aggregates_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
