# Empty dependencies file for upoly_test.
# This may be replaced when dependencies are built.
