file(REMOVE_RECURSE
  "CMakeFiles/upoly_test.dir/upoly_test.cc.o"
  "CMakeFiles/upoly_test.dir/upoly_test.cc.o.d"
  "upoly_test"
  "upoly_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upoly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
