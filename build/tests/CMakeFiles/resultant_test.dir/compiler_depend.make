# Empty compiler generated dependencies file for resultant_test.
# This may be replaced when dependencies are built.
