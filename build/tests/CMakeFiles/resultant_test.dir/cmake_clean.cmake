file(REMOVE_RECURSE
  "CMakeFiles/resultant_test.dir/resultant_test.cc.o"
  "CMakeFiles/resultant_test.dir/resultant_test.cc.o.d"
  "resultant_test"
  "resultant_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resultant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
