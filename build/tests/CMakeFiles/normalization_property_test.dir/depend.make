# Empty dependencies file for normalization_property_test.
# This may be replaced when dependencies are built.
