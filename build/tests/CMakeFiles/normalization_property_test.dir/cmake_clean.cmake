file(REMOVE_RECURSE
  "CMakeFiles/normalization_property_test.dir/normalization_property_test.cc.o"
  "CMakeFiles/normalization_property_test.dir/normalization_property_test.cc.o.d"
  "normalization_property_test"
  "normalization_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/normalization_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
