# Empty dependencies file for calcf_test.
# This may be replaced when dependencies are built.
