file(REMOVE_RECURSE
  "CMakeFiles/calcf_test.dir/calcf_test.cc.o"
  "CMakeFiles/calcf_test.dir/calcf_test.cc.o.d"
  "calcf_test"
  "calcf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calcf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
