# Empty compiler generated dependencies file for formula_test.
# This may be replaced when dependencies are built.
