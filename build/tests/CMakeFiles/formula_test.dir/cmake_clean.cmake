file(REMOVE_RECURSE
  "CMakeFiles/formula_test.dir/formula_test.cc.o"
  "CMakeFiles/formula_test.dir/formula_test.cc.o.d"
  "formula_test"
  "formula_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formula_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
