# Empty dependencies file for arith_property_test.
# This may be replaced when dependencies are built.
