file(REMOVE_RECURSE
  "CMakeFiles/arith_property_test.dir/arith_property_test.cc.o"
  "CMakeFiles/arith_property_test.dir/arith_property_test.cc.o.d"
  "arith_property_test"
  "arith_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arith_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
