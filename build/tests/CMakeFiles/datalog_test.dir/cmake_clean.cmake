file(REMOVE_RECURSE
  "CMakeFiles/datalog_test.dir/datalog_test.cc.o"
  "CMakeFiles/datalog_test.dir/datalog_test.cc.o.d"
  "datalog_test"
  "datalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
