# Empty dependencies file for datalog_test.
# This may be replaced when dependencies are built.
