# Empty compiler generated dependencies file for qe_test.
# This may be replaced when dependencies are built.
