file(REMOVE_RECURSE
  "CMakeFiles/qe_test.dir/qe_test.cc.o"
  "CMakeFiles/qe_test.dir/qe_test.cc.o.d"
  "qe_test"
  "qe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
