# Empty dependencies file for zsplit_test.
# This may be replaced when dependencies are built.
