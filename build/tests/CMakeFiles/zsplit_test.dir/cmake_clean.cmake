file(REMOVE_RECURSE
  "CMakeFiles/zsplit_test.dir/zsplit_test.cc.o"
  "CMakeFiles/zsplit_test.dir/zsplit_test.cc.o.d"
  "zsplit_test"
  "zsplit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zsplit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
