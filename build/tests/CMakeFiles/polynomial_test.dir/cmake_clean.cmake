file(REMOVE_RECURSE
  "CMakeFiles/polynomial_test.dir/polynomial_test.cc.o"
  "CMakeFiles/polynomial_test.dir/polynomial_test.cc.o.d"
  "polynomial_test"
  "polynomial_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polynomial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
