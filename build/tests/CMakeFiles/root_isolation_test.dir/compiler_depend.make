# Empty compiler generated dependencies file for root_isolation_test.
# This may be replaced when dependencies are built.
