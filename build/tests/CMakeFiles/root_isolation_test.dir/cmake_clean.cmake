file(REMOVE_RECURSE
  "CMakeFiles/root_isolation_test.dir/root_isolation_test.cc.o"
  "CMakeFiles/root_isolation_test.dir/root_isolation_test.cc.o.d"
  "root_isolation_test"
  "root_isolation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/root_isolation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
