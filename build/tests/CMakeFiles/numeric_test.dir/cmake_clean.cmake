file(REMOVE_RECURSE
  "CMakeFiles/numeric_test.dir/numeric_test.cc.o"
  "CMakeFiles/numeric_test.dir/numeric_test.cc.o.d"
  "numeric_test"
  "numeric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
