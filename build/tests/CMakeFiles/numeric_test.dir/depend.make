# Empty dependencies file for numeric_test.
# This may be replaced when dependencies are built.
