# Empty dependencies file for floatk_test.
# This may be replaced when dependencies are built.
