file(REMOVE_RECURSE
  "CMakeFiles/floatk_test.dir/floatk_test.cc.o"
  "CMakeFiles/floatk_test.dir/floatk_test.cc.o.d"
  "floatk_test"
  "floatk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floatk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
