#include "engine/database.h"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <sstream>

#include "base/logging.h"
#include "base/memo.h"
#include "base/metrics.h"
#include "base/trace.h"
#include "plan/planner.h"
#include "query/lower.h"
#include "query/parser.h"

namespace ccdb {

namespace {

std::string FormatMillis(double seconds) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3) << seconds * 1e3 << " ms";
  return out.str();
}

// Process-wide memo of whole-query results, keyed on (query text, catalog
// version). Catalog versions are drawn from a process-global counter, so a
// version value identifies one catalog state of one database instance — a
// key can never alias across databases with different options, and any
// catalog mutation (Define/Register/Drop/Load) invalidates every entry of
// the old state by moving the version forward.
ShardedMemoCache<std::string, CalcFResult>& QueryResultCache() {
  static auto* cache =
      new ShardedMemoCache<std::string, CalcFResult>("query_cache", 256);
  return *cache;
}

std::string QueryCacheKey(const std::string& text, std::uint64_t version) {
  return std::to_string(version) + '\x1f' + text;
}

}  // namespace

std::string ExplainResult::ToString() const {
  std::ostringstream out;
  out << "EXPLAIN (Figure-1 pipeline";
  if (from_cache) out << ", whole-query cache hit";
  out << ")\n";
  const CalcFStats& s = result.stats;
  if (!s.plan.empty()) {
    out << "  PLAN                    " << s.plan
        << (from_cache ? "  (cached)" : "") << "\n";
  }
  if (s.parse_seconds > 0.0) {
    out << "  PARSE                   " << FormatMillis(s.parse_seconds)
        << "\n";
  }
  out << "  INSTANTIATION           " << FormatMillis(s.instantiation_seconds)
      << "\n";
  out << "  QUANTIFIER ELIMINATION  " << FormatMillis(s.qe_seconds)
      << "  (rounds=" << s.qe_rounds
      << ", max_bits=" << s.max_intermediate_bits << ")\n";
  if (ran_numeric) {
    out << "  NUMERICAL EVALUATION    " << FormatMillis(numeric_seconds)
        << "  ("
        << (numeric_finite
                ? "finite, " + std::to_string(numeric_points) + " point(s)"
                : "infinite answer set")
        << ")\n";
  } else {
    out << "  NUMERICAL EVALUATION    skipped (scalar aggregate answer)\n";
  }
  out << "  AGGREGATE EVALUATION    " << FormatMillis(s.aggregate_seconds)
      << "  (aggregate_calls=" << s.aggregate_calls
      << ", approximation_calls=" << s.approximation_calls << ")\n";
  out << "  TOTAL                   " << FormatMillis(total_seconds) << "\n";
  out << "result: " << result.relation.tuples().size() << " generalized "
      << "tuple(s), arity " << result.relation.arity();
  if (result.has_scalar) {
    out << ", scalar "
        << (result.scalar.exact ? result.scalar.exact_value.ToString()
                                : std::to_string(result.scalar.approx_value));
  }
  out << "\n";
  if (!metric_deltas.empty()) {
    out << "metrics moved by this query:\n";
    for (const auto& [name, delta] : metric_deltas) {
      out << "  " << name << " += " << delta << "\n";
    }
  }
  return out.str();
}

std::string QueryVerdict::ToString() const {
  std::ostringstream out;
  if (ok) {
    out << "answered at rung '" << rung << "'";
  } else {
    out << "resource-exhausted on every rung";
  }
  out << " after " << attempts << " attempt(s)";
  out << "; last attempt: steps=" << steps_consumed
      << " bytes=" << bytes_consumed << " elapsed=" << FormatMillis(elapsed_seconds);
  for (const std::string& entry : exhausted_rungs) {
    out << "\n  exhausted: " << entry;
  }
  return out.str();
}

StatusOr<CalcFResult> ConstraintDatabase::QueryWithPolicy(
    const std::string& text, const QueryPolicy& policy,
    QueryVerdict* verdict) const {
  CCDB_TRACE_SPAN("db.query_with_policy");
  CCDB_METRIC_COUNT("db.governed_queries", 1);
  QueryVerdict local;
  QueryVerdict& v = verdict != nullptr ? *verdict : local;
  v = QueryVerdict{};
  static constexpr const char* kRungNames[] = {"full", "reduced-precision",
                                               "linear-only"};
  const int num_rungs = policy.allow_degradation ? 3 : 1;
  Status last = Status::Ok();
  for (int rung = 0; rung < num_rungs; ++rung) {
    // Each rung gets a fresh governor so degraded attempts receive the
    // full budget, not the exhausted remainder of the previous attempt.
    ResourceGovernor gov(policy.limits, policy.cancel);
    CalcFOptions opts = options_;
    opts.governor = &gov;
    opts.qe.governor = &gov;
    if (rung >= 1) {
      // Reduced precision: halve the approximation order and coarsen the
      // tolerances — cheaper modules, same query semantics up to epsilon.
      opts.approx_order = std::max(2, opts.approx_order / 2);
      opts.tolerance = std::max(opts.tolerance * 1e3, 1e-6);
      opts.eval_epsilon = Rational(BigInt(1), BigInt::Pow2(12));
    }
    if (rung >= 2) {
      // Linear-only: Fourier-Motzkin without the CAD fallback. Queries
      // that genuinely need CAD exhaust immediately instead of blowing up.
      opts.qe.linear_only = true;
    }
    CalcFEvaluator evaluator(MakeLookup(), opts);
    StatusOr<CalcFResult> result = evaluator.EvaluateText(text);
    ++v.attempts;
    // One coherent snapshot: workers spawned by a parallel attempt all
    // charge this governor, so the three readings are taken through the
    // governor's atomic snapshot rather than three bare field reads.
    ResourceGovernor::Consumption consumed = gov.Snapshot();
    v.steps_consumed = consumed.steps;
    v.bytes_consumed = consumed.bytes;
    v.elapsed_seconds = consumed.elapsed_seconds;
    if (result.ok()) {
      v.ok = true;
      v.rung = kRungNames[rung];
      CCDB_METRIC_COUNT(rung == 0 ? "db.governed_answered_full"
                                  : "db.governed_answered_degraded",
                        1);
      return result;
    }
    if (result.status().code() != StatusCode::kResourceExhausted) {
      // Semantic errors (parse failure, kUndefined, ...) are not budget
      // problems; degrading would not help.
      return result.status();
    }
    v.exhausted_rungs.push_back(std::string(kRungNames[rung]) + ": " +
                                result.status().message());
    last = result.status();
    if (gov.reason() == ExhaustionReason::kCancelled) break;  // user asked to stop
  }
  CCDB_METRIC_COUNT("db.governed_exhausted", 1);
  return last;
}

ConstraintDatabase::ConstraintDatabase(CalcFOptions options)
    : options_(std::move(options)) {}

CalcFEvaluator::RelationLookup ConstraintDatabase::MakeLookup() const {
  const Catalog* catalog = &catalog_;
  return [catalog](const std::string& name) -> StatusOr<ConstraintRelation> {
    return catalog->GetRelation(name);
  };
}

Status ConstraintDatabase::Define(const std::string& definition) {
  return catalog_.AddRelationFromText(definition);
}

Status ConstraintDatabase::Register(const std::string& name,
                                    ConstraintRelation relation) {
  return catalog_.AddRelation(name, std::move(relation));
}

Status ConstraintDatabase::Drop(const std::string& name) {
  return catalog_.DropRelation(name);
}

StatusOr<CalcFResult> ConstraintDatabase::Query(const std::string& text) const {
  return QueryImpl(text, nullptr);
}

StatusOr<CalcFResult> ConstraintDatabase::QueryImpl(const std::string& text,
                                                    bool* cache_hit) const {
  CCDB_TRACE_SPAN("db.query");
  CCDB_METRIC_COUNT("db.queries", 1);
  if (cache_hit != nullptr) *cache_hit = false;
  // Pure memo on the whole pipeline: a hit returns exactly the result a
  // re-evaluation would produce (same text, same catalog state, same
  // immutable options). Governed evaluations bypass the cache entirely so
  // budget charging never depends on cache temperature.
  const bool use_cache = options_.governor == nullptr &&
                         options_.qe.governor == nullptr &&
                         MemoCachesEnabled();
  std::string key;
  if (use_cache) {
    key = QueryCacheKey(text, catalog_.version());
    CalcFResult cached;
    if (QueryResultCache().Lookup(key, &cached)) {
      if (cache_hit != nullptr) *cache_hit = true;
      return cached;
    }
  }
  CalcFEvaluator evaluator(MakeLookup(), options_);
  CCDB_ASSIGN_OR_RETURN(CalcFResult result, evaluator.EvaluateText(text));
  if (use_cache) QueryResultCache().Insert(key, result);
  return result;
}

StatusOr<std::string> ConstraintDatabase::Plan(const std::string& text) const {
  CCDB_TRACE_SPAN("db.plan");
  CCDB_METRIC_COUNT("db.plans", 1);
  CCDB_ASSIGN_OR_RETURN(auto parsed, ParseFormula(text));
  std::vector<std::string> columns = parsed->FreeVarNames();
  VarEnv env;
  for (const std::string& column : columns) env.Intern(column);
  int arity = env.next_index;
  CCDB_ASSIGN_OR_RETURN(Formula lowered, LowerFormula(*parsed, &env));
  CCDB_ASSIGN_OR_RETURN(Formula instantiated,
                        lowered.InstantiateRelations(MakeLookup()));
  QueryPlan plan = GetOrBuildPlan(instantiated, arity, options_.qe);
  return plan.ToString(env.NamesByIndex());
}

StatusOr<ExplainResult> ConstraintDatabase::Explain(
    const std::string& text) const {
  CCDB_TRACE_SPAN("db.explain");
  CCDB_METRIC_COUNT("db.explains", 1);
  ExplainResult explain;
  auto before = MetricsRegistry::Global().SnapshotValues();
  auto start = std::chrono::steady_clock::now();
  CCDB_ASSIGN_OR_RETURN(explain.result, QueryImpl(text, &explain.from_cache));
  // NUMERICAL EVALUATION (Figure 1, step 3): only meaningful when the
  // answer is a relation; a scalar aggregate is already a value.
  if (!explain.result.has_scalar && explain.result.relation.arity() > 0) {
    explain.ran_numeric = true;
    auto numeric_start = std::chrono::steady_clock::now();
    CCDB_ASSIGN_OR_RETURN(NumericalEvaluation numeric,
                          EvaluateNumerically(explain.result.relation));
    explain.numeric_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      numeric_start)
            .count();
    explain.numeric_finite = numeric.finite;
    explain.numeric_points = numeric.points.size();
  }
  explain.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  auto after = MetricsRegistry::Global().SnapshotValues();
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    std::uint64_t previous = it == before.end() ? 0 : it->second;
    // Max gauges can stay flat or even (after ResetAll) shrink; only
    // report meters that moved forward.
    if (value > previous) explain.metric_deltas[name] = value - previous;
  }
  return explain;
}

StatusOr<CalcFResult> ConstraintDatabase::QueryFp(const std::string& text,
                                                  std::uint32_t k,
                                                  FpQeStats* stats) const {
  CCDB_TRACE_SPAN("db.query_fp");
  CCDB_METRIC_COUNT("db.fp_queries", 1);
  CCDB_ASSIGN_OR_RETURN(auto parsed, ParseFormula(text));
  std::vector<std::string> columns = parsed->FreeVarNames();
  VarEnv env;
  for (const std::string& column : columns) env.Intern(column);
  int arity = env.next_index;
  CCDB_ASSIGN_OR_RETURN(Formula lowered, LowerFormula(*parsed, &env));
  CCDB_ASSIGN_OR_RETURN(Formula instantiated,
                        lowered.InstantiateRelations(MakeLookup()));
  CalcFResult result;
  CCDB_ASSIGN_OR_RETURN(
      result.relation,
      EliminateQuantifiersFp(instantiated, arity, FpContext{k}, stats));
  result.column_names = std::move(columns);
  return result;
}

StatusOr<std::vector<std::vector<Rational>>> ConstraintDatabase::Solve(
    const std::string& text, const Rational& epsilon) const {
  CCDB_TRACE_SPAN("db.solve");
  CCDB_METRIC_COUNT("db.solves", 1);
  CCDB_ASSIGN_OR_RETURN(CalcFResult result, Query(text));
  return ApproximateSolutions(result.relation, epsilon);
}

Status ConstraintDatabase::Load(const std::string& path) {
  CCDB_ASSIGN_OR_RETURN(Catalog loaded, Catalog::LoadFromFile(path));
  catalog_ = std::move(loaded);
  return Status::Ok();
}

}  // namespace ccdb
