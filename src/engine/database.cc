#include "engine/database.h"

#include "base/logging.h"
#include "query/lower.h"
#include "query/parser.h"

namespace ccdb {

ConstraintDatabase::ConstraintDatabase(CalcFOptions options)
    : options_(std::move(options)) {}

CalcFEvaluator::RelationLookup ConstraintDatabase::MakeLookup() const {
  const Catalog* catalog = &catalog_;
  return [catalog](const std::string& name) -> StatusOr<ConstraintRelation> {
    return catalog->GetRelation(name);
  };
}

Status ConstraintDatabase::Define(const std::string& definition) {
  return catalog_.AddRelationFromText(definition);
}

Status ConstraintDatabase::Register(const std::string& name,
                                    ConstraintRelation relation) {
  return catalog_.AddRelation(name, std::move(relation));
}

Status ConstraintDatabase::Drop(const std::string& name) {
  return catalog_.DropRelation(name);
}

StatusOr<CalcFResult> ConstraintDatabase::Query(const std::string& text) const {
  CalcFEvaluator evaluator(MakeLookup(), options_);
  return evaluator.EvaluateText(text);
}

StatusOr<CalcFResult> ConstraintDatabase::QueryFp(const std::string& text,
                                                  std::uint32_t k,
                                                  FpQeStats* stats) const {
  CCDB_ASSIGN_OR_RETURN(auto parsed, ParseFormula(text));
  std::vector<std::string> columns = parsed->FreeVarNames();
  VarEnv env;
  for (const std::string& column : columns) env.Intern(column);
  int arity = env.next_index;
  CCDB_ASSIGN_OR_RETURN(Formula lowered, LowerFormula(*parsed, &env));
  CCDB_ASSIGN_OR_RETURN(Formula instantiated,
                        lowered.InstantiateRelations(MakeLookup()));
  CalcFResult result;
  CCDB_ASSIGN_OR_RETURN(
      result.relation,
      EliminateQuantifiersFp(instantiated, arity, FpContext{k}, stats));
  result.column_names = std::move(columns);
  return result;
}

StatusOr<std::vector<std::vector<Rational>>> ConstraintDatabase::Solve(
    const std::string& text, const Rational& epsilon) const {
  CCDB_ASSIGN_OR_RETURN(CalcFResult result, Query(text));
  return ApproximateSolutions(result.relation, epsilon);
}

Status ConstraintDatabase::Load(const std::string& path) {
  CCDB_ASSIGN_OR_RETURN(Catalog loaded, Catalog::LoadFromFile(path));
  catalog_ = std::move(loaded);
  return Status::Ok();
}

}  // namespace ccdb
