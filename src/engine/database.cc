#include "engine/database.h"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <set>
#include <sstream>
#include <utility>

#include "base/logging.h"
#include "base/memo.h"
#include "base/metrics.h"
#include "base/query_log.h"
#include "base/thread_pool.h"
#include "base/trace.h"
#include "plan/planner.h"
#include "query/lower.h"
#include "query/parser.h"

namespace ccdb {

namespace {

std::string FormatMillis(double seconds) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3) << seconds * 1e3 << " ms";
  return out.str();
}

// Process-wide memo of whole-query results, keyed on (database id, the
// per-relation versions of exactly the relations the query reads, query
// text). Versions are drawn from a process-global counter, so a version
// value identifies one state of one relation; a mutation invalidates
// precisely the entries whose read-set it touched — an Insert into S
// leaves every cached query that reads only R hot. Drop-and-redefine can
// never alias: the redefined relation carries a fresh (larger) version.
// The database id covers the degenerate empty-read-set key, which would
// otherwise collide across instances holding different options.
ShardedMemoCache<std::string, CalcFResult>& QueryResultCache() {
  static auto* cache =
      new ShardedMemoCache<std::string, CalcFResult>("query_cache", 256);
  return *cache;
}

std::string QueryCacheKey(
    std::uint64_t db_id, const std::string& text,
    const std::vector<std::pair<std::string, std::uint64_t>>& read_set,
    bool plan_resolved) {
  std::string key = std::to_string(db_id);
  // The resolved planner setting is part of the key: answers are
  // byte-identical with the planner on and off, but the cached stats carry
  // the plan summary line, so a plan-off session must not be served a
  // plan-on session's stats (or vice versa).
  key += plan_resolved ? "+p" : "-p";
  for (const auto& [name, version] : read_set) {
    key += '\x1e';
    key += name;
    key += '\x1d';
    key += std::to_string(version);
  }
  key += '\x1f';
  key += text;
  return key;
}

// The process config's fingerprint, stamped into facade-path query-log
// records (sessions stamp their own). Computed once.
const std::string& ProcessConfigFingerprint() {
  static const std::string* fp =
      new std::string(EngineConfig::Process().Fingerprint());
  return *fp;
}

void CollectRelationNames(const QFormula& formula,
                          std::set<std::string>* names) {
  if (formula.kind == QFormula::Kind::kRelation) {
    names->insert(formula.relation_name);
  }
  for (const auto& child : formula.children) {
    CollectRelationNames(*child, names);
  }
}

// The relation names `text` mentions, sorted and deduplicated — the
// query's read-set, computed by a parse (no evaluation). Memoized on the
// text alone: the AST, hence the name set, is a pure function of it.
StatusOr<std::vector<std::string>> RelationsReadBy(
    const std::string& text, PlanToggle memo = PlanToggle::kAuto) {
  static auto* cache = new ShardedMemoCache<std::string, std::vector<std::string>>(
      "read_set_cache", 64);
  std::vector<std::string> names;
  const bool use_cache = MemoCachesEnabledFor(memo);
  if (use_cache && cache->Lookup(text, &names)) return names;
  CCDB_ASSIGN_OR_RETURN(auto parsed, ParseFormula(text));
  std::set<std::string> set;
  CollectRelationNames(*parsed, &set);
  names.assign(set.begin(), set.end());
  if (use_cache) cache->Insert(text, names);
  return names;
}

// Resolves a name set against one catalog snapshot: absent relations
// version as 0, so a later Define (nonzero version) changes the key.
std::vector<std::pair<std::string, std::uint64_t>> ResolveReadSet(
    const std::vector<std::string>& names, const Catalog::View& snapshot) {
  std::vector<std::pair<std::string, std::uint64_t>> read_set;
  read_set.reserve(names.size());
  for (const std::string& name : names) {
    std::optional<RelationVersion> version = snapshot.GetRelationVersion(name);
    read_set.emplace_back(name,
                          version.has_value() ? version->version : 0);
  }
  return read_set;
}

std::map<std::string, std::uint64_t> MetricDeltas(
    const std::map<std::string, std::uint64_t>& before,
    const std::map<std::string, std::uint64_t>& after) {
  std::map<std::string, std::uint64_t> deltas;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    std::uint64_t previous = it == before.end() ? 0 : it->second;
    // Max gauges can stay flat or even (after ResetAll) shrink; only
    // report meters that moved forward.
    if (value > previous) deltas[name] = value - previous;
  }
  return deltas;
}

std::uint64_t Delta(const std::map<std::string, std::uint64_t>& deltas,
                    const char* name) {
  auto it = deltas.find(name);
  return it == deltas.end() ? 0 : it->second;
}

// Builds and appends one structured query-log record (base/query_log.h).
// Call only when the log is enabled; observation only — never affects the
// result being logged.
void AppendQueryLogRecord(
    QueryLog& log, std::uint64_t session_id,
    const std::string& config_fingerprint, const char* kind,
    const std::string& text, std::uint64_t catalog_version,
    const StatusOr<CalcFResult>& result, bool cache_hit,
    const QueryVerdict* verdict, double elapsed_seconds,
    const std::map<std::string, std::uint64_t>& deltas,
    const std::vector<std::pair<std::string, std::uint64_t>>* read_set,
    const std::string& profile_json = "") {
  std::uint64_t ts_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  JsonObjectBuilder record;
  record.Add("schema_version",
             static_cast<std::uint64_t>(QueryLog::kSchemaVersion))
      .Add("ts_us", ts_us)
      .Add("session_id", session_id)
      .Add("config", config_fingerprint)
      .Add("kind", std::string(kind))
      .Add("text_hash", QueryLog::HashText(text))
      .Add("text_len", static_cast<std::uint64_t>(text.size()))
      .Add("catalog_version", catalog_version)
      .Add("ok", result.ok())
      .Add("cache_hit", cache_hit)
      .Add("elapsed_seconds", elapsed_seconds);
  // Invalidation scope: with a known read-set, only a mutation of one of
  // the listed relations can invalidate this query's cached answer
  // ("relations:[...]"); without one (unparsable text), any mutation must
  // be assumed to ("global").
  if (read_set != nullptr) {
    std::string names = "[";
    std::string scope = "relations:[";
    for (std::size_t i = 0; i < read_set->size(); ++i) {
      const std::string& name = (*read_set)[i].first;
      if (i > 0) {
        names += ',';
        scope += ',';
      }
      names += '"' + JsonObjectBuilder::Escape(name) + '"';
      scope += name;
    }
    names += ']';
    scope += ']';
    record.AddRaw("read_set", names).Add("invalidation", scope);
  } else {
    record.AddRaw("read_set", "[]").Add("invalidation", std::string("global"));
  }
  if (result.ok()) {
    const CalcFResult& r = *result;
    record.Add("tuples", static_cast<std::uint64_t>(r.relation.tuples().size()))
        .Add("arity", static_cast<std::uint64_t>(r.relation.arity()))
        .Add("has_scalar", r.has_scalar)
        .Add("plan", r.stats.plan)
        .AddRaw("stats", r.stats.ToJson());
  } else {
    record.Add("error_code",
               std::string(StatusCodeToString(result.status().code())))
        .Add("error", result.status().message());
  }
  if (verdict != nullptr) {
    record.AddRaw("verdict",
                  JsonObjectBuilder()
                      .Add("ok", verdict->ok)
                      .Add("rung", verdict->rung)
                      .Add("attempts", static_cast<std::int64_t>(
                                           verdict->attempts))
                      .Add("exhausted_rungs",
                           static_cast<std::uint64_t>(
                               verdict->exhausted_rungs.size()))
                      .Add("steps_consumed", verdict->steps_consumed)
                      .Add("bytes_consumed", verdict->bytes_consumed)
                      .Add("elapsed_seconds", verdict->elapsed_seconds)
                      .Build());
  }
  // Cache temperature this query ran at: hit/miss deltas of the memo
  // layers (whole-query, QE result, plan, resultant).
  record.AddRaw("caches",
                JsonObjectBuilder()
                    .Add("query_cache_hits", Delta(deltas, "query_cache_hits"))
                    .Add("qe_cache_hits", Delta(deltas, "qe_cache_hits"))
                    .Add("qe_cache_misses", Delta(deltas, "qe_cache_misses"))
                    .Add("plan_cache_hits", Delta(deltas, "plan_cache_hits"))
                    .Add("resultant_cache_hits",
                         Delta(deltas, "resultant_cache_hits"))
                    .Build());
  if (!profile_json.empty()) record.AddRaw("profile", profile_json);
  log.Append(record.Build());
}

}  // namespace

std::string ExplainResult::ToString() const {
  std::ostringstream out;
  out << "EXPLAIN (Figure-1 pipeline";
  if (from_cache) out << ", whole-query cache hit";
  out << ")\n";
  const CalcFStats& s = result.stats;
  if (!s.plan.empty()) {
    out << "  PLAN                    " << s.plan
        << (from_cache ? "  (cached)" : "") << "\n";
  }
  if (s.parse_seconds > 0.0) {
    out << "  PARSE                   " << FormatMillis(s.parse_seconds)
        << "\n";
  }
  out << "  INSTANTIATION           " << FormatMillis(s.instantiation_seconds)
      << "\n";
  out << "  QUANTIFIER ELIMINATION  " << FormatMillis(s.qe_seconds)
      << "  (rounds=" << s.qe_rounds
      << ", max_bits=" << s.max_intermediate_bits << ")\n";
  if (ran_numeric) {
    out << "  NUMERICAL EVALUATION    " << FormatMillis(numeric_seconds)
        << "  ("
        << (numeric_finite
                ? "finite, " + std::to_string(numeric_points) + " point(s)"
                : "infinite answer set")
        << ")\n";
  } else {
    out << "  NUMERICAL EVALUATION    skipped (scalar aggregate answer)\n";
  }
  out << "  AGGREGATE EVALUATION    " << FormatMillis(s.aggregate_seconds)
      << "  (aggregate_calls=" << s.aggregate_calls
      << ", approximation_calls=" << s.approximation_calls << ")\n";
  out << "  TOTAL                   " << FormatMillis(total_seconds) << "\n";
  out << "result: " << result.relation.tuples().size() << " generalized "
      << "tuple(s), arity " << result.relation.arity();
  if (result.has_scalar) {
    out << ", scalar "
        << (result.scalar.exact ? result.scalar.exact_value.ToString()
                                : std::to_string(result.scalar.approx_value));
  }
  out << "\n";
  if (!metric_deltas.empty()) {
    out << "metrics moved by this query:\n";
    for (const auto& [name, delta] : metric_deltas) {
      out << "  " << name << " += " << delta << "\n";
    }
  }
  return out.str();
}

std::string QueryProfile::ToString() const {
  std::ostringstream out;
  out << "EXPLAIN ANALYZE (profiled execution)\n";
  if (!stats.plan.empty()) {
    out << "  PLAN                    " << stats.plan << "\n";
  }
  if (stats.parse_seconds > 0.0) {
    out << "  PARSE                   " << FormatMillis(stats.parse_seconds)
        << "\n";
  }
  out << "  INSTANTIATION           "
      << FormatMillis(stats.instantiation_seconds) << "\n";
  out << "  QUANTIFIER ELIMINATION  " << FormatMillis(stats.qe_seconds)
      << "  (rounds=" << stats.qe_rounds
      << ", max_bits=" << stats.max_intermediate_bits << ")\n";
  if (ran_numeric) {
    out << "  NUMERICAL EVALUATION    " << FormatMillis(numeric_seconds)
        << "  ("
        << (numeric_finite
                ? "finite, " + std::to_string(numeric_points) + " point(s)"
                : "infinite answer set")
        << ")\n";
  } else {
    out << "  NUMERICAL EVALUATION    skipped (scalar aggregate answer)\n";
  }
  out << "  AGGREGATE EVALUATION    " << FormatMillis(stats.aggregate_seconds)
      << "  (aggregate_calls=" << stats.aggregate_calls
      << ", approximation_calls=" << stats.approximation_calls << ")\n";
  out << "  TOTAL                   " << FormatMillis(total_seconds) << "\n";
  for (std::size_t i = 0; i < qe_rounds.size(); ++i) {
    out << "qe round " << (i + 1) << " of " << qe_rounds.size() << ":\n";
    out << qe_rounds[i].ToString(1);
  }
  out << "caches: qe_cache hits=" << qe_cache_hits
      << " misses=" << qe_cache_misses
      << "  plan_cache hits=" << plan_cache_hits
      << "  resultant_cache hits=" << resultant_cache_hits << "\n";
  out << "pool: threads=" << pool_threads
      << " tasks_completed=" << pool_tasks_completed
      << " stolen=" << pool_tasks_stolen << " inline=" << pool_tasks_inline
      << "\n";
  if (governed) {
    out << "governor: steps=" << governor_steps << " bytes=" << governor_bytes
        << "\n";
  }
  return out.str();
}

std::string QueryProfile::ToJson() const {
  std::string rounds = "[";
  for (std::size_t i = 0; i < qe_rounds.size(); ++i) {
    if (i > 0) rounds += ',';
    rounds += qe_rounds[i].ToJson();
  }
  rounds += ']';
  JsonObjectBuilder delta_obj;
  for (const auto& [name, value] : metric_deltas) delta_obj.Add(name, value);
  return JsonObjectBuilder()
      .Add("total_seconds", total_seconds)
      .AddRaw("stats", stats.ToJson())
      .AddRaw("qe_rounds", rounds)
      .Add("ran_numeric", ran_numeric)
      .Add("numeric_finite", numeric_finite)
      .Add("numeric_points", static_cast<std::uint64_t>(numeric_points))
      .Add("numeric_seconds", numeric_seconds)
      .AddRaw("caches", JsonObjectBuilder()
                            .Add("qe_cache_hits", qe_cache_hits)
                            .Add("qe_cache_misses", qe_cache_misses)
                            .Add("plan_cache_hits", plan_cache_hits)
                            .Add("resultant_cache_hits", resultant_cache_hits)
                            .Build())
      .AddRaw("pool", JsonObjectBuilder()
                          .Add("threads", pool_threads)
                          .Add("tasks_completed", pool_tasks_completed)
                          .Add("tasks_stolen", pool_tasks_stolen)
                          .Add("tasks_inline", pool_tasks_inline)
                          .Build())
      .AddRaw("governor", JsonObjectBuilder()
                              .Add("governed", governed)
                              .Add("steps", governor_steps)
                              .Add("bytes", governor_bytes)
                              .Build())
      .AddRaw("metric_deltas", delta_obj.Build())
      .Build();
}

std::string ExplainAnalyzeResult::ToString() const {
  std::ostringstream out;
  out << profile.ToString();
  out << "result: " << result.relation.tuples().size() << " generalized "
      << "tuple(s), arity " << result.relation.arity();
  if (result.has_scalar) {
    out << ", scalar "
        << (result.scalar.exact ? result.scalar.exact_value.ToString()
                                : std::to_string(result.scalar.approx_value));
  }
  out << "\n";
  return out.str();
}

std::string QueryVerdict::ToString() const {
  std::ostringstream out;
  if (ok) {
    out << "answered at rung '" << rung << "'";
  } else {
    out << "resource-exhausted on every rung";
  }
  out << " after " << attempts << " attempt(s)";
  out << "; last attempt: steps=" << steps_consumed
      << " bytes=" << bytes_consumed << " elapsed=" << FormatMillis(elapsed_seconds);
  for (const std::string& entry : exhausted_rungs) {
    out << "\n  exhausted: " << entry;
  }
  return out.str();
}

StatusOr<CalcFResult> ConstraintDatabase::QueryWithPolicy(
    const std::string& text, const QueryPolicy& policy,
    QueryVerdict* verdict) const {
  return QueryWithPolicy(text, policy, verdict, ExecContext{});
}

StatusOr<CalcFResult> ConstraintDatabase::QueryWithPolicy(
    const std::string& text, const QueryPolicy& policy, QueryVerdict* verdict,
    const ExecContext& ctx) const {
  CCDB_TRACE_SPAN("db.query_with_policy");
  CCDB_METRIC_COUNT("db.governed_queries", 1);
  const CalcFOptions& base_options = OptionsFor(ctx);
  QueryLog& qlog = ctx.log != nullptr ? *ctx.log : QueryLog::Global();
  QueryVerdict local;
  QueryVerdict& v = verdict != nullptr ? *verdict : local;
  v = QueryVerdict{};
  const bool log = qlog.enabled();
  std::map<std::string, std::uint64_t> before;
  if (log) before = MetricsRegistry::Global().SnapshotValues();
  auto log_start = std::chrono::steady_clock::now();
  // One snapshot across every rung: a degraded retry answers against the
  // same catalog state the full-quality attempt saw.
  std::shared_ptr<const Catalog::View> snapshot = SnapshotFor(ctx);
  StatusOr<CalcFResult> outcome = [&]() -> StatusOr<CalcFResult> {
  static constexpr const char* kRungNames[] = {"full", "reduced-precision",
                                               "linear-only"};
  const int num_rungs = policy.allow_degradation ? 3 : 1;
  Status last = Status::Ok();
  for (int rung = 0; rung < num_rungs; ++rung) {
    // Each rung gets a fresh governor so degraded attempts receive the
    // full budget, not the exhausted remainder of the previous attempt.
    ResourceGovernor gov(policy.limits, policy.cancel);
    CalcFOptions opts = base_options;
    opts.governor = &gov;
    opts.qe.governor = &gov;
    if (rung >= 1) {
      // Reduced precision: halve the approximation order and coarsen the
      // tolerances — cheaper modules, same query semantics up to epsilon.
      opts.approx_order = std::max(2, opts.approx_order / 2);
      opts.tolerance = std::max(opts.tolerance * 1e3, 1e-6);
      opts.eval_epsilon = Rational(BigInt(1), BigInt::Pow2(12));
    }
    if (rung >= 2) {
      // Linear-only: Fourier-Motzkin without the CAD fallback. Queries
      // that genuinely need CAD exhaust immediately instead of blowing up.
      opts.qe.linear_only = true;
    }
    CalcFEvaluator evaluator(LookupFor(snapshot), opts);
    StatusOr<CalcFResult> result = evaluator.EvaluateText(text);
    ++v.attempts;
    // One coherent snapshot: workers spawned by a parallel attempt all
    // charge this governor, so the three readings are taken through the
    // governor's atomic snapshot rather than three bare field reads.
    ResourceGovernor::Consumption consumed = gov.Snapshot();
    v.steps_consumed = consumed.steps;
    v.bytes_consumed = consumed.bytes;
    v.elapsed_seconds = consumed.elapsed_seconds;
    if (result.ok()) {
      v.ok = true;
      v.rung = kRungNames[rung];
      CCDB_METRIC_COUNT(rung == 0 ? "db.governed_answered_full"
                                  : "db.governed_answered_degraded",
                        1);
      return result;
    }
    if (result.status().code() != StatusCode::kResourceExhausted) {
      // Semantic errors (parse failure, kUndefined, ...) are not budget
      // problems; degrading would not help.
      return result.status();
    }
    v.exhausted_rungs.push_back(std::string(kRungNames[rung]) + ": " +
                                result.status().message());
    last = result.status();
    if (gov.reason() == ExhaustionReason::kCancelled) break;  // user asked to stop
  }
  CCDB_METRIC_COUNT("db.governed_exhausted", 1);
  return last;
  }();
  if (log) {
    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      log_start)
            .count();
    std::vector<std::pair<std::string, std::uint64_t>> read_set;
    bool have_read_set = false;
    if (StatusOr<std::vector<std::string>> names =
            RelationsReadBy(text, base_options.qe.memo);
        names.ok()) {
      read_set = ResolveReadSet(*names, *snapshot);
      have_read_set = true;
    }
    AppendQueryLogRecord(
        qlog, ctx.session_id, FingerprintFor(ctx), "governed", text,
        snapshot->version(), outcome, /*cache_hit=*/false, &v, elapsed,
        MetricDeltas(before, MetricsRegistry::Global().SnapshotValues()),
        have_read_set ? &read_set : nullptr);
  }
  return outcome;
}

ConstraintDatabase::ConstraintDatabase(CalcFOptions options)
    : options_(std::move(options)), db_id_(Catalog::ReserveVersion()) {}

ConstraintDatabase::ConstraintDatabase(ConstraintDatabase&& other) noexcept
    : options_(std::move(other.options_)),
      catalog_(std::move(other.catalog_)),
      db_id_(other.db_id_),
      durability_(other.durability_),
      store_(std::move(other.store_)) {
  std::lock_guard<std::mutex> lock(other.fixpoint_mu_);
  fixpoint_states_ = std::move(other.fixpoint_states_);
}

ConstraintDatabase& ConstraintDatabase::operator=(
    ConstraintDatabase&& other) noexcept {
  if (this == &other) return *this;
  options_ = std::move(other.options_);
  catalog_ = std::move(other.catalog_);
  db_id_ = other.db_id_;
  durability_ = other.durability_;
  store_ = std::move(other.store_);
  std::scoped_lock lock(fixpoint_mu_, other.fixpoint_mu_);
  fixpoint_states_ = std::move(other.fixpoint_states_);
  return *this;
}

ConstraintDatabase::~ConstraintDatabase() {
  // Close-time checkpoint: fold any WAL records into a checkpoint so the
  // next open recovers without replay. Best effort — on failure the WAL
  // still holds everything acknowledged, so nothing is lost.
  if (store_ != nullptr && store_->wal_record_bytes() > 0) {
    Status st = CheckpointLocked();
    if (!st.ok()) {
      CCDB_LOG(WARN) << "close-time checkpoint failed (WAL retains state): "
                     << st.ToString();
    }
  }
}

StatusOr<ConstraintDatabase> ConstraintDatabase::OpenDurable(
    const std::string& dir, CalcFOptions options,
    DurabilityOptions durability) {
  CCDB_METRIC_COUNT("db.durable_opens", 1);
  ConstraintDatabase db(std::move(options));
  db.durability_ = durability;
  CCDB_ASSIGN_OR_RETURN(db.store_, DurableStore::Open(dir, durability));
  db.catalog_ = db.store_->TakeCatalog();
  return db;
}

Status ConstraintDatabase::Checkpoint() {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  return CheckpointLocked();
}

Status ConstraintDatabase::CheckpointLocked() {
  if (store_ == nullptr) {
    return Status::InvalidArgument(
        "checkpoint requires a durable database (OpenDurable)");
  }
  // A fresh stamp exceeds every record logged so far (stamps are reserved
  // before their append), so replay after this checkpoint skips them all.
  return store_->WriteCheckpoint(catalog_.Serialize(),
                                 Catalog::ReserveVersion());
}

CalcFEvaluator::RelationLookup ConstraintDatabase::MakeLookup() const {
  return LookupFor(catalog_.Snapshot());
}

const std::string& ConstraintDatabase::FingerprintFor(const ExecContext& ctx) {
  return ctx.config_fingerprint != nullptr ? *ctx.config_fingerprint
                                           : ProcessConfigFingerprint();
}

CalcFEvaluator::RelationLookup ConstraintDatabase::LookupFor(
    std::shared_ptr<const Catalog::View> snapshot) {
  return [snapshot = std::move(snapshot)](
             const std::string& name) -> StatusOr<ConstraintRelation> {
    return snapshot->GetRelation(name);
  };
}

Status ConstraintDatabase::MutateDurably(
    WalRecord::Op op, const std::string& payload,
    const std::function<Status()>& precheck,
    const std::function<Status()>& apply) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  // Preconditions run under the same lock as the append: a record that
  // reaches the WAL is guaranteed replayable (no duplicate-name Define, no
  // Drop of a missing relation can be logged even under racing mutators).
  CCDB_RETURN_IF_ERROR(precheck());
  if (store_ != nullptr) {
    // Write-ahead: reserve the version stamp, log, and only then apply.
    // If the append fails (injected fault, full disk) the mutation is
    // rejected — the catalog never holds state the log does not.
    CCDB_RETURN_IF_ERROR(
        store_->LogMutation(op, payload, Catalog::ReserveVersion()));
  }
  CCDB_RETURN_IF_ERROR(apply());
  if (store_ != nullptr &&
      store_->wal_record_bytes() >= durability_.checkpoint_bytes) {
    Status st = CheckpointLocked();
    if (!st.ok()) {
      // The mutation itself is durable (it is in the WAL); a failed
      // rotation only defers compaction to the next attempt.
      CCDB_LOG(WARN) << "auto-checkpoint failed (retrying later): "
                     << st.ToString();
    }
  }
  return Status::Ok();
}

Status ConstraintDatabase::Define(const std::string& definition) {
  // Parse BEFORE logging: a record in the WAL must be replayable, so
  // anything that would fail to apply is rejected up front.
  CCDB_ASSIGN_OR_RETURN(ParsedRelationDef def, ParseRelationDef(definition));
  // Log the canonical rendering, not the user's text: replay goes through
  // the same serializer/parser pair as checkpoints, so the recovered
  // relation is bit-identical however the definition was spelled.
  const std::string payload = SerializeRelationDef(def.name, def.relation);
  std::string name = def.name;
  ConstraintRelation relation = std::move(def.relation);
  return MutateDurably(
      WalRecord::Op::kDefine, payload,
      [&]() {
        if (catalog_.HasRelation(name)) {
          return Status::AlreadyExists("relation " + name +
                                       " already exists");
        }
        return Status::Ok();
      },
      [&]() { return catalog_.AddRelation(name, std::move(relation)); });
}

Status ConstraintDatabase::Register(const std::string& name,
                                    ConstraintRelation relation) {
  const std::string payload = SerializeRelationDef(name, relation);
  return MutateDurably(
      WalRecord::Op::kRegister, payload,
      [&]() {
        if (catalog_.HasRelation(name)) {
          return Status::AlreadyExists("relation " + name +
                                       " already exists");
        }
        return Status::Ok();
      },
      [&]() { return catalog_.AddRelation(name, std::move(relation)); });
}

Status ConstraintDatabase::Drop(const std::string& name) {
  return MutateDurably(
      WalRecord::Op::kDrop, name,
      [&]() {
        if (!catalog_.HasRelation(name)) {
          return Status::NotFound("relation " + name + " not found");
        }
        return Status::Ok();
      },
      [&]() { return catalog_.DropRelation(name); });
}

Status ConstraintDatabase::Insert(const std::string& definition) {
  // Parse BEFORE logging and log the canonical rendering, exactly like
  // Define: a kInsert record in the WAL must replay bit-identically.
  CCDB_ASSIGN_OR_RETURN(ParsedRelationDef def, ParseRelationDef(definition));
  const std::string payload = SerializeRelationDef(def.name, def.relation);
  std::string name = def.name;
  ConstraintRelation delta = std::move(def.relation);
  return MutateDurably(
      WalRecord::Op::kInsert, payload,
      [&]() {
        // The catalog re-checks both conditions, but they must hold BEFORE
        // the WAL append — a logged record that cannot apply would poison
        // replay.
        StatusOr<ConstraintRelation> existing = catalog_.GetRelation(name);
        if (!existing.ok()) return existing.status();
        if (existing->arity() != delta.arity()) {
          return Status::InvalidArgument(
              "insert arity " + std::to_string(delta.arity()) +
              " does not match relation " + name + " arity " +
              std::to_string(existing->arity()));
        }
        return Status::Ok();
      },
      [&]() { return catalog_.InsertTuples(name, delta); });
}

StatusOr<CalcFResult> ConstraintDatabase::Query(const std::string& text) const {
  return QueryImpl(text, nullptr, ExecContext{});
}

StatusOr<CalcFResult> ConstraintDatabase::QueryImpl(
    const std::string& text, bool* cache_hit, const ExecContext& ctx) const {
  CCDB_TRACE_SPAN("db.query");
  CCDB_METRIC_COUNT("db.queries", 1);
  if (cache_hit != nullptr) *cache_hit = false;
  const CalcFOptions& options = OptionsFor(ctx);
  QueryLog& qlog = ctx.log != nullptr ? *ctx.log : QueryLog::Global();
  const bool log = qlog.enabled();
  std::map<std::string, std::uint64_t> before;
  if (log) before = MetricsRegistry::Global().SnapshotValues();
  auto log_start = std::chrono::steady_clock::now();
  bool hit = false;
  // One catalog snapshot for the whole query: the memo key's read-set
  // versions and every relation the evaluator instantiates come from the
  // same immutable catalog state, even under concurrent mutators. A
  // pinned-session context supplies its own snapshot — the query then
  // answers against that pinned version no matter what writers did since.
  std::shared_ptr<const Catalog::View> snapshot = SnapshotFor(ctx);
  // Pure memo on the whole pipeline: a hit returns exactly the result a
  // re-evaluation would produce (same text, same versions of the relations
  // the query reads, same immutable options). Governed evaluations bypass
  // the cache entirely so budget charging never depends on temperature.
  const bool use_cache = options.governor == nullptr &&
                         options.qe.governor == nullptr &&
                         MemoCachesEnabledFor(options.qe.memo);
  // The query's read-set at this snapshot — the memo key and the log's
  // invalidation scope. Unparsable text has no read-set (the evaluator
  // below reports the parse error) and is never cached.
  std::vector<std::pair<std::string, std::uint64_t>> read_set;
  bool have_read_set = false;
  if (use_cache || log) {
    if (StatusOr<std::vector<std::string>> names =
            RelationsReadBy(text, options.qe.memo);
        names.ok()) {
      read_set = ResolveReadSet(*names, *snapshot);
      have_read_set = true;
    }
  }
  StatusOr<CalcFResult> outcome = [&]() -> StatusOr<CalcFResult> {
    std::string key;
    if (use_cache && have_read_set) {
      key = QueryCacheKey(db_id_, text, read_set,
                          PlannerResolved(options.qe));
      CalcFResult cached;
      if (QueryResultCache().Lookup(key, &cached)) {
        hit = true;
        return cached;
      }
    }
    CalcFEvaluator evaluator(LookupFor(snapshot), options);
    CCDB_ASSIGN_OR_RETURN(CalcFResult result, evaluator.EvaluateText(text));
    if (use_cache && have_read_set) QueryResultCache().Insert(key, result);
    return result;
  }();
  if (cache_hit != nullptr) *cache_hit = hit;
  if (log) {
    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      log_start)
            .count();
    AppendQueryLogRecord(
        qlog, ctx.session_id, FingerprintFor(ctx), "query", text,
        snapshot->version(), outcome, hit, /*verdict=*/nullptr, elapsed,
        MetricDeltas(before, MetricsRegistry::Global().SnapshotValues()),
        have_read_set ? &read_set : nullptr);
  }
  return outcome;
}

StatusOr<std::string> ConstraintDatabase::Plan(const std::string& text) const {
  return Plan(text, ExecContext{});
}

StatusOr<std::string> ConstraintDatabase::Plan(const std::string& text,
                                               const ExecContext& ctx) const {
  CCDB_TRACE_SPAN("db.plan");
  CCDB_METRIC_COUNT("db.plans", 1);
  CCDB_ASSIGN_OR_RETURN(auto parsed, ParseFormula(text));
  std::vector<std::string> columns = parsed->FreeVarNames();
  VarEnv env;
  for (const std::string& column : columns) env.Intern(column);
  int arity = env.next_index;
  CCDB_ASSIGN_OR_RETURN(Formula lowered, LowerFormula(*parsed, &env));
  CCDB_ASSIGN_OR_RETURN(Formula instantiated,
                        lowered.InstantiateRelations(LookupFor(SnapshotFor(ctx))));
  QueryPlan plan = GetOrBuildPlan(instantiated, arity, OptionsFor(ctx).qe);
  return plan.ToString(env.NamesByIndex());
}

StatusOr<ExplainResult> ConstraintDatabase::Explain(
    const std::string& text) const {
  return Explain(text, ExecContext{});
}

StatusOr<ExplainResult> ConstraintDatabase::Explain(
    const std::string& text, const ExecContext& ctx) const {
  CCDB_TRACE_SPAN("db.explain");
  CCDB_METRIC_COUNT("db.explains", 1);
  ExplainResult explain;
  auto before = MetricsRegistry::Global().SnapshotValues();
  auto start = std::chrono::steady_clock::now();
  CCDB_ASSIGN_OR_RETURN(explain.result,
                        QueryImpl(text, &explain.from_cache, ctx));
  // NUMERICAL EVALUATION (Figure 1, step 3): only meaningful when the
  // answer is a relation; a scalar aggregate is already a value.
  if (!explain.result.has_scalar && explain.result.relation.arity() > 0) {
    explain.ran_numeric = true;
    auto numeric_start = std::chrono::steady_clock::now();
    CCDB_ASSIGN_OR_RETURN(NumericalEvaluation numeric,
                          EvaluateNumerically(explain.result.relation));
    explain.numeric_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      numeric_start)
            .count();
    explain.numeric_finite = numeric.finite;
    explain.numeric_points = numeric.points.size();
  }
  explain.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  explain.metric_deltas =
      MetricDeltas(before, MetricsRegistry::Global().SnapshotValues());
  return explain;
}

StatusOr<ExplainAnalyzeResult> ConstraintDatabase::ExplainAnalyze(
    const std::string& text) const {
  return ExplainAnalyze(text, ExecContext{});
}

StatusOr<ExplainAnalyzeResult> ConstraintDatabase::ExplainAnalyze(
    const std::string& text, const ExecContext& ctx) const {
  CCDB_TRACE_SPAN("db.explain_analyze");
  CCDB_METRIC_COUNT("db.explain_analyzes", 1);
  QueryLog& qlog = ctx.log != nullptr ? *ctx.log : QueryLog::Global();
  const bool log = qlog.enabled();
  ExplainAnalyzeResult out;
  auto before = MetricsRegistry::Global().SnapshotValues();
  auto start = std::chrono::steady_clock::now();
  // Run the actual pipeline with a profile sink armed — the whole-query
  // memo is bypassed on purpose (EXPLAIN ANALYZE observes an execution,
  // not a memo lookup); the QE / plan / resultant memo layers still apply
  // and surface below as cache temperature. The sink is observation only:
  // the evaluation is byte-identical to Query(text).
  ProfileSink sink;
  CalcFOptions opts = OptionsFor(ctx);
  opts.qe.profile = &sink;
  std::shared_ptr<const Catalog::View> snapshot = SnapshotFor(ctx);
  std::vector<std::pair<std::string, std::uint64_t>> read_set;
  bool have_read_set = false;
  if (log) {
    if (StatusOr<std::vector<std::string>> names =
            RelationsReadBy(text, opts.qe.memo);
        names.ok()) {
      read_set = ResolveReadSet(*names, *snapshot);
      have_read_set = true;
    }
  }
  CalcFEvaluator evaluator(LookupFor(snapshot), opts);
  StatusOr<CalcFResult> outcome = evaluator.EvaluateText(text);
  if (!outcome.ok()) {
    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (log) {
      AppendQueryLogRecord(
          qlog, ctx.session_id, FingerprintFor(ctx), "explain_analyze", text,
          snapshot->version(), outcome, /*cache_hit=*/false,
          /*verdict=*/nullptr, elapsed,
          MetricDeltas(before, MetricsRegistry::Global().SnapshotValues()),
          have_read_set ? &read_set : nullptr);
    }
    return outcome.status();
  }
  out.result = std::move(*outcome);
  QueryProfile& profile = out.profile;
  // NUMERICAL EVALUATION (Figure 1, step 3), same rule as Explain: only
  // meaningful when the answer is a relation.
  if (!out.result.has_scalar && out.result.relation.arity() > 0) {
    profile.ran_numeric = true;
    auto numeric_start = std::chrono::steady_clock::now();
    CCDB_ASSIGN_OR_RETURN(NumericalEvaluation numeric,
                          EvaluateNumerically(out.result.relation));
    profile.numeric_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      numeric_start)
            .count();
    profile.numeric_finite = numeric.finite;
    profile.numeric_points = numeric.points.size();
  }
  profile.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  profile.stats = out.result.stats;
  profile.qe_rounds = sink.Take();
  profile.metric_deltas =
      MetricDeltas(before, MetricsRegistry::Global().SnapshotValues());
  profile.qe_cache_hits = Delta(profile.metric_deltas, "qe_cache_hits");
  profile.qe_cache_misses = Delta(profile.metric_deltas, "qe_cache_misses");
  profile.plan_cache_hits = Delta(profile.metric_deltas, "plan_cache_hits");
  profile.resultant_cache_hits =
      Delta(profile.metric_deltas, "resultant_cache_hits");
  profile.pool_tasks_completed =
      Delta(profile.metric_deltas, "threadpool.tasks_completed");
  profile.pool_tasks_stolen =
      Delta(profile.metric_deltas, "threadpool.tasks_stolen");
  profile.pool_tasks_inline =
      Delta(profile.metric_deltas, "threadpool.tasks_inline");
  profile.pool_threads = static_cast<std::uint64_t>(
      ThreadPool::Resolve(opts.qe.pool)->threads());
  if (opts.qe.governor != nullptr) {
    profile.governed = true;
    ResourceGovernor::Consumption consumed = opts.qe.governor->Snapshot();
    profile.governor_steps = consumed.steps;
    profile.governor_bytes = consumed.bytes;
  }
  if (log) {
    StatusOr<CalcFResult> logged = out.result;
    AppendQueryLogRecord(qlog, ctx.session_id, FingerprintFor(ctx),
                         "explain_analyze", text, snapshot->version(), logged,
                         /*cache_hit=*/false, /*verdict=*/nullptr,
                         profile.total_seconds, profile.metric_deltas,
                         have_read_set ? &read_set : nullptr,
                         profile.ToJson());
  }
  return out;
}

StatusOr<CalcFResult> ConstraintDatabase::QueryFp(const std::string& text,
                                                  std::uint32_t k,
                                                  FpQeStats* stats) const {
  return QueryFp(text, k, stats, ExecContext{});
}

StatusOr<CalcFResult> ConstraintDatabase::QueryFp(
    const std::string& text, std::uint32_t k, FpQeStats* stats,
    const ExecContext& ctx) const {
  CCDB_TRACE_SPAN("db.query_fp");
  CCDB_METRIC_COUNT("db.fp_queries", 1);
  CCDB_ASSIGN_OR_RETURN(auto parsed, ParseFormula(text));
  std::vector<std::string> columns = parsed->FreeVarNames();
  VarEnv env;
  for (const std::string& column : columns) env.Intern(column);
  int arity = env.next_index;
  CCDB_ASSIGN_OR_RETURN(Formula lowered, LowerFormula(*parsed, &env));
  CCDB_ASSIGN_OR_RETURN(
      Formula instantiated,
      lowered.InstantiateRelations(LookupFor(SnapshotFor(ctx))));
  CalcFResult result;
  CCDB_ASSIGN_OR_RETURN(
      result.relation,
      EliminateQuantifiersFp(instantiated, arity, FpContext{k}, stats));
  result.column_names = std::move(columns);
  return result;
}

StatusOr<std::vector<std::vector<Rational>>> ConstraintDatabase::Solve(
    const std::string& text, const Rational& epsilon) const {
  return Solve(text, epsilon, ExecContext{});
}

StatusOr<std::vector<std::vector<Rational>>> ConstraintDatabase::Solve(
    const std::string& text, const Rational& epsilon,
    const ExecContext& ctx) const {
  CCDB_TRACE_SPAN("db.solve");
  CCDB_METRIC_COUNT("db.solves", 1);
  CCDB_ASSIGN_OR_RETURN(CalcFResult result, QueryImpl(text, nullptr, ctx));
  return ApproximateSolutions(result.relation, epsilon);
}

StatusOr<std::vector<std::pair<std::string, std::uint64_t>>>
ConstraintDatabase::ReadSet(const std::string& text) const {
  return ReadSet(text, ExecContext{});
}

StatusOr<std::vector<std::pair<std::string, std::uint64_t>>>
ConstraintDatabase::ReadSet(const std::string& text,
                            const ExecContext& ctx) const {
  CCDB_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        RelationsReadBy(text, OptionsFor(ctx).qe.memo));
  return ResolveReadSet(names, *SnapshotFor(ctx));
}

namespace {

// Deterministic identity of (program, evaluation-relevant options) for the
// materialized-fixpoint map. Rule order matters (it is the merge order),
// so the rendering is a faithful serialization, not a canonical form.
std::string ProgramFingerprint(const DatalogProgram& program,
                               const DatalogOptions& options) {
  std::ostringstream out;
  out << "k=" << options.precision_k << ";max=" << options.max_iterations
      << ";";
  for (const auto& [name, arity] : program.idb_arities) {
    out << name << "/" << arity << ";";
  }
  for (const DatalogRule& rule : program.rules) {
    out << rule.head << "(";
    for (std::size_t i = 0; i < rule.head_vars.size(); ++i) {
      if (i > 0) out << ",";
      out << rule.head_vars[i];
    }
    out << "):-";
    for (const DatalogLiteral& lit : rule.body) {
      if (lit.is_relation) {
        if (lit.negated) out << "!";
        out << lit.relation << "(";
        for (std::size_t i = 0; i < lit.args.size(); ++i) {
          if (i > 0) out << ",";
          out << lit.args[i];
        }
        out << ")";
      } else {
        out << "{" << lit.constraint.ToString() << "}";
      }
      out << ",";
    }
    out << ";";
  }
  return out.str();
}

}  // namespace

StatusOr<std::map<std::string, ConstraintRelation>>
ConstraintDatabase::Fixpoint(const DatalogProgram& program,
                             const DatalogOptions& options,
                             DatalogStats* stats) const {
  return Fixpoint(program, options, stats, ExecContext{});
}

StatusOr<std::map<std::string, ConstraintRelation>>
ConstraintDatabase::Fixpoint(const DatalogProgram& program,
                             const DatalogOptions& options,
                             DatalogStats* stats,
                             const ExecContext& ctx) const {
  CCDB_TRACE_SPAN("db.fixpoint");
  CCDB_METRIC_COUNT("db.fixpoints", 1);
  // One snapshot: the EDB contents and the versions they are keyed under
  // come from the same catalog state.
  std::shared_ptr<const Catalog::View> snapshot = SnapshotFor(ctx);
  std::map<std::string, ConstraintRelation> edb;
  std::map<std::string, RelationVersion> versions;
  for (const DatalogRule& rule : program.rules) {
    for (const DatalogLiteral& lit : rule.body) {
      if (!lit.is_relation || program.idb_arities.count(lit.relation) > 0 ||
          edb.count(lit.relation) > 0) {
        continue;
      }
      CCDB_ASSIGN_OR_RETURN(ConstraintRelation relation,
                            snapshot->GetRelation(lit.relation));
      versions[lit.relation] =
          snapshot->GetRelationVersion(lit.relation).value_or(
              RelationVersion{});
      edb.emplace(lit.relation, std::move(relation));
    }
  }
  DatalogStats local_stats;
  DatalogStats* s = stats != nullptr ? stats : &local_stats;
  *s = DatalogStats{};
  // Materialized state is a memo layer: off under a governor (budget
  // charging must not depend on temperature) and with the caches disabled,
  // exactly like the whole-query memo. The incremental toggle resolves
  // per call (sessions force it from their config); kAuto follows the
  // process-wide switch.
  const bool incremental =
      options.incremental == PlanToggle::kOn ||
      (options.incremental == PlanToggle::kAuto && IncrementalEnabled());
  const bool use_state = incremental &&
                         MemoCachesEnabledFor(options.qe.memo) &&
                         options.qe.governor == nullptr;
  std::string key;
  if (use_state) {
    key = ProgramFingerprint(program, options);
    FixpointEntry entry;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(fixpoint_mu_);
      auto it = fixpoint_states_.find(key);
      if (it != fixpoint_states_.end()) {
        entry = it->second;
        found = true;
      }
    }
    if (found && entry.edb_versions.size() == versions.size()) {
      bool exact = true;
      bool grown_only = true;  // equal bases: old tuples are a prefix
      for (const auto& [name, old_version] : entry.edb_versions) {
        auto current = versions.find(name);
        if (current == versions.end() ||
            current->second.base != old_version.base) {
          exact = grown_only = false;
          break;
        }
        if (current->second.version != old_version.version) exact = false;
      }
      if (exact) {
        // Nothing the program reads changed: replay the stored fixpoint.
        CCDB_METRIC_COUNT("datalog_fixpoint_hits", 1);
        s->reached_fixpoint = true;
        return entry.state.idb;
      }
      if (grown_only) {
        // Append-only growth: resume semi-naive rounds from the stored
        // state with the new tuples as seed deltas. ResumeDatalog itself
        // rejects the ineligible cases (negation, Z_k, a shrunk EDB) —
        // those fall through to the cold recompute below.
        StatusOr<std::map<std::string, ConstraintRelation>> resumed =
            ResumeDatalog(program, edb, &entry.state, options, s);
        if (resumed.ok()) {
          CCDB_METRIC_COUNT("datalog_fixpoint_resumes", 1);
          entry.edb_versions = versions;
          std::lock_guard<std::mutex> lock(fixpoint_mu_);
          fixpoint_states_[key] = std::move(entry);
          return resumed;
        }
        *s = DatalogStats{};
      }
    }
  }
  StatusOr<std::map<std::string, ConstraintRelation>> idb_or =
      EvaluateDatalog(program, edb, options, s);
  if (!idb_or.ok()) return idb_or.status();
  std::map<std::string, ConstraintRelation>& idb = *idb_or;
  if (use_state) {
    CCDB_METRIC_COUNT("datalog_fixpoint_recomputes", 1);
    // EvaluateDatalog only returns OK at a true fixpoint, so the state is
    // always resumable-from.
    FixpointEntry entry;
    entry.edb_versions = std::move(versions);
    entry.state.idb = idb;
    for (const auto& [name, relation] : edb) {
      entry.state.edb_sizes[name] = relation.tuples().size();
    }
    std::lock_guard<std::mutex> lock(fixpoint_mu_);
    fixpoint_states_[key] = std::move(entry);
  }
  return std::move(idb);
}

Status ConstraintDatabase::Load(const std::string& path) {
  CCDB_ASSIGN_OR_RETURN(Catalog loaded, Catalog::LoadFromFile(path));
  // A wholesale load is one logical mutation: the WAL record carries the
  // full serialization so replay reproduces exactly this catalog state.
  return MutateDurably(
      WalRecord::Op::kLoad, loaded.Serialize(),
      []() { return Status::Ok(); },
      [&]() {
        catalog_ = std::move(loaded);
        return Status::Ok();
      });
}

}  // namespace ccdb
