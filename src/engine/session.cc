#include "engine/session.h"

#include <atomic>
#include <utility>

#include "base/metrics.h"

namespace ccdb {

namespace {

std::uint64_t NextSessionId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::unique_ptr<Session> ConstraintDatabase::OpenSession(EngineConfig config) {
  CCDB_METRIC_COUNT("db.sessions_opened", 1);
  return std::unique_ptr<Session>(new Session(this, std::move(config)));
}

Session::Session(ConstraintDatabase* db, EngineConfig config)
    : db_(db),
      config_(std::move(config)),
      fingerprint_(config_.Fingerprint()),
      id_(NextSessionId()),
      pool_(std::make_unique<ThreadPool>(config_.threads)),
      options_(db->options()) {
  // The session config is authoritative for the toggles it carries: kOn /
  // kOff here outrank the process-wide switches, so two sessions with
  // opposite settings coexist in one process. (Forced-on memo layers still
  // stand down under armed failpoints and governors — the pure-memo
  // contract outranks any configuration.)
  options_.qe.plan = config_.plan ? PlanToggle::kOn : PlanToggle::kOff;
  options_.qe.memo = config_.qe_cache ? PlanToggle::kOn : PlanToggle::kOff;
  options_.qe.pool = pool_.get();
}

Session::~Session() = default;

void Session::PinSnapshot() {
  std::shared_ptr<const Catalog::View> snapshot = db_->catalog().Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  pinned_ = std::move(snapshot);
}

void Session::Unpin() {
  std::lock_guard<std::mutex> lock(mu_);
  pinned_ = nullptr;
}

bool Session::pinned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_ != nullptr;
}

std::shared_ptr<const Catalog::View> Session::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_;
}

void Session::SetQueryLog(QueryLog* log) {
  std::lock_guard<std::mutex> lock(mu_);
  log_ = log;
}

ConstraintDatabase::ExecContext Session::Context() const {
  ConstraintDatabase::ExecContext ctx;
  ctx.options = &options_;
  ctx.session_id = id_;
  ctx.config_fingerprint = &fingerprint_;
  std::lock_guard<std::mutex> lock(mu_);
  ctx.log = log_;
  ctx.snapshot = pinned_;
  return ctx;
}

StatusOr<CalcFResult> Session::Query(const std::string& text) const {
  return db_->QueryImpl(text, nullptr, Context());
}

StatusOr<CalcFResult> Session::QueryWithPolicy(const std::string& text,
                                               const QueryPolicy& policy,
                                               QueryVerdict* verdict) const {
  return db_->QueryWithPolicy(text, policy, verdict, Context());
}

StatusOr<ExplainResult> Session::Explain(const std::string& text) const {
  return db_->Explain(text, Context());
}

StatusOr<ExplainAnalyzeResult> Session::ExplainAnalyze(
    const std::string& text) const {
  return db_->ExplainAnalyze(text, Context());
}

StatusOr<std::string> Session::Plan(const std::string& text) const {
  return db_->Plan(text, Context());
}

StatusOr<CalcFResult> Session::QueryFp(const std::string& text,
                                       std::uint32_t k,
                                       FpQeStats* stats) const {
  return db_->QueryFp(text, k, stats, Context());
}

StatusOr<std::vector<std::vector<Rational>>> Session::Solve(
    const std::string& text, const Rational& epsilon) const {
  return db_->Solve(text, epsilon, Context());
}

StatusOr<std::map<std::string, ConstraintRelation>> Session::Fixpoint(
    const DatalogProgram& program, const DatalogOptions& options,
    DatalogStats* stats) const {
  DatalogOptions merged = options;
  merged.seminaive =
      config_.seminaive ? PlanToggle::kOn : PlanToggle::kOff;
  merged.incremental =
      config_.incremental ? PlanToggle::kOn : PlanToggle::kOff;
  merged.qe.plan = options_.qe.plan;
  merged.qe.memo = options_.qe.memo;
  // The session pool drives the per-rule fan-out unless the caller brought
  // a pool of their own.
  if (merged.qe.pool == nullptr) merged.qe.pool = pool_.get();
  return db_->Fixpoint(program, merged, stats, Context());
}

StatusOr<std::vector<std::pair<std::string, std::uint64_t>>> Session::ReadSet(
    const std::string& text) const {
  return db_->ReadSet(text, Context());
}

Status Session::Define(const std::string& definition) {
  return db_->Define(definition);
}

Status Session::Register(const std::string& name,
                         ConstraintRelation relation) {
  return db_->Register(name, std::move(relation));
}

Status Session::Drop(const std::string& name) { return db_->Drop(name); }

Status Session::Insert(const std::string& definition) {
  return db_->Insert(definition);
}

}  // namespace ccdb
