#ifndef CCDB_ENGINE_DATABASE_H_
#define CCDB_ENGINE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "base/config.h"
#include "base/profile.h"
#include "base/query_log.h"
#include "base/resource.h"
#include "base/status.h"
#include "datalog/datalog.h"
#include "fp/fp_semantics.h"
#include "numeric/numerical_eval.h"
#include "query/calcf.h"
#include "storage/catalog.h"
#include "storage/wal.h"

namespace ccdb {

/// EXPLAIN output: the query's result plus a per-stage breakdown of the
/// Figure-1 pipeline (INSTANTIATION, QUANTIFIER ELIMINATION, NUMERICAL
/// EVALUATION, AGGREGATE EVALUATION) and the process-wide metric counters
/// this query moved.
struct ExplainResult {
  CalcFResult result;
  /// The whole-query memo answered: the pipeline did not run this time, so
  /// stage timings and metric deltas reflect the (near-free) cache hit
  /// while the stats — including the plan — are the cached evaluation's.
  bool from_cache = false;
  /// Whether the NUMERICAL EVALUATION stage ran (it is skipped for
  /// scalar-aggregate answers, which are already values).
  bool ran_numeric = false;
  /// When it ran: was the answer set finite, and how many points?
  bool numeric_finite = false;
  std::size_t numeric_points = 0;
  double numeric_seconds = 0.0;
  /// Total wall time of the whole EXPLAIN-ed evaluation.
  double total_seconds = 0.0;
  /// Delta of every registry metric that changed during the query
  /// (counter/gauge values after minus before; histograms contribute
  /// `<name>.count` and `<name>.sum`).
  std::map<std::string, std::uint64_t> metric_deltas;

  /// Multi-line human-readable plan/profile rendering.
  std::string ToString() const;
};

/// EXPLAIN ANALYZE output (Observability v2, DESIGN.md §12): everything a
/// profiled execution observed. Stage timings come from CalcFStats; the
/// per-plan-node attribution trees (one per QE round the evaluator ran —
/// aggregate stages first, the main round last) come from the executor's
/// ProfileSink; cache temperature and thread-pool utilization are metric
/// deltas across the run. Collection is observation only: the answer is
/// byte-identical to an unprofiled Query at every CCDB_PLAN × thread
/// setting.
struct QueryProfile {
  /// Total wall time of the profiled evaluation (plus the numeric stage
  /// when it ran).
  double total_seconds = 0.0;
  /// Stage timings / counters of the evaluation (parse, instantiation, QE,
  /// aggregates) plus the plan summary line.
  CalcFStats stats;
  /// Per-plan-node attribution trees, one per QE round, in round order.
  /// Labels mirror the plan ("union", "block[cad] exists x1", ...) or the
  /// monolithic engine stage ("qe.fourier_motzkin", "qe[cached]").
  std::vector<ProfileNode> qe_rounds;
  /// Whether the NUMERICAL EVALUATION stage ran, and what it found.
  bool ran_numeric = false;
  bool numeric_finite = false;
  std::size_t numeric_points = 0;
  double numeric_seconds = 0.0;
  /// Cache temperature: hit/miss deltas of the memo caches this query
  /// touched (qe_cache, plan_cache, resultant_cache).
  std::uint64_t qe_cache_hits = 0;
  std::uint64_t qe_cache_misses = 0;
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t resultant_cache_hits = 0;
  /// Thread-pool utilization deltas (tasks completed / stolen / run inline
  /// during this query) and the pool width it ran at.
  std::uint64_t pool_tasks_completed = 0;
  std::uint64_t pool_tasks_stolen = 0;
  std::uint64_t pool_tasks_inline = 0;
  std::uint64_t pool_threads = 0;
  /// Governor consumption of the profiled run; all zero when the database
  /// options carry no governor (the usual EXPLAIN ANALYZE configuration).
  bool governed = false;
  std::uint64_t governor_steps = 0;
  std::uint64_t governor_bytes = 0;
  /// Delta of every registry metric that moved during the query.
  std::map<std::string, std::uint64_t> metric_deltas;

  /// Multi-line rendering: stage table, annotated QE round trees, cache /
  /// pool summary lines.
  std::string ToString() const;
  /// Machine-readable JSON (single object; schema documented in DESIGN.md
  /// §12).
  std::string ToJson() const;
};

/// EXPLAIN ANALYZE: the actual query result plus the profile observed
/// while producing it.
struct ExplainAnalyzeResult {
  CalcFResult result;
  QueryProfile profile;

  /// The profile rendering followed by a one-line result summary.
  std::string ToString() const;
};

/// Resource policy of a governed query (QueryWithPolicy): the budgets each
/// attempt runs under, an optional external cancellation flag, and whether
/// the engine may degrade the answer quality to fit the budget.
struct QueryPolicy {
  /// Budget of each ladder attempt (deadline / steps / bytes). Each rung
  /// gets a fresh governor armed with these limits.
  ResourceLimits limits;
  /// Optional cooperative cancellation flag (e.g. flipped by a SIGINT
  /// handler). Borrowed, not owned; null = not cancellable.
  std::atomic<bool>* cancel = nullptr;
  /// When true (the default), a kResourceExhausted attempt retries on the
  /// next rung of the degradation ladder:
  ///   full -> reduced-precision -> linear-only.
  /// When false, the first exhaustion is final.
  bool allow_degradation = true;
};

/// What a governed query actually did: which rung answered (or that none
/// could), how many attempts ran, and the resources the answering (or
/// final failing) attempt consumed.
struct QueryVerdict {
  /// True when some rung produced an answer.
  bool ok = false;
  /// Name of the rung that answered: "full", "reduced-precision",
  /// "linear-only" — or "" when every rung was exhausted.
  std::string rung;
  /// Number of attempts made (1 = answered at full quality).
  int attempts = 0;
  /// Exhaustion messages of the rungs that ran out of budget, in order.
  std::vector<std::string> exhausted_rungs;
  /// Resources consumed by the last attempt.
  std::uint64_t steps_consumed = 0;
  std::uint64_t bytes_consumed = 0;
  double elapsed_seconds = 0.0;

  /// One-line human-readable rendering.
  std::string ToString() const;
};

/// The public facade of the constraint database system: a catalog of
/// finitely representable relations plus the CALC_F query processor,
/// covering the paper's full pipeline — INSTANTIATION, QUANTIFIER
/// ELIMINATION, NUMERICAL EVALUATION, and AGGREGATE EVALUATION (Figure 1
/// and Section 5).
///
/// Example:
///
///   ConstraintDatabase db;
///   db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0");
///   auto q = db.Query("exists y (S(x, y) and y <= 0)");
///   auto points = db.Solve("exists y (S(x, y) and y <= 0)", epsilon);
///   auto area = db.Query("SURFACE[x, y](S(x, y) and y <= 9)(z)");
class Session;

class ConstraintDatabase {
 public:
  explicit ConstraintDatabase(CalcFOptions options = {});
  ConstraintDatabase(ConstraintDatabase&& other) noexcept;
  ConstraintDatabase& operator=(ConstraintDatabase&& other) noexcept;
  /// A durable database checkpoints any unflushed WAL records on close
  /// (best effort — a failure is logged; the WAL still holds everything).
  ~ConstraintDatabase();

  /// Opens a crash-safe durable database rooted at directory `dir`
  /// (created if needed), recovering whatever a previous process left
  /// there: the newest valid checkpoint plus a WAL replay, tolerating a
  /// torn WAL tail, rejecting mid-log corruption with a Status naming the
  /// offset. After recovery every catalog mutation is logged write-ahead
  /// (fsync policy from `durability`, default CCDB_WAL_FSYNC) before it is
  /// applied, and the WAL is folded into an atomic checkpoint when it
  /// exceeds `durability.checkpoint_bytes`, on Checkpoint(), and on close.
  /// DESIGN.md §13.
  static StatusOr<ConstraintDatabase> OpenDurable(
      const std::string& dir, CalcFOptions options = {},
      DurabilityOptions durability = DurabilityOptions::FromEnv());

  /// True when this database was opened with OpenDurable.
  bool durable() const { return store_ != nullptr; }
  /// What recovery found when this durable database was opened (null for
  /// an in-memory database).
  const RecoveryInfo* recovery_info() const {
    return store_ == nullptr ? nullptr : &store_->recovery_info();
  }
  /// Forces a checkpoint now: catalog serialized, fsynced, atomically
  /// renamed into place, WAL rotated. kInvalidArgument when the database
  /// is not durable.
  Status Checkpoint();

  /// Defines a relation from "Name(cols...) := quantifier-free formula".
  Status Define(const std::string& definition);
  /// Registers an already-built relation (e.g. a previous query's output —
  /// the closed-form property of Theorem 5.5 makes this sound).
  Status Register(const std::string& name, ConstraintRelation relation);
  Status Drop(const std::string& name);
  /// Appends the tuples of "Name(cols...) := formula" to the EXISTING
  /// relation Name (same arity required). Append-only: the old tuples stay
  /// an unchanged prefix, so the relation's base version is preserved and
  /// only its change version advances — cached queries that do not read
  /// Name stay hot, and materialized Datalog fixpoints over Name resume
  /// incrementally instead of recomputing. Durable databases log the delta
  /// write-ahead (WAL op Insert).
  Status Insert(const std::string& definition);
  std::vector<std::string> RelationNames() const { return catalog_.RelationNames(); }
  StatusOr<ConstraintRelation> Relation(const std::string& name) const {
    return catalog_.GetRelation(name);
  }

  /// Evaluates a CALC_F query under the exact semantics; the result is a
  /// constraint relation in closed form plus scalar/statistics extras.
  StatusOr<CalcFResult> Query(const std::string& text) const;

  /// The read-set of `text`: every relation the query mentions, sorted by
  /// name, each with the per-relation version the current catalog holds
  /// (0 = not currently defined). Computed by parsing, not evaluating —
  /// this is exactly the set the whole-query memo keys on, so an Insert
  /// into a relation OUTSIDE a query's read-set leaves its cached answer
  /// valid. The REPL's `.deps`.
  StatusOr<std::vector<std::pair<std::string, std::uint64_t>>> ReadSet(
      const std::string& text) const;

  /// Runs a Datalog program with the catalog as EDB (every body relation
  /// not declared in idb_arities is read from one catalog snapshot).
  /// With incremental re-fixpoint on (CCDB_INCREMENTAL, ungoverned, memo
  /// caches enabled), the completed fixpoint is materialized per program
  /// and keyed on the EDB relations' versions:
  ///   - unchanged versions      -> the stored interpretation is returned
  ///                                (metric datalog_fixpoint_hits);
  ///   - append-only growth      -> semi-naive rounds resume from the
  ///     (equal base versions)      stored state with the new tuples as
  ///                                seed deltas (datalog_fixpoint_resumes);
  ///   - structural change, Z_k, -> recompute from scratch
  ///     or negated literals        (datalog_fixpoint_recomputes).
  /// Every path returns the same fixpoint a cold EvaluateDatalog would.
  StatusOr<std::map<std::string, ConstraintRelation>> Fixpoint(
      const DatalogProgram& program, const DatalogOptions& options = {},
      DatalogStats* stats = nullptr) const;

  /// Governed query: evaluates `text` under `policy`'s budgets, walking
  /// the graceful-degradation ladder when an attempt exhausts them —
  /// full quality first, then reduced precision (coarser approximation
  /// order / tolerances), then the linear-only fragment (Fourier–Motzkin
  /// without CAD). Each rung runs under a fresh governor armed with
  /// `policy.limits`. Returns the first rung's answer, or the last
  /// kResourceExhausted when every rung runs out; other errors surface
  /// immediately. `verdict`, when non-null, reports which rung answered
  /// and what the attempt consumed.
  StatusOr<CalcFResult> QueryWithPolicy(const std::string& text,
                                        const QueryPolicy& policy,
                                        QueryVerdict* verdict = nullptr) const;

  /// EXPLAIN: evaluates `text` like Query, additionally running the
  /// NUMERICAL EVALUATION stage when applicable, and reports per-stage
  /// wall times plus the metric counters the evaluation moved. On a
  /// whole-query cache hit the cached plan is still reported (marked
  /// "cached"), not an empty pipeline.
  StatusOr<ExplainResult> Explain(const std::string& text) const;

  /// EXPLAIN ANALYZE: ACTUALLY EXECUTES `text` with a profile sink armed
  /// and reports per-plan-node wall time (inclusive/exclusive), CAD cell
  /// counts, FM rounds, peak bigint bit length, cache temperature, and
  /// thread-pool utilization alongside the result. Bypasses the
  /// whole-query memo (the point is to observe the pipeline run; the QE /
  /// plan / resultant memo layers still apply and are what the cache
  /// temperature reports). The answer is byte-identical to Query(text) —
  /// profiling is observation only.
  StatusOr<ExplainAnalyzeResult> ExplainAnalyze(const std::string& text) const;

  /// PLAN: builds and renders the structure-aware query plan
  /// (plan/planner.h) for `text` WITHOUT executing it. Aggregate and
  /// analytic-function queries are not plannable as a single formula and
  /// return an error describing why.
  StatusOr<std::string> Plan(const std::string& text) const;

  /// Evaluates a pure first-order query under the finite precision
  /// semantics FO^F_QE with bit budget k (Section 4); partial — returns
  /// kUndefined on precision overflow. Aggregates and analytic functions
  /// are not part of FO^F_QE.
  StatusOr<CalcFResult> QueryFp(const std::string& text, std::uint32_t k,
                                FpQeStats* stats = nullptr) const;

  /// Full pipeline through NUMERICAL EVALUATION (Figure 1): runs the query
  /// and, when the answer set is finite, returns epsilon-approximations of
  /// all answer points (Theorem 3.2).
  StatusOr<std::vector<std::vector<Rational>>> Solve(
      const std::string& text, const Rational& epsilon) const;

  /// Membership of a point in a stored relation (index-accelerated).
  StatusOr<bool> Contains(const std::string& name,
                          const std::vector<Rational>& point) const {
    return catalog_.Contains(name, point);
  }

  Status Save(const std::string& path) const { return catalog_.SaveToFile(path); }
  Status Load(const std::string& path);

  /// Opens a session on this database: an isolated execution context
  /// carrying its own resolved EngineConfig (planner/memo/seminaive/
  /// incremental toggles, a private thread pool of `config.threads`
  /// runners), a unique session id stamped into query-log records, and an
  /// optional pinned catalog snapshot (Session::PinSnapshot) under which
  /// every read runs until unpinned — MVCC: writers keep mutating the
  /// database while the session observes one consistent version. Two
  /// sessions with different configs coexist in one process; answers are
  /// byte-identical across configs (the pure-memo and determinism
  /// contracts). The database must outlive the session.
  std::unique_ptr<Session> OpenSession(
      EngineConfig config = EngineConfig::Process());

  const Catalog& catalog() const { return catalog_; }
  const CalcFOptions& options() const { return options_; }

 private:
  friend class Session;

  /// Execution context threaded through the read path by the facade and by
  /// sessions: which options to evaluate under, which snapshot to read,
  /// which query log to stamp (and with what identity). Default-constructed
  /// = the facade path: database options, a fresh snapshot per call, the
  /// global log, session id 0, the process config fingerprint.
  struct ExecContext {
    /// Null = the database's own options_.
    const CalcFOptions* options = nullptr;
    /// 0 = facade default path (no session).
    std::uint64_t session_id = 0;
    /// Null or empty = EngineConfig::Process().Fingerprint().
    const std::string* config_fingerprint = nullptr;
    /// Null = QueryLog::Global().
    QueryLog* log = nullptr;
    /// Non-null = the pinned catalog snapshot every read of this call uses;
    /// null = take a fresh snapshot.
    std::shared_ptr<const Catalog::View> snapshot;
  };
  CalcFEvaluator::RelationLookup MakeLookup() const;
  /// A relation lookup pinned to one catalog snapshot: every relation a
  /// query instantiates comes from the same catalog version, even while
  /// writers mutate concurrently.
  static CalcFEvaluator::RelationLookup LookupFor(
      std::shared_ptr<const Catalog::View> snapshot);
  /// The snapshot `ctx` reads: its pinned one, else a fresh Snapshot().
  std::shared_ptr<const Catalog::View> SnapshotFor(
      const ExecContext& ctx) const {
    return ctx.snapshot != nullptr ? ctx.snapshot : catalog_.Snapshot();
  }
  const CalcFOptions& OptionsFor(const ExecContext& ctx) const {
    return ctx.options != nullptr ? *ctx.options : options_;
  }
  /// The config fingerprint `ctx` stamps into query-log records: its own,
  /// else the process config's.
  static const std::string& FingerprintFor(const ExecContext& ctx);
  /// Query() body; `cache_hit`, when non-null, reports whether the answer
  /// came from the whole-query memo (Explain's cached-plan reporting).
  StatusOr<CalcFResult> QueryImpl(const std::string& text, bool* cache_hit,
                                  const ExecContext& ctx) const;
  /// Context-taking twins of the public read path, shared by the facade
  /// (default context) and sessions (their own).
  StatusOr<CalcFResult> QueryWithPolicy(const std::string& text,
                                        const QueryPolicy& policy,
                                        QueryVerdict* verdict,
                                        const ExecContext& ctx) const;
  StatusOr<ExplainResult> Explain(const std::string& text,
                                  const ExecContext& ctx) const;
  StatusOr<ExplainAnalyzeResult> ExplainAnalyze(const std::string& text,
                                                const ExecContext& ctx) const;
  StatusOr<std::string> Plan(const std::string& text,
                             const ExecContext& ctx) const;
  StatusOr<CalcFResult> QueryFp(const std::string& text, std::uint32_t k,
                                FpQeStats* stats,
                                const ExecContext& ctx) const;
  StatusOr<std::vector<std::vector<Rational>>> Solve(
      const std::string& text, const Rational& epsilon,
      const ExecContext& ctx) const;
  StatusOr<std::map<std::string, ConstraintRelation>> Fixpoint(
      const DatalogProgram& program, const DatalogOptions& options,
      DatalogStats* stats, const ExecContext& ctx) const;
  StatusOr<std::vector<std::pair<std::string, std::uint64_t>>> ReadSet(
      const std::string& text, const ExecContext& ctx) const;
  /// The write-ahead path shared by every mutator: with `mutate_mu_` held,
  /// runs `precheck` (the mutation's precondition — anything that would
  /// make the logged record fail to replay must be rejected here, before
  /// the append), logs (op, payload) to the WAL — when durable — then runs
  /// `apply`, then checkpoints if the WAL crossed the byte threshold. The
  /// WAL append happens strictly before `apply`; an append failure means
  /// the mutation is not applied.
  Status MutateDurably(WalRecord::Op op, const std::string& payload,
                       const std::function<Status()>& precheck,
                       const std::function<Status()>& apply);
  /// Checkpoint body; caller holds `mutate_mu_`.
  Status CheckpointLocked();

  /// One materialized Datalog fixpoint: the completed state plus the
  /// per-relation EDB versions it was computed against.
  struct FixpointEntry {
    std::map<std::string, RelationVersion> edb_versions;
    DatalogFixpointState state;
  };

  CalcFOptions options_;
  Catalog catalog_;
  /// This instance's identity in whole-query memo keys, drawn from the
  /// process-global version counter at construction. Keys are otherwise
  /// built from per-relation read-set versions, so without it two
  /// instances (possibly holding different options) could alias on
  /// queries with an empty read-set.
  std::uint64_t db_id_;
  /// Serializes mutators (Define/Register/Drop/Insert/Load/Checkpoint) so
  /// the WAL order matches the apply order. Readers never take this — they
  /// read catalog snapshots.
  std::mutex mutate_mu_;
  /// Materialized fixpoint states, keyed on a deterministic program
  /// fingerprint. Guarded by fixpoint_mu_ (mutable: Fixpoint is a read in
  /// the catalog sense).
  mutable std::mutex fixpoint_mu_;
  mutable std::map<std::string, FixpointEntry> fixpoint_states_;
  DurabilityOptions durability_;
  /// Non-null iff the database was opened with OpenDurable.
  std::unique_ptr<DurableStore> store_;
};

}  // namespace ccdb

#endif  // CCDB_ENGINE_DATABASE_H_
