#ifndef CCDB_ENGINE_SESSION_H_
#define CCDB_ENGINE_SESSION_H_

/// Session contexts (DESIGN.md §16): the de-globalized execution scope of
/// the engine. A Session is opened on a ConstraintDatabase
/// (ConstraintDatabase::OpenSession) and carries everything that used to
/// be process-global state:
///
///   - an immutable, resolved EngineConfig (base/config.h) — the planner /
///     memo / semi-naive / incremental toggles and the thread count this
///     session runs at, independent of every other session's settings;
///   - a private ThreadPool of config.threads runners (the Shared()
///     singleton remains only as the facade's legacy default);
///   - a unique session id and the config's fingerprint, stamped into
///     every query-log record the session produces (schema v3);
///   - a query-log binding (the global log by default, replaceable with a
///     session-owned instance via SetQueryLog);
///   - an optional pinned MVCC catalog snapshot (PinSnapshot/Unpin): while
///     pinned, every read — parse, lower, plan, execute, whole-query memo
///     key, read-set — runs against that one immutable catalog version,
///     so writers can Define/Insert/Drop concurrently without the session
///     observing any of it.
///
/// Answers are byte-identical across session configs (plan on/off, memo
/// on/off, any thread count) — the engine's determinism and pure-memo
/// contracts, now checkable in one process by opening two sessions.
///
/// Thread safety: a Session's read methods are safe to call concurrently
/// with other sessions' methods and with database mutators. Pin/Unpin and
/// SetQueryLog synchronize with the session's own reads internally.
/// Lifetime: the database must outlive the session.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "engine/database.h"

namespace ccdb {

class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Unique in this process (1, 2, ... in open order across databases).
  std::uint64_t id() const { return id_; }
  /// The immutable configuration this session was opened with.
  const EngineConfig& config() const { return config_; }
  /// 16-hex fingerprint of config(), as stamped into query-log records.
  const std::string& config_fingerprint() const { return fingerprint_; }
  /// The session's private pool (config().threads runners). Never null.
  ThreadPool* pool() const { return pool_.get(); }
  /// The resolved evaluation options: the database's options with the
  /// session config applied (qe.plan / qe.memo forced on or off, qe.pool
  /// pointing at the session pool).
  const CalcFOptions& options() const { return options_; }

  /// Pins the database's CURRENT catalog state: until Unpin, every read
  /// method answers against this one immutable version — concurrent
  /// Define/Insert/Drop by other sessions or the facade are invisible.
  /// Re-pinning replaces the pinned version with the now-current one.
  void PinSnapshot();
  void Unpin();
  bool pinned() const;
  /// The pinned snapshot, or null when not pinned.
  std::shared_ptr<const Catalog::View> snapshot() const;

  /// Routes this session's query-log records to `log` (not owned; must
  /// outlive the session or be reset). Null restores QueryLog::Global().
  void SetQueryLog(QueryLog* log);

  /// Read path — same semantics as the ConstraintDatabase methods of the
  /// same names, evaluated under this session's options, snapshot (when
  /// pinned), pool, and log binding.
  StatusOr<CalcFResult> Query(const std::string& text) const;
  StatusOr<CalcFResult> QueryWithPolicy(const std::string& text,
                                        const QueryPolicy& policy,
                                        QueryVerdict* verdict = nullptr) const;
  StatusOr<ExplainResult> Explain(const std::string& text) const;
  StatusOr<ExplainAnalyzeResult> ExplainAnalyze(const std::string& text) const;
  StatusOr<std::string> Plan(const std::string& text) const;
  StatusOr<CalcFResult> QueryFp(const std::string& text, std::uint32_t k,
                                FpQeStats* stats = nullptr) const;
  StatusOr<std::vector<std::vector<Rational>>> Solve(
      const std::string& text, const Rational& epsilon) const;
  /// Fixpoint under the session config: the semi-naive and incremental
  /// toggles are forced from config(), caller options otherwise respected
  /// (a caller-supplied pool/governor/profile wins over the session pool).
  StatusOr<std::map<std::string, ConstraintRelation>> Fixpoint(
      const DatalogProgram& program, const DatalogOptions& options = {},
      DatalogStats* stats = nullptr) const;
  StatusOr<std::vector<std::pair<std::string, std::uint64_t>>> ReadSet(
      const std::string& text) const;

  /// Mutators — applied to the database's CURRENT state (MVCC: writers
  /// never mutate a snapshot; a pinned session keeps reading its pinned
  /// version, including across its own writes, until it re-pins).
  Status Define(const std::string& definition);
  Status Register(const std::string& name, ConstraintRelation relation);
  Status Drop(const std::string& name);
  Status Insert(const std::string& definition);

 private:
  friend class ConstraintDatabase;
  Session(ConstraintDatabase* db, EngineConfig config);

  /// The ExecContext this session threads through the database read path.
  /// Captures the pinned snapshot (if any) at call time.
  ConstraintDatabase::ExecContext Context() const;

  ConstraintDatabase* db_;
  const EngineConfig config_;
  const std::string fingerprint_;
  const std::uint64_t id_;
  std::unique_ptr<ThreadPool> pool_;
  CalcFOptions options_;
  /// Guards pinned_ and log_ (the mutable bindings).
  mutable std::mutex mu_;
  std::shared_ptr<const Catalog::View> pinned_;
  QueryLog* log_ = nullptr;
};

}  // namespace ccdb

#endif  // CCDB_ENGINE_SESSION_H_
