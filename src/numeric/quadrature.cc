#include "numeric/quadrature.h"

#include <cmath>

#include "base/failpoint.h"
#include "base/logging.h"

namespace ccdb {

namespace {

struct SimpsonState {
  const std::function<double(double)>* f;
  const ResourceGovernor* gov = nullptr;
  std::uint64_t evaluations = 0;
  // Residual |delta| accumulated on subintervals whose recursion budget ran
  // out (integrable endpoint singularities); reported as extra error.
  double unconverged_error = 0.0;
  // Set on governor trip; unwinds the recursion without further charges.
  Status abort = Status::Ok();
};

double Eval(SimpsonState* state, double x) {
  ++state->evaluations;
  return (*state->f)(x);
}

// Classic adaptive Simpson with Richardson correction.
double Recurse(SimpsonState* state, double a, double b, double fa, double fm,
               double fb, double whole, double tol, int depth) {
  if (!state->abort.ok()) return 0.0;
  if (state->gov != nullptr) {
    Status st = state->gov->Charge("numeric.quadrature");
    if (!st.ok()) {
      state->abort = std::move(st);
      return 0.0;
    }
  }
  double m = 0.5 * (a + b);
  double lm = 0.5 * (a + m);
  double rm = 0.5 * (m + b);
  double flm = Eval(state, lm);
  double frm = Eval(state, rm);
  double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  double delta = left + right - whole;
  if (std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  if (depth <= 0) {
    state->unconverged_error += std::abs(delta);
    return left + right + delta / 15.0;
  }
  return Recurse(state, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1) +
         Recurse(state, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1);
}

}  // namespace

StatusOr<QuadratureResult> AdaptiveSimpson(
    const std::function<double(double)>& f, double a, double b, double tol,
    int max_depth, const ResourceGovernor* gov) {
  CCDB_CHECK_MSG(tol > 0.0, "tolerance must be positive");
  CCDB_FAILPOINT("numeric.quadrature");
  if (a == b) return QuadratureResult{0.0, 0.0, 0};
  SimpsonState state{&f, gov};
  double fa = Eval(&state, a);
  double fb = Eval(&state, b);
  double fm = Eval(&state, 0.5 * (a + b));
  double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  double value = Recurse(&state, a, b, fa, fm, fb, whole, tol, max_depth);
  if (!state.abort.ok()) return state.abort;
  if (!std::isfinite(value)) {
    return Status::NumericalFailure("non-finite integral value");
  }
  return QuadratureResult{value, tol + state.unconverged_error,
                          state.evaluations};
}

UPoly AntiDerivative(const UPoly& p) {
  if (p.is_zero()) return UPoly();
  std::vector<Rational> coeffs(p.coefficients().size() + 1, Rational(0));
  for (std::size_t i = 0; i < p.coefficients().size(); ++i) {
    coeffs[i + 1] =
        p.coefficients()[i] / Rational(static_cast<std::int64_t>(i + 1));
  }
  return UPoly(std::move(coeffs));
}

Rational IntegratePolynomial(const UPoly& p, const Rational& a,
                             const Rational& b) {
  UPoly primitive = AntiDerivative(p);
  return primitive.Evaluate(b) - primitive.Evaluate(a);
}

}  // namespace ccdb
