#ifndef CCDB_NUMERIC_APPROX_H_
#define CCDB_NUMERIC_APPROX_H_

#include <string>
#include <vector>

#include "arith/interval.h"
#include "base/status.h"
#include "poly/upoly.h"

namespace ccdb {

/// The analytical (non semi-algebraic) functions CALC_F admits (paper,
/// Section 5: "polynomial, exponential, logarithmic, trigonometric
/// functions, etc."). By Van den Dries's theorem ([Dr82], discussed in the
/// paper's Section 3 remark) these make quantifier elimination impossible,
/// which is exactly why they enter only through polynomial approximation.
enum class AnalyticKind {
  kExp,
  kLog,
  kSin,
  kCos,
  kSqrt,
  kAtan,
};

/// Parses "exp", "log", "sin", "cos", "sqrt", "atan".
StatusOr<AnalyticKind> AnalyticKindFromName(const std::string& name);
const char* AnalyticKindName(AnalyticKind kind);
/// Double-precision evaluation (the reference the approximation targets).
double EvalAnalytic(AnalyticKind kind, double x);
/// True iff the function is defined on the whole interval.
bool DefinedOn(AnalyticKind kind, const Interval& domain);

/// A produced approximation: a degree <= order polynomial with rational
/// coefficients, plus an a-posteriori max-error estimate over the domain.
struct ApproxResult {
  UPoly poly;
  double max_error_estimate = 0.0;
};

/// A k-order approximation module (paper, Definition 5.2): maps a function
/// and an interval to a degree-k polynomial over F[X] approximating it.
/// Implemented by Chebyshev interpolation (near-minimax); coefficients are
/// materialized as exact dyadic rationals so the downstream QE stays exact.
class ApproxModule {
 public:
  explicit ApproxModule(int order);

  int order() const { return order_; }
  /// Number of approximation calls served (Theorem 5.5 counts these).
  std::uint64_t call_count() const { return call_count_; }
  void ResetCallCount() const { call_count_ = 0; }

  /// Approximates `kind` over `domain`; kInvalidArgument when the function
  /// is undefined somewhere on the domain (e.g. log on [-1,1] — the paper's
  /// singular-point caveat in Section 5).
  StatusOr<ApproxResult> Approximate(AnalyticKind kind,
                                     const Interval& domain) const;

 private:
  int order_;
  mutable std::uint64_t call_count_ = 0;
};

/// An approximation base (paper, Section 5): an increasing list of
/// breakpoints b_1 < ... < b_{l-1} splitting the line into intervals over
/// which functions are approximated piecewise.
struct ABase {
  std::vector<Rational> breakpoints;

  /// Uniform a-base with `pieces` intervals across [lo, hi].
  static ABase Uniform(const Rational& lo, const Rational& hi, int pieces);

  /// The finite intervals [b_i, b_{i+1}] (the unbounded outer pieces are
  /// the query layer's responsibility).
  std::vector<Interval> Intervals() const;
};

}  // namespace ccdb

#endif  // CCDB_NUMERIC_APPROX_H_
