#ifndef CCDB_NUMERIC_NUMERICAL_EVAL_H_
#define CCDB_NUMERIC_NUMERICAL_EVAL_H_

#include <vector>

#include "base/resource.h"
#include "base/status.h"
#include "constraint/atom.h"
#include "qe/algebraic_point.h"

namespace ccdb {

/// Result of the NUMERICAL EVALUATION step (paper, Section 2 step 3 and
/// Theorem 3.2): the set defined by a quantifier-free formula is either
/// recognized as finite — in which case every solution is produced as an
/// exact algebraic point, approximable to any epsilon — or reported
/// infinite (step 3 "does not come into the picture").
struct NumericalEvaluation {
  bool finite = false;
  /// The solution points (exact); present only when finite.
  std::vector<AlgebraicPoint> points;
};

/// Decides finiteness of the solution set of `relation` and extracts the
/// solutions when finite, via a CAD of the relation's polynomials: the set
/// is finite iff every satisfied cell is a section at every level
/// (dimension-0 cells). PTIME data complexity for fixed arity
/// (Theorem 3.2).
/// A non-null `gov` bounds the underlying CAD construction (stage
/// "numeric.eval") and fails with kResourceExhausted on a budget trip.
StatusOr<NumericalEvaluation> EvaluateNumerically(
    const ConstraintRelation& relation, const ResourceGovernor* gov = nullptr);

/// Convenience: epsilon-approximations of all solutions of a finite
/// solution set, in lexicographic cell order. Fails with kInvalidArgument
/// when the set is infinite.
StatusOr<std::vector<std::vector<Rational>>> ApproximateSolutions(
    const ConstraintRelation& relation, const Rational& epsilon,
    const ResourceGovernor* gov = nullptr);

/// Exact 1-D measure data of a unary relation: the satisfied cells of its
/// CAD, described as intervals between algebraic endpoints.
struct UnaryDecomposition {
  /// Closed/open makes no measure difference; a piece is either a single
  /// point or an interval with endpoints; unbounded pieces have
  /// has_lower/has_upper false.
  struct Piece {
    bool is_point = false;
    bool has_lower = true;
    bool has_upper = true;
    AlgebraicNumber lower;
    AlgebraicNumber upper;
    Piece() : lower(Rational(0)), upper(Rational(0)) {}
  };
  std::vector<Piece> pieces;
};

/// Decomposes the solution set of a unary relation into maximal-cell
/// pieces (CAD base phase).
StatusOr<UnaryDecomposition> DecomposeUnary(
    const ConstraintRelation& relation, const ResourceGovernor* gov = nullptr);

}  // namespace ccdb

#endif  // CCDB_NUMERIC_NUMERICAL_EVAL_H_
