#include "numeric/numerical_eval.h"

#include "base/failpoint.h"
#include "base/logging.h"
#include "base/metrics.h"
#include "base/trace.h"
#include "qe/cad.h"

namespace ccdb {

namespace {

bool CellSatisfies(const CadCell& cell, const ConstraintRelation& relation) {
  for (const GeneralizedTuple& tuple : relation.tuples()) {
    bool all = true;
    for (const Atom& atom : tuple.atoms) {
      if (!SignSatisfies(cell.sample.SignAt(atom.poly), atom.op)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

bool IsZeroDimensional(const CadCell& cell) {
  for (std::size_t level = 0; level < cell.index.size(); ++level) {
    if (cell.index[level] % 2 == 1) return false;  // sector somewhere
  }
  return true;
}

}  // namespace

StatusOr<NumericalEvaluation> EvaluateNumerically(
    const ConstraintRelation& relation, const ResourceGovernor* gov) {
  CCDB_TRACE_SPAN("numeric.evaluate");
  CCDB_FAILPOINT("numeric.eval");
  CCDB_CHECK_BUDGET(gov, "numeric.eval");
  CCDB_METRIC_COUNT("numeric.evaluations", 1);
  NumericalEvaluation out;
  if (relation.arity() == 0) {
    out.finite = true;
    return out;
  }
  if (relation.is_empty_syntactically()) {
    out.finite = true;
    return out;
  }
  CadOptions cad_options;
  cad_options.governor = gov;
  CCDB_ASSIGN_OR_RETURN(
      Cad cad, Cad::Build(relation.CollectPolynomials(), relation.arity(),
                          cad_options));
  bool finite = true;
  std::vector<AlgebraicPoint> points;
  cad.ForEachCellAtDimension(relation.arity(), [&](const CadCell& cell) {
    if (!CellSatisfies(cell, relation)) return;
    if (!IsZeroDimensional(cell)) {
      finite = false;
      return;
    }
    points.push_back(cell.sample);
  });
  out.finite = finite;
  if (finite) out.points = std::move(points);
  return out;
}

StatusOr<std::vector<std::vector<Rational>>> ApproximateSolutions(
    const ConstraintRelation& relation, const Rational& epsilon,
    const ResourceGovernor* gov) {
  CCDB_ASSIGN_OR_RETURN(NumericalEvaluation eval,
                        EvaluateNumerically(relation, gov));
  if (!eval.finite) {
    return Status::InvalidArgument(
        "solution set is infinite; NUMERICAL EVALUATION does not apply");
  }
  CCDB_TRACE_SPAN("numeric.approximate_solutions");
  CCDB_METRIC_COUNT("numeric.points_approximated", eval.points.size());
  std::vector<std::vector<Rational>> out;
  out.reserve(eval.points.size());
  for (const AlgebraicPoint& point : eval.points) {
    out.push_back(point.Approximate(epsilon));
  }
  return out;
}

StatusOr<UnaryDecomposition> DecomposeUnary(
    const ConstraintRelation& relation, const ResourceGovernor* gov) {
  CCDB_CHECK_MSG(relation.arity() == 1, "DecomposeUnary requires arity 1");
  CCDB_FAILPOINT("numeric.eval");
  CCDB_CHECK_BUDGET(gov, "numeric.eval");
  UnaryDecomposition out;
  if (relation.is_empty_syntactically()) return out;
  CadOptions cad_options;
  cad_options.governor = gov;
  CCDB_ASSIGN_OR_RETURN(Cad cad,
                        Cad::Build(relation.CollectPolynomials(), 1,
                                   cad_options));
  const std::vector<CadCell>& cells = cad.roots();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!CellSatisfies(cells[i], relation)) continue;
    UnaryDecomposition::Piece piece;
    if (cells[i].index[0] % 2 == 0) {
      piece.is_point = true;
      piece.lower = cells[i].sample.coord(0);
      piece.upper = piece.lower;
    } else {
      // Sector: bounded below by the previous section (if any), above by
      // the next.
      piece.is_point = false;
      piece.has_lower = i > 0;
      piece.has_upper = i + 1 < cells.size();
      if (piece.has_lower) piece.lower = cells[i - 1].sample.coord(0);
      if (piece.has_upper) piece.upper = cells[i + 1].sample.coord(0);
    }
    out.pieces.push_back(std::move(piece));
  }
  return out;
}

}  // namespace ccdb
