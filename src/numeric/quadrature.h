#ifndef CCDB_NUMERIC_QUADRATURE_H_
#define CCDB_NUMERIC_QUADRATURE_H_

#include <functional>

#include "arith/rational.h"
#include "base/resource.h"
#include "base/status.h"
#include "poly/upoly.h"

namespace ccdb {

/// Result of a numerical integration.
struct QuadratureResult {
  double value = 0.0;
  double error_estimate = 0.0;
  std::uint64_t evaluations = 0;
};

/// Adaptive Simpson integration of f over [a, b] to absolute tolerance
/// `tol`. The workhorse of the numerical aggregate modules (the paper cites
/// [BF85, PTVF92] for these; we implement our own). Fails with
/// kNumericalFailure if the recursion budget is exhausted. A non-null
/// `gov` is charged per subdivision (stage "numeric.quadrature") and turns
/// budget trips into kResourceExhausted.
StatusOr<QuadratureResult> AdaptiveSimpson(
    const std::function<double(double)>& f, double a, double b, double tol,
    int max_depth = 40, const ResourceGovernor* gov = nullptr);

/// Exact antiderivative of a univariate polynomial (constant term 0).
UPoly AntiDerivative(const UPoly& p);

/// Exact integral of a polynomial over [a, b].
Rational IntegratePolynomial(const UPoly& p, const Rational& a,
                             const Rational& b);

}  // namespace ccdb

#endif  // CCDB_NUMERIC_QUADRATURE_H_
