#include "numeric/approx.h"

#include <cmath>

#include "arith/floatk.h"
#include "base/logging.h"
#include "base/metrics.h"
#include "base/trace.h"

namespace ccdb {

StatusOr<AnalyticKind> AnalyticKindFromName(const std::string& name) {
  if (name == "exp") return AnalyticKind::kExp;
  if (name == "log") return AnalyticKind::kLog;
  if (name == "sin") return AnalyticKind::kSin;
  if (name == "cos") return AnalyticKind::kCos;
  if (name == "sqrt") return AnalyticKind::kSqrt;
  if (name == "atan") return AnalyticKind::kAtan;
  return Status::NotFound("unknown analytic function: " + name);
}

const char* AnalyticKindName(AnalyticKind kind) {
  switch (kind) {
    case AnalyticKind::kExp:
      return "exp";
    case AnalyticKind::kLog:
      return "log";
    case AnalyticKind::kSin:
      return "sin";
    case AnalyticKind::kCos:
      return "cos";
    case AnalyticKind::kSqrt:
      return "sqrt";
    case AnalyticKind::kAtan:
      return "atan";
  }
  return "?";
}

double EvalAnalytic(AnalyticKind kind, double x) {
  switch (kind) {
    case AnalyticKind::kExp:
      return std::exp(x);
    case AnalyticKind::kLog:
      return std::log(x);
    case AnalyticKind::kSin:
      return std::sin(x);
    case AnalyticKind::kCos:
      return std::cos(x);
    case AnalyticKind::kSqrt:
      return std::sqrt(x);
    case AnalyticKind::kAtan:
      return std::atan(x);
  }
  return 0.0;
}

bool DefinedOn(AnalyticKind kind, const Interval& domain) {
  switch (kind) {
    case AnalyticKind::kLog:
      return domain.lo().sign() > 0;
    case AnalyticKind::kSqrt:
      return domain.lo().sign() >= 0;
    default:
      return true;
  }
}

ApproxModule::ApproxModule(int order) : order_(order) {
  CCDB_CHECK_MSG(order >= 1, "approximation order must be >= 1");
}

namespace {

// Exact rational from a finite double (binary expansion).
Rational RationalFromDouble(double x) {
  return FloatK::FromDouble(x).ToRational();
}

}  // namespace

StatusOr<ApproxResult> ApproxModule::Approximate(AnalyticKind kind,
                                                 const Interval& domain) const {
  CCDB_TRACE_SPAN("approx.approximate");
  CCDB_METRIC_COUNT("approx.calls", 1);
  ++call_count_;
  if (!DefinedOn(kind, domain)) {
    return Status::InvalidArgument(
        std::string(AnalyticKindName(kind)) + " undefined on " +
        domain.ToString());
  }
  const int n = order_ + 1;  // interpolation nodes
  double a = domain.lo().ToDouble();
  double b = domain.hi().ToDouble();
  double mid = 0.5 * (a + b);
  double half = 0.5 * (b - a);

  // Chebyshev nodes and values.
  std::vector<double> nodes(n), values(n);
  for (int j = 0; j < n; ++j) {
    double theta = M_PI * (2.0 * j + 1.0) / (2.0 * n);
    nodes[j] = mid + half * std::cos(theta);
    values[j] = EvalAnalytic(kind, nodes[j]);
  }

  // Newton divided differences.
  std::vector<double> dd = values;
  for (int level = 1; level < n; ++level) {
    for (int j = n - 1; j >= level; --j) {
      dd[j] = (dd[j] - dd[j - 1]) / (nodes[j] - nodes[j - level]);
    }
  }
  // Expand Newton form to monomial coefficients (in double), then make the
  // coefficients exact dyadic rationals.
  std::vector<double> coeffs(n, 0.0);
  std::vector<double> basis(n, 0.0);  // running product prod (x - nodes[i])
  basis[0] = 1.0;
  int basis_degree = 0;
  for (int level = 0; level < n; ++level) {
    for (int d = 0; d <= basis_degree; ++d) {
      coeffs[d] += dd[level] * basis[d];
    }
    if (level + 1 < n) {
      // basis *= (x - nodes[level]).
      for (int d = basis_degree + 1; d >= 1; --d) {
        basis[d] = (d - 1 <= basis_degree ? basis[d - 1] : 0.0) -
                   nodes[level] * (d <= basis_degree ? basis[d] : 0.0);
      }
      basis[0] = -nodes[level] * basis[0];
      ++basis_degree;
    }
  }

  std::vector<Rational> exact_coeffs;
  exact_coeffs.reserve(n);
  for (double c : coeffs) {
    if (!std::isfinite(c)) {
      CCDB_LOG(WARN) << "approximation of " << AnalyticKindName(kind)
                     << " over " << domain.ToString()
                     << " produced a non-finite coefficient";
      return Status::NumericalFailure("non-finite interpolation coefficient");
    }
    exact_coeffs.push_back(RationalFromDouble(c));
  }
  ApproxResult result;
  result.poly = UPoly(std::move(exact_coeffs));

  // A-posteriori error estimate on a sampling grid.
  double max_err = 0.0;
  const int samples = 64;
  for (int i = 0; i <= samples; ++i) {
    double x = a + (b - a) * i / samples;
    double approx = 0.0;
    for (int d = static_cast<int>(coeffs.size()) - 1; d >= 0; --d) {
      approx = approx * x + coeffs[d];
    }
    double err = std::abs(approx - EvalAnalytic(kind, x));
    if (err > max_err) max_err = err;
  }
  result.max_error_estimate = max_err;
  return result;
}

ABase ABase::Uniform(const Rational& lo, const Rational& hi, int pieces) {
  CCDB_CHECK_MSG(pieces >= 1 && lo < hi, "invalid uniform a-base");
  ABase base;
  Rational width = (hi - lo) / Rational(pieces);
  for (int i = 0; i <= pieces; ++i) {
    base.breakpoints.push_back(lo + width * Rational(i));
  }
  return base;
}

std::vector<Interval> ABase::Intervals() const {
  std::vector<Interval> out;
  for (std::size_t i = 0; i + 1 < breakpoints.size(); ++i) {
    out.emplace_back(breakpoints[i], breakpoints[i + 1]);
  }
  return out;
}

}  // namespace ccdb
