#ifndef CCDB_DATALOG_DATALOG_H_
#define CCDB_DATALOG_DATALOG_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "constraint/formula.h"
#include "qe/qe.h"

namespace ccdb {

/// One literal in a Datalog rule body: either a (possibly negated) relation
/// atom over variable indices, or a polynomial constraint atom.
struct DatalogLiteral {
  bool is_relation = false;
  bool negated = false;  // relation literals only (inflationary negation)
  std::string relation;
  std::vector<int> args;
  Atom constraint;

  static DatalogLiteral Rel(std::string name, std::vector<int> args,
                            bool negated = false);
  static DatalogLiteral Constraint(Atom atom);
};

/// A rule head(head_vars) :- body. Head variables are rule-local indices;
/// body variables not in the head are existentially quantified.
struct DatalogRule {
  std::string head;
  std::vector<int> head_vars;
  std::vector<DatalogLiteral> body;
};

/// A Datalog¬ program over constraint relations (the language
/// Datalog¬_F,QE of Section 4): rules with inflationary negation, evaluated
/// by calling the QE algorithm at each iteration.
struct DatalogProgram {
  /// Declared arities of the intensional relations.
  std::map<std::string, int> idb_arities;
  std::vector<DatalogRule> rules;
};

/// Process-wide semi-naive toggle: CCDB_SEMINAIVE=0 forces every fixpoint
/// onto the naive path (full rule bodies each round — the executable spec);
/// any other value (or unset) keeps semi-naive delta evaluation on. Both
/// paths produce byte-identical fixpoints — the same contract CCDB_PLAN
/// carries. SetSeminaiveEnabled overrides the environment (tests).
bool SeminaiveEnabled();
void SetSeminaiveEnabled(bool enabled);

/// Process-wide incremental re-fixpoint toggle: CCDB_INCREMENTAL=0 makes
/// ConstraintDatabase::Fixpoint recompute from scratch on every call; on
/// (default), materialized fixpoint state is replayed or resumed when the
/// EDB read-set versions allow it. SetIncrementalEnabled overrides the
/// environment (tests).
bool IncrementalEnabled();
void SetIncrementalEnabled(bool enabled);

struct DatalogOptions {
  /// Hard iteration cap (the paper's PTIME bound is enforced by the finite
  /// precision context; this is the engineering backstop).
  int max_iterations = 64;
  /// When positive, the finite-precision context Z_k: evaluation is
  /// undefined as soon as any materialized integer exceeds k bits
  /// (Theorem 4.7's setting; guarantees termination in PTIME). Z_k runs
  /// always evaluate naively: the bit-length verdict must observe every
  /// intermediate the naive rounds materialize.
  std::uint32_t precision_k = 0;
  /// Per-call semi-naive override: kAuto follows SeminaiveEnabled().
  PlanToggle seminaive = PlanToggle::kAuto;
  /// Per-call/per-session incremental re-fixpoint override (the
  /// materialized-state layer of ConstraintDatabase::Fixpoint): kAuto
  /// follows IncrementalEnabled(). Pure memo — every setting returns the
  /// same fixpoint a cold evaluation would.
  PlanToggle incremental = PlanToggle::kAuto;
  /// QE options for each rule evaluation. `qe.governor`, when set, is also
  /// charged once per fixpoint round and per derived tuple (stage
  /// "datalog.iteration"), so a budget bounds the whole fixpoint — not just
  /// the individual QE calls. `qe.pool` additionally drives the per-rule
  /// fan-out of each inflationary round: rule bodies evaluate in parallel
  /// against the frozen current interpretation and merge in rule order,
  /// so the fixpoint is identical at every thread count. `qe.profile`,
  /// when armed, receives one node per fixpoint round
  /// ("datalog.round[i]", one child per rule in rule order) instead of
  /// per-elimination roots; observation only — the fixpoint is
  /// byte-identical with or without it.
  QeOptions qe;
};

struct DatalogStats {
  int iterations = 0;
  bool reached_fixpoint = false;
  std::uint64_t max_bits = 0;
  std::uint64_t qe_calls = 0;
  /// Plan-cache hits during this run: each rule body is PLANNED once per
  /// fixpoint (the structure-aware plan memoizes on the body's interned
  /// formula id) and the plan is reused across rounds — this counts the
  /// reuses. 0 with the planner or the memo caches off.
  std::uint64_t plan_cache_hits = 0;
  /// Total tuples presented as per-relation deltas across semi-naive
  /// rounds (0 on the naive path).
  std::uint64_t delta_tuples = 0;
  /// Rule evaluations skipped outright because every relation the body
  /// mentions had an empty delta (semi-naive only).
  std::uint64_t rules_skipped = 0;

  /// One-line human-readable rendering.
  std::string ToString() const;
  /// JSON object with one field per statistic.
  std::string ToJson() const;
};

/// Evaluates the program under the INFLATIONARY semantics: each iteration
/// adds the tuples derived by every rule against the current
/// interpretation (negation evaluated against the current interpretation),
/// until a (semantic) fixpoint. Returns the final interpretation of all
/// IDB relations. The EDB relations are read-only inputs.
StatusOr<std::map<std::string, ConstraintRelation>> EvaluateDatalog(
    const DatalogProgram& program,
    const std::map<std::string, ConstraintRelation>& edb,
    const DatalogOptions& options = {}, DatalogStats* stats = nullptr);

/// Materialized fixpoint state: the IDB interpretation of a completed
/// fixpoint plus the per-relation EDB sizes it was computed against. The
/// sizes anchor a later resume: tuples at indices >= edb_sizes[R] are R's
/// delta.
struct DatalogFixpointState {
  std::map<std::string, ConstraintRelation> idb;
  std::map<std::string, std::size_t> edb_sizes;
};

/// Resumes a completed fixpoint after append-only EDB growth instead of
/// recomputing from scratch: seeds the per-relation deltas with each EDB
/// relation's suffix beyond state->edb_sizes and runs semi-naive rounds
/// until a new fixpoint, starting from state->idb. The caller must
/// guarantee the old tuples are an unchanged prefix of the new relations
/// (ConstraintDatabase tracks this via per-relation base versions).
/// Refuses programs with negated literals (the inflationary fixpoint is
/// not monotone in the EDB under negation) and Z_k runs. On success the
/// state is advanced in place; on error it is untouched.
StatusOr<std::map<std::string, ConstraintRelation>> ResumeDatalog(
    const DatalogProgram& program,
    const std::map<std::string, ConstraintRelation>& edb,
    DatalogFixpointState* state, const DatalogOptions& options = {},
    DatalogStats* stats = nullptr);

}  // namespace ccdb

#endif  // CCDB_DATALOG_DATALOG_H_
