#include "datalog/datalog.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "base/failpoint.h"
#include "base/logging.h"
#include "base/memo.h"
#include "base/metrics.h"
#include "base/profile.h"
#include "base/thread_pool.h"
#include "base/trace.h"
#include "qe/fourier_motzkin.h"

namespace ccdb {

DatalogLiteral DatalogLiteral::Rel(std::string name, std::vector<int> args,
                                   bool negated) {
  DatalogLiteral lit;
  lit.is_relation = true;
  lit.negated = negated;
  lit.relation = std::move(name);
  lit.args = std::move(args);
  return lit;
}

DatalogLiteral DatalogLiteral::Constraint(Atom atom) {
  DatalogLiteral lit;
  lit.is_relation = false;
  lit.constraint = std::move(atom);
  return lit;
}

namespace {

// Builds the first-order formula of one rule body, with head variables
// renamed to 0..arity-1 and the remaining variables existentially
// quantified.
StatusOr<Formula> RuleToFormula(const DatalogRule& rule) {
  // Collect rule variables.
  std::vector<int> vars;
  auto note = [&vars](int v) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  };
  for (int v : rule.head_vars) note(v);
  for (const DatalogLiteral& lit : rule.body) {
    if (lit.is_relation) {
      for (int v : lit.args) note(v);
    } else {
      for (int v = 0; v <= lit.constraint.poly.max_var(); ++v) {
        if (lit.constraint.poly.Mentions(v)) note(v);
      }
    }
  }
  // Mapping: head var i -> i; the rest -> arity, arity+1, ...
  int arity = static_cast<int>(rule.head_vars.size());
  std::map<int, int> mapping;
  for (int i = 0; i < arity; ++i) {
    auto [it, inserted] = mapping.emplace(rule.head_vars[i], i);
    if (!inserted) {
      return Status::InvalidArgument(
          "repeated head variable in rule for " + rule.head);
    }
  }
  int next = arity;
  std::vector<int> quantified;
  for (int v : vars) {
    if (mapping.count(v) == 0) {
      mapping[v] = next;
      quantified.push_back(next);
      ++next;
    }
  }
  int max_old = vars.empty() ? -1 : *std::max_element(vars.begin(), vars.end());
  std::vector<int> dense_mapping(max_old + 1, -1);
  for (const auto& [from, to] : mapping) dense_mapping[from] = to;

  std::vector<Formula> conjuncts;
  for (const DatalogLiteral& lit : rule.body) {
    if (lit.is_relation) {
      std::vector<int> args;
      for (int v : lit.args) args.push_back(mapping.at(v));
      Formula atom = Formula::Relation(lit.relation, std::move(args));
      conjuncts.push_back(lit.negated ? Formula::Not(std::move(atom))
                                      : std::move(atom));
    } else {
      Polynomial renamed = lit.constraint.poly.RenameVars(dense_mapping);
      conjuncts.push_back(
          Formula::MakeAtom(Atom(std::move(renamed), lit.constraint.op)));
    }
  }
  Formula body = Formula::And(conjuncts);
  for (auto it = quantified.rbegin(); it != quantified.rend(); ++it) {
    body = Formula::Exists(*it, std::move(body));
  }
  return body;
}

// Exact containment of one generalized tuple in another:
// not exists x (t(x) and not u(x)) — negating a single conjunction keeps
// the DNF linear in |u|.
StatusOr<bool> TupleInTuple(const GeneralizedTuple& t,
                            const GeneralizedTuple& u, int arity,
                            const QeOptions& qe, std::uint64_t* qe_calls) {
  std::vector<Formula> t_atoms;
  for (const Atom& atom : t.atoms) t_atoms.push_back(Formula::MakeAtom(atom));
  std::vector<Formula> u_atoms;
  for (const Atom& atom : u.atoms) u_atoms.push_back(Formula::MakeAtom(atom));
  Formula witness =
      Formula::And(Formula::And(t_atoms), Formula::Not(Formula::And(u_atoms)));
  for (int v = arity; v-- > 0;) {
    witness = Formula::Exists(v, std::move(witness));
  }
  ++*qe_calls;
  CCDB_ASSIGN_OR_RETURN(bool has_witness, DecideSentence(witness, qe));
  return !has_witness;
}

// Profiling attribution (base/profile.h): the same counter set qe.cc's
// nodes carry, zero values and already-present names skipped.
void AddQeCounters(ProfileNode* node, const QeStats& stats) {
  auto add = [node](const char* name, std::uint64_t v) {
    if (v == 0 || node->HasCounter(name)) return;
    node->AddCounter(name, v);
  };
  add("cad_cells", stats.cad_cells);
  add("projection_factors", stats.projection_factors);
  add("fm_rounds", stats.fm_rounds);
  add("max_bits", stats.max_intermediate_bits);
  add("qe_cache_hits", stats.cache_hits);
}

bool SameTuple(const GeneralizedTuple& a, const GeneralizedTuple& b) {
  if (a.atoms.size() != b.atoms.size()) return false;
  for (std::size_t i = 0; i < a.atoms.size(); ++i) {
    if (!(a.atoms[i] == b.atoms[i])) return false;
  }
  return true;
}

// Containment test for the inflationary fixpoint: is `candidate` a subset
// of `relation`? Checked tuple-against-tuple (sound and cheap); covering a
// candidate by a genuine UNION of tuples is only attempted on small
// relations (the negated-union DNF grows multiplicatively). A missed
// containment merely costs an extra (redundant) tuple, never soundness.
StatusOr<bool> TupleContained(const GeneralizedTuple& candidate,
                              const ConstraintRelation& relation,
                              const QeOptions& qe, std::uint64_t* qe_calls) {
  for (const GeneralizedTuple& existing : relation.tuples()) {
    if (SameTuple(candidate, existing)) return true;
  }
  for (const GeneralizedTuple& existing : relation.tuples()) {
    CCDB_ASSIGN_OR_RETURN(bool inside,
                          TupleInTuple(candidate, existing, relation.arity(),
                                       qe, qe_calls));
    if (inside) return true;
  }
  std::size_t total_atoms = 0;
  for (const GeneralizedTuple& existing : relation.tuples()) {
    total_atoms += existing.atoms.size();
  }
  if (relation.tuples().size() <= 4 && total_atoms <= 12) {
    std::vector<Formula> cand_atoms;
    for (const Atom& atom : candidate.atoms) {
      cand_atoms.push_back(Formula::MakeAtom(atom));
    }
    std::vector<int> columns(relation.arity());
    for (int i = 0; i < relation.arity(); ++i) columns[i] = i;
    Formula covered = RelationToFormula(relation, columns);
    Formula witness =
        Formula::And(Formula::And(cand_atoms), Formula::Not(covered));
    for (int v = relation.arity(); v-- > 0;) {
      witness = Formula::Exists(v, std::move(witness));
    }
    ++*qe_calls;
    CCDB_ASSIGN_OR_RETURN(bool has_witness, DecideSentence(witness, qe));
    return !has_witness;
  }
  return false;
}

}  // namespace

std::string DatalogStats::ToString() const {
  std::ostringstream out;
  out << "iterations=" << iterations
      << " fixpoint=" << (reached_fixpoint ? "yes" : "no")
      << " qe_calls=" << qe_calls << " max_bits=" << max_bits
      << " plan_cache_hits=" << plan_cache_hits;
  return out.str();
}

std::string DatalogStats::ToJson() const {
  return JsonObjectBuilder()
      .Add("iterations", static_cast<std::int64_t>(iterations))
      .Add("reached_fixpoint", reached_fixpoint)
      .Add("qe_calls", qe_calls)
      .Add("max_bits", max_bits)
      .Add("plan_cache_hits", plan_cache_hits)
      .Build();
}

StatusOr<std::map<std::string, ConstraintRelation>> EvaluateDatalog(
    const DatalogProgram& program,
    const std::map<std::string, ConstraintRelation>& edb,
    const DatalogOptions& options, DatalogStats* stats) {
  CCDB_TRACE_SPAN("datalog.evaluate");
  CCDB_METRIC_COUNT("datalog.runs", 1);
  DatalogStats local;
  DatalogStats* s = stats != nullptr ? stats : &local;
  *s = DatalogStats();

  std::map<std::string, ConstraintRelation> idb;
  for (const auto& [name, arity] : program.idb_arities) {
    if (edb.count(name) != 0) {
      return Status::InvalidArgument("relation " + name +
                                     " is both EDB and IDB");
    }
    idb.emplace(name, ConstraintRelation(arity));
  }
  for (const DatalogRule& rule : program.rules) {
    if (program.idb_arities.count(rule.head) == 0) {
      return Status::InvalidArgument("rule head " + rule.head +
                                     " is not a declared IDB relation");
    }
  }

  auto lookup = [&edb, &idb](const std::string& name)
      -> StatusOr<ConstraintRelation> {
    auto it = idb.find(name);
    if (it != idb.end()) return it->second;
    auto jt = edb.find(name);
    if (jt != edb.end()) return jt->second;
    return Status::NotFound("unknown relation " + name);
  };

  const ResourceGovernor* gov = options.qe.governor;

  // Per-round attribution (Observability v2, DESIGN.md §12): when the
  // caller armed a ProfileSink, each fixpoint round appends ONE node —
  // "datalog.round[i]" with one child per rule in rule order — instead of
  // letting every rule elimination add its own root from a pool worker in
  // arrival order. Rule-level eliminations therefore run with the sink
  // cleared (`rule_qe`), same as QE sub-eliminations; observation only.
  ProfileSink* profile = options.qe.profile;
  QeOptions rule_qe = options.qe;
  rule_qe.profile = nullptr;

  // Per-run rule-body memo: once the relations a rule depends on stop
  // changing, its instantiated body hash-conses to the same interned
  // formula, and the QE result of the previous round can be replayed
  // verbatim. Keyed on the interned formula id; the stored Formula pins
  // the id alive. Pure memo (same contract as the QE cache), so it is
  // skipped under an armed governor to keep budget charging exact.
  struct BodyMemo {
    Formula formula;
    ConstraintRelation rel;
    QeStats qe_stats;
  };
  std::mutex body_cache_mu;
  std::unordered_map<std::uint64_t, BodyMemo> body_cache;
  const bool use_body_cache = gov == nullptr && MemoCachesEnabled();

  // Plan-once-per-fixpoint observability: rule-body plans memoize on the
  // body's interned formula id (plan/planner.h), so later rounds reuse the
  // round-one plan. The counter delta over the run surfaces the reuse.
  Counter* plan_hits_counter =
      MetricsRegistry::Global().GetCounter("plan_cache_hits");
  const std::uint64_t plan_hits_before = plan_hits_counter->value();

  for (int round = 0; round < options.max_iterations; ++round) {
    CCDB_TRACE_SPAN("datalog.iteration");
    CCDB_FAILPOINT("datalog.iteration");
    CCDB_CHECK_BUDGET(gov, "datalog.iteration");
    ++s->iterations;
    CCDB_METRIC_COUNT("datalog.iterations", 1);
    bool grew = false;
    // Evaluate all rules against the CURRENT interpretation (simultaneous
    // inflationary step), then merge. Rule bodies are independent QE
    // problems over a frozen interpretation, so they evaluate across the
    // pool into index-addressed slots; the merge below walks the slots in
    // rule order, which keeps derived-tuple order, stats accumulation, and
    // the Z_k precision verdict identical at every thread count.
    struct RuleSlot {
      ConstraintRelation rel;
      QeStats qe_stats;
      std::int64_t us = 0;
    };
    const auto round_start = std::chrono::steady_clock::now();
    CCDB_ASSIGN_OR_RETURN(
        std::vector<RuleSlot> rule_slots,
        ThreadPool::Resolve(options.qe.pool)->ParallelMap<RuleSlot>(
            program.rules.size(),
            [&](std::size_t i) -> StatusOr<RuleSlot> {
              const DatalogRule& rule = program.rules[i];
              CCDB_ASSIGN_OR_RETURN(Formula body, RuleToFormula(rule));
              CCDB_ASSIGN_OR_RETURN(Formula instantiated,
                                    body.InstantiateRelations(lookup));
              RuleSlot slot;
              if (use_body_cache) {
                std::lock_guard<std::mutex> lock(body_cache_mu);
                auto it = body_cache.find(instantiated.id());
                if (it != body_cache.end()) {
                  CCDB_METRIC_COUNT("datalog_body_cache_hits", 1);
                  slot.rel = it->second.rel;
                  slot.qe_stats = it->second.qe_stats;
                  return slot;
                }
              }
              const auto rule_start = std::chrono::steady_clock::now();
              CCDB_ASSIGN_OR_RETURN(
                  slot.rel,
                  EliminateQuantifiers(instantiated,
                                       static_cast<int>(rule.head_vars.size()),
                                       rule_qe, &slot.qe_stats));
              slot.us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - rule_start)
                            .count();
              if (use_body_cache) {
                CCDB_METRIC_COUNT("datalog_body_cache_misses", 1);
                std::lock_guard<std::mutex> lock(body_cache_mu);
                body_cache.emplace(
                    instantiated.id(),
                    BodyMemo{instantiated, slot.rel, slot.qe_stats});
              }
              return slot;
            }));
    if (profile != nullptr) {
      ProfileNode round_node;
      round_node.label = "datalog.round[" + std::to_string(round) + "]";
      round_node.inclusive_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - round_start)
              .count();
      round_node.AddCounter("rules", program.rules.size());
      for (std::size_t i = 0; i < program.rules.size(); ++i) {
        // Children in rule order — deterministic shape at every thread
        // count; only the timings vary.
        ProfileNode child;
        child.label = "rule[" + std::to_string(i) + "] " +
                      program.rules[i].head;
        child.inclusive_us = rule_slots[i].us;
        AddQeCounters(&child, rule_slots[i].qe_stats);
        child.AddCounter("tuples_out", rule_slots[i].rel.tuples().size());
        round_node.children.push_back(std::move(child));
      }
      profile->Add(std::move(round_node));
    }
    std::map<std::string, std::vector<GeneralizedTuple>> derived;
    for (std::size_t i = 0; i < program.rules.size(); ++i) {
      const DatalogRule& rule = program.rules[i];
      RuleSlot& slot = rule_slots[i];
      ++s->qe_calls;
      s->max_bits = std::max(s->max_bits, slot.qe_stats.max_intermediate_bits);
      if (options.precision_k != 0 && s->max_bits > options.precision_k) {
        return Status::Undefined(
            "Datalog^F_QE: iteration needs integers of bit length " +
            std::to_string(s->max_bits) + " > k = " +
            std::to_string(options.precision_k));
      }
      auto& bucket = derived[rule.head];
      for (GeneralizedTuple& tuple : *slot.rel.mutable_tuples()) {
        bucket.push_back(std::move(tuple));
      }
    }
    for (auto& [name, tuples] : derived) {
      ConstraintRelation& current = idb.at(name);
      for (GeneralizedTuple& tuple : tuples) {
        CCDB_CHECK_BUDGET(gov, "datalog.iteration");
        CCDB_ASSIGN_OR_RETURN(
            bool contained,
            TupleContained(tuple, current, rule_qe, &s->qe_calls));
        if (contained) continue;
        if (gov != nullptr) {
          std::size_t bytes = 0;
          for (const Atom& atom : tuple.atoms) {
            bytes += atom.poly.EstimateBytes();
          }
          gov->ChargeBytes(bytes);
        }
        current.AddTuple(std::move(tuple));
        grew = true;
      }
      *current.mutable_tuples() =
          SimplifyTuples(std::move(*current.mutable_tuples()));
    }
    if (!grew) {
      s->reached_fixpoint = true;
      s->plan_cache_hits = plan_hits_counter->value() - plan_hits_before;
      CCDB_METRIC_COUNT("datalog.fixpoints", 1);
      CCDB_METRIC_COUNT("datalog.qe_calls", s->qe_calls);
      return idb;
    }
  }
  CCDB_LOG(WARN) << "Datalog evaluation hit the iteration cap ("
                 << options.max_iterations << ") without reaching a fixpoint";
  return Status::OutOfRange(
      "Datalog evaluation did not reach a fixpoint within " +
      std::to_string(options.max_iterations) + " iterations");
}

}  // namespace ccdb
