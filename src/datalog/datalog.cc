#include "datalog/datalog.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "base/failpoint.h"
#include "base/logging.h"
#include "base/memo.h"
#include "base/metrics.h"
#include "base/profile.h"
#include "base/thread_pool.h"
#include "base/trace.h"
#include "qe/fourier_motzkin.h"

namespace ccdb {

DatalogLiteral DatalogLiteral::Rel(std::string name, std::vector<int> args,
                                   bool negated) {
  DatalogLiteral lit;
  lit.is_relation = true;
  lit.negated = negated;
  lit.relation = std::move(name);
  lit.args = std::move(args);
  return lit;
}

DatalogLiteral DatalogLiteral::Constraint(Atom atom) {
  DatalogLiteral lit;
  lit.is_relation = false;
  lit.constraint = std::move(atom);
  return lit;
}

namespace {

// -1 = follow EngineConfig::Process(), 0 = forced off, 1 = forced on.
std::atomic<int> g_seminaive_override{-1};
std::atomic<int> g_incremental_override{-1};

// Variable renaming shared by every body formula a rule can take: head
// variable i -> column i, every other body variable existentially
// quantified above the columns.
struct RuleVarMap {
  std::map<int, int> mapping;
  std::vector<int> dense_mapping;
  std::vector<int> quantified;
};

StatusOr<RuleVarMap> MapRuleVars(const DatalogRule& rule) {
  std::vector<int> vars;
  auto note = [&vars](int v) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  };
  for (int v : rule.head_vars) note(v);
  for (const DatalogLiteral& lit : rule.body) {
    if (lit.is_relation) {
      for (int v : lit.args) note(v);
    } else {
      for (int v = 0; v <= lit.constraint.poly.max_var(); ++v) {
        if (lit.constraint.poly.Mentions(v)) note(v);
      }
    }
  }
  RuleVarMap vm;
  int arity = static_cast<int>(rule.head_vars.size());
  for (int i = 0; i < arity; ++i) {
    auto [it, inserted] = vm.mapping.emplace(rule.head_vars[i], i);
    if (!inserted) {
      return Status::InvalidArgument("repeated head variable in rule for " +
                                     rule.head);
    }
  }
  int next = arity;
  for (int v : vars) {
    if (vm.mapping.count(v) == 0) {
      vm.mapping[v] = next;
      vm.quantified.push_back(next);
      ++next;
    }
  }
  int max_old = vars.empty() ? -1 : *std::max_element(vars.begin(), vars.end());
  vm.dense_mapping.assign(max_old + 1, -1);
  for (const auto& [from, to] : vm.mapping) vm.dense_mapping[from] = to;
  return vm;
}

// The rule body as one conjunction, with each relation occurrence named by
// `name_of(body position)` — the hook the semi-naive rewrite uses to point
// individual occurrences at the @old / @delta slices of their relation.
Formula RuleConjunction(
    const DatalogRule& rule, const RuleVarMap& vm,
    const std::function<std::string(std::size_t)>& name_of) {
  std::vector<Formula> conjuncts;
  for (std::size_t i = 0; i < rule.body.size(); ++i) {
    const DatalogLiteral& lit = rule.body[i];
    if (lit.is_relation) {
      std::vector<int> args;
      for (int v : lit.args) args.push_back(vm.mapping.at(v));
      Formula atom = Formula::Relation(name_of(i), std::move(args));
      conjuncts.push_back(lit.negated ? Formula::Not(std::move(atom))
                                      : std::move(atom));
    } else {
      Polynomial renamed = lit.constraint.poly.RenameVars(vm.dense_mapping);
      conjuncts.push_back(
          Formula::MakeAtom(Atom(std::move(renamed), lit.constraint.op)));
    }
  }
  return Formula::And(conjuncts);
}

Formula QuantifyRuleBody(Formula body, const RuleVarMap& vm) {
  for (auto it = vm.quantified.rbegin(); it != vm.quantified.rend(); ++it) {
    body = Formula::Exists(*it, std::move(body));
  }
  return body;
}

// Builds the first-order formula of one rule body, with head variables
// renamed to 0..arity-1 and the remaining variables existentially
// quantified.
StatusOr<Formula> RuleToFormula(const DatalogRule& rule) {
  CCDB_ASSIGN_OR_RETURN(RuleVarMap vm, MapRuleVars(rule));
  return QuantifyRuleBody(
      RuleConjunction(rule, vm,
                      [&rule](std::size_t i) { return rule.body[i].relation; }),
      vm);
}

// Semi-naive delta rewrite of one rule body. For each positive occurrence
// c of a relation with a nonempty delta, emit one copy of the body where
// occurrence c reads the delta slice, every earlier changed positive
// occurrence reads the old slice, and everything later (plus unchanged
// and negated occurrences) reads the full relation. Classifying each
// tuple combination of the full body by its FIRST delta pick shows the
// union covers exactly the combinations that touch at least one delta
// tuple, each exactly once; the all-old combinations it drops were
// evaluated verbatim in an earlier round, so the merged fixpoint — after
// the canonical candidate sort below — is byte-identical with the naive
// path. Callers must not pass rules whose NEGATED occurrences changed:
// those all-old combinations are no longer verbatim re-runs (¬R shrank),
// so such rules fall back to the full body instead.
StatusOr<Formula> RuleToDeltaFormula(
    const DatalogRule& rule,
    const std::function<bool(const std::string&)>& changed) {
  CCDB_ASSIGN_OR_RETURN(RuleVarMap vm, MapRuleVars(rule));
  std::vector<Formula> choices;
  for (std::size_t c = 0; c < rule.body.size(); ++c) {
    const DatalogLiteral& pivot = rule.body[c];
    if (!pivot.is_relation || pivot.negated || !changed(pivot.relation)) {
      continue;
    }
    choices.push_back(RuleConjunction(
        rule, vm, [&rule, &changed, c](std::size_t i) {
          const DatalogLiteral& lit = rule.body[i];
          if (!lit.is_relation || lit.negated) return lit.relation;
          if (i == c) return lit.relation + "@delta";
          if (i < c && changed(lit.relation)) return lit.relation + "@old";
          return lit.relation;
        }));
  }
  return QuantifyRuleBody(Formula::Or(std::move(choices)), vm);
}

// Exact containment of one generalized tuple in another:
// not exists x (t(x) and not u(x)) — negating a single conjunction keeps
// the DNF linear in |u|.
StatusOr<bool> TupleInTuple(const GeneralizedTuple& t,
                            const GeneralizedTuple& u, int arity,
                            const QeOptions& qe, std::uint64_t* qe_calls) {
  std::vector<Formula> t_atoms;
  for (const Atom& atom : t.atoms) t_atoms.push_back(Formula::MakeAtom(atom));
  std::vector<Formula> u_atoms;
  for (const Atom& atom : u.atoms) u_atoms.push_back(Formula::MakeAtom(atom));
  Formula witness =
      Formula::And(Formula::And(t_atoms), Formula::Not(Formula::And(u_atoms)));
  for (int v = arity; v-- > 0;) {
    witness = Formula::Exists(v, std::move(witness));
  }
  ++*qe_calls;
  CCDB_ASSIGN_OR_RETURN(bool has_witness, DecideSentence(witness, qe));
  return !has_witness;
}

// Profiling attribution (base/profile.h): the same counter set qe.cc's
// nodes carry, zero values and already-present names skipped.
void AddQeCounters(ProfileNode* node, const QeStats& stats) {
  auto add = [node](const char* name, std::uint64_t v) {
    if (v == 0 || node->HasCounter(name)) return;
    node->AddCounter(name, v);
  };
  add("cad_cells", stats.cad_cells);
  add("projection_factors", stats.projection_factors);
  add("fm_rounds", stats.fm_rounds);
  add("max_bits", stats.max_intermediate_bits);
  add("qe_cache_hits", stats.cache_hits);
}

bool SameTuple(const GeneralizedTuple& a, const GeneralizedTuple& b) {
  if (a.atoms.size() != b.atoms.size()) return false;
  for (std::size_t i = 0; i < a.atoms.size(); ++i) {
    if (!(a.atoms[i] == b.atoms[i])) return false;
  }
  return true;
}

// Containment test for the inflationary fixpoint: is `candidate` a subset
// of `relation`? Checked syntactically and then tuple-against-tuple (sound
// and cheap). Both checks are DROP-STABLE: relations only grow, so a tuple
// that covers the candidate now still covers it in every later round.
// Stability is what lets the semi-naive path skip re-deriving a dropped
// candidate — a cover that could expire (e.g. a union of several tuples
// whose test is only attempted on small relations) would make the naive
// path re-admit the candidate later while semi-naive never revisits it.
// A missed containment merely costs an extra (redundant) tuple, never
// soundness.
StatusOr<bool> TupleContained(const GeneralizedTuple& candidate,
                              const ConstraintRelation& relation,
                              const QeOptions& qe, std::uint64_t* qe_calls) {
  for (const GeneralizedTuple& existing : relation.tuples()) {
    if (SameTuple(candidate, existing)) return true;
  }
  for (const GeneralizedTuple& existing : relation.tuples()) {
    CCDB_ASSIGN_OR_RETURN(bool inside,
                          TupleInTuple(candidate, existing, relation.arity(),
                                       qe, qe_calls));
    if (inside) return true;
  }
  return false;
}

Status ValidateProgram(const DatalogProgram& program,
                       const std::map<std::string, ConstraintRelation>& edb) {
  for (const auto& [name, arity] : program.idb_arities) {
    (void)arity;
    if (edb.count(name) != 0) {
      return Status::InvalidArgument("relation " + name +
                                     " is both EDB and IDB");
    }
  }
  for (const DatalogRule& rule : program.rules) {
    if (program.idb_arities.count(rule.head) == 0) {
      return Status::InvalidArgument("rule head " + rule.head +
                                     " is not a declared IDB relation");
    }
  }
  return Status::Ok();
}

enum class RuleMode { kFull, kDelta, kSkip };

// Shared fixpoint driver. `idb` enters holding the starting interpretation
// (empty relations for a cold run, the previous fixpoint for a resume) and
// grows in place until a fixpoint. `delta_start[R]` marks the first tuple
// of R's current delta: empty for a cold start (round 0 then evaluates
// full bodies), the appended EDB suffixes for a resume (`resumed` makes
// round 0 a delta round). After each round the IDB deltas roll forward to
// the tuples that round added.
Status RunFixpoint(const DatalogProgram& program,
                   const std::map<std::string, ConstraintRelation>& edb,
                   std::map<std::string, ConstraintRelation>* idb,
                   std::map<std::string, std::size_t> delta_start,
                   bool resumed, bool seminaive, const DatalogOptions& options,
                   DatalogStats* s) {
  const ResourceGovernor* gov = options.qe.governor;

  // Per-round attribution (Observability v2, DESIGN.md §12): when the
  // caller armed a ProfileSink, each fixpoint round appends ONE node —
  // "datalog.round[i]" with one child per rule in rule order — instead of
  // letting every rule elimination add its own root from a pool worker in
  // arrival order. Rule-level eliminations therefore run with the sink
  // cleared (`rule_qe`), same as QE sub-eliminations; observation only.
  ProfileSink* profile = options.qe.profile;
  QeOptions rule_qe = options.qe;
  rule_qe.profile = nullptr;

  // Per-run rule-body memo: once the relations a rule depends on stop
  // changing, its instantiated body hash-conses to the same interned
  // formula, and the QE result of the previous round can be replayed
  // verbatim. Keyed on the interned formula id; the stored Formula pins
  // the id alive. Pure memo (same contract as the QE cache), so it is
  // skipped under an armed governor to keep budget charging exact.
  struct BodyMemo {
    Formula formula;
    ConstraintRelation rel;
    QeStats qe_stats;
  };
  std::mutex body_cache_mu;
  std::unordered_map<std::uint64_t, BodyMemo> body_cache;
  const bool use_body_cache =
      gov == nullptr && MemoCachesEnabledFor(options.qe.memo);

  // Plan-once-per-fixpoint observability: rule-body plans memoize on the
  // body's interned formula id (plan/planner.h), so later rounds reuse the
  // round-one plan. The counter delta over the run surfaces the reuse.
  Counter* plan_hits_counter =
      MetricsRegistry::Global().GetCounter("plan_cache_hits");
  const std::uint64_t plan_hits_before = plan_hits_counter->value();

  auto find_relation = [&edb, idb](
                           const std::string& name) -> const ConstraintRelation* {
    auto it = idb->find(name);
    if (it != idb->end()) return &it->second;
    auto jt = edb.find(name);
    if (jt != edb.end()) return &jt->second;
    return nullptr;
  };
  auto delta_size = [&](const std::string& name) -> std::size_t {
    auto it = delta_start.find(name);
    if (it == delta_start.end()) return 0;
    const ConstraintRelation* rel = find_relation(name);
    if (rel == nullptr) return 0;
    std::size_t size = rel->tuples().size();
    return size - std::min(it->second, size);
  };

  // Relation lookup for body instantiation. Plain names resolve to the
  // full relation; the semi-naive rewrite additionally reads the "@old"
  // (prefix before this round's delta) and "@delta" (suffix) slices.
  // Slicing by index is exact because relations are append-only across
  // rounds: candidates are only ever pushed at the back and
  // SimplifyTuples keeps first occurrences in place.
  auto lookup = [&](const std::string& name) -> StatusOr<ConstraintRelation> {
    const std::size_t at = name.find('@');
    const std::string base = at == std::string::npos ? name : name.substr(0, at);
    const ConstraintRelation* full = find_relation(base);
    if (full == nullptr) return Status::NotFound("unknown relation " + base);
    if (at == std::string::npos) return *full;
    const std::vector<GeneralizedTuple>& tuples = full->tuples();
    std::size_t cut = tuples.size();
    auto it = delta_start.find(base);
    if (it != delta_start.end()) cut = std::min(it->second, tuples.size());
    const std::string slice = name.substr(at + 1);
    if (slice == "old") {
      return ConstraintRelation(
          full->arity(), std::vector<GeneralizedTuple>(tuples.begin(),
                                                       tuples.begin() + cut));
    }
    if (slice == "delta") {
      return ConstraintRelation(
          full->arity(),
          std::vector<GeneralizedTuple>(tuples.begin() + cut, tuples.end()));
    }
    return Status::NotFound("unknown relation slice " + name);
  };

  for (int round = 0; round < options.max_iterations; ++round) {
    CCDB_TRACE_SPAN("datalog.iteration");
    CCDB_FAILPOINT("datalog.iteration");
    CCDB_CHECK_BUDGET(gov, "datalog.iteration");
    ++s->iterations;
    CCDB_METRIC_COUNT("datalog.iterations", 1);
    bool grew = false;

    // Round 0 of a cold run evaluates every rule in full (there is no
    // previous round to difference against); every later round — and every
    // round of a resume — differences against the previous round's deltas.
    const bool delta_round = seminaive && (resumed || round > 0);
    std::uint64_t round_delta_tuples = 0;
    std::vector<RuleMode> modes(program.rules.size(), RuleMode::kFull);
    if (delta_round) {
      for (const auto& [name, start] : delta_start) {
        (void)start;
        round_delta_tuples += delta_size(name);
      }
      s->delta_tuples += round_delta_tuples;
      for (std::size_t i = 0; i < program.rules.size(); ++i) {
        bool any_changed = false;
        bool negated_changed = false;
        for (const DatalogLiteral& lit : program.rules[i].body) {
          if (!lit.is_relation || delta_size(lit.relation) == 0) continue;
          any_changed = true;
          if (lit.negated) negated_changed = true;
        }
        // A body none of whose relations changed re-derives exactly what it
        // derived the round it last ran; every candidate would be dropped
        // by the (drop-stable) containment pass, so skip the QE outright.
        // A changed relation under negation breaks the delta rewrite's
        // "all-old combinations already ran" premise — full body instead.
        modes[i] = !any_changed      ? RuleMode::kSkip
                   : negated_changed ? RuleMode::kFull
                                     : RuleMode::kDelta;
      }
    }

    // Evaluate all rules against the CURRENT interpretation (simultaneous
    // inflationary step), then merge. Rule bodies are independent QE
    // problems over a frozen interpretation, so they evaluate across the
    // pool into index-addressed slots; the merge below walks the slots in
    // rule order, which keeps derived-tuple order, stats accumulation, and
    // the Z_k precision verdict identical at every thread count.
    struct RuleSlot {
      ConstraintRelation rel;
      QeStats qe_stats;
      std::int64_t us = 0;
      bool skipped = false;
    };
    const auto round_start = std::chrono::steady_clock::now();
    auto changed = [&](const std::string& name) { return delta_size(name) > 0; };
    CCDB_ASSIGN_OR_RETURN(
        std::vector<RuleSlot> rule_slots,
        ThreadPool::Resolve(options.qe.pool)->ParallelMap<RuleSlot>(
            program.rules.size(),
            [&](std::size_t i) -> StatusOr<RuleSlot> {
              const DatalogRule& rule = program.rules[i];
              RuleSlot slot;
              if (modes[i] == RuleMode::kSkip) {
                slot.skipped = true;
                slot.rel = ConstraintRelation(
                    static_cast<int>(rule.head_vars.size()));
                return slot;
              }
              Formula body = Formula::False();
              if (modes[i] == RuleMode::kDelta) {
                CCDB_ASSIGN_OR_RETURN(body, RuleToDeltaFormula(rule, changed));
              } else {
                CCDB_ASSIGN_OR_RETURN(body, RuleToFormula(rule));
              }
              CCDB_ASSIGN_OR_RETURN(Formula instantiated,
                                    body.InstantiateRelations(lookup));
              if (use_body_cache) {
                std::lock_guard<std::mutex> lock(body_cache_mu);
                auto it = body_cache.find(instantiated.id());
                if (it != body_cache.end()) {
                  CCDB_METRIC_COUNT("datalog_body_cache_hits", 1);
                  slot.rel = it->second.rel;
                  slot.qe_stats = it->second.qe_stats;
                  return slot;
                }
              }
              const auto rule_start = std::chrono::steady_clock::now();
              CCDB_ASSIGN_OR_RETURN(
                  slot.rel,
                  EliminateQuantifiers(instantiated,
                                       static_cast<int>(rule.head_vars.size()),
                                       rule_qe, &slot.qe_stats));
              slot.us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - rule_start)
                            .count();
              if (use_body_cache) {
                CCDB_METRIC_COUNT("datalog_body_cache_misses", 1);
                std::lock_guard<std::mutex> lock(body_cache_mu);
                body_cache.emplace(
                    instantiated.id(),
                    BodyMemo{instantiated, slot.rel, slot.qe_stats});
              }
              return slot;
            }));
    if (profile != nullptr) {
      ProfileNode round_node;
      round_node.label = "datalog.round[" + std::to_string(round) + "]";
      round_node.inclusive_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - round_start)
              .count();
      round_node.AddCounter("rules", program.rules.size());
      if (delta_round) {
        round_node.AddCounter("delta_tuples", round_delta_tuples);
      }
      for (std::size_t i = 0; i < program.rules.size(); ++i) {
        // Children in rule order — deterministic shape at every thread
        // count regardless of which deltas fired; a rule whose delta join
        // was empty still gets its child, with zeroed counters.
        ProfileNode child;
        child.label = "rule[" + std::to_string(i) + "] " +
                      program.rules[i].head;
        child.inclusive_us = rule_slots[i].us;
        AddQeCounters(&child, rule_slots[i].qe_stats);
        child.AddCounter("tuples_out", rule_slots[i].rel.tuples().size());
        round_node.children.push_back(std::move(child));
      }
      profile->Add(std::move(round_node));
    }

    // Deltas for the NEXT round: everything this round's merge appends
    // beyond the sizes recorded here.
    std::map<std::string, std::size_t> next_delta_start;
    for (const auto& [name, rel] : *idb) {
      next_delta_start[name] = rel.tuples().size();
    }

    std::map<std::string, std::vector<GeneralizedTuple>> derived;
    for (std::size_t i = 0; i < program.rules.size(); ++i) {
      const DatalogRule& rule = program.rules[i];
      RuleSlot& slot = rule_slots[i];
      if (slot.skipped) {
        ++s->rules_skipped;
        continue;
      }
      ++s->qe_calls;
      s->max_bits = std::max(s->max_bits, slot.qe_stats.max_intermediate_bits);
      if (options.precision_k != 0 && s->max_bits > options.precision_k) {
        return Status::Undefined(
            "Datalog^F_QE: iteration needs integers of bit length " +
            std::to_string(s->max_bits) + " > k = " +
            std::to_string(options.precision_k));
      }
      auto& bucket = derived[rule.head];
      for (GeneralizedTuple& tuple : *slot.rel.mutable_tuples()) {
        bucket.push_back(std::move(tuple));
      }
    }
    for (auto& [name, tuples] : derived) {
      // Canonical index-order merge: the per-round candidate batch is
      // sorted structurally and deduplicated before the containment pass.
      // The semi-naive batch is the naive batch minus candidates that are
      // already present (their all-old derivations ran in an earlier
      // round), so after the sort both paths walk the surviving candidates
      // in the same order and append the same tuples — the anchor of the
      // CCDB_SEMINAIVE byte-identity contract, at every thread count.
      std::sort(tuples.begin(), tuples.end());
      tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
      ConstraintRelation& current = idb->at(name);
      for (GeneralizedTuple& tuple : tuples) {
        CCDB_CHECK_BUDGET(gov, "datalog.iteration");
        CCDB_ASSIGN_OR_RETURN(
            bool contained,
            TupleContained(tuple, current, rule_qe, &s->qe_calls));
        if (contained) continue;
        if (gov != nullptr) {
          std::size_t bytes = 0;
          for (const Atom& atom : tuple.atoms) {
            bytes += atom.poly.EstimateBytes();
          }
          gov->ChargeBytes(bytes);
        }
        current.AddTuple(std::move(tuple));
        grew = true;
      }
      *current.mutable_tuples() =
          SimplifyTuples(std::move(*current.mutable_tuples()));
    }
    delta_start = std::move(next_delta_start);
    if (!grew) {
      s->reached_fixpoint = true;
      s->plan_cache_hits = plan_hits_counter->value() - plan_hits_before;
      CCDB_METRIC_COUNT("datalog.fixpoints", 1);
      CCDB_METRIC_COUNT("datalog.qe_calls", s->qe_calls);
      return Status::Ok();
    }
  }
  CCDB_LOG(WARN) << "Datalog evaluation hit the iteration cap ("
                 << options.max_iterations << ") without reaching a fixpoint";
  return Status::OutOfRange(
      "Datalog evaluation did not reach a fixpoint within " +
      std::to_string(options.max_iterations) + " iterations");
}

bool ResolveSeminaive(const DatalogOptions& options) {
  bool on;
  switch (options.seminaive) {
    case PlanToggle::kOn:
      on = true;
      break;
    case PlanToggle::kOff:
      on = false;
      break;
    default:
      on = SeminaiveEnabled();
      break;
  }
  // Z_k forces the naive path: the finite-precision verdict must observe
  // every intermediate the naive rounds would materialize, and skipped
  // delta joins would shrink max_bits.
  if (options.precision_k != 0) on = false;
  return on;
}

}  // namespace

bool SeminaiveEnabled() {
  int forced = g_seminaive_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return EngineConfig::Process().seminaive;
}

void SetSeminaiveEnabled(bool enabled) {
  g_seminaive_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool IncrementalEnabled() {
  int forced = g_incremental_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return EngineConfig::Process().incremental;
}

void SetIncrementalEnabled(bool enabled) {
  g_incremental_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

std::string DatalogStats::ToString() const {
  std::ostringstream out;
  out << "iterations=" << iterations
      << " fixpoint=" << (reached_fixpoint ? "yes" : "no")
      << " qe_calls=" << qe_calls << " max_bits=" << max_bits
      << " plan_cache_hits=" << plan_cache_hits
      << " delta_tuples=" << delta_tuples
      << " rules_skipped=" << rules_skipped;
  return out.str();
}

std::string DatalogStats::ToJson() const {
  return JsonObjectBuilder()
      .Add("iterations", static_cast<std::int64_t>(iterations))
      .Add("reached_fixpoint", reached_fixpoint)
      .Add("qe_calls", qe_calls)
      .Add("max_bits", max_bits)
      .Add("plan_cache_hits", plan_cache_hits)
      .Add("delta_tuples", delta_tuples)
      .Add("rules_skipped", rules_skipped)
      .Build();
}

StatusOr<std::map<std::string, ConstraintRelation>> EvaluateDatalog(
    const DatalogProgram& program,
    const std::map<std::string, ConstraintRelation>& edb,
    const DatalogOptions& options, DatalogStats* stats) {
  CCDB_TRACE_SPAN("datalog.evaluate");
  CCDB_METRIC_COUNT("datalog.runs", 1);
  DatalogStats local;
  DatalogStats* s = stats != nullptr ? stats : &local;
  *s = DatalogStats();

  CCDB_RETURN_IF_ERROR(ValidateProgram(program, edb));
  std::map<std::string, ConstraintRelation> idb;
  for (const auto& [name, arity] : program.idb_arities) {
    idb.emplace(name, ConstraintRelation(arity));
  }
  CCDB_RETURN_IF_ERROR(RunFixpoint(program, edb, &idb, {}, /*resumed=*/false,
                                   ResolveSeminaive(options), options, s));
  return idb;
}

StatusOr<std::map<std::string, ConstraintRelation>> ResumeDatalog(
    const DatalogProgram& program,
    const std::map<std::string, ConstraintRelation>& edb,
    DatalogFixpointState* state, const DatalogOptions& options,
    DatalogStats* stats) {
  CCDB_TRACE_SPAN("datalog.resume");
  CCDB_METRIC_COUNT("datalog.resumes", 1);
  DatalogStats local;
  DatalogStats* s = stats != nullptr ? stats : &local;
  *s = DatalogStats();

  CCDB_RETURN_IF_ERROR(ValidateProgram(program, edb));
  if (options.precision_k != 0) {
    return Status::InvalidArgument(
        "incremental re-fixpoint is undefined under Z_k: the bit-length "
        "verdict depends on the naive rounds");
  }
  for (const DatalogRule& rule : program.rules) {
    for (const DatalogLiteral& lit : rule.body) {
      if (lit.is_relation && lit.negated) {
        return Status::InvalidArgument(
            "incremental re-fixpoint refused: rule for " + rule.head +
            " uses negation, and the inflationary fixpoint is not monotone "
            "in the EDB under negation");
      }
    }
  }
  for (const auto& [name, arity] : program.idb_arities) {
    auto it = state->idb.find(name);
    if (it == state->idb.end() || it->second.arity() != arity) {
      return Status::InvalidArgument(
          "fixpoint state does not cover IDB relation " + name);
    }
  }
  std::map<std::string, std::size_t> seed;
  for (const auto& [name, rel] : edb) {
    auto it = state->edb_sizes.find(name);
    const std::size_t old_size = it == state->edb_sizes.end() ? 0 : it->second;
    if (old_size > rel.tuples().size()) {
      return Status::InvalidArgument(
          "EDB relation " + name +
          " shrank since the fixpoint state was materialized");
    }
    if (old_size < rel.tuples().size()) seed[name] = old_size;
  }

  std::map<std::string, ConstraintRelation> idb = state->idb;
  CCDB_RETURN_IF_ERROR(RunFixpoint(program, edb, &idb, std::move(seed),
                                   /*resumed=*/true, /*seminaive=*/true,
                                   options, s));
  state->idb = idb;
  state->edb_sizes.clear();
  for (const auto& [name, rel] : edb) {
    state->edb_sizes[name] = rel.tuples().size();
  }
  return idb;
}

}  // namespace ccdb
