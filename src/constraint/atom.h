#ifndef CCDB_CONSTRAINT_ATOM_H_
#define CCDB_CONSTRAINT_ATOM_H_

#include <string>
#include <vector>

#include "arith/rational.h"
#include "poly/polynomial.h"

namespace ccdb {

/// Comparison operator of an atomic constraint "p(x) op 0".
enum class RelOp {
  kEq,   // = 0
  kNeq,  // != 0
  kLt,   // < 0
  kLe,   // <= 0
  kGt,   // > 0
  kGe,   // >= 0
};

/// The logical negation of an operator.
RelOp NegateOp(RelOp op);
/// The operator satisfied by -p whenever p satisfies `op` (mirror across
/// zero): < and > swap, <= and >= swap, = and != are fixed.
RelOp FlipOp(RelOp op);
/// True iff `sign` (of a polynomial value, in {-1,0,1}) satisfies `op`.
bool SignSatisfies(int sign, RelOp op);
/// "=", "!=", "<", "<=", ">", ">=".
const char* RelOpToString(RelOp op);

/// Atomic polynomial constraint over the reals: poly(x) op 0 (paper,
/// Section 3: atomic formulas of the language of the real closed field).
struct Atom {
  Polynomial poly;
  RelOp op = RelOp::kEq;

  Atom() = default;
  Atom(Polynomial p, RelOp o) : poly(std::move(p)), op(o) {}

  /// The negated atom (same polynomial, complemented operator).
  Atom Negated() const { return Atom(poly, NegateOp(op)); }

  /// The canonical representative of this atom's equivalence class: the
  /// polynomial is gcd-reduced to its primitive integer form with positive
  /// leading coefficient (flipping the operator when the sign flipped, so
  /// "-x < 0" and "x > 0" — and hence ¬(p < 0) and p >= 0 — canonicalize
  /// identically) and interned in the polynomial pool. Idempotent.
  Atom Canonical() const;

  /// Truth at a rational point (must cover the polynomial's variables).
  bool SatisfiedAt(const std::vector<Rational>& point) const {
    return SignSatisfies(poly.Evaluate(point).sign(), op);
  }

  bool operator==(const Atom& other) const {
    return op == other.op && poly == other.poly;
  }
  bool operator!=(const Atom& other) const { return !(*this == other); }
  /// Deterministic structural order (polynomial order, then operator).
  bool operator<(const Atom& other) const;

  std::size_t Hash() const {
    return poly.Hash() * 1099511628211ull + static_cast<std::size_t>(op);
  }

  std::string ToString(const std::vector<std::string>& names = {}) const;
};

/// A generalized tuple (paper, Section 3): a conjunction of atomic
/// constraints over k variables, denoting a (possibly infinite) subset of
/// R^k. An empty conjunction denotes all of R^k.
struct GeneralizedTuple {
  std::vector<Atom> atoms;

  GeneralizedTuple() = default;
  explicit GeneralizedTuple(std::vector<Atom> a) : atoms(std::move(a)) {}

  bool SatisfiedAt(const std::vector<Rational>& point) const {
    for (const Atom& atom : atoms) {
      if (!atom.SatisfiedAt(point)) return false;
    }
    return true;
  }

  /// Syntactic check for a tuple that is identically false because it
  /// contains a constant atom violating its operator. (Full emptiness
  /// checking is the QE engine's job.)
  bool TriviallyFalse() const;
  /// Removes constant atoms that hold identically; returns false when the
  /// tuple became trivially false instead.
  bool SimplifyConstants();

  /// Full canonicalization: canonicalizes every atom (Atom::Canonical),
  /// folds constant atoms as SimplifyConstants does, then sorts and
  /// deduplicates the conjunction. Returns false when the tuple is
  /// trivially false. Idempotent; equal conjunctions (up to atom order,
  /// scaling, and sign) canonicalize to equal tuples.
  bool Canonicalize();

  /// Order-sensitive structural hash (canonicalize first to get an
  /// order-insensitive one).
  std::size_t Hash() const;

  bool operator==(const GeneralizedTuple& other) const {
    return atoms == other.atoms;
  }
  /// Deterministic structural order (lexicographic over atoms). Sorting a
  /// union of canonicalized disjuncts with this order makes the union's
  /// rendering independent of derivation order — the anchor of the
  /// planner-on/planner-off byte-identity contract.
  bool operator<(const GeneralizedTuple& other) const;

  std::string ToString(const std::vector<std::string>& names = {}) const;
};

/// A finitely representable relation (paper, Section 3): a finite set of
/// generalized tuples over a fixed arity, denoting their union. Variables
/// 0..arity-1 are the relation's columns.
class ConstraintRelation {
 public:
  ConstraintRelation() = default;
  explicit ConstraintRelation(int arity) : arity_(arity) {}
  ConstraintRelation(int arity, std::vector<GeneralizedTuple> tuples)
      : arity_(arity), tuples_(std::move(tuples)) {}

  int arity() const { return arity_; }
  const std::vector<GeneralizedTuple>& tuples() const { return tuples_; }
  std::vector<GeneralizedTuple>* mutable_tuples() { return &tuples_; }

  /// Syntactically empty (no tuples). An empty relation denotes the empty
  /// set; a relation may denote the empty set without being syntactically
  /// empty.
  bool is_empty_syntactically() const { return tuples_.empty(); }

  void AddTuple(GeneralizedTuple tuple) { tuples_.push_back(std::move(tuple)); }

  /// Membership test for a rational point of length arity().
  bool Contains(const std::vector<Rational>& point) const;

  /// Every polynomial mentioned, deduplicated.
  std::vector<Polynomial> CollectPolynomials() const;

  /// Largest coefficient bit length over all atoms (the paper's input-size
  /// measure for Theorems 4.1-4.3).
  std::uint64_t MaxCoefficientBitLength() const;
  /// Number of distinct polynomials (the "m" of the class K_{d,m}).
  std::size_t DistinctPolynomialCount() const;
  /// Max degree of any polynomial (the "d" of the class K_{d,m}).
  std::uint32_t MaxDegree() const;

  std::string ToString(const std::vector<std::string>& names = {}) const;

 private:
  int arity_ = 0;
  std::vector<GeneralizedTuple> tuples_;
};

}  // namespace ccdb

#endif  // CCDB_CONSTRAINT_ATOM_H_
