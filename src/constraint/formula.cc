#include "constraint/formula.h"

#include <algorithm>
#include <functional>

#include "base/logging.h"

namespace ccdb {

struct Formula::Node {
  Kind kind = Kind::kTrue;
  Atom atom;
  std::string relation_name;
  std::vector<int> relation_args;
  std::vector<Formula> children;
  int var = -1;
};

Formula::Formula() : node_(std::make_shared<Node>()) {}

Formula::Formula(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

Formula Formula::True() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kTrue;
  return Formula(std::move(node));
}

Formula Formula::False() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kFalse;
  return Formula(std::move(node));
}

Formula Formula::MakeAtom(Atom atom) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAtom;
  node->atom = std::move(atom);
  return Formula(std::move(node));
}

Formula Formula::Compare(const Polynomial& lhs, RelOp op,
                         const Polynomial& rhs) {
  return MakeAtom(Atom(lhs - rhs, op));
}

Formula Formula::Relation(std::string name, std::vector<int> args) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kRelation;
  node->relation_name = std::move(name);
  node->relation_args = std::move(args);
  return Formula(std::move(node));
}

Formula Formula::Not(Formula f) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kNot;
  node->children.push_back(std::move(f));
  return Formula(std::move(node));
}

Formula Formula::And(Formula a, Formula b) {
  return And(std::vector<Formula>{std::move(a), std::move(b)});
}

Formula Formula::Or(Formula a, Formula b) {
  return Or(std::vector<Formula>{std::move(a), std::move(b)});
}

Formula Formula::And(const std::vector<Formula>& fs) {
  std::vector<Formula> kept;
  for (const Formula& f : fs) {
    if (f.kind() == Kind::kFalse) return False();
    if (f.kind() == Kind::kTrue) continue;
    kept.push_back(f);
  }
  if (kept.empty()) return True();
  if (kept.size() == 1) return kept[0];
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAnd;
  node->children = std::move(kept);
  return Formula(std::move(node));
}

Formula Formula::Or(const std::vector<Formula>& fs) {
  std::vector<Formula> kept;
  for (const Formula& f : fs) {
    if (f.kind() == Kind::kTrue) return True();
    if (f.kind() == Kind::kFalse) continue;
    kept.push_back(f);
  }
  if (kept.empty()) return False();
  if (kept.size() == 1) return kept[0];
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOr;
  node->children = std::move(kept);
  return Formula(std::move(node));
}

Formula Formula::Exists(int var, Formula body) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kExists;
  node->var = var;
  node->children.push_back(std::move(body));
  return Formula(std::move(node));
}

Formula Formula::Forall(int var, Formula body) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kForall;
  node->var = var;
  node->children.push_back(std::move(body));
  return Formula(std::move(node));
}

Formula::Kind Formula::kind() const { return node_->kind; }

const Atom& Formula::atom() const {
  CCDB_CHECK(node_->kind == Kind::kAtom);
  return node_->atom;
}

const std::string& Formula::relation_name() const {
  CCDB_CHECK(node_->kind == Kind::kRelation);
  return node_->relation_name;
}

const std::vector<int>& Formula::relation_args() const {
  CCDB_CHECK(node_->kind == Kind::kRelation);
  return node_->relation_args;
}

const std::vector<Formula>& Formula::children() const {
  return node_->children;
}

int Formula::quantified_var() const {
  CCDB_CHECK(node_->kind == Kind::kExists || node_->kind == Kind::kForall);
  return node_->var;
}

bool Formula::is_quantifier_free() const {
  if (node_->kind == Kind::kExists || node_->kind == Kind::kForall) {
    return false;
  }
  for (const Formula& child : node_->children) {
    if (!child.is_quantifier_free()) return false;
  }
  return true;
}

bool Formula::has_relation_symbols() const {
  if (node_->kind == Kind::kRelation) return true;
  for (const Formula& child : node_->children) {
    if (child.has_relation_symbols()) return true;
  }
  return false;
}

namespace {

void CollectVars(const Formula& f, bool free_only, std::set<int>* bound,
                 std::set<int>* out) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return;
    case Formula::Kind::kAtom: {
      const Polynomial& p = f.atom().poly;
      for (int v = 0; v <= p.max_var(); ++v) {
        if (p.Mentions(v) && (!free_only || bound->count(v) == 0)) {
          out->insert(v);
        }
      }
      return;
    }
    case Formula::Kind::kRelation:
      for (int v : f.relation_args()) {
        if (!free_only || bound->count(v) == 0) out->insert(v);
      }
      return;
    case Formula::Kind::kNot:
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      for (const Formula& child : f.children()) {
        CollectVars(child, free_only, bound, out);
      }
      return;
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      int v = f.quantified_var();
      bool inserted = bound->insert(v).second;
      if (!free_only) out->insert(v);
      CollectVars(f.children()[0], free_only, bound, out);
      if (inserted) bound->erase(v);
      return;
    }
  }
}

}  // namespace

std::set<int> Formula::FreeVars() const {
  std::set<int> bound;
  std::set<int> out;
  CollectVars(*this, /*free_only=*/true, &bound, &out);
  return out;
}

std::set<int> Formula::AllVars() const {
  std::set<int> bound;
  std::set<int> out;
  CollectVars(*this, /*free_only=*/false, &bound, &out);
  return out;
}

Formula RelationToFormula(const ConstraintRelation& relation,
                          const std::vector<int>& column_vars) {
  CCDB_CHECK(static_cast<int>(column_vars.size()) == relation.arity());
  std::vector<Formula> disjuncts;
  for (const GeneralizedTuple& tuple : relation.tuples()) {
    std::vector<Formula> conjuncts;
    for (const Atom& atom : tuple.atoms) {
      CCDB_CHECK_MSG(atom.poly.max_var() < relation.arity(),
                     "relation body mentions variable beyond its arity");
      Polynomial renamed = atom.poly.RenameVars(column_vars);
      conjuncts.push_back(Formula::MakeAtom(Atom(renamed, atom.op)));
    }
    disjuncts.push_back(Formula::And(conjuncts));
  }
  return Formula::Or(disjuncts);
}

StatusOr<Formula> Formula::InstantiateRelations(
    const std::function<StatusOr<ConstraintRelation>(const std::string&)>&
        lookup) const {
  switch (kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kAtom:
      return *this;
    case Kind::kRelation: {
      CCDB_ASSIGN_OR_RETURN(ConstraintRelation relation,
                            lookup(relation_name()));
      if (static_cast<int>(relation_args().size()) != relation.arity()) {
        return Status::InvalidArgument(
            "relation " + relation_name() + " used with arity " +
            std::to_string(relation_args().size()) + ", declared " +
            std::to_string(relation.arity()));
      }
      return RelationToFormula(relation, relation_args());
    }
    case Kind::kNot: {
      CCDB_ASSIGN_OR_RETURN(Formula inner,
                            children()[0].InstantiateRelations(lookup));
      return Not(std::move(inner));
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<Formula> mapped;
      for (const Formula& child : children()) {
        CCDB_ASSIGN_OR_RETURN(Formula m, child.InstantiateRelations(lookup));
        mapped.push_back(std::move(m));
      }
      return kind() == Kind::kAnd ? And(mapped) : Or(mapped);
    }
    case Kind::kExists:
    case Kind::kForall: {
      CCDB_ASSIGN_OR_RETURN(Formula inner,
                            children()[0].InstantiateRelations(lookup));
      return kind() == Kind::kExists ? Exists(quantified_var(), inner)
                                     : Forall(quantified_var(), inner);
    }
  }
  return Status::Internal("unreachable formula kind");
}

Formula Formula::RenameFreeVar(int from, int to) const {
  switch (kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return *this;
    case Kind::kAtom: {
      const Polynomial& p = node_->atom.poly;
      if (!p.Mentions(from)) return *this;
      std::vector<int> mapping(std::max(p.max_var(), from) + 1);
      for (std::size_t i = 0; i < mapping.size(); ++i) {
        mapping[i] = static_cast<int>(i);
      }
      mapping[from] = to;
      return MakeAtom(Atom(p.RenameVars(mapping), node_->atom.op));
    }
    case Kind::kRelation: {
      std::vector<int> args = relation_args();
      bool changed = false;
      for (int& a : args) {
        if (a == from) {
          a = to;
          changed = true;
        }
      }
      if (!changed) return *this;
      return Relation(relation_name(), std::move(args));
    }
    case Kind::kNot:
      return Not(children()[0].RenameFreeVar(from, to));
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<Formula> mapped;
      for (const Formula& child : children()) {
        mapped.push_back(child.RenameFreeVar(from, to));
      }
      return kind() == Kind::kAnd ? And(mapped) : Or(mapped);
    }
    case Kind::kExists:
    case Kind::kForall: {
      if (quantified_var() == from) return *this;  // bound below
      Formula inner = children()[0].RenameFreeVar(from, to);
      return kind() == Kind::kExists ? Exists(quantified_var(), inner)
                                     : Forall(quantified_var(), inner);
    }
  }
  CCDB_CHECK(false);
  return *this;
}

Formula Formula::SubstituteValue(int var, const Rational& value) const {
  switch (kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return *this;
    case Kind::kAtom: {
      Polynomial substituted = node_->atom.poly.Substitute(var, value);
      Atom atom(std::move(substituted), node_->atom.op);
      if (atom.poly.is_constant()) {
        return SignSatisfies(atom.poly.constant_value().sign(), atom.op)
                   ? True()
                   : False();
      }
      return MakeAtom(std::move(atom));
    }
    case Kind::kRelation:
      for (int a : relation_args()) {
        CCDB_CHECK_MSG(a != var,
                       "substitute into uninstantiated relation argument");
      }
      return *this;
    case Kind::kNot:
      return Not(children()[0].SubstituteValue(var, value));
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<Formula> mapped;
      for (const Formula& child : children()) {
        mapped.push_back(child.SubstituteValue(var, value));
      }
      return kind() == Kind::kAnd ? And(mapped) : Or(mapped);
    }
    case Kind::kExists:
    case Kind::kForall: {
      if (quantified_var() == var) return *this;
      Formula inner = children()[0].SubstituteValue(var, value);
      return kind() == Kind::kExists ? Exists(quantified_var(), inner)
                                     : Forall(quantified_var(), inner);
    }
  }
  CCDB_CHECK(false);
  return *this;
}

bool Formula::EvaluateAt(const std::vector<Rational>& point) const {
  switch (kind()) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom:
      return node_->atom.SatisfiedAt(point);
    case Kind::kNot:
      return !children()[0].EvaluateAt(point);
    case Kind::kAnd:
      for (const Formula& child : children()) {
        if (!child.EvaluateAt(point)) return false;
      }
      return true;
    case Kind::kOr:
      for (const Formula& child : children()) {
        if (child.EvaluateAt(point)) return true;
      }
      return false;
    case Kind::kRelation:
    case Kind::kExists:
    case Kind::kForall:
      CCDB_CHECK_MSG(false, "EvaluateAt requires quantifier/relation-free");
  }
  return false;
}

std::string Formula::ToString(const std::vector<std::string>& names) const {
  auto var_name = [&names](int v) {
    if (v >= 0 && v < static_cast<int>(names.size())) return names[v];
    return "x" + std::to_string(v);
  };
  switch (kind()) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kAtom:
      return node_->atom.ToString(names);
    case Kind::kRelation: {
      std::string out = relation_name() + "(";
      for (std::size_t i = 0; i < relation_args().size(); ++i) {
        if (i > 0) out += ", ";
        out += var_name(relation_args()[i]);
      }
      return out + ")";
    }
    case Kind::kNot:
      return "not (" + children()[0].ToString(names) + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      std::string op = kind() == Kind::kAnd ? " and " : " or ";
      std::string out = "(";
      for (std::size_t i = 0; i < children().size(); ++i) {
        if (i > 0) out += op;
        out += children()[i].ToString(names);
      }
      return out + ")";
    }
    case Kind::kExists:
    case Kind::kForall: {
      std::string q = kind() == Kind::kExists ? "exists " : "forall ";
      return q + var_name(quantified_var()) + " (" +
             children()[0].ToString(names) + ")";
    }
  }
  return "?";
}

Formula ToNnf(const Formula& f) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
    case Formula::Kind::kAtom:
    case Formula::Kind::kRelation:
      return f;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      std::vector<Formula> mapped;
      for (const Formula& child : f.children()) mapped.push_back(ToNnf(child));
      return f.kind() == Formula::Kind::kAnd ? Formula::And(mapped)
                                             : Formula::Or(mapped);
    }
    case Formula::Kind::kExists:
      return Formula::Exists(f.quantified_var(), ToNnf(f.children()[0]));
    case Formula::Kind::kForall:
      return Formula::Forall(f.quantified_var(), ToNnf(f.children()[0]));
    case Formula::Kind::kNot: {
      const Formula& inner = f.children()[0];
      switch (inner.kind()) {
        case Formula::Kind::kTrue:
          return Formula::False();
        case Formula::Kind::kFalse:
          return Formula::True();
        case Formula::Kind::kAtom:
          return Formula::MakeAtom(inner.atom().Negated());
        case Formula::Kind::kRelation:
          // Negated relation atoms survive NNF; they are eliminated by
          // instantiation before QE.
          return f;
        case Formula::Kind::kNot:
          return ToNnf(inner.children()[0]);
        case Formula::Kind::kAnd:
        case Formula::Kind::kOr: {
          std::vector<Formula> mapped;
          for (const Formula& child : inner.children()) {
            mapped.push_back(ToNnf(Formula::Not(child)));
          }
          return inner.kind() == Formula::Kind::kAnd ? Formula::Or(mapped)
                                                     : Formula::And(mapped);
        }
        case Formula::Kind::kExists:
          return Formula::Forall(
              inner.quantified_var(),
              ToNnf(Formula::Not(inner.children()[0])));
        case Formula::Kind::kForall:
          return Formula::Exists(
              inner.quantified_var(),
              ToNnf(Formula::Not(inner.children()[0])));
      }
    }
  }
  CCDB_CHECK(false);
  return f;
}

PrenexForm ToPrenex(const Formula& f, int* next_fresh_var) {
  Formula nnf = ToNnf(f);
  std::function<PrenexForm(const Formula&)> go =
      [&](const Formula& g) -> PrenexForm {
    switch (g.kind()) {
      case Formula::Kind::kTrue:
      case Formula::Kind::kFalse:
      case Formula::Kind::kAtom:
      case Formula::Kind::kRelation:
        return {{}, g};
      case Formula::Kind::kNot:
        // NNF guarantees the child is an atom or relation.
        return {{}, g};
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr: {
        std::vector<PrenexBlock> prefix;
        std::vector<Formula> matrices;
        for (const Formula& child : g.children()) {
          PrenexForm sub = go(child);
          prefix.insert(prefix.end(), sub.prefix.begin(), sub.prefix.end());
          matrices.push_back(sub.matrix);
        }
        Formula matrix = g.kind() == Formula::Kind::kAnd
                             ? Formula::And(matrices)
                             : Formula::Or(matrices);
        return {std::move(prefix), std::move(matrix)};
      }
      case Formula::Kind::kExists:
      case Formula::Kind::kForall: {
        int fresh = (*next_fresh_var)++;
        Formula body =
            g.children()[0].RenameFreeVar(g.quantified_var(), fresh);
        PrenexForm sub = go(body);
        std::vector<PrenexBlock> prefix;
        prefix.push_back({g.kind() == Formula::Kind::kExists, fresh});
        prefix.insert(prefix.end(), sub.prefix.begin(), sub.prefix.end());
        return {std::move(prefix), std::move(sub.matrix)};
      }
    }
    CCDB_CHECK(false);
    return {{}, g};
  };
  return go(nnf);
}

std::vector<GeneralizedTuple> ToDnf(const Formula& f) {
  Formula nnf = ToNnf(f);
  std::function<std::vector<GeneralizedTuple>(const Formula&)> go =
      [&](const Formula& g) -> std::vector<GeneralizedTuple> {
    switch (g.kind()) {
      case Formula::Kind::kTrue:
        return {GeneralizedTuple()};
      case Formula::Kind::kFalse:
        return {};
      case Formula::Kind::kAtom: {
        GeneralizedTuple tuple;
        tuple.atoms.push_back(g.atom());
        return {std::move(tuple)};
      }
      case Formula::Kind::kOr: {
        std::vector<GeneralizedTuple> out;
        for (const Formula& child : g.children()) {
          auto sub = go(child);
          out.insert(out.end(), std::make_move_iterator(sub.begin()),
                     std::make_move_iterator(sub.end()));
        }
        return out;
      }
      case Formula::Kind::kAnd: {
        std::vector<GeneralizedTuple> acc{GeneralizedTuple()};
        for (const Formula& child : g.children()) {
          auto sub = go(child);
          std::vector<GeneralizedTuple> next;
          for (const GeneralizedTuple& left : acc) {
            for (const GeneralizedTuple& right : sub) {
              GeneralizedTuple merged = left;
              merged.atoms.insert(merged.atoms.end(), right.atoms.begin(),
                                  right.atoms.end());
              next.push_back(std::move(merged));
            }
          }
          acc = std::move(next);
        }
        return acc;
      }
      default:
        CCDB_CHECK_MSG(false,
                       "ToDnf requires a quantifier/relation-free formula");
        return {};
    }
  };
  std::vector<GeneralizedTuple> tuples = go(nnf);
  std::vector<GeneralizedTuple> kept;
  for (GeneralizedTuple& tuple : tuples) {
    if (tuple.SimplifyConstants()) kept.push_back(std::move(tuple));
  }
  return kept;
}

}  // namespace ccdb
