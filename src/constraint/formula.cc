#include "constraint/formula.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "base/logging.h"
#include "base/metrics.h"

namespace ccdb {

/// An interned formula node. Immutable after Finish(); every node reachable
/// from a Formula handle lives in the arena, so node identity (pointer or
/// id) coincides with structural identity.
struct Formula::Node {
  Kind kind = Kind::kTrue;
  Atom atom;
  std::string relation_name;
  std::vector<int> relation_args;
  std::vector<Formula> children;
  int var = -1;

  // Caches, computed once by Finish() before interning.
  std::size_t hash = 0;
  std::uint64_t id = 0;
  bool quantifier_free = true;
  bool has_relations = false;
  std::set<int> free_vars;

  static void Finish(Node* node);
  static bool Equal(const Node& a, const Node& b);
  /// Deterministic structural 3-way comparison. Hash-first is an
  /// optimization, not an order change: the hash is structural (FNV over
  /// content), so the order is identical across runs and thread counts.
  static int Compare(const Node& a, const Node& b);
};

void Formula::Node::Finish(Node* node) {
  std::size_t h = 1469598103934665603ull;
  auto mix = [&h](std::size_t value) { h = h * 1099511628211ull + value; };
  mix(static_cast<std::size_t>(node->kind));
  switch (node->kind) {
    case Kind::kTrue:
    case Kind::kFalse:
      break;
    case Kind::kAtom: {
      mix(node->atom.Hash());
      const Polynomial& p = node->atom.poly;
      for (int v = 0; v <= p.max_var(); ++v) {
        if (p.Mentions(v)) node->free_vars.insert(v);
      }
      break;
    }
    case Kind::kRelation:
      mix(std::hash<std::string>{}(node->relation_name));
      for (int a : node->relation_args) {
        mix(static_cast<std::size_t>(a));
        node->free_vars.insert(a);
      }
      node->has_relations = true;
      break;
    case Kind::kNot:
    case Kind::kAnd:
    case Kind::kOr:
      for (const Formula& child : node->children) {
        mix(child.node_->hash);
        node->quantifier_free &= child.node_->quantifier_free;
        node->has_relations |= child.node_->has_relations;
        node->free_vars.insert(child.node_->free_vars.begin(),
                               child.node_->free_vars.end());
      }
      break;
    case Kind::kExists:
    case Kind::kForall: {
      const Node& body = *node->children[0].node_;
      mix(static_cast<std::size_t>(node->var));
      mix(body.hash);
      node->quantifier_free = false;
      node->has_relations = body.has_relations;
      node->free_vars = body.free_vars;
      node->free_vars.erase(node->var);
      break;
    }
  }
  node->hash = h;
}

bool Formula::Node::Equal(const Node& a, const Node& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Kind::kTrue:
    case Kind::kFalse:
      return true;
    case Kind::kAtom:
      return a.atom == b.atom;
    case Kind::kRelation:
      return a.relation_name == b.relation_name &&
             a.relation_args == b.relation_args;
    case Kind::kNot:
    case Kind::kAnd:
    case Kind::kOr: {
      if (a.children.size() != b.children.size()) return false;
      for (std::size_t i = 0; i < a.children.size(); ++i) {
        // Children are interned, so structural equality is pointer equality.
        if (a.children[i].node_ != b.children[i].node_) return false;
      }
      return true;
    }
    case Kind::kExists:
    case Kind::kForall:
      return a.var == b.var && a.children[0].node_ == b.children[0].node_;
  }
  return false;
}

int Formula::Node::Compare(const Node& a, const Node& b) {
  if (&a == &b) return 0;
  if (a.hash != b.hash) return a.hash < b.hash ? -1 : 1;
  if (a.kind != b.kind) {
    return static_cast<int>(a.kind) < static_cast<int>(b.kind) ? -1 : 1;
  }
  switch (a.kind) {
    case Kind::kTrue:
    case Kind::kFalse:
      return 0;
    case Kind::kAtom: {
      if (a.atom.poly != b.atom.poly) {
        return a.atom.poly < b.atom.poly ? -1 : 1;
      }
      return static_cast<int>(a.atom.op) - static_cast<int>(b.atom.op);
    }
    case Kind::kRelation: {
      int cmp = a.relation_name.compare(b.relation_name);
      if (cmp != 0) return cmp;
      if (a.relation_args != b.relation_args) {
        return a.relation_args < b.relation_args ? -1 : 1;
      }
      return 0;
    }
    case Kind::kNot:
    case Kind::kAnd:
    case Kind::kOr: {
      if (a.children.size() != b.children.size()) {
        return a.children.size() < b.children.size() ? -1 : 1;
      }
      for (std::size_t i = 0; i < a.children.size(); ++i) {
        int cmp = Compare(*a.children[i].node_, *b.children[i].node_);
        if (cmp != 0) return cmp;
      }
      return 0;
    }
    case Kind::kExists:
    case Kind::kForall: {
      if (a.var != b.var) return a.var < b.var ? -1 : 1;
      return Compare(*a.children[0].node_, *b.children[0].node_);
    }
  }
  return 0;
}

/// The process-wide hash-consing arena. Holds WEAK references: a node dies
/// with its last Formula handle, so the arena bounds itself to the set of
/// reachable formulas (expired entries are compacted on bucket access).
/// Ids are assigned from a monotone counter and never reused.
struct Formula::Arena {
  static constexpr std::size_t kShards = 16;

  struct Shard {
    std::mutex mu;
    std::unordered_map<std::size_t, std::vector<std::weak_ptr<const Node>>>
        buckets;
  };
  Shard shards[kShards];
  std::atomic<std::uint64_t> next_id{1};
  std::atomic<std::size_t> total_interned{0};

  static Arena& Global() {
    static Arena* arena = new Arena();  // leaked: process lifetime
    return *arena;
  }

  std::shared_ptr<const Node> Intern(std::shared_ptr<Node> node) {
    Node::Finish(node.get());
    Shard& shard = shards[node->hash % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto& bucket = shard.buckets[node->hash];
    std::shared_ptr<const Node> found;
    std::size_t live = 0;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      std::shared_ptr<const Node> existing = bucket[i].lock();
      if (existing == nullptr) continue;  // expired: compacted away below
      if (found == nullptr && Node::Equal(*existing, *node)) found = existing;
      bucket[live++] = bucket[i];
    }
    bucket.resize(live);
    if (found != nullptr) {
      CCDB_METRIC_COUNT("formula_intern_hits", 1);
      return found;
    }
    node->id = next_id.fetch_add(1, std::memory_order_relaxed);
    total_interned.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<const Node> owned = std::move(node);
    bucket.push_back(owned);
    return owned;
  }

  FormulaArenaStats Stats() {
    FormulaArenaStats stats;
    stats.total_interned = total_interned.load(std::memory_order_relaxed);
    for (Shard& shard : shards) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [hash, bucket] : shard.buckets) {
        for (const auto& weak : bucket) {
          if (!weak.expired()) ++stats.live_nodes;
        }
      }
    }
    return stats;
  }
};

FormulaArenaStats Formula::ArenaStats() { return Arena::Global().Stats(); }

FormulaArenaStats GetFormulaArenaStats() { return Formula::ArenaStats(); }

Formula::Formula(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

Formula::Formula() : node_(True().node_) {}

Formula Formula::True() {
  static const Formula* singleton = [] {
    auto node = std::make_shared<Node>();
    node->kind = Kind::kTrue;
    return new Formula(Arena::Global().Intern(std::move(node)));
  }();
  return *singleton;
}

Formula Formula::False() {
  static const Formula* singleton = [] {
    auto node = std::make_shared<Node>();
    node->kind = Kind::kFalse;
    return new Formula(Arena::Global().Intern(std::move(node)));
  }();
  return *singleton;
}

Formula Formula::MakeAtom(Atom atom) {
  Atom canonical = atom.Canonical();
  if (canonical.poly.is_constant()) {
    return SignSatisfies(canonical.poly.constant_value().sign(), canonical.op)
               ? True()
               : False();
  }
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAtom;
  node->atom = std::move(canonical);
  return Formula(Arena::Global().Intern(std::move(node)));
}

Formula Formula::Compare(const Polynomial& lhs, RelOp op,
                         const Polynomial& rhs) {
  return MakeAtom(Atom(lhs - rhs, op));
}

Formula Formula::Relation(std::string name, std::vector<int> args) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kRelation;
  node->relation_name = std::move(name);
  node->relation_args = std::move(args);
  return Formula(Arena::Global().Intern(std::move(node)));
}

Formula Formula::Not(Formula f) {
  switch (f.kind()) {
    case Kind::kTrue:
      return False();
    case Kind::kFalse:
      return True();
    case Kind::kAtom:
      // Atoms absorb negation via the operator complement; the canonical
      // constructor then unifies e.g. ¬(p < 0) with p >= 0.
      return MakeAtom(f.atom().Negated());
    case Kind::kNot:
      return f.children()[0];  // ¬¬φ → φ
    default:
      break;
  }
  auto node = std::make_shared<Node>();
  node->kind = Kind::kNot;
  node->children.push_back(std::move(f));
  return Formula(Arena::Global().Intern(std::move(node)));
}

Formula Formula::And(Formula a, Formula b) {
  return And(std::vector<Formula>{std::move(a), std::move(b)});
}

Formula Formula::Or(Formula a, Formula b) {
  return Or(std::vector<Formula>{std::move(a), std::move(b)});
}

Formula Formula::And(const std::vector<Formula>& fs) {
  std::vector<Formula> kept;
  for (const Formula& f : fs) {
    if (f.kind() == Kind::kFalse) return False();
    if (f.kind() == Kind::kTrue) continue;
    if (f.kind() == Kind::kAnd) {
      kept.insert(kept.end(), f.children().begin(), f.children().end());
    } else {
      kept.push_back(f);
    }
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  if (kept.empty()) return True();
  if (kept.size() == 1) return kept[0];
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAnd;
  node->children = std::move(kept);
  return Formula(Arena::Global().Intern(std::move(node)));
}

Formula Formula::Or(const std::vector<Formula>& fs) {
  std::vector<Formula> kept;
  for (const Formula& f : fs) {
    if (f.kind() == Kind::kTrue) return True();
    if (f.kind() == Kind::kFalse) continue;
    if (f.kind() == Kind::kOr) {
      kept.insert(kept.end(), f.children().begin(), f.children().end());
    } else {
      kept.push_back(f);
    }
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  if (kept.empty()) return False();
  if (kept.size() == 1) return kept[0];
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOr;
  node->children = std::move(kept);
  return Formula(Arena::Global().Intern(std::move(node)));
}

Formula Formula::Exists(int var, Formula body) {
  // ∃x φ ≡ φ when x is not free in φ (the domain ℝ is nonempty); also
  // covers ∃x true / ∃x false.
  if (body.FreeVars().count(var) == 0) return body;
  auto node = std::make_shared<Node>();
  node->kind = Kind::kExists;
  node->var = var;
  node->children.push_back(std::move(body));
  return Formula(Arena::Global().Intern(std::move(node)));
}

Formula Formula::Forall(int var, Formula body) {
  if (body.FreeVars().count(var) == 0) return body;
  auto node = std::make_shared<Node>();
  node->kind = Kind::kForall;
  node->var = var;
  node->children.push_back(std::move(body));
  return Formula(Arena::Global().Intern(std::move(node)));
}

Formula::Kind Formula::kind() const { return node_->kind; }

const Atom& Formula::atom() const {
  CCDB_CHECK(node_->kind == Kind::kAtom);
  return node_->atom;
}

const std::string& Formula::relation_name() const {
  CCDB_CHECK(node_->kind == Kind::kRelation);
  return node_->relation_name;
}

const std::vector<int>& Formula::relation_args() const {
  CCDB_CHECK(node_->kind == Kind::kRelation);
  return node_->relation_args;
}

const std::vector<Formula>& Formula::children() const {
  return node_->children;
}

int Formula::quantified_var() const {
  CCDB_CHECK(node_->kind == Kind::kExists || node_->kind == Kind::kForall);
  return node_->var;
}

bool Formula::is_quantifier_free() const { return node_->quantifier_free; }

bool Formula::has_relation_symbols() const { return node_->has_relations; }

bool Formula::operator==(const Formula& other) const {
  return node_ == other.node_;
}

bool Formula::operator<(const Formula& other) const {
  return Node::Compare(*node_, *other.node_) < 0;
}

std::size_t Formula::Hash() const { return node_->hash; }

std::uint64_t Formula::id() const { return node_->id; }

const std::set<int>& Formula::FreeVars() const { return node_->free_vars; }

namespace {

void CollectAllVars(const Formula& f, std::set<int>* out) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return;
    case Formula::Kind::kAtom: {
      const Polynomial& p = f.atom().poly;
      for (int v = 0; v <= p.max_var(); ++v) {
        if (p.Mentions(v)) out->insert(v);
      }
      return;
    }
    case Formula::Kind::kRelation:
      for (int v : f.relation_args()) out->insert(v);
      return;
    case Formula::Kind::kNot:
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      for (const Formula& child : f.children()) CollectAllVars(child, out);
      return;
    case Formula::Kind::kExists:
    case Formula::Kind::kForall:
      out->insert(f.quantified_var());
      CollectAllVars(f.children()[0], out);
      return;
  }
}

}  // namespace

std::set<int> Formula::AllVars() const {
  std::set<int> out;
  CollectAllVars(*this, &out);
  return out;
}

Formula RelationToFormula(const ConstraintRelation& relation,
                          const std::vector<int>& column_vars) {
  CCDB_CHECK(static_cast<int>(column_vars.size()) == relation.arity());
  std::vector<Formula> disjuncts;
  for (const GeneralizedTuple& tuple : relation.tuples()) {
    std::vector<Formula> conjuncts;
    for (const Atom& atom : tuple.atoms) {
      CCDB_CHECK_MSG(atom.poly.max_var() < relation.arity(),
                     "relation body mentions variable beyond its arity");
      Polynomial renamed = atom.poly.RenameVars(column_vars);
      conjuncts.push_back(Formula::MakeAtom(Atom(renamed, atom.op)));
    }
    disjuncts.push_back(Formula::And(conjuncts));
  }
  return Formula::Or(disjuncts);
}

StatusOr<Formula> Formula::InstantiateRelations(
    const std::function<StatusOr<ConstraintRelation>(const std::string&)>&
        lookup) const {
  switch (kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kAtom:
      return *this;
    case Kind::kRelation: {
      CCDB_ASSIGN_OR_RETURN(ConstraintRelation relation,
                            lookup(relation_name()));
      if (static_cast<int>(relation_args().size()) != relation.arity()) {
        return Status::InvalidArgument(
            "relation " + relation_name() + " used with arity " +
            std::to_string(relation_args().size()) + ", declared " +
            std::to_string(relation.arity()));
      }
      return RelationToFormula(relation, relation_args());
    }
    case Kind::kNot: {
      CCDB_ASSIGN_OR_RETURN(Formula inner,
                            children()[0].InstantiateRelations(lookup));
      return Not(std::move(inner));
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<Formula> mapped;
      for (const Formula& child : children()) {
        CCDB_ASSIGN_OR_RETURN(Formula m, child.InstantiateRelations(lookup));
        mapped.push_back(std::move(m));
      }
      return kind() == Kind::kAnd ? And(mapped) : Or(mapped);
    }
    case Kind::kExists:
    case Kind::kForall: {
      CCDB_ASSIGN_OR_RETURN(Formula inner,
                            children()[0].InstantiateRelations(lookup));
      return kind() == Kind::kExists ? Exists(quantified_var(), inner)
                                     : Forall(quantified_var(), inner);
    }
  }
  return Status::Internal("unreachable formula kind");
}

Formula Formula::RenameFreeVar(int from, int to) const {
  switch (kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return *this;
    case Kind::kAtom: {
      const Polynomial& p = node_->atom.poly;
      if (!p.Mentions(from)) return *this;
      std::vector<int> mapping(std::max(p.max_var(), from) + 1);
      for (std::size_t i = 0; i < mapping.size(); ++i) {
        mapping[i] = static_cast<int>(i);
      }
      mapping[from] = to;
      return MakeAtom(Atom(p.RenameVars(mapping), node_->atom.op));
    }
    case Kind::kRelation: {
      std::vector<int> args = relation_args();
      bool changed = false;
      for (int& a : args) {
        if (a == from) {
          a = to;
          changed = true;
        }
      }
      if (!changed) return *this;
      return Relation(relation_name(), std::move(args));
    }
    case Kind::kNot:
      return Not(children()[0].RenameFreeVar(from, to));
    case Kind::kAnd:
    case Kind::kOr: {
      if (FreeVars().count(from) == 0) return *this;
      std::vector<Formula> mapped;
      for (const Formula& child : children()) {
        mapped.push_back(child.RenameFreeVar(from, to));
      }
      return kind() == Kind::kAnd ? And(mapped) : Or(mapped);
    }
    case Kind::kExists:
    case Kind::kForall: {
      if (quantified_var() == from) return *this;  // bound below
      Formula inner = children()[0].RenameFreeVar(from, to);
      return kind() == Kind::kExists ? Exists(quantified_var(), inner)
                                     : Forall(quantified_var(), inner);
    }
  }
  CCDB_CHECK(false);
  return *this;
}

Formula Formula::SubstituteValue(int var, const Rational& value) const {
  switch (kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return *this;
    case Kind::kAtom: {
      Polynomial substituted = node_->atom.poly.Substitute(var, value);
      // MakeAtom folds the constant case to true/false.
      return MakeAtom(Atom(std::move(substituted), node_->atom.op));
    }
    case Kind::kRelation:
      for (int a : relation_args()) {
        CCDB_CHECK_MSG(a != var,
                       "substitute into uninstantiated relation argument");
      }
      return *this;
    case Kind::kNot:
      return Not(children()[0].SubstituteValue(var, value));
    case Kind::kAnd:
    case Kind::kOr: {
      if (FreeVars().count(var) == 0) return *this;
      std::vector<Formula> mapped;
      for (const Formula& child : children()) {
        mapped.push_back(child.SubstituteValue(var, value));
      }
      return kind() == Kind::kAnd ? And(mapped) : Or(mapped);
    }
    case Kind::kExists:
    case Kind::kForall: {
      if (quantified_var() == var) return *this;
      Formula inner = children()[0].SubstituteValue(var, value);
      return kind() == Kind::kExists ? Exists(quantified_var(), inner)
                                     : Forall(quantified_var(), inner);
    }
  }
  CCDB_CHECK(false);
  return *this;
}

bool Formula::EvaluateAt(const std::vector<Rational>& point) const {
  switch (kind()) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom:
      return node_->atom.SatisfiedAt(point);
    case Kind::kNot:
      return !children()[0].EvaluateAt(point);
    case Kind::kAnd:
      for (const Formula& child : children()) {
        if (!child.EvaluateAt(point)) return false;
      }
      return true;
    case Kind::kOr:
      for (const Formula& child : children()) {
        if (child.EvaluateAt(point)) return true;
      }
      return false;
    case Kind::kRelation:
    case Kind::kExists:
    case Kind::kForall:
      CCDB_CHECK_MSG(false, "EvaluateAt requires quantifier/relation-free");
  }
  return false;
}

std::string Formula::ToString(const std::vector<std::string>& names) const {
  auto var_name = [&names](int v) {
    if (v >= 0 && v < static_cast<int>(names.size())) return names[v];
    return "x" + std::to_string(v);
  };
  switch (kind()) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kAtom:
      return node_->atom.ToString(names);
    case Kind::kRelation: {
      std::string out = relation_name() + "(";
      for (std::size_t i = 0; i < relation_args().size(); ++i) {
        if (i > 0) out += ", ";
        out += var_name(relation_args()[i]);
      }
      return out + ")";
    }
    case Kind::kNot:
      return "not (" + children()[0].ToString(names) + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      std::string op = kind() == Kind::kAnd ? " and " : " or ";
      std::string out = "(";
      for (std::size_t i = 0; i < children().size(); ++i) {
        if (i > 0) out += op;
        out += children()[i].ToString(names);
      }
      return out + ")";
    }
    case Kind::kExists:
    case Kind::kForall: {
      std::string q = kind() == Kind::kExists ? "exists " : "forall ";
      return q + var_name(quantified_var()) + " (" +
             children()[0].ToString(names) + ")";
    }
  }
  return "?";
}

Formula ToNnf(const Formula& f) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
    case Formula::Kind::kAtom:
    case Formula::Kind::kRelation:
      return f;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      std::vector<Formula> mapped;
      for (const Formula& child : f.children()) mapped.push_back(ToNnf(child));
      return f.kind() == Formula::Kind::kAnd ? Formula::And(mapped)
                                             : Formula::Or(mapped);
    }
    case Formula::Kind::kExists:
      return Formula::Exists(f.quantified_var(), ToNnf(f.children()[0]));
    case Formula::Kind::kForall:
      return Formula::Forall(f.quantified_var(), ToNnf(f.children()[0]));
    case Formula::Kind::kNot: {
      const Formula& inner = f.children()[0];
      switch (inner.kind()) {
        case Formula::Kind::kTrue:
          return Formula::False();
        case Formula::Kind::kFalse:
          return Formula::True();
        case Formula::Kind::kAtom:
          return Formula::MakeAtom(inner.atom().Negated());
        case Formula::Kind::kRelation:
          // Negated relation atoms survive NNF; they are eliminated by
          // instantiation before QE.
          return f;
        case Formula::Kind::kNot:
          return ToNnf(inner.children()[0]);
        case Formula::Kind::kAnd:
        case Formula::Kind::kOr: {
          std::vector<Formula> mapped;
          for (const Formula& child : inner.children()) {
            mapped.push_back(ToNnf(Formula::Not(child)));
          }
          return inner.kind() == Formula::Kind::kAnd ? Formula::Or(mapped)
                                                     : Formula::And(mapped);
        }
        case Formula::Kind::kExists:
          return Formula::Forall(
              inner.quantified_var(),
              ToNnf(Formula::Not(inner.children()[0])));
        case Formula::Kind::kForall:
          return Formula::Exists(
              inner.quantified_var(),
              ToNnf(Formula::Not(inner.children()[0])));
      }
    }
  }
  CCDB_CHECK(false);
  return f;
}

PrenexForm ToPrenex(const Formula& f, int* next_fresh_var) {
  Formula nnf = ToNnf(f);
  std::function<PrenexForm(const Formula&)> go =
      [&](const Formula& g) -> PrenexForm {
    switch (g.kind()) {
      case Formula::Kind::kTrue:
      case Formula::Kind::kFalse:
      case Formula::Kind::kAtom:
      case Formula::Kind::kRelation:
        return {{}, g};
      case Formula::Kind::kNot:
        // NNF guarantees the child is an atom or relation.
        return {{}, g};
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr: {
        std::vector<PrenexBlock> prefix;
        std::vector<Formula> matrices;
        for (const Formula& child : g.children()) {
          PrenexForm sub = go(child);
          prefix.insert(prefix.end(), sub.prefix.begin(), sub.prefix.end());
          matrices.push_back(sub.matrix);
        }
        Formula matrix = g.kind() == Formula::Kind::kAnd
                             ? Formula::And(matrices)
                             : Formula::Or(matrices);
        return {std::move(prefix), std::move(matrix)};
      }
      case Formula::Kind::kExists:
      case Formula::Kind::kForall: {
        int fresh = (*next_fresh_var)++;
        Formula body =
            g.children()[0].RenameFreeVar(g.quantified_var(), fresh);
        PrenexForm sub = go(body);
        std::vector<PrenexBlock> prefix;
        prefix.push_back({g.kind() == Formula::Kind::kExists, fresh});
        prefix.insert(prefix.end(), sub.prefix.begin(), sub.prefix.end());
        return {std::move(prefix), std::move(sub.matrix)};
      }
    }
    CCDB_CHECK(false);
    return {{}, g};
  };
  return go(nnf);
}

std::vector<GeneralizedTuple> ToDnf(const Formula& f) {
  Formula nnf = ToNnf(f);
  std::function<std::vector<GeneralizedTuple>(const Formula&)> go =
      [&](const Formula& g) -> std::vector<GeneralizedTuple> {
    switch (g.kind()) {
      case Formula::Kind::kTrue:
        return {GeneralizedTuple()};
      case Formula::Kind::kFalse:
        return {};
      case Formula::Kind::kAtom: {
        GeneralizedTuple tuple;
        tuple.atoms.push_back(g.atom());
        return {std::move(tuple)};
      }
      case Formula::Kind::kOr: {
        std::vector<GeneralizedTuple> out;
        for (const Formula& child : g.children()) {
          auto sub = go(child);
          out.insert(out.end(), std::make_move_iterator(sub.begin()),
                     std::make_move_iterator(sub.end()));
        }
        return out;
      }
      case Formula::Kind::kAnd: {
        std::vector<GeneralizedTuple> acc{GeneralizedTuple()};
        for (const Formula& child : g.children()) {
          auto sub = go(child);
          std::vector<GeneralizedTuple> next;
          for (const GeneralizedTuple& left : acc) {
            for (const GeneralizedTuple& right : sub) {
              GeneralizedTuple merged = left;
              merged.atoms.insert(merged.atoms.end(), right.atoms.begin(),
                                  right.atoms.end());
              next.push_back(std::move(merged));
            }
          }
          acc = std::move(next);
        }
        return acc;
      }
      default:
        CCDB_CHECK_MSG(false,
                       "ToDnf requires a quantifier/relation-free formula");
        return {};
    }
  };
  std::vector<GeneralizedTuple> tuples = go(nnf);
  // Canonicalize each disjunct and drop trivially-false and syntactically
  // duplicate ones (first occurrence kept, so order stays input-derived).
  std::vector<GeneralizedTuple> kept;
  std::unordered_map<std::size_t, std::vector<std::size_t>> seen;
  for (GeneralizedTuple& tuple : tuples) {
    if (!tuple.Canonicalize()) continue;
    std::size_t hash = tuple.Hash();
    bool duplicate = false;
    for (std::size_t index : seen[hash]) {
      if (kept[index] == tuple) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    seen[hash].push_back(kept.size());
    kept.push_back(std::move(tuple));
  }
  return kept;
}

}  // namespace ccdb
