#include "constraint/atom.h"

#include <algorithm>

#include "base/logging.h"

namespace ccdb {

RelOp NegateOp(RelOp op) {
  switch (op) {
    case RelOp::kEq:
      return RelOp::kNeq;
    case RelOp::kNeq:
      return RelOp::kEq;
    case RelOp::kLt:
      return RelOp::kGe;
    case RelOp::kLe:
      return RelOp::kGt;
    case RelOp::kGt:
      return RelOp::kLe;
    case RelOp::kGe:
      return RelOp::kLt;
  }
  CCDB_CHECK(false);
  return RelOp::kEq;
}

RelOp FlipOp(RelOp op) {
  switch (op) {
    case RelOp::kEq:
    case RelOp::kNeq:
      return op;
    case RelOp::kLt:
      return RelOp::kGt;
    case RelOp::kLe:
      return RelOp::kGe;
    case RelOp::kGt:
      return RelOp::kLt;
    case RelOp::kGe:
      return RelOp::kLe;
  }
  CCDB_CHECK(false);
  return RelOp::kEq;
}

bool SignSatisfies(int sign, RelOp op) {
  switch (op) {
    case RelOp::kEq:
      return sign == 0;
    case RelOp::kNeq:
      return sign != 0;
    case RelOp::kLt:
      return sign < 0;
    case RelOp::kLe:
      return sign <= 0;
    case RelOp::kGt:
      return sign > 0;
    case RelOp::kGe:
      return sign >= 0;
  }
  CCDB_CHECK(false);
  return false;
}

const char* RelOpToString(RelOp op) {
  switch (op) {
    case RelOp::kEq:
      return "=";
    case RelOp::kNeq:
      return "!=";
    case RelOp::kLt:
      return "<";
    case RelOp::kLe:
      return "<=";
    case RelOp::kGt:
      return ">";
    case RelOp::kGe:
      return ">=";
  }
  return "?";
}

Atom Atom::Canonical() const {
  Rational factor;
  Polynomial normalized = poly.IntegerNormalized(&factor);
  RelOp canonical_op = factor.sign() < 0 ? FlipOp(op) : op;
  return Atom(normalized.Interned(), canonical_op);
}

bool Atom::operator<(const Atom& other) const {
  if (poly != other.poly) return poly < other.poly;
  return static_cast<int>(op) < static_cast<int>(other.op);
}

std::string Atom::ToString(const std::vector<std::string>& names) const {
  return poly.ToString(names) + " " + RelOpToString(op) + " 0";
}

bool GeneralizedTuple::TriviallyFalse() const {
  for (const Atom& atom : atoms) {
    if (atom.poly.is_constant() &&
        !SignSatisfies(atom.poly.constant_value().sign(), atom.op)) {
      return true;
    }
  }
  return false;
}

bool GeneralizedTuple::SimplifyConstants() {
  std::vector<Atom> kept;
  for (Atom& atom : atoms) {
    if (atom.poly.is_constant()) {
      if (!SignSatisfies(atom.poly.constant_value().sign(), atom.op)) {
        return false;
      }
      continue;  // identically true, drop
    }
    kept.push_back(std::move(atom));
  }
  atoms = std::move(kept);
  return true;
}

bool GeneralizedTuple::Canonicalize() {
  std::vector<Atom> kept;
  kept.reserve(atoms.size());
  for (Atom& atom : atoms) {
    Atom canonical = atom.Canonical();
    if (canonical.poly.is_constant()) {
      if (!SignSatisfies(canonical.poly.constant_value().sign(),
                         canonical.op)) {
        return false;
      }
      continue;  // identically true, drop
    }
    kept.push_back(std::move(canonical));
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  atoms = std::move(kept);
  return true;
}

bool GeneralizedTuple::operator<(const GeneralizedTuple& other) const {
  return std::lexicographical_compare(atoms.begin(), atoms.end(),
                                      other.atoms.begin(), other.atoms.end());
}

std::size_t GeneralizedTuple::Hash() const {
  std::size_t h = 1469598103934665603ull;
  for (const Atom& atom : atoms) h = h * 1099511628211ull + atom.Hash();
  return h;
}

std::string GeneralizedTuple::ToString(
    const std::vector<std::string>& names) const {
  if (atoms.empty()) return "true";
  std::string out;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += " and ";
    out += atoms[i].ToString(names);
  }
  return out;
}

bool ConstraintRelation::Contains(const std::vector<Rational>& point) const {
  CCDB_CHECK_MSG(static_cast<int>(point.size()) == arity_,
                 "point arity mismatch: " << point.size() << " vs " << arity_);
  for (const GeneralizedTuple& tuple : tuples_) {
    if (tuple.SatisfiedAt(point)) return true;
  }
  return false;
}

std::vector<Polynomial> ConstraintRelation::CollectPolynomials() const {
  std::vector<Polynomial> polys;
  for (const GeneralizedTuple& tuple : tuples_) {
    for (const Atom& atom : tuple.atoms) {
      bool seen = false;
      for (const Polynomial& p : polys) {
        if (p == atom.poly) {
          seen = true;
          break;
        }
      }
      if (!seen) polys.push_back(atom.poly);
    }
  }
  return polys;
}

std::uint64_t ConstraintRelation::MaxCoefficientBitLength() const {
  std::uint64_t bits = 0;
  for (const GeneralizedTuple& tuple : tuples_) {
    for (const Atom& atom : tuple.atoms) {
      bits = std::max(bits, atom.poly.MaxCoefficientBitLength());
    }
  }
  return bits;
}

std::size_t ConstraintRelation::DistinctPolynomialCount() const {
  return CollectPolynomials().size();
}

std::uint32_t ConstraintRelation::MaxDegree() const {
  std::uint32_t degree = 0;
  for (const GeneralizedTuple& tuple : tuples_) {
    for (const Atom& atom : tuple.atoms) {
      degree = std::max(degree, atom.poly.TotalDegree());
    }
  }
  return degree;
}

std::string ConstraintRelation::ToString(
    const std::vector<std::string>& names) const {
  if (tuples_.empty()) return "false";
  std::string out;
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) out += " or ";
    out += "(" + tuples_[i].ToString(names) + ")";
  }
  return out;
}

}  // namespace ccdb
