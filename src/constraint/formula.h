#ifndef CCDB_CONSTRAINT_FORMULA_H_
#define CCDB_CONSTRAINT_FORMULA_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "constraint/atom.h"

namespace ccdb {

/// First-order formula over the real closed field extended with database
/// relation symbols (the language L ∪ σ of the paper, Section 3).
///
/// Variables are global integer indices; the caller (query layer) owns the
/// mapping from names to indices.
///
/// Formulas are immutable, HASH-CONSED values: every constructor
/// canonicalizes its node (atoms gcd-reduced and sign-normalized;
/// AND/OR children flattened, structurally sorted, and deduplicated;
/// ¬¬φ → φ; constants folded; vacuous quantifiers elided — sound over the
/// nonempty domain ℝ) and interns it in a process-wide thread-safe arena,
/// so structurally equal formulas share one node and operator== is a
/// single pointer comparison. Each interned node carries a unique id()
/// (stable for the node's lifetime) that the QE/memo caches use as a key,
/// and caches of derived values: free variables, quantifier-freeness,
/// relation-symbol presence, and a structural hash — all O(1) to read.
///
/// The child order of AND/OR is the deterministic STRUCTURAL order (hash,
/// then full structural comparison), never intern or pointer order, so a
/// formula prints and evaluates byte-identically at every thread count.
class Formula {
 public:
  enum class Kind {
    kTrue,
    kFalse,
    kAtom,      // polynomial constraint
    kRelation,  // database relation symbol applied to variables
    kNot,
    kAnd,
    kOr,
    kExists,
    kForall,
  };

  /// Constructs the formula "true".
  Formula();

  static Formula True();
  static Formula False();
  static Formula MakeAtom(Atom atom);
  /// Convenience: lhs op rhs as the atom (lhs - rhs) op 0.
  static Formula Compare(const Polynomial& lhs, RelOp op,
                         const Polynomial& rhs);
  /// R(args...): the named relation applied to variable indices.
  static Formula Relation(std::string name, std::vector<int> args);
  static Formula Not(Formula f);
  static Formula And(Formula a, Formula b);
  static Formula Or(Formula a, Formula b);
  static Formula And(const std::vector<Formula>& fs);
  static Formula Or(const std::vector<Formula>& fs);
  static Formula Exists(int var, Formula body);
  static Formula Forall(int var, Formula body);

  Kind kind() const;
  /// Atom payload; requires kind() == kAtom.
  const struct Atom& atom() const;
  /// Relation payload; requires kind() == kRelation.
  const std::string& relation_name() const;
  const std::vector<int>& relation_args() const;
  /// Child formulas (1 for kNot/kExists/kForall, 2+ for kAnd/kOr).
  const std::vector<Formula>& children() const;
  /// Bound variable; requires a quantifier kind.
  int quantified_var() const;

  bool is_quantifier_free() const;
  bool has_relation_symbols() const;

  /// Free variable indices (cached at construction; O(1)).
  const std::set<int>& FreeVars() const;
  /// All variable indices occurring (free or bound).
  std::set<int> AllVars() const;

  /// Structural equality — a pointer comparison, because construction
  /// hash-conses: equal formulas share one interned node.
  bool operator==(const Formula& other) const;
  bool operator!=(const Formula& other) const { return !(*this == other); }
  /// Deterministic structural total order (used to sort AND/OR children).
  bool operator<(const Formula& other) const;

  /// Structural hash, cached at construction.
  std::size_t Hash() const;
  /// Unique id of the interned node, assigned at intern time. Stable while
  /// any handle to the node lives; ids are never reused, so (id, id) pairs
  /// are sound memo-cache keys. NOT deterministic across runs or thread
  /// counts — never let an id influence output.
  std::uint64_t id() const;

  /// Replaces every occurrence of relation symbols by their definitions:
  /// the INSTANTIATION step of query evaluation (paper, Section 2).
  /// `lookup(name)` must return the relation's ConstraintRelation whose
  /// columns are variables 0..arity-1; occurrences are rewritten with the
  /// column variables renamed to the atom's argument variables.
  StatusOr<Formula> InstantiateRelations(
      const std::function<StatusOr<ConstraintRelation>(const std::string&)>&
          lookup) const;

  /// Renames free occurrences of `from` to `to` (capture is the caller's
  /// responsibility; `to` should be fresh).
  Formula RenameFreeVar(int from, int to) const;

  /// Substitutes a rational value for a free variable (into atoms).
  Formula SubstituteValue(int var, const Rational& value) const;

  /// Truth of a quantifier-free, relation-free formula at a point.
  bool EvaluateAt(const std::vector<Rational>& point) const;

  std::string ToString(const std::vector<std::string>& names = {}) const;

  /// Occupancy of the process-wide formula arena (see FormulaArenaStats).
  static struct FormulaArenaStats ArenaStats();

 private:
  struct Node;
  struct Arena;
  explicit Formula(std::shared_ptr<const Node> node);
  std::shared_ptr<const Node> node_;
};

/// Occupancy of the hash-consing arena, for REPL `.stats` and bench
/// node-count columns. The arena holds weak references: nodes die with
/// their last handle, so `live_nodes` tracks reachable formulas while
/// `total_interned` counts every distinct node ever interned.
struct FormulaArenaStats {
  std::size_t live_nodes = 0;
  std::size_t total_interned = 0;
};
FormulaArenaStats GetFormulaArenaStats();

/// Negation-normal form: negations pushed to atoms (atoms absorb them via
/// operator complement), quantifiers dualized.
Formula ToNnf(const Formula& f);

/// Prenex normal form of a relation-free formula: returns the quantifier
/// prefix (outermost first) and the quantifier-free matrix. Bound variables
/// are renamed apart using `next_fresh_var` (incremented as used).
struct PrenexBlock {
  bool is_exists;
  int var;
};
struct PrenexForm {
  std::vector<PrenexBlock> prefix;
  Formula matrix;
};
PrenexForm ToPrenex(const Formula& f, int* next_fresh_var);

/// Disjunctive normal form of a quantifier-free, relation-free formula, as
/// a list of canonicalized generalized tuples, with trivially-false and
/// syntactically duplicate disjuncts dropped (first occurrence kept).
std::vector<GeneralizedTuple> ToDnf(const Formula& f);

/// Builds the formula of a constraint relation body (the disjunction of its
/// generalized tuples), with relation columns already mapped to the given
/// variable indices.
Formula RelationToFormula(const ConstraintRelation& relation,
                          const std::vector<int>& column_vars);

}  // namespace ccdb

#endif  // CCDB_CONSTRAINT_FORMULA_H_
