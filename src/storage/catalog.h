#ifndef CCDB_STORAGE_CATALOG_H_
#define CCDB_STORAGE_CATALOG_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "constraint/atom.h"

namespace ccdb {

/// Per-tuple bounding box derived from single-variable linear atoms
/// (x - c <= 0 and friends). Missing bounds are unbounded. Used by the
/// catalog's point-query fast path — the constraint-database analogue of
/// the spatial indexing the paper cites ([KRVV93]).
struct TupleBox {
  std::vector<std::optional<Rational>> lower;
  std::vector<std::optional<Rational>> upper;

  /// Derives the box of one generalized tuple of the given arity.
  static TupleBox Of(const GeneralizedTuple& tuple, int arity);
  /// True iff the point can possibly satisfy the tuple.
  bool MayContain(const std::vector<Rational>& point) const;
};

/// A named collection of constraint relations with text persistence.
///
/// The on-disk format is line-oriented relation definitions in the query
/// language's own syntax ("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0"), one
/// relation per line, '#' comments allowed — human-readable and re-parsed
/// through the regular parser on load.
class Catalog {
 public:
  Catalog();

  Status AddRelation(const std::string& name, ConstraintRelation relation);
  /// Parses and adds "Name(cols...) := formula".
  Status AddRelationFromText(const std::string& definition);
  Status DropRelation(const std::string& name);
  bool HasRelation(const std::string& name) const;
  StatusOr<ConstraintRelation> GetRelation(const std::string& name) const;
  std::vector<std::string> RelationNames() const;

  /// Point membership with bounding-box pre-filtering.
  StatusOr<bool> Contains(const std::string& name,
                          const std::vector<Rational>& point) const;

  /// Serializes every relation into the line format.
  std::string Serialize() const;
  /// Loads relations from the line format (replacing the catalog).
  static StatusOr<Catalog> Deserialize(const std::string& text);

  Status SaveToFile(const std::string& path) const;
  static StatusOr<Catalog> LoadFromFile(const std::string& path);

  /// Monotone mutation stamp. Every catalog starts with, and every mutation
  /// (add/drop, including loads that replace the catalog wholesale) draws, a
  /// fresh value from a process-global counter — so no two catalog states,
  /// even across distinct Catalog instances, ever share a version. Memo
  /// caches keyed on (query, version) are therefore invalidated by any
  /// mutation and can never alias a dropped-and-redefined relation.
  std::uint64_t version() const { return version_; }

 private:
  struct Entry {
    ConstraintRelation relation;
    std::vector<TupleBox> boxes;
  };
  void BumpVersion();

  std::map<std::string, Entry> relations_;
  std::uint64_t version_ = 0;
};

}  // namespace ccdb

#endif  // CCDB_STORAGE_CATALOG_H_
