#ifndef CCDB_STORAGE_CATALOG_H_
#define CCDB_STORAGE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "constraint/atom.h"

namespace ccdb {

/// Per-tuple bounding box derived from single-variable linear atoms
/// (x - c <= 0 and friends). Missing bounds are unbounded. Used by the
/// catalog's point-query fast path — the constraint-database analogue of
/// the spatial indexing the paper cites ([KRVV93]).
struct TupleBox {
  std::vector<std::optional<Rational>> lower;
  std::vector<std::optional<Rational>> upper;

  /// Derives the box of one generalized tuple of the given arity.
  static TupleBox Of(const GeneralizedTuple& tuple, int arity);
  /// True iff the point can possibly satisfy the tuple.
  bool MayContain(const std::vector<Rational>& point) const;
};

/// Version stamps of one named relation (see Catalog::version() for the
/// stamp source). `version` advances on every change to the relation,
/// including tuple inserts; `base` advances only on structural changes
/// (define, drop-and-redefine, load) — so equal `base` plus a grown tuple
/// count proves the old tuples are an unchanged prefix, the precondition
/// for resuming a materialized Datalog fixpoint incrementally.
struct RelationVersion {
  std::uint64_t version = 0;
  std::uint64_t base = 0;
};

/// A named collection of constraint relations with text persistence and
/// copy-on-write snapshot isolation.
///
/// The on-disk format is line-oriented relation definitions in the query
/// language's own syntax ("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0"), one
/// relation per line, '#' comments allowed — human-readable and re-parsed
/// through the regular parser on load.
///
/// Concurrency model (MVCC): the catalog's state lives in an immutable
/// View published through a shared_ptr. Readers take Snapshot() — or call
/// the delegating read methods, each of which reads one snapshot — and see
/// one consistent catalog version for as long as they hold the pointer,
/// while writers copy the current View, mutate the copy, stamp it with a
/// fresh version, and swap it in. A long-running query therefore never
/// observes a half-applied mutation, at any thread count.
class Catalog {
 private:
  struct Entry {
    ConstraintRelation relation;
    std::vector<TupleBox> boxes;
    RelationVersion version;
  };

 public:
  /// One immutable catalog version. Obtained from Snapshot(); safe to read
  /// from any number of threads with no further synchronization.
  class View {
   public:
    bool HasRelation(const std::string& name) const;
    StatusOr<ConstraintRelation> GetRelation(const std::string& name) const;
    std::vector<std::string> RelationNames() const;
    /// Point membership with bounding-box pre-filtering.
    StatusOr<bool> Contains(const std::string& name,
                            const std::vector<Rational>& point) const;
    /// Serializes every relation into the line format.
    std::string Serialize() const;
    std::uint64_t version() const { return version_; }
    /// Per-relation version stamps; nullopt when the relation is absent.
    /// Absent relations version as 0 in cache keys, so a later Define —
    /// which stamps a nonzero version — invalidates.
    std::optional<RelationVersion> GetRelationVersion(
        const std::string& name) const;
    /// All per-relation stamps, keyed by name.
    std::map<std::string, RelationVersion> RelationVersions() const;
    std::size_t size() const { return relations_.size(); }

   private:
    friend class Catalog;
    std::map<std::string, Entry> relations_;
    std::uint64_t version_ = 0;
  };

  Catalog();
  /// Copying shares the current snapshot (cheap — both sides are
  /// copy-on-write, so they diverge only at the next mutation).
  Catalog(const Catalog& other);
  Catalog& operator=(const Catalog& other);
  Catalog(Catalog&& other) noexcept;
  Catalog& operator=(Catalog&& other) noexcept;

  /// The current catalog version, pinned. In-flight queries hold one of
  /// these so writers never mutate state under them.
  std::shared_ptr<const View> Snapshot() const;

  Status AddRelation(const std::string& name, ConstraintRelation relation);
  /// Parses and adds "Name(cols...) := formula".
  Status AddRelationFromText(const std::string& definition);
  Status DropRelation(const std::string& name);
  /// Appends `delta`'s tuples to an existing relation of the same arity.
  /// Append-only: existing tuples and their order are untouched (the
  /// prefix-stability contract incremental fixpoints rely on); appended
  /// tuples are canonicalized and syntactic duplicates of existing or
  /// earlier delta tuples are dropped, matching what a serialize/parse
  /// round trip would do. Bumps the relation's `version`, not its `base`.
  Status InsertTuples(const std::string& name, const ConstraintRelation& delta);
  /// Parses "Name(cols...) := formula" and appends its tuples to Name.
  Status InsertTuplesFromText(const std::string& definition);
  bool HasRelation(const std::string& name) const;
  StatusOr<ConstraintRelation> GetRelation(const std::string& name) const;
  std::vector<std::string> RelationNames() const;

  /// Point membership with bounding-box pre-filtering.
  StatusOr<bool> Contains(const std::string& name,
                          const std::vector<Rational>& point) const;

  /// Serializes every relation into the line format.
  std::string Serialize() const;
  /// Loads relations from the line format (replacing the catalog). Hostile
  /// input — truncated lines, duplicate relation names, garbage bytes,
  /// over-long lines — comes back as a clean Status naming the line,
  /// never a crash.
  static StatusOr<Catalog> Deserialize(const std::string& text);

  /// Atomic save: writes `path.tmp`, fsyncs, then renames over `path` —
  /// a crash mid-save leaves the previous file intact.
  Status SaveToFile(const std::string& path) const;
  static StatusOr<Catalog> LoadFromFile(const std::string& path);

  /// Monotone mutation stamp. Every catalog starts with, and every mutation
  /// (add/drop, including loads that replace the catalog wholesale) draws, a
  /// fresh value from a process-global counter — so no two catalog states,
  /// even across distinct Catalog instances, ever share a version. Memo
  /// caches keyed on (query, version) are therefore invalidated by any
  /// mutation and can never alias a dropped-and-redefined relation.
  std::uint64_t version() const;

  /// Draws a fresh stamp from the process-global version counter without
  /// mutating any catalog. The WAL reserves the stamp it logs with a
  /// record this way, so stamps are monotone in log order.
  static std::uint64_t ReserveVersion();
  /// Raises the process-global counter so every future stamp exceeds
  /// `version`. Recovery calls this with the largest stamp found in the
  /// checkpoint/WAL, keeping versions monotone across a crash — a memo
  /// cache can never alias a pre-crash catalog state.
  static void EnsureVersionAtLeast(std::uint64_t version);
  /// Re-stamps the current state — the catalog version AND every
  /// per-relation stamp, in name order — with fresh versions (contents
  /// unchanged). Recovery calls this last: a catalog rebuilt from a
  /// checkpoint drew its stamps before EnsureVersionAtLeast raised the
  /// counter, so without a refresh a version could still collide with a
  /// pre-crash state. Per-relation stamps therefore stay monotone across
  /// reopen and crash recovery, and never alias a pre-crash state.
  void RefreshVersion();

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const View> view_;
};

/// Renders one relation as the "Name(cols...) := ..." definition line used
/// by the catalog text format and by WAL records.
std::string SerializeRelationDef(const std::string& name,
                                 const ConstraintRelation& relation);

}  // namespace ccdb

#endif  // CCDB_STORAGE_CATALOG_H_
