#ifndef CCDB_STORAGE_WAL_H_
#define CCDB_STORAGE_WAL_H_

/// Crash-safe durability for the catalog: write-ahead log + atomic
/// checkpoints + recovery (DESIGN.md §13).
///
/// On-disk layout of a durable directory:
///
///   <dir>/wal.log              append-only mutation log since the last
///                              checkpoint
///   <dir>/ckpt-<stamp>.ccdb    catalog checkpoint (atomically renamed
///                              into place; at most the newest matters)
///   <dir>/ckpt-<stamp>.tmp     in-flight checkpoint (ignored and cleaned
///                              by recovery)
///
/// WAL format: an 8-byte magic header ("CCDBWAL\x01") followed by
/// length-prefixed, CRC32-checksummed records:
///
///   u32 payload_len (LE) | u32 crc32(payload) (LE) | payload
///   payload = u8 schema_version (=1) | u8 op | u64 stamp (LE) | data
///
/// `stamp` is a catalog version reserved at append time, strictly
/// increasing in file order; `data` is the textual mutation (a definition
/// line for Define/Register, a relation name for Drop, a full catalog
/// serialization for Load, a delta definition line for Insert) — replayed
/// through the regular parser.
///
/// Torn-tail contract (ReadWal): a record that runs past EOF, an
/// incomplete header, or a checksum failure on the final record is a torn
/// tail — the log is valid up to that offset and recovery truncates the
/// rest (a crash mid-append is expected, not an error). A checksum or
/// framing failure with further bytes after it cannot come from a torn
/// append and is rejected as mid-log corruption, with a Status naming the
/// exact byte offset.
///
/// Checkpoint protocol (DurableStore::WriteCheckpoint): serialize the
/// catalog to ckpt-<stamp>.tmp, fsync, rename into place, fsync the
/// directory, then reset the WAL and delete older checkpoints. Every
/// boundary is a fault-injection site (see below); a crash anywhere
/// leaves either the old checkpoint + full WAL or the new checkpoint
/// (+ a WAL whose records are skipped by the stamp check), never a state
/// that loses an acknowledged mutation.
///
/// Fault-injection sites (consulted in EVERY build — see failpoint.h):
///   wal.append.pre / wal.append.write / wal.append.post / wal.fsync.pre
///   ckpt.write / ckpt.fsync.pre / ckpt.rename.pre / ckpt.rename.post
///   save.write / save.fsync.pre / save.rename.pre / save.rename.post
///     (Catalog::SaveToFile via AtomicWriteFile)

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "storage/catalog.h"

namespace ccdb {

/// CRC-32 (IEEE 802.3 polynomial, the zlib one) of `n` bytes.
std::uint32_t Crc32(const void* data, std::size_t n);

/// When WAL appends reach the disk.
enum class WalFsyncPolicy {
  kAlways,  // fdatasync after every append (default): an acked mutation
            // survives even power loss
  kBatch,   // fsync when ~64KiB of appends accumulate, and at checkpoint/
            // close: bounded loss window under power loss, none under
            // process crash
  kOff,     // never fsync the WAL (checkpoints still fsync): fastest;
            // process-crash-safe only
};

/// Parses "always" | "batch" | "off" (the CCDB_WAL_FSYNC values).
StatusOr<WalFsyncPolicy> ParseWalFsyncPolicy(const std::string& name);

struct DurabilityOptions {
  WalFsyncPolicy fsync = WalFsyncPolicy::kAlways;
  /// Auto-checkpoint when the WAL carries at least this many record bytes
  /// (0 = checkpoint after every mutation).
  std::uint64_t checkpoint_bytes = 1u << 20;

  /// Reads CCDB_WAL_FSYNC and CCDB_WAL_CHECKPOINT_BYTES (malformed values
  /// are ignored with a log line — startup must not crash on a bad env).
  static DurabilityOptions FromEnv();
};

/// One logged catalog mutation.
struct WalRecord {
  enum class Op : std::uint8_t {
    kDefine = 1,    // payload: "Name(cols...) := formula"
    kRegister = 2,  // payload: same line format (rendered from the relation)
    kDrop = 3,      // payload: relation name
    kLoad = 4,      // payload: full catalog serialization
    kInsert = 5,    // payload: definition line carrying the DELTA tuples,
                    // appended to the named relation on replay
  };
  Op op = Op::kDefine;
  /// Version stamp reserved at append time; strictly increasing in file
  /// order. Recovery uses it to skip records already covered by the
  /// checkpoint and to re-anchor the process-global version counter.
  std::uint64_t stamp = 0;
  std::string payload;
};

/// Encodes one record as its on-disk frame (exposed for tests).
std::string EncodeWalRecord(const WalRecord& record);

/// What ReadWal found.
struct WalReplay {
  std::vector<WalRecord> records;
  /// File prefix covered by intact records (the torn tail, if any, starts
  /// here); the writer reopens the log truncated to this offset.
  std::uint64_t valid_bytes = 0;
  bool torn_tail = false;
  std::uint64_t max_stamp = 0;
};

/// Reads every intact record of a WAL file. Torn tails are tolerated (see
/// the contract above); mid-log corruption is an error naming the offset;
/// a missing file is kNotFound.
StatusOr<WalReplay> ReadWal(const std::string& path);

/// Append-side of the WAL. Not thread-safe — the owning database
/// serializes mutations.
class WalWriter {
 public:
  /// Opens (creating if needed) `path`, truncating it to `resume_at`
  /// bytes first — recovery passes WalReplay::valid_bytes to drop a torn
  /// tail. A fresh or fully-truncated file gets the magic header.
  static StatusOr<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                   WalFsyncPolicy policy,
                                                   std::uint64_t resume_at);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record under the fsync policy. On a failed (short)
  /// write the log is truncated back to the previous record boundary, so
  /// an error here never leaves a torn middle behind.
  Status Append(const WalRecord& record);
  /// Forces everything appended so far to disk.
  Status Sync();
  /// Truncates back to just the header (checkpoint rotation).
  Status Reset();

  /// Record bytes currently in the log (excluding the header).
  std::uint64_t record_bytes() const { return bytes_ - kHeaderBytes; }

  static constexpr std::uint64_t kHeaderBytes = 8;

 private:
  WalWriter(int fd, std::string path, WalFsyncPolicy policy,
            std::uint64_t bytes);

  int fd_;
  std::string path_;
  WalFsyncPolicy policy_;
  std::uint64_t bytes_;
  std::uint64_t unsynced_ = 0;
};

/// What recovery found in a durable directory.
struct RecoveryInfo {
  /// Checkpoint file recovery loaded ("" when none existed).
  std::string checkpoint_file;
  std::uint64_t checkpoint_stamp = 0;
  /// WAL records replayed on top of the checkpoint / skipped because the
  /// checkpoint already covered them.
  std::size_t replayed_records = 0;
  std::size_t skipped_records = 0;
  bool torn_tail = false;
  /// Bytes dropped from the WAL tail.
  std::uint64_t torn_bytes = 0;
};

/// The durable half of a catalog: owns the directory, the WAL writer, and
/// the checkpoint protocol. Created by Open(), which runs recovery;
/// ConstraintDatabase::OpenDurable wires it under the public facade.
/// Not thread-safe — the owning database serializes mutations.
class DurableStore {
 public:
  /// Recovers `dir` (creating it if needed): loads the newest valid
  /// checkpoint, replays the WAL on top (skipping records the checkpoint
  /// covers, truncating a torn tail), re-anchors the process-global
  /// catalog version counter past every recovered stamp, and opens the
  /// WAL for appending.
  static StatusOr<std::unique_ptr<DurableStore>> Open(
      const std::string& dir, const DurabilityOptions& options);

  /// Moves the recovered catalog out (call exactly once, right after
  /// Open).
  Catalog TakeCatalog();

  const RecoveryInfo& recovery_info() const { return recovery_; }
  const std::string& dir() const { return dir_; }
  const DurabilityOptions& options() const { return options_; }
  std::uint64_t wal_record_bytes() const { return wal_->record_bytes(); }

  /// Appends one mutation record (write-ahead: call BEFORE applying to
  /// the in-memory catalog; an error here means the mutation must not be
  /// applied).
  Status LogMutation(WalRecord::Op op, std::string payload,
                     std::uint64_t stamp);

  /// Writes checkpoint `serialized` (a catalog serialization) at `stamp`
  /// using the atomic protocol, then resets the WAL and prunes older
  /// checkpoints.
  Status WriteCheckpoint(const std::string& serialized, std::uint64_t stamp);

 private:
  DurableStore(std::string dir, DurabilityOptions options);

  std::string dir_;
  DurabilityOptions options_;
  std::unique_ptr<WalWriter> wal_;
  Catalog recovered_;
  RecoveryInfo recovery_;
};

/// Writes `content` to `path` atomically: `path.tmp` + fsync + rename +
/// directory fsync. `site_ns` prefixes the fault-injection sites
/// ("<ns>.write", "<ns>.fsync.pre", "<ns>.rename.pre", "<ns>.rename.post").
Status AtomicWriteFile(const std::string& path, const std::string& content,
                       const char* site_ns);

}  // namespace ccdb

#endif  // CCDB_STORAGE_WAL_H_
