#include "storage/catalog.h"

#include <atomic>
#include <fstream>
#include <sstream>

#include "base/failpoint.h"
#include "base/logging.h"
#include "base/metrics.h"
#include "base/trace.h"
#include "qe/fourier_motzkin.h"
#include "query/parser.h"
#include "storage/wal.h"

namespace ccdb {

TupleBox TupleBox::Of(const GeneralizedTuple& tuple, int arity) {
  TupleBox box;
  box.lower.assign(arity, std::nullopt);
  box.upper.assign(arity, std::nullopt);
  for (const Atom& atom : tuple.atoms) {
    // Recognize a*x_v + b (op) 0 with a != 0 constant and single variable.
    const Polynomial& p = atom.poly;
    int var = p.max_var();
    if (var < 0 || p.DegreeIn(var) != 1) continue;
    bool single = true;
    for (int v = 0; v < var; ++v) {
      if (p.Mentions(v)) {
        single = false;
        break;
      }
    }
    if (!single) continue;
    auto coeffs = p.CoefficientsIn(var);
    if (!coeffs[1].is_constant() || !coeffs[0].is_constant()) continue;
    Rational a = coeffs[1].constant_value();
    Rational bound = -coeffs[0].constant_value() / a;
    RelOp op = atom.op;
    // a*x + b op 0  <=>  x op' bound, with op' flipped when a < 0.
    bool flip = a.sign() < 0;
    auto tighten_upper = [&](const Rational& value) {
      if (!box.upper[var].has_value() || value < *box.upper[var]) {
        box.upper[var] = value;
      }
    };
    auto tighten_lower = [&](const Rational& value) {
      if (!box.lower[var].has_value() || value > *box.lower[var]) {
        box.lower[var] = value;
      }
    };
    switch (op) {
      case RelOp::kLe:
      case RelOp::kLt:
        if (flip) {
          tighten_lower(bound);
        } else {
          tighten_upper(bound);
        }
        break;
      case RelOp::kGe:
      case RelOp::kGt:
        if (flip) {
          tighten_upper(bound);
        } else {
          tighten_lower(bound);
        }
        break;
      case RelOp::kEq:
        tighten_lower(bound);
        tighten_upper(bound);
        break;
      case RelOp::kNeq:
        break;
    }
  }
  return box;
}

bool TupleBox::MayContain(const std::vector<Rational>& point) const {
  for (std::size_t v = 0; v < point.size() && v < lower.size(); ++v) {
    if (lower[v].has_value() && point[v] < *lower[v]) return false;
    if (upper[v].has_value() && point[v] > *upper[v]) return false;
  }
  return true;
}

namespace {

// Process-global version source shared by every Catalog instance: a fresh
// stamp per mutation means no two catalog states can ever share a version,
// including a catalog replaced wholesale by Deserialize/LoadFromFile.
// Recovery raises the counter past every stamp found on disk
// (EnsureVersionAtLeast), so the guarantee extends across crashes.
std::atomic<std::uint64_t>& CatalogVersionCounter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

std::uint64_t NextCatalogVersion() {
  return CatalogVersionCounter().fetch_add(1, std::memory_order_relaxed) + 1;
}

// Deserialize guard: a "line" this long is hostile input (the biggest
// legitimate definitions are a few KB), and feeding it to the parser would
// only burn memory before failing anyway.
constexpr std::size_t kMaxCatalogLineBytes = 1u << 20;

}  // namespace

std::uint64_t Catalog::ReserveVersion() { return NextCatalogVersion(); }

void Catalog::EnsureVersionAtLeast(std::uint64_t version) {
  std::atomic<std::uint64_t>& counter = CatalogVersionCounter();
  std::uint64_t current = counter.load(std::memory_order_relaxed);
  while (current < version &&
         !counter.compare_exchange_weak(current, version,
                                        std::memory_order_relaxed)) {
  }
}

Catalog::Catalog() {
  // Even an empty catalog has a unique version (two fresh catalogs must
  // not alias each other in the whole-query memo).
  auto initial = std::make_shared<View>();
  initial->version_ = NextCatalogVersion();
  view_ = std::move(initial);
}

Catalog::Catalog(const Catalog& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  view_ = other.view_;
}

Catalog& Catalog::operator=(const Catalog& other) {
  if (this == &other) return *this;
  std::shared_ptr<const View> theirs;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    theirs = other.view_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  view_ = std::move(theirs);
  return *this;
}

Catalog::Catalog(Catalog&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  view_ = std::move(other.view_);
  other.view_ = std::make_shared<View>();
}

Catalog& Catalog::operator=(Catalog&& other) noexcept {
  if (this == &other) return *this;
  std::shared_ptr<const View> theirs;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    theirs = std::move(other.view_);
    other.view_ = std::make_shared<View>();
  }
  std::lock_guard<std::mutex> lock(mu_);
  view_ = std::move(theirs);
  return *this;
}

std::shared_ptr<const Catalog::View> Catalog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_;
}

void Catalog::RefreshVersion() {
  std::lock_guard<std::mutex> lock(mu_);
  auto next = std::make_shared<View>(*view_);
  // Per-relation stamps first, in name order (deterministic draw order),
  // then the catalog stamp — every stamp in the refreshed view is fresher
  // than anything drawn before the refresh.
  for (auto& [name, entry] : next->relations_) {
    (void)name;
    entry.version.version = NextCatalogVersion();
    entry.version.base = entry.version.version;
  }
  next->version_ = NextCatalogVersion();
  view_ = std::move(next);
}

std::uint64_t Catalog::version() const { return Snapshot()->version(); }

Status Catalog::AddRelation(const std::string& name,
                            ConstraintRelation relation) {
  CCDB_METRIC_COUNT("catalog.relations_added", 1);
  std::lock_guard<std::mutex> lock(mu_);
  if (view_->relations_.count(name) != 0) {
    return Status::AlreadyExists("relation " + name + " already exists");
  }
  // Simulated mid-ingest failure: must not leak a half-built entry into
  // the published view (the swap below is the single commit point).
  CCDB_FAILPOINT("catalog.add");
  auto next = std::make_shared<View>(*view_);
  Entry entry;
  for (const GeneralizedTuple& tuple : relation.tuples()) {
    entry.boxes.push_back(TupleBox::Of(tuple, relation.arity()));
  }
  entry.relation = std::move(relation);
  next->version_ = NextCatalogVersion();
  // A (re)definition is a structural change: version and base move
  // together, so any cache entry keyed on the old stamps — including one
  // for a previously dropped relation of the same name — misses.
  entry.version.version = next->version_;
  entry.version.base = next->version_;
  next->relations_.emplace(name, std::move(entry));
  view_ = std::move(next);
  return Status::Ok();
}

Status Catalog::InsertTuples(const std::string& name,
                             const ConstraintRelation& delta) {
  CCDB_METRIC_COUNT("catalog.inserts", 1);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = view_->relations_.find(name);
  if (it == view_->relations_.end()) {
    return Status::NotFound("relation " + name + " not found");
  }
  if (delta.arity() != it->second.relation.arity()) {
    return Status::InvalidArgument(
        "insert arity " + std::to_string(delta.arity()) + " != relation " +
        name + " arity " + std::to_string(it->second.relation.arity()));
  }
  CCDB_FAILPOINT("catalog.insert");
  auto next = std::make_shared<View>(*view_);
  Entry& entry = next->relations_.at(name);
  // Canonicalize the delta and drop syntactic duplicates of existing (or
  // earlier delta) tuples — exactly the normal form a serialize/parse
  // round trip produces, so a checkpoint after the insert reloads to the
  // same tuple vector. The existing prefix is never touched.
  std::vector<GeneralizedTuple> appended =
      SimplifyTuples(std::vector<GeneralizedTuple>(delta.tuples()));
  for (GeneralizedTuple& tuple : appended) {
    bool duplicate = false;
    for (const GeneralizedTuple& existing : entry.relation.tuples()) {
      if (existing == tuple) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    entry.boxes.push_back(TupleBox::Of(tuple, entry.relation.arity()));
    entry.relation.AddTuple(std::move(tuple));
    CCDB_METRIC_COUNT("catalog.tuples_inserted", 1);
  }
  next->version_ = NextCatalogVersion();
  entry.version.version = next->version_;  // base unchanged: append-only
  view_ = std::move(next);
  return Status::Ok();
}

Status Catalog::InsertTuplesFromText(const std::string& definition) {
  CCDB_ASSIGN_OR_RETURN(ParsedRelationDef def, ParseRelationDef(definition));
  return InsertTuples(def.name, def.relation);
}

Status Catalog::AddRelationFromText(const std::string& definition) {
  CCDB_ASSIGN_OR_RETURN(ParsedRelationDef def, ParseRelationDef(definition));
  return AddRelation(def.name, std::move(def.relation));
}

Status Catalog::DropRelation(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (view_->relations_.count(name) == 0) {
    return Status::NotFound("relation " + name + " not found");
  }
  auto next = std::make_shared<View>(*view_);
  next->relations_.erase(name);
  next->version_ = NextCatalogVersion();
  view_ = std::move(next);
  return Status::Ok();
}

bool Catalog::HasRelation(const std::string& name) const {
  return Snapshot()->HasRelation(name);
}

StatusOr<ConstraintRelation> Catalog::GetRelation(
    const std::string& name) const {
  return Snapshot()->GetRelation(name);
}

std::vector<std::string> Catalog::RelationNames() const {
  return Snapshot()->RelationNames();
}

StatusOr<bool> Catalog::Contains(const std::string& name,
                                 const std::vector<Rational>& point) const {
  return Snapshot()->Contains(name, point);
}

std::string Catalog::Serialize() const { return Snapshot()->Serialize(); }

bool Catalog::View::HasRelation(const std::string& name) const {
  return relations_.count(name) != 0;
}

StatusOr<ConstraintRelation> Catalog::View::GetRelation(
    const std::string& name) const {
  CCDB_METRIC_COUNT("catalog.lookups", 1);
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    CCDB_METRIC_COUNT("catalog.lookup_misses", 1);
    return Status::NotFound("relation " + name + " not found");
  }
  return it->second.relation;
}

std::optional<RelationVersion> Catalog::View::GetRelationVersion(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) return std::nullopt;
  return it->second.version;
}

std::map<std::string, RelationVersion> Catalog::View::RelationVersions() const {
  std::map<std::string, RelationVersion> versions;
  for (const auto& [name, entry] : relations_) {
    versions.emplace(name, entry.version);
  }
  return versions;
}

std::vector<std::string> Catalog::View::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, entry] : relations_) names.push_back(name);
  return names;
}

StatusOr<bool> Catalog::View::Contains(
    const std::string& name, const std::vector<Rational>& point) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation " + name + " not found");
  }
  const Entry& entry = it->second;
  if (static_cast<int>(point.size()) != entry.relation.arity()) {
    return Status::InvalidArgument("point arity mismatch");
  }
  for (std::size_t i = 0; i < entry.relation.tuples().size(); ++i) {
    if (!entry.boxes[i].MayContain(point)) {
      // Index fast path: the bounding box proves non-membership without
      // evaluating the tuple's polynomial constraints.
      CCDB_METRIC_COUNT("catalog.box_index.pruned", 1);
      continue;
    }
    CCDB_METRIC_COUNT("catalog.box_index.evaluated", 1);
    if (entry.relation.tuples()[i].SatisfiedAt(point)) return true;
  }
  return false;
}

std::string SerializeRelationDef(const std::string& name,
                                 const ConstraintRelation& rel) {
  std::ostringstream out;
  std::vector<std::string> columns;
  for (int v = 0; v < rel.arity(); ++v) {
    columns.push_back("x" + std::to_string(v));
  }
  out << name << "(";
  for (int v = 0; v < rel.arity(); ++v) {
    if (v > 0) out << ", ";
    out << columns[v];
  }
  out << ") := ";
  if (rel.tuples().empty()) {
    out << "false";
  } else {
    for (std::size_t t = 0; t < rel.tuples().size(); ++t) {
      if (t > 0) out << " or ";
      const GeneralizedTuple& tuple = rel.tuples()[t];
      out << "(";
      if (tuple.atoms.empty()) {
        out << "0 = 0";
      }
      for (std::size_t a = 0; a < tuple.atoms.size(); ++a) {
        if (a > 0) out << " and ";
        out << tuple.atoms[a].poly.ToString(columns) << " "
            << RelOpToString(tuple.atoms[a].op) << " 0";
      }
      out << ")";
    }
  }
  return out.str();
}

std::string Catalog::View::Serialize() const {
  std::ostringstream out;
  out << "# ccdb catalog v1\n";
  for (const auto& [name, entry] : relations_) {
    out << SerializeRelationDef(name, entry.relation) << "\n";
  }
  return out.str();
}

StatusOr<Catalog> Catalog::Deserialize(const std::string& text) {
  Catalog catalog;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.size() > kMaxCatalogLineBytes) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": definition exceeds " +
          std::to_string(kMaxCatalogLineBytes) + " bytes");
    }
    std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    // Empty relations serialize as "... := false", which the definition
    // parser handles through the 'false' keyword. Duplicate relation
    // names surface as kAlreadyExists from AddRelation; any other
    // garbage as the parser's kInvalidArgument — always a clean Status
    // carrying the line number.
    Status added = catalog.AddRelationFromText(line);
    if (!added.ok()) {
      return Status(added.code(), "line " + std::to_string(line_number) +
                                      ": " + added.message());
    }
  }
  return catalog;
}

Status Catalog::SaveToFile(const std::string& path) const {
  // Atomic replace (tmp + fsync + rename): a crash at any point leaves
  // either the old file or the new one, never a torn mix.
  return AtomicWriteFile(path, Serialize(), "save");
}

StatusOr<Catalog> Catalog::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return Deserialize(buffer.str());
}

}  // namespace ccdb
