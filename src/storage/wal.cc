#include "storage/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "base/config.h"
#include "base/failpoint.h"
#include "base/logging.h"
#include "base/metrics.h"

namespace ccdb {

namespace {

constexpr char kWalMagic[8] = {'C', 'C', 'D', 'B', 'W', 'A', 'L', '\x01'};
constexpr std::uint8_t kWalSchemaVersion = 1;
// u32 len | u32 crc
constexpr std::size_t kFrameHeaderBytes = 8;
// u8 schema | u8 op | u64 stamp
constexpr std::size_t kPayloadHeaderBytes = 10;
// Anything bigger than this in a length prefix is treated as framing
// corruption rather than an allocation request: the largest legitimate
// payload is a full catalog serialization, and 64 MiB of definitions is
// far beyond what this engine can evaluate anyway.
constexpr std::uint32_t kMaxWalPayloadBytes = 64u << 20;
// Batch-policy sync threshold.
constexpr std::uint64_t kBatchSyncBytes = 64u << 10;

constexpr char kCheckpointHeader[] = "# ccdb checkpoint v1";
constexpr char kCheckpointPrefix[] = "ckpt-";
constexpr char kCheckpointSuffix[] = ".ccdb";
constexpr char kWalFileName[] = "wal.log";

void PutU32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t GetU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t GetU64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

// Full write()-until-done loop; EINTR-safe.
Status WriteAll(int fd, const char* data, std::size_t n,
                const std::string& what) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus(what);
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return Status::Ok();
}

// The fault-injection-aware write used at every durability boundary:
// consults the registry (cheap when nothing is armed), and implements the
// torn-write (prefix + crash) and short-write (prefix + error) faults.
// Returns the number of bytes actually on disk through *written.
Status FaultableWrite(int fd, const char* site, const std::string& data,
                      std::size_t* written) {
  *written = 0;
  FailpointRegistry& registry = FailpointRegistry::Global();
  if (registry.HasArmed()) {
    Status injected = Status::Ok();
    IoFault fault = registry.HitIo(site, &injected);
    if (!injected.ok()) return injected;
    if (fault != IoFault::kNone) {
      // Land a strict prefix (half, rounded down) so the tail is torn.
      std::size_t prefix = data.size() / 2;
      Status ws = WriteAll(fd, data.data(), prefix, site);
      if (!ws.ok()) return ws;
      *written = prefix;
      if (fault == IoFault::kTornWrite) {
        // Crash after the partial write — the prefix is in the page cache
        // and survives process death, exactly a torn append.
        std::fprintf(stderr,
                     "ccdb: failpoint %s injected torn write + crash\n", site);
        std::_Exit(FailpointRegistry::kCrashExitCode);
      }
      return Status::Internal("failpoint " + std::string(site) +
                              " injected short write");
    }
  }
  Status ws = WriteAll(fd, data.data(), data.size(), site);
  if (!ws.ok()) return ws;
  *written = data.size();
  return Status::Ok();
}

// Consults a non-write durability site (pre/post boundaries): fires crash
// or an injected Status; torn/short kinds armed here degrade to Internal.
Status HitSite(const char* site) {
  FailpointRegistry& registry = FailpointRegistry::Global();
  if (!registry.HasArmed()) return Status::Ok();
  return registry.Hit(site);
}

Status SyncFd(int fd, const std::string& what) {
  if (::fdatasync(fd) != 0) return ErrnoStatus(what);
  return Status::Ok();
}

// fsync on the directory makes a rename/create durable against power loss.
// Best-effort: some filesystems refuse O_DIRECTORY fsync; a failure is
// logged, not fatal (the fault model the tests enforce is process crash).
void SyncDirBestEffort(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  if (::fsync(fd) != 0) {
    CCDB_LOG(WARN) << "directory fsync failed for " << dir << ": "
                   << std::strerror(errno);
  }
  ::close(fd);
}

std::string DirOf(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

StatusOr<std::string> ReadFileContents(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string HexU32(std::uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return std::string(buf);
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t n) {
  // Table-driven CRC-32 (IEEE reflected polynomial 0xEDB88320), the same
  // function zlib computes — table built once on first use.
  static const std::uint32_t* table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

StatusOr<WalFsyncPolicy> ParseWalFsyncPolicy(const std::string& name) {
  if (name == "always") return WalFsyncPolicy::kAlways;
  if (name == "batch") return WalFsyncPolicy::kBatch;
  if (name == "off") return WalFsyncPolicy::kOff;
  return Status::InvalidArgument("unknown WAL fsync policy \"" + name +
                                 "\" (always|batch|off)");
}

DurabilityOptions DurabilityOptions::FromEnv() {
  // Knob parsing (including the unknown-policy diagnostic) lives in
  // base/config.cc; this just maps the resolved strings onto the enum.
  const EngineConfig& config = EngineConfig::Process();
  DurabilityOptions options;
  StatusOr<WalFsyncPolicy> parsed = ParseWalFsyncPolicy(config.wal_fsync);
  if (parsed.ok()) options.fsync = parsed.value();
  options.checkpoint_bytes = config.wal_checkpoint_bytes;
  return options;
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload;
  payload.reserve(kPayloadHeaderBytes + record.payload.size());
  payload.push_back(static_cast<char>(kWalSchemaVersion));
  payload.push_back(static_cast<char>(record.op));
  PutU64(&payload, record.stamp);
  payload += record.payload;

  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<std::uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  frame += payload;
  return frame;
}

StatusOr<WalReplay> ReadWal(const std::string& path) {
  CCDB_ASSIGN_OR_RETURN(std::string contents, ReadFileContents(path));
  const auto* bytes = reinterpret_cast<const unsigned char*>(contents.data());
  const std::size_t size = contents.size();

  WalReplay replay;
  if (size < sizeof(kWalMagic)) {
    // Even the header is torn (crash during creation): treat the whole
    // file as a torn tail; the writer re-creates it from offset 0.
    replay.torn_tail = size > 0;
    replay.valid_bytes = 0;
    return replay;
  }
  if (std::memcmp(bytes, kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::Internal("WAL " + path +
                            " corrupt: bad magic at offset 0");
  }

  std::size_t offset = sizeof(kWalMagic);
  replay.valid_bytes = offset;
  while (offset < size) {
    const std::size_t record_start = offset;
    auto torn = [&]() -> StatusOr<WalReplay> {
      replay.torn_tail = true;
      replay.valid_bytes = record_start;
      return replay;
    };
    if (size - offset < kFrameHeaderBytes) return torn();
    const std::uint32_t payload_len = GetU32(bytes + offset);
    const std::uint32_t expected_crc = GetU32(bytes + offset + 4);
    if (payload_len < kPayloadHeaderBytes ||
        payload_len > kMaxWalPayloadBytes) {
      // An absurd length prefix is either a torn header (only if it ends
      // the file) or corruption. A torn append can only truncate bytes,
      // never rewrite the length field of a record with data after it.
      if (size - offset <= kFrameHeaderBytes) return torn();
      return Status::Internal(
          "WAL " + path + " corrupt: invalid record length " +
          std::to_string(payload_len) + " at offset " +
          std::to_string(record_start));
    }
    if (size - offset - kFrameHeaderBytes < payload_len) return torn();
    const unsigned char* payload = bytes + offset + kFrameHeaderBytes;
    const std::size_t record_end = offset + kFrameHeaderBytes + payload_len;
    if (Crc32(payload, payload_len) != expected_crc) {
      if (record_end == size) return torn();  // bad CRC on the final record
      return Status::Internal("WAL " + path +
                              " corrupt: checksum mismatch at offset " +
                              std::to_string(record_start));
    }
    if (payload[0] != kWalSchemaVersion) {
      return Status::Internal(
          "WAL " + path + " corrupt: unknown schema version " +
          std::to_string(payload[0]) + " at offset " +
          std::to_string(record_start));
    }
    WalRecord record;
    const std::uint8_t op = payload[1];
    if (op < static_cast<std::uint8_t>(WalRecord::Op::kDefine) ||
        op > static_cast<std::uint8_t>(WalRecord::Op::kInsert)) {
      return Status::Internal("WAL " + path + " corrupt: unknown op " +
                              std::to_string(op) + " at offset " +
                              std::to_string(record_start));
    }
    record.op = static_cast<WalRecord::Op>(op);
    record.stamp = GetU64(payload + 2);
    if (record.stamp <= replay.max_stamp) {
      // Stamps are reserved before append and appended in order; a
      // non-increasing stamp cannot come from this writer.
      return Status::Internal(
          "WAL " + path + " corrupt: non-monotone stamp " +
          std::to_string(record.stamp) + " at offset " +
          std::to_string(record_start));
    }
    record.payload.assign(
        reinterpret_cast<const char*>(payload + kPayloadHeaderBytes),
        payload_len - kPayloadHeaderBytes);
    replay.max_stamp = record.stamp;
    replay.records.push_back(std::move(record));
    offset = record_end;
    replay.valid_bytes = offset;
  }
  return replay;
}

WalWriter::WalWriter(int fd, std::string path, WalFsyncPolicy policy,
                     std::uint64_t bytes)
    : fd_(fd), path_(std::move(path)), policy_(policy), bytes_(bytes) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    if (policy_ != WalFsyncPolicy::kOff && unsynced_ > 0) {
      ::fdatasync(fd_);
    }
    ::close(fd_);
  }
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                     WalFsyncPolicy policy,
                                                     std::uint64_t resume_at) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  std::unique_ptr<WalWriter> writer(
      new WalWriter(fd, path, policy, resume_at));
  // Drop any torn tail recovery found, then position at the end.
  if (::ftruncate(fd, static_cast<off_t>(resume_at)) != 0) {
    return ErrnoStatus("truncate " + path);
  }
  if (::lseek(fd, 0, SEEK_END) < 0) return ErrnoStatus("seek " + path);
  if (resume_at < kHeaderBytes) {
    // Fresh (or fully-torn) log: write the magic header. No fault site
    // here — header creation is covered by the append sites.
    Status ws = WriteAll(fd, kWalMagic, sizeof(kWalMagic), "wal header");
    if (!ws.ok()) return ws;
    writer->bytes_ = kHeaderBytes;
    if (policy != WalFsyncPolicy::kOff) {
      CCDB_RETURN_IF_ERROR(SyncFd(fd, "sync " + path));
    }
  }
  return writer;
}

Status WalWriter::Append(const WalRecord& record) {
  CCDB_METRIC_COUNT("wal.appends", 1);
  CCDB_RETURN_IF_ERROR(HitSite("wal.append.pre"));
  const std::string frame = EncodeWalRecord(record);
  std::size_t written = 0;
  Status ws = FaultableWrite(fd_, "wal.append.write", frame, &written);
  if (!ws.ok()) {
    // Short write (injected or real, e.g. ENOSPC): truncate back to the
    // previous record boundary so the log has no torn middle and the next
    // append lands clean. If even the truncate fails the writer is wedged
    // and every later append will keep failing — which is the right
    // behavior for a full/broken disk.
    if (written > 0 &&
        ::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0) {
      return Status::Internal("WAL append failed AND truncate-back failed: " +
                              ws.message());
    }
    if (written > 0 && ::lseek(fd_, 0, SEEK_END) < 0) {
      return ErrnoStatus("seek " + path_);
    }
    return ws;
  }
  bytes_ += frame.size();
  unsynced_ += frame.size();
  CCDB_RETURN_IF_ERROR(HitSite("wal.append.post"));
  switch (policy_) {
    case WalFsyncPolicy::kAlways:
      return Sync();
    case WalFsyncPolicy::kBatch:
      if (unsynced_ >= kBatchSyncBytes) return Sync();
      return Status::Ok();
    case WalFsyncPolicy::kOff:
      return Status::Ok();
  }
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (unsynced_ == 0) return Status::Ok();
  CCDB_RETURN_IF_ERROR(HitSite("wal.fsync.pre"));
  CCDB_RETURN_IF_ERROR(SyncFd(fd_, "sync " + path_));
  unsynced_ = 0;
  return Status::Ok();
}

Status WalWriter::Reset() {
  if (::ftruncate(fd_, static_cast<off_t>(kHeaderBytes)) != 0) {
    return ErrnoStatus("truncate " + path_);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) return ErrnoStatus("seek " + path_);
  bytes_ = kHeaderBytes;
  unsynced_ = 0;
  if (policy_ != WalFsyncPolicy::kOff) {
    CCDB_RETURN_IF_ERROR(SyncFd(fd_, "sync " + path_));
  }
  return Status::Ok();
}

namespace {

// Renders a checkpoint file: a commented metadata header, the catalog
// serialization, and a trailing CRC line over everything before it. All
// metadata lines start with '#' so Catalog::Deserialize parses the body
// directly.
std::string RenderCheckpoint(const std::string& serialized,
                             std::uint64_t stamp) {
  std::string body = std::string(kCheckpointHeader) + "\n# version " +
                     std::to_string(stamp) + "\n" + serialized;
  std::uint32_t crc = Crc32(body.data(), body.size());
  return body + "# crc32 " + HexU32(crc) + "\n";
}

struct ParsedCheckpoint {
  std::uint64_t stamp = 0;
  Catalog catalog;
};

// Validates and parses one checkpoint file. Any defect — missing header,
// missing/mismatched CRC, malformed version, body that fails to parse —
// is a Status, never a crash; the caller falls back to an older file.
StatusOr<ParsedCheckpoint> LoadCheckpoint(const std::string& path) {
  CCDB_ASSIGN_OR_RETURN(std::string contents, ReadFileContents(path));
  // The CRC line is the last line of the file.
  if (contents.empty() || contents.back() != '\n') {
    return Status::Internal("checkpoint " + path + " corrupt: truncated");
  }
  std::size_t last_line_start = contents.find_last_of('\n', contents.size() - 2);
  last_line_start = last_line_start == std::string::npos ? 0 : last_line_start + 1;
  const std::string crc_line =
      contents.substr(last_line_start, contents.size() - last_line_start - 1);
  if (crc_line.rfind("# crc32 ", 0) != 0 || crc_line.size() != 16) {
    return Status::Internal("checkpoint " + path + " corrupt: missing crc");
  }
  const std::uint32_t expected =
      static_cast<std::uint32_t>(std::strtoul(crc_line.substr(8).c_str(),
                                              nullptr, 16));
  const std::string body = contents.substr(0, last_line_start);
  if (Crc32(body.data(), body.size()) != expected) {
    return Status::Internal("checkpoint " + path +
                            " corrupt: checksum mismatch");
  }
  std::istringstream in(body);
  std::string line;
  if (!std::getline(in, line) || line != kCheckpointHeader) {
    return Status::Internal("checkpoint " + path + " corrupt: bad header");
  }
  ParsedCheckpoint parsed;
  if (!std::getline(in, line) || line.rfind("# version ", 0) != 0) {
    return Status::Internal("checkpoint " + path +
                            " corrupt: missing version");
  }
  {
    const std::string v = line.substr(10);
    char* end = nullptr;
    errno = 0;
    unsigned long long stamp = std::strtoull(v.c_str(), &end, 10);
    if (errno != 0 || end == v.c_str() || *end != '\0') {
      return Status::Internal("checkpoint " + path +
                              " corrupt: malformed version \"" + v + "\"");
    }
    parsed.stamp = stamp;
  }
  // The body after the two metadata lines is a regular catalog
  // serialization ('#' lines are comments to Deserialize).
  CCDB_ASSIGN_OR_RETURN(parsed.catalog, Catalog::Deserialize(body));
  return parsed;
}

// Checkpoint files in `dir`, newest stamp first. Unparseable names are
// skipped.
std::vector<std::pair<std::uint64_t, std::string>> ListCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  // Readdir without <filesystem>: checkpoint names are fully determined by
  // their stamp, so scan with POSIX dirent.
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return found;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind(kCheckpointPrefix, 0) != 0) continue;
    if (name.size() <= std::strlen(kCheckpointPrefix) +
                           std::strlen(kCheckpointSuffix)) {
      continue;
    }
    if (name.compare(name.size() - std::strlen(kCheckpointSuffix),
                     std::strlen(kCheckpointSuffix),
                     kCheckpointSuffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(std::strlen(kCheckpointPrefix),
                    name.size() - std::strlen(kCheckpointPrefix) -
                        std::strlen(kCheckpointSuffix));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    found.emplace_back(std::strtoull(digits.c_str(), nullptr, 10),
                       dir + "/" + name);
  }
  ::closedir(d);
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

// Leftover .tmp files from a crash mid-checkpoint are dead weight.
void RemoveStaleTemps(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> stale;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind(kCheckpointPrefix, 0) == 0 &&
        name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      stale.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  for (const std::string& path : stale) ::unlink(path.c_str());
}

}  // namespace

DurableStore::DurableStore(std::string dir, DurabilityOptions options)
    : dir_(std::move(dir)), options_(options) {}

StatusOr<std::unique_ptr<DurableStore>> DurableStore::Open(
    const std::string& dir, const DurabilityOptions& options) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir " + dir);
  }
  std::unique_ptr<DurableStore> store(new DurableStore(dir, options));
  RemoveStaleTemps(dir);

  // 1. Newest valid checkpoint. Corrupt files are warned about and
  //    skipped — an older intact checkpoint plus the WAL still recovers
  //    everything that was acknowledged.
  std::uint64_t checkpoint_stamp = 0;
  for (const auto& [stamp, path] : ListCheckpoints(dir)) {
    StatusOr<ParsedCheckpoint> parsed = LoadCheckpoint(path);
    if (!parsed.ok()) {
      CCDB_LOG(ERROR) << "skipping " << path << ": "
                      << parsed.status().ToString();
      continue;
    }
    store->recovered_ = std::move(parsed.value().catalog);
    checkpoint_stamp = parsed.value().stamp;
    store->recovery_.checkpoint_file = path;
    store->recovery_.checkpoint_stamp = checkpoint_stamp;
    break;
  }

  // 2. WAL replay on top. Records the checkpoint already covers (stamp <=
  //    checkpoint stamp) are skipped — that window exists when a crash hit
  //    between checkpoint rename and WAL reset.
  const std::string wal_path = dir + "/" + kWalFileName;
  std::uint64_t resume_at = 0;
  std::uint64_t max_stamp = checkpoint_stamp;
  StatusOr<WalReplay> replayed = ReadWal(wal_path);
  if (replayed.ok()) {
    const WalReplay& replay = replayed.value();
    resume_at = replay.valid_bytes;
    store->recovery_.torn_tail = replay.torn_tail;
    max_stamp = std::max(max_stamp, replay.max_stamp);
    if (replay.torn_tail) {
      struct stat st;
      if (::stat(wal_path.c_str(), &st) == 0) {
        store->recovery_.torn_bytes =
            static_cast<std::uint64_t>(st.st_size) - replay.valid_bytes;
      }
      CCDB_LOG(WARN) << "WAL " << wal_path << " has a torn tail; dropping "
                     << store->recovery_.torn_bytes << " byte(s)";
    }
    // 3. Re-anchor the process-global version counter past every stamp on
    //    disk BEFORE replaying, so replayed mutations (and everything
    //    after) get strictly larger versions than any pre-crash state.
    Catalog::EnsureVersionAtLeast(max_stamp + 1);
    for (const WalRecord& record : replay.records) {
      if (record.stamp <= checkpoint_stamp) {
        ++store->recovery_.skipped_records;
        continue;
      }
      Status applied = Status::Ok();
      switch (record.op) {
        case WalRecord::Op::kDefine:
        case WalRecord::Op::kRegister:
          applied = store->recovered_.AddRelationFromText(record.payload);
          break;
        case WalRecord::Op::kDrop:
          applied = store->recovered_.DropRelation(record.payload);
          break;
        case WalRecord::Op::kInsert:
          applied = store->recovered_.InsertTuplesFromText(record.payload);
          break;
        case WalRecord::Op::kLoad: {
          StatusOr<Catalog> loaded = Catalog::Deserialize(record.payload);
          if (!loaded.ok()) {
            applied = loaded.status();
          } else {
            store->recovered_ = std::move(loaded.value());
          }
          break;
        }
      }
      if (!applied.ok()) {
        // A record that was logged but no longer applies means the log
        // and the checkpoint disagree — refuse to open rather than
        // silently diverge from the pre-crash state.
        return Status::Internal(
            "WAL replay failed at stamp " + std::to_string(record.stamp) +
            ": " + applied.message());
      }
      ++store->recovery_.replayed_records;
    }
  } else if (replayed.status().code() == StatusCode::kNotFound) {
    // No WAL yet (fresh directory, or crash right after checkpoint
    // creation renamed the log away — we never delete the WAL, so in
    // practice: fresh directory).
    Catalog::EnsureVersionAtLeast(max_stamp + 1);
  } else {
    // Mid-log corruption: refuse to open. The Status names the offset so
    // an operator can inspect/repair; silently dropping acknowledged
    // mutations would be worse than unavailability.
    return replayed.status();
  }

  // Final stamp: the checkpoint-rebuilt relations drew versions before
  // the counter was raised past the on-disk stamps; refresh so the
  // recovered catalog's version is itself beyond every pre-crash state.
  store->recovered_.RefreshVersion();
  CCDB_ASSIGN_OR_RETURN(
      store->wal_, WalWriter::Open(wal_path, options.fsync, resume_at));
  CCDB_METRIC_COUNT("wal.recoveries", 1);
  return store;
}

Catalog DurableStore::TakeCatalog() { return std::move(recovered_); }

Status DurableStore::LogMutation(WalRecord::Op op, std::string payload,
                                 std::uint64_t stamp) {
  WalRecord record;
  record.op = op;
  record.stamp = stamp;
  record.payload = std::move(payload);
  return wal_->Append(record);
}

Status DurableStore::WriteCheckpoint(const std::string& serialized,
                                     std::uint64_t stamp) {
  CCDB_METRIC_COUNT("wal.checkpoints", 1);
  const std::string final_path = dir_ + "/" + kCheckpointPrefix +
                                 std::to_string(stamp) + kCheckpointSuffix;
  const std::string tmp_path = dir_ + "/" + kCheckpointPrefix +
                               std::to_string(stamp) + ".tmp";
  const std::string contents = RenderCheckpoint(serialized, stamp);

  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open " + tmp_path);
  std::size_t written = 0;
  Status ws = FaultableWrite(fd, "ckpt.write", contents, &written);
  if (!ws.ok()) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return ws;
  }
  Status hs = HitSite("ckpt.fsync.pre");
  if (!hs.ok()) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return hs;
  }
  if (::fsync(fd) != 0) {
    Status err = ErrnoStatus("fsync " + tmp_path);
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return err;
  }
  ::close(fd);

  hs = HitSite("ckpt.rename.pre");
  if (!hs.ok()) {
    ::unlink(tmp_path.c_str());
    return hs;
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    Status err = ErrnoStatus("rename " + tmp_path);
    ::unlink(tmp_path.c_str());
    return err;
  }
  SyncDirBestEffort(dir_);
  // --- Commit point: the new checkpoint is durable. A crash from here on
  // recovers from it (WAL records with stamp <= checkpoint stamp are
  // skipped), so the rotation below is pure cleanup.
  CCDB_RETURN_IF_ERROR(HitSite("ckpt.rename.post"));

  CCDB_RETURN_IF_ERROR(wal_->Reset());
  for (const auto& [old_stamp, old_path] : ListCheckpoints(dir_)) {
    if (old_stamp < stamp) ::unlink(old_path.c_str());
  }
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path, const std::string& content,
                       const char* site_ns) {
  const std::string ns(site_ns);
  const std::string tmp_path = path + ".tmp";
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open " + tmp_path);
  std::size_t written = 0;
  Status ws = FaultableWrite(fd, (ns + ".write").c_str(), content, &written);
  if (!ws.ok()) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return ws;
  }
  Status hs = HitSite((ns + ".fsync.pre").c_str());
  if (!hs.ok()) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return hs;
  }
  if (::fsync(fd) != 0) {
    Status err = ErrnoStatus("fsync " + tmp_path);
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return err;
  }
  ::close(fd);
  hs = HitSite((ns + ".rename.pre").c_str());
  if (!hs.ok()) {
    ::unlink(tmp_path.c_str());
    return hs;
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    Status err = ErrnoStatus("rename " + tmp_path);
    ::unlink(tmp_path.c_str());
    return err;
  }
  SyncDirBestEffort(DirOf(path));
  return HitSite((ns + ".rename.post").c_str());
}

}  // namespace ccdb
