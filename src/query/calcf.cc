#include "query/calcf.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "arith/floatk.h"
#include "base/failpoint.h"
#include "base/logging.h"
#include "base/metrics.h"
#include "base/trace.h"
#include "query/lower.h"
#include "query/parser.h"

namespace ccdb {

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsSince(const SteadyClock::time_point& start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

// Renders a polynomial back into a QTerm over the given column names.
std::shared_ptr<const QTerm> PolynomialToQTerm(
    const Polynomial& p, const std::vector<std::string>& names) {
  std::shared_ptr<const QTerm> sum;
  for (const auto& [monomial, coeff] : p.terms()) {
    std::shared_ptr<const QTerm> term = QTerm::Const(coeff);
    for (int v = 0; v <= monomial.max_var(); ++v) {
      std::uint32_t e = monomial.exponent(v);
      if (e == 0) continue;
      CCDB_CHECK(v < static_cast<int>(names.size()));
      std::shared_ptr<const QTerm> var = QTerm::Var(names[v]);
      if (e > 1) var = QTerm::Pow(var, e);
      term = QTerm::Binary(QTerm::Kind::kMul, term, var);
    }
    sum = sum == nullptr
              ? term
              : QTerm::Binary(QTerm::Kind::kAdd, sum, term);
  }
  if (sum == nullptr) return QTerm::Const(Rational(0));
  return sum;
}

// Renders a constraint relation back into surface syntax over names.
std::shared_ptr<const QFormula> RelationToQFormula(
    const ConstraintRelation& relation, const std::vector<std::string>& names) {
  std::vector<std::shared_ptr<const QFormula>> disjuncts;
  for (const GeneralizedTuple& tuple : relation.tuples()) {
    std::vector<std::shared_ptr<const QFormula>> conjuncts;
    for (const Atom& atom : tuple.atoms) {
      conjuncts.push_back(QFormula::Compare(PolynomialToQTerm(atom.poly, names),
                                            atom.op,
                                            QTerm::Const(Rational(0))));
    }
    if (conjuncts.empty()) {
      disjuncts.push_back(QFormula::True());
    } else if (conjuncts.size() == 1) {
      disjuncts.push_back(conjuncts[0]);
    } else {
      disjuncts.push_back(
          QFormula::Connective(QFormula::Kind::kAnd, std::move(conjuncts)));
    }
  }
  if (disjuncts.empty()) return QFormula::False();
  if (disjuncts.size() == 1) return disjuncts[0];
  return QFormula::Connective(QFormula::Kind::kOr, std::move(disjuncts));
}

Rational DyadicFromDouble(double value) {
  return FloatK::FromDouble(value).ToRational();
}

// Rewrites analytic function applications inside a term: each f(arg) is
// replaced by a fresh variable t_i, and `constraints` receives the defining
// disjunction OR_e (t_i = h_e(arg') and lo_e <= arg' <= hi_e) over the
// a-base pieces (the paper's step 2). Returns the function-free term.
class FunctionRewriter {
 public:
  FunctionRewriter(const ApproxModule* module, const ABase* abase,
                   CalcFStats* stats)
      : module_(module), abase_(abase), stats_(stats) {}

  StatusOr<std::shared_ptr<const QTerm>> Rewrite(
      const QTerm& term,
      std::vector<std::shared_ptr<const QFormula>>* constraints,
      std::vector<std::string>* fresh_vars) {
    switch (term.kind) {
      case QTerm::Kind::kConst:
      case QTerm::Kind::kVar:
        return std::shared_ptr<const QTerm>(std::make_shared<QTerm>(term));
      case QTerm::Kind::kAdd:
      case QTerm::Kind::kSub:
      case QTerm::Kind::kMul:
      case QTerm::Kind::kDiv: {
        CCDB_ASSIGN_OR_RETURN(auto l,
                              Rewrite(*term.lhs, constraints, fresh_vars));
        CCDB_ASSIGN_OR_RETURN(auto r,
                              Rewrite(*term.rhs, constraints, fresh_vars));
        return QTerm::Binary(term.kind, l, r);
      }
      case QTerm::Kind::kNeg: {
        CCDB_ASSIGN_OR_RETURN(auto l,
                              Rewrite(*term.lhs, constraints, fresh_vars));
        return QTerm::Neg(l);
      }
      case QTerm::Kind::kPow: {
        CCDB_ASSIGN_OR_RETURN(auto l,
                              Rewrite(*term.lhs, constraints, fresh_vars));
        return QTerm::Pow(l, term.exponent);
      }
      case QTerm::Kind::kFunc: {
        CCDB_ASSIGN_OR_RETURN(auto arg,
                              Rewrite(*term.lhs, constraints, fresh_vars));
        std::string fresh = "_approx" + std::to_string(counter_++);
        fresh_vars->push_back(fresh);
        std::vector<std::shared_ptr<const QFormula>> pieces;
        for (const Interval& piece : abase_->Intervals()) {
          if (!DefinedOn(term.func, piece)) continue;
          auto approx = module_->Approximate(term.func, piece);
          if (!approx.ok()) continue;  // undefined piece: excluded
          ++stats_->approximation_calls;
          // t = h(arg) and lo <= arg <= hi.
          std::shared_ptr<const QTerm> h_of_arg =
              QTerm::Const(Rational(0));
          // Horner: h = sum c_i * arg^i.
          const auto& coeffs = approx->poly.coefficients();
          for (std::size_t i = coeffs.size(); i-- > 0;) {
            h_of_arg = QTerm::Binary(
                QTerm::Kind::kAdd,
                QTerm::Binary(QTerm::Kind::kMul, h_of_arg, arg),
                QTerm::Const(coeffs[i]));
          }
          std::vector<std::shared_ptr<const QFormula>> conjuncts;
          conjuncts.push_back(QFormula::Compare(QTerm::Var(fresh), RelOp::kEq,
                                                h_of_arg));
          conjuncts.push_back(QFormula::Compare(QTerm::Const(piece.lo()),
                                                RelOp::kLe, arg));
          conjuncts.push_back(QFormula::Compare(arg, RelOp::kLe,
                                                QTerm::Const(piece.hi())));
          pieces.push_back(
              QFormula::Connective(QFormula::Kind::kAnd, std::move(conjuncts)));
        }
        if (pieces.empty()) {
          return Status::InvalidArgument(
              std::string("no a-base piece can approximate ") +
              AnalyticKindName(term.func));
        }
        constraints->push_back(
            pieces.size() == 1
                ? pieces[0]
                : QFormula::Connective(QFormula::Kind::kOr, std::move(pieces)));
        return QTerm::Var(fresh);
      }
    }
    return Status::Internal("unreachable term kind");
  }

 private:
  const ApproxModule* module_;
  const ABase* abase_;
  CalcFStats* stats_;
  int counter_ = 0;
};

// Rewrites every comparison atom containing analytic functions into
// exists _approxN (defining constraints and rewritten-comparison).
StatusOr<std::shared_ptr<const QFormula>> RewriteFunctions(
    const QFormula& formula, const ApproxModule* module, const ABase* abase,
    CalcFStats* stats) {
  switch (formula.kind) {
    case QFormula::Kind::kTrue:
    case QFormula::Kind::kFalse:
    case QFormula::Kind::kRelation:
      return std::shared_ptr<const QFormula>(
          std::make_shared<QFormula>(formula));
    case QFormula::Kind::kCompare: {
      if (formula.lhs->IsPolynomial() && formula.rhs->IsPolynomial()) {
        return std::shared_ptr<const QFormula>(
            std::make_shared<QFormula>(formula));
      }
      FunctionRewriter rewriter(module, abase, stats);
      std::vector<std::shared_ptr<const QFormula>> constraints;
      std::vector<std::string> fresh_vars;
      CCDB_ASSIGN_OR_RETURN(
          auto lhs, rewriter.Rewrite(*formula.lhs, &constraints, &fresh_vars));
      CCDB_ASSIGN_OR_RETURN(
          auto rhs, rewriter.Rewrite(*formula.rhs, &constraints, &fresh_vars));
      constraints.push_back(QFormula::Compare(lhs, formula.op, rhs));
      std::shared_ptr<const QFormula> body =
          constraints.size() == 1
              ? constraints[0]
              : QFormula::Connective(QFormula::Kind::kAnd,
                                     std::move(constraints));
      return QFormula::Quantifier(QFormula::Kind::kExists,
                                  std::move(fresh_vars), body);
    }
    case QFormula::Kind::kNot: {
      CCDB_ASSIGN_OR_RETURN(
          auto inner,
          RewriteFunctions(*formula.children[0], module, abase, stats));
      return QFormula::Not(inner);
    }
    case QFormula::Kind::kAnd:
    case QFormula::Kind::kOr: {
      std::vector<std::shared_ptr<const QFormula>> mapped;
      for (const auto& child : formula.children) {
        CCDB_ASSIGN_OR_RETURN(auto m,
                              RewriteFunctions(*child, module, abase, stats));
        mapped.push_back(m);
      }
      return QFormula::Connective(formula.kind, std::move(mapped));
    }
    case QFormula::Kind::kExists:
    case QFormula::Kind::kForall: {
      CCDB_ASSIGN_OR_RETURN(
          auto inner,
          RewriteFunctions(*formula.children[0], module, abase, stats));
      return QFormula::Quantifier(formula.kind, formula.bound_vars, inner);
    }
    case QFormula::Kind::kAggregate:
      return Status::Internal(
          "aggregates must be evaluated before function rewriting");
  }
  return Status::Internal("unreachable formula kind");
}

}  // namespace

std::string CalcFStats::ToString() const {
  std::ostringstream out;
  out << "approximation_calls=" << approximation_calls
      << " aggregate_calls=" << aggregate_calls << " qe_rounds=" << qe_rounds
      << " max_intermediate_bits=" << max_intermediate_bits
      << " parse=" << parse_seconds * 1e3 << "ms"
      << " instantiation=" << instantiation_seconds * 1e3 << "ms"
      << " qe=" << qe_seconds * 1e3 << "ms"
      << " aggregates=" << aggregate_seconds * 1e3 << "ms";
  if (!plan.empty()) out << " plan={" << plan << "}";
  return out.str();
}

std::string CalcFStats::ToJson() const {
  return JsonObjectBuilder()
      .Add("approximation_calls", approximation_calls)
      .Add("aggregate_calls", aggregate_calls)
      .Add("qe_rounds", qe_rounds)
      .Add("max_intermediate_bits", max_intermediate_bits)
      .Add("parse_seconds", parse_seconds)
      .Add("instantiation_seconds", instantiation_seconds)
      .Add("qe_seconds", qe_seconds)
      .Add("aggregate_seconds", aggregate_seconds)
      .Add("plan", plan)
      .Build();
}

CalcFEvaluator::CalcFEvaluator(RelationLookup lookup, CalcFOptions options)
    : lookup_(std::move(lookup)),
      options_([](CalcFOptions opts) {
        // One governor bounds the whole evaluation unless the caller split
        // the budgets explicitly.
        if (opts.qe.governor == nullptr) opts.qe.governor = opts.governor;
        return opts;
      }(std::move(options))),
      approx_module_(options_.approx_order),
      aggregate_modules_(options_.tolerance, options_.governor) {}

StatusOr<std::shared_ptr<const QFormula>> CalcFEvaluator::EvaluateAggregates(
    const QFormula& formula, CalcFStats* stats) const {
  switch (formula.kind) {
    case QFormula::Kind::kTrue:
    case QFormula::Kind::kFalse:
    case QFormula::Kind::kCompare:
    case QFormula::Kind::kRelation:
      return std::shared_ptr<const QFormula>(
          std::make_shared<QFormula>(formula));
    case QFormula::Kind::kNot: {
      CCDB_ASSIGN_OR_RETURN(auto inner,
                            EvaluateAggregates(*formula.children[0], stats));
      return QFormula::Not(inner);
    }
    case QFormula::Kind::kAnd:
    case QFormula::Kind::kOr: {
      std::vector<std::shared_ptr<const QFormula>> mapped;
      for (const auto& child : formula.children) {
        CCDB_ASSIGN_OR_RETURN(auto m, EvaluateAggregates(*child, stats));
        mapped.push_back(m);
      }
      return QFormula::Connective(formula.kind, std::move(mapped));
    }
    case QFormula::Kind::kExists:
    case QFormula::Kind::kForall: {
      CCDB_ASSIGN_OR_RETURN(auto inner,
                            EvaluateAggregates(*formula.children[0], stats));
      return QFormula::Quantifier(formula.kind, formula.bound_vars, inner);
    }
    case QFormula::Kind::kAggregate: {
      CCDB_FAILPOINT("calcf.aggregate");
      CCDB_CHECK_BUDGET(options_.governor, "calcf.aggregate");
      // Inner stages first (the DAG order of Section 5).
      CCDB_ASSIGN_OR_RETURN(auto body,
                            EvaluateAggregates(*formula.children[0], stats));
      // Free body variables beyond the aggregation variables are
      // PARAMETERS; they are handled by the paper's step 4 (CAD of the
      // parameter space, one aggregate-module call per cell).
      std::vector<std::string> params;
      for (const std::string& name : body->FreeVarNames()) {
        if (std::find(formula.aggregate_vars.begin(),
                      formula.aggregate_vars.end(),
                      name) == formula.aggregate_vars.end()) {
          params.push_back(name);
        }
      }
      if (!params.empty()) {
        if (formula.aggregate == AggregateKind::kEval) {
          return Status::Unimplemented("parameterized EVAL");
        }
        if (formula.output_vars.size() != 1) {
          return Status::InvalidArgument(
              std::string(AggregateKindName(formula.aggregate)) +
              " has exactly one output variable");
        }
        std::vector<std::string> columns = params;
        columns.insert(columns.end(), formula.aggregate_vars.begin(),
                       formula.aggregate_vars.end());
        CCDB_ASSIGN_OR_RETURN(ConstraintRelation rel,
                              EvaluateCore(*body, columns, stats));
        auto agg_start = SteadyClock::now();
        CCDB_ASSIGN_OR_RETURN(
            ConstraintRelation by_cell,
            aggregate_modules_.ApplyParameterized(
                formula.aggregate, rel, static_cast<int>(params.size())));
        stats->aggregate_seconds += SecondsSince(agg_start);
        stats->aggregate_calls += aggregate_modules_.call_count();
        aggregate_modules_.ResetCallCount();
        std::vector<std::string> out_names = params;
        out_names.push_back(formula.output_vars[0]);
        return RelationToQFormula(by_cell, out_names);
      }
      CCDB_ASSIGN_OR_RETURN(
          ConstraintRelation rel,
          EvaluateCore(*body, formula.aggregate_vars, stats));
      ++stats->aggregate_calls;
      if (formula.aggregate == AggregateKind::kEval) {
        if (formula.output_vars.size() != formula.aggregate_vars.size()) {
          return Status::InvalidArgument(
              "EVAL output arity must match the aggregation arity");
        }
        auto agg_start = SteadyClock::now();
        CCDB_ASSIGN_OR_RETURN(ConstraintRelation evaluated,
                              aggregate_modules_.Eval(rel,
                                                      options_.eval_epsilon));
        stats->aggregate_seconds += SecondsSince(agg_start);
        return RelationToQFormula(evaluated, formula.output_vars);
      }
      if (formula.output_vars.size() != 1) {
        return Status::InvalidArgument(
            std::string(AggregateKindName(formula.aggregate)) +
            " has exactly one output variable");
      }
      auto agg_start = SteadyClock::now();
      CCDB_ASSIGN_OR_RETURN(
          AggregateValue value,
          aggregate_modules_.ApplyNumeric(formula.aggregate, rel));
      stats->aggregate_seconds += SecondsSince(agg_start);
      Rational result = value.exact ? value.exact_value
                                    : DyadicFromDouble(value.approx_value);
      return QFormula::Compare(QTerm::Var(formula.output_vars[0]), RelOp::kEq,
                               QTerm::Const(result));
    }
  }
  return Status::Internal("unreachable formula kind");
}

StatusOr<ConstraintRelation> CalcFEvaluator::EvaluateCore(
    const QFormula& formula, const std::vector<std::string>& columns,
    CalcFStats* stats) const {
  // Stage INSTANTIATION (Figure 1): analytic-function rewriting, lowering
  // to variable indices, and substitution of stored relations.
  Formula instantiated = Formula::True();
  int arity = 0;
  {
    CCDB_TRACE_SPAN("calcf.instantiate");
    CCDB_FAILPOINT("calcf.instantiate");
    CCDB_CHECK_BUDGET(options_.governor, "calcf.instantiate");
    auto start = SteadyClock::now();
    CCDB_ASSIGN_OR_RETURN(
        auto function_free,
        RewriteFunctions(formula, &approx_module_, &options_.abase, stats));
    VarEnv env;
    for (const std::string& column : columns) env.Intern(column);
    arity = env.next_index;
    CCDB_ASSIGN_OR_RETURN(Formula lowered, LowerFormula(*function_free, &env));
    for (int v : lowered.FreeVars()) {
      if (v >= arity) {
        return Status::InvalidArgument(
            "query mentions a free variable beyond the output columns");
      }
    }
    CCDB_ASSIGN_OR_RETURN(instantiated,
                          lowered.InstantiateRelations(lookup_));
    stats->instantiation_seconds += SecondsSince(start);
  }

  // Stage QUANTIFIER ELIMINATION.
  auto qe_start = SteadyClock::now();
  QeStats qe_stats;
  CCDB_ASSIGN_OR_RETURN(
      ConstraintRelation rel,
      EliminateQuantifiers(instantiated, arity, options_.qe, &qe_stats));
  stats->qe_seconds += SecondsSince(qe_start);
  ++stats->qe_rounds;
  stats->max_intermediate_bits =
      std::max(stats->max_intermediate_bits, qe_stats.max_intermediate_bits);
  // Nested aggregate stages run earlier, so the last (main-query) round's
  // plan is the one surfaced.
  stats->plan = qe_stats.plan;
  return rel;
}

StatusOr<CalcFResult> CalcFEvaluator::Evaluate(
    const QFormula& query, const std::vector<std::string>& output_order) const {
  CCDB_TRACE_SPAN("calcf.evaluate");
  CCDB_METRIC_COUNT("calcf.queries", 1);
  CalcFResult result;
  CCDB_ASSIGN_OR_RETURN(auto aggregate_free,
                        EvaluateAggregates(query, &result.stats));
  std::vector<std::string> columns =
      output_order.empty() ? query.FreeVarNames() : output_order;
  CCDB_ASSIGN_OR_RETURN(
      result.relation,
      EvaluateCore(*aggregate_free, columns, &result.stats));
  result.column_names = columns;

  // Surface a scalar when the whole query was a single-output aggregate.
  if (query.kind == QFormula::Kind::kAggregate &&
      query.output_vars.size() == 1 && result.relation.tuples().size() == 1 &&
      result.relation.tuples()[0].atoms.size() == 1) {
    const Atom& atom = result.relation.tuples()[0].atoms[0];
    if (atom.op == RelOp::kEq && atom.poly.DegreeIn(0) == 1) {
      auto coeffs = atom.poly.CoefficientsIn(0);
      if (coeffs.size() == 2 && coeffs[1].is_constant() &&
          coeffs[0].is_constant()) {
        result.has_scalar = true;
        result.scalar.exact = true;
        result.scalar.exact_value =
            -coeffs[0].constant_value() / coeffs[1].constant_value();
        result.scalar.approx_value = result.scalar.exact_value.ToDouble();
      }
    }
  }
  return result;
}

StatusOr<CalcFResult> CalcFEvaluator::EvaluateText(
    const std::string& text,
    const std::vector<std::string>& output_order) const {
  auto parse_start = SteadyClock::now();
  CCDB_ASSIGN_OR_RETURN(auto parsed, ParseFormula(text));
  double parse_seconds = SecondsSince(parse_start);
  CCDB_ASSIGN_OR_RETURN(CalcFResult result, Evaluate(*parsed, output_order));
  result.stats.parse_seconds += parse_seconds;
  return result;
}

}  // namespace ccdb
