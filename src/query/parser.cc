#include "query/parser.h"

#include <cctype>

#include "base/logging.h"
#include "base/metrics.h"
#include "base/trace.h"
#include "query/lower.h"

namespace ccdb {

namespace {

enum class TokenKind {
  kEnd,
  kIdent,
  kNumber,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kCaret,
  kRelOp,
  kDefine,  // :=
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  RelOp op = RelOp::kEq;
  std::size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { Advance(); }

  const Token& current() const { return current_; }

  Status Advance() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_]))) {
      ++pos_;
    }
    current_ = Token();
    current_.position = pos_;
    if (pos_ >= text_.size()) {
      current_.kind = TokenKind::kEnd;
      return Status::Ok();
    }
    char c = text_[pos_];
    auto single = [&](TokenKind kind) {
      current_.kind = kind;
      current_.text = std::string(1, c);
      ++pos_;
      return Status::Ok();
    };
    switch (c) {
      case '(':
        return single(TokenKind::kLParen);
      case ')':
        return single(TokenKind::kRParen);
      case '[':
        return single(TokenKind::kLBracket);
      case ']':
        return single(TokenKind::kRBracket);
      case ',':
        return single(TokenKind::kComma);
      case '+':
        return single(TokenKind::kPlus);
      case '-':
        return single(TokenKind::kMinus);
      case '*':
        return single(TokenKind::kStar);
      case '/':
        return single(TokenKind::kSlash);
      case '^':
        return single(TokenKind::kCaret);
      default:
        break;
    }
    if (c == ':') {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
        current_.kind = TokenKind::kDefine;
        current_.text = ":=";
        pos_ += 2;
        return Status::Ok();
      }
      return Status::InvalidArgument("stray ':' at position " +
                                     std::to_string(pos_));
    }
    if (c == '<' || c == '>' || c == '=' || c == '!') {
      current_.kind = TokenKind::kRelOp;
      bool has_eq = pos_ + 1 < text_.size() && text_[pos_ + 1] == '=';
      switch (c) {
        case '<':
          current_.op = has_eq ? RelOp::kLe : RelOp::kLt;
          break;
        case '>':
          current_.op = has_eq ? RelOp::kGe : RelOp::kGt;
          break;
        case '=':
          current_.op = RelOp::kEq;
          has_eq = false;
          break;
        case '!':
          if (!has_eq) {
            return Status::InvalidArgument("stray '!' at position " +
                                           std::to_string(pos_));
          }
          current_.op = RelOp::kNeq;
          break;
      }
      pos_ += has_eq ? 2 : 1;
      return Status::Ok();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.')) {
        ++pos_;
      }
      current_.kind = TokenKind::kNumber;
      current_.text = std::string(text_.substr(start, pos_ - start));
      return Status::Ok();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = TokenKind::kIdent;
      current_.text = std::string(text_.substr(start, pos_ - start));
      return Status::Ok();
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' at position " + std::to_string(pos_));
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_;
};

bool IsKeyword(const Token& token, const char* keyword) {
  return token.kind == TokenKind::kIdent && token.text == keyword;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) {}

  StatusOr<std::shared_ptr<const QFormula>> ParseFormulaToEnd() {
    CCDB_ASSIGN_OR_RETURN(auto formula, ParseOr());
    if (lexer_.current().kind != TokenKind::kEnd) {
      return Status::InvalidArgument(
          "trailing input at position " +
          std::to_string(lexer_.current().position));
    }
    return formula;
  }

  StatusOr<std::shared_ptr<const QTerm>> ParseTermToEnd() {
    CCDB_ASSIGN_OR_RETURN(auto term, ParseSum());
    if (lexer_.current().kind != TokenKind::kEnd) {
      return Status::InvalidArgument(
          "trailing input at position " +
          std::to_string(lexer_.current().position));
    }
    return term;
  }

  StatusOr<ParsedRelationDef> ParseRelationDefToEnd() {
    if (lexer_.current().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected relation name");
    }
    ParsedRelationDef def;
    def.name = lexer_.current().text;
    CCDB_RETURN_IF_ERROR(lexer_.Advance());
    CCDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    while (true) {
      if (lexer_.current().kind != TokenKind::kIdent) {
        return Status::InvalidArgument("expected column variable name");
      }
      def.column_names.push_back(lexer_.current().text);
      CCDB_RETURN_IF_ERROR(lexer_.Advance());
      if (lexer_.current().kind == TokenKind::kComma) {
        CCDB_RETURN_IF_ERROR(lexer_.Advance());
        continue;
      }
      break;
    }
    CCDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    CCDB_RETURN_IF_ERROR(Expect(TokenKind::kDefine, ":="));
    CCDB_ASSIGN_OR_RETURN(auto body, ParseOr());
    if (lexer_.current().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("trailing input in relation definition");
    }
    // Lower to a quantifier-free constraint relation over the columns.
    VarEnv env;
    for (const std::string& column : def.column_names) env.Intern(column);
    int arity = env.next_index;
    CCDB_ASSIGN_OR_RETURN(Formula lowered, LowerFormula(*body, &env));
    if (!lowered.is_quantifier_free() || lowered.has_relation_symbols()) {
      return Status::InvalidArgument(
          "relation definitions must be quantifier-free constraint "
          "formulas");
    }
    for (int v : lowered.FreeVars()) {
      if (v >= arity) {
        return Status::InvalidArgument(
            "relation definition mentions a non-column variable");
      }
    }
    def.relation = ConstraintRelation(arity, ToDnf(lowered));
    return def;
  }

 private:
  // Recursive descent bounds its own stack: pathological inputs such as
  // ten thousand '(' must come back as kInvalidArgument, not overflow.
  static constexpr int kMaxDepth = 200;

  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth(depth) { ++*depth; }
    ~DepthGuard() { --*depth; }
    int* depth;
  };

  Status CheckDepth() const {
    if (depth_ > kMaxDepth) {
      return Status::InvalidArgument(
          "formula nesting deeper than " + std::to_string(kMaxDepth) +
          " levels");
    }
    return Status::Ok();
  }

  Status Expect(TokenKind kind, const char* what) {
    if (lexer_.current().kind != kind) {
      return Status::InvalidArgument(
          std::string("expected '") + what + "' at position " +
          std::to_string(lexer_.current().position));
    }
    return lexer_.Advance();
  }

  StatusOr<std::shared_ptr<const QFormula>> ParseOr() {
    CCDB_ASSIGN_OR_RETURN(auto left, ParseAnd());
    std::vector<std::shared_ptr<const QFormula>> parts{left};
    while (IsKeyword(lexer_.current(), "or")) {
      CCDB_RETURN_IF_ERROR(lexer_.Advance());
      CCDB_ASSIGN_OR_RETURN(auto right, ParseAnd());
      parts.push_back(right);
    }
    if (parts.size() == 1) return parts[0];
    return QFormula::Connective(QFormula::Kind::kOr, std::move(parts));
  }

  StatusOr<std::shared_ptr<const QFormula>> ParseAnd() {
    CCDB_ASSIGN_OR_RETURN(auto left, ParseUnary());
    std::vector<std::shared_ptr<const QFormula>> parts{left};
    while (IsKeyword(lexer_.current(), "and")) {
      CCDB_RETURN_IF_ERROR(lexer_.Advance());
      CCDB_ASSIGN_OR_RETURN(auto right, ParseUnary());
      parts.push_back(right);
    }
    if (parts.size() == 1) return parts[0];
    return QFormula::Connective(QFormula::Kind::kAnd, std::move(parts));
  }

  StatusOr<std::shared_ptr<const QFormula>> ParseUnary() {
    DepthGuard guard(&depth_);
    CCDB_RETURN_IF_ERROR(CheckDepth());
    const Token& token = lexer_.current();
    if (IsKeyword(token, "not")) {
      CCDB_RETURN_IF_ERROR(lexer_.Advance());
      CCDB_ASSIGN_OR_RETURN(auto inner, ParseUnary());
      return QFormula::Not(inner);
    }
    if (IsKeyword(token, "true")) {
      CCDB_RETURN_IF_ERROR(lexer_.Advance());
      return QFormula::True();
    }
    if (IsKeyword(token, "false")) {
      CCDB_RETURN_IF_ERROR(lexer_.Advance());
      return QFormula::False();
    }
    if (IsKeyword(token, "exists") || IsKeyword(token, "forall")) {
      bool is_exists = token.text == "exists";
      CCDB_RETURN_IF_ERROR(lexer_.Advance());
      std::vector<std::string> vars;
      while (lexer_.current().kind == TokenKind::kIdent &&
             !IsKeyword(lexer_.current(), "exists") &&
             !IsKeyword(lexer_.current(), "forall")) {
        vars.push_back(lexer_.current().text);
        CCDB_RETURN_IF_ERROR(lexer_.Advance());
      }
      if (vars.empty()) {
        return Status::InvalidArgument("quantifier without variables");
      }
      CCDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
      CCDB_ASSIGN_OR_RETURN(auto body, ParseOr());
      CCDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      return QFormula::Quantifier(is_exists ? QFormula::Kind::kExists
                                            : QFormula::Kind::kForall,
                                  std::move(vars), body);
    }
    if (token.kind == TokenKind::kIdent) {
      auto aggregate = AggregateKindFromName(token.text);
      if (aggregate.ok()) {
        return ParseAggregate(*aggregate);
      }
    }
    if (token.kind == TokenKind::kLParen) {
      // Could be a parenthesized formula or a parenthesized term starting a
      // comparison. Try formula first by lookahead: save is hard with our
      // one-token lexer, so parse as formula only when it cannot be a term:
      // we instead parse a term and, if a relop follows, continue as a
      // comparison; if 'and'/'or'/')'/end follows and the term was reducible
      // to a formula, reject. Simplest robust rule: parenthesized formulas
      // are only recognized when the contents parse as a formula — do that
      // by snapshotting the lexer.
      Parser snapshot = *this;
      auto as_formula = TryParseParenFormula();
      if (as_formula.ok()) return *as_formula;
      *this = snapshot;
      // Fall through to a comparison whose lhs starts with '('.
    }
    return ParseComparisonOrRelation();
  }

  StatusOr<std::shared_ptr<const QFormula>> TryParseParenFormula() {
    CCDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    CCDB_ASSIGN_OR_RETURN(auto inner, ParseOr());
    CCDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    // If a relational operator follows, the parenthesis was a term.
    if (lexer_.current().kind == TokenKind::kRelOp ||
        lexer_.current().kind == TokenKind::kPlus ||
        lexer_.current().kind == TokenKind::kMinus ||
        lexer_.current().kind == TokenKind::kStar ||
        lexer_.current().kind == TokenKind::kSlash ||
        lexer_.current().kind == TokenKind::kCaret) {
      return Status::InvalidArgument("parenthesized term, not formula");
    }
    return inner;
  }

  StatusOr<std::shared_ptr<const QFormula>> ParseAggregate(
      AggregateKind kind) {
    CCDB_RETURN_IF_ERROR(lexer_.Advance());  // aggregate name
    CCDB_RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "["));
    std::vector<std::string> agg_vars;
    while (true) {
      if (lexer_.current().kind != TokenKind::kIdent) {
        return Status::InvalidArgument("expected aggregation variable");
      }
      agg_vars.push_back(lexer_.current().text);
      CCDB_RETURN_IF_ERROR(lexer_.Advance());
      if (lexer_.current().kind == TokenKind::kComma) {
        CCDB_RETURN_IF_ERROR(lexer_.Advance());
        continue;
      }
      break;
    }
    CCDB_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "]"));
    CCDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    CCDB_ASSIGN_OR_RETURN(auto body, ParseOr());
    CCDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    CCDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    std::vector<std::string> outputs;
    while (true) {
      if (lexer_.current().kind != TokenKind::kIdent) {
        return Status::InvalidArgument("expected aggregate output variable");
      }
      outputs.push_back(lexer_.current().text);
      CCDB_RETURN_IF_ERROR(lexer_.Advance());
      if (lexer_.current().kind == TokenKind::kComma) {
        CCDB_RETURN_IF_ERROR(lexer_.Advance());
        continue;
      }
      break;
    }
    CCDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    return QFormula::Aggregate(kind, std::move(agg_vars), body,
                               std::move(outputs));
  }

  StatusOr<std::shared_ptr<const QFormula>> ParseComparisonOrRelation() {
    // Relation atom: IDENT '(' ... ')' where IDENT is not a function name.
    if (lexer_.current().kind == TokenKind::kIdent &&
        !AnalyticKindFromName(lexer_.current().text).ok()) {
      Parser snapshot = *this;
      std::string name = lexer_.current().text;
      Status advanced = lexer_.Advance();
      if (advanced.ok() && lexer_.current().kind == TokenKind::kLParen) {
        auto args = ParseRelationArgs();
        if (args.ok() && lexer_.current().kind != TokenKind::kRelOp) {
          return QFormula::Relation(std::move(name), std::move(*args));
        }
      }
      *this = snapshot;
    }
    CCDB_ASSIGN_OR_RETURN(auto lhs, ParseSum());
    if (lexer_.current().kind != TokenKind::kRelOp) {
      return Status::InvalidArgument(
          "expected comparison operator at position " +
          std::to_string(lexer_.current().position));
    }
    RelOp op = lexer_.current().op;
    CCDB_RETURN_IF_ERROR(lexer_.Advance());
    CCDB_ASSIGN_OR_RETURN(auto rhs, ParseSum());
    return QFormula::Compare(lhs, op, rhs);
  }

  StatusOr<std::vector<std::shared_ptr<const QTerm>>> ParseRelationArgs() {
    CCDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    std::vector<std::shared_ptr<const QTerm>> args;
    while (true) {
      CCDB_ASSIGN_OR_RETURN(auto arg, ParseSum());
      args.push_back(arg);
      if (lexer_.current().kind == TokenKind::kComma) {
        CCDB_RETURN_IF_ERROR(lexer_.Advance());
        continue;
      }
      break;
    }
    CCDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    return args;
  }

  StatusOr<std::shared_ptr<const QTerm>> ParseSum() {
    CCDB_ASSIGN_OR_RETURN(auto left, ParseProduct());
    while (lexer_.current().kind == TokenKind::kPlus ||
           lexer_.current().kind == TokenKind::kMinus) {
      bool plus = lexer_.current().kind == TokenKind::kPlus;
      CCDB_RETURN_IF_ERROR(lexer_.Advance());
      CCDB_ASSIGN_OR_RETURN(auto right, ParseProduct());
      left = QTerm::Binary(plus ? QTerm::Kind::kAdd : QTerm::Kind::kSub, left,
                           right);
    }
    return left;
  }

  StatusOr<std::shared_ptr<const QTerm>> ParseProduct() {
    CCDB_ASSIGN_OR_RETURN(auto left, ParsePower());
    while (lexer_.current().kind == TokenKind::kStar ||
           lexer_.current().kind == TokenKind::kSlash) {
      bool star = lexer_.current().kind == TokenKind::kStar;
      CCDB_RETURN_IF_ERROR(lexer_.Advance());
      CCDB_ASSIGN_OR_RETURN(auto right, ParsePower());
      left = QTerm::Binary(star ? QTerm::Kind::kMul : QTerm::Kind::kDiv, left,
                           right);
    }
    return left;
  }

  StatusOr<std::shared_ptr<const QTerm>> ParsePower() {
    DepthGuard guard(&depth_);
    CCDB_RETURN_IF_ERROR(CheckDepth());
    // Unary minus binds looser than '^': -x^2 is -(x^2).
    if (lexer_.current().kind == TokenKind::kMinus) {
      CCDB_RETURN_IF_ERROR(lexer_.Advance());
      CCDB_ASSIGN_OR_RETURN(auto inner, ParsePower());
      return QTerm::Neg(inner);
    }
    CCDB_ASSIGN_OR_RETURN(auto base, ParseAtomTerm());
    if (lexer_.current().kind == TokenKind::kCaret) {
      CCDB_RETURN_IF_ERROR(lexer_.Advance());
      if (lexer_.current().kind != TokenKind::kNumber) {
        return Status::InvalidArgument("expected natural exponent after ^");
      }
      CCDB_ASSIGN_OR_RETURN(Rational exponent,
                            Rational::FromString(lexer_.current().text));
      if (!exponent.is_integer() || exponent.sign() < 0 ||
          !exponent.numerator().FitsInt64()) {
        return Status::InvalidArgument("exponent must be a natural number");
      }
      CCDB_RETURN_IF_ERROR(lexer_.Advance());
      return QTerm::Pow(base,
                        static_cast<std::uint32_t>(
                            exponent.numerator().ToInt64()));
    }
    return base;
  }

  StatusOr<std::shared_ptr<const QTerm>> ParseAtomTerm() {
    DepthGuard guard(&depth_);
    CCDB_RETURN_IF_ERROR(CheckDepth());
    const Token& token = lexer_.current();
    switch (token.kind) {
      case TokenKind::kNumber: {
        CCDB_ASSIGN_OR_RETURN(Rational value,
                              Rational::FromString(token.text));
        CCDB_RETURN_IF_ERROR(lexer_.Advance());
        return QTerm::Const(std::move(value));
      }
      case TokenKind::kLParen: {
        CCDB_RETURN_IF_ERROR(lexer_.Advance());
        CCDB_ASSIGN_OR_RETURN(auto inner, ParseSum());
        CCDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
        return inner;
      }
      case TokenKind::kIdent: {
        std::string name = token.text;
        auto func = AnalyticKindFromName(name);
        CCDB_RETURN_IF_ERROR(lexer_.Advance());
        if (func.ok()) {
          CCDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
          CCDB_ASSIGN_OR_RETURN(auto arg, ParseSum());
          CCDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
          return QTerm::Func(*func, arg);
        }
        return QTerm::Var(std::move(name));
      }
      default:
        return Status::InvalidArgument(
            "unexpected token in term at position " +
            std::to_string(token.position));
    }
  }

  Lexer lexer_;
  int depth_ = 0;
};

}  // namespace

StatusOr<std::shared_ptr<const QFormula>> ParseFormula(std::string_view text) {
  CCDB_TRACE_SPAN("parse.formula");
  CCDB_METRIC_COUNT("parser.formulas", 1);
  Parser parser(text);
  return parser.ParseFormulaToEnd();
}

StatusOr<std::shared_ptr<const QTerm>> ParseTerm(std::string_view text) {
  Parser parser(text);
  return parser.ParseTermToEnd();
}

StatusOr<ParsedRelationDef> ParseRelationDef(std::string_view text) {
  CCDB_TRACE_SPAN("parse.relation_def");
  CCDB_METRIC_COUNT("parser.relation_defs", 1);
  Parser parser(text);
  return parser.ParseRelationDefToEnd();
}

}  // namespace ccdb
