#ifndef CCDB_QUERY_CALCF_H_
#define CCDB_QUERY_CALCF_H_

#include <functional>
#include <string>
#include <vector>

#include "agg/aggregates.h"
#include "base/resource.h"
#include "base/status.h"
#include "numeric/approx.h"
#include "qe/qe.h"
#include "query/ast.h"

namespace ccdb {

/// Options of the CALC_F evaluator (paper, Section 5).
struct CalcFOptions {
  /// Order k of the approximation modules (Definition 5.2).
  int approx_order = 8;
  /// The approximation base (a-base): breakpoints splitting the range over
  /// which analytic functions are approximated piecewise. Arguments falling
  /// outside the a-base are not representable (the paper's outer unbounded
  /// pieces cannot carry a polynomial approximation).
  ABase abase = ABase::Uniform(Rational(-8), Rational(8), 16);
  /// Tolerance handed to the aggregate modules.
  double tolerance = 1e-9;
  /// Epsilon for EVAL's solution approximation.
  Rational eval_epsilon = Rational(BigInt(1), BigInt::Pow2(24));
  QeOptions qe;
  /// Resource budget for the whole evaluation: threaded into every QE
  /// round, CAD, and aggregate module the query runs. Null = unlimited.
  /// Borrowed, not owned; also copied into `qe.governor` when that is
  /// unset.
  const ResourceGovernor* governor = nullptr;
};

/// Evaluation statistics (Theorem 5.5: "polynomially many k-order
/// approximation and aggregate computation calls"), extended with the
/// per-stage wall-time breakdown of the Figure-1 pipeline.
struct CalcFStats {
  std::uint64_t approximation_calls = 0;
  std::uint64_t aggregate_calls = 0;
  std::uint64_t qe_rounds = 0;
  std::uint64_t max_intermediate_bits = 0;
  /// Wall time spent parsing the query text (EvaluateText only).
  double parse_seconds = 0.0;
  /// INSTANTIATION: analytic-function rewriting, lowering, and relation
  /// instantiation from the catalog.
  double instantiation_seconds = 0.0;
  /// QUANTIFIER ELIMINATION (all rounds, including nested aggregate
  /// stages).
  double qe_seconds = 0.0;
  /// AGGREGATE EVALUATION: time inside the aggregate modules themselves
  /// (their nested QE rounds are accounted to qe_seconds).
  double aggregate_seconds = 0.0;
  /// One-line summary of the structure-aware query plan of the main QE
  /// round (plan/planner.h); "" when the planner is off.
  std::string plan;

  /// One-line human-readable rendering.
  std::string ToString() const;
  /// JSON object with one field per statistic.
  std::string ToJson() const;
};

/// Result of a CALC_F query: always a constraint relation in closed form
/// (Theorem 5.5); scalar aggregate results are unary singleton relations
/// and additionally surfaced in `scalar`.
struct CalcFResult {
  ConstraintRelation relation;
  /// Names of the output columns, in column order.
  std::vector<std::string> column_names;
  bool has_scalar = false;
  AggregateValue scalar;
  CalcFStats stats;
};

/// Bottom-up CALC_F evaluator (the Section 5 evaluation algorithm):
/// aggregate predicates are evaluated innermost-first over the DAG G_Q;
/// at each stage analytic functions are replaced by piecewise polynomial
/// approximations over the a-base, the QE algorithm produces a
/// quantifier-free constraint relation, and aggregate modules turn
/// relations into values.
class CalcFEvaluator {
 public:
  using RelationLookup =
      std::function<StatusOr<ConstraintRelation>(const std::string&)>;

  CalcFEvaluator(RelationLookup lookup, CalcFOptions options = {});

  /// Evaluates a parsed CALC_F formula. The result relation's columns are
  /// the formula's free variables in first-occurrence order (or as given
  /// by `output_order` when non-empty).
  StatusOr<CalcFResult> Evaluate(
      const QFormula& query,
      const std::vector<std::string>& output_order = {}) const;

  /// Convenience: parse and evaluate.
  StatusOr<CalcFResult> EvaluateText(
      const std::string& text,
      const std::vector<std::string>& output_order = {}) const;

 private:
  // Replaces every aggregate predicate in `formula` by polynomial
  // constraints, evaluating nested aggregates first.
  StatusOr<std::shared_ptr<const QFormula>> EvaluateAggregates(
      const QFormula& formula, CalcFStats* stats) const;

  // Evaluates one aggregate-free formula to a constraint relation over the
  // given output columns.
  StatusOr<ConstraintRelation> EvaluateCore(
      const QFormula& formula, const std::vector<std::string>& columns,
      CalcFStats* stats) const;

  RelationLookup lookup_;
  CalcFOptions options_;
  ApproxModule approx_module_;
  AggregateModules aggregate_modules_;
};

}  // namespace ccdb

#endif  // CCDB_QUERY_CALCF_H_
