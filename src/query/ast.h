#ifndef CCDB_QUERY_AST_H_
#define CCDB_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "agg/aggregates.h"
#include "arith/rational.h"
#include "constraint/atom.h"
#include "numeric/approx.h"

namespace ccdb {

/// Term of the CALC_F surface language: polynomial arithmetic over named
/// variables and rational constants, extended with the analytical functions
/// of Section 5 ("terms are built using arbitrary functions").
struct QTerm {
  enum class Kind {
    kConst,
    kVar,
    kAdd,
    kSub,
    kMul,
    kDiv,   // right operand must lower to a nonzero constant
    kNeg,
    kPow,   // natural exponent
    kFunc,  // analytic function application
  };

  Kind kind = Kind::kConst;
  Rational constant;                       // kConst
  std::string var;                         // kVar
  AnalyticKind func = AnalyticKind::kExp;  // kFunc
  std::uint32_t exponent = 0;              // kPow
  std::shared_ptr<const QTerm> lhs, rhs;   // children

  static std::shared_ptr<const QTerm> Const(Rational value);
  static std::shared_ptr<const QTerm> Var(std::string name);
  static std::shared_ptr<const QTerm> Binary(Kind kind,
                                             std::shared_ptr<const QTerm> l,
                                             std::shared_ptr<const QTerm> r);
  static std::shared_ptr<const QTerm> Neg(std::shared_ptr<const QTerm> t);
  static std::shared_ptr<const QTerm> Pow(std::shared_ptr<const QTerm> t,
                                          std::uint32_t exponent);
  static std::shared_ptr<const QTerm> Func(AnalyticKind kind,
                                           std::shared_ptr<const QTerm> arg);

  /// True iff no analytic function occurs in the subtree.
  bool IsPolynomial() const;

  std::string ToString() const;
};

/// Formula of the CALC_F surface language (paper, Section 5): first-order
/// connectives and quantifiers over comparison atoms and relation atoms,
/// plus aggregate predicates g_y[phi](z).
struct QFormula {
  enum class Kind {
    kTrue,
    kFalse,
    kCompare,    // lhs op rhs
    kRelation,   // R(args...)
    kNot,
    kAnd,
    kOr,
    kExists,
    kForall,
    kAggregate,  // AGG[y...](body)(z...)
  };

  Kind kind = Kind::kTrue;
  // kCompare
  std::shared_ptr<const QTerm> lhs, rhs;
  RelOp op = RelOp::kEq;
  // kRelation
  std::string relation_name;
  std::vector<std::shared_ptr<const QTerm>> relation_args;
  // kNot/kAnd/kOr/kExists/kForall
  std::vector<std::shared_ptr<const QFormula>> children;
  std::vector<std::string> bound_vars;  // quantifiers (one or more at once)
  // kAggregate
  AggregateKind aggregate = AggregateKind::kMin;
  std::vector<std::string> aggregate_vars;  // the y of g_y[phi]
  std::vector<std::string> output_vars;     // the z of ...(z)

  static std::shared_ptr<const QFormula> True();
  static std::shared_ptr<const QFormula> False();
  static std::shared_ptr<const QFormula> Compare(
      std::shared_ptr<const QTerm> lhs, RelOp op,
      std::shared_ptr<const QTerm> rhs);
  static std::shared_ptr<const QFormula> Relation(
      std::string name, std::vector<std::shared_ptr<const QTerm>> args);
  static std::shared_ptr<const QFormula> Not(
      std::shared_ptr<const QFormula> f);
  static std::shared_ptr<const QFormula> Connective(
      Kind kind, std::vector<std::shared_ptr<const QFormula>> children);
  static std::shared_ptr<const QFormula> Quantifier(
      Kind kind, std::vector<std::string> vars,
      std::shared_ptr<const QFormula> body);
  static std::shared_ptr<const QFormula> Aggregate(
      AggregateKind aggregate, std::vector<std::string> vars,
      std::shared_ptr<const QFormula> body, std::vector<std::string> outputs);

  /// Free variable names, in first-occurrence order.
  std::vector<std::string> FreeVarNames() const;

  std::string ToString() const;
};

}  // namespace ccdb

#endif  // CCDB_QUERY_AST_H_
