#ifndef CCDB_QUERY_LOWER_H_
#define CCDB_QUERY_LOWER_H_

#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "constraint/formula.h"
#include "query/ast.h"

namespace ccdb {

/// Name-to-index environment for lowering surface syntax to the core
/// Formula/Polynomial representation.
struct VarEnv {
  std::map<std::string, int> indices;
  int next_index = 0;

  /// Index of `name`, assigning the next free index on first use.
  int Intern(const std::string& name);
  /// Index of `name`; kNotFound if unknown (strict lookups for relation
  /// definitions).
  StatusOr<int> Lookup(const std::string& name) const;
  /// Display names by variable index (the inverse of `indices`), for plan
  /// and relation rendering. Unnamed indices (fresh existentials minted
  /// during lowering) render as "x<i>".
  std::vector<std::string> NamesByIndex() const;
};

/// Lowers a function-free term to a polynomial over the environment's
/// variable indices (interning new names). Fails on analytic functions and
/// on division by non-constants.
StatusOr<Polynomial> LowerPolynomialTerm(const QTerm& term, VarEnv* env);

/// Lowers an aggregate-free, analytic-function-free formula to the core
/// Formula (relation atoms are kept symbolic; arguments must be plain
/// variables or constants — constant arguments are encoded through fresh
/// existential variables).
StatusOr<Formula> LowerFormula(const QFormula& formula, VarEnv* env);

}  // namespace ccdb

#endif  // CCDB_QUERY_LOWER_H_
