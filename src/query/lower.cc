#include "query/lower.h"

#include "base/logging.h"

namespace ccdb {

int VarEnv::Intern(const std::string& name) {
  auto it = indices.find(name);
  if (it != indices.end()) return it->second;
  int index = next_index++;
  indices.emplace(name, index);
  return index;
}

StatusOr<int> VarEnv::Lookup(const std::string& name) const {
  auto it = indices.find(name);
  if (it == indices.end()) {
    return Status::NotFound("unknown variable: " + name);
  }
  return it->second;
}

std::vector<std::string> VarEnv::NamesByIndex() const {
  std::vector<std::string> names(static_cast<std::size_t>(next_index));
  for (const auto& [name, index] : indices) {
    if (index >= 0 && index < next_index) {
      names[static_cast<std::size_t>(index)] = name;
    }
  }
  for (int i = 0; i < next_index; ++i) {
    if (names[static_cast<std::size_t>(i)].empty()) {
      names[static_cast<std::size_t>(i)] = "x" + std::to_string(i);
    }
  }
  return names;
}

StatusOr<Polynomial> LowerPolynomialTerm(const QTerm& term, VarEnv* env) {
  switch (term.kind) {
    case QTerm::Kind::kConst:
      return Polynomial(term.constant);
    case QTerm::Kind::kVar:
      return Polynomial::Var(env->Intern(term.var));
    case QTerm::Kind::kAdd: {
      CCDB_ASSIGN_OR_RETURN(Polynomial l, LowerPolynomialTerm(*term.lhs, env));
      CCDB_ASSIGN_OR_RETURN(Polynomial r, LowerPolynomialTerm(*term.rhs, env));
      return l + r;
    }
    case QTerm::Kind::kSub: {
      CCDB_ASSIGN_OR_RETURN(Polynomial l, LowerPolynomialTerm(*term.lhs, env));
      CCDB_ASSIGN_OR_RETURN(Polynomial r, LowerPolynomialTerm(*term.rhs, env));
      return l - r;
    }
    case QTerm::Kind::kMul: {
      CCDB_ASSIGN_OR_RETURN(Polynomial l, LowerPolynomialTerm(*term.lhs, env));
      CCDB_ASSIGN_OR_RETURN(Polynomial r, LowerPolynomialTerm(*term.rhs, env));
      return l * r;
    }
    case QTerm::Kind::kDiv: {
      CCDB_ASSIGN_OR_RETURN(Polynomial l, LowerPolynomialTerm(*term.lhs, env));
      CCDB_ASSIGN_OR_RETURN(Polynomial r, LowerPolynomialTerm(*term.rhs, env));
      if (!r.is_constant() || r.is_zero()) {
        return Status::InvalidArgument(
            "division only by nonzero constants: " + term.ToString());
      }
      return l.Scale(r.constant_value().Inverse());
    }
    case QTerm::Kind::kNeg: {
      CCDB_ASSIGN_OR_RETURN(Polynomial l, LowerPolynomialTerm(*term.lhs, env));
      return -l;
    }
    case QTerm::Kind::kPow: {
      CCDB_ASSIGN_OR_RETURN(Polynomial l, LowerPolynomialTerm(*term.lhs, env));
      return l.Pow(term.exponent);
    }
    case QTerm::Kind::kFunc:
      return Status::InvalidArgument(
          "analytic function in a polynomial-only context: " +
          term.ToString() + " (approximate it first)");
  }
  return Status::Internal("unreachable term kind");
}

StatusOr<Formula> LowerFormula(const QFormula& formula, VarEnv* env) {
  switch (formula.kind) {
    case QFormula::Kind::kTrue:
      return Formula::True();
    case QFormula::Kind::kFalse:
      return Formula::False();
    case QFormula::Kind::kCompare: {
      CCDB_ASSIGN_OR_RETURN(Polynomial l,
                            LowerPolynomialTerm(*formula.lhs, env));
      CCDB_ASSIGN_OR_RETURN(Polynomial r,
                            LowerPolynomialTerm(*formula.rhs, env));
      return Formula::MakeAtom(Atom(l - r, formula.op));
    }
    case QFormula::Kind::kRelation: {
      std::vector<int> args;
      std::vector<Formula> bindings;
      std::vector<int> fresh_vars;
      for (const auto& arg : formula.relation_args) {
        if (arg->kind == QTerm::Kind::kVar) {
          args.push_back(env->Intern(arg->var));
          continue;
        }
        // Constant or compound argument: bind a fresh variable to it.
        CCDB_ASSIGN_OR_RETURN(Polynomial value, LowerPolynomialTerm(*arg, env));
        int fresh = env->next_index++;
        args.push_back(fresh);
        fresh_vars.push_back(fresh);
        bindings.push_back(Formula::MakeAtom(
            Atom(Polynomial::Var(fresh) - value, RelOp::kEq)));
      }
      Formula atom = Formula::Relation(formula.relation_name, std::move(args));
      if (bindings.empty()) return atom;
      bindings.push_back(std::move(atom));
      Formula body = Formula::And(bindings);
      for (auto it = fresh_vars.rbegin(); it != fresh_vars.rend(); ++it) {
        body = Formula::Exists(*it, std::move(body));
      }
      return body;
    }
    case QFormula::Kind::kNot: {
      CCDB_ASSIGN_OR_RETURN(Formula inner,
                            LowerFormula(*formula.children[0], env));
      return Formula::Not(std::move(inner));
    }
    case QFormula::Kind::kAnd:
    case QFormula::Kind::kOr: {
      std::vector<Formula> lowered;
      for (const auto& child : formula.children) {
        CCDB_ASSIGN_OR_RETURN(Formula f, LowerFormula(*child, env));
        lowered.push_back(std::move(f));
      }
      return formula.kind == QFormula::Kind::kAnd ? Formula::And(lowered)
                                                  : Formula::Or(lowered);
    }
    case QFormula::Kind::kExists:
    case QFormula::Kind::kForall: {
      // Bound names shadow outer names: intern under temporary bindings.
      std::vector<std::pair<std::string, bool>> saved;  // name, had_entry
      std::vector<int> saved_index(formula.bound_vars.size(), -1);
      std::vector<int> bound_indices;
      for (std::size_t i = 0; i < formula.bound_vars.size(); ++i) {
        const std::string& name = formula.bound_vars[i];
        auto it = env->indices.find(name);
        bool had = it != env->indices.end();
        if (had) saved_index[i] = it->second;
        saved.emplace_back(name, had);
        int fresh = env->next_index++;
        env->indices[name] = fresh;
        bound_indices.push_back(fresh);
      }
      auto lowered = LowerFormula(*formula.children[0], env);
      // Restore shadowed bindings.
      for (std::size_t i = formula.bound_vars.size(); i-- > 0;) {
        if (saved[i].second) {
          env->indices[saved[i].first] = saved_index[i];
        } else {
          env->indices.erase(saved[i].first);
        }
      }
      if (!lowered.ok()) return lowered.status();
      Formula body = std::move(*lowered);
      for (auto it = bound_indices.rbegin(); it != bound_indices.rend();
           ++it) {
        body = formula.kind == QFormula::Kind::kExists
                   ? Formula::Exists(*it, std::move(body))
                   : Formula::Forall(*it, std::move(body));
      }
      return body;
    }
    case QFormula::Kind::kAggregate:
      return Status::InvalidArgument(
          "aggregate predicate in a core-formula context: " +
          formula.ToString() + " (evaluate aggregates first)");
  }
  return Status::Internal("unreachable formula kind");
}

}  // namespace ccdb
