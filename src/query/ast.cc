#include "query/ast.h"

#include <algorithm>

#include "base/logging.h"

namespace ccdb {

std::shared_ptr<const QTerm> QTerm::Const(Rational value) {
  auto t = std::make_shared<QTerm>();
  t->kind = Kind::kConst;
  t->constant = std::move(value);
  return t;
}

std::shared_ptr<const QTerm> QTerm::Var(std::string name) {
  auto t = std::make_shared<QTerm>();
  t->kind = Kind::kVar;
  t->var = std::move(name);
  return t;
}

std::shared_ptr<const QTerm> QTerm::Binary(Kind kind,
                                           std::shared_ptr<const QTerm> l,
                                           std::shared_ptr<const QTerm> r) {
  CCDB_CHECK(kind == Kind::kAdd || kind == Kind::kSub || kind == Kind::kMul ||
             kind == Kind::kDiv);
  auto t = std::make_shared<QTerm>();
  t->kind = kind;
  t->lhs = std::move(l);
  t->rhs = std::move(r);
  return t;
}

std::shared_ptr<const QTerm> QTerm::Neg(std::shared_ptr<const QTerm> inner) {
  auto t = std::make_shared<QTerm>();
  t->kind = Kind::kNeg;
  t->lhs = std::move(inner);
  return t;
}

std::shared_ptr<const QTerm> QTerm::Pow(std::shared_ptr<const QTerm> base,
                                        std::uint32_t exponent) {
  auto t = std::make_shared<QTerm>();
  t->kind = Kind::kPow;
  t->lhs = std::move(base);
  t->exponent = exponent;
  return t;
}

std::shared_ptr<const QTerm> QTerm::Func(AnalyticKind kind,
                                         std::shared_ptr<const QTerm> arg) {
  auto t = std::make_shared<QTerm>();
  t->kind = Kind::kFunc;
  t->func = kind;
  t->lhs = std::move(arg);
  return t;
}

bool QTerm::IsPolynomial() const {
  if (kind == Kind::kFunc) return false;
  if (lhs != nullptr && !lhs->IsPolynomial()) return false;
  if (rhs != nullptr && !rhs->IsPolynomial()) return false;
  return true;
}

std::string QTerm::ToString() const {
  switch (kind) {
    case Kind::kConst:
      return constant.ToString();
    case Kind::kVar:
      return var;
    case Kind::kAdd:
      return "(" + lhs->ToString() + " + " + rhs->ToString() + ")";
    case Kind::kSub:
      return "(" + lhs->ToString() + " - " + rhs->ToString() + ")";
    case Kind::kMul:
      return "(" + lhs->ToString() + " * " + rhs->ToString() + ")";
    case Kind::kDiv:
      return "(" + lhs->ToString() + " / " + rhs->ToString() + ")";
    case Kind::kNeg:
      return "-(" + lhs->ToString() + ")";
    case Kind::kPow:
      return lhs->ToString() + "^" + std::to_string(exponent);
    case Kind::kFunc:
      return std::string(AnalyticKindName(func)) + "(" + lhs->ToString() + ")";
  }
  return "?";
}

std::shared_ptr<const QFormula> QFormula::True() {
  auto f = std::make_shared<QFormula>();
  f->kind = Kind::kTrue;
  return f;
}

std::shared_ptr<const QFormula> QFormula::False() {
  auto f = std::make_shared<QFormula>();
  f->kind = Kind::kFalse;
  return f;
}

std::shared_ptr<const QFormula> QFormula::Compare(
    std::shared_ptr<const QTerm> lhs, RelOp op,
    std::shared_ptr<const QTerm> rhs) {
  auto f = std::make_shared<QFormula>();
  f->kind = Kind::kCompare;
  f->lhs = std::move(lhs);
  f->rhs = std::move(rhs);
  f->op = op;
  return f;
}

std::shared_ptr<const QFormula> QFormula::Relation(
    std::string name, std::vector<std::shared_ptr<const QTerm>> args) {
  auto f = std::make_shared<QFormula>();
  f->kind = Kind::kRelation;
  f->relation_name = std::move(name);
  f->relation_args = std::move(args);
  return f;
}

std::shared_ptr<const QFormula> QFormula::Not(
    std::shared_ptr<const QFormula> inner) {
  auto f = std::make_shared<QFormula>();
  f->kind = Kind::kNot;
  f->children.push_back(std::move(inner));
  return f;
}

std::shared_ptr<const QFormula> QFormula::Connective(
    Kind kind, std::vector<std::shared_ptr<const QFormula>> children) {
  CCDB_CHECK(kind == Kind::kAnd || kind == Kind::kOr);
  auto f = std::make_shared<QFormula>();
  f->kind = kind;
  f->children = std::move(children);
  return f;
}

std::shared_ptr<const QFormula> QFormula::Quantifier(
    Kind kind, std::vector<std::string> vars,
    std::shared_ptr<const QFormula> body) {
  CCDB_CHECK(kind == Kind::kExists || kind == Kind::kForall);
  CCDB_CHECK(!vars.empty());
  auto f = std::make_shared<QFormula>();
  f->kind = kind;
  f->bound_vars = std::move(vars);
  f->children.push_back(std::move(body));
  return f;
}

std::shared_ptr<const QFormula> QFormula::Aggregate(
    AggregateKind aggregate, std::vector<std::string> vars,
    std::shared_ptr<const QFormula> body, std::vector<std::string> outputs) {
  auto f = std::make_shared<QFormula>();
  f->kind = Kind::kAggregate;
  f->aggregate = aggregate;
  f->aggregate_vars = std::move(vars);
  f->output_vars = std::move(outputs);
  f->children.push_back(std::move(body));
  return f;
}

namespace {

void CollectTermVars(const QTerm& term, std::vector<std::string>* out) {
  if (term.kind == QTerm::Kind::kVar) {
    if (std::find(out->begin(), out->end(), term.var) == out->end()) {
      out->push_back(term.var);
    }
    return;
  }
  if (term.lhs != nullptr) CollectTermVars(*term.lhs, out);
  if (term.rhs != nullptr) CollectTermVars(*term.rhs, out);
}

void CollectFreeVars(const QFormula& f, std::vector<std::string>* bound,
                     std::vector<std::string>* out) {
  auto add = [&](const std::string& name) {
    if (std::find(bound->begin(), bound->end(), name) != bound->end()) return;
    if (std::find(out->begin(), out->end(), name) == out->end()) {
      out->push_back(name);
    }
  };
  switch (f.kind) {
    case QFormula::Kind::kTrue:
    case QFormula::Kind::kFalse:
      return;
    case QFormula::Kind::kCompare: {
      std::vector<std::string> vars;
      CollectTermVars(*f.lhs, &vars);
      CollectTermVars(*f.rhs, &vars);
      for (const auto& v : vars) add(v);
      return;
    }
    case QFormula::Kind::kRelation: {
      std::vector<std::string> vars;
      for (const auto& arg : f.relation_args) CollectTermVars(*arg, &vars);
      for (const auto& v : vars) add(v);
      return;
    }
    case QFormula::Kind::kNot:
    case QFormula::Kind::kAnd:
    case QFormula::Kind::kOr:
      for (const auto& child : f.children) {
        CollectFreeVars(*child, bound, out);
      }
      return;
    case QFormula::Kind::kExists:
    case QFormula::Kind::kForall: {
      std::size_t added = 0;
      for (const auto& v : f.bound_vars) {
        bound->push_back(v);
        ++added;
      }
      CollectFreeVars(*f.children[0], bound, out);
      bound->resize(bound->size() - added);
      return;
    }
    case QFormula::Kind::kAggregate: {
      // The aggregation variables are bound inside the body; the output
      // variables are free occurrences of the predicate.
      std::size_t added = 0;
      for (const auto& v : f.aggregate_vars) {
        bound->push_back(v);
        ++added;
      }
      CollectFreeVars(*f.children[0], bound, out);
      bound->resize(bound->size() - added);
      for (const auto& v : f.output_vars) add(v);
      return;
    }
  }
}

}  // namespace

std::vector<std::string> QFormula::FreeVarNames() const {
  std::vector<std::string> bound;
  std::vector<std::string> out;
  CollectFreeVars(*this, &bound, &out);
  return out;
}

std::string QFormula::ToString() const {
  switch (kind) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kCompare:
      return lhs->ToString() + " " + RelOpToString(op) + " " +
             rhs->ToString();
    case Kind::kRelation: {
      std::string out = relation_name + "(";
      for (std::size_t i = 0; i < relation_args.size(); ++i) {
        if (i > 0) out += ", ";
        out += relation_args[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kNot:
      return "not (" + children[0]->ToString() + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      std::string op_text = kind == Kind::kAnd ? " and " : " or ";
      std::string out = "(";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += op_text;
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kExists:
    case Kind::kForall: {
      std::string out = kind == Kind::kExists ? "exists" : "forall";
      for (const auto& v : bound_vars) out += " " + v;
      return out + " (" + children[0]->ToString() + ")";
    }
    case Kind::kAggregate: {
      std::string out = AggregateKindName(aggregate);
      out += "[";
      for (std::size_t i = 0; i < aggregate_vars.size(); ++i) {
        if (i > 0) out += ", ";
        out += aggregate_vars[i];
      }
      out += "](" + children[0]->ToString() + ")(";
      for (std::size_t i = 0; i < output_vars.size(); ++i) {
        if (i > 0) out += ", ";
        out += output_vars[i];
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace ccdb
