#ifndef CCDB_QUERY_PARSER_H_
#define CCDB_QUERY_PARSER_H_

#include <string>
#include <string_view>

#include "base/status.h"
#include "query/ast.h"

namespace ccdb {

/// Parses a CALC_F formula. Grammar (precedence low to high):
///
///   formula    := or_f
///   or_f       := and_f ('or' and_f)*
///   and_f      := unary_f ('and' unary_f)*
///   unary_f    := 'not' unary_f
///              | ('exists'|'forall') IDENT+ '(' formula ')'
///              | AGG '[' IDENT (',' IDENT)* ']' '(' formula ')'
///                      '(' IDENT (',' IDENT)* ')'
///              | 'true' | 'false'
///              | '(' formula ')'
///              | IDENT '(' term (',' term)* ')'        -- relation atom
///              | term RELOP term
///   term       := factor (('+'|'-') factor)*
///   factor     := power (('*'|'/') power)*
///   power      := atom ('^' NAT)?
///   atom       := NUMBER | IDENT | FUNC '(' term ')' | '(' term ')'
///              | '-' atom
///   RELOP      := '<=' | '<' | '=' | '!=' | '>=' | '>'
///
/// AGG names: MIN MAX AVG LENGTH SURFACE VOLUME EVAL; FUNC names: exp log
/// sin cos sqrt atan. Example (the paper's Example 5.1):
///
///   SURFACE[x, y](S(x, y) and y <= 9)(z)
StatusOr<std::shared_ptr<const QFormula>> ParseFormula(std::string_view text);

/// Parses a term alone (for tests and relation definitions).
StatusOr<std::shared_ptr<const QTerm>> ParseTerm(std::string_view text);

/// Parses a relation definition "Name(v1, ..., vk) := formula" where the
/// formula is quantifier-free, relation-free, aggregate-free and mentions
/// only the column variables. Returns the named ConstraintRelation.
struct ParsedRelationDef {
  std::string name;
  ConstraintRelation relation;
  std::vector<std::string> column_names;
};
StatusOr<ParsedRelationDef> ParseRelationDef(std::string_view text);

}  // namespace ccdb

#endif  // CCDB_QUERY_PARSER_H_
