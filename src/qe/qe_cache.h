#ifndef CCDB_QE_QE_CACHE_H_
#define CCDB_QE_QE_CACHE_H_

/// The cross-query QE result cache: memoizes EliminateQuantifiers on the
/// interned formula id, the free-variable count, and the algorithm-relevant
/// option bits. Pure memo — a hit returns exactly the relation and stats a
/// recomputation would produce, so output is byte-identical with the cache
/// on or off (the cache-off differential test enforces this).
///
/// Each cached value pins its key formula (a Formula handle), keeping the
/// arena node — and thus its id — alive, so re-running the same query
/// hash-conses to the same node and hits. Lookups are skipped under an
/// armed ResourceGovernor (see base/memo.h); no invalidation is needed
/// because formulas are immutable and relation symbols are instantiated
/// away before elimination.

#include <cstdint>

#include "base/memo.h"
#include "constraint/atom.h"
#include "constraint/formula.h"
#include "qe/qe.h"

namespace ccdb {

struct QeCacheKey {
  std::uint64_t formula_id = 0;
  int num_free_vars = 0;
  /// Packed algorithm options (linear fast path, Thom augmentation,
  /// equation substitution, linear-only, disjunct split, resolved planner
  /// toggle). The governor and pool are excluded: lookups only happen
  /// ungoverned, and results are thread-count independent by the
  /// determinism contract. The PLANNER bit is included because the two
  /// paths guarantee semantic — not syntactic — equivalence in general, so
  /// plan-on and plan-off runs must never share cache entries.
  unsigned option_bits = 0;

  bool operator==(const QeCacheKey& other) const {
    return formula_id == other.formula_id &&
           num_free_vars == other.num_free_vars &&
           option_bits == other.option_bits;
  }
};

struct QeCacheKeyHash {
  std::size_t operator()(const QeCacheKey& key) const {
    std::size_t h = 1469598103934665603ull;
    h = h * 1099511628211ull + static_cast<std::size_t>(key.formula_id);
    h = h * 1099511628211ull + static_cast<std::size_t>(key.num_free_vars);
    h = h * 1099511628211ull + key.option_bits;
    return h;
  }
};

struct QeCacheValue {
  Formula formula;  // pins the interned node (and so the key id) alive
  ConstraintRelation relation;
  QeStats stats;
};

QeCacheKey MakeQeCacheKey(const Formula& formula, int num_free_vars,
                          const QeOptions& options);

/// The process-wide cache. Capacity defaults to 4096 entries and can be
/// set with the CCDB_QE_CACHE_CAPACITY environment variable (read once).
/// Metrics: qe_cache_hits / qe_cache_misses / qe_cache_evictions.
ShardedMemoCache<QeCacheKey, QeCacheValue, QeCacheKeyHash>& QeResultCache();

}  // namespace ccdb

#endif  // CCDB_QE_QE_CACHE_H_
