#ifndef CCDB_QE_QE_H_
#define CCDB_QE_QE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/config.h"
#include "base/resource.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "constraint/atom.h"
#include "constraint/formula.h"

namespace ccdb {

class ProfileSink;

/// Statistics of one quantifier-elimination run, exposed for the paper's
/// complexity experiments (Theorems 3.1, 4.1, 4.2; Lemma 4.4).
struct QeStats {
  std::size_t cad_cells = 0;
  std::size_t projection_factors = 0;
  /// Variable-elimination rounds taken on the linear paths (dense-order /
  /// Fourier-Motzkin), summed over blocks and disjuncts.
  std::uint64_t fm_rounds = 0;
  /// QE-result-cache hits that served this run or its sub-eliminations
  /// (per-block residue, per-disjunct splits). 0 on a fully cold run.
  /// Profiling attribution only: EXCLUDED from ToString()/ToJson(), since
  /// cache temperature is schedule/history-dependent while the canonical
  /// stats rendering replays byte-identically on a memo hit.
  std::uint64_t cache_hits = 0;
  /// Largest coefficient bit length seen in any intermediate polynomial —
  /// the quantity Lemma 4.4 bounds.
  std::uint64_t max_intermediate_bits = 0;
  bool used_linear_path = false;
  /// The linear path additionally recognized a pure dense-order input (the
  /// class DO of Theorem 4.8): elimination stayed inside the dense-order
  /// language.
  bool used_dense_order_path = false;
  bool used_thom_augmentation = false;
  /// One-line summary of the structure-aware query plan when the planner
  /// drove this run ("" on the monolithic path and in sub-eliminations).
  /// Deterministic — depends only on the input formula and options.
  std::string plan;

  /// One-line human-readable rendering.
  std::string ToString() const;
  /// JSON object with one field per statistic.
  std::string ToJson() const;
};

/// PlanToggle (base/config.h) is the three-way switch carried by the
/// option structs below: kAuto follows the process-wide switch (itself
/// defaulted from EngineConfig), kOn/kOff force the feature per call. The
/// executor forces plan=kOff on its per-block sub-eliminations so plan
/// execution reuses the monolithic primitives verbatim.

/// Options for quantifier elimination.
struct QeOptions {
  /// Prefer Fourier-Motzkin when every atom is linear (exact, fast, any
  /// dimension). CAD is used otherwise.
  bool allow_linear_fast_path = true;
  /// Retry solution-formula construction with derivative-closed (Thom)
  /// projection sets when plain sign vectors cannot separate true cells
  /// from false cells.
  bool allow_thom_augmentation = true;
  /// Peel innermost existential quantifiers that have defining linear
  /// equations by exact substitution before running CAD (a large win for
  /// CALC_F's function-approximation rewriting). Disable for ablation.
  bool allow_equation_substitution = true;
  /// Degradation rung: refuse the CAD path entirely (linear systems are
  /// still eliminated exactly by Fourier-Motzkin). A nonlinear input then
  /// fails with kResourceExhausted instead of risking a doubly exponential
  /// CAD — the last rung of ConstraintDatabase::QueryWithPolicy's ladder.
  bool linear_only = false;
  /// Split an all-existential prefix over the top-level disjunction before
  /// the CAD path: exists ȳ (D1 ∨ ... ∨ Dm) is eliminated disjunct by
  /// disjunct (each disjunct builds a CAD over only its own polynomials)
  /// and the per-disjunct answers are unioned in input order. This is both
  /// an algorithmic win (m small CADs instead of one joint CAD) and the
  /// driver's parallel fan-out point. The split is a deterministic
  /// algorithm decision — it does not depend on the thread count.
  bool allow_disjunct_split = true;
  /// Structure-aware planning (plan/planner.h): classify the quantifier
  /// block into fragments, miniscope ∃ into the narrowest scope, split
  /// independent variable components, and dispatch each block to the
  /// cheapest engine (dense-order / Fourier-Motzkin / CAD). kAuto follows
  /// the process-wide CCDB_PLAN switch (default on); kOff is the
  /// monolithic fallback path.
  PlanToggle plan = PlanToggle::kAuto;
  /// Memo layers (QE result cache, resultant/PRS cache, whole-query cache)
  /// for this evaluation: kAuto follows the process-wide switch
  /// (MemoCachesEnabled, the CCDB_QE_CACHE knob), kOn/kOff force it per
  /// call/session. Pure-memo contract holds at every setting: answers are
  /// byte-identical on and off, and even kOn stands down while failpoints
  /// are armed or a governor charges budget.
  PlanToggle memo = PlanToggle::kAuto;
  /// Resource budget charged at every hot-loop head of the elimination
  /// (driver rounds, CAD projection/base/lifting, root isolation,
  /// Fourier-Motzkin tuples). Null = unlimited. Borrowed, not owned.
  const ResourceGovernor* governor = nullptr;
  /// Worker pool for the parallel stages (per-disjunct elimination, CAD
  /// lifting over base-phase cells, cell-truth evaluation). Null = the
  /// process-wide ThreadPool::Shared(), which defaults to serial unless
  /// CCDB_THREADS is set. Borrowed, not owned. Results are merged in
  /// canonical index order, so answers are identical at every thread
  /// count.
  ThreadPool* pool = nullptr;
  /// EXPLAIN ANALYZE sink (base/profile.h): when non-null, each top-level
  /// elimination appends one ProfileNode tree — per plan node (or per
  /// monolithic engine stage) inclusive wall time, CAD cells, FM rounds,
  /// peak bit length, and cache temperature. Observation only: arming it
  /// never changes the answer, and it is excluded from every memo-cache
  /// key. Internal sub-eliminations run with the sink cleared and report
  /// through their parent's node instead. Borrowed, not owned.
  ProfileSink* profile = nullptr;
};

/// The QUANTIFIER ELIMINATION step of the paper's pipeline (Section 2,
/// step 2; Appendix I): eliminates all quantifiers from a relation-free
/// formula whose free variables are exactly 0..num_free_vars-1, producing
/// an equivalent quantifier-free formula in closed form as a union of
/// generalized tuples over those variables.
StatusOr<ConstraintRelation> EliminateQuantifiers(const Formula& formula,
                                                  int num_free_vars,
                                                  const QeOptions& options = {},
                                                  QeStats* stats = nullptr);

/// Decides a sentence (no free variables): the complete decision procedure
/// for the real closed field restricted to our projection operator. This is
/// the |=_QE relation of Section 3 ("any sentence is reduced to either the
/// tautology 0 = 0 or its negation").
StatusOr<bool> DecideSentence(const Formula& sentence,
                              const QeOptions& options = {},
                              QeStats* stats = nullptr);

/// Virtual substitution for defining equations: when EVERY tuple either
/// does not mention `var` or contains an equation p = 0 linear in `var`
/// with a nonzero CONSTANT coefficient, "exists var" is eliminated by
/// exact substitution var := g(rest) and the rewritten tuples replace
/// *tuples (returns true). Otherwise *tuples is left unchanged (returns
/// false). Shared by the monolithic driver's peel loop and the planner's
/// per-block executor so both paths rewrite identically.
bool TrySubstituteInnermostExists(std::vector<GeneralizedTuple>* tuples,
                                  int var);

}  // namespace ccdb

#endif  // CCDB_QE_QE_H_
