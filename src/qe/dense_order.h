#ifndef CCDB_QE_DENSE_ORDER_H_
#define CCDB_QE_DENSE_ORDER_H_

#include <vector>

#include "base/resource.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "constraint/atom.h"

namespace ccdb {

/// Quantifier elimination for DENSE-ORDER constraint databases — the class
/// DO of the paper's Theorem 4.8 ("defined without the symbols + and ·"),
/// following Grumbach & Su's dense-order constraint databases [GS95a].
///
/// Dense-order atoms compare a variable with a variable or a rational
/// constant: x θ y or x θ c with θ ∈ {<, <=, =, !=, >, >=}. The theory of
/// dense linear orders admits a particularly simple elimination — ∃x
/// reduces to the pairwise order facts between x's lower and upper bounds
/// (density supplies the witness; no endpoints are needed) — and it is
/// closed over dense-order atoms, so the active domain never grows: this
/// is why the paper's finite-precision results are exact on DO ("queries
/// with the order relation only are insensitive to exact values").

/// True iff every atom is a dense-order atom: at most two variables, unit
/// coefficients of opposite sign (x - y θ 0), or one variable with unit
/// coefficient and a rational constant (x - c θ 0).
bool IsDenseOrderSystem(const std::vector<GeneralizedTuple>& tuples);

/// Eliminates "exists x_var" from a union of dense-order generalized
/// tuples. The output is again a union of dense-order tuples over the
/// remaining variables (closed form). kInvalidArgument on non-dense-order
/// atoms. A non-null `gov` is charged as in EliminateExistsLinear (stage
/// "qe.fm"); disjuncts fan out across `pool` and merge in input order.
StatusOr<std::vector<GeneralizedTuple>> EliminateExistsDenseOrder(
    const std::vector<GeneralizedTuple>& tuples, int var,
    const ResourceGovernor* gov = nullptr, ThreadPool* pool = nullptr);

}  // namespace ccdb

#endif  // CCDB_QE_DENSE_ORDER_H_
