#include "qe/cad.h"

#include <algorithm>

#include "base/failpoint.h"
#include "base/logging.h"
#include "base/metrics.h"
#include "base/trace.h"
#include "poly/resultant.h"
#include "poly/root_isolation.h"

namespace ccdb {

Rational RationalBetween(const AlgebraicNumber& a, const AlgebraicNumber& b) {
  CCDB_DCHECK(a.Compare(b) < 0);
  // Refine until the isolating intervals separate strictly.
  while (!(a.isolating_interval().hi() < b.isolating_interval().lo())) {
    if (a.is_rational() && b.is_rational()) {
      return Rational::Midpoint(a.rational_value(), b.rational_value());
    }
    Rational wa = a.isolating_interval().Width();
    Rational wb = b.isolating_interval().Width();
    Rational half(BigInt(1), BigInt(2));
    if (!a.is_rational()) a.RefineTo(wa * half);
    if (!b.is_rational()) b.RefineTo(wb * half);
    // For exact endpoints the loop must still terminate: if both became
    // rational the branch above fires next iteration; if one is rational
    // the other's interval shrinks toward a different value.
  }
  return Rational::Midpoint(a.isolating_interval().hi(),
                            b.isolating_interval().lo());
}

std::vector<AlgebraicNumber> MergeRoots(
    std::vector<std::vector<AlgebraicNumber>> root_lists) {
  std::vector<AlgebraicNumber> merged;
  for (auto& list : root_lists) {
    for (AlgebraicNumber& root : list) {
      merged.push_back(std::move(root));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const AlgebraicNumber& x, const AlgebraicNumber& y) {
              return x.Compare(y) < 0;
            });
  std::vector<AlgebraicNumber> distinct;
  for (AlgebraicNumber& root : merged) {
    if (distinct.empty() || distinct.back().Compare(root) != 0) {
      distinct.push_back(std::move(root));
    }
  }
  return distinct;
}

std::vector<AlgebraicNumber> StackCoordinates(
    const std::vector<AlgebraicNumber>& roots) {
  std::vector<AlgebraicNumber> coords;
  if (roots.empty()) {
    coords.emplace_back(Rational(0));
    return coords;
  }
  // Leftmost sector: below the first root.
  coords.emplace_back(roots.front().isolating_interval().lo() - Rational(1));
  for (std::size_t i = 0; i < roots.size(); ++i) {
    coords.push_back(roots[i]);
    if (i + 1 < roots.size()) {
      coords.emplace_back(RationalBetween(roots[i], roots[i + 1]));
    }
  }
  coords.emplace_back(roots.back().isolating_interval().hi() + Rational(1));
  return coords;
}

namespace {

// Collins-style projection of the factor set B (main variable `var`): all
// nonconstant coefficients, discriminants, and pairwise resultants. The
// paper's Appendix I: "polynomials of PROJ(P_i) are formed by addition,
// subtraction, and multiplication of the coefficients ... with the
// technique of subresultants".
StatusOr<std::vector<Polynomial>> Project(const std::vector<Polynomial>& basis,
                                          int var,
                                          const ResourceGovernor* gov) {
  std::vector<Polynomial> out;
  auto add = [&out, gov](Polynomial p) {
    if (p.is_constant()) return;
    Polynomial normalized = p.IntegerNormalized();
    for (const Polynomial& existing : out) {
      if (existing == normalized) return;
    }
    if (gov != nullptr) {
      gov->ChargeBytes(normalized.EstimateBytes());
    }
    out.push_back(std::move(normalized));
  };
  for (const Polynomial& p : basis) {
    CCDB_CHECK_BUDGET(gov, "cad.project");
    for (const Polynomial& coeff : p.CoefficientsIn(var)) {
      add(coeff);
    }
    if (p.DegreeIn(var) >= 2) {
      CCDB_METRIC_COUNT("cad.discriminants", 1);
      CCDB_ASSIGN_OR_RETURN(Polynomial disc, Discriminant(p, var, gov));
      add(std::move(disc));
    }
  }
  for (std::size_t i = 0; i < basis.size(); ++i) {
    for (std::size_t j = i + 1; j < basis.size(); ++j) {
      if (basis[i].DegreeIn(var) >= 1 && basis[j].DegreeIn(var) >= 1) {
        CCDB_CHECK_BUDGET(gov, "cad.project");
        CCDB_METRIC_COUNT("cad.resultants", 1);
        CCDB_ASSIGN_OR_RETURN(Polynomial res,
                              Resultant(basis[i], basis[j], var, gov));
        add(std::move(res));
      }
    }
  }
  return out;
}

// Closes a factor set under derivatives with respect to each factor's main
// variable, then re-extracts a squarefree basis; iterates to a fixpoint
// (bounded by the total degree, which strictly drops along derivatives).
StatusOr<std::vector<Polynomial>> DerivativeClosure(
    std::vector<Polynomial> basis, const ResourceGovernor* gov) {
  for (int guard = 0; guard < 64; ++guard) {
    CCDB_CHECK_BUDGET(gov, "cad.project");
    std::vector<Polynomial> augmented = basis;
    bool grew = false;
    for (const Polynomial& p : basis) {
      int var = p.max_var();
      if (var < 0) continue;
      Polynomial d = p.Derivative(var);
      if (d.is_constant()) continue;
      augmented.push_back(d);
    }
    CCDB_ASSIGN_OR_RETURN(std::vector<Polynomial> next,
                          SquarefreeBasis(augmented, gov));
    if (next.size() == basis.size()) {
      bool same = true;
      for (std::size_t i = 0; i < next.size(); ++i) {
        if (!(next[i] == basis[i])) {
          same = false;
          break;
        }
      }
      if (same) return basis;
    }
    grew = true;
    basis = std::move(next);
    (void)grew;
  }
  return basis;
}

}  // namespace

StatusOr<Cad> Cad::Build(const std::vector<Polynomial>& polys, int num_vars,
                         const CadOptions& options) {
  CCDB_TRACE_SPAN("cad.build");
  CCDB_METRIC_COUNT("cad.builds", 1);
  CCDB_CHECK_MSG(num_vars >= 1, "CAD needs at least one variable");
  Cad cad;
  cad.num_vars_ = num_vars;
  cad.factors_.assign(num_vars, {});

  // Bucket inputs by their main (highest) variable.
  std::vector<std::vector<Polynomial>> level_sets(num_vars);
  for (const Polynomial& p : polys) {
    if (p.is_constant()) continue;
    CCDB_CHECK_MSG(p.max_var() < num_vars,
                   "input polynomial mentions variable beyond num_vars");
    level_sets[p.max_var()].push_back(p);
  }

  const ResourceGovernor* gov = options.governor;

  // Projection phase, top level downwards.
  {
    CCDB_TRACE_SPAN("cad.projection");
    CCDB_FAILPOINT("cad.project");
    for (int level = num_vars - 1; level >= 0; --level) {
      CCDB_CHECK_BUDGET(gov, "cad.project");
      CCDB_ASSIGN_OR_RETURN(std::vector<Polynomial> basis,
                            SquarefreeBasis(level_sets[level], gov));
      if (level < options.derivative_closure_below) {
        CCDB_ASSIGN_OR_RETURN(basis,
                              DerivativeClosure(std::move(basis), gov));
      }
      if (level > 0) {
        CCDB_ASSIGN_OR_RETURN(std::vector<Polynomial> projected_set,
                              Project(basis, level, gov));
        for (Polynomial& projected : projected_set) {
          int target = projected.max_var();
          CCDB_DCHECK(target < level);
          level_sets[target].push_back(std::move(projected));
        }
      }
      cad.factors_[level] = std::move(basis);
    }
  }

  // Base phase: roots of the level-0 factors.
  {
    CCDB_TRACE_SPAN("cad.base");
    CCDB_FAILPOINT("cad.base");
    std::vector<std::vector<AlgebraicNumber>> base_roots;
    for (const Polynomial& p : cad.factors_[0]) {
      CCDB_CHECK_BUDGET(gov, "cad.base");
      auto u = UPoly::FromPolynomial(p, 0);
      CCDB_CHECK(u.ok());
      CCDB_ASSIGN_OR_RETURN(std::vector<AlgebraicNumber> roots,
                            AlgebraicNumber::RootsOf(*u, gov));
      base_roots.push_back(std::move(roots));
    }
    std::vector<AlgebraicNumber> sections = MergeRoots(std::move(base_roots));
    std::vector<AlgebraicNumber> coords = StackCoordinates(sections);
    for (std::size_t i = 0; i < coords.size(); ++i) {
      CadCell cell;
      cell.index.push_back(static_cast<int>(i) + 1);
      cell.sample.Append(std::move(coords[i]));
      cad.roots_.push_back(std::move(cell));
    }
  }

  // Lifting phase. Each stack construction charges one step; every created
  // cell charges tracked bytes, so a byte budget bounds the cell explosion
  // even when individual stacks are cheap.
  std::function<Status(CadCell&, int)> lift = [&](CadCell& cell,
                                                  int level) -> Status {
    if (level >= num_vars) return Status::Ok();
    CCDB_CHECK_BUDGET(gov, "cad.lift");
    std::vector<std::vector<AlgebraicNumber>> stack_roots;
    for (const Polynomial& p : cad.factors_[level]) {
      auto roots = cell.sample.StackRoots(p, gov);
      if (!roots.ok()) {
        if (roots.status().code() == StatusCode::kInvalidArgument) {
          // The factor vanishes identically over this stack: it
          // contributes no sections (its sign is 0 everywhere here).
          continue;
        }
        return roots.status();
      }
      stack_roots.push_back(std::move(*roots));
    }
    std::vector<AlgebraicNumber> merged = MergeRoots(std::move(stack_roots));
    std::vector<AlgebraicNumber> stack_coords = StackCoordinates(merged);
    for (std::size_t i = 0; i < stack_coords.size(); ++i) {
      CadCell child;
      child.index = cell.index;
      child.index.push_back(static_cast<int>(i) + 1);
      child.sample = cell.sample.Extended(std::move(stack_coords[i]));
      if (gov != nullptr) {
        gov->ChargeBytes(sizeof(CadCell) +
                         child.index.size() * sizeof(int) +
                         static_cast<std::size_t>(child.sample.dimension()) *
                             64);
      }
      cell.children.push_back(std::move(child));
    }
    for (CadCell& child : cell.children) {
      CCDB_RETURN_IF_ERROR(lift(child, level + 1));
    }
    return Status::Ok();
  };
  {
    CCDB_TRACE_SPAN("cad.lift");
    CCDB_FAILPOINT("cad.lift");
    // Base-phase cells lift as independent stacks: each subtree writes
    // only its own cells and refines only its own sample coordinates, the
    // projection factor sets are read-only, and the shared governor is
    // atomic. Cells stay index-addressed inside cad.roots_, so the tree
    // is assembled in stack order regardless of completion order.
    CCDB_RETURN_IF_ERROR(ThreadPool::Resolve(options.pool)
                             ->ParallelFor(cad.roots_.size(),
                                           [&](std::size_t i) -> Status {
                                             return lift(cad.roots_[i], 1);
                                           }));
  }
  CCDB_METRIC_COUNT("cad.cells", cad.CountAllCells());
  return cad;
}

std::vector<Polynomial> Cad::FactorsBelow(int dim) const {
  std::vector<Polynomial> out;
  for (int level = 0; level < dim && level < num_vars_; ++level) {
    out.insert(out.end(), factors_[level].begin(), factors_[level].end());
  }
  return out;
}

void Cad::ForEachCellAtDimension(
    int dim, const std::function<void(const CadCell&)>& fn) const {
  std::function<void(const CadCell&)> walk = [&](const CadCell& cell) {
    if (cell.dimension() == dim) {
      fn(cell);
      return;
    }
    for (const CadCell& child : cell.children) walk(child);
  };
  for (const CadCell& cell : roots_) walk(cell);
}

std::size_t Cad::CountLeafCells() const {
  std::size_t count = 0;
  ForEachCellAtDimension(num_vars_,
                         [&count](const CadCell&) { ++count; });
  return count;
}

std::size_t Cad::CountAllCells() const {
  std::size_t count = 0;
  std::function<void(const CadCell&)> walk = [&](const CadCell& cell) {
    ++count;
    for (const CadCell& child : cell.children) walk(child);
  };
  for (const CadCell& cell : roots_) walk(cell);
  return count;
}

}  // namespace ccdb
