#ifndef CCDB_QE_ALGEBRAIC_POINT_H_
#define CCDB_QE_ALGEBRAIC_POINT_H_

#include <vector>

#include "base/resource.h"
#include "base/status.h"
#include "poly/algebraic_number.h"
#include "poly/polynomial.h"

namespace ccdb {

/// A point in R^k whose coordinates are real algebraic numbers, with exact
/// multivariate sign evaluation. This is the sample-point machinery of the
/// CAD algorithm ("for each cell, sample points are exhibited to be able to
/// check the value of the polynomials on the sample points" — paper,
/// Appendix I).
///
/// The key primitive is ValueAt: q(alpha_1,...,alpha_k) is itself a real
/// algebraic number, obtained by eliminating each coordinate's defining
/// polynomial from z - q via iterated resultants; the true value is then
/// identified among the candidate roots by interval refinement. This gives
/// exact sign queries (and exact stack construction) over sample points of
/// ANY level, without nested field extensions.
class AlgebraicPoint {
 public:
  AlgebraicPoint() = default;

  int dimension() const { return static_cast<int>(coords_.size()); }
  const std::vector<AlgebraicNumber>& coords() const { return coords_; }
  const AlgebraicNumber& coord(int i) const { return coords_[i]; }

  /// Extends the point with one more coordinate (variable index
  /// dimension()).
  void Append(AlgebraicNumber value) { coords_.push_back(std::move(value)); }
  /// A copy extended by one coordinate.
  AlgebraicPoint Extended(AlgebraicNumber value) const;

  /// True iff every coordinate is (represented as) rational.
  bool AllRational() const;
  /// The rational coordinates; requires AllRational().
  std::vector<Rational> RationalCoords() const;

  /// Exact sign of p at this point. p may mention variables 0..dim-1 only.
  int SignAt(const Polynomial& p) const;

  /// Exact value of p at this point as an algebraic number.
  AlgebraicNumber ValueAt(const Polynomial& p) const;

  /// The distinct real roots of y -> p(point, y) in increasing order, where
  /// y is the variable with index dimension(). Each root is returned as an
  /// algebraic number over Q (via the iterated-resultant candidate set).
  /// Fails with kNumericalFailure in the degenerate case where the
  /// candidate resultant vanishes identically, and with kInvalidArgument
  /// when p vanishes identically over the stack. A non-null `gov` is
  /// charged during root isolation and candidate filtering and turns
  /// budget trips into kResourceExhausted.
  StatusOr<std::vector<AlgebraicNumber>> StackRoots(
      const Polynomial& p, const ResourceGovernor* gov = nullptr) const;

  /// Rational approximations of all coordinates within epsilon.
  std::vector<Rational> Approximate(const Rational& epsilon) const;

  std::string ToString() const;

 private:
  // Eliminates all non-rational coordinates from q (rational coordinates
  // are substituted exactly). Variable `extra_var`, if >= 0, is kept.
  // Returns a polynomial mentioning only extra_var (or a constant). The
  // iterated resultants charge `gov` when non-null.
  StatusOr<Polynomial> EliminateCoords(Polynomial q, int extra_var,
                                       const ResourceGovernor* gov) const;
  Polynomial EliminateCoords(Polynomial q, int extra_var) const;

  std::vector<AlgebraicNumber> coords_;
};

}  // namespace ccdb

#endif  // CCDB_QE_ALGEBRAIC_POINT_H_
