#include "qe/algebraic_point.h"

#include <algorithm>

#include "base/logging.h"
#include "poly/resultant.h"

namespace ccdb {

AlgebraicPoint AlgebraicPoint::Extended(AlgebraicNumber value) const {
  AlgebraicPoint result = *this;
  result.Append(std::move(value));
  return result;
}

bool AlgebraicPoint::AllRational() const {
  for (const AlgebraicNumber& c : coords_) {
    if (!c.is_rational()) return false;
  }
  return true;
}

std::vector<Rational> AlgebraicPoint::RationalCoords() const {
  std::vector<Rational> out;
  out.reserve(coords_.size());
  for (const AlgebraicNumber& c : coords_) out.push_back(c.rational_value());
  return out;
}

StatusOr<Polynomial> AlgebraicPoint::EliminateCoords(
    Polynomial q, int extra_var, const ResourceGovernor* gov) const {
  // Substitute rational coordinates exactly first (cheap, lowers degrees).
  for (int i = 0; i < dimension(); ++i) {
    if (coords_[i].is_rational() && q.Mentions(i)) {
      q = q.Substitute(i, coords_[i].rational_value());
    }
  }
  // Eliminate remaining algebraic coordinates by resultants with their
  // defining polynomials.
  for (int i = 0; i < dimension(); ++i) {
    if (coords_[i].is_rational() || !q.Mentions(i)) continue;
    CCDB_CHECK_BUDGET(gov, "cad.stack");
    Polynomial defining =
        coords_[i].defining_polynomial().ToPolynomial(i);
    CCDB_ASSIGN_OR_RETURN(q, Resultant(defining, q, i, gov));
    if (q.is_zero()) break;
  }
  // Now q mentions at most extra_var.
  CCDB_DCHECK(q.is_zero() || q.max_var() <= extra_var);
  (void)extra_var;
  return q;
}

Polynomial AlgebraicPoint::EliminateCoords(Polynomial q, int extra_var) const {
  auto result = EliminateCoords(std::move(q), extra_var, nullptr);
  CCDB_CHECK(result.ok());
  return *std::move(result);
}

int AlgebraicPoint::SignAt(const Polynomial& p) const {
  CCDB_CHECK_MSG(p.max_var() < dimension(),
                 "polynomial mentions variables beyond the point dimension");
  // Fast path: substitute rational coordinates; if at most one algebraic
  // coordinate remains, delegate to the univariate machinery.
  Polynomial q = p;
  int algebraic_var = -1;
  int algebraic_count = 0;
  for (int i = 0; i < dimension(); ++i) {
    if (!q.Mentions(i)) continue;
    if (coords_[i].is_rational()) {
      q = q.Substitute(i, coords_[i].rational_value());
    } else {
      algebraic_var = i;
      ++algebraic_count;
    }
  }
  if (q.is_constant()) return q.constant_value().sign();
  if (algebraic_count == 1) {
    auto u = UPoly::FromPolynomial(q, algebraic_var);
    CCDB_CHECK(u.ok());
    return coords_[algebraic_var].SignOfPolyAt(*u);
  }
  // General path: bounded interval refinement, then exact identification.
  std::vector<Interval> box(dimension(), Interval(Rational(0)));
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < dimension(); ++i) {
      if (q.Mentions(i)) {
        if (round > 0) {
          coords_[i].RefineTo(coords_[i].isolating_interval().Width() *
                              Rational(BigInt(1), BigInt::Pow2(16)));
        }
        box[i] = coords_[i].isolating_interval();
      }
    }
    int sign = q.EvaluateInterval(box).CertainSign();
    if (sign != Interval::kAmbiguousSign) return sign;
  }
  return ValueAt(p).Sign();
}

AlgebraicNumber AlgebraicPoint::ValueAt(const Polynomial& p) const {
  CCDB_CHECK(p.max_var() < dimension());
  // T(z) = iterated resultant eliminating every coordinate from z - p; the
  // value p(point) is among the real roots of T.
  int z_var = dimension();
  Polynomial z_minus_p = Polynomial::Var(z_var) - p;
  Polynomial t = EliminateCoords(std::move(z_minus_p), z_var);
  CCDB_CHECK_MSG(!t.is_zero(),
                 "iterated resultant vanished identically in ValueAt");
  auto t_upoly = UPoly::FromPolynomial(t, z_var);
  CCDB_CHECK(t_upoly.ok());
  std::vector<AlgebraicNumber> candidates = AlgebraicNumber::RootsOf(*t_upoly);
  CCDB_CHECK_MSG(!candidates.empty(), "candidate set empty in ValueAt");
  if (candidates.size() == 1) return candidates[0];

  // Identify the true value by shrinking the enclosure of p(point) until it
  // meets exactly one candidate's isolating interval.
  std::vector<Interval> box(dimension(), Interval(Rational(0)));
  Rational shrink(BigInt(1), BigInt(4));
  while (true) {
    for (int i = 0; i < dimension(); ++i) {
      box[i] = coords_[i].isolating_interval();
    }
    Interval value = p.EvaluateInterval(box);
    // Refine candidates away from the value enclosure.
    int hits = 0;
    std::size_t hit_index = 0;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (candidates[c].isolating_interval().Intersects(value)) {
        ++hits;
        hit_index = c;
      }
    }
    if (hits == 1) return candidates[hit_index];
    // Shrink both the point coordinates and the candidate intervals.
    for (int i = 0; i < dimension(); ++i) {
      if (p.Mentions(i) && !coords_[i].is_rational()) {
        coords_[i].RefineTo(coords_[i].isolating_interval().Width() * shrink);
      }
    }
    for (AlgebraicNumber& c : candidates) {
      c.RefineTo(c.isolating_interval().Width() * shrink);
    }
  }
}

StatusOr<std::vector<AlgebraicNumber>> AlgebraicPoint::StackRoots(
    const Polynomial& p, const ResourceGovernor* gov) const {
  int y_var = dimension();
  CCDB_CHECK_MSG(p.max_var() <= y_var,
                 "stack polynomial mentions variables beyond the next level");
  CCDB_CHECK_MSG(p.Mentions(y_var), "stack polynomial must mention the stack variable");

  // Fast path: all coordinates rational.
  if (AllRational()) {
    Polynomial q = p;
    for (int i = 0; i < dimension(); ++i) {
      if (q.Mentions(i)) q = q.Substitute(i, coords_[i].rational_value());
    }
    if (q.is_constant()) {
      if (q.is_zero()) {
        return Status::InvalidArgument(
            "polynomial vanishes identically over the stack");
      }
      return std::vector<AlgebraicNumber>{};
    }
    auto u = UPoly::FromPolynomial(q, y_var);
    CCDB_CHECK(u.ok());
    return AlgebraicNumber::RootsOf(*u, gov);
  }

  // Trim leading coefficients (in y) that vanish at the point to expose the
  // effective degree.
  std::vector<Polynomial> coeffs = p.CoefficientsIn(y_var);
  int effective_degree = static_cast<int>(coeffs.size()) - 1;
  while (effective_degree >= 0 &&
         SignAt(coeffs[effective_degree]) == 0) {
    --effective_degree;
  }
  if (effective_degree < 0) {
    return Status::InvalidArgument(
        "polynomial vanishes identically over the stack");
  }
  if (effective_degree == 0) return std::vector<AlgebraicNumber>{};
  std::vector<Polynomial> trimmed(coeffs.begin(),
                                  coeffs.begin() + effective_degree + 1);
  Polynomial effective = Polynomial::FromCoefficientsIn(y_var, trimmed);

  // Candidate roots: real roots of the iterated resultant.
  CCDB_ASSIGN_OR_RETURN(Polynomial r,
                        EliminateCoords(effective, y_var, gov));
  if (r.is_zero()) {
    return Status::NumericalFailure(
        "degenerate lifting: candidate resultant vanished identically");
  }
  auto r_upoly = UPoly::FromPolynomial(r, y_var);
  CCDB_CHECK(r_upoly.ok());
  CCDB_ASSIGN_OR_RETURN(std::vector<AlgebraicNumber> candidates,
                        AlgebraicNumber::RootsOf(*r_upoly, gov));

  // Keep exactly the candidates where p(point, candidate) == 0, tested
  // exactly via the extended point.
  std::vector<AlgebraicNumber> roots;
  for (AlgebraicNumber& candidate : candidates) {
    CCDB_CHECK_BUDGET(gov, "cad.stack");
    AlgebraicPoint extended = Extended(candidate);
    if (extended.SignAt(effective) == 0) {
      roots.push_back(std::move(candidate));
    }
  }
  return roots;
}

std::vector<Rational> AlgebraicPoint::Approximate(
    const Rational& epsilon) const {
  std::vector<Rational> out;
  out.reserve(coords_.size());
  for (const AlgebraicNumber& c : coords_) {
    out.push_back(c.Approximate(epsilon));
  }
  return out;
}

std::string AlgebraicPoint::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < coords_.size(); ++i) {
    if (i > 0) out += ", ";
    out += coords_[i].ToString();
  }
  return out + ")";
}

}  // namespace ccdb
