#include "qe/qe.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>

#include "base/failpoint.h"
#include "base/logging.h"
#include "base/memo.h"
#include "base/metrics.h"
#include "base/profile.h"
#include "base/trace.h"
#include "plan/fragment.h"
#include "plan/planner.h"
#include "qe/cad.h"
#include "qe/fourier_motzkin.h"
#include "qe/qe_cache.h"

namespace ccdb {

namespace {

Formula TuplesToFormula(const std::vector<GeneralizedTuple>& tuples) {
  std::vector<Formula> disjuncts;
  for (const GeneralizedTuple& tuple : tuples) {
    std::vector<Formula> conjuncts;
    for (const Atom& atom : tuple.atoms) {
      conjuncts.push_back(Formula::MakeAtom(atom));
    }
    disjuncts.push_back(Formula::And(conjuncts));
  }
  return Formula::Or(disjuncts);
}

std::vector<GeneralizedTuple> NegateTuples(
    const std::vector<GeneralizedTuple>& tuples) {
  return ToDnf(Formula::Not(TuplesToFormula(tuples)));
}

std::uint64_t MaxBits(const std::vector<GeneralizedTuple>& tuples) {
  std::uint64_t bits = 0;
  for (const GeneralizedTuple& tuple : tuples) {
    for (const Atom& atom : tuple.atoms) {
      bits = std::max(bits, atom.poly.MaxCoefficientBitLength());
    }
  }
  return bits;
}

std::vector<Polynomial> CollectDistinctPolys(
    const std::vector<GeneralizedTuple>& tuples) {
  std::vector<Polynomial> polys;
  for (const GeneralizedTuple& tuple : tuples) {
    for (const Atom& atom : tuple.atoms) {
      bool seen = false;
      for (const Polynomial& p : polys) {
        if (p == atom.poly) {
          seen = true;
          break;
        }
      }
      if (!seen) polys.push_back(atom.poly);
    }
  }
  return polys;
}

// Truth of a DNF matrix given precomputed polynomial signs.
bool MatrixTruth(const std::vector<GeneralizedTuple>& tuples,
                 const std::vector<Polynomial>& polys,
                 const std::vector<int>& signs) {
  auto sign_of = [&](const Polynomial& p) {
    for (std::size_t i = 0; i < polys.size(); ++i) {
      if (polys[i] == p) return signs[i];
    }
    CCDB_CHECK_MSG(false, "polynomial missing from sign table");
    return 0;
  };
  for (const GeneralizedTuple& tuple : tuples) {
    bool all = true;
    for (const Atom& atom : tuple.atoms) {
      if (!SignSatisfies(sign_of(atom.poly), atom.op)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return tuples.empty() ? false : false;
}

RelOp OpForSign(int sign) {
  if (sign < 0) return RelOp::kLt;
  if (sign > 0) return RelOp::kGt;
  return RelOp::kEq;
}

std::int64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Folds a run's QeStats into a ProfileNode's counter list, skipping names
// the producer already attached (monolithic sub-nodes carry their own) and
// zero values.
void AddQeCounters(ProfileNode* node, const QeStats& s) {
  auto add = [node](const char* name, std::uint64_t v) {
    if (v == 0) return;
    for (const auto& [key, unused] : node->counters) {
      if (key == name) return;
    }
    node->AddCounter(name, v);
  };
  add("cad_cells", s.cad_cells);
  add("projection_factors", s.projection_factors);
  add("fm_rounds", s.fm_rounds);
  add("max_bits", s.max_intermediate_bits);
  add("qe_cache_hits", s.cache_hits);
}

}  // namespace

// Virtual substitution for defining equations: when the innermost
// quantifier is "exists v" and EVERY tuple either does not mention v or
// contains an equation p = 0 that is linear in v with a nonzero CONSTANT
// coefficient, v can be eliminated by exact substitution v := g(rest) —
// no CAD needed. This is what makes queries produced by the CALC_F
// function-approximation rewriting (t = h(x) conjuncts) cheap. Declared in
// qe.h so the planner's per-block executor peels with the identical
// rewrite.
bool TrySubstituteInnermostExists(std::vector<GeneralizedTuple>* tuples,
                                  int var) {
  std::vector<GeneralizedTuple> rewritten;
  for (const GeneralizedTuple& tuple : *tuples) {
    int eq_index = -1;
    Polynomial solved;
    for (std::size_t i = 0; i < tuple.atoms.size(); ++i) {
      const Atom& atom = tuple.atoms[i];
      if (atom.op != RelOp::kEq || atom.poly.DegreeIn(var) != 1) continue;
      auto coeffs = atom.poly.CoefficientsIn(var);
      if (!coeffs[1].is_constant()) continue;
      solved = coeffs[0].Scale(-coeffs[1].constant_value().Inverse());
      eq_index = static_cast<int>(i);
      break;
    }
    if (eq_index < 0) {
      bool mentions = false;
      for (const Atom& atom : tuple.atoms) {
        if (atom.poly.Mentions(var)) {
          mentions = true;
          break;
        }
      }
      if (mentions) return false;  // cannot handle this tuple
      rewritten.push_back(tuple);
      continue;
    }
    GeneralizedTuple substituted;
    for (std::size_t i = 0; i < tuple.atoms.size(); ++i) {
      if (static_cast<int>(i) == eq_index) continue;
      const Atom& atom = tuple.atoms[i];
      substituted.atoms.emplace_back(atom.poly.SubstitutePoly(var, solved),
                                     atom.op);
    }
    if (substituted.SimplifyConstants()) {
      rewritten.push_back(std::move(substituted));
    }
  }
  *tuples = std::move(rewritten);
  return true;
}

namespace {

struct CadEvalResult {
  // Sign vectors (over the free-space factor set) of true / false
  // free-space cells.
  std::vector<std::vector<int>> true_vectors;
  std::vector<std::vector<int>> false_vectors;
  bool sentence_truth = false;  // when num_free_vars == 0
};

// Evaluates the quantifier prefix over a built CAD. prefix[i] quantifies
// variable num_free + i. Free-space cells are evaluated across `pool`:
// each cell's subtree is disjoint (sample coordinates are owned per cell,
// so lazy interval refinement never crosses threads) and the verdicts are
// merged in stack order, keeping the result thread-count independent.
StatusOr<CadEvalResult> EvaluateCad(const Cad& cad,
                                    const std::vector<PrenexBlock>& prefix,
                                    int num_free,
                                    const std::vector<GeneralizedTuple>& matrix,
                                    const std::vector<Polynomial>& matrix_polys,
                                    ThreadPool* pool) {
  int n = cad.num_vars();
  // Recursive truth of a cell.
  std::function<bool(const CadCell&)> truth = [&](const CadCell& cell) -> bool {
    int dim = cell.dimension();
    if (dim == n) {
      std::vector<int> signs;
      signs.reserve(matrix_polys.size());
      for (const Polynomial& p : matrix_polys) {
        signs.push_back(cell.sample.SignAt(p));
      }
      return MatrixTruth(matrix, matrix_polys, signs);
    }
    // Children live at variable index `dim`; its quantifier:
    CCDB_CHECK(dim >= num_free);
    const PrenexBlock& block = prefix[dim - num_free];
    if (block.is_exists) {
      for (const CadCell& child : cell.children) {
        if (truth(child)) return true;
      }
      return false;
    }
    for (const CadCell& child : cell.children) {
      if (!truth(child)) return false;
    }
    return true;
  };

  CadEvalResult result;
  if (num_free == 0) {
    // Sentence: combine the base stack with the first quantifier.
    CCDB_CHECK(!prefix.empty());
    if (prefix[0].is_exists) {
      result.sentence_truth = false;
      for (const CadCell& cell : cad.roots()) {
        if (truth(cell)) {
          result.sentence_truth = true;
          break;
        }
      }
    } else {
      result.sentence_truth = true;
      for (const CadCell& cell : cad.roots()) {
        if (!truth(cell)) {
          result.sentence_truth = false;
          break;
        }
      }
    }
    return result;
  }

  std::vector<Polynomial> free_factors = cad.FactorsBelow(num_free);
  std::vector<const CadCell*> free_cells;
  cad.ForEachCellAtDimension(
      num_free, [&free_cells](const CadCell& cell) { free_cells.push_back(&cell); });
  struct CellVerdict {
    std::vector<int> vector;
    bool truth = false;
  };
  CCDB_ASSIGN_OR_RETURN(
      std::vector<CellVerdict> verdicts,
      ThreadPool::Resolve(pool)->ParallelMap<CellVerdict>(
          free_cells.size(), [&](std::size_t i) -> StatusOr<CellVerdict> {
            const CadCell& cell = *free_cells[i];
            CellVerdict verdict;
            verdict.vector.reserve(free_factors.size());
            for (const Polynomial& p : free_factors) {
              verdict.vector.push_back(cell.sample.SignAt(p));
            }
            verdict.truth = truth(cell);
            return verdict;
          }));
  for (CellVerdict& verdict : verdicts) {
    if (verdict.truth) {
      result.true_vectors.push_back(std::move(verdict.vector));
    } else {
      result.false_vectors.push_back(std::move(verdict.vector));
    }
  }
  return result;
}

// Folds a finished run's QeStats into the global metrics registry on every
// exit path (including errors).
struct QeMetricsFolder {
  const QeStats* s;
  std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  ~QeMetricsFolder() {
    CCDB_METRIC_COUNT("qe.calls", 1);
    if (s->used_linear_path) CCDB_METRIC_COUNT("qe.linear_path", 1);
    if (s->used_dense_order_path) CCDB_METRIC_COUNT("qe.dense_order_path", 1);
    if (s->used_thom_augmentation) CCDB_METRIC_COUNT("qe.thom_augmentations", 1);
    CCDB_METRIC_COUNT("qe.cad.cells", s->cad_cells);
    CCDB_METRIC_COUNT("qe.cad.projection_factors", s->projection_factors);
    CCDB_METRIC_MAX("qe.max_intermediate_bits", s->max_intermediate_bits);
    auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    CCDB_METRIC_HISTOGRAM("qe.eliminate.us",
                          static_cast<std::uint64_t>(micros));
  }
};

}  // namespace

std::string QeStats::ToString() const {
  std::ostringstream out;
  out << "cad_cells=" << cad_cells
      << " projection_factors=" << projection_factors
      << " fm_rounds=" << fm_rounds
      << " max_intermediate_bits=" << max_intermediate_bits
      << " linear_path=" << (used_linear_path ? "yes" : "no")
      << " dense_order_path=" << (used_dense_order_path ? "yes" : "no")
      << " thom_augmentation=" << (used_thom_augmentation ? "yes" : "no");
  if (!plan.empty()) out << " plan={" << plan << "}";
  return out.str();
}

std::string QeStats::ToJson() const {
  return JsonObjectBuilder()
      .Add("cad_cells", static_cast<std::uint64_t>(cad_cells))
      .Add("projection_factors", static_cast<std::uint64_t>(projection_factors))
      .Add("fm_rounds", fm_rounds)
      .Add("max_intermediate_bits", max_intermediate_bits)
      .Add("used_linear_path", used_linear_path)
      .Add("used_dense_order_path", used_dense_order_path)
      .Add("used_thom_augmentation", used_thom_augmentation)
      .Add("plan", plan)
      .Build();
}

// The elimination algorithm proper. The public EliminateQuantifiers wraps
// this with the failpoint/budget prologue, the QE result cache, and the
// profile-root bookkeeping. `prof` (nullable) receives this run's
// attribution subtree; options.profile is already cleared by the wrapper,
// so recursive EliminateQuantifiers calls below never double-append roots
// to the sink.
static StatusOr<ConstraintRelation> EliminateQuantifiersUncached(
    const Formula& formula, int num_free_vars, const QeOptions& options,
    QeStats* s, ProfileNode* prof) {
  const ResourceGovernor* gov = options.governor;

  // Structure-aware planning (plan/planner.h): classify, miniscope, split
  // into independent blocks, dispatch each block to its cheapest engine.
  // The plan executor forces kOff on its sub-eliminations, so this branch
  // is taken exactly once per top-level run.
  if (PlannerResolved(options)) {
    QueryPlan plan = GetOrBuildPlan(formula, num_free_vars, options);
    s->plan = plan.Summary();
    return ExecutePlan(plan, options, s, prof);
  }

  std::set<int> all_vars = formula.AllVars();
  int next_fresh = num_free_vars;
  if (!all_vars.empty()) {
    next_fresh = std::max(next_fresh, *all_vars.rbegin() + 1);
  }
  PrenexForm prenex = ToPrenex(formula, &next_fresh);

  // Compact the quantified variables to num_free_vars, num_free_vars+1, ...
  // in prefix order (outermost first). ToPrenex hands out strictly
  // increasing fresh indices in prefix order, so renaming in order is safe.
  Formula matrix_formula = prenex.matrix;
  for (std::size_t i = 0; i < prenex.prefix.size(); ++i) {
    int target = num_free_vars + static_cast<int>(i);
    if (prenex.prefix[i].var != target) {
      matrix_formula =
          matrix_formula.RenameFreeVar(prenex.prefix[i].var, target);
      prenex.prefix[i].var = target;
    }
  }
  int q = static_cast<int>(prenex.prefix.size());
  int n = num_free_vars + q;

  std::vector<GeneralizedTuple> tuples = ToDnf(matrix_formula);
  s->max_intermediate_bits = MaxBits(tuples);

  if (q == 0) {
    if (prof != nullptr) prof->label = "qe.quantifier_free";
    return ConstraintRelation(num_free_vars, SimplifyTuples(std::move(tuples)));
  }

  if (n == 0) {
    // Sentence with no variables at all.
    if (prof != nullptr) prof->label = "qe.sentence";
    bool truth = matrix_formula.EvaluateAt({});
    ConstraintRelation rel(0);
    if (truth) rel.AddTuple(GeneralizedTuple());
    return rel;
  }

  // Peel innermost existential quantifiers that have defining equations.
  std::uint64_t peeled = 0;
  while (options.allow_equation_substitution && q > 0 &&
         prenex.prefix.back().is_exists &&
         TrySubstituteInnermostExists(&tuples, num_free_vars + q - 1)) {
    CCDB_CHECK_BUDGET(gov, "qe.drive");
    CCDB_METRIC_COUNT("qe.equation_substitutions", 1);
    ++peeled;
    prenex.prefix.pop_back();
    --q;
    n = num_free_vars + q;
    tuples = SimplifyTuples(std::move(tuples));
    s->max_intermediate_bits =
        std::max(s->max_intermediate_bits, MaxBits(tuples));
  }
  if (prof != nullptr && peeled > 0) prof->AddCounter("substitutions", peeled);
  if (q == 0) {
    if (prof != nullptr) prof->label = "qe.substituted";
    return ConstraintRelation(num_free_vars, SimplifyTuples(std::move(tuples)));
  }

  // Linear fast path: Fourier-Motzkin, innermost quantifier first. The
  // shared fragment classifier (plan/fragment.h) replaces the previous
  // per-engine IsLinearSystem/IsDenseOrderSystem probes.
  const Fragment matrix_fragment = options.allow_linear_fast_path
                                       ? ClassifyTuples(tuples)
                                       : Fragment::kPolynomial;
  if (matrix_fragment != Fragment::kPolynomial) {
    CCDB_TRACE_SPAN("qe.fourier_motzkin");
    if (prof != nullptr) prof->label = "qe.fourier_motzkin";
    s->used_linear_path = true;
    s->used_dense_order_path = matrix_fragment == Fragment::kDenseOrder;
    for (int i = q - 1; i >= 0; --i) {
      CCDB_CHECK_BUDGET(gov, "qe.fm");
      ++s->fm_rounds;
      int var = num_free_vars + i;
      if (prenex.prefix[i].is_exists) {
        CCDB_ASSIGN_OR_RETURN(
            tuples, EliminateExistsLinear(tuples, var, gov, options.pool));
      } else {
        std::vector<GeneralizedTuple> negated = NegateTuples(tuples);
        CCDB_ASSIGN_OR_RETURN(
            negated, EliminateExistsLinear(negated, var, gov, options.pool));
        tuples = NegateTuples(negated);
      }
      s->max_intermediate_bits =
          std::max(s->max_intermediate_bits, MaxBits(tuples));
    }
    return ConstraintRelation(num_free_vars, SimplifyTuples(std::move(tuples)));
  }

  // CAD path.
  if (options.linear_only) {
    // Degradation rung: the caller asked for the linear fragment only.
    // Refusing CAD with kResourceExhausted lets policy ladders treat "this
    // rung cannot answer" uniformly with budget trips.
    return Status::ResourceExhausted(
        "stage=qe.drive reason=linear_only: query needs CAD but the policy "
        "restricts this attempt to the linear fragment");
  }
  // Disjunct-wise elimination (the driver's parallel fan-out point): an
  // all-existential prefix distributes over the top-level union, so
  // exists ȳ (D1 ∨ ... ∨ Dm) is answered by m independent eliminations,
  // each building a CAD over only its own polynomials. Slots are merged
  // in disjunct order — the split and the merge order are algorithm
  // decisions, not scheduling artifacts, so the answer is identical at
  // every thread count (and with the split disabled, semantically so).
  bool all_exists = true;
  for (const PrenexBlock& block : prenex.prefix) {
    if (!block.is_exists) all_exists = false;
  }
  if (options.allow_disjunct_split && all_exists && tuples.size() > 1) {
    CCDB_TRACE_SPAN("qe.disjunct_split");
    CCDB_METRIC_COUNT("qe.disjunct_splits", 1);
    const bool profiling = prof != nullptr;
    struct DisjunctSlot {
      ConstraintRelation rel;
      QeStats stats;
      std::int64_t us = 0;
    };
    CCDB_ASSIGN_OR_RETURN(
        std::vector<DisjunctSlot> slots,
        ThreadPool::Resolve(options.pool)->ParallelMap<DisjunctSlot>(
            tuples.size(), [&](std::size_t i) -> StatusOr<DisjunctSlot> {
              CCDB_CHECK_BUDGET(gov, "qe.drive");
              auto slot_start = std::chrono::steady_clock::now();
              std::vector<Formula> atoms;
              atoms.reserve(tuples[i].atoms.size());
              for (const Atom& atom : tuples[i].atoms) {
                atoms.push_back(Formula::MakeAtom(atom));
              }
              Formula disjunct = Formula::And(atoms);
              for (int v = n - 1; v >= num_free_vars; --v) {
                disjunct = Formula::Exists(v, std::move(disjunct));
              }
              DisjunctSlot slot;
              CCDB_ASSIGN_OR_RETURN(
                  slot.rel, EliminateQuantifiers(disjunct, num_free_vars,
                                                 options, &slot.stats));
              if (profiling) slot.us = ElapsedUs(slot_start);
              return slot;
            }));
    ConstraintRelation rel(num_free_vars);
    if (profiling) prof->label = "qe.disjunct_split";
    for (std::size_t i = 0; i < slots.size(); ++i) {
      DisjunctSlot& slot = slots[i];
      s->cad_cells += slot.stats.cad_cells;
      s->projection_factors += slot.stats.projection_factors;
      s->fm_rounds += slot.stats.fm_rounds;
      s->cache_hits += slot.stats.cache_hits;
      s->max_intermediate_bits =
          std::max(s->max_intermediate_bits, slot.stats.max_intermediate_bits);
      s->used_linear_path |= slot.stats.used_linear_path;
      s->used_dense_order_path |= slot.stats.used_dense_order_path;
      s->used_thom_augmentation |= slot.stats.used_thom_augmentation;
      if (profiling) {
        // Children in disjunct order — the tree shape is a plan decision,
        // not a scheduling artifact.
        ProfileNode child;
        child.label = "disjunct[" + std::to_string(i) + "]";
        child.inclusive_us = slot.us;
        AddQeCounters(&child, slot.stats);
        child.AddCounter("tuples_out", slot.rel.tuples().size());
        prof->children.push_back(std::move(child));
      }
      for (GeneralizedTuple& tuple : *slot.rel.mutable_tuples()) {
        rel.AddTuple(std::move(tuple));
      }
    }
    *rel.mutable_tuples() = SimplifyTuples(std::move(*rel.mutable_tuples()));
    return rel;
  }

  CCDB_TRACE_SPAN("qe.cad_path");
  if (prof != nullptr) prof->label = "qe.cad";
  std::vector<Polynomial> matrix_polys = CollectDistinctPolys(tuples);
  for (int attempt = 0; attempt < 2; ++attempt) {
    CCDB_CHECK_BUDGET(gov, "qe.drive");
    CadOptions cad_options;
    cad_options.derivative_closure_below = attempt == 0 ? 0 : num_free_vars;
    cad_options.governor = gov;
    cad_options.pool = options.pool;
    if (attempt == 1) {
      s->used_thom_augmentation = true;
      CCDB_LOG(INFO) << "QE: retrying CAD with Thom-derivative augmentation "
                        "(plain sign vectors could not separate cells)";
    }
    CCDB_ASSIGN_OR_RETURN(Cad cad,
                          Cad::Build(matrix_polys, n, cad_options));
    s->cad_cells = cad.CountAllCells();
    s->projection_factors = 0;
    for (int level = 0; level < n; ++level) {
      for (const Polynomial& p : cad.factors_at_level(level)) {
        s->projection_factors++;
        s->max_intermediate_bits =
            std::max(s->max_intermediate_bits, p.MaxCoefficientBitLength());
      }
    }

    CCDB_ASSIGN_OR_RETURN(
        CadEvalResult eval,
        EvaluateCad(cad, prenex.prefix, num_free_vars, tuples, matrix_polys,
                    options.pool));

    if (num_free_vars == 0) {
      ConstraintRelation rel(0);
      if (eval.sentence_truth) rel.AddTuple(GeneralizedTuple());
      return rel;
    }

    // Solution formula construction: distinct sign vectors of true cells,
    // valid when no false cell shares a vector with a true cell.
    bool collision = false;
    for (const auto& tv : eval.true_vectors) {
      for (const auto& fv : eval.false_vectors) {
        if (tv == fv) {
          collision = true;
          break;
        }
      }
      if (collision) break;
    }
    if (collision) {
      if (attempt == 0 && options.allow_thom_augmentation) continue;
      return Status::Internal(
          "solution formula construction failed: a true and a false cell "
          "share a sign vector even after Thom augmentation");
    }

    std::vector<Polynomial> free_factors = cad.FactorsBelow(num_free_vars);
    std::vector<std::vector<int>> distinct_vectors;
    for (const auto& tv : eval.true_vectors) {
      bool seen = false;
      for (const auto& existing : distinct_vectors) {
        if (existing == tv) {
          seen = true;
          break;
        }
      }
      if (!seen) distinct_vectors.push_back(tv);
    }
    ConstraintRelation rel(num_free_vars);
    for (const auto& vec : distinct_vectors) {
      GeneralizedTuple tuple;
      for (std::size_t i = 0; i < free_factors.size(); ++i) {
        tuple.atoms.emplace_back(free_factors[i], OpForSign(vec[i]));
      }
      if (tuple.atoms.empty()) {
        // No factors below the free space: the whole free space is true.
        rel.AddTuple(GeneralizedTuple());
        continue;
      }
      rel.AddTuple(std::move(tuple));
    }
    for (const GeneralizedTuple& tuple : rel.tuples()) {
      for (const Atom& atom : tuple.atoms) {
        s->max_intermediate_bits = std::max(
            s->max_intermediate_bits, atom.poly.MaxCoefficientBitLength());
      }
    }
    return rel;
  }
  return Status::Internal("unreachable: CAD attempts exhausted");
}

StatusOr<ConstraintRelation> EliminateQuantifiers(const Formula& formula,
                                                  int num_free_vars,
                                                  const QeOptions& options,
                                                  QeStats* stats) {
  CCDB_TRACE_SPAN("qe.eliminate");
  QeStats local_stats;
  QeStats* s = stats != nullptr ? stats : &local_stats;
  *s = QeStats();
  QeMetricsFolder folder{s};
  const ResourceGovernor* gov = options.governor;
  CCDB_FAILPOINT("qe.drive");
  CCDB_CHECK_BUDGET(gov, "qe.drive");

  CCDB_CHECK_MSG(!formula.has_relation_symbols(),
                 "instantiate relations before quantifier elimination");
  for (int v : formula.FreeVars()) {
    CCDB_CHECK_MSG(v < num_free_vars,
                   "free variable " << v << " beyond arity " << num_free_vars);
  }

  // Profile bookkeeping (observation only — arming a sink never changes
  // the answer, and the sink pointer is excluded from every cache key).
  // The sink is cleared from the options passed down so recursive calls
  // report through this run's tree instead of appending their own roots.
  ProfileSink* sink = options.profile;
  const auto prof_start = std::chrono::steady_clock::now();
  QeOptions inner = options;
  inner.profile = nullptr;

  // Memoized path: only ungoverned runs may SKIP work via the cache, so
  // governed budget charging and degradation behaviour never depend on
  // cache temperature. (The failpoint above fires either way.) The cache
  // is a pure memo over the interned formula id — a hit is byte-identical
  // to recomputation.
  const bool use_cache = gov == nullptr && MemoCachesEnabledFor(options.memo);
  QeCacheKey key;
  if (use_cache) {
    key = MakeQeCacheKey(formula, num_free_vars, options);
    QeCacheValue cached;
    if (QeResultCache().Lookup(key, &cached)) {
      *s = cached.stats;
      s->cache_hits += 1;
      if (sink != nullptr) {
        ProfileNode node;
        node.label = "qe[cached]";
        node.inclusive_us = ElapsedUs(prof_start);
        AddQeCounters(&node, *s);
        node.AddCounter("tuples_out", cached.relation.tuples().size());
        sink->Add(std::move(node));
      }
      return cached.relation;
    }
  }
  ProfileNode prof_root;
  CCDB_ASSIGN_OR_RETURN(
      ConstraintRelation result,
      EliminateQuantifiersUncached(formula, num_free_vars, inner, s,
                                   sink != nullptr ? &prof_root : nullptr));
  // Canonical presentation: sorting the union of canonicalized disjuncts
  // makes the answer independent of derivation order — the anchor of the
  // planner-on/planner-off byte-identity contract (and a no-op for
  // semantics, since a union is order-insensitive).
  std::sort(result.mutable_tuples()->begin(), result.mutable_tuples()->end());
  if (use_cache) {
    // The stored stats describe the computation itself; the hit count is
    // zeroed so a replay reports exactly the hits it newly incurs.
    QeStats stored = *s;
    stored.cache_hits = 0;
    QeResultCache().Insert(key, QeCacheValue{formula, result, stored});
  }
  if (sink != nullptr) {
    if (prof_root.label.empty()) prof_root.label = "qe";
    prof_root.inclusive_us = ElapsedUs(prof_start);
    AddQeCounters(&prof_root, *s);
    if (!prof_root.HasCounter("tuples_out")) {
      prof_root.AddCounter("tuples_out", result.tuples().size());
    }
    sink->Add(std::move(prof_root));
  }
  return result;
}

StatusOr<bool> DecideSentence(const Formula& sentence, const QeOptions& options,
                              QeStats* stats) {
  CCDB_ASSIGN_OR_RETURN(ConstraintRelation rel,
                        EliminateQuantifiers(sentence, 0, options, stats));
  return !rel.is_empty_syntactically();
}

}  // namespace ccdb
