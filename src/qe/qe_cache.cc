#include "qe/qe_cache.h"

#include "base/config.h"
#include "plan/planner.h"

namespace ccdb {

QeCacheKey MakeQeCacheKey(const Formula& formula, int num_free_vars,
                          const QeOptions& options) {
  QeCacheKey key;
  key.formula_id = formula.id();
  key.num_free_vars = num_free_vars;
  key.option_bits = (options.allow_linear_fast_path ? 1u : 0u) |
                    (options.allow_thom_augmentation ? 2u : 0u) |
                    (options.allow_equation_substitution ? 4u : 0u) |
                    (options.linear_only ? 8u : 0u) |
                    (options.allow_disjunct_split ? 16u : 0u) |
                    (PlannerResolved(options) ? 32u : 0u);
  return key;
}

ShardedMemoCache<QeCacheKey, QeCacheValue, QeCacheKeyHash>& QeResultCache() {
  static auto* cache =
      new ShardedMemoCache<QeCacheKey, QeCacheValue, QeCacheKeyHash>(
          "qe_cache", EngineConfig::Process().qe_cache_capacity);
  return *cache;
}

}  // namespace ccdb
