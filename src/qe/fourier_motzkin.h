#ifndef CCDB_QE_FOURIER_MOTZKIN_H_
#define CCDB_QE_FOURIER_MOTZKIN_H_

#include <vector>

#include "base/resource.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "constraint/atom.h"

namespace ccdb {

/// True iff every atom of every tuple is linear (total degree <= 1).
bool IsLinearSystem(const std::vector<GeneralizedTuple>& tuples);

/// Eliminates "exists x_var" from a union of generalized tuples with LINEAR
/// atoms by Fourier-Motzkin elimination (existential quantification
/// distributes over the union). Equations are used for exact substitution;
/// disequalities split into strict inequalities. Returns the resulting
/// union (may be larger). Fails with kInvalidArgument on nonlinear atoms.
///
/// This is the quantifier-elimination procedure for the linear fragment
/// FO(<=, +, 0, 1) of Theorem 4.2; its intermediate coefficient bit lengths
/// grow only linearly in the input bit length (Lemma 4.4 for the linear
/// case), which bench E6 measures.
/// A non-null `gov` is charged once per eliminated tuple and per generated
/// cross constraint (stage "qe.fm"); on a budget trip the round fails with
/// kResourceExhausted.
///
/// Disjuncts are eliminated independently across `pool` (null = the shared
/// pool) and merged in input order, so the output is identical at every
/// thread count.
StatusOr<std::vector<GeneralizedTuple>> EliminateExistsLinear(
    const std::vector<GeneralizedTuple>& tuples, int var,
    const ResourceGovernor* gov = nullptr, ThreadPool* pool = nullptr);

/// Removes syntactically redundant atoms and trivially false tuples.
std::vector<GeneralizedTuple> SimplifyTuples(
    std::vector<GeneralizedTuple> tuples);

}  // namespace ccdb

#endif  // CCDB_QE_FOURIER_MOTZKIN_H_
