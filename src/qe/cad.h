#ifndef CCDB_QE_CAD_H_
#define CCDB_QE_CAD_H_

#include <functional>
#include <vector>

#include "base/resource.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "poly/polynomial.h"
#include "qe/algebraic_point.h"

namespace ccdb {

/// One cell of a cylindrical algebraic decomposition.
///
/// A cell at tree depth d (dimension d+1) is identified by its Collins
/// index path: index[i] is the 1-based position of the cell in its stack at
/// level i — odd positions are sectors (open intervals), even positions are
/// sections (root surfaces). `sample` holds one exact algebraic coordinate
/// per level ("for each cell, sample points are exhibited", paper
/// Appendix I).
struct CadCell {
  std::vector<int> index;
  AlgebraicPoint sample;
  std::vector<CadCell> children;

  int dimension() const { return static_cast<int>(index.size()); }
  bool IsSectionAt(int level) const { return index[level] % 2 == 0; }
};

/// Options controlling CAD construction.
struct CadOptions {
  /// Levels [0, derivative_closure_below) have their projection factor sets
  /// closed under main-variable derivatives before the base/lifting phases.
  /// Used by solution-formula construction (Thom-style cell discrimination).
  int derivative_closure_below = 0;
  /// Resource budget charged per projection factor, per isolated root, and
  /// per lifted cell — the loops where the doubly exponential blowup
  /// materializes. Null = unlimited. Borrowed, not owned.
  const ResourceGovernor* governor = nullptr;
  /// Worker pool for the lifting phase: base-phase cells are lifted as
  /// independent stacks (each base cell's subtree touches only its own
  /// sample points) and the cell tree is assembled in stack order, so the
  /// decomposition is identical at every thread count. Null = the
  /// process-wide ThreadPool::Shared(). Borrowed, not owned.
  ThreadPool* pool = nullptr;
};

/// A cylindrical algebraic decomposition of R^num_vars, sign-invariant for
/// the input polynomials (paper, Appendix I: projection phase, base phase,
/// lifting/extension phase). The variable order is fixed — x0 is the base
/// variable, x_{num_vars-1} the innermost — exactly the "pre-established
/// order" the paper's finite precision semantics requires.
class Cad {
 public:
  /// Builds a P-invariant CAD for the given polynomials over variables
  /// 0..num_vars-1. Fails with kNumericalFailure on degenerate lifting
  /// configurations (see AlgebraicPoint::StackRoots).
  static StatusOr<Cad> Build(const std::vector<Polynomial>& polys,
                             int num_vars, const CadOptions& options = {});

  int num_vars() const { return num_vars_; }

  /// The squarefree-basis projection factors whose main variable is
  /// `level`. Signs of these factors are invariant on every cell of
  /// dimension > level.
  const std::vector<Polynomial>& factors_at_level(int level) const {
    return factors_[level];
  }
  /// All projection factors with max_var < dim, flattened (the sign-vector
  /// alphabet for cells of dimension dim).
  std::vector<Polynomial> FactorsBelow(int dim) const;

  /// The level-0 stack (cells of dimension 1).
  const std::vector<CadCell>& roots() const { return roots_; }
  std::vector<CadCell>& mutable_roots() { return roots_; }

  /// Visits every cell of the given dimension (1-based: dimension 1 cells
  /// are the base stack) in stack order.
  void ForEachCellAtDimension(
      int dim, const std::function<void(const CadCell&)>& fn) const;

  /// Number of cells of full dimension num_vars.
  std::size_t CountLeafCells() const;
  /// Total cells across all dimensions.
  std::size_t CountAllCells() const;

 private:
  Cad() = default;

  int num_vars_ = 0;
  std::vector<std::vector<Polynomial>> factors_;  // per level
  std::vector<CadCell> roots_;
};

/// Returns a rational number strictly between two algebraic numbers a < b
/// (refining their isolating intervals as needed).
Rational RationalBetween(const AlgebraicNumber& a, const AlgebraicNumber& b);

/// Merges per-polynomial root lists into one increasing list of distinct
/// algebraic numbers (exact comparison/deduplication).
std::vector<AlgebraicNumber> MergeRoots(
    std::vector<std::vector<AlgebraicNumber>> root_lists);

/// Builds the stack sample coordinates over a (possibly empty) base sample:
/// given the increasing distinct section roots, returns the 2k+1 stack
/// coordinates (sector, section, sector, ..., section, sector).
std::vector<AlgebraicNumber> StackCoordinates(
    const std::vector<AlgebraicNumber>& roots);

}  // namespace ccdb

#endif  // CCDB_QE_CAD_H_
