#include "qe/dense_order.h"

#include "base/logging.h"
#include "base/metrics.h"
#include "plan/fragment.h"
#include "qe/fourier_motzkin.h"

namespace ccdb {

bool IsDenseOrderSystem(const std::vector<GeneralizedTuple>& tuples) {
  return ClassifyTuples(tuples) == Fragment::kDenseOrder;
}

StatusOr<std::vector<GeneralizedTuple>> EliminateExistsDenseOrder(
    const std::vector<GeneralizedTuple>& tuples, int var,
    const ResourceGovernor* gov, ThreadPool* pool) {
  if (!IsDenseOrderSystem(tuples)) {
    return Status::InvalidArgument(
        "dense-order elimination requires dense-order atoms");
  }
  CCDB_METRIC_COUNT("qe.dense_order.eliminations", 1);
  // Over a dense linear order, ∃x elimination is the linear elimination
  // restricted to unit coefficients; crossing a lower bound l and an upper
  // bound u yields l θ u — again a dense-order atom, so the procedure is
  // CLOSED over the dense-order language (the effective content of
  // [GS95a] and the reason Theorem 4.8's encoding works). We reuse the
  // Fourier-Motzkin engine and assert closure, which here is a theorem.
  CCDB_ASSIGN_OR_RETURN(std::vector<GeneralizedTuple> result,
                        EliminateExistsLinear(tuples, var, gov, pool));
  CCDB_CHECK_MSG(IsDenseOrderSystem(result),
                 "dense-order closure violated (engine bug)");
  return result;
}

}  // namespace ccdb
