#include "qe/dense_order.h"

#include "base/logging.h"
#include "base/metrics.h"
#include "qe/fourier_motzkin.h"

namespace ccdb {

namespace {

// Dense-order atom: unit-coefficient difference of at most two variables,
// plus a rational constant only in the one-variable case.
bool IsDenseOrderAtom(const Atom& atom) {
  const Polynomial& p = atom.poly;
  if (p.TotalDegree() > 1) return false;
  int vars = 0;
  Rational coeff_sum(0);
  bool has_constant = false;
  for (const auto& [monomial, coeff] : p.terms()) {
    if (monomial.is_one()) {
      has_constant = true;
      continue;
    }
    ++vars;
    if (!(coeff == Rational(1) || coeff == Rational(-1))) return false;
    coeff_sum += coeff;
  }
  if (vars > 2) return false;
  if (vars == 2) {
    // x - y form: coefficients must cancel, and no constant offset (an
    // offset would encode addition, leaving the dense-order language).
    return coeff_sum.is_zero() && !has_constant;
  }
  return true;  // x - c or a constant atom
}

}  // namespace

bool IsDenseOrderSystem(const std::vector<GeneralizedTuple>& tuples) {
  for (const GeneralizedTuple& tuple : tuples) {
    for (const Atom& atom : tuple.atoms) {
      if (!IsDenseOrderAtom(atom)) return false;
    }
  }
  return true;
}

StatusOr<std::vector<GeneralizedTuple>> EliminateExistsDenseOrder(
    const std::vector<GeneralizedTuple>& tuples, int var) {
  if (!IsDenseOrderSystem(tuples)) {
    return Status::InvalidArgument(
        "dense-order elimination requires dense-order atoms");
  }
  CCDB_METRIC_COUNT("qe.dense_order.eliminations", 1);
  // Over a dense linear order, ∃x elimination is the linear elimination
  // restricted to unit coefficients; crossing a lower bound l and an upper
  // bound u yields l θ u — again a dense-order atom, so the procedure is
  // CLOSED over the dense-order language (the effective content of
  // [GS95a] and the reason Theorem 4.8's encoding works). We reuse the
  // Fourier-Motzkin engine and assert closure, which here is a theorem.
  CCDB_ASSIGN_OR_RETURN(std::vector<GeneralizedTuple> result,
                        EliminateExistsLinear(tuples, var));
  CCDB_CHECK_MSG(IsDenseOrderSystem(result),
                 "dense-order closure violated (engine bug)");
  return result;
}

}  // namespace ccdb
