#include "qe/fourier_motzkin.h"

#include <algorithm>
#include <unordered_map>

#include "base/failpoint.h"
#include "base/logging.h"
#include "base/metrics.h"
#include "plan/fragment.h"

namespace ccdb {

bool IsLinearSystem(const std::vector<GeneralizedTuple>& tuples) {
  return ClassifyTuples(tuples) != Fragment::kPolynomial;
}

namespace {

// Splits every disequality atom p != 0 into the two strict tuples p < 0 and
// p > 0.
std::vector<GeneralizedTuple> SplitDisequalities(
    const std::vector<GeneralizedTuple>& tuples) {
  std::vector<GeneralizedTuple> out;
  for (const GeneralizedTuple& tuple : tuples) {
    std::vector<GeneralizedTuple> expanded{GeneralizedTuple()};
    for (const Atom& atom : tuple.atoms) {
      if (atom.op == RelOp::kNeq) {
        std::vector<GeneralizedTuple> next;
        for (const GeneralizedTuple& partial : expanded) {
          GeneralizedTuple less = partial;
          less.atoms.emplace_back(atom.poly, RelOp::kLt);
          GeneralizedTuple greater = partial;
          greater.atoms.emplace_back(atom.poly, RelOp::kGt);
          next.push_back(std::move(less));
          next.push_back(std::move(greater));
        }
        expanded = std::move(next);
      } else {
        for (GeneralizedTuple& partial : expanded) {
          partial.atoms.push_back(atom);
        }
      }
    }
    out.insert(out.end(), std::make_move_iterator(expanded.begin()),
               std::make_move_iterator(expanded.end()));
  }
  return out;
}

// Eliminates var from one tuple (conjunction) of linear atoms without
// disequalities. Returns the resulting tuples (usually one).
StatusOr<std::vector<GeneralizedTuple>> EliminateFromTuple(
    const GeneralizedTuple& tuple, int var, const ResourceGovernor* gov) {
  // Normalize each atom mentioning var to: coeff * var + rest (op) 0.
  // First, if an equation mentions var, solve and substitute.
  for (std::size_t i = 0; i < tuple.atoms.size(); ++i) {
    const Atom& atom = tuple.atoms[i];
    if (atom.op != RelOp::kEq || !atom.poly.Mentions(var)) continue;
    auto coeffs = atom.poly.CoefficientsIn(var);
    CCDB_CHECK(coeffs.size() == 2);  // linear
    if (!coeffs[1].is_constant()) {
      return Status::InvalidArgument("nonlinear atom in Fourier-Motzkin");
    }
    Rational c = coeffs[1].constant_value();
    // var = -rest / c.
    Polynomial solved = coeffs[0].Scale(-c.Inverse());
    GeneralizedTuple substituted;
    for (std::size_t j = 0; j < tuple.atoms.size(); ++j) {
      if (j == i) continue;
      const Atom& other = tuple.atoms[j];
      substituted.atoms.emplace_back(other.poly.SubstitutePoly(var, solved),
                                     other.op);
    }
    if (!substituted.SimplifyConstants()) {
      return std::vector<GeneralizedTuple>{};
    }
    return std::vector<GeneralizedTuple>{std::move(substituted)};
  }

  // No equation: gather lower/upper bounds.
  // atom: c*var + rest (op) 0 with op in {<, <=, >, >=} becomes
  //   var (op') -rest/c with direction depending on sign(c).
  struct Bound {
    Polynomial value;  // the bound expression
    bool strict;
  };
  std::vector<Bound> lower, upper;
  GeneralizedTuple remainder;
  for (const Atom& atom : tuple.atoms) {
    if (!atom.poly.Mentions(var)) {
      remainder.atoms.push_back(atom);
      continue;
    }
    auto coeffs = atom.poly.CoefficientsIn(var);
    CCDB_CHECK(coeffs.size() == 2);
    if (!coeffs[1].is_constant()) {
      return Status::InvalidArgument("nonlinear atom in Fourier-Motzkin");
    }
    Rational c = coeffs[1].constant_value();
    CCDB_CHECK(!c.is_zero());
    Polynomial bound = coeffs[0].Scale(-c.Inverse());
    RelOp op = atom.op;
    // c*var + rest op 0  <=>  var op'  bound  (op' flips when c < 0).
    bool flip = c.sign() < 0;
    switch (op) {
      case RelOp::kLt:
      case RelOp::kLe: {
        bool strict = op == RelOp::kLt;
        if (flip) {
          lower.push_back({bound, strict});
        } else {
          upper.push_back({bound, strict});
        }
        break;
      }
      case RelOp::kGt:
      case RelOp::kGe: {
        bool strict = op == RelOp::kGt;
        if (flip) {
          upper.push_back({bound, strict});
        } else {
          lower.push_back({bound, strict});
        }
        break;
      }
      case RelOp::kEq:
      case RelOp::kNeq:
        CCDB_CHECK_MSG(false, "equations/disequalities handled earlier");
    }
  }
  // Cross every lower bound with every upper bound: l (op) u. This product
  // is where FM's output-size blowup lives, so each generated constraint
  // charges the governor.
  CCDB_METRIC_COUNT("fm.constraints_generated", lower.size() * upper.size());
  for (const Bound& l : lower) {
    for (const Bound& u : upper) {
      CCDB_CHECK_BUDGET(gov, "qe.fm");
      RelOp op = (l.strict || u.strict) ? RelOp::kLt : RelOp::kLe;
      remainder.atoms.emplace_back(l.value - u.value, op);
    }
  }
  if (!remainder.SimplifyConstants()) {
    return std::vector<GeneralizedTuple>{};
  }
  return std::vector<GeneralizedTuple>{std::move(remainder)};
}

}  // namespace

StatusOr<std::vector<GeneralizedTuple>> EliminateExistsLinear(
    const std::vector<GeneralizedTuple>& tuples, int var,
    const ResourceGovernor* gov, ThreadPool* pool) {
  if (!IsLinearSystem(tuples)) {
    return Status::InvalidArgument("Fourier-Motzkin requires linear atoms");
  }
  CCDB_FAILPOINT("qe.fm");
  CCDB_METRIC_COUNT("fm.rounds", 1);
  // Existential quantification distributes over the union, so every
  // disjunct is eliminated independently; results land in index-addressed
  // slots and are concatenated in input order, never completion order, so
  // the output is identical at every thread count.
  std::vector<GeneralizedTuple> split = SplitDisequalities(tuples);
  CCDB_ASSIGN_OR_RETURN(
      std::vector<std::vector<GeneralizedTuple>> slots,
      ThreadPool::Resolve(pool)->ParallelMap<std::vector<GeneralizedTuple>>(
          split.size(),
          [&](std::size_t i) -> StatusOr<std::vector<GeneralizedTuple>> {
            CCDB_CHECK_BUDGET(gov, "qe.fm");
            CCDB_ASSIGN_OR_RETURN(std::vector<GeneralizedTuple> eliminated,
                                  EliminateFromTuple(split[i], var, gov));
            if (gov != nullptr) {
              for (const GeneralizedTuple& t : eliminated) {
                std::size_t bytes = 0;
                for (const Atom& atom : t.atoms) {
                  bytes += atom.poly.EstimateBytes();
                }
                gov->ChargeBytes(bytes);
              }
            }
            return eliminated;
          }));
  std::vector<GeneralizedTuple> out;
  for (std::vector<GeneralizedTuple>& slot : slots) {
    for (GeneralizedTuple& t : slot) out.push_back(std::move(t));
  }
  return SimplifyTuples(std::move(out));
}

std::vector<GeneralizedTuple> SimplifyTuples(
    std::vector<GeneralizedTuple> tuples) {
  // Canonicalize each disjunct (sign-normalized interned atoms, sorted and
  // deduplicated conjunctions, trivially-false disjuncts dropped), then
  // drop syntactically duplicate disjuncts — equality is cheap because
  // canonical atoms share interned polynomials. First occurrence is kept,
  // so the disjunct order stays input-derived and deterministic.
  std::vector<GeneralizedTuple> out;
  std::unordered_map<std::size_t, std::vector<std::size_t>> seen;
  for (GeneralizedTuple& tuple : tuples) {
    if (!tuple.Canonicalize()) continue;
    std::size_t hash = tuple.Hash();
    bool duplicate = false;
    for (std::size_t index : seen[hash]) {
      if (out[index] == tuple) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    seen[hash].push_back(out.size());
    out.push_back(std::move(tuple));
  }
  return out;
}

}  // namespace ccdb
