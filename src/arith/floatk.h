#ifndef CCDB_ARITH_FLOATK_H_
#define CCDB_ARITH_FLOATK_H_

#include <cstdint>
#include <string>

#include "arith/bigint.h"
#include "arith/rational.h"
#include "base/status.h"

namespace ccdb {

/// Format of the finite structure F_k = <F^k, <=, +, ., 0, 1> of k-floating
/// numbers (paper, Section 4): a floating number is a pair [n, e] denoting
/// n * 2^e, with the mantissa n on `mantissa_bits` bits and the exponent e
/// bounded by `exponent_bound` (the paper allots log(k) digits to e, i.e.
/// |e| <= k when the base is 2).
struct FpFormat {
  std::uint32_t mantissa_bits = 53;
  std::int64_t exponent_bound = 53;

  /// Convenience: the paper's F_k with base-2 numeration.
  static FpFormat ForK(std::uint32_t k) {
    return FpFormat{k, static_cast<std::int64_t>(k)};
  }
};

/// How an operation treats results that are not exactly representable.
///
/// The paper models F_k operations as *relations* (footnote 1): they are
/// partially defined, and a term's value "might be undefined … caused by
/// overflow of exponent (number too large or too small) or mantissa
/// (insufficient precision)". kExact reproduces that semantics; kRound is
/// the conventional round-to-nearest-even semantics used by the numerical
/// modules of Section 5.
enum class FpMode {
  kExact,
  kRound,
};

/// A value of F_k: mantissa * 2^exponent, normalized so the mantissa is odd
/// (or zero with exponent 0). Immutable value type.
class FloatK {
 public:
  /// Constructs zero.
  FloatK() : mantissa_(0), exponent_(0) {}

  /// Constructs mantissa * 2^exponent, normalizing. The result is NOT
  /// checked against any format; use Fit() for that.
  FloatK(BigInt mantissa, std::int64_t exponent);

  /// Exact conversion from an integer.
  static FloatK FromInt(std::int64_t value) { return FloatK(BigInt(value), 0); }

  /// Rounds (or exactly converts) a rational into the format. Returns
  /// kUndefined on exponent overflow/underflow, or in kExact mode when the
  /// value is not representable.
  static StatusOr<FloatK> FromRational(const Rational& value,
                                       const FpFormat& format, FpMode mode);

  /// Nearest FloatK to a double; requires a finite double.
  static FloatK FromDouble(double value);

  const BigInt& mantissa() const { return mantissa_; }
  std::int64_t exponent() const { return exponent_; }

  bool is_zero() const { return mantissa_.is_zero(); }
  int sign() const { return mantissa_.sign(); }

  /// The exact rational value mantissa * 2^exponent.
  Rational ToRational() const;
  double ToDouble() const { return ToRational().ToDouble(); }

  /// True iff the value is representable in `format` (mantissa and exponent
  /// within bounds after normalization).
  bool FitsFormat(const FpFormat& format) const;

  /// F_k arithmetic: exact result re-fit into the format under `mode`.
  static StatusOr<FloatK> Add(const FloatK& a, const FloatK& b,
                              const FpFormat& format, FpMode mode);
  static StatusOr<FloatK> Sub(const FloatK& a, const FloatK& b,
                              const FpFormat& format, FpMode mode);
  static StatusOr<FloatK> Mul(const FloatK& a, const FloatK& b,
                              const FpFormat& format, FpMode mode);
  /// Division always rounds (quotients are rarely representable); in kExact
  /// mode it is undefined unless the quotient is an exact FloatK of the
  /// format. Requires b != 0.
  static StatusOr<FloatK> Div(const FloatK& a, const FloatK& b,
                              const FpFormat& format, FpMode mode);

  bool operator==(const FloatK& other) const {
    return mantissa_ == other.mantissa_ && exponent_ == other.exponent_;
  }
  bool operator!=(const FloatK& other) const { return !(*this == other); }
  bool operator<(const FloatK& other) const {
    return ToRational() < other.ToRational();
  }

  /// Renders "[n,e]" in the paper's pair notation.
  std::string ToString() const;

 private:
  void Normalize();

  BigInt mantissa_;
  std::int64_t exponent_;
};

}  // namespace ccdb

#endif  // CCDB_ARITH_FLOATK_H_
