#include "arith/rational.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "base/logging.h"

namespace ccdb {

Rational::Rational(BigInt numerator, BigInt denominator)
    : num_(std::move(numerator)), den_(std::move(denominator)) {
  CCDB_CHECK_MSG(!den_.is_zero(), "rational with zero denominator");
  Canonicalize();
}

void Rational::Canonicalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (!g.is_one()) {
    num_ /= g;
    den_ /= g;
  }
}

StatusOr<Rational> Rational::FromString(std::string_view text) {
  std::size_t slash = text.find('/');
  if (slash != std::string_view::npos) {
    CCDB_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(text.substr(0, slash)));
    CCDB_ASSIGN_OR_RETURN(BigInt den,
                          BigInt::FromString(text.substr(slash + 1)));
    if (den.is_zero()) {
      return Status::InvalidArgument("zero denominator: " + std::string(text));
    }
    return Rational(std::move(num), std::move(den));
  }
  std::size_t dot = text.find('.');
  if (dot != std::string_view::npos) {
    std::string digits(text.substr(0, dot));
    std::string_view frac = text.substr(dot + 1);
    if (frac.empty()) {
      return Status::InvalidArgument("trailing decimal point: " +
                                     std::string(text));
    }
    digits += std::string(frac);
    CCDB_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(digits));
    BigInt den = BigInt(10).Pow(static_cast<std::uint32_t>(frac.size()));
    return Rational(std::move(num), std::move(den));
  }
  CCDB_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(text));
  return Rational(std::move(num));
}

Rational Rational::FromScaledInt(const BigInt& mantissa,
                                 std::int64_t exponent) {
  if (exponent >= 0) {
    return Rational(mantissa.ShiftLeft(static_cast<std::uint64_t>(exponent)));
  }
  return Rational(mantissa,
                  BigInt::Pow2(static_cast<std::uint64_t>(-exponent)));
}

std::uint64_t Rational::bit_length() const {
  return std::max(num_.bit_length(), den_.bit_length());
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.num_ = -result.num_;
  return result;
}

Rational Rational::Abs() const {
  Rational result = *this;
  result.num_ = result.num_.Abs();
  return result;
}

Rational Rational::Inverse() const {
  CCDB_CHECK_MSG(!is_zero(), "inverse of zero");
  return Rational(den_, num_);
}

Rational Rational::operator+(const Rational& other) const {
  return Rational(num_ * other.den_ + other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator-(const Rational& other) const {
  return Rational(num_ * other.den_ - other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(num_ * other.num_, den_ * other.den_);
}

Rational Rational::operator/(const Rational& other) const {
  CCDB_CHECK_MSG(!other.is_zero(), "division by zero rational");
  return Rational(num_ * other.den_, den_ * other.num_);
}

Rational Rational::Pow(std::int32_t exponent) const {
  if (exponent < 0) {
    return Inverse().Pow(-exponent);
  }
  return Rational(num_.Pow(static_cast<std::uint32_t>(exponent)),
                  den_.Pow(static_cast<std::uint32_t>(exponent)));
}

int Rational::Compare(const Rational& other) const {
  // Cross-multiply; denominators are positive.
  return (num_ * other.den_).Compare(other.num_ * den_);
}

BigInt Rational::Floor() const {
  auto [q, r] = num_.DivMod(den_);
  if (!r.is_zero() && num_.is_negative()) q -= BigInt(1);
  return q;
}

BigInt Rational::Ceil() const {
  auto [q, r] = num_.DivMod(den_);
  if (!r.is_zero() && !num_.is_negative()) q += BigInt(1);
  return q;
}

Rational Rational::Midpoint(const Rational& a, const Rational& b) {
  return (a + b) * Rational(BigInt(1), BigInt(2));
}

double Rational::ToDouble() const {
  // Scale so the division happens near 1.0 to avoid premature overflow.
  std::int64_t shift = static_cast<std::int64_t>(num_.bit_length()) -
                       static_cast<std::int64_t>(den_.bit_length());
  if (shift > 512 || shift < -512) {
    BigInt scaled_num = num_;
    BigInt scaled_den = den_;
    if (shift > 0) {
      scaled_den = scaled_den.ShiftLeft(static_cast<std::uint64_t>(shift));
    } else {
      scaled_num = scaled_num.ShiftLeft(static_cast<std::uint64_t>(-shift));
    }
    double ratio = scaled_num.ToDouble() / scaled_den.ToDouble();
    return ratio * std::pow(2.0, static_cast<double>(shift));
  }
  return num_.ToDouble() / den_.ToDouble();
}

std::string Rational::ToString() const {
  if (is_integer()) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace ccdb
