#include "arith/rational.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "base/logging.h"

namespace ccdb {

namespace {

// All four components inline? Then the whole operation runs in hardware
// words / __int128 with at most one gcd, never touching limb vectors.
inline bool WordSized(const Rational& a, const Rational& b) {
  return a.numerator().FitsInt64() && a.denominator().FitsInt64() &&
         b.numerator().FitsInt64() && b.denominator().FitsInt64();
}

inline std::uint64_t GcdU64(std::uint64_t x, std::uint64_t y) {
  while (y != 0) {
    std::uint64_t r = x % y;
    x = y;
    y = r;
  }
  return x;
}

inline unsigned __int128 GcdU128(unsigned __int128 x, unsigned __int128 y) {
  while (y != 0) {
    unsigned __int128 r = x % y;
    x = y;
    y = r;
  }
  return x;
}

inline unsigned __int128 Abs128(__int128 v) {
  return v < 0 ? ~static_cast<unsigned __int128>(v) + 1
               : static_cast<unsigned __int128>(v);
}

inline std::uint64_t AbsU64(std::int64_t v) {
  return v < 0 ? ~static_cast<std::uint64_t>(v) + 1
               : static_cast<std::uint64_t>(v);
}

}  // namespace

Rational::Rational(BigInt numerator, BigInt denominator)
    : num_(std::move(numerator)), den_(std::move(denominator)) {
  CCDB_CHECK_MSG(!den_.is_zero(), "rational with zero denominator");
  Canonicalize();
}

void Rational::Canonicalize() {
  if (num_.FitsInt64() && den_.FitsInt64()) {
    // Word path: one hardware gcd, no limb traffic.
    std::int64_t n = num_.ToInt64();
    std::int64_t d = den_.ToInt64();
    bool negative = (n < 0) != (d < 0);
    std::uint64_t n_mag = AbsU64(n);
    std::uint64_t d_mag = AbsU64(d);
    if (n_mag == 0) {
      num_ = BigInt();
      den_ = BigInt(1);
      return;
    }
    std::uint64_t g = GcdU64(n_mag, d_mag);
    if (g != 1) {
      n_mag /= g;
      d_mag /= g;
    }
    num_ = BigInt::FromInt128(
        negative ? -static_cast<__int128>(n_mag) : static_cast<__int128>(n_mag));
    den_ = BigInt::FromInt128(static_cast<__int128>(d_mag));
    return;
  }
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (!g.is_one()) {
    num_ /= g;
    den_ /= g;
  }
}

StatusOr<Rational> Rational::FromString(std::string_view text) {
  std::size_t slash = text.find('/');
  if (slash != std::string_view::npos) {
    CCDB_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(text.substr(0, slash)));
    CCDB_ASSIGN_OR_RETURN(BigInt den,
                          BigInt::FromString(text.substr(slash + 1)));
    if (den.is_zero()) {
      return Status::InvalidArgument("zero denominator: " + std::string(text));
    }
    return Rational(std::move(num), std::move(den));
  }
  std::size_t dot = text.find('.');
  if (dot != std::string_view::npos) {
    std::string digits(text.substr(0, dot));
    std::string_view frac = text.substr(dot + 1);
    if (frac.empty()) {
      return Status::InvalidArgument("trailing decimal point: " +
                                     std::string(text));
    }
    digits += std::string(frac);
    CCDB_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(digits));
    BigInt den = BigInt(10).Pow(static_cast<std::uint32_t>(frac.size()));
    return Rational(std::move(num), std::move(den));
  }
  CCDB_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(text));
  return Rational(std::move(num));
}

Rational Rational::FromScaledInt(const BigInt& mantissa,
                                 std::int64_t exponent) {
  if (exponent >= 0) {
    return Rational(mantissa.ShiftLeft(static_cast<std::uint64_t>(exponent)));
  }
  return Rational(mantissa,
                  BigInt::Pow2(static_cast<std::uint64_t>(-exponent)));
}

std::uint64_t Rational::bit_length() const {
  return std::max(num_.bit_length(), den_.bit_length());
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.num_ = -result.num_;
  return result;
}

Rational Rational::Abs() const {
  Rational result = *this;
  result.num_ = result.num_.Abs();
  return result;
}

Rational Rational::Inverse() const {
  CCDB_CHECK_MSG(!is_zero(), "inverse of zero");
  return Rational(den_, num_);
}

Rational Rational::operator+(const Rational& other) const {
  if (WordSized(*this, other)) {
    // a/b + c/d in __int128: products of int64s never overflow 128 bits and
    // the lone sum is overflow-checked; one gcd reduces to canonical form.
    __int128 a = num_.ToInt64(), b = den_.ToInt64();
    __int128 c = other.num_.ToInt64(), d = other.den_.ToInt64();
    __int128 n;
    if (!__builtin_add_overflow(a * d, c * b, &n)) {
      if (n == 0) return Rational();
      __int128 den = b * d;
      unsigned __int128 g = GcdU128(Abs128(n), static_cast<unsigned __int128>(den));
      if (g != 1) {
        n /= static_cast<__int128>(g);
        den /= static_cast<__int128>(g);
      }
      return Rational(BigInt::FromInt128(n), BigInt::FromInt128(den),
                      AlreadyCanonical{});
    }
  }
  // Knuth 4.5.1: reduce by g = gcd(b, d) first so the cross products stay
  // near the output's size instead of the naive b*d blowup. When g == 1 the
  // result a*d + c*b over b*d is already canonical.
  BigInt g = BigInt::Gcd(den_, other.den_);
  if (g.is_one()) {
    return Rational(num_ * other.den_ + other.num_ * den_,
                    den_ * other.den_, AlreadyCanonical{});
  }
  BigInt b_red = den_ / g;
  BigInt d_red = other.den_ / g;
  BigInt t = num_ * d_red + other.num_ * b_red;
  if (t.is_zero()) return Rational();
  BigInt g2 = BigInt::Gcd(t, g);
  return Rational(t / g2, b_red * (other.den_ / g2), AlreadyCanonical{});
}

Rational Rational::operator-(const Rational& other) const {
  if (WordSized(*this, other)) {
    __int128 a = num_.ToInt64(), b = den_.ToInt64();
    __int128 c = other.num_.ToInt64(), d = other.den_.ToInt64();
    __int128 n;
    if (!__builtin_sub_overflow(a * d, c * b, &n)) {
      if (n == 0) return Rational();
      __int128 den = b * d;
      unsigned __int128 g = GcdU128(Abs128(n), static_cast<unsigned __int128>(den));
      if (g != 1) {
        n /= static_cast<__int128>(g);
        den /= static_cast<__int128>(g);
      }
      return Rational(BigInt::FromInt128(n), BigInt::FromInt128(den),
                      AlreadyCanonical{});
    }
  }
  return *this + (-other);
}

Rational Rational::operator*(const Rational& other) const {
  if (WordSized(*this, other)) {
    // Cross-reduce with word gcds (gcd(a,d), gcd(c,b)); since both inputs
    // are canonical the cross-reduced product is canonical with no 128-bit
    // gcd at all.
    std::int64_t a = num_.ToInt64(), b = den_.ToInt64();
    std::int64_t c = other.num_.ToInt64(), d = other.den_.ToInt64();
    if (a == 0 || c == 0) return Rational();
    std::uint64_t g1 = GcdU64(AbsU64(a), AbsU64(d));
    std::uint64_t g2 = GcdU64(AbsU64(c), AbsU64(b));
    bool negative = (a < 0) != (c < 0);
    unsigned __int128 n_mag =
        static_cast<unsigned __int128>(AbsU64(a) / g1) * (AbsU64(c) / g2);
    unsigned __int128 d_mag =
        static_cast<unsigned __int128>(AbsU64(b) / g2) * (AbsU64(d) / g1);
    __int128 n = negative ? -static_cast<__int128>(n_mag)
                          : static_cast<__int128>(n_mag);
    return Rational(BigInt::FromInt128(n),
                    BigInt::FromInt128(static_cast<__int128>(d_mag)),
                    AlreadyCanonical{});
  }
  if (is_zero() || other.is_zero()) return Rational();
  BigInt g1 = BigInt::Gcd(num_, other.den_);
  BigInt g2 = BigInt::Gcd(other.num_, den_);
  return Rational((num_ / g1) * (other.num_ / g2),
                  (den_ / g2) * (other.den_ / g1), AlreadyCanonical{});
}

Rational Rational::operator/(const Rational& other) const {
  CCDB_CHECK_MSG(!other.is_zero(), "division by zero rational");
  if (WordSized(*this, other)) {
    std::int64_t a = num_.ToInt64(), b = den_.ToInt64();
    std::int64_t c = other.num_.ToInt64(), d = other.den_.ToInt64();
    if (a == 0) return Rational();
    std::uint64_t g1 = GcdU64(AbsU64(a), AbsU64(c));
    std::uint64_t g2 = GcdU64(AbsU64(d), AbsU64(b));
    bool negative = (a < 0) != (c < 0);
    unsigned __int128 n_mag =
        static_cast<unsigned __int128>(AbsU64(a) / g1) * (AbsU64(d) / g2);
    unsigned __int128 d_mag =
        static_cast<unsigned __int128>(AbsU64(b) / g2) * (AbsU64(c) / g1);
    __int128 n = negative ? -static_cast<__int128>(n_mag)
                          : static_cast<__int128>(n_mag);
    return Rational(BigInt::FromInt128(n),
                    BigInt::FromInt128(static_cast<__int128>(d_mag)),
                    AlreadyCanonical{});
  }
  if (is_zero()) return Rational();
  BigInt g1 = BigInt::Gcd(num_, other.num_);
  BigInt g2 = BigInt::Gcd(other.den_, den_);
  Rational result((num_ / g1) * (other.den_ / g2),
                  (den_ / g2) * (other.num_ / g1), AlreadyCanonical{});
  if (result.den_.is_negative()) {
    result.num_ = -result.num_;
    result.den_ = -result.den_;
  }
  return result;
}

Rational Rational::Pow(std::int32_t exponent) const {
  if (exponent < 0) {
    return Inverse().Pow(-exponent);
  }
  // Powers of a canonical fraction are canonical (a^k, b^k stay coprime).
  return Rational(num_.Pow(static_cast<std::uint32_t>(exponent)),
                  den_.Pow(static_cast<std::uint32_t>(exponent)),
                  AlreadyCanonical{});
}

int Rational::Compare(const Rational& other) const {
  if (WordSized(*this, other)) {
    __int128 lhs = static_cast<__int128>(num_.ToInt64()) *
                   other.den_.ToInt64();
    __int128 rhs = static_cast<__int128>(other.num_.ToInt64()) *
                   den_.ToInt64();
    if (lhs == rhs) return 0;
    return lhs < rhs ? -1 : 1;
  }
  // Cross-multiply; denominators are positive.
  return (num_ * other.den_).Compare(other.num_ * den_);
}

BigInt Rational::Floor() const {
  auto [q, r] = num_.DivMod(den_);
  if (!r.is_zero() && num_.is_negative()) q -= BigInt(1);
  return q;
}

BigInt Rational::Ceil() const {
  auto [q, r] = num_.DivMod(den_);
  if (!r.is_zero() && !num_.is_negative()) q += BigInt(1);
  return q;
}

Rational Rational::Midpoint(const Rational& a, const Rational& b) {
  return (a + b) * Rational(BigInt(1), BigInt(2));
}

double Rational::ToDouble() const {
  // Scale so the division happens near 1.0 to avoid premature overflow.
  std::int64_t shift = static_cast<std::int64_t>(num_.bit_length()) -
                       static_cast<std::int64_t>(den_.bit_length());
  if (shift > 512 || shift < -512) {
    BigInt scaled_num = num_;
    BigInt scaled_den = den_;
    if (shift > 0) {
      scaled_den = scaled_den.ShiftLeft(static_cast<std::uint64_t>(shift));
    } else {
      scaled_num = scaled_num.ShiftLeft(static_cast<std::uint64_t>(-shift));
    }
    double ratio = scaled_num.ToDouble() / scaled_den.ToDouble();
    return ratio * std::pow(2.0, static_cast<double>(shift));
  }
  return num_.ToDouble() / den_.ToDouble();
}

std::string Rational::ToString() const {
  if (is_integer()) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace ccdb
