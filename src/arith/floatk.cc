#include "arith/floatk.h"

#include <cmath>

#include "base/logging.h"

namespace ccdb {

FloatK::FloatK(BigInt mantissa, std::int64_t exponent)
    : mantissa_(std::move(mantissa)), exponent_(exponent) {
  Normalize();
}

void FloatK::Normalize() {
  if (mantissa_.is_zero()) {
    exponent_ = 0;
    return;
  }
  while (mantissa_.IsEven()) {
    mantissa_ = mantissa_.ShiftRight(1);
    ++exponent_;
  }
}

Rational FloatK::ToRational() const {
  return Rational::FromScaledInt(mantissa_, exponent_);
}

bool FloatK::FitsFormat(const FpFormat& format) const {
  if (is_zero()) return true;
  if (mantissa_.bit_length() > format.mantissa_bits) return false;
  return exponent_ >= -format.exponent_bound &&
         exponent_ <= format.exponent_bound;
}

StatusOr<FloatK> FloatK::FromRational(const Rational& value,
                                      const FpFormat& format, FpMode mode) {
  if (value.is_zero()) return FloatK();

  // Exact case: denominator a power of two and everything fits.
  {
    const BigInt& den = value.denominator();
    BigInt d = den;
    std::int64_t e = 0;
    while (d.IsEven()) {
      d = d.ShiftRight(1);
      ++e;
    }
    if (d.is_one()) {
      FloatK exact(value.numerator(), -e);
      if (exact.FitsFormat(format)) return exact;
      if (mode == FpMode::kExact) {
        return Status::Undefined("value " + value.ToString() +
                                 " not representable in F_k (mantissa)");
      }
    } else if (mode == FpMode::kExact) {
      return Status::Undefined("value " + value.ToString() +
                               " not representable in F_k (non-dyadic)");
    }
  }

  // Round to nearest-even with `format.mantissa_bits` significant bits.
  // Find scale s such that round(value * 2^s) has exactly mantissa_bits bits.
  Rational magnitude = value.Abs();
  std::int64_t scale =
      static_cast<std::int64_t>(format.mantissa_bits) -
      (static_cast<std::int64_t>(magnitude.numerator().bit_length()) -
       static_cast<std::int64_t>(magnitude.denominator().bit_length())) -
      1;
  for (int attempt = 0; attempt < 8; ++attempt) {
    // scaled = value * 2^scale as an exact rational.
    Rational scaled =
        scale >= 0
            ? magnitude * Rational(BigInt::Pow2(static_cast<std::uint64_t>(scale)))
            : magnitude / Rational(BigInt::Pow2(static_cast<std::uint64_t>(-scale)));
    // Round to nearest integer, ties to even.
    BigInt floor = scaled.Floor();
    Rational frac = scaled - Rational(floor);
    BigInt rounded = floor;
    int half_cmp = frac.Compare(Rational(BigInt(1), BigInt(2)));
    if (half_cmp > 0 || (half_cmp == 0 && !floor.IsEven())) {
      rounded += BigInt(1);
    }
    if (rounded.is_zero()) {
      // Scale guess too small (value rounded away entirely): zoom in.
      scale += static_cast<std::int64_t>(format.mantissa_bits);
      continue;
    }
    if (rounded.bit_length() != format.mantissa_bits) {
      // Wrong significand width (initial estimate off by one, or rounding
      // carried into a new bit as in 0.1111 -> 1.000): move the scale so the
      // significand has exactly mantissa_bits bits and re-round.
      scale += static_cast<std::int64_t>(format.mantissa_bits) -
               static_cast<std::int64_t>(rounded.bit_length());
      continue;
    }
    FloatK result(value.sign() < 0 ? -rounded : rounded, -scale);
    if (!result.FitsFormat(format)) {
      if (result.is_zero()) return FloatK();
      return Status::Undefined("exponent overflow in F_k for " +
                               value.ToString());
    }
    return result;
  }
  return Status::Internal("FloatK rounding failed to converge");
}

FloatK FloatK::FromDouble(double value) {
  CCDB_CHECK_MSG(std::isfinite(value), "FromDouble requires a finite value");
  if (value == 0.0) return FloatK();
  int exp = 0;
  double frac = std::frexp(value, &exp);  // value = frac * 2^exp, |frac| in [0.5,1)
  // 53 bits of mantissa.
  double scaled = std::ldexp(frac, 53);
  BigInt mantissa(static_cast<std::int64_t>(scaled));
  return FloatK(std::move(mantissa), exp - 53);
}

StatusOr<FloatK> FloatK::Add(const FloatK& a, const FloatK& b,
                             const FpFormat& format, FpMode mode) {
  return FromRational(a.ToRational() + b.ToRational(), format, mode);
}

StatusOr<FloatK> FloatK::Sub(const FloatK& a, const FloatK& b,
                             const FpFormat& format, FpMode mode) {
  return FromRational(a.ToRational() - b.ToRational(), format, mode);
}

StatusOr<FloatK> FloatK::Mul(const FloatK& a, const FloatK& b,
                             const FpFormat& format, FpMode mode) {
  return FromRational(a.ToRational() * b.ToRational(), format, mode);
}

StatusOr<FloatK> FloatK::Div(const FloatK& a, const FloatK& b,
                             const FpFormat& format, FpMode mode) {
  if (b.is_zero()) return Status::InvalidArgument("F_k division by zero");
  return FromRational(a.ToRational() / b.ToRational(), format, mode);
}

std::string FloatK::ToString() const {
  return "[" + mantissa_.ToString() + "," + std::to_string(exponent_) + "]";
}

}  // namespace ccdb
