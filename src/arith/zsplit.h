#ifndef CCDB_ARITH_ZSPLIT_H_
#define CCDB_ARITH_ZSPLIT_H_

#include <cstdint>
#include <utility>

#include "arith/bigint.h"
#include "base/status.h"

namespace ccdb {

/// The finite structure Z_k = <Z^k, <=, +, ., 0, 1> of integers of bit
/// length at most k (paper, Section 4). Arithmetic is *partial*: x + y and
/// x * y are defined only when the result again has bit length <= k
/// (footnote 1 of the paper: "they have to be seen as relations in a way
/// similar to the arithmetic over finite segments of the integers").
///
/// Every operation counts its invocations so the doubling experiments
/// (bench E7) can report the simulation overhead.
class PartialZk {
 public:
  explicit PartialZk(std::uint32_t k);

  std::uint32_t k() const { return k_; }

  /// True iff |value| < 2^k (bit length at most k).
  bool InRange(const BigInt& value) const;

  /// Partial operations: kUndefined when the exact result leaves Z_k.
  StatusOr<BigInt> Add(const BigInt& a, const BigInt& b) const;
  StatusOr<BigInt> Sub(const BigInt& a, const BigInt& b) const;
  StatusOr<BigInt> Mul(const BigInt& a, const BigInt& b) const;

  /// Total order on Z_k (requires both operands in range).
  bool Less(const BigInt& a, const BigInt& b) const;

  /// The paper's constant "1_k denotes 10000…0": 2^(k-1), the largest power
  /// of two in Z_k. Used by the Theorem 4.2 doubling construction.
  BigInt HighUnit() const { return BigInt::Pow2(k_ - 1); }

  std::uint64_t op_count() const { return op_count_; }
  void ResetOpCount() { op_count_ = 0; }

 private:
  std::uint32_t k_;
  mutable std::uint64_t op_count_ = 0;
};

/// The structure Z^{l/u}_k = <Z^k, <=, +l, +u, *l, *u, 0, 1> of Theorem 4.3:
/// split arithmetic where +l yields the k lower bits of the sum and +u the
/// k higher bits (likewise *l / *u for multiplication), making every
/// operation *total*. Words are unsigned residues in [0, 2^k).
class SplitZk {
 public:
  explicit SplitZk(std::uint32_t k);

  std::uint32_t k() const { return k_; }

  /// True iff 0 <= value < 2^k.
  bool InRange(const BigInt& value) const;

  /// (a + b) mod 2^k — the k lower bits of the sum.
  BigInt AddL(const BigInt& a, const BigInt& b) const;
  /// (a + b) div 2^k — the bits above position k (0 or 1 here).
  BigInt AddU(const BigInt& a, const BigInt& b) const;
  /// (a * b) mod 2^k.
  BigInt MulL(const BigInt& a, const BigInt& b) const;
  /// (a * b) div 2^k.
  BigInt MulU(const BigInt& a, const BigInt& b) const;

  bool Less(const BigInt& a, const BigInt& b) const;

  std::uint64_t op_count() const { return op_count_; }
  void ResetOpCount() { op_count_ = 0; }

 private:
  std::uint32_t k_;
  BigInt modulus_;  // 2^k
  mutable std::uint64_t op_count_ = 0;
};

/// A 2k-bit unsigned word represented as the pair [lo, hi] of k-bit words,
/// value = hi * 2^k + lo. This is the encoding in the proofs of Theorem 4.2
/// and Lemma 4.5 ("we define integers of length 2k by pairs of integers of
/// length k").
struct SplitPair {
  BigInt lo;
  BigInt hi;
};

/// The doubling construction of Lemma 4.5: implements the relations of
/// Z^{l/u}_{2k} using ONLY the operations of an underlying Z^{l/u}_k — the
/// effective content of "the relations of Z^{l/u}_{2k} are first-order
/// definable in Z^{l/u}_k". Iterating it yields split arithmetic of any
/// k·2^i bit length, which is how Theorem 4.3 evaluates polynomial queries
/// whose intermediate integers exceed the input length by the constant
/// factor of Lemma 4.4.
class DoubledSplitZk {
 public:
  /// Builds Z^{l/u}_{2k} over `base` (not owned; must outlive this).
  explicit DoubledSplitZk(const SplitZk* base);

  std::uint32_t k() const { return 2 * base_->k(); }

  /// Encodes a 2k-bit unsigned value as a pair; requires 0 <= v < 2^{2k}.
  SplitPair Encode(const BigInt& value) const;
  /// Decodes a pair back to its 2k-bit value.
  BigInt Decode(const SplitPair& value) const;

  /// The eight Z^{l/u}_{2k} relations, computed from k-bit primitives only.
  SplitPair AddL(const SplitPair& a, const SplitPair& b) const;
  SplitPair AddU(const SplitPair& a, const SplitPair& b) const;
  SplitPair MulL(const SplitPair& a, const SplitPair& b) const;
  SplitPair MulU(const SplitPair& a, const SplitPair& b) const;
  bool Less(const SplitPair& a, const SplitPair& b) const;

 private:
  // Full 4k-bit product of two 2k-bit pairs, as four k-bit words
  // (little-endian). Uses only base_ operations.
  void FullMul(const SplitPair& a, const SplitPair& b, BigInt out[4]) const;
  // Adds the k-bit word `w` into the word vector starting at `index`,
  // propagating carries with base_ ops.
  void AddWordInto(BigInt out[4], int index, const BigInt& w) const;

  const SplitZk* base_;
};

/// The doubling construction in the proof of Theorem 4.2: the order and
/// (partial) addition of Z_{2k} defined from Z_k only. Pairs are
/// [hi (signed, |hi| < 2^k), lo (unsigned, 0 <= lo < 2^k)], value =
/// hi * 2^k + lo, ordered lexicographically.
class DoubledPartialZk {
 public:
  explicit DoubledPartialZk(const PartialZk* base);

  std::uint32_t k() const { return 2 * base_->k(); }

  struct Pair {
    BigInt hi;  // signed high part
    BigInt lo;  // unsigned low part in [0, 2^k)
  };

  /// Encodes a (2k)-bit signed value; requires |value| < 2^{2k}.
  Pair Encode(const BigInt& value) const;
  BigInt Decode(const Pair& value) const;

  bool Less(const Pair& a, const Pair& b) const;
  /// Partial addition of Z_{2k} from Z_k primitives (undefined iff the true
  /// sum leaves Z_{2k}).
  StatusOr<Pair> Add(const Pair& a, const Pair& b) const;

 private:
  const PartialZk* base_;
};

}  // namespace ccdb

#endif  // CCDB_ARITH_ZSPLIT_H_
