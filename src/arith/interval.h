#ifndef CCDB_ARITH_INTERVAL_H_
#define CCDB_ARITH_INTERVAL_H_

#include <string>

#include "arith/rational.h"

namespace ccdb {

/// Closed interval [lo, hi] with exact rational endpoints, lo <= hi.
///
/// Used for isolating intervals of real algebraic numbers and for certified
/// enclosure arithmetic during CAD lifting and numerical evaluation (the
/// paper cites interval arithmetic [Moo66] as the canonical finite-precision
/// arithmetic).
class Interval {
 public:
  /// Constructs the degenerate interval [0, 0].
  Interval() : lo_(0), hi_(0) {}
  /// Constructs [point, point].
  explicit Interval(Rational point) : lo_(point), hi_(std::move(point)) {}
  /// Constructs [lo, hi]; requires lo <= hi.
  Interval(Rational lo, Rational hi);

  const Rational& lo() const { return lo_; }
  const Rational& hi() const { return hi_; }

  bool IsPoint() const { return lo_ == hi_; }
  Rational Width() const { return hi_ - lo_; }
  Rational Midpoint() const { return Rational::Midpoint(lo_, hi_); }

  bool Contains(const Rational& x) const { return lo_ <= x && x <= hi_; }
  bool ContainsZero() const { return lo_.sign() <= 0 && hi_.sign() >= 0; }
  bool ContainsInterval(const Interval& other) const {
    return lo_ <= other.lo_ && other.hi_ <= hi_;
  }
  bool Intersects(const Interval& other) const {
    return !(hi_ < other.lo_ || other.hi_ < lo_);
  }

  /// Sign if uniform over the interval: -1 if hi < 0, +1 if lo > 0,
  /// 0 if the interval is the point 0; otherwise the sign is ambiguous and
  /// this returns kAmbiguousSign.
  static constexpr int kAmbiguousSign = 2;
  int CertainSign() const;

  Interval operator-() const { return Interval(-hi_, -lo_); }
  Interval operator+(const Interval& other) const {
    return Interval(lo_ + other.lo_, hi_ + other.hi_);
  }
  Interval operator-(const Interval& other) const {
    return *this + (-other);
  }
  Interval operator*(const Interval& other) const;
  /// Integer power with correct even-power tightening at zero.
  Interval Pow(std::uint32_t exponent) const;

  /// Scales by an exact rational.
  Interval Scale(const Rational& factor) const;

  std::string ToString() const;

 private:
  Rational lo_;
  Rational hi_;
};

}  // namespace ccdb

#endif  // CCDB_ARITH_INTERVAL_H_
