#include "arith/bigint.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "base/logging.h"

namespace ccdb {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
// Largest magnitude the inline word can hold for a negative value (|INT64_MIN|).
constexpr std::uint64_t kNegWordMax = 1ull << 63;

std::int64_t Int64FromMagnitude(bool negative, std::uint64_t magnitude) {
  // Negate in unsigned space so |INT64_MIN| round-trips without UB.
  if (negative) return -static_cast<std::int64_t>(magnitude - 1) - 1;
  return static_cast<std::int64_t>(magnitude);
}
}  // namespace

BigInt BigInt::FromMagnitude(bool negative, unsigned __int128 magnitude) {
  if (magnitude == 0) return BigInt();
  std::uint64_t word_max = negative ? kNegWordMax
                                    : static_cast<std::uint64_t>(INT64_MAX);
  if (magnitude <= word_max) {
    return BigInt(
        Int64FromMagnitude(negative, static_cast<std::uint64_t>(magnitude)));
  }
  BigInt result;
  result.small_ = false;
  result.negative_ = negative;
  while (magnitude != 0) {
    result.limbs_.push_back(static_cast<std::uint32_t>(magnitude & 0xffffffffu));
    magnitude >>= 32;
  }
  return result;
}

BigInt BigInt::FromInt128(__int128 value) {
  bool negative = value < 0;
  unsigned __int128 magnitude =
      negative ? ~static_cast<unsigned __int128>(value) + 1
               : static_cast<unsigned __int128>(value);
  return FromMagnitude(negative, magnitude);
}

BigInt BigInt::FromLimbs(bool negative, std::vector<std::uint32_t> limbs) {
  while (!limbs.empty() && limbs.back() == 0) limbs.pop_back();
  if (limbs.size() <= 2) {
    std::uint64_t magnitude = limbs.empty() ? 0 : limbs[0];
    if (limbs.size() == 2) {
      magnitude |= static_cast<std::uint64_t>(limbs[1]) << 32;
    }
    return FromMagnitude(negative, magnitude);
  }
  BigInt result;
  result.small_ = false;
  result.negative_ = negative;
  result.limbs_ = std::move(limbs);
  return result;
}

std::vector<std::uint32_t> BigInt::MagnitudeLimbs() const {
  if (!small_) return limbs_;
  std::vector<std::uint32_t> out;
  std::uint64_t magnitude = SmallMagnitude();
  if (magnitude != 0) {
    out.push_back(static_cast<std::uint32_t>(magnitude & 0xffffffffu));
    std::uint32_t high = static_cast<std::uint32_t>(magnitude >> 32);
    if (high != 0) out.push_back(high);
  }
  return out;
}

StatusOr<BigInt> BigInt::FromString(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty integer literal");
  bool negative = false;
  std::size_t i = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) {
    return Status::InvalidArgument("integer literal has no digits");
  }
  // Accumulate up to 18 digits at a time in a hardware word, splicing each
  // chunk in with one multiply-add; word-sized literals never leave the
  // inline representation.
  BigInt result;
  std::uint64_t chunk = 0;
  int chunk_digits = 0;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("invalid digit in integer literal: " +
                                     std::string(text));
    }
    chunk = chunk * 10 + static_cast<std::uint64_t>(c - '0');
    if (++chunk_digits == 18) {
      result = result * BigInt(1000000000000000000ll) +
               BigInt(static_cast<std::int64_t>(chunk));
      chunk = 0;
      chunk_digits = 0;
    }
  }
  if (chunk_digits > 0) {
    std::int64_t scale = 1;
    for (int d = 0; d < chunk_digits; ++d) scale *= 10;
    result = result * BigInt(scale) + BigInt(static_cast<std::int64_t>(chunk));
  }
  if (negative) result = -result;
  return result;
}

BigInt BigInt::Pow2(std::uint64_t exponent) {
  if (exponent <= 62) return BigInt(std::int64_t{1} << exponent);
  BigInt result;
  result.small_ = false;
  result.negative_ = false;
  result.limbs_.assign(exponent / 32 + 1, 0);
  result.limbs_.back() = 1u << (exponent % 32);
  return result;
}

std::int64_t BigInt::ToInt64() const {
  CCDB_CHECK(small_);
  return value_;
}

double BigInt::ToDouble() const {
  if (small_) return static_cast<double>(value_);
  double result = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    result = result * static_cast<double>(kBase) + limbs_[i];
  }
  return negative_ ? -result : result;
}

BigInt BigInt::operator-() const {
  if (small_) {
    if (value_ == INT64_MIN) return FromMagnitude(false, kNegWordMax);
    return BigInt(-value_);
  }
  // Negating +2^63 lands back on INT64_MIN, so the flip must re-canonicalize.
  return FromLimbs(!negative_, limbs_);
}

BigInt BigInt::Abs() const {
  if (small_) {
    if (value_ == INT64_MIN) return FromMagnitude(false, kNegWordMax);
    return BigInt(value_ < 0 ? -value_ : value_);
  }
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

int BigInt::CompareMagnitude(const std::vector<std::uint32_t>& a,
                             const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::Compare(const BigInt& other) const {
  if (small_ && other.small_) {
    if (value_ == other.value_) return 0;
    return value_ < other.value_ ? -1 : 1;
  }
  // Mixed: by canonical form the limb value's magnitude exceeds every
  // inline value's, so its sign decides.
  if (!small_ && other.small_) return negative_ ? -1 : 1;
  if (small_ && !other.small_) return other.negative_ ? 1 : -1;
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMagnitude(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

std::vector<std::uint32_t> BigInt::AddMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  const auto& big = a.size() >= b.size() ? a : b;
  const auto& small = a.size() >= b.size() ? b : a;
  std::vector<std::uint32_t> out;
  out.reserve(big.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < big.size(); ++i) {
    std::uint64_t sum = carry + big[i] + (i < small.size() ? small[i] : 0u);
    out.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) out.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

std::vector<std::uint32_t> BigInt::SubMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  CCDB_DCHECK(CompareMagnitude(a, b) >= 0);
  std::vector<std::uint32_t> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<std::uint32_t>(diff));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<std::uint32_t> BigInt::MulMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
BigInt::DivModMagnitude(const std::vector<std::uint32_t>& a,
                        const std::vector<std::uint32_t>& b) {
  CCDB_CHECK_MSG(!b.empty(), "division by zero");
  if (CompareMagnitude(a, b) < 0) return {{}, a};
  if (b.size() == 1) {
    // Short division.
    std::vector<std::uint32_t> quotient(a.size(), 0);
    std::uint64_t rem = 0;
    std::uint64_t divisor = b[0];
    for (std::size_t i = a.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | a[i];
      quotient[i] = static_cast<std::uint32_t>(cur / divisor);
      rem = cur % divisor;
    }
    while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();
    std::vector<std::uint32_t> remainder;
    if (rem != 0) remainder.push_back(static_cast<std::uint32_t>(rem));
    return {quotient, remainder};
  }

  // Knuth TAOCP vol.2 algorithm D. Normalize so the divisor's top limb has
  // its high bit set.
  int shift = 0;
  {
    std::uint32_t top = b.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  auto shl = [](const std::vector<std::uint32_t>& v, int s) {
    std::vector<std::uint32_t> out(v.size() + 1, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] |= s == 0 ? v[i] : (v[i] << s);
      if (s != 0) out[i + 1] |= static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(v[i]) >> (32 - s));
    }
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
  };
  std::vector<std::uint32_t> u = shl(a, shift);
  std::vector<std::uint32_t> v = shl(b, shift);
  std::size_t n = v.size();
  std::size_t m = u.size() - n;
  u.resize(u.size() + 1, 0);  // u[m+n] slot

  std::vector<std::uint32_t> q(m + 1, 0);
  for (std::size_t j = m + 1; j-- > 0;) {
    std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = numerator / v[n - 1];
    std::uint64_t rhat = numerator % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply-subtract qhat*v from u[j..j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t product = qhat * v[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) - borrow -
                          static_cast<std::int64_t>(product & 0xffffffffu);
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t diff = static_cast<std::int64_t>(u[j + n]) - borrow -
                        static_cast<std::int64_t>(carry);
    if (diff < 0) {
      // qhat was one too large: add back.
      diff += static_cast<std::int64_t>(kBase);
      --qhat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = static_cast<std::uint64_t>(u[i + j]) + v[i] +
                            add_carry;
        u[i + j] = static_cast<std::uint32_t>(sum & 0xffffffffu);
        add_carry = sum >> 32;
      }
      diff += static_cast<std::int64_t>(add_carry);
      diff &= 0xffffffff;
    }
    u[j + n] = static_cast<std::uint32_t>(diff);
    q[j] = static_cast<std::uint32_t>(qhat);
  }
  while (!q.empty() && q.back() == 0) q.pop_back();

  // Denormalize the remainder u[0..n-1] >> shift.
  std::vector<std::uint32_t> r(u.begin(), u.begin() + n);
  if (shift != 0) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      r[i] >>= shift;
      if (i + 1 < n) {
        r[i] |= u[i + 1] << (32 - shift);
      }
    }
  }
  while (!r.empty() && r.back() == 0) r.pop_back();
  return {q, r};
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (small_ && other.small_) {
    std::int64_t sum;
    if (!__builtin_add_overflow(value_, other.value_, &sum)) {
      return BigInt(sum);
    }
    return FromInt128(static_cast<__int128>(value_) + other.value_);
  }
  bool a_neg = is_negative();
  bool b_neg = other.is_negative();
  std::vector<std::uint32_t> a = MagnitudeLimbs();
  std::vector<std::uint32_t> b = other.MagnitudeLimbs();
  if (a_neg == b_neg) return FromLimbs(a_neg, AddMagnitude(a, b));
  int cmp = CompareMagnitude(a, b);
  if (cmp >= 0) return FromLimbs(a_neg, SubMagnitude(a, b));
  return FromLimbs(b_neg, SubMagnitude(b, a));
}

BigInt BigInt::operator-(const BigInt& other) const {
  if (small_ && other.small_) {
    std::int64_t diff;
    if (!__builtin_sub_overflow(value_, other.value_, &diff)) {
      return BigInt(diff);
    }
    return FromInt128(static_cast<__int128>(value_) - other.value_);
  }
  return *this + (-other);
}

BigInt BigInt::operator*(const BigInt& other) const {
  if (small_ && other.small_) {
    std::int64_t product;
    if (!__builtin_mul_overflow(value_, other.value_, &product)) {
      return BigInt(product);
    }
    return FromInt128(static_cast<__int128>(value_) * other.value_);
  }
  bool negative = is_negative() != other.is_negative();
  return FromLimbs(negative, MulMagnitude(MagnitudeLimbs(),
                                          other.MagnitudeLimbs()));
}

std::pair<BigInt, BigInt> BigInt::DivMod(const BigInt& divisor) const {
  if (small_ && divisor.small_) {
    CCDB_CHECK_MSG(divisor.value_ != 0, "division by zero");
    if (value_ == INT64_MIN && divisor.value_ == -1) {
      // The lone overflowing hardware quotient: |INT64_MIN| spills.
      return {FromMagnitude(false, kNegWordMax), BigInt()};
    }
    return {BigInt(value_ / divisor.value_), BigInt(value_ % divisor.value_)};
  }
  auto [qm, rm] = DivModMagnitude(MagnitudeLimbs(), divisor.MagnitudeLimbs());
  bool q_negative = is_negative() != divisor.is_negative();
  bool r_negative = is_negative();
  return {FromLimbs(q_negative, std::move(qm)),
          FromLimbs(r_negative, std::move(rm))};
}

BigInt BigInt::operator/(const BigInt& other) const {
  return DivMod(other).first;
}

BigInt BigInt::operator%(const BigInt& other) const {
  return DivMod(other).second;
}

BigInt BigInt::ShiftLeft(std::uint64_t bits) const {
  if (is_zero() || bits == 0) return *this;
  if (small_ && bits <= 62) {
    // bit_length <= 64 and bits <= 62, so the product has at most 126 bits.
    return FromInt128(static_cast<__int128>(value_) << bits);
  }
  std::uint64_t limb_shift = bits / 32;
  int bit_shift = static_cast<int>(bits % 32);
  std::vector<std::uint32_t> source = MagnitudeLimbs();
  std::vector<std::uint32_t> out;
  out.assign(limb_shift, 0);
  if (bit_shift == 0) {
    out.insert(out.end(), source.begin(), source.end());
  } else {
    std::uint32_t carry = 0;
    for (std::uint32_t limb : source) {
      out.push_back((limb << bit_shift) | carry);
      carry = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(limb) >> (32 - bit_shift));
    }
    if (carry != 0) out.push_back(carry);
  }
  return FromLimbs(is_negative(), std::move(out));
}

BigInt BigInt::ShiftRight(std::uint64_t bits) const {
  if (small_) {
    if (bits >= 64) return BigInt();
    return FromMagnitude(value_ < 0, SmallMagnitude() >> bits);
  }
  std::uint64_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  int bit_shift = static_cast<int>(bits % 32);
  std::vector<std::uint32_t> out(limbs_.begin() + limb_shift, limbs_.end());
  if (bit_shift != 0) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] >>= bit_shift;
      if (i + 1 < out.size()) {
        out[i] |= out[i + 1] << (32 - bit_shift);
      }
    }
  }
  return FromLimbs(negative_, std::move(out));
}

BigInt BigInt::Pow(std::uint32_t exponent) const {
  BigInt base = *this;
  BigInt result(1);
  while (exponent != 0) {
    if (exponent & 1u) result *= base;
    base *= base;
    exponent >>= 1;
  }
  return result;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  if (a.small_ && b.small_) {
    std::uint64_t x = a.SmallMagnitude();
    std::uint64_t y = b.SmallMagnitude();
    while (y != 0) {
      std::uint64_t r = x % y;
      x = y;
      y = r;
    }
    return FromMagnitude(false, x);
  }
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.is_zero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

std::string BigInt::ToString() const {
  if (small_) return std::to_string(value_);
  std::vector<std::uint32_t> digits;  // base 10^9 chunks, little-endian
  std::vector<std::uint32_t> work = limbs_;
  while (!work.empty()) {
    std::uint64_t rem = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | work[i];
      work[i] = static_cast<std::uint32_t>(cur / 1000000000u);
      rem = cur % 1000000000u;
    }
    digits.push_back(static_cast<std::uint32_t>(rem));
    while (!work.empty() && work.back() == 0) work.pop_back();
  }
  std::string out;
  if (negative_) out.push_back('-');
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u", digits.back());
  out += buf;
  for (std::size_t i = digits.size() - 1; i-- > 0;) {
    std::snprintf(buf, sizeof(buf), "%09u", digits[i]);
    out += buf;
  }
  return out;
}

std::size_t BigInt::Hash() const {
  if (small_) {
    // Hash the 32-bit limb decomposition so values hash identically to the
    // limb representation they would have had before the inline fast path.
    std::size_t h = value_ < 0 ? 0x9e3779b97f4a7c15ull : 0;
    std::uint64_t magnitude = SmallMagnitude();
    if (magnitude != 0) {
      h = h * 1099511628211ull + static_cast<std::uint32_t>(magnitude);
      std::uint32_t high = static_cast<std::uint32_t>(magnitude >> 32);
      if (high != 0) h = h * 1099511628211ull + high;
    }
    return h;
  }
  std::size_t h = negative_ ? 0x9e3779b97f4a7c15ull : 0;
  for (std::uint32_t limb : limbs_) {
    h = h * 1099511628211ull + limb;
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace ccdb
