#include "arith/bigint.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "base/logging.h"

namespace ccdb {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
}  // namespace

BigInt::BigInt(std::int64_t value) : negative_(value < 0) {
  // Avoid overflow when negating INT64_MIN by working in unsigned space.
  std::uint64_t magnitude =
      value < 0 ? ~static_cast<std::uint64_t>(value) + 1
                : static_cast<std::uint64_t>(value);
  if (magnitude != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(magnitude & 0xffffffffu));
    std::uint32_t high = static_cast<std::uint32_t>(magnitude >> 32);
    if (high != 0) limbs_.push_back(high);
  }
}

StatusOr<BigInt> BigInt::FromString(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty integer literal");
  bool negative = false;
  std::size_t i = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) {
    return Status::InvalidArgument("integer literal has no digits");
  }
  BigInt result;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("invalid digit in integer literal: " +
                                     std::string(text));
    }
    result = result * BigInt(10) + BigInt(c - '0');
  }
  if (negative && !result.is_zero()) result.negative_ = true;
  return result;
}

BigInt BigInt::Pow2(std::uint64_t exponent) {
  BigInt result;
  result.limbs_.assign(exponent / 32 + 1, 0);
  result.limbs_.back() = 1u << (exponent % 32);
  return result;
}

std::uint64_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::uint64_t bits = static_cast<std::uint64_t>(limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::FitsInt64() const {
  if (limbs_.size() > 2) return false;
  if (limbs_.size() < 2) return true;
  std::uint64_t magnitude =
      (static_cast<std::uint64_t>(limbs_[1]) << 32) | limbs_[0];
  if (negative_) return magnitude <= (1ull << 63);
  return magnitude < (1ull << 63);
}

std::int64_t BigInt::ToInt64() const {
  CCDB_CHECK(FitsInt64());
  std::uint64_t magnitude = 0;
  if (!limbs_.empty()) magnitude = limbs_[0];
  if (limbs_.size() == 2) magnitude |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (negative_) return -static_cast<std::int64_t>(magnitude - 1) - 1;
  return static_cast<std::int64_t>(magnitude);
}

double BigInt::ToDouble() const {
  double result = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    result = result * static_cast<double>(kBase) + limbs_[i];
  }
  return negative_ ? -result : result;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.is_zero()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

int BigInt::CompareMagnitude(const std::vector<std::uint32_t>& a,
                             const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMagnitude(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

std::vector<std::uint32_t> BigInt::AddMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  const auto& big = a.size() >= b.size() ? a : b;
  const auto& small = a.size() >= b.size() ? b : a;
  std::vector<std::uint32_t> out;
  out.reserve(big.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < big.size(); ++i) {
    std::uint64_t sum = carry + big[i] + (i < small.size() ? small[i] : 0u);
    out.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) out.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

std::vector<std::uint32_t> BigInt::SubMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  CCDB_DCHECK(CompareMagnitude(a, b) >= 0);
  std::vector<std::uint32_t> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<std::uint32_t>(diff));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<std::uint32_t> BigInt::MulMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
BigInt::DivModMagnitude(const std::vector<std::uint32_t>& a,
                        const std::vector<std::uint32_t>& b) {
  CCDB_CHECK_MSG(!b.empty(), "division by zero");
  if (CompareMagnitude(a, b) < 0) return {{}, a};
  if (b.size() == 1) {
    // Short division.
    std::vector<std::uint32_t> quotient(a.size(), 0);
    std::uint64_t rem = 0;
    std::uint64_t divisor = b[0];
    for (std::size_t i = a.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | a[i];
      quotient[i] = static_cast<std::uint32_t>(cur / divisor);
      rem = cur % divisor;
    }
    while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();
    std::vector<std::uint32_t> remainder;
    if (rem != 0) remainder.push_back(static_cast<std::uint32_t>(rem));
    return {quotient, remainder};
  }

  // Knuth TAOCP vol.2 algorithm D. Normalize so the divisor's top limb has
  // its high bit set.
  int shift = 0;
  {
    std::uint32_t top = b.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  auto shl = [](const std::vector<std::uint32_t>& v, int s) {
    std::vector<std::uint32_t> out(v.size() + 1, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] |= s == 0 ? v[i] : (v[i] << s);
      if (s != 0) out[i + 1] |= static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(v[i]) >> (32 - s));
    }
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
  };
  std::vector<std::uint32_t> u = shl(a, shift);
  std::vector<std::uint32_t> v = shl(b, shift);
  std::size_t n = v.size();
  std::size_t m = u.size() - n;
  u.resize(u.size() + 1, 0);  // u[m+n] slot

  std::vector<std::uint32_t> q(m + 1, 0);
  for (std::size_t j = m + 1; j-- > 0;) {
    std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = numerator / v[n - 1];
    std::uint64_t rhat = numerator % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply-subtract qhat*v from u[j..j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t product = qhat * v[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) - borrow -
                          static_cast<std::int64_t>(product & 0xffffffffu);
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t diff = static_cast<std::int64_t>(u[j + n]) - borrow -
                        static_cast<std::int64_t>(carry);
    if (diff < 0) {
      // qhat was one too large: add back.
      diff += static_cast<std::int64_t>(kBase);
      --qhat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = static_cast<std::uint64_t>(u[i + j]) + v[i] +
                            add_carry;
        u[i + j] = static_cast<std::uint32_t>(sum & 0xffffffffu);
        add_carry = sum >> 32;
      }
      diff += static_cast<std::int64_t>(add_carry);
      diff &= 0xffffffff;
    }
    u[j + n] = static_cast<std::uint32_t>(diff);
    q[j] = static_cast<std::uint32_t>(qhat);
  }
  while (!q.empty() && q.back() == 0) q.pop_back();

  // Denormalize the remainder u[0..n-1] >> shift.
  std::vector<std::uint32_t> r(u.begin(), u.begin() + n);
  if (shift != 0) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      r[i] >>= shift;
      if (i + 1 < n) {
        r[i] |= u[i + 1] << (32 - shift);
      }
    }
  }
  while (!r.empty() && r.back() == 0) r.pop_back();
  return {q, r};
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt result;
  if (negative_ == other.negative_) {
    result.limbs_ = AddMagnitude(limbs_, other.limbs_);
    result.negative_ = negative_;
  } else {
    int cmp = CompareMagnitude(limbs_, other.limbs_);
    if (cmp >= 0) {
      result.limbs_ = SubMagnitude(limbs_, other.limbs_);
      result.negative_ = negative_;
    } else {
      result.limbs_ = SubMagnitude(other.limbs_, limbs_);
      result.negative_ = other.negative_;
    }
  }
  result.Normalize();
  return result;
}

BigInt BigInt::operator-(const BigInt& other) const { return *this + (-other); }

BigInt BigInt::operator*(const BigInt& other) const {
  BigInt result;
  result.limbs_ = MulMagnitude(limbs_, other.limbs_);
  result.negative_ = !result.limbs_.empty() && (negative_ != other.negative_);
  return result;
}

std::pair<BigInt, BigInt> BigInt::DivMod(const BigInt& divisor) const {
  auto [qm, rm] = DivModMagnitude(limbs_, divisor.limbs_);
  BigInt quotient, remainder;
  quotient.limbs_ = std::move(qm);
  quotient.negative_ = !quotient.limbs_.empty() &&
                       (negative_ != divisor.negative_);
  remainder.limbs_ = std::move(rm);
  remainder.negative_ = !remainder.limbs_.empty() && negative_;
  return {std::move(quotient), std::move(remainder)};
}

BigInt BigInt::operator/(const BigInt& other) const {
  return DivMod(other).first;
}

BigInt BigInt::operator%(const BigInt& other) const {
  return DivMod(other).second;
}

BigInt BigInt::ShiftLeft(std::uint64_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt r = *this;
    return r;
  }
  std::uint64_t limb_shift = bits / 32;
  int bit_shift = static_cast<int>(bits % 32);
  BigInt result;
  result.negative_ = negative_;
  result.limbs_.assign(limb_shift, 0);
  if (bit_shift == 0) {
    result.limbs_.insert(result.limbs_.end(), limbs_.begin(), limbs_.end());
  } else {
    std::uint32_t carry = 0;
    for (std::uint32_t limb : limbs_) {
      result.limbs_.push_back((limb << bit_shift) | carry);
      carry = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(limb) >> (32 - bit_shift));
    }
    if (carry != 0) result.limbs_.push_back(carry);
  }
  result.Normalize();
  return result;
}

BigInt BigInt::ShiftRight(std::uint64_t bits) const {
  std::uint64_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  int bit_shift = static_cast<int>(bits % 32);
  BigInt result;
  result.negative_ = negative_;
  result.limbs_.assign(limbs_.begin() + limb_shift, limbs_.end());
  if (bit_shift != 0) {
    for (std::size_t i = 0; i < result.limbs_.size(); ++i) {
      result.limbs_[i] >>= bit_shift;
      if (i + 1 < result.limbs_.size()) {
        result.limbs_[i] |= result.limbs_[i + 1] << (32 - bit_shift);
      }
    }
  }
  result.Normalize();
  return result;
}

BigInt BigInt::Pow(std::uint32_t exponent) const {
  BigInt base = *this;
  BigInt result(1);
  while (exponent != 0) {
    if (exponent & 1u) result *= base;
    base *= base;
    exponent >>= 1;
  }
  return result;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.is_zero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  std::vector<std::uint32_t> digits;  // base 10^9 chunks, little-endian
  std::vector<std::uint32_t> work = limbs_;
  while (!work.empty()) {
    std::uint64_t rem = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | work[i];
      work[i] = static_cast<std::uint32_t>(cur / 1000000000u);
      rem = cur % 1000000000u;
    }
    digits.push_back(static_cast<std::uint32_t>(rem));
    while (!work.empty() && work.back() == 0) work.pop_back();
  }
  std::string out;
  if (negative_) out.push_back('-');
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u", digits.back());
  out += buf;
  for (std::size_t i = digits.size() - 1; i-- > 0;) {
    std::snprintf(buf, sizeof(buf), "%09u", digits[i]);
    out += buf;
  }
  return out;
}

std::size_t BigInt::Hash() const {
  std::size_t h = negative_ ? 0x9e3779b97f4a7c15ull : 0;
  for (std::uint32_t limb : limbs_) {
    h = h * 1099511628211ull + limb;
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace ccdb
