#include "arith/interval.h"

#include <algorithm>

#include "base/logging.h"

namespace ccdb {

Interval::Interval(Rational lo, Rational hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  CCDB_CHECK_MSG(lo_ <= hi_, "interval with lo > hi");
}

int Interval::CertainSign() const {
  if (hi_.sign() < 0) return -1;
  if (lo_.sign() > 0) return 1;
  if (lo_.is_zero() && hi_.is_zero()) return 0;
  return kAmbiguousSign;
}

Interval Interval::operator*(const Interval& other) const {
  Rational products[4] = {lo_ * other.lo_, lo_ * other.hi_, hi_ * other.lo_,
                          hi_ * other.hi_};
  Rational lo = products[0];
  Rational hi = products[0];
  for (int i = 1; i < 4; ++i) {
    if (products[i] < lo) lo = products[i];
    if (products[i] > hi) hi = products[i];
  }
  return Interval(std::move(lo), std::move(hi));
}

Interval Interval::Pow(std::uint32_t exponent) const {
  if (exponent == 0) return Interval(Rational(1));
  if (exponent % 2 == 1 || lo_.sign() >= 0) {
    return Interval(lo_.Pow(exponent), hi_.Pow(exponent));
  }
  if (hi_.sign() <= 0) {
    return Interval(hi_.Pow(exponent), lo_.Pow(exponent));
  }
  // Straddles zero with an even power: minimum is 0.
  Rational bound = std::max(lo_.Abs(), hi_).Pow(exponent);
  return Interval(Rational(0), std::move(bound));
}

Interval Interval::Scale(const Rational& factor) const {
  if (factor.sign() >= 0) return Interval(lo_ * factor, hi_ * factor);
  return Interval(hi_ * factor, lo_ * factor);
}

std::string Interval::ToString() const {
  return "[" + lo_.ToString() + ", " + hi_.ToString() + "]";
}

}  // namespace ccdb
