#include "arith/zsplit.h"

#include "base/logging.h"

namespace ccdb {

PartialZk::PartialZk(std::uint32_t k) : k_(k) {
  CCDB_CHECK_MSG(k >= 2, "PartialZk requires k >= 2");
}

bool PartialZk::InRange(const BigInt& value) const {
  return value.bit_length() <= k_;
}

StatusOr<BigInt> PartialZk::Add(const BigInt& a, const BigInt& b) const {
  CCDB_DCHECK(InRange(a) && InRange(b));
  ++op_count_;
  BigInt sum = a + b;
  if (!InRange(sum)) return Status::Undefined("Z_k addition overflow");
  return sum;
}

StatusOr<BigInt> PartialZk::Sub(const BigInt& a, const BigInt& b) const {
  CCDB_DCHECK(InRange(a) && InRange(b));
  ++op_count_;
  BigInt diff = a - b;
  if (!InRange(diff)) return Status::Undefined("Z_k subtraction overflow");
  return diff;
}

StatusOr<BigInt> PartialZk::Mul(const BigInt& a, const BigInt& b) const {
  CCDB_DCHECK(InRange(a) && InRange(b));
  ++op_count_;
  BigInt product = a * b;
  if (!InRange(product)) return Status::Undefined("Z_k multiplication overflow");
  return product;
}

bool PartialZk::Less(const BigInt& a, const BigInt& b) const {
  CCDB_DCHECK(InRange(a) && InRange(b));
  ++op_count_;
  return a < b;
}

SplitZk::SplitZk(std::uint32_t k) : k_(k), modulus_(BigInt::Pow2(k)) {
  CCDB_CHECK_MSG(k >= 1, "SplitZk requires k >= 1");
}

bool SplitZk::InRange(const BigInt& value) const {
  return !value.is_negative() && value < modulus_;
}

BigInt SplitZk::AddL(const BigInt& a, const BigInt& b) const {
  CCDB_DCHECK(InRange(a) && InRange(b));
  ++op_count_;
  BigInt sum = a + b;
  if (sum >= modulus_) sum -= modulus_;
  return sum;
}

BigInt SplitZk::AddU(const BigInt& a, const BigInt& b) const {
  CCDB_DCHECK(InRange(a) && InRange(b));
  ++op_count_;
  return (a + b) >= modulus_ ? BigInt(1) : BigInt(0);
}

BigInt SplitZk::MulL(const BigInt& a, const BigInt& b) const {
  CCDB_DCHECK(InRange(a) && InRange(b));
  ++op_count_;
  return (a * b) % modulus_;
}

BigInt SplitZk::MulU(const BigInt& a, const BigInt& b) const {
  CCDB_DCHECK(InRange(a) && InRange(b));
  ++op_count_;
  return (a * b) / modulus_;
}

bool SplitZk::Less(const BigInt& a, const BigInt& b) const {
  CCDB_DCHECK(InRange(a) && InRange(b));
  ++op_count_;
  return a < b;
}

DoubledSplitZk::DoubledSplitZk(const SplitZk* base) : base_(base) {
  CCDB_CHECK(base != nullptr);
}

SplitPair DoubledSplitZk::Encode(const BigInt& value) const {
  CCDB_CHECK_MSG(!value.is_negative() && value.bit_length() <= k(),
                 "value outside [0, 2^{2k})");
  BigInt modulus = BigInt::Pow2(base_->k());
  return SplitPair{value % modulus, value / modulus};
}

BigInt DoubledSplitZk::Decode(const SplitPair& value) const {
  return value.hi.ShiftLeft(base_->k()) + value.lo;
}

SplitPair DoubledSplitZk::AddL(const SplitPair& a, const SplitPair& b) const {
  BigInt lo = base_->AddL(a.lo, b.lo);
  BigInt c0 = base_->AddU(a.lo, b.lo);
  BigInt hi1 = base_->AddL(a.hi, b.hi);
  BigInt hi = base_->AddL(hi1, c0);
  return SplitPair{std::move(lo), std::move(hi)};
}

SplitPair DoubledSplitZk::AddU(const SplitPair& a, const SplitPair& b) const {
  // The bits above position 2k of a 2k+2k sum form a single bit: the carry
  // out of the high half. Two carry sources — the high-half add itself and
  // the low-half carry rippling through — and at most one can fire.
  BigInt c0 = base_->AddU(a.lo, b.lo);
  BigInt hi1 = base_->AddL(a.hi, b.hi);
  BigInt c1 = base_->AddU(a.hi, b.hi);
  BigInt c2 = base_->AddU(hi1, c0);
  BigInt carry = base_->AddL(c1, c2);
  return SplitPair{std::move(carry), BigInt(0)};
}

void DoubledSplitZk::AddWordInto(BigInt out[4], int index,
                                 const BigInt& w) const {
  BigInt carry = w;
  int i = index;
  while (!carry.is_zero()) {
    CCDB_CHECK_MSG(i < 4, "carry out of the 4k-bit accumulator");
    BigInt next = base_->AddU(out[i], carry);
    out[i] = base_->AddL(out[i], carry);
    carry = std::move(next);
    ++i;
  }
}

void DoubledSplitZk::FullMul(const SplitPair& a, const SplitPair& b,
                             BigInt out[4]) const {
  for (int i = 0; i < 4; ++i) out[i] = BigInt(0);
  const BigInt* aw[2] = {&a.lo, &a.hi};
  const BigInt* bw[2] = {&b.lo, &b.hi};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      BigInt low = base_->MulL(*aw[i], *bw[j]);
      BigInt high = base_->MulU(*aw[i], *bw[j]);
      AddWordInto(out, i + j, low);
      AddWordInto(out, i + j + 1, high);
    }
  }
}

SplitPair DoubledSplitZk::MulL(const SplitPair& a, const SplitPair& b) const {
  BigInt words[4];
  FullMul(a, b, words);
  return SplitPair{std::move(words[0]), std::move(words[1])};
}

SplitPair DoubledSplitZk::MulU(const SplitPair& a, const SplitPair& b) const {
  BigInt words[4];
  FullMul(a, b, words);
  return SplitPair{std::move(words[2]), std::move(words[3])};
}

bool DoubledSplitZk::Less(const SplitPair& a, const SplitPair& b) const {
  if (base_->Less(a.hi, b.hi)) return true;
  if (base_->Less(b.hi, a.hi)) return false;
  return base_->Less(a.lo, b.lo);
}

DoubledPartialZk::DoubledPartialZk(const PartialZk* base) : base_(base) {
  CCDB_CHECK(base != nullptr);
}

DoubledPartialZk::Pair DoubledPartialZk::Encode(const BigInt& value) const {
  BigInt modulus = BigInt::Pow2(base_->k());
  // Floor-division split so lo lands in [0, 2^k).
  BigInt hi = value / modulus;
  BigInt lo = value % modulus;
  if (lo.is_negative()) {
    lo += modulus;
    hi -= BigInt(1);
  }
  CCDB_CHECK_MSG(base_->InRange(hi),
                 "value outside the pair-encodable fragment of Z_2k");
  return Pair{std::move(hi), std::move(lo)};
}

BigInt DoubledPartialZk::Decode(const Pair& value) const {
  return value.hi.ShiftLeft(base_->k()) + value.lo;
}

bool DoubledPartialZk::Less(const Pair& a, const Pair& b) const {
  // Lexicographic, exactly the paper's definition:
  // [x, x'] < [y, y'] iff x < y or (x = y and x' < y').
  if (base_->Less(a.hi, b.hi)) return true;
  if (base_->Less(b.hi, a.hi)) return false;
  return base_->Less(a.lo, b.lo);
}

StatusOr<DoubledPartialZk::Pair> DoubledPartialZk::Add(const Pair& a,
                                                       const Pair& b) const {
  // Carry detection by *undefinedness* of the k-bit addition, exactly the
  // trick in the paper's proof ("∀γ'((x' +_k y') ≠_k γ')" — no k-bit result
  // exists iff the low halves carry): lo values are non-negative, so their
  // sum leaves Z_k precisely when it is >= 2^k.
  StatusOr<BigInt> low_sum = base_->Add(a.lo, b.lo);
  if (low_sum.ok()) {
    CCDB_ASSIGN_OR_RETURN(BigInt hi, base_->Add(a.hi, b.hi));
    return Pair{std::move(hi), std::move(*low_sum)};
  }
  // Carry case: lo = a.lo + b.lo - 2^k computed inside Z_k by splitting the
  // subtrahend into two copies of the constant 2^(k-1) (the paper's 1_k).
  BigInt high_unit = base_->HighUnit();
  CCDB_ASSIGN_OR_RETURN(BigInt a_shifted, base_->Sub(a.lo, high_unit));
  CCDB_ASSIGN_OR_RETURN(BigInt b_shifted, base_->Sub(b.lo, high_unit));
  CCDB_ASSIGN_OR_RETURN(BigInt lo, base_->Add(a_shifted, b_shifted));
  // hi = a.hi + b.hi + 1 with Z_k intermediates; two association orders
  // cover every case whose result lies in Z_k.
  StatusOr<BigInt> hi_sum = base_->Add(a.hi, b.hi);
  if (hi_sum.ok()) {
    CCDB_ASSIGN_OR_RETURN(BigInt hi, base_->Add(*hi_sum, BigInt(1)));
    return Pair{std::move(hi), std::move(lo)};
  }
  CCDB_ASSIGN_OR_RETURN(BigInt a_plus_one, base_->Add(a.hi, BigInt(1)));
  CCDB_ASSIGN_OR_RETURN(BigInt hi, base_->Add(a_plus_one, b.hi));
  return Pair{std::move(hi), std::move(lo)};
}

}  // namespace ccdb
