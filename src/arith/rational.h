#ifndef CCDB_ARITH_RATIONAL_H_
#define CCDB_ARITH_RATIONAL_H_

#include <string>
#include <string_view>
#include <utility>

#include "arith/bigint.h"
#include "base/status.h"

namespace ccdb {

/// Exact rational number with canonical representation: denominator > 0 and
/// gcd(|numerator|, denominator) == 1. Zero is 0/1.
///
/// Rationals are the coefficient field of every polynomial in the engine and
/// the endpoint type of isolating intervals; the quantifier-elimination
/// pipeline stays exact in them (the paper's QE "still carries out arithmetic
/// operations in exact values", Section 4).
class Rational {
 public:
  /// Constructs zero.
  Rational() : num_(0), den_(1) {}
  /// Implicit from integers: polynomial coefficients are written Rational(3).
  Rational(BigInt value) : num_(std::move(value)), den_(1) {}  // NOLINT
  Rational(std::int64_t value) : num_(value), den_(1) {}       // NOLINT
  /// Constructs numerator/denominator; requires denominator != 0.
  Rational(BigInt numerator, BigInt denominator);

  /// Parses "a", "-a", "a/b", or a decimal like "3.25" / "-0.5".
  static StatusOr<Rational> FromString(std::string_view text);

  /// Exact conversion from a binary floating value n * 2^e.
  static Rational FromScaledInt(const BigInt& mantissa, std::int64_t exponent);

  const BigInt& numerator() const { return num_; }
  const BigInt& denominator() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  bool is_integer() const { return den_.is_one(); }
  int sign() const { return num_.sign(); }

  /// max(bit length of numerator, bit length of denominator): the size
  /// measure used throughout the paper's complexity statements.
  std::uint64_t bit_length() const;

  Rational operator-() const;
  Rational Abs() const;
  /// Multiplicative inverse; requires nonzero.
  Rational Inverse() const;

  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// Requires a nonzero divisor.
  Rational operator/(const Rational& other) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  /// Returns this^exponent (exponent may be negative if nonzero base).
  Rational Pow(std::int32_t exponent) const;

  bool operator==(const Rational& other) const {
    return num_ == other.num_ && den_ == other.den_;
  }
  bool operator!=(const Rational& other) const { return !(*this == other); }
  bool operator<(const Rational& other) const { return Compare(other) < 0; }
  bool operator<=(const Rational& other) const { return Compare(other) <= 0; }
  bool operator>(const Rational& other) const { return Compare(other) > 0; }
  bool operator>=(const Rational& other) const { return Compare(other) >= 0; }

  /// Three-way comparison: -1, 0, +1.
  int Compare(const Rational& other) const;

  /// Largest integer <= value.
  BigInt Floor() const;
  /// Smallest integer >= value.
  BigInt Ceil() const;

  /// Midpoint of two rationals.
  static Rational Midpoint(const Rational& a, const Rational& b);

  /// Lossy conversion to double.
  double ToDouble() const;

  /// "a" when integral, "a/b" otherwise.
  std::string ToString() const;

  /// Hash suitable for unordered containers.
  std::size_t Hash() const {
    return num_.Hash() * 31 + den_.Hash();
  }

 private:
  // Tag for the trusted constructor: the caller guarantees den > 0 and
  // gcd(|num|, den) == 1, so Canonicalize is skipped. Every fast path that
  // reduces with word/__int128 gcds funnels through this.
  struct AlreadyCanonical {};
  Rational(BigInt numerator, BigInt denominator, AlreadyCanonical)
      : num_(std::move(numerator)), den_(std::move(denominator)) {}

  void Canonicalize();

  BigInt num_;
  BigInt den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& value);

}  // namespace ccdb

#endif  // CCDB_ARITH_RATIONAL_H_
