#ifndef CCDB_ARITH_BIGINT_H_
#define CCDB_ARITH_BIGINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace ccdb {

/// Arbitrary-precision signed integer with a small-value-optimized
/// representation (mppp-style): values that fit in a machine word live in an
/// inline int64_t and are computed with overflow-checked hardware arithmetic
/// (__builtin_*_overflow); only results that actually overflow the word spill
/// to a sign-magnitude vector of 32-bit limbs, and limb results that shrink
/// back into the word range are normalized back down.
///
/// Implemented from scratch rather than using GMP because the paper's
/// finite-precision structures Z_k and F_k are defined by *bit length*
/// (Section 4, Lemmas 4.4/4.5): the reproduction instruments the bit length
/// of every intermediate integer produced by the quantifier-elimination
/// algorithm, so the integer type itself must expose it cheaply — O(1) in
/// both representations — and the whole pipeline must route through it.
///
/// Representation invariant (canonical form): a value is inline
/// (small_ == true) if and only if it fits in int64_t. Consequently every
/// mathematical value has exactly one representation, so equality, hashing,
/// and rendering never depend on the path that produced a value — the
/// byte-identity contract of the whole pipeline rests on this. In the limb
/// representation limbs_ has no trailing zero limbs, is never empty, and
/// holds a magnitude strictly greater than INT64_MAX (or, when negative_,
/// strictly greater than |INT64_MIN|... i.e. >= 2^63 + 1).
class BigInt {
 public:
  /// Constructs zero.
  BigInt() : small_(true), negative_(false), value_(0) {}
  /// Implicit from machine integers: literals like BigInt(-7) are pervasive
  /// in polynomial construction.
  BigInt(std::int64_t value)  // NOLINT
      : small_(true), negative_(false), value_(value) {}

  BigInt(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt& operator=(BigInt&&) = default;

  /// Parses a base-10 integer with optional leading '-'.
  static StatusOr<BigInt> FromString(std::string_view text);

  /// Returns 2^exponent.
  static BigInt Pow2(std::uint64_t exponent);

  /// Constructs the canonical representation of a double-word value. This is
  /// the spill constructor the overflow-checked fast paths (and Rational's
  /// __int128 kernels) funnel through.
  static BigInt FromInt128(__int128 value);

  bool is_zero() const { return small_ && value_ == 0; }
  bool is_negative() const { return small_ ? value_ < 0 : negative_; }
  bool is_one() const { return small_ && value_ == 1; }

  /// Returns -1, 0, or +1.
  int sign() const {
    if (small_) return value_ == 0 ? 0 : (value_ < 0 ? -1 : 1);
    return negative_ ? -1 : 1;
  }

  /// Number of bits in the magnitude; 0 for zero. This is the measure the
  /// paper's Z_k structures bound; O(1) in both representations.
  std::uint64_t bit_length() const {
    if (small_) {
      if (value_ == 0) return 0;
      return 64u - static_cast<std::uint64_t>(
                       __builtin_clzll(SmallMagnitude()));
    }
    return static_cast<std::uint64_t>(limbs_.size() - 1) * 32 + 32u -
           static_cast<std::uint64_t>(__builtin_clz(limbs_.back()));
  }

  /// True iff the value fits in int64_t. By the canonical-form invariant
  /// this is exactly "is inline".
  bool FitsInt64() const { return small_; }
  /// Value as int64_t; requires FitsInt64().
  std::int64_t ToInt64() const;

  /// Converts to double (may lose precision or overflow to +/-inf).
  double ToDouble() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  /// Requires a nonzero divisor.
  BigInt operator/(const BigInt& other) const;
  /// Remainder with the sign of the dividend (C++ semantics).
  BigInt operator%(const BigInt& other) const;

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }
  BigInt& operator%=(const BigInt& other) { return *this = *this % other; }

  /// Returns {quotient, remainder} of truncated division in one pass.
  std::pair<BigInt, BigInt> DivMod(const BigInt& divisor) const;

  /// Left shift by `bits` (multiplication by 2^bits).
  BigInt ShiftLeft(std::uint64_t bits) const;
  /// Arithmetic-magnitude right shift: |x| >> bits with x's sign (truncation
  /// toward zero).
  BigInt ShiftRight(std::uint64_t bits) const;

  /// Returns this^exponent; 0^0 == 1.
  BigInt Pow(std::uint32_t exponent) const;

  /// Greatest common divisor of magnitudes; Gcd(0,0) == 0. Always >= 0.
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  bool operator==(const BigInt& other) const {
    if (small_ != other.small_) return false;  // canonical form
    if (small_) return value_ == other.value_;
    return negative_ == other.negative_ && limbs_ == other.limbs_;
  }
  bool operator!=(const BigInt& other) const { return !(*this == other); }
  bool operator<(const BigInt& other) const { return Compare(other) < 0; }
  bool operator<=(const BigInt& other) const { return Compare(other) <= 0; }
  bool operator>(const BigInt& other) const { return Compare(other) > 0; }
  bool operator>=(const BigInt& other) const { return Compare(other) >= 0; }

  /// Three-way comparison: -1, 0, +1.
  int Compare(const BigInt& other) const;

  /// True iff the value is even (zero is even).
  bool IsEven() const {
    return small_ ? (value_ & 1) == 0 : (limbs_[0] & 1u) == 0;
  }

  /// Base-10 rendering.
  std::string ToString() const;

  /// Hash suitable for unordered containers. Representation-independent by
  /// the canonical-form invariant, and limb-compatible with the pre-inline
  /// implementation (the inline path hashes the value's 32-bit limb
  /// decomposition).
  std::size_t Hash() const;

 private:
  static int CompareMagnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> AddMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> SubMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> MulMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  // Knuth algorithm D on magnitudes; returns {quotient, remainder}.
  static std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
  DivModMagnitude(const std::vector<std::uint32_t>& a,
                  const std::vector<std::uint32_t>& b);

  // Canonicalizing constructors: trim trailing zero limbs / demote values
  // that shrank back into the word range.
  static BigInt FromMagnitude(bool negative, unsigned __int128 magnitude);
  static BigInt FromLimbs(bool negative, std::vector<std::uint32_t> limbs);

  // |value_|; requires small_. Well-defined for INT64_MIN.
  std::uint64_t SmallMagnitude() const {
    return value_ < 0 ? ~static_cast<std::uint64_t>(value_) + 1
                      : static_cast<std::uint64_t>(value_);
  }
  // The magnitude as limbs regardless of representation (allocates for the
  // inline case; only used on spill paths that are about to do limb work).
  std::vector<std::uint32_t> MagnitudeLimbs() const;

  bool small_;
  bool negative_;                     // sign of the limb representation
  std::int64_t value_;                // inline payload, valid iff small_
  std::vector<std::uint32_t> limbs_;  // little-endian base 2^32, iff !small_
};

/// Stream output in base 10.
std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace ccdb

#endif  // CCDB_ARITH_BIGINT_H_
