#ifndef CCDB_ARITH_BIGINT_H_
#define CCDB_ARITH_BIGINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace ccdb {

/// Arbitrary-precision signed integer (sign-magnitude, 32-bit limbs).
///
/// Implemented from scratch rather than using GMP because the paper's
/// finite-precision structures Z_k and F_k are defined by *bit length*
/// (Section 4, Lemmas 4.4/4.5): the reproduction instruments the bit length
/// of every intermediate integer produced by the quantifier-elimination
/// algorithm, so the integer type itself must expose it cheaply and the
/// whole pipeline must route through it.
///
/// Invariant: limbs_ has no trailing zero limbs; zero is represented by an
/// empty limbs_ with negative_ == false.
class BigInt {
 public:
  /// Constructs zero.
  BigInt() : negative_(false) {}
  /// Implicit from machine integers: literals like BigInt(-7) are pervasive
  /// in polynomial construction.
  BigInt(std::int64_t value);  // NOLINT

  BigInt(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt& operator=(BigInt&&) = default;

  /// Parses a base-10 integer with optional leading '-'.
  static StatusOr<BigInt> FromString(std::string_view text);

  /// Returns 2^exponent.
  static BigInt Pow2(std::uint64_t exponent);

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  bool is_one() const {
    return !negative_ && limbs_.size() == 1 && limbs_[0] == 1;
  }

  /// Returns -1, 0, or +1.
  int sign() const { return is_zero() ? 0 : (negative_ ? -1 : 1); }

  /// Number of bits in the magnitude; 0 for zero. This is the measure the
  /// paper's Z_k structures bound.
  std::uint64_t bit_length() const;

  /// True iff the value fits in int64_t.
  bool FitsInt64() const;
  /// Value as int64_t; requires FitsInt64().
  std::int64_t ToInt64() const;

  /// Converts to double (may lose precision or overflow to +/-inf).
  double ToDouble() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  /// Requires a nonzero divisor.
  BigInt operator/(const BigInt& other) const;
  /// Remainder with the sign of the dividend (C++ semantics).
  BigInt operator%(const BigInt& other) const;

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }
  BigInt& operator%=(const BigInt& other) { return *this = *this % other; }

  /// Returns {quotient, remainder} of truncated division in one pass.
  std::pair<BigInt, BigInt> DivMod(const BigInt& divisor) const;

  /// Left shift by `bits` (multiplication by 2^bits).
  BigInt ShiftLeft(std::uint64_t bits) const;
  /// Arithmetic-magnitude right shift: |x| >> bits with x's sign (truncation
  /// toward zero).
  BigInt ShiftRight(std::uint64_t bits) const;

  /// Returns this^exponent; 0^0 == 1.
  BigInt Pow(std::uint32_t exponent) const;

  /// Greatest common divisor of magnitudes; Gcd(0,0) == 0. Always >= 0.
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  bool operator==(const BigInt& other) const {
    return negative_ == other.negative_ && limbs_ == other.limbs_;
  }
  bool operator!=(const BigInt& other) const { return !(*this == other); }
  bool operator<(const BigInt& other) const { return Compare(other) < 0; }
  bool operator<=(const BigInt& other) const { return Compare(other) <= 0; }
  bool operator>(const BigInt& other) const { return Compare(other) > 0; }
  bool operator>=(const BigInt& other) const { return Compare(other) >= 0; }

  /// Three-way comparison: -1, 0, +1.
  int Compare(const BigInt& other) const;

  /// True iff the value is even (zero is even).
  bool IsEven() const { return limbs_.empty() || (limbs_[0] & 1u) == 0; }

  /// Base-10 rendering.
  std::string ToString() const;

  /// Hash suitable for unordered containers.
  std::size_t Hash() const;

 private:
  static int CompareMagnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> AddMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> SubMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> MulMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  // Knuth algorithm D on magnitudes; returns {quotient, remainder}.
  static std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
  DivModMagnitude(const std::vector<std::uint32_t>& a,
                  const std::vector<std::uint32_t>& b);

  void Normalize();

  bool negative_;
  std::vector<std::uint32_t> limbs_;  // little-endian, base 2^32
};

/// Stream output in base 10.
std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace ccdb

#endif  // CCDB_ARITH_BIGINT_H_
