#include "base/failpoint.h"

#include <cstdlib>

#include "base/logging.h"
#include "base/metrics.h"

namespace ccdb {

namespace {

Status MakeInjected(FailpointSpec::Kind kind, const std::string& site) {
  std::string message = "failpoint " + site + " injected";
  switch (kind) {
    case FailpointSpec::Kind::kError:
      return Status::Internal(message);
    case FailpointSpec::Kind::kExhaust:
      return Status::ResourceExhausted(message);
    case FailpointSpec::Kind::kUndefined:
      return Status::Undefined(message);
    case FailpointSpec::Kind::kNumericalFailure:
      return Status::NumericalFailure(message);
    case FailpointSpec::Kind::kCrash:
    case FailpointSpec::Kind::kTornWrite:
    case FailpointSpec::Kind::kShortWrite:
      // Crash is handled before MakeInjected; an IO kind fired at a
      // non-IO site degrades to a plain injected error.
      return Status::Internal(message);
  }
  return Status::Internal(message);
}

// Simulated kill -9 at the site: no destructors, no atexit hooks, no
// stream flushes — exactly the state a crashed process leaves behind.
// (Bytes already write()n are in the page cache and survive, which is the
// fault model: process death, not power loss.)
[[noreturn]] void CrashNow(const char* site) {
  std::fprintf(stderr, "ccdb: failpoint %s injected crash (exit %d)\n", site,
               FailpointRegistry::kCrashExitCode);
  std::_Exit(FailpointRegistry::kCrashExitCode);
}

StatusOr<FailpointSpec::Kind> ParseKind(const std::string& name) {
  if (name == "error") return FailpointSpec::Kind::kError;
  if (name == "exhaust") return FailpointSpec::Kind::kExhaust;
  if (name == "undefined") return FailpointSpec::Kind::kUndefined;
  if (name == "numfail") return FailpointSpec::Kind::kNumericalFailure;
  if (name == "crash") return FailpointSpec::Kind::kCrash;
  if (name == "torn-write" || name == "torn") {
    return FailpointSpec::Kind::kTornWrite;
  }
  if (name == "short-write" || name == "short") {
    return FailpointSpec::Kind::kShortWrite;
  }
  return Status::InvalidArgument(
      "unknown failpoint kind \"" + name +
      "\" (error|exhaust|undefined|numfail|crash|torn-write|short-write)");
}

}  // namespace

FailpointRegistry::FailpointRegistry() = default;

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = [] {
    auto* r = new FailpointRegistry();
    if (const char* env = std::getenv("CCDB_FAILPOINTS")) {
      Status status = r->Configure(env);
      if (!status.ok()) {
        CCDB_LOG(ERROR) << "CCDB_FAILPOINTS ignored: " << status.ToString();
      }
    }
    return r;
  }();
  return *registry;
}

Status FailpointRegistry::Configure(const std::string& config) {
  // Parse the whole spec before arming anything: a malformed entry must not
  // leave the registry half-configured.
  std::vector<std::pair<std::string, FailpointSpec>> parsed;
  std::size_t pos = 0;
  while (pos < config.size()) {
    std::size_t comma = config.find(',', pos);
    std::string entry = config.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? config.size() : comma + 1;
    // Trim spaces.
    std::size_t b = entry.find_first_not_of(" \t");
    if (b == std::string::npos) continue;  // empty entry tolerated
    std::size_t e = entry.find_last_not_of(" \t");
    entry = entry.substr(b, e - b + 1);

    std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint entry \"" + entry +
                                     "\" is not site=kind[@N]");
    }
    std::string site = entry.substr(0, eq);
    std::string rhs = entry.substr(eq + 1);
    FailpointSpec spec;
    std::size_t at = rhs.find('@');
    std::string kind_name = at == std::string::npos ? rhs : rhs.substr(0, at);
    CCDB_ASSIGN_OR_RETURN(spec.kind, ParseKind(kind_name));
    if (at != std::string::npos) {
      std::string count = rhs.substr(at + 1);
      if (count.empty() ||
          count.find_first_not_of("0123456789") != std::string::npos) {
        return Status::InvalidArgument("failpoint entry \"" + entry +
                                       "\" has a malformed hit count");
      }
      spec.fire_at = std::strtoull(count.c_str(), nullptr, 10);
      if (spec.fire_at == 0) {
        return Status::InvalidArgument("failpoint hit count must be >= 1 in \"" +
                                       entry + "\"");
      }
    }
    parsed.emplace_back(std::move(site), spec);
  }
  for (auto& [site, spec] : parsed) {
    Set(site, spec);
  }
  return Status::Ok();
}

void FailpointRegistry::Set(const std::string& site, FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  if (!state.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.spec = spec;
  state.hits = 0;
  CCDB_LOG(INFO) << "failpoint armed: " << site << " fire_at=" << spec.fire_at;
}

void FailpointRegistry::Clear(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end() && it->second.armed) {
    it->second.armed = false;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::ClearAll() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

std::uint64_t FailpointRegistry::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::vector<std::string> FailpointRegistry::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> armed;
  for (const auto& [site, state] : sites_) {
    if (state.armed) armed.push_back(site);
  }
  return armed;
}

Status FailpointRegistry::Hit(const char* site) {
  FailpointSpec::Kind fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SiteState& state = sites_[site];
    ++state.hits;
    if (!state.armed || state.hits != state.spec.fire_at) return Status::Ok();
    // One-shot: firing disarms the site so recovery paths (a ladder retry,
    // the next query) run clean.
    state.armed = false;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
    CCDB_METRIC_COUNT("failpoint.injected", 1);
    CCDB_LOG(INFO) << "failpoint fired: " << site << " at hit " << state.hits;
    fired = state.spec.kind;
  }
  if (fired == FailpointSpec::Kind::kCrash) CrashNow(site);
  return MakeInjected(fired, site);
}

IoFault FailpointRegistry::HitIo(const char* site, Status* injected) {
  *injected = Status::Ok();
  FailpointSpec::Kind fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SiteState& state = sites_[site];
    ++state.hits;
    if (!state.armed || state.hits != state.spec.fire_at) {
      return IoFault::kNone;
    }
    state.armed = false;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
    CCDB_METRIC_COUNT("failpoint.injected", 1);
    CCDB_LOG(INFO) << "failpoint fired: " << site << " at hit " << state.hits;
    fired = state.spec.kind;
  }
  switch (fired) {
    case FailpointSpec::Kind::kCrash:
      CrashNow(site);
    case FailpointSpec::Kind::kTornWrite:
      return IoFault::kTornWrite;
    case FailpointSpec::Kind::kShortWrite:
      return IoFault::kShortWrite;
    default:
      // A Status kind armed at an IO site still injects — through the out
      // param, since the write API reports faults in bytes, not Status.
      *injected = MakeInjected(fired, site);
      return IoFault::kNone;
  }
}

}  // namespace ccdb
