#ifndef CCDB_BASE_THREAD_POOL_H_
#define CCDB_BASE_THREAD_POOL_H_

/// Fixed-size work-stealing thread pool for the query pipeline.
///
/// QE over the reals is doubly exponential in the worst case, but its
/// dominant phases — CAD cell lifting, disjunct-wise elimination, and the
/// Datalog¬ inflationary fixpoint — are embarrassingly parallel per
/// cell/disjunct/rule. A ThreadPool of N threads means N concurrent
/// runners: the pool spawns N-1 worker threads and the thread calling
/// ParallelFor/ParallelMap participates as the Nth runner, so a pool of
/// size 1 spawns no threads at all and every "parallel" helper degenerates
/// to the exact serial loop (same iteration order, same charging order).
///
/// Determinism contract: ParallelFor/ParallelMap collect results into
/// index-addressed slots and callers merge them in canonical index order —
/// never completion order — so the output of a successful parallel stage
/// is bit-identical at every thread count. On failure, the reported error
/// is the failure of the LOWEST failing index (indices are claimed in
/// order, so the lowest failing index always runs), matching what the
/// serial loop would have returned.
///
/// Each worker owns a deque: it pushes/pops its own work LIFO and steals
/// FIFO from siblings when starved. Pool activity is folded into the
/// global metrics registry ("threadpool.tasks_queued", ".tasks_stolen",
/// ".tasks_completed", ".tasks_inline", "threadpool.task_us",
/// "threadpool.threads").
///
/// ParallelFor may be called from inside a pool task (nested parallelism):
/// the inner caller drains its own batch while waiting, so progress is
/// guaranteed even when every worker is busy with ancestor batches.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/status.h"

namespace ccdb {

class ThreadPool {
 public:
  /// A pool of `threads` concurrent runners (spawns threads-1 workers;
  /// values <= 1 spawn none and run everything inline on the caller).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total runners (caller + workers); >= 1.
  int threads() const { return threads_; }
  /// Spawned worker threads (threads() - 1).
  int workers() const { return static_cast<int>(workers_.size()); }

  /// The process-wide shared pool, sized by EngineConfig::Process().threads
  /// (the CCDB_THREADS knob) at first use (default 1 = serial). Never null.
  /// Legacy default only — sessions (engine/session.h) own their own pools
  /// sized by their session config.
  static ThreadPool* Shared();
  /// Replaces the shared pool with one of `threads` runners. Not
  /// thread-safe against concurrent users of the previous pool — call
  /// from a quiesced state (e.g. bench/test setup).
  static void ConfigureShared(int threads);
  /// EngineConfig::Process().threads (the CCDB_THREADS knob; 1 when
  /// unset/invalid).
  static int DefaultThreads();
  /// `pool` when non-null, else Shared(). The pipeline's options structs
  /// carry a nullable ThreadPool*; null means "use the process default".
  static ThreadPool* Resolve(ThreadPool* pool) {
    return pool != nullptr ? pool : Shared();
  }

  /// Enqueues a fire-and-forget task. With no workers the task runs
  /// inline before Submit returns.
  void Submit(std::function<void()> task);

  /// Runs body(0..count-1), each exactly once, distributing across the
  /// pool; the calling thread participates. Returns the lowest-index
  /// non-OK status (or rethrows the lowest-index exception). After the
  /// first failure, still-unclaimed indices are skipped; every claimed
  /// body finishes before ParallelFor returns.
  Status ParallelFor(std::size_t count,
                     const std::function<Status(std::size_t)>& body);

  /// Index-addressed map: out[i] = *body(i). The output vector is ordered
  /// by index regardless of completion order. Error semantics match
  /// ParallelFor; on failure the partial results are discarded.
  template <typename T>
  StatusOr<std::vector<T>> ParallelMap(
      std::size_t count,
      const std::function<StatusOr<T>(std::size_t)>& body) {
    std::vector<T> out(count);
    Status status = ParallelFor(count, [&](std::size_t i) -> Status {
      StatusOr<T> result = body(i);
      CCDB_RETURN_IF_ERROR(result.status());
      out[i] = *std::move(result);
      return Status::Ok();
    });
    CCDB_RETURN_IF_ERROR(status);
    return out;
  }

 private:
  struct Batch;
  struct WorkerSlot;

  using Task = std::function<void()>;

  // Runs batch indices on the calling thread until none remain claimable.
  static void DrainBatch(const std::shared_ptr<Batch>& batch);

  void WorkerLoop(int self);
  // Pops from the worker's own deque (LIFO); steals FIFO from siblings.
  bool PopOrSteal(int self, Task* task);

  int threads_ = 1;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> workers_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::size_t pending_ = 0;  // queued, not yet popped (guarded by wake_mu_)
  bool stopping_ = false;    // guarded by wake_mu_
  std::size_t next_slot_ = 0;  // round-robin submit cursor (wake_mu_)
};

}  // namespace ccdb

#endif  // CCDB_BASE_THREAD_POOL_H_
