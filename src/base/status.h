#ifndef CCDB_BASE_STATUS_H_
#define CCDB_BASE_STATUS_H_

#include <cstdlib>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>

namespace ccdb {

/// Error categories used across the library.
///
/// The library does not throw exceptions across API boundaries; fallible
/// operations return Status or StatusOr<T>. kUndefined is distinguished from
/// kInvalidArgument because the paper's finite-precision semantics makes
/// queries *partial*: a query whose evaluation exceeds the precision budget
/// has an undefined answer (Section 4 of the paper), which is a semantic
/// outcome, not a caller error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
  kOutOfRange,
  /// The finite-precision semantics could not produce a value (overflow of
  /// exponent/mantissa in F_k, or bit-length overflow in Z_k).
  kUndefined,
  /// A numerical module failed to converge within its budget.
  kNumericalFailure,
  /// A ResourceGovernor budget (deadline, steps, bytes) was exceeded or the
  /// evaluation was cancelled. Distinguished from kUndefined: kUndefined is
  /// a *semantic* outcome of the finite-precision model (retrying cannot
  /// help), kResourceExhausted is an *operational* one (a retry with more
  /// budget, or under a degraded policy rung, may well succeed).
  kResourceExhausted,
};

/// Returns a short human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result, modeled after absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Undefined(std::string msg) {
    return Status(StatusCode::kUndefined, std::move(msg));
  }
  static Status NumericalFailure(std::string msg) {
    return Status(StatusCode::kNumericalFailure, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "CODE: message" for diagnostics.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error result, modeled after absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or a non-OK Status keeps call sites
  /// terse (`return value;` / `return Status::Undefined(...)`).
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed with OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T& value() & {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return *std::move(value_);
  }

  const T& operator*() const& {
    EnsureOk();
    return *value_;
  }
  T& operator*() & {
    EnsureOk();
    return *value_;
  }
  const T* operator->() const {
    EnsureOk();
    return &*value_;
  }
  T* operator->() {
    EnsureOk();
    return &*value_;
  }

 private:
  // Accessing the value of an error StatusOr is a programming error; abort
  // with the held status instead of dereferencing an empty optional (UB).
  void EnsureOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr,
                   "StatusOr: value accessed on error status — %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define CCDB_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::ccdb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

#define CCDB_CONCAT_IMPL(a, b) a##b
#define CCDB_CONCAT(a, b) CCDB_CONCAT_IMPL(a, b)

/// Evaluates a StatusOr expression, propagating errors, and binds the value.
#define CCDB_ASSIGN_OR_RETURN(lhs, expr)                         \
  auto CCDB_CONCAT(_ccdb_sor_, __LINE__) = (expr);               \
  if (!CCDB_CONCAT(_ccdb_sor_, __LINE__).ok())                   \
    return CCDB_CONCAT(_ccdb_sor_, __LINE__).status();           \
  lhs = std::move(CCDB_CONCAT(_ccdb_sor_, __LINE__)).value()

}  // namespace ccdb

#endif  // CCDB_BASE_STATUS_H_
