#include "base/profile.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "base/metrics.h"

namespace ccdb {

namespace {

std::string FormatMs(std::int64_t us) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.3f ms",
                static_cast<double>(us) / 1e3);
  return buffer;
}

}  // namespace

std::int64_t ProfileNode::exclusive_us() const {
  std::int64_t children_us = 0;
  for (const ProfileNode& child : children) {
    children_us += child.inclusive_us;
  }
  return std::max<std::int64_t>(0, inclusive_us - children_us);
}

std::uint64_t ProfileNode::Counter(const std::string& name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0;
}

std::string ProfileNode::ToString(int indent) const {
  std::ostringstream out;
  out << std::string(static_cast<std::size_t>(indent) * 2, ' ') << label
      << "  " << FormatMs(inclusive_us);
  if (!children.empty()) out << " (self " << FormatMs(exclusive_us()) << ")";
  if (!counters.empty()) {
    out << "  [";
    bool first = true;
    for (const auto& [key, value] : counters) {
      if (!first) out << " ";
      first = false;
      out << key << "=" << value;
    }
    out << "]";
  }
  out << "\n";
  for (const ProfileNode& child : children) {
    out << child.ToString(indent + 1);
  }
  return out.str();
}

std::string ProfileNode::ToJson() const {
  JsonObjectBuilder counter_obj;
  for (const auto& [key, value] : counters) counter_obj.Add(key, value);
  std::string child_array = "[";
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (i > 0) child_array += ',';
    child_array += children[i].ToJson();
  }
  child_array += ']';
  return JsonObjectBuilder()
      .Add("label", label)
      .Add("inclusive_us", static_cast<std::int64_t>(inclusive_us))
      .Add("exclusive_us", static_cast<std::int64_t>(exclusive_us()))
      .AddRaw("counters", counter_obj.Build())
      .AddRaw("children", child_array)
      .Build();
}

std::string SpanProfile::ToString() const {
  std::vector<std::pair<std::string, const SpanAggregate*>> sorted;
  sorted.reserve(paths.size());
  for (const auto& [path, agg] : paths) sorted.emplace_back(path, &agg);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) {
                     return a.second->inclusive_us > b.second->inclusive_us;
                   });
  std::ostringstream out;
  out << "span profile (" << total_events << " event(s), " << paths.size()
      << " path(s))\n";
  char buffer[64];
  for (const auto& [path, agg] : sorted) {
    std::snprintf(buffer, sizeof(buffer), "%8llu %12.3f %12.3f  ",
                  static_cast<unsigned long long>(agg->count),
                  static_cast<double>(agg->inclusive_us) / 1e3,
                  static_cast<double>(agg->exclusive_us) / 1e3);
    out << buffer << path << "\n";
  }
  return out.str();
}

std::string SpanProfile::ToJson() const {
  JsonObjectBuilder path_obj;
  for (const auto& [path, agg] : paths) {
    path_obj.AddRaw(path, JsonObjectBuilder()
                              .Add("count", agg.count)
                              .Add("inclusive_us",
                                   static_cast<std::int64_t>(agg.inclusive_us))
                              .Add("exclusive_us",
                                   static_cast<std::int64_t>(agg.exclusive_us))
                              .Build());
  }
  return JsonObjectBuilder()
      .Add("total_events", total_events)
      .AddRaw("paths", path_obj.Build())
      .Build();
}

SpanProfile BuildSpanProfile(const std::vector<TraceEvent>& events) {
  SpanProfile profile;
  profile.total_events = events.size();

  // Group events per thread; within a thread sort by (start ascending,
  // duration descending) so a containing span sorts before its children
  // and nesting falls out of a single stack pass.
  std::map<std::uint64_t, std::vector<const TraceEvent*>> by_thread;
  for (const TraceEvent& event : events) {
    by_thread[event.thread_id].push_back(&event);
  }
  for (auto& [tid, thread_events] : by_thread) {
    std::stable_sort(thread_events.begin(), thread_events.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->timestamp_us != b->timestamp_us) {
                         return a->timestamp_us < b->timestamp_us;
                       }
                       return a->duration_us > b->duration_us;
                     });
    struct Frame {
      const TraceEvent* event;
      std::string path;
      std::int64_t children_us = 0;
    };
    std::vector<Frame> stack;
    auto pop_frame = [&profile, &stack]() {
      Frame& frame = stack.back();
      SpanAggregate& agg = profile.paths[frame.path];
      agg.count += 1;
      agg.inclusive_us += frame.event->duration_us;
      agg.exclusive_us += std::max<std::int64_t>(
          0, frame.event->duration_us - frame.children_us);
      std::int64_t duration = frame.event->duration_us;
      stack.pop_back();
      if (!stack.empty()) stack.back().children_us += duration;
    };
    for (const TraceEvent* event : thread_events) {
      // Unwind frames that end at or before this span's start.
      while (!stack.empty() &&
             stack.back().event->timestamp_us +
                     stack.back().event->duration_us <=
                 event->timestamp_us) {
        pop_frame();
      }
      Frame frame;
      frame.event = event;
      frame.path = stack.empty() ? std::string(event->name)
                                 : stack.back().path + ";" + event->name;
      stack.push_back(std::move(frame));
    }
    while (!stack.empty()) pop_frame();
  }
  return profile;
}

SpanProfile BuildSpanProfile() {
  return BuildSpanProfile(Tracer::Global().Events());
}

}  // namespace ccdb
