#include "base/query_log.h"

#include <cstdlib>

#include "base/metrics.h"

namespace ccdb {

QueryLog::QueryLog() {
  if (const char* env = std::getenv("CCDB_QUERY_LOG")) {
    if (env[0] != '\0') {
      Status status = Enable(env);
      (void)status;  // a bad path just leaves logging off
    }
  }
}

QueryLog& QueryLog::Global() {
  static QueryLog* log = new QueryLog();  // intentionally leaked
  return *log;
}

Status QueryLog::Enable(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::Internal("cannot open query log " + path +
                            " for appending");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = file;
  path_ = path;
  enabled_ = true;
  return Status::Ok();
}

void QueryLog::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
  path_.clear();
  enabled_ = false;
}

void QueryLog::Append(const std::string& json_object) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_ || file_ == nullptr) return;
  std::fwrite(json_object.data(), 1, json_object.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
  ++records_written_;
  CCDB_METRIC_COUNT("query_log.records", 1);
}

std::string QueryLog::HashText(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(h));
  return buffer;
}

}  // namespace ccdb
