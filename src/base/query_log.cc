#include "base/query_log.h"

#include "base/config.h"
#include "base/metrics.h"

namespace ccdb {

QueryLog& QueryLog::Global() {
  static QueryLog* log = [] {
    auto* l = new QueryLog();  // intentionally leaked
    const std::string& path = EngineConfig::Process().query_log_path;
    if (!path.empty()) {
      Status status = l->Enable(path);
      if (!status.ok()) {
        // The log never takes the engine down: warn once, run unlogged.
        std::fprintf(stderr, "ccdb: query log disabled: %s\n",
                     status.ToString().c_str());
      }
    }
    return l;
  }();
  return *log;
}

Status QueryLog::Enable(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::Internal("cannot open query log " + path +
                            " for appending");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = file;
  path_ = path;
  enabled_ = true;
  return Status::Ok();
}

void QueryLog::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
  path_.clear();
  enabled_ = false;
}

void QueryLog::Append(const std::string& json_object) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_ || file_ == nullptr) return;
  std::size_t written =
      std::fwrite(json_object.data(), 1, json_object.size(), file_);
  bool failed = written != json_object.size();
  failed = std::fputc('\n', file_) == EOF || failed;
  failed = std::fflush(file_) != 0 || failed;
  if (failed) {
    // Disk full / path revoked: one warning, then stand down — queries
    // must keep answering with or without their black box.
    std::fprintf(stderr,
                 "ccdb: query log write to %s failed; logging disabled\n",
                 path_.c_str());
    CCDB_METRIC_COUNT("query_log.write_failures", 1);
    std::fclose(file_);
    file_ = nullptr;
    path_.clear();
    enabled_ = false;
    return;
  }
  ++records_written_;
  CCDB_METRIC_COUNT("query_log.records", 1);
}

std::string QueryLog::HashText(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(h));
  return buffer;
}

}  // namespace ccdb
