#ifndef CCDB_BASE_LOGGING_H_
#define CCDB_BASE_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

namespace ccdb {

/// Severities for CCDB_LOG. The runtime minimum defaults to kWarn and can
/// be changed with SetMinLogLevel() or the CCDB_LOG_LEVEL environment
/// variable (DEBUG | INFO | WARN | ERROR | OFF), read once at first use.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Spellings used by the CCDB_LOG(severity) macro.
namespace log_severity {
inline constexpr LogLevel DEBUG = LogLevel::kDebug;
inline constexpr LogLevel INFO = LogLevel::kInfo;
inline constexpr LogLevel WARN = LogLevel::kWarn;
inline constexpr LogLevel ERROR = LogLevel::kError;
}  // namespace log_severity

namespace internal_logging {

inline const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

/// The CCDB_LOG_LEVEL knob mapped to a LogLevel. Defined in
/// base/config.cc — configuration is resolved only there.
LogLevel ConfiguredMinLogLevel();

inline LogLevel& MinLogLevelSlot() {
  static LogLevel level = ConfiguredMinLogLevel();
  return level;
}

inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(MinLogLevelSlot());
}

/// One log statement: buffers the streamed message and emits a single
/// formatted line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) {
    // Basename only: paths are long and the line is for humans.
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LogLevelName(level) << " "
            << (base != nullptr ? base + 1 : file) << ":" << line << "] ";
  }
  ~LogMessage() {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Runtime minimum severity; statements below it are skipped (the check is
/// one branch, the message is never formatted).
inline void SetMinLogLevel(LogLevel level) {
  internal_logging::MinLogLevelSlot() = level;
}
inline LogLevel MinLogLevel() { return internal_logging::MinLogLevelSlot(); }

namespace internal_logging {

/// Terminates the process after printing a fatal invariant-violation message.
/// CHECK failures indicate programming errors (broken invariants), never
/// recoverable conditions; recoverable conditions use Status.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& extra) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace ccdb

/// Leveled logging: CCDB_LOG(INFO) << "message" << value;
/// Severity is one of DEBUG, INFO, WARN, ERROR. Statements below the
/// runtime minimum (SetMinLogLevel / CCDB_LOG_LEVEL env var, default WARN)
/// cost a single branch.
#define CCDB_LOG(severity)                                                   \
  if (!::ccdb::internal_logging::LogEnabled(::ccdb::log_severity::severity)) \
    ;                                                                        \
  else                                                                       \
    ::ccdb::internal_logging::LogMessage(::ccdb::log_severity::severity,     \
                                         __FILE__, __LINE__)                 \
        .stream()

/// Aborts if `cond` is false. For internal invariants only.
#define CCDB_CHECK(cond)                                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::ccdb::internal_logging::CheckFailed(__FILE__, __LINE__, #cond, ""); \
    }                                                                       \
  } while (0)

/// Aborts with a formatted message if `cond` is false.
#define CCDB_CHECK_MSG(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream _ccdb_oss;                                     \
      _ccdb_oss << msg;                                                 \
      ::ccdb::internal_logging::CheckFailed(__FILE__, __LINE__, #cond,  \
                                            _ccdb_oss.str());           \
    }                                                                   \
  } while (0)

#ifndef NDEBUG
#define CCDB_DCHECK(cond) CCDB_CHECK(cond)
#else
#define CCDB_DCHECK(cond) \
  do {                    \
  } while (0)
#endif

#endif  // CCDB_BASE_LOGGING_H_
