#ifndef CCDB_BASE_LOGGING_H_
#define CCDB_BASE_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace ccdb {
namespace internal_logging {

/// Terminates the process after printing a fatal invariant-violation message.
/// CHECK failures indicate programming errors (broken invariants), never
/// recoverable conditions; recoverable conditions use Status.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& extra) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace ccdb

/// Aborts if `cond` is false. For internal invariants only.
#define CCDB_CHECK(cond)                                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::ccdb::internal_logging::CheckFailed(__FILE__, __LINE__, #cond, ""); \
    }                                                                       \
  } while (0)

/// Aborts with a formatted message if `cond` is false.
#define CCDB_CHECK_MSG(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream _ccdb_oss;                                     \
      _ccdb_oss << msg;                                                 \
      ::ccdb::internal_logging::CheckFailed(__FILE__, __LINE__, #cond,  \
                                            _ccdb_oss.str());           \
    }                                                                   \
  } while (0)

#ifndef NDEBUG
#define CCDB_DCHECK(cond) CCDB_CHECK(cond)
#else
#define CCDB_DCHECK(cond) \
  do {                    \
  } while (0)
#endif

#endif  // CCDB_BASE_LOGGING_H_
