#include "base/resource.h"

#include <sstream>

#include "base/metrics.h"

namespace ccdb {

const char* ExhaustionReasonName(ExhaustionReason reason) {
  switch (reason) {
    case ExhaustionReason::kNone:
      return "none";
    case ExhaustionReason::kDeadline:
      return "deadline";
    case ExhaustionReason::kSteps:
      return "steps";
    case ExhaustionReason::kBytes:
      return "bytes";
    case ExhaustionReason::kCancelled:
      return "cancelled";
  }
  return "?";
}

namespace {
std::int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ResourceGovernor::ResourceGovernor(ResourceLimits limits,
                                   std::atomic<bool>* cancel)
    : limits_(limits), cancel_(cancel), start_ns_(SteadyNowNanos()) {}

double ResourceGovernor::elapsed_seconds() const {
  return static_cast<double>(SteadyNowNanos() -
                             start_ns_.load(std::memory_order_acquire)) *
         1e-9;
}

ResourceGovernor::Consumption ResourceGovernor::Snapshot() const {
  Consumption snapshot;
  snapshot.steps = steps_consumed();
  snapshot.bytes = bytes_consumed();
  snapshot.elapsed_seconds = elapsed_seconds();
  return snapshot;
}

ExhaustionReason ResourceGovernor::reason() const {
  if (!exhausted()) return ExhaustionReason::kNone;
  std::lock_guard<std::mutex> lock(trip_mu_);
  return reason_;
}

std::string ResourceGovernor::tripped_stage() const {
  if (!exhausted()) return "";
  std::lock_guard<std::mutex> lock(trip_mu_);
  return tripped_stage_;
}

Status ResourceGovernor::ExhaustedStatus() const {
  std::lock_guard<std::mutex> lock(trip_mu_);
  return Status(StatusCode::kResourceExhausted, verdict_message_);
}

Status ResourceGovernor::Trip(ExhaustionReason reason,
                              const char* stage) const {
  std::lock_guard<std::mutex> lock(trip_mu_);
  // Another thread may have tripped between our check and the lock; the
  // first verdict wins so every caller sees one consistent story.
  if (!tripped_.load(std::memory_order_relaxed)) {
    reason_ = reason;
    tripped_stage_ = stage;
    double elapsed = elapsed_seconds();
    std::ostringstream out;
    out << "stage=" << stage << " reason=" << ExhaustionReasonName(reason)
        << " steps=" << steps_consumed() << " bytes=" << bytes_consumed()
        << " elapsed_ms=" << elapsed * 1e3;
    if (limits_.deadline_seconds > 0.0) {
      out << " deadline_ms=" << limits_.deadline_seconds * 1e3;
    }
    if (limits_.step_budget > 0) out << " step_budget=" << limits_.step_budget;
    if (limits_.byte_budget > 0) out << " byte_budget=" << limits_.byte_budget;
    verdict_message_ = out.str();
    CCDB_METRIC_COUNT("governor.exhausted", 1);
    switch (reason) {
      case ExhaustionReason::kDeadline:
        CCDB_METRIC_COUNT("governor.exhausted.deadline", 1);
        break;
      case ExhaustionReason::kSteps:
        CCDB_METRIC_COUNT("governor.exhausted.steps", 1);
        break;
      case ExhaustionReason::kBytes:
        CCDB_METRIC_COUNT("governor.exhausted.bytes", 1);
        break;
      case ExhaustionReason::kCancelled:
        CCDB_METRIC_COUNT("governor.exhausted.cancelled", 1);
        break;
      case ExhaustionReason::kNone:
        break;
    }
    CCDB_METRIC_HISTOGRAM("governor.steps_at_trip", steps_consumed());
    CCDB_METRIC_HISTOGRAM("governor.elapsed_us_at_trip",
                          static_cast<std::uint64_t>(elapsed * 1e6));
    tripped_.store(true, std::memory_order_release);
  }
  return Status(StatusCode::kResourceExhausted, verdict_message_);
}

Status ResourceGovernor::Charge(const char* stage, std::uint64_t steps) const {
  if (tripped_.load(std::memory_order_acquire)) return ExhaustedStatus();
  std::uint64_t consumed =
      steps_.fetch_add(steps, std::memory_order_relaxed) + steps;
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    return Trip(ExhaustionReason::kCancelled, stage);
  }
  if (limits_.step_budget > 0 && consumed > limits_.step_budget) {
    return Trip(ExhaustionReason::kSteps, stage);
  }
  if (limits_.byte_budget > 0 &&
      bytes_.load(std::memory_order_relaxed) > limits_.byte_budget) {
    return Trip(ExhaustionReason::kBytes, stage);
  }
  // The clock is read on every charge: charges sit at loop heads whose
  // bodies dwarf a steady_clock read, and a coarser cadence would let a
  // slow step overshoot the deadline unobserved.
  if (limits_.deadline_seconds > 0.0 &&
      elapsed_seconds() > limits_.deadline_seconds) {
    return Trip(ExhaustionReason::kDeadline, stage);
  }
  return Status::Ok();
}

void ResourceGovernor::Reset() {
  std::lock_guard<std::mutex> lock(trip_mu_);
  steps_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  reason_ = ExhaustionReason::kNone;
  tripped_stage_.clear();
  verdict_message_.clear();
  start_ns_.store(SteadyNowNanos(), std::memory_order_release);
  tripped_.store(false, std::memory_order_release);
}

}  // namespace ccdb
