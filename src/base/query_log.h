#ifndef CCDB_BASE_QUERY_LOG_H_
#define CCDB_BASE_QUERY_LOG_H_

/// Structured JSONL query log — the serving layer's black-box recorder
/// (Observability v2, DESIGN.md §12).
///
/// When enabled, the engine appends one JSON object per line for every
/// query the public facade runs (Query / QueryWithPolicy / ExplainAnalyze),
/// successful or not: a stable hash of the query text, the catalog version
/// it read, the plan summary, per-stage timings, the governed verdict and
/// degradation rung when applicable, and the memo-cache temperature the
/// query ran at. Enable with the CCDB_QUERY_LOG=<path> environment
/// variable (read once, at first use) or at runtime via
/// QueryLog::Global().Enable(path) — the REPL's `.log on/off`.
///
/// Logging is OBSERVATION ONLY: answers are byte-identical with the log on
/// or off. Records are appended under a mutex and flushed per line, so a
/// crashed process keeps every completed record (the black-box property).
///
/// Failure policy: the log must never take the engine down with it. A
/// CCDB_QUERY_LOG path that cannot be opened, or a write/flush failure on
/// an enabled log (disk full, file deleted and descriptor revoked), emits
/// ONE warning line on stderr and disables logging; queries keep
/// answering.

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "base/status.h"

namespace ccdb {

/// A JSONL query log. All methods are thread-safe. Global() is the
/// process-wide instance (bound to the CCDB_QUERY_LOG knob); sessions
/// (engine/session.h) may own a private instance and route their records
/// there instead.
class QueryLog {
 public:
  /// Bumped whenever a record field is added/renamed; every record carries
  /// it as "schema_version". History: 1 = initial; 2 = added "read_set"
  /// (sorted relation names the query reads) and "invalidation" (the cache
  /// scope a mutation must hit to invalidate it: "relations:[...]" or
  /// "global"); 3 = added "session_id" (0 = facade default path) and
  /// "config" (16-hex fingerprint of the resolved EngineConfig the query
  /// ran under).
  static constexpr int kSchemaVersion = 3;

  /// A fresh, disabled log. Call Enable(path) to start appending.
  QueryLog() = default;

  /// The process-wide log, bound at first use to
  /// EngineConfig::Process().query_log_path (the CCDB_QUERY_LOG knob).
  static QueryLog& Global();

  bool enabled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return enabled_;
  }
  std::string path() const {
    std::lock_guard<std::mutex> lock(mu_);
    return path_;
  }

  /// Opens `path` for appending and starts logging. Replaces any previous
  /// destination.
  Status Enable(const std::string& path);
  void Disable();

  /// Appends one record (a complete JSON object, no trailing newline —
  /// Append adds it) and flushes. Dropped silently when disabled. On a
  /// write or flush failure: one stderr warning, then logging disables
  /// itself (queries are never failed over an unloggable record).
  void Append(const std::string& json_object);

  /// Records appended since process start (survives Disable/Enable).
  std::uint64_t records_written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_written_;
  }

  /// FNV-1a 64-bit hash of the query text, rendered as 16 lowercase hex
  /// digits — the log's stable query identity (the text itself is not
  /// logged, so logs stay small and shareable).
  static std::string HashText(const std::string& text);

 private:
  mutable std::mutex mu_;
  bool enabled_ = false;
  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t records_written_ = 0;
};

}  // namespace ccdb

#endif  // CCDB_BASE_QUERY_LOG_H_
