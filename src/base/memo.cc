#include "base/memo.h"

#include <atomic>
#include <cstdlib>

#include "base/failpoint.h"

namespace ccdb {

namespace {

// -1 = follow the environment, 0 = forced off, 1 = forced on.
std::atomic<int> g_memo_override{-1};

bool EnvEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("CCDB_QE_CACHE");
    return env == nullptr || std::string(env) != "0";
  }();
  return enabled;
}

}  // namespace

bool MemoCachesEnabled() {
  // Armed failpoints demand real execution: a memo hit would skip the very
  // stage a fault-injection test wants to reach, so the caches stand down
  // (no lookups, no inserts) while any site is armed.
  if (FailpointRegistry::Global().HasArmed()) return false;
  int forced = g_memo_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return EnvEnabled();
}

void SetMemoCachesEnabled(bool enabled) {
  g_memo_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace ccdb
