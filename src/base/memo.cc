#include "base/memo.h"

#include <atomic>

#include "base/config.h"
#include "base/failpoint.h"

namespace ccdb {

namespace {

// -1 = follow EngineConfig::Process(), 0 = forced off, 1 = forced on.
std::atomic<int> g_memo_override{-1};

}  // namespace

bool MemoCachesEnabled() {
  // Armed failpoints demand real execution: a memo hit would skip the very
  // stage a fault-injection test wants to reach, so the caches stand down
  // (no lookups, no inserts) while any site is armed.
  if (FailpointRegistry::Global().HasArmed()) return false;
  int forced = g_memo_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return EngineConfig::Process().qe_cache;
}

bool MemoCachesEnabledFor(PlanToggle memo) {
  switch (memo) {
    case PlanToggle::kOff:
      return false;
    case PlanToggle::kOn:
      // A per-session force still respects the failpoint stand-down: the
      // pure-memo contract (budget charging and fault injection never
      // depend on cache temperature) outranks any configuration.
      return !FailpointRegistry::Global().HasArmed();
    case PlanToggle::kAuto:
      break;
  }
  return MemoCachesEnabled();
}

void SetMemoCachesEnabled(bool enabled) {
  g_memo_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace ccdb
