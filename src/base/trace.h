#ifndef CCDB_BASE_TRACE_H_
#define CCDB_BASE_TRACE_H_

/// RAII span tracing for the Figure-1 query pipeline.
///
/// Spans are recorded into a process-wide, thread-safe recorder and can be
/// exported in the Chrome `trace_event` JSON format (load the file in
/// chrome://tracing or https://ui.perfetto.dev). Tracing is disabled by
/// default; when disabled, a span costs one relaxed atomic load and no
/// allocation. Enable programmatically with `Tracer::Global().SetEnabled()`
/// or by setting the `CCDB_TRACE=1` environment variable before the first
/// span is created.
///
///   {
///     CCDB_TRACE_SPAN("qe.eliminate");
///     ... // work measured as one complete ("ph":"X") event
///   }

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"

namespace ccdb {

/// One completed span: a Chrome trace_event "complete" event ("ph":"X").
struct TraceEvent {
  /// Span name; must point to a string with static storage duration (the
  /// recorder stores the pointer, not a copy, to keep recording cheap).
  const char* name = nullptr;
  /// Event category (Chrome "cat" field), static storage as well.
  const char* category = nullptr;
  /// Start, microseconds since the tracer's epoch (process start).
  std::int64_t timestamp_us = 0;
  /// Duration in microseconds.
  std::int64_t duration_us = 0;
  /// Recording thread, folded to a small integer id.
  std::uint64_t thread_id = 0;
};

/// Process-wide span recorder. All methods are thread-safe.
class Tracer {
 public:
  static Tracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Appends a completed span. Silently drops events beyond the in-memory
  /// cap (`dropped()` reports how many) so runaway traces cannot exhaust
  /// memory.
  void Record(const TraceEvent& event);

  /// Microseconds elapsed since the tracer's epoch.
  std::int64_t NowMicros() const;

  /// Serializes every recorded span as Chrome trace_event JSON:
  /// {"traceEvents":[{"name":...,"cat":...,"ph":"X","ts":...,"dur":...,
  ///   "pid":...,"tid":...},...]}.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

  /// Snapshot of every recorded span (the span profiler's input,
  /// base/profile.h).
  std::vector<TraceEvent> Events() const;

  /// Number of spans currently recorded / dropped beyond the cap.
  std::size_t size() const;
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Discards all recorded spans (keeps the enabled flag).
  void Clear();

  /// In-memory event cap; beyond it events are counted but not stored.
  static constexpr std::size_t kMaxEvents = 1 << 20;

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span: records a complete event from construction to destruction.
/// Near-zero cost when tracing is disabled (one relaxed load, no clock
/// read). `name` and `category` must have static storage duration.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "ccdb")
      : active_(Tracer::Global().enabled()) {
    if (active_) {
      name_ = name;
      category_ = category;
      start_us_ = Tracer::Global().NowMicros();
    }
  }
  ~TraceSpan() {
    if (active_) {
      Tracer& tracer = Tracer::Global();
      TraceEvent event;
      event.name = name_;
      event.category = category_;
      event.timestamp_us = start_us_;
      event.duration_us = tracer.NowMicros() - start_us_;
      event.thread_id = CurrentThreadId();
      tracer.Record(event);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Small dense id for the calling thread (Chrome "tid" field).
  static std::uint64_t CurrentThreadId();

 private:
  bool active_;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::int64_t start_us_ = 0;
};

}  // namespace ccdb

#define CCDB_TRACE_CONCAT_INNER(a, b) a##b
#define CCDB_TRACE_CONCAT(a, b) CCDB_TRACE_CONCAT_INNER(a, b)

/// Traces the enclosing scope as a span named `name` (a string literal).
#define CCDB_TRACE_SPAN(name) \
  ::ccdb::TraceSpan CCDB_TRACE_CONCAT(_ccdb_trace_span_, __LINE__)(name)

/// Traces the enclosing scope with an explicit category.
#define CCDB_TRACE_SPAN_CAT(name, category)                             \
  ::ccdb::TraceSpan CCDB_TRACE_CONCAT(_ccdb_trace_span_, __LINE__)(name, \
                                                                   category)

#endif  // CCDB_BASE_TRACE_H_
