#ifndef CCDB_BASE_CONFIG_H_
#define CCDB_BASE_CONFIG_H_

/// Engine configuration, resolved ONCE from the environment.
///
/// Every CCDB_* engine knob is parsed here and nowhere else: the rest of
/// the engine never calls getenv — a CI gate, scripts/check_no_getenv.sh,
/// enforces this; the only allowlisted exceptions are this file's
/// implementation and the fault-injection registry. Subsystems
/// that used to sniff the environment at first use (planner, memo caches,
/// thread pool, semi-naive Datalog, tracing, logging, WAL durability)
/// now read their defaults from EngineConfig::Process(), and a Session
/// (engine/session.h) can carry a different EngineConfig per client, so
/// two sessions with different configurations coexist in one process.
///
/// Parse diagnostics: an invalid value emits ONE stderr warning per bad
/// knob naming the variable and the fallback actually used — startup
/// never crashes on a bad environment (DESIGN.md §16).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ccdb {

/// Three-way per-call toggle used throughout the pipeline's option
/// structs: kAuto follows the relevant process-wide switch (itself
/// defaulted from EngineConfig), kOn/kOff force the feature per call.
/// Carried here (not in qe/) because it is a configuration concept shared
/// by the planner, the memo caches, semi-naive Datalog, and incremental
/// re-fixpoint alike.
enum class PlanToggle { kAuto, kOn, kOff };

/// Immutable resolved engine configuration. Value semantics: copy it,
/// override fields with the With* builders, hand it to
/// ConstraintDatabase::OpenSession. The process-wide instance —
/// EngineConfig::Process() — is resolved from the environment exactly
/// once and is what every legacy single-session entry point sees.
struct EngineConfig {
  /// Concurrent runners of the session's thread pool (CCDB_THREADS,
  /// default 1 = the exact serial path).
  int threads = 1;
  /// Structure-aware query planning (CCDB_PLAN, default on). Byte-identity
  /// contract: plan on/off changes cost, never answers.
  bool plan = true;
  /// Semi-naive Datalog delta evaluation (CCDB_SEMINAIVE, default on).
  bool seminaive = true;
  /// Incremental re-fixpoint of materialized Datalog state
  /// (CCDB_INCREMENTAL, default on).
  bool incremental = true;
  /// Memo caches: QE results, plans, resultants, rule bodies, whole
  /// queries (CCDB_QE_CACHE, default on; pure memos — byte-identical
  /// either way).
  bool qe_cache = true;
  /// Capacity of the QE result cache (CCDB_QE_CACHE_CAPACITY,
  /// default 4096 entries).
  std::size_t qe_cache_capacity = 4096;
  /// Numeric-filtered hybrid QE: decide cell truth in interval/float
  /// arithmetic first, fall back to exact arithmetic when inconclusive
  /// (CCDB_FILTER, default on). Reserved: parsed and carried now so the
  /// knob is stable before the filter stage lands (ROADMAP).
  bool filter = true;
  /// Minimum log severity, one of DEBUG|INFO|WARN|ERROR|OFF
  /// (CCDB_LOG_LEVEL, default WARN). Stored as the canonical spelling.
  std::string log_level = "WARN";
  /// Span tracing armed at startup (CCDB_TRACE, default off).
  bool trace = false;
  /// Structured JSONL query-log destination; empty = disabled
  /// (CCDB_QUERY_LOG).
  std::string query_log_path;
  /// WAL fsync policy, one of always|batch|off (CCDB_WAL_FSYNC,
  /// default always). Consumed by DurabilityOptions::FromEnv.
  std::string wal_fsync = "always";
  /// Auto-checkpoint threshold in WAL record bytes
  /// (CCDB_WAL_CHECKPOINT_BYTES, default 1 MiB).
  std::uint64_t wal_checkpoint_bytes = 1u << 20;

  /// Resolves a fresh config from the environment. Invalid values fall
  /// back to the field default and produce one warning each — appended to
  /// `warnings` when non-null, and always echoed to stderr (so a bad knob
  /// is visible even when nobody collects diagnostics).
  static EngineConfig FromEnv(std::vector<std::string>* warnings = nullptr);

  /// The process-wide configuration: FromEnv() resolved exactly once, at
  /// first use, with warnings to stderr. Every legacy single-session
  /// default (ThreadPool::Shared width, PlannerEnabled, MemoCachesEnabled,
  /// SeminaiveEnabled, log level, tracer, query log, WAL policy) reads
  /// from here instead of calling getenv.
  static const EngineConfig& Process();

  /// Per-field programmatic overrides (value-semantics builders).
  EngineConfig WithThreads(int value) const;
  EngineConfig WithPlan(bool value) const;
  EngineConfig WithSeminaive(bool value) const;
  EngineConfig WithIncremental(bool value) const;
  EngineConfig WithQeCache(bool value) const;
  EngineConfig WithFilter(bool value) const;

  /// Stable identity of the resolved configuration: 16 lowercase hex
  /// digits (FNV-1a over the canonical rendering). Logged in every
  /// query-log record (schema v3) so a log line names the exact config
  /// its query ran under.
  std::string Fingerprint() const;

  /// Canonical one-line "key=value,..." rendering — the fingerprint's
  /// preimage, also useful in error messages.
  std::string Canonical() const;

  /// Multi-line human-readable table (the REPL's `.config`).
  std::string ToString() const;
};

}  // namespace ccdb

#endif  // CCDB_BASE_CONFIG_H_
