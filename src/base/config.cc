#include "base/config.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "base/logging.h"

namespace ccdb {

namespace {

// One warning per bad knob, naming the variable, the rejected value, and
// the fallback actually used. Echoed to stderr with plain fprintf (not
// CCDB_LOG: the log level itself is a knob being resolved here).
void Warn(std::vector<std::string>* warnings, const std::string& message) {
  std::fprintf(stderr, "ccdb: %s\n", message.c_str());
  if (warnings != nullptr) warnings->push_back(message);
}

// Accepted boolean spellings: 0/1, true/false, on/off (case-insensitive).
// Anything else is a diagnostic, not a silent guess — the historical
// "any value but 0 counts as on" behavior hid typos like CCDB_PLAN=fales.
bool ParseBool(const char* name, const char* value, bool fallback,
               std::vector<std::string>* warnings) {
  std::string v(value);
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  if (v == "1" || v == "true" || v == "on") return true;
  if (v == "0" || v == "false" || v == "off") return false;
  Warn(warnings, std::string(name) + ": invalid boolean \"" + value +
                     "\" (want 0|1|true|false|on|off); using " +
                     (fallback ? "1" : "0"));
  return fallback;
}

bool ParseU64(const char* value, std::uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (errno != 0 || end == value || *end != '\0' ||
      std::strchr(value, '-') != nullptr) {
    return false;
  }
  *out = static_cast<std::uint64_t>(parsed);
  return true;
}

}  // namespace

EngineConfig EngineConfig::FromEnv(std::vector<std::string>* warnings) {
  EngineConfig config;
  if (const char* env = std::getenv("CCDB_THREADS")) {
    std::uint64_t parsed = 0;
    if (!ParseU64(env, &parsed) || parsed < 1 || parsed > 4096) {
      Warn(warnings, std::string("CCDB_THREADS: invalid thread count \"") +
                         env + "\" (want an integer in [1, 4096]); using " +
                         std::to_string(config.threads));
    } else {
      config.threads = static_cast<int>(parsed);
    }
  }
  if (const char* env = std::getenv("CCDB_PLAN")) {
    config.plan = ParseBool("CCDB_PLAN", env, config.plan, warnings);
  }
  if (const char* env = std::getenv("CCDB_SEMINAIVE")) {
    config.seminaive =
        ParseBool("CCDB_SEMINAIVE", env, config.seminaive, warnings);
  }
  if (const char* env = std::getenv("CCDB_INCREMENTAL")) {
    config.incremental =
        ParseBool("CCDB_INCREMENTAL", env, config.incremental, warnings);
  }
  if (const char* env = std::getenv("CCDB_QE_CACHE")) {
    config.qe_cache =
        ParseBool("CCDB_QE_CACHE", env, config.qe_cache, warnings);
  }
  if (const char* env = std::getenv("CCDB_QE_CACHE_CAPACITY")) {
    std::uint64_t parsed = 0;
    if (!ParseU64(env, &parsed) || parsed < 1) {
      Warn(warnings,
           std::string("CCDB_QE_CACHE_CAPACITY: invalid capacity \"") + env +
               "\" (want a positive integer); using " +
               std::to_string(config.qe_cache_capacity));
    } else {
      config.qe_cache_capacity = static_cast<std::size_t>(parsed);
    }
  }
  if (const char* env = std::getenv("CCDB_FILTER")) {
    config.filter = ParseBool("CCDB_FILTER", env, config.filter, warnings);
  }
  if (const char* env = std::getenv("CCDB_LOG_LEVEL")) {
    if (std::strcmp(env, "DEBUG") == 0 || std::strcmp(env, "INFO") == 0 ||
        std::strcmp(env, "WARN") == 0 || std::strcmp(env, "ERROR") == 0 ||
        std::strcmp(env, "OFF") == 0) {
      config.log_level = env;
    } else {
      Warn(warnings, std::string("CCDB_LOG_LEVEL: unknown level \"") + env +
                         "\" (want DEBUG|INFO|WARN|ERROR|OFF); using " +
                         config.log_level);
    }
  }
  if (const char* env = std::getenv("CCDB_TRACE")) {
    config.trace = ParseBool("CCDB_TRACE", env, config.trace, warnings);
  }
  if (const char* env = std::getenv("CCDB_QUERY_LOG")) {
    config.query_log_path = env;  // any path; open failures warn at bind
  }
  if (const char* env = std::getenv("CCDB_WAL_FSYNC")) {
    if (std::strcmp(env, "always") == 0 || std::strcmp(env, "batch") == 0 ||
        std::strcmp(env, "off") == 0) {
      config.wal_fsync = env;
    } else {
      Warn(warnings, std::string("CCDB_WAL_FSYNC: unknown policy \"") + env +
                         "\" (want always|batch|off); using " +
                         config.wal_fsync);
    }
  }
  if (const char* env = std::getenv("CCDB_WAL_CHECKPOINT_BYTES")) {
    std::uint64_t parsed = 0;
    if (!ParseU64(env, &parsed)) {
      Warn(warnings,
           std::string("CCDB_WAL_CHECKPOINT_BYTES: invalid byte count \"") +
               env + "\"; using " +
               std::to_string(config.wal_checkpoint_bytes));
    } else {
      config.wal_checkpoint_bytes = parsed;
    }
  }
  return config;
}

const EngineConfig& EngineConfig::Process() {
  // Resolved exactly once; warnings go to stderr that one time. Leaked on
  // purpose (read on shutdown paths).
  static const EngineConfig* config = new EngineConfig(FromEnv());
  return *config;
}

EngineConfig EngineConfig::WithThreads(int value) const {
  EngineConfig c = *this;
  c.threads = value < 1 ? 1 : value;
  return c;
}
EngineConfig EngineConfig::WithPlan(bool value) const {
  EngineConfig c = *this;
  c.plan = value;
  return c;
}
EngineConfig EngineConfig::WithSeminaive(bool value) const {
  EngineConfig c = *this;
  c.seminaive = value;
  return c;
}
EngineConfig EngineConfig::WithIncremental(bool value) const {
  EngineConfig c = *this;
  c.incremental = value;
  return c;
}
EngineConfig EngineConfig::WithQeCache(bool value) const {
  EngineConfig c = *this;
  c.qe_cache = value;
  return c;
}
EngineConfig EngineConfig::WithFilter(bool value) const {
  EngineConfig c = *this;
  c.filter = value;
  return c;
}

std::string EngineConfig::Canonical() const {
  std::ostringstream out;
  out << "threads=" << threads << ",plan=" << plan
      << ",seminaive=" << seminaive << ",incremental=" << incremental
      << ",qe_cache=" << qe_cache << ",qe_cache_capacity=" << qe_cache_capacity
      << ",filter=" << filter << ",log_level=" << log_level
      << ",trace=" << trace << ",query_log=" << query_log_path
      << ",wal_fsync=" << wal_fsync
      << ",wal_checkpoint_bytes=" << wal_checkpoint_bytes;
  return out.str();
}

std::string EngineConfig::Fingerprint() const {
  // FNV-1a 64 over the canonical rendering — same construction as
  // QueryLog::HashText, so log consumers handle one hash shape.
  const std::string canonical = Canonical();
  std::uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : canonical) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kHex[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

std::string EngineConfig::ToString() const {
  std::ostringstream out;
  out << "EngineConfig (fingerprint " << Fingerprint() << ")\n"
      << "  threads               " << threads << "\n"
      << "  plan                  " << (plan ? "on" : "off") << "\n"
      << "  seminaive             " << (seminaive ? "on" : "off") << "\n"
      << "  incremental           " << (incremental ? "on" : "off") << "\n"
      << "  qe_cache              " << (qe_cache ? "on" : "off") << "\n"
      << "  qe_cache_capacity     " << qe_cache_capacity << "\n"
      << "  filter                " << (filter ? "on" : "off")
      << "  (reserved)\n"
      << "  log_level             " << log_level << "\n"
      << "  trace                 " << (trace ? "on" : "off") << "\n"
      << "  query_log             "
      << (query_log_path.empty() ? "(disabled)" : query_log_path) << "\n"
      << "  wal_fsync             " << wal_fsync << "\n"
      << "  wal_checkpoint_bytes  " << wal_checkpoint_bytes << "\n";
  return out.str();
}

namespace internal_logging {

// Defined here, declared in logging.h: the log level is a configuration
// knob, and configuration is resolved only in this translation unit.
LogLevel ConfiguredMinLogLevel() {
  const std::string& level = EngineConfig::Process().log_level;
  if (level == "DEBUG") return LogLevel::kDebug;
  if (level == "INFO") return LogLevel::kInfo;
  if (level == "ERROR") return LogLevel::kError;
  if (level == "OFF") return LogLevel::kOff;
  return LogLevel::kWarn;
}

}  // namespace internal_logging

}  // namespace ccdb
