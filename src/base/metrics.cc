#include "base/metrics.h"

#include <cstdio>

namespace ccdb {

namespace {

int BucketIndex(std::uint64_t v) {
  int bucket = 0;
  while (v > 1) {
    v >>= 1;
    ++bucket;
  }
  return bucket;
}

}  // namespace

void Histogram::Record(std::uint64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t current_max = max_.load(std::memory_order_relaxed);
  while (v > current_max &&
         !max_.compare_exchange_weak(current_max, v,
                                     std::memory_order_relaxed)) {
  }
  std::uint64_t current_min = min_.load(std::memory_order_relaxed);
  while (v < current_min &&
         !min_.compare_exchange_weak(current_min, v,
                                     std::memory_order_relaxed)) {
  }
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::Percentile(double p) const {
  std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Target rank in [1, n] under the nearest-rank-with-interpolation
  // convention: the smallest value v such that at least ceil(p*n)
  // recorded values are <= v, interpolated within its bucket.
  std::uint64_t rank = static_cast<std::uint64_t>(p * static_cast<double>(n));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    std::uint64_t in_bucket = bucket(i);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      // Bucket i spans [lo, hi): bucket 0 holds {0, 1}, bucket i>=1 holds
      // [2^i, 2^(i+1)). Interpolate by the rank's position inside it.
      double lo = i == 0 ? 0.0 : static_cast<double>(1ull << i);
      double hi = i >= 63 ? static_cast<double>(max())
                          : static_cast<double>(1ull << (i + 1));
      double fraction = static_cast<double>(rank - cumulative) /
                        static_cast<double>(in_bucket);
      double value = lo + fraction * (hi - lo);
      double low_clamp = static_cast<double>(min());
      double high_clamp = static_cast<double>(max());
      if (value < low_clamp) value = low_clamp;
      if (value > high_clamp) value = high_clamp;
      return value;
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max());
}

std::uint64_t Histogram::min() const {
  std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~0ull ? 0 : m;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name);
  return slot.get();
}

MaxGauge* MetricsRegistry::GetMaxGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<MaxGauge>(name);
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(name);
  return slot.get();
}

std::map<std::string, std::uint64_t> MetricsRegistry::SnapshotValues() const {
  std::map<std::string, std::uint64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  for (const auto& [name, hist] : histograms_) {
    out[name + ".count"] = hist->count();
    out[name + ".sum"] = hist->sum();
  }
  return out;
}

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonObjectBuilder counters;
  for (const auto& [name, counter] : counters_) {
    counters.Add(name, counter->value());
  }
  JsonObjectBuilder gauges;
  for (const auto& [name, gauge] : gauges_) {
    gauges.Add(name, gauge->value());
  }
  JsonObjectBuilder histograms;
  for (const auto& [name, hist] : histograms_) {
    JsonObjectBuilder entry;
    entry.Add("count", hist->count())
        .Add("sum", hist->sum())
        .Add("min", hist->min())
        .Add("max", hist->max())
        .Add("mean", hist->mean())
        .Add("p50", hist->Percentile(0.50))
        .Add("p90", hist->Percentile(0.90))
        .Add("p99", hist->Percentile(0.99));
    histograms.AddRaw(name, entry.Build());
  }
  JsonObjectBuilder root;
  root.AddRaw("counters", counters.Build())
      .AddRaw("gauges", gauges.Build())
      .AddRaw("histograms", histograms.Build());
  return root.Build();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

std::string JsonObjectBuilder::Escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonObjectBuilder::AddKey(const std::string& key) {
  if (!first_) body_ += ',';
  first_ = false;
  body_ += '"';
  body_ += Escape(key);
  body_ += "\":";
}

JsonObjectBuilder& JsonObjectBuilder::Add(const std::string& key,
                                          std::uint64_t value) {
  AddKey(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::Add(const std::string& key,
                                          std::int64_t value) {
  AddKey(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::Add(const std::string& key,
                                          double value) {
  AddKey(key);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  body_ += buffer;
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::Add(const std::string& key, bool value) {
  AddKey(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::Add(const std::string& key,
                                          const std::string& value) {
  AddKey(key);
  body_ += '"';
  body_ += Escape(value);
  body_ += '"';
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::AddRaw(const std::string& key,
                                             const std::string& json) {
  AddKey(key);
  body_ += json;
  return *this;
}

std::string JsonObjectBuilder::Build() const { return "{" + body_ + "}"; }

}  // namespace ccdb
