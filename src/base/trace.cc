#include "base/trace.h"

#include <fstream>

#include "base/config.h"

namespace ccdb {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  enabled_.store(EngineConfig::Process().trace, std::memory_order_relaxed);
  events_.reserve(1024);
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // intentionally leaked
  return *tracer;
}

std::int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(event);
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string Tracer::ToChromeTraceJson() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
  }
  std::string out = "{\"traceEvents\":[";
  char buffer[256];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ',';
    // Names/categories are static literals from CCDB_TRACE_SPAN call sites;
    // none contain characters needing JSON escaping.
    std::snprintf(buffer, sizeof(buffer),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%lld,"
                  "\"dur\":%lld,\"pid\":1,\"tid\":%llu}",
                  e.name, e.category,
                  static_cast<long long>(e.timestamp_us),
                  static_cast<long long>(e.duration_us),
                  static_cast<unsigned long long>(e.thread_id));
    out += buffer;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << ToChromeTraceJson();
  return out ? Status::Ok()
             : Status::Internal("write to " + path + " failed");
}

std::uint64_t TraceSpan::CurrentThreadId() {
  static std::atomic<std::uint64_t> next_id{1};
  thread_local std::uint64_t id = next_id.fetch_add(1);
  return id;
}

}  // namespace ccdb
