#ifndef CCDB_BASE_PROFILE_H_
#define CCDB_BASE_PROFILE_H_

/// Per-query profiling primitives (Observability v2, DESIGN.md §12).
///
/// Two layers share this header:
///
///   * ProfileNode / ProfileSink — the attribution tree EXPLAIN ANALYZE
///     builds while a query executes. The executor mirrors the plan tree
///     (plan/planner.h) into ProfileNodes: one node per plan node (or per
///     monolithic engine stage), carrying inclusive wall time and the
///     counters that node incurred (CAD cells, FM rounds, peak bigint bit
///     length, cache hits). Nodes are assembled in canonical plan order —
///     never completion order — so the tree SHAPE is deterministic at
///     every thread count; only the timings vary.
///
///   * SpanProfile — a flamegraph-style fold of the trace buffer
///     (base/trace.h): per-thread span nesting is reconstructed from the
///     recorded [start, start+duration) intervals and aggregated into
///     path → {count, inclusive, exclusive}, with text and JSON export.
///
/// Hard contract: profiling is OBSERVATION ONLY. Arming a ProfileSink (or
/// enabling the tracer) must never change a query's answer — the profiled
/// run stays byte-identical to the unprofiled one at every CCDB_PLAN ×
/// thread setting. Profiling code therefore only reads clocks and
/// counters; it never branches the algorithm.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "base/trace.h"

namespace ccdb {

/// One node of the per-query attribution tree.
struct ProfileNode {
  /// Display label, e.g. "qe", "union", "block[cad] exists y",
  /// "qe[cached]". Deterministic — derived from the plan, not the
  /// schedule.
  std::string label;
  /// Wall time of this node including its children, microseconds.
  std::int64_t inclusive_us = 0;
  /// Attribution counters in insertion order (cad_cells, fm_rounds,
  /// max_bits, qe_cache_hits, ...). Zero-valued counters are usually
  /// omitted by the producer.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<ProfileNode> children;

  /// Wall time spent in this node itself: inclusive minus the children's
  /// inclusive sum, clamped at 0 (children of a parallel union overlap,
  /// so their sum may exceed the parent's wall time). By construction
  /// 0 <= exclusive_us() <= inclusive_us whenever inclusive_us >= 0.
  std::int64_t exclusive_us() const;

  void AddCounter(const std::string& name, std::uint64_t value) {
    counters.emplace_back(name, value);
  }
  /// First counter with `name`, or 0.
  std::uint64_t Counter(const std::string& name) const;
  bool HasCounter(const std::string& name) const {
    for (const auto& c : counters) {
      if (c.first == name) return true;
    }
    return false;
  }

  /// Multi-line indented tree rendering:
  ///   label  12.345 ms (self 10.201 ms) [cad_cells=18 max_bits=12]
  std::string ToString(int indent = 0) const;
  /// {"label":...,"inclusive_us":...,"exclusive_us":...,
  ///  "counters":{...},"children":[...]}
  std::string ToJson() const;
};

/// Thread-safe collection point for completed top-level QE profile trees.
/// The evaluator may run several QE rounds per query (nested aggregate
/// stages before the main round); each round appends its root here.
/// Rounds initiated serially (the CALC_F DAG order) arrive in a
/// deterministic order; rounds initiated from pool workers are ordered by
/// arrival and documented as schedule-dependent.
class ProfileSink {
 public:
  void Add(ProfileNode node) {
    std::lock_guard<std::mutex> lock(mu_);
    roots_.push_back(std::move(node));
  }
  std::vector<ProfileNode> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<ProfileNode> out = std::move(roots_);
    roots_.clear();
    return out;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return roots_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<ProfileNode> roots_;
};

/// One aggregated span path of a SpanProfile.
struct SpanAggregate {
  std::uint64_t count = 0;
  std::int64_t inclusive_us = 0;
  /// Inclusive minus the nested children's inclusive time (clamped at 0).
  std::int64_t exclusive_us = 0;
};

/// Flamegraph-style aggregation of the trace buffer: nesting path
/// ("db.query;qe.eliminate;qe.cad_path") → aggregate.
struct SpanProfile {
  std::map<std::string, SpanAggregate> paths;
  std::uint64_t total_events = 0;

  /// Table rendering, one path per line, sorted by inclusive time
  /// descending:
  ///   count  inclusive[ms]  exclusive[ms]  path
  std::string ToString() const;
  /// {"total_events":N,"paths":{"a;b":{"count":...,...},...}}
  std::string ToJson() const;
};

/// Folds recorded spans into a path profile. Nesting is reconstructed per
/// thread from the [start, start+duration) intervals: a span is a child of
/// the innermost same-thread span containing it. Pure function of the
/// event list.
SpanProfile BuildSpanProfile(const std::vector<TraceEvent>& events);

/// Convenience: folds the global tracer's current buffer.
SpanProfile BuildSpanProfile();

}  // namespace ccdb

#endif  // CCDB_BASE_PROFILE_H_
