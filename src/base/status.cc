#include "base/status.h"

namespace ccdb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUndefined:
      return "UNDEFINED";
    case StatusCode::kNumericalFailure:
      return "NUMERICAL_FAILURE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ccdb
