#ifndef CCDB_BASE_RESOURCE_H_
#define CCDB_BASE_RESOURCE_H_

/// Resource governance for the query pipeline.
///
/// Quantifier elimination over the reals is doubly exponential in the worst
/// case, and the paper's finite-precision semantics deliberately makes
/// queries *partial* — so a production engine must bound every potentially
/// unbounded evaluation. A ResourceGovernor carries a wall-clock deadline,
/// a step budget, a tracked-allocation byte budget, and an external
/// cancellation flag; the unbounded hot loops (QE driver, CAD
/// projection/lifting, root isolation, Fourier-Motzkin rounds, the datalog
/// fixpoint, adaptive quadrature) charge it at their loop heads via
///
///   CCDB_CHECK_BUDGET(gov, "cad.lift");
///
/// where `gov` is a nullable `const ResourceGovernor*` (nullptr = no
/// limits; the check is then a single pointer comparison). When any budget
/// is exceeded the governor *trips*: the charge returns kResourceExhausted
/// carrying where it tripped and what was consumed, every later charge
/// returns the same status (so nested loops unwind deterministically), and
/// the trip is folded into the global metrics registry.
///
/// Governors are intended to be stack-allocated per query attempt (see
/// ConstraintDatabase::QueryWithPolicy) or re-armed per bench cell with
/// Reset(). Charging is thread-safe and may come from many pool workers
/// at once; Reset() is data-race-free but logically racy against
/// in-flight charges (quiesce first for meaningful budgets).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "base/status.h"

namespace ccdb {

/// Why a governed computation was stopped.
enum class ExhaustionReason {
  kNone = 0,
  kDeadline,
  kSteps,
  kBytes,
  kCancelled,
};

/// Short lowercase name ("deadline", "steps", "bytes", "cancelled").
const char* ExhaustionReasonName(ExhaustionReason reason);

/// Budgets of one governed evaluation. Zero means unlimited.
struct ResourceLimits {
  /// Wall-clock deadline, measured from construction (or the last Reset).
  double deadline_seconds = 0.0;
  /// Maximum number of charged steps (loop-head iterations).
  std::uint64_t step_budget = 0;
  /// Maximum tracked allocation in bytes (cells, tuples, constraints).
  std::uint64_t byte_budget = 0;

  static ResourceLimits Deadline(double seconds) {
    ResourceLimits limits;
    limits.deadline_seconds = seconds;
    return limits;
  }
  static ResourceLimits Steps(std::uint64_t steps) {
    ResourceLimits limits;
    limits.step_budget = steps;
    return limits;
  }
  static ResourceLimits Bytes(std::uint64_t bytes) {
    ResourceLimits limits;
    limits.byte_budget = bytes;
    return limits;
  }

  bool unlimited() const {
    return deadline_seconds <= 0.0 && step_budget == 0 && byte_budget == 0;
  }
};

/// A per-evaluation resource budget with cooperative cancellation.
///
/// Charge() is const so that the pipeline can thread `const
/// ResourceGovernor*` everywhere (the counters are mutable atomics); the
/// object itself carries the mutable budget state.
///
/// One governor may be charged from many pool workers at once (parallel
/// CAD lifting / disjunct QE / datalog rules all share the query's
/// governor): the step and byte counters are atomics, the deadline origin
/// is an atomic nanosecond stamp, and the trip verdict is guarded by a
/// mutex on the cold path — so a charge stays ~one atomic load + add.
class ResourceGovernor {
 public:
  /// `cancel`, when non-null, is an external flag (e.g. set from a signal
  /// handler or another thread); the governor trips with kCancelled as soon
  /// as a charge observes it true. The flag is borrowed, not owned.
  explicit ResourceGovernor(ResourceLimits limits,
                            std::atomic<bool>* cancel = nullptr);

  /// Charges `steps` loop-head steps at `stage` (a string literal naming
  /// the charging site, e.g. "cad.lift"). Returns OK while within budget;
  /// returns kResourceExhausted — stage, reason, and consumption in the
  /// message — once any budget is exceeded or cancellation is observed.
  /// Sticky: after the first trip every charge fails with the same verdict.
  Status Charge(const char* stage, std::uint64_t steps = 1) const;

  /// Records `bytes` of tracked allocation. Does not itself trip (cheap,
  /// callable from noexcept paths); the next Charge() enforces the byte
  /// budget.
  void ChargeBytes(std::uint64_t bytes) const {
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Re-arms the governor: clears consumption and the tripped state and
  /// restarts the deadline clock. Not thread-safe against in-flight
  /// charges.
  void Reset();

  bool exhausted() const { return tripped_.load(std::memory_order_acquire); }
  /// kNone until tripped.
  ExhaustionReason reason() const;
  /// The charging site that observed the trip ("" until tripped).
  std::string tripped_stage() const;

  std::uint64_t steps_consumed() const {
    return steps_.load(std::memory_order_acquire);
  }
  std::uint64_t bytes_consumed() const {
    return bytes_.load(std::memory_order_acquire);
  }
  /// Wall time since construction / the last Reset.
  double elapsed_seconds() const;

  /// One coherent reading of everything a verdict reports. Safe to call
  /// while workers are still charging (each field is an atomic read); use
  /// this instead of separate steps/bytes/elapsed getters when the three
  /// values are reported together (e.g. QueryVerdict).
  struct Consumption {
    std::uint64_t steps = 0;
    std::uint64_t bytes = 0;
    double elapsed_seconds = 0.0;
  };
  Consumption Snapshot() const;

  const ResourceLimits& limits() const { return limits_; }

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

 private:
  // Records the first trip (later callers reuse it) and builds the status.
  Status Trip(ExhaustionReason reason, const char* stage) const;
  Status ExhaustedStatus() const;

  ResourceLimits limits_;
  std::atomic<bool>* cancel_;
  // Deadline origin as a steady_clock nanosecond stamp. Atomic because
  // Reset() re-arms it while observers (metrics, verdict snapshots) may
  // still be reading; charging threads load it on every deadline check.
  mutable std::atomic<std::int64_t> start_ns_;

  mutable std::atomic<std::uint64_t> steps_{0};
  mutable std::atomic<std::uint64_t> bytes_{0};

  mutable std::atomic<bool> tripped_{false};
  mutable std::mutex trip_mu_;  // guards the fields below (cold path)
  mutable ExhaustionReason reason_ = ExhaustionReason::kNone;
  mutable std::string tripped_stage_;
  mutable std::string verdict_message_;
};

}  // namespace ccdb

/// Charges one governor step at a loop head and propagates exhaustion to
/// the caller. `gov` is a nullable `const ResourceGovernor*`; when null the
/// check costs one pointer comparison.
#define CCDB_CHECK_BUDGET(gov, stage)                      \
  do {                                                     \
    if ((gov) != nullptr) {                                \
      ::ccdb::Status _ccdb_gov_st = (gov)->Charge(stage);  \
      if (!_ccdb_gov_st.ok()) return _ccdb_gov_st;         \
    }                                                      \
  } while (0)

#endif  // CCDB_BASE_RESOURCE_H_
