#include "base/thread_pool.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <utility>

#include "base/config.h"
#include "base/logging.h"
#include "base/metrics.h"

namespace ccdb {

struct ThreadPool::WorkerSlot {
  std::mutex mu;
  std::deque<Task> deque;  // own work popped from the back, stolen from the front
};

/// Shared state of one ParallelFor call. Indices are claimed in order via
/// `next`; every index is eventually claimed (claiming never stops early),
/// but bodies are skipped once `failed` is set, so a failing batch drains
/// quickly. `done` counts claimed-and-finished (run or skipped) indices;
/// the batch is complete when done == count.
struct ThreadPool::Batch {
  std::size_t count = 0;
  const std::function<Status(std::size_t)>* body = nullptr;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};

  std::mutex mu;  // guards the failure slots and `finished` signalling
  std::condition_variable cv;
  // Lowest failing index wins; kept with its status / exception.
  std::size_t error_index = 0;
  Status error_status = Status::Ok();
  std::exception_ptr error_exception;

  void RecordFailure(std::size_t index, Status status,
                     std::exception_ptr exception) {
    std::lock_guard<std::mutex> lock(mu);
    if (!failed.load(std::memory_order_relaxed) || index < error_index) {
      error_index = index;
      error_status = std::move(status);
      error_exception = exception;
    }
    failed.store(true, std::memory_order_release);
  }

  void FinishOne() {
    if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
      std::lock_guard<std::mutex> lock(mu);
      cv.notify_all();
    }
  }
};

void ThreadPool::DrainBatch(const std::shared_ptr<Batch>& batch) {
  while (true) {
    std::size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->count) return;
    if (!batch->failed.load(std::memory_order_acquire)) {
      auto start = std::chrono::steady_clock::now();
      try {
        Status status = (*batch->body)(i);
        if (!status.ok()) {
          batch->RecordFailure(i, std::move(status), nullptr);
        }
      } catch (...) {
        batch->RecordFailure(i, Status::Ok(), std::current_exception());
      }
      auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      CCDB_METRIC_HISTOGRAM("threadpool.task_us",
                            static_cast<std::uint64_t>(micros));
      CCDB_METRIC_COUNT("threadpool.tasks_completed", 1);
    }
    batch->FinishOne();
  }
}

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  int workers = threads_ - 1;
  CCDB_METRIC_MAX("threadpool.threads",
                  static_cast<std::uint64_t>(threads_));
  slots_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Any tasks still queued are dropped deliberately: the pool's users
  // (ParallelFor) never destroy the pool with a batch in flight, and
  // fire-and-forget Submit tasks are documented as best-effort at
  // shutdown. Run what remains inline so nothing is silently lost.
  for (auto& slot : slots_) {
    for (Task& task : slot->deque) task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    CCDB_METRIC_COUNT("threadpool.tasks_inline", 1);
    task();
    return;
  }
  CCDB_METRIC_COUNT("threadpool.tasks_queued", 1);
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    target = next_slot_++ % slots_.size();
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(slots_[target]->mu);
    slots_[target]->deque.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::PopOrSteal(int self, Task* task) {
  WorkerSlot& own = *slots_[self];
  {
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.deque.empty()) {
      *task = std::move(own.deque.back());
      own.deque.pop_back();
      return true;
    }
  }
  std::size_t n = slots_.size();
  for (std::size_t offset = 1; offset < n; ++offset) {
    WorkerSlot& victim = *slots_[(self + offset) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.deque.empty()) {
      *task = std::move(victim.deque.front());
      victim.deque.pop_front();
      CCDB_METRIC_COUNT("threadpool.tasks_stolen", 1);
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int self) {
  while (true) {
    Task task;
    if (PopOrSteal(self, &task)) {
      {
        std::lock_guard<std::mutex> lock(wake_mu_);
        --pending_;
      }
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] { return stopping_ || pending_ > 0; });
    if (stopping_) return;
  }
}

Status ThreadPool::ParallelFor(
    std::size_t count, const std::function<Status(std::size_t)>& body) {
  if (count == 0) return Status::Ok();
  if (workers_.empty() || count == 1) {
    // Serial fast path: the exact loop a non-parallel build would run —
    // same iteration order, same early exit on the first failure.
    for (std::size_t i = 0; i < count; ++i) {
      Status status = body(i);
      if (!status.ok()) return status;
      CCDB_METRIC_COUNT("threadpool.tasks_completed", 1);
    }
    return Status::Ok();
  }

  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->body = &body;

  // One runner task per worker (capped by count): each drains the batch's
  // index counter until it runs dry. Runner tasks sit in the deques like
  // any other work, so sibling workers can steal them.
  std::size_t runners = workers_.size();
  if (runners > count - 1) runners = count - 1;
  for (std::size_t r = 0; r < runners; ++r) {
    Submit([batch] { DrainBatch(batch); });
  }
  // The caller is a runner too — this is what makes nested ParallelFor
  // deadlock-free: the innermost caller always drains its own batch.
  DrainBatch(batch);

  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->cv.wait(lock, [&batch] {
      return batch->done.load(std::memory_order_acquire) >= batch->count;
    });
  }

  if (batch->failed.load(std::memory_order_acquire)) {
    if (batch->error_exception != nullptr) {
      std::rethrow_exception(batch->error_exception);
    }
    return batch->error_status;
  }
  return Status::Ok();
}

int ThreadPool::DefaultThreads() {
  return EngineConfig::Process().threads;
}

namespace {
std::unique_ptr<ThreadPool>& SharedPoolSlot() {
  static auto* slot = new std::unique_ptr<ThreadPool>();
  return *slot;
}
std::mutex& SharedPoolMutex() {
  static auto* mu = new std::mutex();
  return *mu;
}
}  // namespace

ThreadPool* ThreadPool::Shared() {
  std::lock_guard<std::mutex> lock(SharedPoolMutex());
  std::unique_ptr<ThreadPool>& slot = SharedPoolSlot();
  if (slot == nullptr) {
    slot = std::make_unique<ThreadPool>(DefaultThreads());
  }
  return slot.get();
}

void ThreadPool::ConfigureShared(int threads) {
  std::lock_guard<std::mutex> lock(SharedPoolMutex());
  std::unique_ptr<ThreadPool>& slot = SharedPoolSlot();
  if (slot != nullptr && slot->threads() == threads) return;
  slot = std::make_unique<ThreadPool>(threads);
}

}  // namespace ccdb
