#ifndef CCDB_BASE_METRICS_H_
#define CCDB_BASE_METRICS_H_

/// Process-wide metrics registry for the query pipeline.
///
/// Three instrument kinds, all thread-safe and always on (a recorded value
/// is one relaxed atomic op; registration is a one-time mutex acquisition
/// cached behind a function-local static at each call site):
///
///   * Counter  — monotonically increasing event count (QE cells built,
///                resultants computed, Fourier-Motzkin rounds, ...).
///   * MaxGauge — running maximum (peak intermediate bigint bit length).
///   * Histogram — power-of-two bucketed value distribution with
///                count/sum/min/max (stage latencies, formula sizes).
///
/// Use the macros for instrumentation sites:
///
///   CCDB_METRIC_COUNT("qe.cad.cells", cell_count);
///   CCDB_METRIC_MAX("qe.max_intermediate_bits", bits);
///   CCDB_METRIC_HISTOGRAM("qe.eliminate.us", micros);
///
/// `MetricsRegistry::Global().SnapshotJson()` serializes everything; the
/// REPL `.stats` command and the stats structs' ToJson() build on it.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ccdb {

/// Monotonically increasing counter.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Running maximum (e.g. the peak bigint bit length Lemma 4.4 bounds).
class MaxGauge {
 public:
  explicit MaxGauge(std::string name) : name_(std::move(name)) {}
  void RecordMax(std::uint64_t v) {
    std::uint64_t current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v,
                                         std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Power-of-two bucketed histogram over nonnegative integers. Bucket i
/// counts values in [2^i, 2^(i+1)) — i.e. floor(log2(v)) — with bucket 0
/// counting zeros and ones.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  void Record(std::uint64_t v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Max recorded value; 0 when empty.
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// Min recorded value; 0 when empty.
  std::uint64_t min() const;
  std::uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double mean() const {
    std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  /// Estimated p-quantile (p in [0, 1]), linearly interpolated inside the
  /// power-of-two bucket holding the target rank and clamped to
  /// [min(), max()] (so a single-valued histogram reports that value
  /// exactly). 0 when empty. Monotone in p up to concurrent-recording
  /// skew.
  double Percentile(double p) const;
  void Reset();
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Name → instrument registry. Instruments live forever once registered
/// (pointers returned stay valid for the process lifetime), so call sites
/// may cache them in function-local statics.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  MaxGauge* GetMaxGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Flat snapshot of all scalar readings, for delta computation (EXPLAIN)
  /// and tests. Histograms contribute `<name>.count` and `<name>.sum`.
  std::map<std::string, std::uint64_t> SnapshotValues() const;

  /// Full JSON snapshot:
  /// {"counters":{...},"gauges":{...},"histograms":{"name":{"count":...,
  ///  "sum":...,"min":...,"max":...,"mean":...},...}}.
  std::string SnapshotJson() const;

  /// Zeroes every registered instrument (instruments stay registered).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<MaxGauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Minimal JSON object builder shared by SnapshotJson() and the stats
/// structs' ToJson() methods. Keys are emitted in insertion order.
class JsonObjectBuilder {
 public:
  JsonObjectBuilder& Add(const std::string& key, std::uint64_t value);
  JsonObjectBuilder& Add(const std::string& key, std::int64_t value);
  JsonObjectBuilder& Add(const std::string& key, double value);
  JsonObjectBuilder& Add(const std::string& key, bool value);
  JsonObjectBuilder& Add(const std::string& key, const std::string& value);
  /// Adds an already-serialized JSON value (object, array, ...) verbatim.
  JsonObjectBuilder& AddRaw(const std::string& key, const std::string& json);
  std::string Build() const;

  static std::string Escape(const std::string& raw);

 private:
  void AddKey(const std::string& key);
  std::string body_;
  bool first_ = true;
};

}  // namespace ccdb

#define CCDB_METRIC_CONCAT_INNER(a, b) a##b
#define CCDB_METRIC_CONCAT(a, b) CCDB_METRIC_CONCAT_INNER(a, b)

/// Adds `n` to the counter `name` (a string literal; resolved once).
#define CCDB_METRIC_COUNT(name, n)                                 \
  do {                                                             \
    static ::ccdb::Counter* CCDB_METRIC_CONCAT(_ccdb_counter_,     \
                                               __LINE__) =         \
        ::ccdb::MetricsRegistry::Global().GetCounter(name);        \
    CCDB_METRIC_CONCAT(_ccdb_counter_, __LINE__)->Increment(n);    \
  } while (0)

/// Raises the max gauge `name` to at least `v`.
#define CCDB_METRIC_MAX(name, v)                                   \
  do {                                                             \
    static ::ccdb::MaxGauge* CCDB_METRIC_CONCAT(_ccdb_gauge_,      \
                                                __LINE__) =        \
        ::ccdb::MetricsRegistry::Global().GetMaxGauge(name);       \
    CCDB_METRIC_CONCAT(_ccdb_gauge_, __LINE__)->RecordMax(v);      \
  } while (0)

/// Records `v` into the histogram `name`.
#define CCDB_METRIC_HISTOGRAM(name, v)                             \
  do {                                                             \
    static ::ccdb::Histogram* CCDB_METRIC_CONCAT(_ccdb_hist_,      \
                                                 __LINE__) =       \
        ::ccdb::MetricsRegistry::Global().GetHistogram(name);      \
    CCDB_METRIC_CONCAT(_ccdb_hist_, __LINE__)->Record(v);          \
  } while (0)

#endif  // CCDB_BASE_METRICS_H_
