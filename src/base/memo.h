#ifndef CCDB_BASE_MEMO_H_
#define CCDB_BASE_MEMO_H_

/// Shared infrastructure for the memoization layers that sit on top of the
/// hash-consed IR: a process-wide on/off switch (the CCDB_QE_CACHE
/// environment variable, overridable at runtime for differential tests and
/// the `--qe-cache=` bench flag) and a bounded, sharded, FIFO-evicting
/// memo table used by the QE result cache, the resultant/PRS cache, and
/// the engine's query cache.
///
/// Contract: every cache keyed through this header is a pure memo — a hit
/// returns exactly the value a recomputation would produce, so query
/// output is byte-identical with caches on and off. Lookups are skipped
/// under an armed ResourceGovernor (callers gate on `gov == nullptr`), so
/// governed budget charging and degradation-ladder behaviour never depend
/// on cache temperature; successful results are still inserted so later
/// ungoverned evaluations can reuse them. While any failpoint is armed the
/// caches stand down entirely (MemoCachesEnabled() reports false), so
/// fault injection always reaches the real stage instead of a memo hit.

#include <cstddef>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/config.h"
#include "base/metrics.h"

namespace ccdb {

/// Whether the memo layers (QE result cache, resultant/PRS cache, query
/// cache) are enabled. Defaults to EngineConfig::Process().qe_cache (the
/// CCDB_QE_CACHE knob); SetMemoCachesEnabled overrides.
bool MemoCachesEnabled();
void SetMemoCachesEnabled(bool enabled);

/// Resolves a per-call/per-session memo toggle (QeOptions::memo):
/// kAuto follows MemoCachesEnabled(); kOff disables the layers for this
/// evaluation; kOn enables them regardless of the process default (still
/// standing down while failpoints are armed — the pure-memo contract).
bool MemoCachesEnabledFor(PlanToggle memo);

/// A bounded, sharded memo table with per-shard FIFO eviction. Thread-safe.
/// `Hash` must be deterministic; keys and values are stored by value.
/// Capacity is per-cache (split across shards, minimum 1 per shard).
///
/// Instruments three counters in the global metrics registry, named
/// `<metric_prefix>_hits`, `<metric_prefix>_misses`,
/// `<metric_prefix>_evictions`.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedMemoCache {
 public:
  ShardedMemoCache(const char* metric_prefix, std::size_t capacity,
                   std::size_t num_shards = 8)
      : hits_(MetricsRegistry::Global().GetCounter(std::string(metric_prefix) +
                                                   "_hits")),
        misses_(MetricsRegistry::Global().GetCounter(
            std::string(metric_prefix) + "_misses")),
        evictions_(MetricsRegistry::Global().GetCounter(
            std::string(metric_prefix) + "_evictions")),
        shards_(num_shards == 0 ? 1 : num_shards) {
    std::size_t per_shard = capacity / shards_.size();
    if (per_shard == 0) per_shard = 1;
    for (Shard& shard : shards_) shard.capacity = per_shard;
  }

  /// Copies the cached value into *out and returns true on a hit.
  bool Lookup(const Key& key, Value* out) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_->Increment();
      return false;
    }
    hits_->Increment();
    *out = it->second;
    return true;
  }

  /// Inserts (first writer wins; a racing duplicate insert is a no-op).
  void Insert(const Key& key, Value value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.emplace(key, std::move(value));
    if (!inserted) return;
    shard.order.push_back(key);
    while (shard.map.size() > shard.capacity) {
      shard.map.erase(shard.order.front());
      shard.order.pop_front();
      evictions_->Increment();
    }
  }

  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.clear();
      shard.order.clear();
    }
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.map.size();
    }
    return total;
  }

  /// Shrinks (or grows) the bound; evicts FIFO down to the new capacity.
  void SetCapacity(std::size_t capacity) {
    std::size_t per_shard = capacity / shards_.size();
    if (per_shard == 0) per_shard = 1;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.capacity = per_shard;
      while (shard.map.size() > shard.capacity) {
        shard.map.erase(shard.order.front());
        shard.order.pop_front();
        evictions_->Increment();
      }
    }
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Value, Hash> map;
    std::deque<Key> order;  // insertion order, for FIFO eviction
    std::size_t capacity = 1;
  };

  Shard& ShardFor(const Key& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }

  Counter* hits_;
  Counter* misses_;
  Counter* evictions_;
  std::vector<Shard> shards_;
};

}  // namespace ccdb

#endif  // CCDB_BASE_MEMO_H_
