#ifndef CCDB_BASE_FAILPOINT_H_
#define CCDB_BASE_FAILPOINT_H_

/// Deterministic fault injection for robustness tests.
///
/// Failpoints are named sites planted at the stage boundaries of the query
/// pipeline (e.g. "qe.drive", "cad.lift", "datalog.iteration"). A site is
/// inert until armed; an armed site injects a configured error Status on a
/// configured hit, letting tests force every error path and assert the
/// engine degrades — never crashes, never leaks a half-built relation into
/// the catalog.
///
/// The check itself is compiled in only under -DCCDB_FAILPOINTS=ON (the
/// CMake option adds the CCDB_FAILPOINTS preprocessor define); production
/// builds pay nothing. The registry API (parsing, arming, hit counting) is
/// always available so configuration handling can be tested everywhere.
///
/// Configuration syntax — programmatic or via the CCDB_FAILPOINTS
/// environment variable, read once at first registry use:
///
///   CCDB_FAILPOINTS="cad.lift=error@3,qe.drive=exhaust@1"
///
/// Each entry is `site=kind[@N]`: the site fires once, on its N-th hit
/// (1-based, default 1), with the error mapped from `kind`:
///
///   error     -> kInternal            exhaust  -> kResourceExhausted
///   undefined -> kUndefined           numfail  -> kNumericalFailure
///
/// Durability testing adds three fault kinds that do not map to a Status:
///
///   crash        -> the process exits immediately (std::_Exit with
///                   FailpointRegistry::kCrashExitCode), simulating a kill
///                   -9 at the site — no destructors, no stream flushes.
///   torn-write   -> at an IO write site (HitIo), only a prefix of the
///                   bytes reaches the file and then the process crashes —
///                   a torn tail for recovery to truncate.
///   short-write  -> at an IO write site, only a prefix of the bytes is
///                   written and the write reports failure; the process
///                   keeps running (simulates ENOSPC mid-write).
///
/// Unlike the CCDB_FAILPOINT macro sites, the durability boundaries in
/// src/storage consult the registry in EVERY build (they are not on the
/// query hot path, and the crash-recovery harness must work against the
/// default build); the HasArmed() fast path keeps the disarmed cost to one
/// relaxed atomic load.
///
/// Usage at a stage boundary (returns the injected Status to the caller):
///
///   Status DoStage(...) {
///     CCDB_FAILPOINT("cad.lift");
///     ...
///   }

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"

namespace ccdb {

/// What an armed failpoint injects, and when.
struct FailpointSpec {
  enum class Kind {
    kError,             // kInternal
    kExhaust,           // kResourceExhausted
    kUndefined,         // kUndefined
    kNumericalFailure,  // kNumericalFailure
    kCrash,             // std::_Exit(kCrashExitCode) at the site
    kTornWrite,         // IO sites: prefix of the bytes written, then crash
    kShortWrite,        // IO sites: prefix written, write reports failure
  };
  Kind kind = Kind::kError;
  /// Fires on this hit (1-based) of the site, exactly once.
  std::uint64_t fire_at = 1;
};

/// What an IO write site should do with the bytes it is about to write.
/// Returned by FailpointRegistry::HitIo; the writer implements the fault
/// (write a prefix, then crash or report failure).
enum class IoFault {
  kNone,
  kTornWrite,
  kShortWrite,
};

/// Process-wide failpoint registry. Thread-safe.
class FailpointRegistry {
 public:
  /// Exit code of a fired `crash` (or the crash half of a `torn-write`)
  /// failpoint — the crash-recovery harness asserts the child died with
  /// exactly this code, distinguishing an injected crash from a real one.
  static constexpr int kCrashExitCode = 42;
  /// The global registry; on first use arms everything named by the
  /// CCDB_FAILPOINTS environment variable (malformed entries are ignored
  /// with a log line — startup must not crash on a bad env var).
  static FailpointRegistry& Global();

  /// Parses "site=kind[@N],site2=kind2[@M]" and arms each entry.
  /// kInvalidArgument on malformed input (nothing armed from a bad spec).
  Status Configure(const std::string& config);

  /// Arms one site.
  void Set(const std::string& site, FailpointSpec spec);
  /// Disarms one site (its hit count is kept).
  void Clear(const std::string& site);
  /// Disarms every site and zeroes all hit counts.
  void ClearAll();

  /// Times the site was passed (armed or not) since the last ClearAll.
  std::uint64_t HitCount(const std::string& site) const;
  /// Names of currently armed sites.
  std::vector<std::string> ArmedSites() const;
  /// True while any site is armed — one relaxed atomic load, cheap enough
  /// for hot paths. The memo caches consult this and stand down while a
  /// fault is armed, so injection always reaches the real stage instead of
  /// being masked by a cache hit.
  bool HasArmed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Counts a pass through `site`; returns the injected error iff the site
  /// is armed and this is its fire_at-th hit. Called by CCDB_FAILPOINT.
  /// A fired `crash` kind exits the process here; a fired torn-write /
  /// short-write kind at a non-IO site degrades to kInternal.
  Status Hit(const char* site);

  /// Counts a pass through an IO write site; returns the IO fault to
  /// perform iff the site is armed with torn-write/short-write and this is
  /// its fire_at-th hit. A fired `crash` kind exits the process here; a
  /// fired Status kind (error/exhaust/...) is reported through
  /// `*injected` (never null-checked — pass a valid pointer).
  IoFault HitIo(const char* site, Status* injected);

 private:
  FailpointRegistry();

  struct SiteState {
    bool armed = false;
    FailpointSpec spec;
    std::uint64_t hits = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, SiteState> sites_;
  /// Count of armed sites, mirrored from `sites_` under `mu_`.
  std::atomic<int> armed_count_{0};
};

}  // namespace ccdb

/// Plants a failpoint: under CCDB_FAILPOINTS builds, returns the injected
/// Status to the caller when the site is armed and due; otherwise (and in
/// production builds) a no-op.
#if defined(CCDB_FAILPOINTS)
#define CCDB_FAILPOINT(site)                               \
  do {                                                     \
    ::ccdb::Status _ccdb_fp_st =                           \
        ::ccdb::FailpointRegistry::Global().Hit(site);     \
    if (!_ccdb_fp_st.ok()) return _ccdb_fp_st;             \
  } while (0)
#else
#define CCDB_FAILPOINT(site) \
  do {                       \
  } while (0)
#endif

#endif  // CCDB_BASE_FAILPOINT_H_
