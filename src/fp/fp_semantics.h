#ifndef CCDB_FP_FP_SEMANTICS_H_
#define CCDB_FP_FP_SEMANTICS_H_

#include "base/status.h"
#include "constraint/formula.h"
#include "qe/qe.h"

namespace ccdb {

/// Evaluation context of the finite precision semantics FO^F_QE (paper,
/// Section 4): the QE algorithm may only manipulate integers of bit length
/// at most k (the structure Z_k). A query whose evaluation materializes a
/// longer integer has an *undefined* answer — finite-precision queries are
/// partial, unlike the total queries of FO^R.
struct FpContext {
  /// Bit budget k of Z_k.
  std::uint32_t k = 64;
};

/// Statistics for a finite-precision run, extending QeStats with the
/// defined/undefined outcome and the bit head-room.
struct FpQeStats {
  QeStats qe;
  bool defined = false;
  /// Largest bit length the exact pipeline materialized (inputs, FM
  /// intermediates, projection factors, outputs) — the quantity Lemma 4.4
  /// bounds by C·k on the class K_{d,m}.
  std::uint64_t max_bits = 0;

  /// One-line human-readable rendering.
  std::string ToString() const;
  /// JSON object; embeds the inner QeStats as "qe".
  std::string ToJson() const;
};

/// FO^F_QE query evaluation: the same fixed QE algorithm as
/// EliminateQuantifiers (same variable order, same projection operator),
/// with every materialized integer checked against the Z_k budget. Returns
/// kUndefined when the budget is exceeded — by Theorem 4.1 this MUST happen
/// for some multiplicative queries whose inputs fit in Z_k, and by
/// Theorem 4.2 it cannot happen for linear queries once k exceeds a
/// query-dependent constant factor of the input bit length.
StatusOr<ConstraintRelation> EliminateQuantifiersFp(const Formula& formula,
                                                    int num_free_vars,
                                                    const FpContext& context,
                                                    FpQeStats* stats = nullptr);

/// Finite-precision sentence decision (the relation |=^F_QE of Section 4).
StatusOr<bool> DecideSentenceFp(const Formula& sentence,
                                const FpContext& context,
                                FpQeStats* stats = nullptr);

/// The smallest k (searched by doubling then bisection) for which the
/// query is defined under FO^F_QE, up to `max_k`. Returns kUndefined if
/// even max_k does not suffice. Used by the Theorem 4.1/4.2 experiments.
StatusOr<std::uint32_t> MinimalDefiningK(const Formula& formula,
                                         int num_free_vars,
                                         std::uint32_t max_k);

}  // namespace ccdb

#endif  // CCDB_FP_FP_SEMANTICS_H_
