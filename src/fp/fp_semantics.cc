#include "fp/fp_semantics.h"

#include <sstream>

#include "base/metrics.h"
#include "base/trace.h"

namespace ccdb {

std::string FpQeStats::ToString() const {
  std::ostringstream out;
  out << "defined=" << (defined ? "yes" : "no") << " max_bits=" << max_bits
      << " [" << qe.ToString() << "]";
  return out.str();
}

std::string FpQeStats::ToJson() const {
  return JsonObjectBuilder()
      .Add("defined", defined)
      .Add("max_bits", max_bits)
      .AddRaw("qe", qe.ToJson())
      .Build();
}

StatusOr<ConstraintRelation> EliminateQuantifiersFp(const Formula& formula,
                                                    int num_free_vars,
                                                    const FpContext& context,
                                                    FpQeStats* stats) {
  CCDB_TRACE_SPAN("fp.eliminate");
  CCDB_METRIC_COUNT("fp.queries", 1);
  FpQeStats local;
  FpQeStats* s = stats != nullptr ? stats : &local;
  *s = FpQeStats();

  // The finite-precision semantics is defined *through the algorithm*
  // ("a semantics defined w.r.t. a specific evaluation algorithm", paper
  // Section 4): we run the identical deterministic pipeline and enforce the
  // Z_k budget on every integer it materializes. Arithmetic inside a step
  // is still exact (the paper: "arithmetic operations are still carried
  // out in exact values"); it is the *materialized* numbers that must fit.
  QeStats qe_stats;
  auto result =
      EliminateQuantifiers(formula, num_free_vars, QeOptions{}, &qe_stats);
  s->qe = qe_stats;
  s->max_bits = qe_stats.max_intermediate_bits;
  CCDB_METRIC_MAX("fp.max_bits", s->max_bits);
  if (!result.ok()) return result.status();
  if (s->max_bits > context.k) {
    s->defined = false;
    CCDB_METRIC_COUNT("fp.undefined", 1);
    return Status::Undefined(
        "FO^F_QE: evaluation needs integers of bit length " +
        std::to_string(s->max_bits) + " > k = " + std::to_string(context.k));
  }
  s->defined = true;
  return result;
}

StatusOr<bool> DecideSentenceFp(const Formula& sentence,
                                const FpContext& context, FpQeStats* stats) {
  CCDB_ASSIGN_OR_RETURN(
      ConstraintRelation rel,
      EliminateQuantifiersFp(sentence, 0, context, stats));
  return !rel.is_empty_syntactically();
}

StatusOr<std::uint32_t> MinimalDefiningK(const Formula& formula,
                                         int num_free_vars,
                                         std::uint32_t max_k) {
  // One exact run reveals the materialized maximum; the minimal k equals
  // it by definition of the budget check.
  FpQeStats stats;
  FpContext context{max_k};
  auto result =
      EliminateQuantifiersFp(formula, num_free_vars, context, &stats);
  if (result.ok()) {
    return static_cast<std::uint32_t>(stats.max_bits);
  }
  if (result.status().code() == StatusCode::kUndefined) {
    return Status::Undefined("query needs more than max_k = " +
                             std::to_string(max_k) + " bits (" +
                             std::to_string(stats.max_bits) + ")");
  }
  return result.status();
}

}  // namespace ccdb
