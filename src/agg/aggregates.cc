#include "agg/aggregates.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "arith/floatk.h"
#include "base/logging.h"
#include "base/metrics.h"
#include "base/trace.h"
#include "numeric/numerical_eval.h"
#include "numeric/quadrature.h"
#include "qe/cad.h"

namespace ccdb {

StatusOr<AggregateKind> AggregateKindFromName(const std::string& name) {
  if (name == "MIN") return AggregateKind::kMin;
  if (name == "MAX") return AggregateKind::kMax;
  if (name == "AVG") return AggregateKind::kAvg;
  if (name == "LENGTH") return AggregateKind::kLength;
  if (name == "SURFACE") return AggregateKind::kSurface;
  if (name == "VOLUME") return AggregateKind::kVolume;
  if (name == "EVAL") return AggregateKind::kEval;
  return Status::NotFound("unknown aggregate: " + name);
}

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kMax:
      return "MAX";
    case AggregateKind::kAvg:
      return "AVG";
    case AggregateKind::kLength:
      return "LENGTH";
    case AggregateKind::kSurface:
      return "SURFACE";
    case AggregateKind::kVolume:
      return "VOLUME";
    case AggregateKind::kEval:
      return "EVAL";
  }
  return "?";
}

int AggregateInputArity(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kMin:
    case AggregateKind::kMax:
    case AggregateKind::kAvg:
    case AggregateKind::kLength:
      return 1;
    case AggregateKind::kSurface:
      return 2;
    case AggregateKind::kVolume:
      return 3;
    case AggregateKind::kEval:
      return -1;
  }
  return -1;
}

namespace {

AggregateValue ExactValue(Rational value) {
  AggregateValue out;
  out.exact = true;
  out.exact_value = std::move(value);
  out.approx_value = out.exact_value.ToDouble();
  return out;
}

AggregateValue ApproxValue(double value, double error) {
  AggregateValue out;
  out.exact = false;
  out.approx_value = value;
  out.error_estimate = error;
  return out;
}

// Endpoint of a decomposition piece as an aggregate value.
AggregateValue EndpointValue(const AlgebraicNumber& endpoint,
                             double tolerance) {
  if (endpoint.is_rational()) return ExactValue(endpoint.rational_value());
  Rational eps = FloatK::FromDouble(tolerance).ToRational();
  if (eps.sign() <= 0) eps = Rational(BigInt(1), BigInt::Pow2(40));
  return ApproxValue(endpoint.Approximate(eps).ToDouble(), tolerance);
}

bool CellSatisfies(const CadCell& cell, const ConstraintRelation& relation) {
  for (const GeneralizedTuple& tuple : relation.tuples()) {
    bool all = true;
    for (const Atom& atom : tuple.atoms) {
      if (!SignSatisfies(cell.sample.SignAt(atom.poly), atom.op)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

// Substitutes variable 0 := x0 in a binary relation, producing a unary
// relation over the remaining variable (renamed to 0).
ConstraintRelation SubstituteFirstVar(const ConstraintRelation& relation,
                                      const Rational& x0) {
  ConstraintRelation out(relation.arity() - 1);
  for (const GeneralizedTuple& tuple : relation.tuples()) {
    GeneralizedTuple mapped;
    for (const Atom& atom : tuple.atoms) {
      Polynomial p = atom.poly.Substitute(0, x0);
      // Shift remaining variables down by one.
      int max_var = p.max_var();
      if (max_var >= 1) {
        std::vector<int> mapping(max_var + 1);
        for (int v = 0; v <= max_var; ++v) mapping[v] = v == 0 ? 0 : v - 1;
        p = p.RenameVars(mapping);
      }
      mapped.atoms.emplace_back(std::move(p), atom.op);
    }
    if (mapped.SimplifyConstants()) out.AddTuple(std::move(mapped));
  }
  return out;
}

// 1-D measure of a unary relation: {exact?, rational, double}. Undefined
// when some satisfied sector is unbounded.
struct Measure1D {
  bool exact = true;
  Rational exact_total;
  double approx_total = 0.0;
};

StatusOr<Measure1D> MeasureUnary(const ConstraintRelation& relation,
                                 double tolerance,
                                 const ResourceGovernor* gov) {
  CCDB_ASSIGN_OR_RETURN(UnaryDecomposition decomposition,
                        DecomposeUnary(relation, gov));
  Measure1D out;
  for (const auto& piece : decomposition.pieces) {
    if (piece.is_point) continue;
    if (!piece.has_lower || !piece.has_upper) {
      return Status::Undefined("unbounded set has infinite measure");
    }
    AggregateValue lo = EndpointValue(piece.lower, tolerance);
    AggregateValue hi = EndpointValue(piece.upper, tolerance);
    if (lo.exact && hi.exact && out.exact) {
      out.exact_total += hi.exact_value - lo.exact_value;
    } else {
      out.exact = false;
    }
    out.approx_total += hi.Value() - lo.Value();
  }
  if (out.exact) out.approx_total = out.exact_total.ToDouble();
  return out;
}

}  // namespace

StatusOr<AggregateValue> AggregateModules::Min(
    const ConstraintRelation& relation) const {
  ++call_count_;
  CCDB_METRIC_COUNT("agg.module_calls", 1);
  CCDB_CHECK_MSG(relation.arity() == 1, "MIN requires a unary relation");
  CCDB_ASSIGN_OR_RETURN(UnaryDecomposition decomposition,
                        DecomposeUnary(relation, governor_));
  if (decomposition.pieces.empty()) {
    return Status::Undefined("MIN of an empty set");
  }
  const auto& first = decomposition.pieces.front();
  if (first.is_point) return EndpointValue(first.lower, tolerance_);
  if (!first.has_lower) {
    return Status::Undefined("MIN of a set unbounded below");
  }
  // Open sector at the bottom: the infimum is not attained.
  return Status::Undefined("MIN does not exist (infimum not attained)");
}

StatusOr<AggregateValue> AggregateModules::Max(
    const ConstraintRelation& relation) const {
  ++call_count_;
  CCDB_METRIC_COUNT("agg.module_calls", 1);
  CCDB_CHECK_MSG(relation.arity() == 1, "MAX requires a unary relation");
  CCDB_ASSIGN_OR_RETURN(UnaryDecomposition decomposition,
                        DecomposeUnary(relation, governor_));
  if (decomposition.pieces.empty()) {
    return Status::Undefined("MAX of an empty set");
  }
  const auto& last = decomposition.pieces.back();
  if (last.is_point) return EndpointValue(last.upper, tolerance_);
  if (!last.has_upper) {
    return Status::Undefined("MAX of a set unbounded above");
  }
  return Status::Undefined("MAX does not exist (supremum not attained)");
}

StatusOr<AggregateValue> AggregateModules::Avg(
    const ConstraintRelation& relation) const {
  ++call_count_;
  CCDB_METRIC_COUNT("agg.module_calls", 1);
  CCDB_CHECK_MSG(relation.arity() == 1, "AVG requires a unary relation");
  CCDB_ASSIGN_OR_RETURN(UnaryDecomposition decomposition,
                        DecomposeUnary(relation, governor_));
  if (decomposition.pieces.empty()) {
    return Status::Undefined("AVG of an empty set");
  }
  bool all_points = true;
  for (const auto& piece : decomposition.pieces) {
    if (!piece.is_point) all_points = false;
    if (!piece.has_lower || !piece.has_upper) {
      return Status::Undefined("AVG of an unbounded set");
    }
  }
  if (all_points) {
    // Arithmetic mean of the finite set.
    bool exact = true;
    Rational exact_sum(0);
    double approx_sum = 0.0;
    for (const auto& piece : decomposition.pieces) {
      AggregateValue v = EndpointValue(piece.lower, tolerance_);
      if (v.exact && exact) {
        exact_sum += v.exact_value;
      } else {
        exact = false;
      }
      approx_sum += v.Value();
    }
    Rational count(static_cast<std::int64_t>(decomposition.pieces.size()));
    if (exact) return ExactValue(exact_sum / count);
    return ApproxValue(approx_sum / count.ToDouble(), tolerance_);
  }
  // Mean with respect to the 1-D uniform measure: (∫ x dx) / measure.
  bool exact = true;
  Rational exact_moment(0), exact_measure(0);
  double approx_moment = 0.0, approx_measure = 0.0;
  Rational half(BigInt(1), BigInt(2));
  for (const auto& piece : decomposition.pieces) {
    if (piece.is_point) continue;
    AggregateValue lo = EndpointValue(piece.lower, tolerance_);
    AggregateValue hi = EndpointValue(piece.upper, tolerance_);
    if (lo.exact && hi.exact && exact) {
      exact_moment +=
          (hi.exact_value * hi.exact_value - lo.exact_value * lo.exact_value) *
          half;
      exact_measure += hi.exact_value - lo.exact_value;
    } else {
      exact = false;
    }
    approx_moment += 0.5 * (hi.Value() * hi.Value() - lo.Value() * lo.Value());
    approx_measure += hi.Value() - lo.Value();
  }
  if (exact) {
    if (exact_measure.is_zero()) return Status::Undefined("AVG of a null set");
    return ExactValue(exact_moment / exact_measure);
  }
  if (approx_measure <= 0.0) return Status::Undefined("AVG of a null set");
  return ApproxValue(approx_moment / approx_measure, tolerance_);
}

StatusOr<AggregateValue> AggregateModules::Length(
    const ConstraintRelation& relation) const {
  ++call_count_;
  CCDB_METRIC_COUNT("agg.module_calls", 1);
  CCDB_CHECK_MSG(relation.arity() == 1, "LENGTH requires a unary relation");
  CCDB_ASSIGN_OR_RETURN(Measure1D measure,
                        MeasureUnary(relation, tolerance_, governor_));
  if (measure.exact) return ExactValue(measure.exact_total);
  return ApproxValue(measure.approx_total, tolerance_);
}

StatusOr<double> AggregateModules::SliceMeasure(
    const ConstraintRelation& relation, const Rational& x0) const {
  CCDB_CHECK(relation.arity() == 2);
  ConstraintRelation slice = SubstituteFirstVar(relation, x0);
  CCDB_ASSIGN_OR_RETURN(Measure1D measure,
                        MeasureUnary(slice, tolerance_, governor_));
  return measure.approx_total;
}

StatusOr<AggregateValue> AggregateModules::Surface(
    const ConstraintRelation& relation) const {
  ++call_count_;
  CCDB_METRIC_COUNT("agg.module_calls", 1);
  CCDB_CHECK_MSG(relation.arity() == 2, "SURFACE requires a binary relation");
  if (relation.is_empty_syntactically()) return ExactValue(Rational(0));
  CadOptions surface_cad_options;
  surface_cad_options.governor = governor_;
  CCDB_ASSIGN_OR_RETURN(Cad cad,
                        Cad::Build(relation.CollectPolynomials(), 2,
                                   surface_cad_options));
  const std::vector<CadCell>& base = cad.roots();
  bool exact = true;
  Rational exact_total(0);
  double approx_total = 0.0;
  double approx_error = 0.0;

  for (std::size_t b = 0; b < base.size(); ++b) {
    const CadCell& base_cell = base[b];
    bool base_is_sector = base_cell.index[0] % 2 == 1;
    // Gather satisfied children and their stack structure.
    const std::vector<CadCell>& stack = base_cell.children;
    std::vector<bool> satisfied(stack.size(), false);
    bool any_positive = false;
    for (std::size_t c = 0; c < stack.size(); ++c) {
      satisfied[c] = CellSatisfies(stack[c], relation);
      if (satisfied[c] && c % 2 == 0) any_positive = true;  // y-sector
    }
    if (!base_is_sector) continue;  // x-section: zero width
    if (!any_positive) continue;
    bool base_unbounded = (b == 0) || (b + 1 == base.size());
    if (base_unbounded) {
      return Status::Undefined("SURFACE of an x-unbounded region");
    }
    // Check y-unbounded satisfied sectors.
    if (satisfied.front() || (stack.size() > 1 && satisfied.back()) ||
        (stack.size() == 1 && satisfied[0])) {
      return Status::Undefined("SURFACE of a y-unbounded region");
    }
    const AlgebraicNumber& a = base[b - 1].sample.coord(0);
    const AlgebraicNumber& c = base[b + 1].sample.coord(0);

    // Try the exact path: rational endpoints and polynomial-graph
    // boundaries (the boundary factor is linear in y with constant leading
    // coefficient).
    bool piece_exact = a.is_rational() && c.is_rational();
    Rational piece_exact_total(0);
    std::vector<std::pair<UPoly, UPoly>> graph_bounds;  // lower, upper
    if (piece_exact) {
      for (std::size_t j = 0; j + 1 < stack.size() && piece_exact; ++j) {
        if (j % 2 != 0 || !satisfied[j]) continue;  // only inner y-sectors
        // Sector children[j] is bounded by sections children[j-1] and
        // children[j+1] (j > 0 guaranteed since satisfied.front() was
        // rejected above).
        auto graph_of = [&](const CadCell& section,
                            UPoly* out) -> bool {
          for (const Polynomial& factor : cad.factors_at_level(1)) {
            if (section.sample.SignAt(factor) != 0) continue;
            if (factor.DegreeIn(1) != 1) return false;
            Polynomial lc = factor.LeadingCoefficientIn(1);
            if (!lc.is_constant()) return false;
            Polynomial g =
                factor.CoefficientsIn(1)[0].Scale(-lc.constant_value()
                                                       .Inverse());
            auto u = UPoly::FromPolynomial(g, 0);
            if (!u.ok()) return false;
            *out = std::move(*u);
            return true;
          }
          return false;
        };
        UPoly lower_graph, upper_graph;
        if (j == 0 || j + 1 >= stack.size() ||
            !graph_of(stack[j - 1], &lower_graph) ||
            !graph_of(stack[j + 1], &upper_graph)) {
          piece_exact = false;
          break;
        }
        piece_exact_total += IntegratePolynomial(
            upper_graph - lower_graph, a.rational_value(), c.rational_value());
      }
    }
    if (piece_exact) {
      exact_total += piece_exact_total;
      approx_total += piece_exact_total.ToDouble();
      continue;
    }
    // Numeric path: integrate the slice measure. Quadrature nodes are
    // quantized to 24-bit dyadics so the per-slice exact root isolation
    // works with short rationals; the induced node perturbation is far
    // below the quadrature tolerance.
    exact = false;
    double numeric_tol = std::max(tolerance_, 1e-6);
    Rational eps = FloatK::FromDouble(numeric_tol).ToRational();
    double a_d = a.Approximate(eps).ToDouble();
    double c_d = c.Approximate(eps).ToDouble();
    Status slice_error = Status::Ok();
    FpFormat node_format{24, 1024};
    auto integrand = [&](double x) -> double {
      auto node = FloatK::FromRational(FloatK::FromDouble(x).ToRational(),
                                       node_format, FpMode::kRound);
      Rational x_rational =
          node.ok() ? node->ToRational() : FloatK::FromDouble(x).ToRational();
      auto m = SliceMeasure(relation, x_rational);
      if (!m.ok()) {
        slice_error = m.status();
        return 0.0;
      }
      return *m;
    };
    auto quad = AdaptiveSimpson(integrand, a_d, c_d, numeric_tol, 24,
                                governor_);
    if (!slice_error.ok()) return slice_error;
    if (!quad.ok()) return quad.status();
    approx_total += quad->value;
    approx_error += quad->error_estimate;
  }
  if (exact) return ExactValue(exact_total);
  return ApproxValue(approx_total, approx_error + tolerance_);
}

StatusOr<AggregateValue> AggregateModules::Volume(
    const ConstraintRelation& relation) const {
  ++call_count_;
  CCDB_METRIC_COUNT("agg.module_calls", 1);
  CCDB_CHECK_MSG(relation.arity() == 3, "VOLUME requires a ternary relation");
  if (relation.is_empty_syntactically()) return ExactValue(Rational(0));
  // x-extent: decompose the projection onto x via a CAD of the level-0
  // projection factors (cheap: build the full projection but only the base
  // phase matters for the extent).
  CadOptions volume_cad_options;
  volume_cad_options.governor = governor_;
  CCDB_ASSIGN_OR_RETURN(Cad cad,
                        Cad::Build(relation.CollectPolynomials(), 3,
                                   volume_cad_options));
  const std::vector<CadCell>& base = cad.roots();
  // Find satisfied leaves to detect x-unboundedness and collect the
  // satisfied base range.
  double total = 0.0;
  double total_error = 0.0;
  double volume_tol = std::max(tolerance_, 1e-5);
  for (std::size_t b = 0; b < base.size(); ++b) {
    bool any = false;
    std::function<void(const CadCell&)> scan = [&](const CadCell& cell) {
      if (cell.dimension() == 3) {
        bool sector_volume = cell.index[1] % 2 == 1 && cell.index[2] % 2 == 1;
        if (sector_volume && CellSatisfies(cell, relation)) any = true;
        return;
      }
      for (const CadCell& child : cell.children) scan(child);
    };
    scan(base[b]);
    if (!any) continue;
    if (base[b].index[0] % 2 == 0) continue;  // x-section: zero width
    if (b == 0 || b + 1 == base.size()) {
      return Status::Undefined("VOLUME of an x-unbounded region");
    }
    Rational eps = FloatK::FromDouble(volume_tol).ToRational();
    double a_d = base[b - 1].sample.coord(0).Approximate(eps).ToDouble();
    double c_d = base[b + 1].sample.coord(0).Approximate(eps).ToDouble();
    Status inner_error = Status::Ok();
    AggregateModules inner_modules(volume_tol, governor_);
    auto integrand = [&](double x) -> double {
      ConstraintRelation slice =
          SubstituteFirstVar(relation, FloatK::FromDouble(x).ToRational());
      auto area = inner_modules.Surface(slice);
      if (!area.ok()) {
        inner_error = area.status();
        return 0.0;
      }
      return area->Value();
    };
    auto quad = AdaptiveSimpson(integrand, a_d, c_d, volume_tol, 16,
                                governor_);
    if (!inner_error.ok()) return inner_error;
    if (!quad.ok()) return quad.status();
    total += quad->value;
    total_error += quad->error_estimate;
  }
  return ApproxValue(total, total_error + volume_tol);
}

StatusOr<ConstraintRelation> AggregateModules::Eval(
    const ConstraintRelation& relation, const Rational& epsilon) const {
  ++call_count_;
  CCDB_METRIC_COUNT("agg.module_calls", 1);
  CCDB_ASSIGN_OR_RETURN(NumericalEvaluation eval,
                        EvaluateNumerically(relation, governor_));
  if (!eval.finite) return relation;  // "or to S itself otherwise"
  ConstraintRelation out(relation.arity());
  for (const AlgebraicPoint& point : eval.points) {
    GeneralizedTuple tuple;
    for (int v = 0; v < point.dimension(); ++v) {
      const AlgebraicNumber& coord = point.coord(v);
      Rational value = coord.is_rational() ? coord.rational_value()
                                           : coord.Approximate(epsilon);
      tuple.atoms.emplace_back(Polynomial::Var(v) - Polynomial(value),
                               RelOp::kEq);
    }
    out.AddTuple(std::move(tuple));
  }
  return out;
}

StatusOr<ConstraintRelation> AggregateModules::ApplyParameterized(
    AggregateKind kind, const ConstraintRelation& relation,
    int num_params) const {
  CCDB_CHECK(num_params >= 1);
  int agg_arity = relation.arity() - num_params;
  int required = AggregateInputArity(kind);
  if (required >= 0 && agg_arity != required) {
    return Status::InvalidArgument(
        std::string(AggregateKindName(kind)) + " aggregates over arity " +
        std::to_string(required) + ", got " + std::to_string(agg_arity));
  }
  if (kind == AggregateKind::kEval) {
    return Status::Unimplemented("parameterized EVAL");
  }

  // Split every tuple into t_x (parameters only) and t_y (aggregation
  // variables only, renamed down to 0..agg_arity-1). The paper makes the
  // same separability requirement: "if for each t ∈ r, constraints in t
  // can be divided into constraints only on x and constraints only on y
  // ... (the query is undefined otherwise)".
  struct SplitTuple {
    GeneralizedTuple x_part;
    GeneralizedTuple y_part;
  };
  std::vector<SplitTuple> split;
  std::vector<Polynomial> x_polys;
  for (const GeneralizedTuple& tuple : relation.tuples()) {
    SplitTuple st;
    for (const Atom& atom : tuple.atoms) {
      bool mentions_x = false, mentions_y = false;
      for (int v = 0; v <= atom.poly.max_var(); ++v) {
        if (!atom.poly.Mentions(v)) continue;
        (v < num_params ? mentions_x : mentions_y) = true;
      }
      if (mentions_x && mentions_y) {
        return Status::Undefined(
            "parameterized aggregate over a non-separable tuple: " +
            atom.poly.ToString());
      }
      if (mentions_y) {
        int max_var = atom.poly.max_var();
        std::vector<int> mapping(max_var + 1, 0);
        for (int v = 0; v <= max_var; ++v) {
          mapping[v] = v >= num_params ? v - num_params : v;
        }
        st.y_part.atoms.emplace_back(atom.poly.RenameVars(mapping), atom.op);
      } else {
        st.x_part.atoms.push_back(atom);
        if (!atom.poly.is_constant()) x_polys.push_back(atom.poly);
      }
    }
    split.push_back(std::move(st));
  }

  // CAD of the parameter space (the paper's "Construct a CAD C on the
  // constraint relation {t_x | t ∈ r}"), with a Thom retry when plain
  // sign vectors cannot distinguish cells carrying different values.
  for (int attempt = 0; attempt < 2; ++attempt) {
    CadOptions cad_options;
    cad_options.derivative_closure_below = attempt == 0 ? 0 : num_params;
    cad_options.governor = governor_;
    CCDB_ASSIGN_OR_RETURN(Cad cad,
                          Cad::Build(x_polys, num_params, cad_options));
    std::vector<Polynomial> factors = cad.FactorsBelow(num_params);

    struct CellResult {
      std::vector<int> signs;
      bool defined = false;
      Rational value;
    };
    std::vector<CellResult> results;
    Status inner_error = Status::Ok();
    cad.ForEachCellAtDimension(num_params, [&](const CadCell& cell) {
      if (!inner_error.ok()) return;
      CellResult result;
      result.signs.reserve(factors.size());
      for (const Polynomial& f : factors) {
        result.signs.push_back(cell.sample.SignAt(f));
      }
      // Active tuples: those whose x-part holds on this cell.
      ConstraintRelation slice_union(agg_arity);
      bool any_active = false;
      for (const SplitTuple& st : split) {
        bool active = true;
        for (const Atom& atom : st.x_part.atoms) {
          if (!SignSatisfies(cell.sample.SignAt(atom.poly), atom.op)) {
            active = false;
            break;
          }
        }
        if (active) {
          any_active = true;
          slice_union.AddTuple(st.y_part);
        }
      }
      if (any_active) {
        auto value = ApplyNumeric(kind, slice_union);
        if (value.ok()) {
          result.defined = true;
          result.value = value->exact
                             ? value->exact_value
                             : FloatK::FromDouble(value->approx_value)
                                   .ToRational();
        } else if (value.status().code() != StatusCode::kUndefined) {
          inner_error = value.status();
        }
      }
      results.push_back(std::move(result));
    });
    CCDB_RETURN_IF_ERROR(inner_error);

    // Sign-vector discrimination: a vector shared by cells with different
    // outcomes needs the Thom retry.
    bool collision = false;
    for (std::size_t i = 0; i < results.size() && !collision; ++i) {
      for (std::size_t j = i + 1; j < results.size(); ++j) {
        if (results[i].signs != results[j].signs) continue;
        if (results[i].defined != results[j].defined ||
            (results[i].defined && results[i].value != results[j].value)) {
          collision = true;
          break;
        }
      }
    }
    if (collision) {
      if (attempt == 0) continue;
      return Status::Internal(
          "parameterized aggregate: cells with different values share a "
          "sign vector even after Thom augmentation");
    }

    ConstraintRelation out(num_params + 1);
    std::vector<std::vector<int>> emitted;
    for (const CellResult& result : results) {
      if (!result.defined) continue;
      bool seen = false;
      for (const auto& signs : emitted) {
        if (signs == result.signs) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      emitted.push_back(result.signs);
      GeneralizedTuple tuple;
      for (std::size_t i = 0; i < factors.size(); ++i) {
        RelOp op = result.signs[i] < 0
                       ? RelOp::kLt
                       : (result.signs[i] > 0 ? RelOp::kGt : RelOp::kEq);
        tuple.atoms.emplace_back(factors[i], op);
      }
      tuple.atoms.emplace_back(
          Polynomial::Var(num_params) - Polynomial(result.value), RelOp::kEq);
      out.AddTuple(std::move(tuple));
    }
    return out;
  }
  return Status::Internal("unreachable: parameterized aggregate attempts");
}

StatusOr<AggregateValue> AggregateModules::ApplyNumeric(
    AggregateKind kind, const ConstraintRelation& relation) const {
  int required = AggregateInputArity(kind);
  if (required >= 0 && relation.arity() != required) {
    return Status::InvalidArgument(
        std::string(AggregateKindName(kind)) + " requires arity " +
        std::to_string(required) + ", got " +
        std::to_string(relation.arity()));
  }
  switch (kind) {
    case AggregateKind::kMin:
      return Min(relation);
    case AggregateKind::kMax:
      return Max(relation);
    case AggregateKind::kAvg:
      return Avg(relation);
    case AggregateKind::kLength:
      return Length(relation);
    case AggregateKind::kSurface:
      return Surface(relation);
    case AggregateKind::kVolume:
      return Volume(relation);
    case AggregateKind::kEval:
      return Status::InvalidArgument("EVAL is not a numeric aggregate");
  }
  return Status::Internal("unreachable aggregate kind");
}

}  // namespace ccdb
