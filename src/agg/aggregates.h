#ifndef CCDB_AGG_AGGREGATES_H_
#define CCDB_AGG_AGGREGATES_H_

#include <string>
#include <vector>

#include "base/resource.h"
#include "base/status.h"
#include "constraint/atom.h"

namespace ccdb {

/// The aggregate functions of CALC_F (paper, Section 5): "MIN, MAX, AVG,
/// LENGTH, SURFACE, VOLUME, and EVAL".
enum class AggregateKind {
  kMin,
  kMax,
  kAvg,
  kLength,
  kSurface,
  kVolume,
  kEval,
};

StatusOr<AggregateKind> AggregateKindFromName(const std::string& name);
const char* AggregateKindName(AggregateKind kind);
/// Required input arity of the aggregate (-1: any arity, for EVAL).
int AggregateInputArity(AggregateKind kind);

/// A numeric aggregate result: exact rational when the geometry allows
/// (rational endpoints, polynomial-graph boundaries), a certified-tolerance
/// double otherwise. The paper's framework explicitly allows approximate
/// module outputs ("manipulation of approximate values").
struct AggregateValue {
  bool exact = false;
  Rational exact_value;
  double approx_value = 0.0;
  double error_estimate = 0.0;

  double Value() const { return exact ? exact_value.ToDouble() : approx_value; }
};

/// The (k,l)-aggregate evaluation modules of Definition 5.3, implemented
/// with our own CAD-based decomposition and adaptive quadrature. Aggregates
/// are *partial*: MIN of an unbounded-below set, or SURFACE of an unbounded
/// region, is kUndefined ("return ... if they exist, undefined otherwise").
class AggregateModules {
 public:
  /// `governor`, when non-null, bounds every CAD decomposition and
  /// quadrature the modules run; exceeded budgets surface as
  /// kResourceExhausted from the aggregate call. Borrowed, not owned.
  explicit AggregateModules(double tolerance = 1e-9,
                            const ResourceGovernor* governor = nullptr)
      : tolerance_(tolerance), governor_(governor) {}

  /// Number of aggregate-module calls served (Theorem 5.5 counts these).
  std::uint64_t call_count() const { return call_count_; }
  void ResetCallCount() const { call_count_ = 0; }

  /// Smallest value of a unary relation; undefined when empty or when the
  /// infimum is not attained / is -infinity.
  StatusOr<AggregateValue> Min(const ConstraintRelation& relation) const;
  /// Largest value, dually.
  StatusOr<AggregateValue> Max(const ConstraintRelation& relation) const;
  /// Mean value: arithmetic mean of a finite set, or the uniform-measure
  /// mean of a set of positive finite 1-D measure.
  StatusOr<AggregateValue> Avg(const ConstraintRelation& relation) const;
  /// 1-D measure of a unary relation (sum of interval lengths).
  StatusOr<AggregateValue> Length(const ConstraintRelation& relation) const;
  /// 2-D area of a binary relation.
  StatusOr<AggregateValue> Surface(const ConstraintRelation& relation) const;
  /// 3-D volume of a ternary relation.
  StatusOr<AggregateValue> Volume(const ConstraintRelation& relation) const;

  /// EVAL (paper, Section 5): "maps a given system of constraints S either
  /// to its finite set of solutions if it exists, or to S itself
  /// otherwise". Finite solutions are emitted as exact point tuples when
  /// rational, epsilon-approximated otherwise.
  StatusOr<ConstraintRelation> Eval(const ConstraintRelation& relation,
                                    const Rational& epsilon) const;

  /// Dispatches a numeric aggregate by kind (not EVAL).
  StatusOr<AggregateValue> ApplyNumeric(AggregateKind kind,
                                        const ConstraintRelation& relation) const;

  /// 1-D measure of the y-slice {y : relation(x0, y)} at a fixed rational
  /// x0 of a binary relation; the integrand of SURFACE. Exposed for tests.
  StatusOr<double> SliceMeasure(const ConstraintRelation& relation,
                                const Rational& x0) const;

  /// The paper's step 4 (Section 5): PARAMETERIZED aggregate evaluation.
  /// `relation` is over variables 0..num_params-1 (the parameters x) and
  /// num_params..arity-1 (the aggregation variables y). Requires every
  /// tuple to be separable (t == t_x ∧ t_y); builds a CAD of the
  /// parameter space from the t_x constraints, aggregates the union of
  /// the active t_y parts over each cell, and returns a relation over
  /// (x, z): the paper's  { t_c ∧ t_y | c ∈ C, t_y ∈ g_y(r_c) }.
  /// Cells whose aggregate is undefined (e.g. MIN of an unbounded slice)
  /// are omitted — the aggregate predicate is partial there.
  StatusOr<ConstraintRelation> ApplyParameterized(
      AggregateKind kind, const ConstraintRelation& relation,
      int num_params) const;

 private:
  double tolerance_;
  const ResourceGovernor* governor_ = nullptr;
  mutable std::uint64_t call_count_ = 0;
};

}  // namespace ccdb

#endif  // CCDB_AGG_AGGREGATES_H_
