#include "plan/planner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <numeric>
#include <set>
#include <sstream>

#include "base/logging.h"
#include "base/memo.h"
#include "base/metrics.h"
#include "base/profile.h"
#include "base/trace.h"
#include "qe/dense_order.h"
#include "qe/fourier_motzkin.h"

namespace ccdb {

namespace {

// -1 = follow EngineConfig::Process(), 0 = forced off, 1 = forced on.
std::atomic<int> g_plan_override{-1};

std::uint64_t MaxBits(const std::vector<GeneralizedTuple>& tuples) {
  std::uint64_t bits = 0;
  for (const GeneralizedTuple& tuple : tuples) {
    for (const Atom& atom : tuple.atoms) {
      bits = std::max(bits, atom.poly.MaxCoefficientBitLength());
    }
  }
  return bits;
}

// Accumulates a sub-elimination's stats into the run's stats. The `plan`
// string is intentionally not merged: only the top-level run carries the
// plan summary.
void MergeStats(QeStats* into, const QeStats& from) {
  into->cad_cells += from.cad_cells;
  into->projection_factors += from.projection_factors;
  into->fm_rounds += from.fm_rounds;
  into->cache_hits += from.cache_hits;
  into->max_intermediate_bits =
      std::max(into->max_intermediate_bits, from.max_intermediate_bits);
  into->used_linear_path |= from.used_linear_path;
  into->used_dense_order_path |= from.used_dense_order_path;
  into->used_thom_augmentation |= from.used_thom_augmentation;
}

std::int64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Attribution counters for a profile node, from the node's accumulated
// engine stats. Zero values and already-present names are skipped.
void AddQeCounters(ProfileNode* node, const QeStats& s) {
  auto add = [node](const char* name, std::uint64_t v) {
    if (v == 0) return;
    for (const auto& [key, unused] : node->counters) {
      if (key == name) return;
    }
    node->AddCounter(name, v);
  };
  add("cad_cells", s.cad_cells);
  add("projection_factors", s.projection_factors);
  add("fm_rounds", s.fm_rounds);
  add("max_bits", s.max_intermediate_bits);
  add("qe_cache_hits", s.cache_hits);
}

std::string VarName(int v, const std::vector<std::string>& names) {
  if (v >= 0 && static_cast<std::size_t>(v) < names.size()) return names[v];
  return "x" + std::to_string(v);
}

std::string TuplesToDisplay(const std::vector<GeneralizedTuple>& tuples,
                            const std::vector<std::string>& names) {
  if (tuples.empty()) return "false";
  std::string out;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    if (i > 0) out += " or ";
    out += tuples[i].ToString(names);
  }
  return out;
}

void RenderNode(const PlanNode& node, const std::vector<std::string>& names,
                int depth, std::ostringstream* out) {
  std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  switch (node.kind) {
    case PlanNode::Kind::kLeaf:
      *out << indent << "leaf: " << TuplesToDisplay(node.tuples, names)
           << "\n";
      return;
    case PlanNode::Kind::kBlock: {
      *out << indent << "block[" << FragmentEngine(node.fragment)
           << "] exists";
      for (int v : node.vars) *out << " " << VarName(v, names);
      *out << ": " << TuplesToDisplay(node.tuples, names) << "\n";
      return;
    }
    case PlanNode::Kind::kProduct:
      *out << indent << "product\n";
      break;
    case PlanNode::Kind::kUnion:
      *out << indent << "union (" << node.children.size() << " member"
           << (node.children.size() == 1 ? "" : "s") << ")\n";
      break;
    case PlanNode::Kind::kMonolithic:
      *out << indent << "monolithic[" << FragmentEngine(node.fragment)
           << "]: " << node.formula.ToString(names) << "\n";
      return;
  }
  for (const auto& child : node.children) {
    RenderNode(*child, names, depth + 1, out);
  }
}

// Packed algorithm options relevant to plan shape (the same five bits the
// QE result cache packs; the planner bit itself is implied — plans are
// only built when planning is on).
unsigned PlanOptionBits(const QeOptions& options) {
  return (options.allow_linear_fast_path ? 1u : 0u) |
         (options.allow_thom_augmentation ? 2u : 0u) |
         (options.allow_equation_substitution ? 4u : 0u) |
         (options.linear_only ? 8u : 0u) |
         (options.allow_disjunct_split ? 16u : 0u);
}

struct PlanCacheKey {
  std::uint64_t formula_id = 0;
  int num_free_vars = 0;
  unsigned option_bits = 0;

  bool operator==(const PlanCacheKey& other) const {
    return formula_id == other.formula_id &&
           num_free_vars == other.num_free_vars &&
           option_bits == other.option_bits;
  }
};

struct PlanCacheKeyHash {
  std::size_t operator()(const PlanCacheKey& key) const {
    std::size_t h = 1469598103934665603ull;
    h = h * 1099511628211ull + static_cast<std::size_t>(key.formula_id);
    h = h * 1099511628211ull + static_cast<std::size_t>(key.num_free_vars);
    h = h * 1099511628211ull + key.option_bits;
    return h;
  }
};

struct PlanCacheValue {
  Formula formula;  // pins the interned node (and so the key id) alive
  QueryPlan plan;   // nodes are shared immutable — copying is cheap
};

ShardedMemoCache<PlanCacheKey, PlanCacheValue, PlanCacheKeyHash>&
PlanCache() {
  static auto* cache =
      new ShardedMemoCache<PlanCacheKey, PlanCacheValue, PlanCacheKeyHash>(
          "plan_cache", 2048);
  return *cache;
}

std::shared_ptr<PlanNode> MakeLeaf(std::vector<GeneralizedTuple> tuples) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kLeaf;
  node->tuples = std::move(tuples);
  return node;
}

// The executor's per-node result: the produced union of tuples over the
// free variables plus the engine stats of the sub-eliminations that
// produced it. Stats are returned (not written through a shared pointer)
// because union members execute in parallel; the caller merges them in
// member order, keeping the accumulation thread-count independent. The
// profile node (filled only when EXPLAIN ANALYZE armed a sink) rides the
// same channel for the same reason: parents splice children in plan
// order, so the attribution tree's shape is deterministic at every thread
// count.
struct ExecResult {
  std::vector<GeneralizedTuple> tuples;
  QeStats stats;
  ProfileNode profile;
};

Formula BlockToFormula(const std::vector<GeneralizedTuple>& tuples,
                       const std::vector<int>& vars) {
  std::vector<Formula> disjuncts;
  disjuncts.reserve(tuples.size());
  for (const GeneralizedTuple& tuple : tuples) {
    std::vector<Formula> conjuncts;
    conjuncts.reserve(tuple.atoms.size());
    for (const Atom& atom : tuple.atoms) {
      conjuncts.push_back(Formula::MakeAtom(atom));
    }
    disjuncts.push_back(Formula::And(conjuncts));
  }
  Formula f = Formula::Or(disjuncts);
  for (int i = static_cast<int>(vars.size()) - 1; i >= 0; --i) {
    f = Formula::Exists(vars[i], std::move(f));
  }
  return f;
}

StatusOr<ExecResult> ExecNode(const PlanNode& node, int num_free_vars,
                              const QeOptions& options, bool profiling);

// Eliminates one block with its fragment's engine, mirroring the
// monolithic driver's primitive sequence exactly: peel defining equations
// innermost-first, then per-variable dense-order / Fourier-Motzkin rounds;
// polynomial residue goes back through the public CAD driver with
// planning forced off.
StatusOr<ExecResult> ExecBlock(const PlanNode& node, int num_free_vars,
                               const QeOptions& options, bool profiling) {
  const ResourceGovernor* gov = options.governor;
  const auto start = std::chrono::steady_clock::now();
  ExecResult r;
  if (profiling) {
    r.profile.label = std::string("block[") + FragmentEngine(node.fragment) +
                      "] exists";
    for (int v : node.vars) r.profile.label += " x" + std::to_string(v);
  }
  r.tuples = node.tuples;
  r.stats.max_intermediate_bits = MaxBits(r.tuples);
  std::vector<int> vars = node.vars;
  std::uint64_t peeled = 0;
  while (options.allow_equation_substitution && !vars.empty() &&
         TrySubstituteInnermostExists(&r.tuples, vars.back())) {
    CCDB_CHECK_BUDGET(gov, "qe.drive");
    CCDB_METRIC_COUNT("qe.equation_substitutions", 1);
    ++peeled;
    vars.pop_back();
    r.tuples = SimplifyTuples(std::move(r.tuples));
    r.stats.max_intermediate_bits =
        std::max(r.stats.max_intermediate_bits, MaxBits(r.tuples));
  }
  auto finish = [&]() {
    if (!profiling) return;
    r.profile.inclusive_us = ElapsedUs(start);
    if (peeled > 0) r.profile.AddCounter("substitutions", peeled);
    AddQeCounters(&r.profile, r.stats);
    r.profile.AddCounter("tuples_out", r.tuples.size());
  };
  if (vars.empty()) {
    finish();
    return r;
  }

  if (node.fragment != Fragment::kPolynomial) {
    CCDB_TRACE_SPAN("qe.fourier_motzkin");
    r.stats.used_linear_path = true;
    r.stats.used_dense_order_path = node.fragment == Fragment::kDenseOrder;
    for (int i = static_cast<int>(vars.size()) - 1; i >= 0; --i) {
      CCDB_CHECK_BUDGET(gov, "qe.fm");
      ++r.stats.fm_rounds;
      if (node.fragment == Fragment::kDenseOrder) {
        // Closure over the dense-order language is asserted per round, so
        // every intermediate result stays inside FO(<=).
        CCDB_ASSIGN_OR_RETURN(r.tuples, EliminateExistsDenseOrder(
                                            r.tuples, vars[i], gov,
                                            options.pool));
      } else {
        CCDB_ASSIGN_OR_RETURN(
            r.tuples,
            EliminateExistsLinear(r.tuples, vars[i], gov, options.pool));
      }
      r.stats.max_intermediate_bits =
          std::max(r.stats.max_intermediate_bits, MaxBits(r.tuples));
    }
    finish();
    return r;
  }

  // Polynomial residue: rebuild the block formula and hand it to the
  // monolithic driver (planning off). Under linear_only this refuses with
  // kResourceExhausted, exactly like the monolithic path would.
  QeOptions sub = options;
  sub.plan = PlanToggle::kOff;
  sub.profile = nullptr;
  QeStats sub_stats;
  CCDB_ASSIGN_OR_RETURN(
      ConstraintRelation rel,
      EliminateQuantifiers(BlockToFormula(r.tuples, vars), num_free_vars, sub,
                           &sub_stats));
  MergeStats(&r.stats, sub_stats);
  r.tuples = std::move(*rel.mutable_tuples());
  finish();
  return r;
}

StatusOr<ExecResult> ExecNode(const PlanNode& node, int num_free_vars,
                              const QeOptions& options, bool profiling) {
  const ResourceGovernor* gov = options.governor;
  const auto start = std::chrono::steady_clock::now();
  switch (node.kind) {
    case PlanNode::Kind::kLeaf: {
      ExecResult r;
      r.tuples = node.tuples;
      r.stats.max_intermediate_bits = MaxBits(r.tuples);
      if (profiling) {
        r.profile.label = "leaf";
        r.profile.inclusive_us = ElapsedUs(start);
        r.profile.AddCounter("tuples_out", r.tuples.size());
      }
      return r;
    }
    case PlanNode::Kind::kBlock:
      return ExecBlock(node, num_free_vars, options, profiling);
    case PlanNode::Kind::kProduct: {
      // Cartesian recombination of independent factors, in child order:
      // sound because the children's quantified supports are disjoint and
      // deterministic because the nesting order is a plan decision.
      ExecResult r;
      r.tuples = {GeneralizedTuple()};
      for (const auto& child : node.children) {
        CCDB_CHECK_BUDGET(gov, "qe.drive");
        CCDB_ASSIGN_OR_RETURN(
            ExecResult part,
            ExecNode(*child, num_free_vars, options, profiling));
        MergeStats(&r.stats, part.stats);
        if (profiling) r.profile.children.push_back(std::move(part.profile));
        std::vector<GeneralizedTuple> crossed;
        crossed.reserve(r.tuples.size() * part.tuples.size());
        for (const GeneralizedTuple& a : r.tuples) {
          for (const GeneralizedTuple& b : part.tuples) {
            GeneralizedTuple joined = a;
            joined.atoms.insert(joined.atoms.end(), b.atoms.begin(),
                                b.atoms.end());
            crossed.push_back(std::move(joined));
          }
        }
        r.tuples = std::move(crossed);
      }
      if (profiling) {
        r.profile.label = "product";
        r.profile.inclusive_us = ElapsedUs(start);
        r.profile.AddCounter("tuples_out", r.tuples.size());
      }
      return r;
    }
    case PlanNode::Kind::kUnion: {
      // The planner's parallel fan-out point: members are independent
      // eliminations; slots merge in member order, never completion
      // order, so the answer is identical at every thread count.
      CCDB_ASSIGN_OR_RETURN(
          std::vector<ExecResult> slots,
          ThreadPool::Resolve(options.pool)->ParallelMap<ExecResult>(
              node.children.size(),
              [&](std::size_t i) -> StatusOr<ExecResult> {
                CCDB_CHECK_BUDGET(gov, "qe.drive");
                return ExecNode(*node.children[i], num_free_vars, options,
                                profiling);
              }));
      ExecResult r;
      for (ExecResult& slot : slots) {
        MergeStats(&r.stats, slot.stats);
        if (profiling) r.profile.children.push_back(std::move(slot.profile));
        for (GeneralizedTuple& tuple : slot.tuples) {
          r.tuples.push_back(std::move(tuple));
        }
      }
      if (profiling) {
        // Inclusive time is the union's wall time (the parallel wait);
        // children may sum past it, which exclusive_us() clamps at 0.
        r.profile.label = "union";
        r.profile.inclusive_us = ElapsedUs(start);
        r.profile.AddCounter("members", node.children.size());
        r.profile.AddCounter("tuples_out", r.tuples.size());
      }
      return r;
    }
    case PlanNode::Kind::kMonolithic: {
      QeOptions sub = options;
      sub.plan = PlanToggle::kOff;
      sub.profile = nullptr;
      QeStats sub_stats;
      ExecResult r;
      CCDB_ASSIGN_OR_RETURN(
          ConstraintRelation rel,
          EliminateQuantifiers(node.formula, num_free_vars, sub, &sub_stats));
      MergeStats(&r.stats, sub_stats);
      r.tuples = std::move(*rel.mutable_tuples());
      if (profiling) {
        r.profile.label =
            std::string("monolithic[") + FragmentEngine(node.fragment) + "]";
        r.profile.inclusive_us = ElapsedUs(start);
        AddQeCounters(&r.profile, r.stats);
        r.profile.AddCounter("tuples_out", r.tuples.size());
      }
      return r;
    }
  }
  return Status::Internal("unreachable plan node kind");
}

}  // namespace

bool PlannerEnabled() {
  int forced = g_plan_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return EngineConfig::Process().plan;
}

void SetPlannerEnabled(bool enabled) {
  g_plan_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool PlannerResolved(const QeOptions& options) {
  switch (options.plan) {
    case PlanToggle::kOn:
      return true;
    case PlanToggle::kOff:
      return false;
    case PlanToggle::kAuto:
      return PlannerEnabled();
  }
  return false;
}

std::string QueryPlan::Summary() const {
  if (root == nullptr) return "";
  if (fallback) {
    return std::string("monolithic[") + FragmentEngine(root->fragment) + "]";
  }
  if (root->kind == PlanNode::Kind::kLeaf) return "quantifier_free";
  std::ostringstream out;
  out << "union=" << root->children.size() << " blocks=" << blocks
      << " [dense_order=" << dispatch[0]
      << " fourier_motzkin=" << dispatch[1] << " cad=" << dispatch[2]
      << "] miniscoped=" << miniscope_pushes
      << " split=" << component_splits;
  return out.str();
}

std::string QueryPlan::ToString(const std::vector<std::string>& names) const {
  std::ostringstream out;
  out << "plan (" << Summary() << ")\n";
  if (root != nullptr) RenderNode(*root, names, 1, &out);
  return out.str();
}

QueryPlan PlanQuery(const Formula& formula, int num_free_vars,
                    const QeOptions& options) {
  CCDB_TRACE_SPAN("qe.plan");
  CCDB_METRIC_COUNT("qe.plan.built", 1);
  QueryPlan plan;
  plan.num_free_vars = num_free_vars;

  // Same normalization prologue as the monolithic driver: prenex, compact
  // quantified variables to num_free_vars..n-1 in prefix order, DNF.
  std::set<int> all_vars = formula.AllVars();
  int next_fresh = num_free_vars;
  if (!all_vars.empty()) {
    next_fresh = std::max(next_fresh, *all_vars.rbegin() + 1);
  }
  PrenexForm prenex = ToPrenex(formula, &next_fresh);
  Formula matrix_formula = prenex.matrix;
  for (std::size_t i = 0; i < prenex.prefix.size(); ++i) {
    int target = num_free_vars + static_cast<int>(i);
    if (prenex.prefix[i].var != target) {
      matrix_formula =
          matrix_formula.RenameFreeVar(prenex.prefix[i].var, target);
      prenex.prefix[i].var = target;
    }
  }
  int q = static_cast<int>(prenex.prefix.size());
  int n = num_free_vars + q;
  std::vector<GeneralizedTuple> tuples = ToDnf(matrix_formula);

  if (q == 0) {
    plan.root = MakeLeaf(std::move(tuples));
    return plan;
  }

  bool all_exists = true;
  for (const PrenexBlock& block : prenex.prefix) {
    if (!block.is_exists) all_exists = false;
  }
  // Fallbacks the planner does not restructure: universal quantifiers
  // (miniscoping ∃ over ∨ needs an all-existential prefix), variable-free
  // sentences, and — when the disjunct-split ablation knob is off — any
  // union the planner would otherwise split.
  if (!all_exists || n == 0 ||
      (!options.allow_disjunct_split && tuples.size() > 1)) {
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanNode::Kind::kMonolithic;
    node->formula = formula;
    node->fragment = options.allow_linear_fast_path
                         ? ClassifyTuples(tuples)
                         : Fragment::kPolynomial;
    plan.root = node;
    plan.fallback = true;
    return plan;
  }

  // Miniscoping over ∨: one member per disjunct. Per member, atoms that
  // mention no quantified variable are pushed out into a leaf (miniscoping
  // over ∧) and the remaining atoms split into connected components of
  // the quantified-variable–atom incidence graph.
  auto root = std::make_shared<PlanNode>();
  root->kind = PlanNode::Kind::kUnion;
  for (const GeneralizedTuple& disjunct : tuples) {
    // Union-find over this disjunct's quantified variables.
    std::vector<int> parent(static_cast<std::size_t>(q));
    std::iota(parent.begin(), parent.end(), 0);
    std::function<int(int)> find = [&](int a) {
      while (parent[a] != a) {
        parent[a] = parent[parent[a]];
        a = parent[a];
      }
      return a;
    };
    auto unite = [&](int a, int b) { parent[find(a)] = find(b); };

    GeneralizedTuple leaf;
    std::vector<std::vector<int>> atom_qvars(disjunct.atoms.size());
    std::vector<int> occurrences(static_cast<std::size_t>(q), 0);
    for (std::size_t a = 0; a < disjunct.atoms.size(); ++a) {
      for (int v = 0; v < q; ++v) {
        if (disjunct.atoms[a].poly.Mentions(num_free_vars + v)) {
          atom_qvars[a].push_back(v);
          ++occurrences[static_cast<std::size_t>(v)];
        }
      }
      if (atom_qvars[a].empty()) {
        leaf.atoms.push_back(disjunct.atoms[a]);
      } else {
        for (std::size_t j = 1; j < atom_qvars[a].size(); ++j) {
          unite(atom_qvars[a][0], atom_qvars[a][j]);
        }
      }
    }

    // Components keyed by their smallest quantified variable, each with
    // its atoms in original conjunct order.
    std::map<int, std::vector<int>> component_vars;  // root -> vars
    for (int v = 0; v < q; ++v) {
      if (occurrences[static_cast<std::size_t>(v)] == 0) continue;
      component_vars[find(v)].push_back(v);
    }
    std::map<int, GeneralizedTuple> component_atoms;
    for (std::size_t a = 0; a < disjunct.atoms.size(); ++a) {
      if (atom_qvars[a].empty()) continue;
      component_atoms[find(atom_qvars[a][0])].atoms.push_back(
          disjunct.atoms[a]);
    }

    std::vector<std::shared_ptr<const PlanNode>> kids;
    if (!leaf.atoms.empty() || component_vars.empty()) {
      kids.push_back(MakeLeaf({leaf}));
      ++plan.miniscope_pushes;
    }
    for (auto& [comp_root, vars] : component_vars) {
      auto block = std::make_shared<PlanNode>();
      block->kind = PlanNode::Kind::kBlock;
      block->tuples = {component_atoms[comp_root]};
      // Cheap-first elimination order (min-occurrence heuristic): the
      // executor eliminates innermost-first, so the least-constrained
      // variable goes innermost. Ties keep the highest index innermost —
      // the monolithic driver's natural order, which is what keeps
      // single-heuristic-neutral inputs byte-identical across paths.
      std::vector<int> ordered = vars;
      std::stable_sort(ordered.begin(), ordered.end(), [&](int a, int b) {
        int oa = occurrences[static_cast<std::size_t>(a)];
        int ob = occurrences[static_cast<std::size_t>(b)];
        if (oa != ob) return oa > ob;
        return a < b;
      });
      block->vars.reserve(ordered.size());
      for (int v : ordered) block->vars.push_back(num_free_vars + v);
      block->fragment = options.allow_linear_fast_path
                            ? ClassifyTuple(block->tuples[0])
                            : Fragment::kPolynomial;
      ++plan.blocks;
      ++plan.dispatch[static_cast<int>(block->fragment)];
      kids.push_back(std::move(block));
    }
    if (component_vars.size() > 1) ++plan.component_splits;

    if (kids.size() == 1) {
      root->children.push_back(std::move(kids[0]));
    } else {
      auto product = std::make_shared<PlanNode>();
      product->kind = PlanNode::Kind::kProduct;
      product->children = std::move(kids);
      root->children.push_back(std::move(product));
    }
  }
  plan.root = root;
  return plan;
}

QueryPlan GetOrBuildPlan(const Formula& formula, int num_free_vars,
                         const QeOptions& options) {
  const bool use_cache =
      options.governor == nullptr && MemoCachesEnabledFor(options.memo);
  PlanCacheKey key{formula.id(), num_free_vars, PlanOptionBits(options)};
  if (use_cache) {
    PlanCacheValue cached;
    if (PlanCache().Lookup(key, &cached)) return cached.plan;
  }
  QueryPlan plan = PlanQuery(formula, num_free_vars, options);
  if (use_cache) PlanCache().Insert(key, PlanCacheValue{formula, plan});
  return plan;
}

StatusOr<ConstraintRelation> ExecutePlan(const QueryPlan& plan,
                                         const QeOptions& options,
                                         QeStats* stats,
                                         ProfileNode* profile) {
  CCDB_TRACE_SPAN("qe.plan.execute");
  CCDB_CHECK(plan.root != nullptr);
  CCDB_METRIC_COUNT("qe.plan.executions", 1);
  CCDB_METRIC_COUNT("qe.plan.blocks", plan.blocks);
  CCDB_METRIC_COUNT("qe.plan.miniscope_pushes", plan.miniscope_pushes);
  CCDB_METRIC_COUNT("qe.plan.component_splits", plan.component_splits);
  CCDB_METRIC_COUNT("qe.plan.dispatch.dense_order", plan.dispatch[0]);
  CCDB_METRIC_COUNT("qe.plan.dispatch.fourier_motzkin", plan.dispatch[1]);
  CCDB_METRIC_COUNT("qe.plan.dispatch.cad", plan.dispatch[2]);
  CCDB_ASSIGN_OR_RETURN(
      ExecResult r,
      ExecNode(*plan.root, plan.num_free_vars, options, profile != nullptr));
  MergeStats(stats, r.stats);
  if (profile != nullptr) *profile = std::move(r.profile);
  return ConstraintRelation(plan.num_free_vars,
                            SimplifyTuples(std::move(r.tuples)));
}

}  // namespace ccdb
