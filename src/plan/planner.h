#ifndef CCDB_PLAN_PLANNER_H_
#define CCDB_PLAN_PLANNER_H_

/// The structure-aware query planner: the PLAN step of the refactored
/// pipeline parser → lower → plan → execute.
///
/// The paper's hierarchy FO(<=) ⊂ FO(<=,+) ⊂ FO(<=,+,×) (Proposition 4.6)
/// means real queries mix fragments with wildly different elimination
/// costs. Instead of running one globally-chosen strategy over the whole
/// formula, the planner
///
///   (a) CLASSIFIES every atom and quantifier block into its cheapest
///       fragment (plan/fragment.h) using the hash-consed IR's cached
///       free-variable sets;
///   (b) REWRITES before elimination: miniscoping (∃ distributes over ∨
///       and pushes past conjuncts that do not mention the quantified
///       variables) and splitting a block into independent variable
///       components (connected components of the variable–atom incidence
///       graph), plus cheap-first variable elimination ordering inside a
///       block (min-occurrence heuristic, least-constrained variable
///       innermost);
///   (c) DISPATCHES each block to the matching engine — dense-order
///       elimination for order-only blocks, Fourier-Motzkin for linear
///       blocks, CAD only for genuinely polynomial residue.
///
/// Soundness of the rewrites (DESIGN.md §10): ∃ȳ(D1 ∨ ... ∨ Dm) ≡
/// ∃ȳD1 ∨ ... ∨ ∃ȳDm (miniscoping over ∨); ∃y(A ∧ B) ≡ A ∧ ∃yB when y is
/// not free in A (miniscoping over ∧); and when a conjunction partitions
/// into C1 ∧ C2 with disjoint quantified-variable supports,
/// ∃ȳ1ȳ2(C1 ∧ C2) ≡ ∃ȳ1C1 ∧ ∃ȳ2C2 (component split). All three preserve
/// the denoted set exactly; only the syntactic derivation changes.
///
/// The executor delegates every block to the SAME elimination primitives
/// the monolithic driver uses (equation-substitution peel, dense-order /
/// Fourier-Motzkin rounds, the public CAD driver with planning forced
/// off), and the public EliminateQuantifiers entry point sorts the final
/// union of canonicalized disjuncts, so answers are byte-identical at
/// every thread count and — on inputs where both paths route each
/// sub-problem through the same primitive sequence (in particular the
/// disequality-free single-variable corpus of the differential tests) —
/// byte-identical with the planner on and off.

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "constraint/atom.h"
#include "constraint/formula.h"
#include "plan/fragment.h"
#include "qe/qe.h"

namespace ccdb {

struct ProfileNode;

/// Process-wide planner switch. Defaults to the CCDB_PLAN environment
/// variable (unset or any value but "0" = on); SetPlannerEnabled
/// overrides at runtime (differential tests, the `--plan=` bench flag).
bool PlannerEnabled();
void SetPlannerEnabled(bool enabled);
/// Resolves options.plan: kAuto follows PlannerEnabled().
bool PlannerResolved(const QeOptions& options);

/// One node of the plan IR. Immutable once built; shared between the plan
/// cache and every consumer.
struct PlanNode {
  enum class Kind {
    /// Quantifier-free residue over the free variables (atoms miniscoping
    /// pushed out of every quantifier scope). `tuples` holds the residue.
    kLeaf,
    /// Eliminate `vars` (prefix order, outermost first) from the single
    /// conjunction in `tuples` with `fragment`'s engine.
    kBlock,
    /// Conjunction of independent children (disjoint quantified-variable
    /// supports); results recombine by cartesian product in child order.
    kProduct,
    /// Disjunction of children (∃ miniscoped over ∨); results concatenate
    /// in child order.
    kUnion,
    /// Fallback: hand `formula` to the monolithic driver unchanged (mixed
    /// ∀/∃ prefixes, disabled disjunct split, degenerate inputs).
    kMonolithic,
  };
  Kind kind = Kind::kLeaf;
  Fragment fragment = Fragment::kDenseOrder;
  std::vector<int> vars;                 // kBlock: outermost first
  std::vector<GeneralizedTuple> tuples;  // kLeaf residue / kBlock matrix
  Formula formula = Formula::True();     // kMonolithic input
  std::vector<std::shared_ptr<const PlanNode>> children;
};

/// A built plan plus its rewrite/dispatch summary counters.
struct QueryPlan {
  std::shared_ptr<const PlanNode> root;
  int num_free_vars = 0;
  std::size_t blocks = 0;            // elimination blocks dispatched
  std::size_t miniscope_pushes = 0;  // scopes narrowed by miniscoping
  std::size_t component_splits = 0;  // disjuncts split into >1 block
  std::size_t dispatch[3] = {0, 0, 0};  // block count per Fragment
  bool fallback = false;                // kMonolithic root

  /// One-line summary, e.g.
  /// "union=3 blocks=4 [dense_order=1 fourier_motzkin=2 cad=1]
  ///  miniscoped=2 split=1".
  std::string Summary() const;
  /// Multi-line plan tree (the EXPLAIN rendering). `names` maps variable
  /// indices to display names; missing entries render as x<i>.
  std::string ToString(const std::vector<std::string>& names = {}) const;
};

/// Builds the plan for `formula` (same preconditions as
/// EliminateQuantifiers: relation-free, free variables < num_free_vars).
/// Pure function of (formula, num_free_vars, algorithm option bits).
QueryPlan PlanQuery(const Formula& formula, int num_free_vars,
                    const QeOptions& options);

/// Memoizing wrapper: pure memo keyed on the interned formula id, the
/// free-variable count, and the algorithm option bits (base/memo.h
/// contract — skipped under an armed governor and while failpoints are
/// armed). Metrics: plan_cache_hits / plan_cache_misses /
/// plan_cache_evictions.
QueryPlan GetOrBuildPlan(const Formula& formula, int num_free_vars,
                         const QeOptions& options);

/// Executes a built plan. Per-block sub-eliminations run with planning
/// forced off (the monolithic primitives); union members fan out across
/// options.pool and merge in member order, so the answer is identical at
/// every thread count. Plan decision counters fold into the metrics
/// registry, engine stats accumulate into *stats. When `profile` is
/// non-null, the executor mirrors the plan tree into it (base/profile.h):
/// one ProfileNode per plan node with inclusive wall time and attribution
/// counters, children spliced in plan order — observation only, the
/// answer is byte-identical with profiling on or off.
StatusOr<ConstraintRelation> ExecutePlan(const QueryPlan& plan,
                                         const QeOptions& options,
                                         QeStats* stats,
                                         ProfileNode* profile = nullptr);

}  // namespace ccdb

#endif  // CCDB_PLAN_PLANNER_H_
