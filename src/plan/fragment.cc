#include "plan/fragment.h"

namespace ccdb {

const char* FragmentName(Fragment f) {
  switch (f) {
    case Fragment::kDenseOrder:
      return "dense_order";
    case Fragment::kLinear:
      return "linear";
    case Fragment::kPolynomial:
      return "polynomial";
  }
  return "?";
}

const char* FragmentEngine(Fragment f) {
  switch (f) {
    case Fragment::kDenseOrder:
      return "dense_order";
    case Fragment::kLinear:
      return "fourier_motzkin";
    case Fragment::kPolynomial:
      return "cad";
  }
  return "?";
}

Fragment WidenFragment(Fragment a, Fragment b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

bool IsDenseOrderAtom(const Atom& atom) {
  const Polynomial& p = atom.poly;
  if (p.TotalDegree() > 1) return false;
  int vars = 0;
  Rational coeff_sum(0);
  bool has_constant = false;
  for (const auto& [monomial, coeff] : p.terms()) {
    if (monomial.is_one()) {
      has_constant = true;
      continue;
    }
    ++vars;
    if (!(coeff == Rational(1) || coeff == Rational(-1))) return false;
    coeff_sum += coeff;
  }
  if (vars > 2) return false;
  if (vars == 2) {
    // x - y form: coefficients must cancel, and no constant offset (an
    // offset would encode addition, leaving the dense-order language).
    return coeff_sum.is_zero() && !has_constant;
  }
  return true;  // x - c or a constant atom
}

bool IsLinearAtom(const Atom& atom) { return atom.poly.TotalDegree() <= 1; }

Fragment ClassifyAtom(const Atom& atom) {
  if (!IsLinearAtom(atom)) return Fragment::kPolynomial;
  return IsDenseOrderAtom(atom) ? Fragment::kDenseOrder : Fragment::kLinear;
}

Fragment ClassifyTuple(const GeneralizedTuple& tuple) {
  Fragment f = Fragment::kDenseOrder;
  for (const Atom& atom : tuple.atoms) {
    f = WidenFragment(f, ClassifyAtom(atom));
    if (f == Fragment::kPolynomial) break;
  }
  return f;
}

Fragment ClassifyTuples(const std::vector<GeneralizedTuple>& tuples) {
  Fragment f = Fragment::kDenseOrder;
  for (const GeneralizedTuple& tuple : tuples) {
    f = WidenFragment(f, ClassifyTuple(tuple));
    if (f == Fragment::kPolynomial) break;
  }
  return f;
}

}  // namespace ccdb
