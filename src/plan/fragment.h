#ifndef CCDB_PLAN_FRAGMENT_H_
#define CCDB_PLAN_FRAGMENT_H_

/// Fragment classification for the paper's strict expressiveness hierarchy
/// FO(<=) ⊂ FO(<=,+) ⊂ FO(<=,+,×) (Proposition 4.6). Every atom,
/// generalized tuple, and DNF system is classified into the CHEAPEST
/// fragment whose elimination engine can answer it:
///
///   kDenseOrder  → dense-order elimination (qe/dense_order, Theorem 4.8)
///   kLinear      → Fourier-Motzkin          (qe/fourier_motzkin, Thm 4.2)
///   kPolynomial  → CAD                      (qe/cad, Theorem 4.1)
///
/// This is the one shared home of the linearity/degree tests that the
/// engines' entry guards (IsLinearSystem, IsDenseOrderSystem) and the
/// structure-aware planner (plan/planner) all dispatch on.

#include <vector>

#include "constraint/atom.h"

namespace ccdb {

enum class Fragment {
  kDenseOrder = 0,  // x θ y or x θ c, unit coefficients, no mixed offset
  kLinear = 1,      // total degree <= 1
  kPolynomial = 2,  // anything else
};

/// "dense_order", "linear", "polynomial".
const char* FragmentName(Fragment f);
/// The engine answering the fragment: "dense_order", "fourier_motzkin",
/// "cad".
const char* FragmentEngine(Fragment f);
/// The coarser (more expensive) of two fragments.
Fragment WidenFragment(Fragment a, Fragment b);

/// Dense-order atom: unit-coefficient difference of at most two variables,
/// plus a rational constant only in the one-variable case (an offset on a
/// two-variable difference would encode addition, leaving FO(<=)).
bool IsDenseOrderAtom(const Atom& atom);
/// Linear atom: total degree <= 1.
bool IsLinearAtom(const Atom& atom);

Fragment ClassifyAtom(const Atom& atom);
/// Widened over all atoms; an empty conjunction is dense-order.
Fragment ClassifyTuple(const GeneralizedTuple& tuple);
/// Widened over all tuples; an empty system is dense-order.
Fragment ClassifyTuples(const std::vector<GeneralizedTuple>& tuples);

}  // namespace ccdb

#endif  // CCDB_PLAN_FRAGMENT_H_
