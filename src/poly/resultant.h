#ifndef CCDB_POLY_RESULTANT_H_
#define CCDB_POLY_RESULTANT_H_

#include <vector>

#include "base/resource.h"
#include "base/status.h"
#include "poly/polynomial.h"

namespace ccdb {

/// Subresultant-PRS based polynomial algebra on multivariate polynomials
/// viewed as univariate in a chosen "main" variable. These are the
/// primitives behind the PROJ operator of the CAD algorithm (paper,
/// Appendix I: "polynomials of PROJ(P_i) are formed by addition,
/// subtraction, and multiplication of the coefficients … with the technique
/// of subresultants").
///
/// The coefficient swell of these pseudo-remainder sequences is where the
/// doubly-exponential CAD cost concentrates, so every PRS / gcd /
/// refinement loop below accepts a nullable `const ResourceGovernor*` and
/// charges it at its loop head ("poly.prs", "poly.gcd", "poly.divide");
/// the governed overloads return kResourceExhausted when a budget trips.
/// The Polynomial-returning forms are ungoverned conveniences.

/// Exact multivariate division; kInvalidArgument when b does not divide a.
StatusOr<Polynomial> DivideExactMv(const Polynomial& a, const Polynomial& b,
                                   const ResourceGovernor* gov = nullptr);

/// Pseudo-remainder of a by b with respect to variable `var`:
/// lc_var(b)^(deg_a - deg_b + 1) * a = q*b + prem. Requires
/// deg_var(b) >= 1 or b constant nonzero, and deg_var(a) >= deg_var(b).
Polynomial PseudoRem(const Polynomial& a, const Polynomial& b, int var);

/// Resultant of a and b with respect to `var` (a polynomial in the other
/// variables). Zero iff a and b share a common factor with positive degree
/// in `var` (over the fraction field).
Polynomial Resultant(const Polynomial& a, const Polynomial& b, int var);
StatusOr<Polynomial> Resultant(const Polynomial& a, const Polynomial& b,
                               int var, const ResourceGovernor* gov);

/// Discriminant of p with respect to `var`:
/// (-1)^{d(d-1)/2} res_var(p, dp/dvar) / lc_var(p). Requires
/// deg_var(p) >= 1.
Polynomial Discriminant(const Polynomial& p, int var);
StatusOr<Polynomial> Discriminant(const Polynomial& p, int var,
                                  const ResourceGovernor* gov);

/// Content of p with respect to `var`: gcd (up to units, normalized) of the
/// coefficients of p viewed as univariate in `var`.
Polynomial ContentIn(const Polynomial& p, int var);

/// p divided by its content in `var` (primitive part).
Polynomial PrimitivePartIn(const Polynomial& p, int var);

/// Gcd of multivariate polynomials over Q, normalized to primitive integer
/// coefficients with positive leading coefficient; MvGcd(0,0) == 0 and
/// the gcd of coprime polynomials is 1.
Polynomial MvGcd(const Polynomial& a, const Polynomial& b);
StatusOr<Polynomial> MvGcd(const Polynomial& a, const Polynomial& b,
                           const ResourceGovernor* gov);

/// Squarefree part of p with respect to `var`: p / gcd(p, dp/dvar),
/// normalized.
Polynomial SquarefreePartIn(const Polynomial& p, int var);

/// A finest squarefree basis for the set: the returned polynomials are
/// normalized, non-constant, squarefree in their own highest variable and
/// pairwise coprime, and every input polynomial is (up to a constant) a
/// product of powers of basis elements. This is the preconditioning step of
/// CAD projection — pairwise resultants and discriminants of basis
/// elements are then guaranteed nonzero.
std::vector<Polynomial> SquarefreeBasis(const std::vector<Polynomial>& polys);
StatusOr<std::vector<Polynomial>> SquarefreeBasis(
    const std::vector<Polynomial>& polys, const ResourceGovernor* gov);

}  // namespace ccdb

#endif  // CCDB_POLY_RESULTANT_H_
