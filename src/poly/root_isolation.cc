#include "poly/root_isolation.h"

#include <algorithm>
#include <deque>

#include "base/logging.h"

namespace ccdb {

namespace {

// One root of squarefree p lies in the open interval (lo, hi) with
// p(lo) != 0 != p(hi); bisect until the width is below `width`.
Interval BisectToWidth(const UPoly& p, Rational lo, Rational hi,
                       const Rational& width, bool* became_exact) {
  *became_exact = false;
  int sign_lo = p.Evaluate(lo).sign();
  CCDB_DCHECK(sign_lo != 0);
  while (hi - lo > width) {
    Rational mid = Rational::Midpoint(lo, hi);
    int sign_mid = p.Evaluate(mid).sign();
    if (sign_mid == 0) {
      *became_exact = true;
      return Interval(mid);
    }
    if (sign_mid == sign_lo) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return Interval(std::move(lo), std::move(hi));
}

// If the unique root of f in the open interval (lo, hi) is rational,
// identifies it exactly. f must be squarefree with f(lo), f(hi) != 0. Uses
// the rational root theorem on the integer-normalized polynomial: a root
// p/q (lowest terms) has q | lc and lands in (q*lo, q*hi) — after a little
// refinement only a handful of candidates remain per divisor.
bool TrySnapRationalRoot(const UPoly& f, Rational* lo, Rational* hi,
                         Rational* root) {
  // Integer-normalize: scale coefficients to integers.
  BigInt den_lcm(1);
  for (const Rational& c : f.coefficients()) {
    const BigInt& d = c.denominator();
    den_lcm = den_lcm / BigInt::Gcd(den_lcm, d) * d;
  }
  std::vector<Rational> scaled;
  scaled.reserve(f.coefficients().size());
  for (const Rational& c : f.coefficients()) {
    scaled.push_back(c * Rational(den_lcm));
  }
  UPoly g(std::move(scaled));
  BigInt lc = g.leading_coefficient().numerator().Abs();
  if (lc.bit_length() > 20) return false;  // divisor enumeration too costly
  std::int64_t lc_value = lc.ToInt64();

  // Refine until each divisor q admits at most one integer candidate p in
  // (q*lo, q*hi): width < 1/(2*lc) suffices for every q <= lc.
  Rational target_width(BigInt(1), BigInt(2 * lc_value));
  int sign_lo = f.Evaluate(*lo).sign();
  while (*hi - *lo > target_width) {
    Rational mid = Rational::Midpoint(*lo, *hi);
    int sign_mid = f.Evaluate(mid).sign();
    if (sign_mid == 0) {
      *root = mid;
      return true;
    }
    if (sign_mid == sign_lo) {
      *lo = mid;
    } else {
      *hi = mid;
    }
  }
  // Divisors of lc via trial division (lc < 2^20, so <= 2^10 iterations).
  std::vector<std::int64_t> divisors;
  for (std::int64_t i = 1; i * i <= lc_value; ++i) {
    if (lc_value % i != 0) continue;
    divisors.push_back(i);
    if (i != lc_value / i) divisors.push_back(lc_value / i);
  }
  for (std::int64_t q : divisors) {
    Rational q_rational(q);
    BigInt p_lo = (*lo * q_rational).Floor();
    BigInt p_hi = (*hi * q_rational).Ceil();
    for (BigInt p = p_lo; p <= p_hi; p += BigInt(1)) {
      Rational candidate(p, BigInt(q));
      if (!(candidate > *lo && candidate < *hi)) continue;
      if (f.Evaluate(candidate).is_zero()) {
        *root = candidate;
        return true;
      }
    }
  }
  return false;
}

}  // namespace

std::vector<IsolatedRoot> IsolateRealRoots(const UPoly& p) {
  auto roots = IsolateRealRoots(p, nullptr);
  CCDB_CHECK(roots.ok());  // a null governor never trips
  return *std::move(roots);
}

StatusOr<std::vector<IsolatedRoot>> IsolateRealRoots(
    const UPoly& p, const ResourceGovernor* gov) {
  std::vector<IsolatedRoot> roots;
  CCDB_CHECK_MSG(!p.is_zero(), "cannot isolate roots of the zero polynomial");
  UPoly f = p.SquarefreePart();
  if (f.degree() <= 0) return roots;
  if (f.degree() == 1) {
    // Exact rational root -c0/c1.
    roots.push_back(
        {Interval(-f.coefficient(0) / f.coefficient(1)), true});
    return roots;
  }

  std::vector<UPoly> chain = f.SturmChain();
  Rational bound = f.CauchyRootBound();
  Rational lo = -bound;
  Rational hi = bound;
  // Endpoints are strict bounds, so f(lo) != 0 != f(hi).
  CCDB_DCHECK(f.Evaluate(lo).sign() != 0 && f.Evaluate(hi).sign() != 0);

  struct Segment {
    Rational lo, hi;
    int count;
  };
  std::deque<Segment> work;
  int total = UPoly::SturmCountRoots(chain, lo, hi);
  if (total > 0) work.push_back({lo, hi, total});

  while (!work.empty()) {
    CCDB_CHECK_BUDGET(gov, "poly.isolate");
    Segment seg = work.front();
    work.pop_front();
    if (seg.count == 1) {
      // (lo, hi] contains exactly one root; normalize to our invariant.
      if (f.Evaluate(seg.hi).sign() == 0) {
        roots.push_back({Interval(seg.hi), true});
        continue;
      }
      Rational snapped(0);
      if (TrySnapRationalRoot(f, &seg.lo, &seg.hi, &snapped)) {
        roots.push_back({Interval(snapped), true});
      } else {
        roots.push_back({Interval(seg.lo, seg.hi), false});
      }
      continue;
    }
    Rational mid = Rational::Midpoint(seg.lo, seg.hi);
    if (f.Evaluate(mid).sign() == 0) {
      // Rational root at the midpoint: emit it exactly, then carve out a
      // window (mid-delta, mid+delta] that contains no other root and whose
      // boundary points are not roots, and recurse on the two sides.
      roots.push_back({Interval(mid), true});
      Rational delta = (seg.hi - seg.lo) * Rational(BigInt(1), BigInt(4));
      while (f.Evaluate(mid - delta).sign() == 0 ||
             f.Evaluate(mid + delta).sign() == 0 ||
             UPoly::SturmCountRoots(chain, mid - delta, mid + delta) > 1) {
        delta = delta * Rational(BigInt(1), BigInt(2));
      }
      int left_count = UPoly::SturmCountRoots(chain, seg.lo, mid - delta);
      int right_count = UPoly::SturmCountRoots(chain, mid + delta, seg.hi);
      if (left_count > 0) work.push_back({seg.lo, mid - delta, left_count});
      if (right_count > 0) work.push_back({mid + delta, seg.hi, right_count});
      continue;
    }
    int left = UPoly::SturmCountRoots(chain, seg.lo, mid);
    int right = seg.count - left;
    if (left > 0) work.push_back({seg.lo, mid, left});
    if (right > 0) work.push_back({mid, seg.hi, right});
  }

  std::sort(roots.begin(), roots.end(),
            [](const IsolatedRoot& a, const IsolatedRoot& b) {
              return a.interval.lo() < b.interval.lo();
            });
  return roots;
}

IsolatedRoot RefineRoot(const UPoly& p, IsolatedRoot root,
                        const Rational& width) {
  if (root.is_exact || root.interval.Width() <= width) return root;
  UPoly f = p.SquarefreePart();
  bool became_exact = false;
  Interval refined = BisectToWidth(f, root.interval.lo(), root.interval.hi(),
                                   width, &became_exact);
  return {std::move(refined), became_exact};
}

std::vector<Rational> ApproximateRealRoots(const UPoly& p,
                                           const Rational& epsilon) {
  CCDB_CHECK_MSG(epsilon.sign() > 0, "epsilon must be positive");
  std::vector<Rational> values;
  for (IsolatedRoot& root : IsolateRealRoots(p)) {
    IsolatedRoot refined = RefineRoot(p, std::move(root), epsilon);
    values.push_back(refined.is_exact ? refined.interval.lo()
                                      : refined.interval.Midpoint());
  }
  return values;
}

}  // namespace ccdb
