#ifndef CCDB_POLY_UPOLY_H_
#define CCDB_POLY_UPOLY_H_

#include <string>
#include <vector>

#include "arith/interval.h"
#include "arith/rational.h"
#include "base/status.h"
#include "poly/polynomial.h"

namespace ccdb {

/// Dense univariate polynomial over the rationals.
///
/// This is the workhorse of the base phase of CAD and of numerical
/// evaluation: Sturm sequences, real root isolation and refinement all
/// operate on UPoly. coefficients()[i] is the coefficient of x^i; the
/// leading coefficient is nonzero (zero polynomial has an empty vector).
class UPoly {
 public:
  /// Constructs the zero polynomial.
  UPoly() = default;
  /// Constructs from dense coefficients (low degree first); trailing zeros
  /// are trimmed.
  explicit UPoly(std::vector<Rational> coefficients);

  static UPoly Constant(Rational value);
  /// The monomial c * x^degree.
  static UPoly Monomial(Rational coefficient, std::uint32_t degree);
  /// The variable x.
  static UPoly X();

  /// Converts a Polynomial mentioning at most the single variable `var`.
  /// Returns kInvalidArgument if other variables occur.
  static StatusOr<UPoly> FromPolynomial(const Polynomial& p, int var);
  /// Embeds into the multivariate ring with variable index `var`.
  Polynomial ToPolynomial(int var) const;

  bool is_zero() const { return coeffs_.empty(); }
  bool is_constant() const { return coeffs_.size() <= 1; }
  /// Degree; -1 for the zero polynomial.
  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  const std::vector<Rational>& coefficients() const { return coeffs_; }
  const Rational& leading_coefficient() const;
  Rational coefficient(std::size_t i) const {
    return i < coeffs_.size() ? coeffs_[i] : Rational(0);
  }

  UPoly operator-() const;
  UPoly operator+(const UPoly& other) const;
  UPoly operator-(const UPoly& other) const;
  UPoly operator*(const UPoly& other) const;
  UPoly Scale(const Rational& factor) const;

  /// Euclidean division over the field Q: returns {quotient, remainder}
  /// with deg(remainder) < deg(divisor). Requires a nonzero divisor.
  std::pair<UPoly, UPoly> DivMod(const UPoly& divisor) const;
  /// Exact division; returns kInvalidArgument when the remainder is
  /// nonzero.
  StatusOr<UPoly> DivideExact(const UPoly& divisor) const;

  /// Monic gcd over Q; Gcd(0,0) == 0.
  static UPoly Gcd(const UPoly& a, const UPoly& b);

  UPoly Derivative() const;
  /// Makes the leading coefficient 1 (identity on zero).
  UPoly MakeMonic() const;
  /// Squarefree part: this / gcd(this, this').
  UPoly SquarefreePart() const;
  /// Yun's algorithm: returns factors f_1, f_2, ... with
  /// this == lc * prod f_i^i and each f_i squarefree, pairwise coprime,
  /// monic. Factors of multiplicity i sit at index i-1 (may be 1).
  std::vector<UPoly> SquarefreeDecomposition() const;

  Rational Evaluate(const Rational& x) const;
  Interval EvaluateInterval(const Interval& x) const;
  /// Composition this(inner(x)).
  UPoly Compose(const UPoly& inner) const;

  /// Number of sign variations of the coefficient sequence (for Descartes
  /// style bounds).
  int SignVariations() const;

  /// Cauchy root bound: every real root lies in (-B, B).
  Rational CauchyRootBound() const;

  /// Sturm chain of this (starting with this, this').
  std::vector<UPoly> SturmChain() const;
  /// Number of distinct real roots in the half-open interval (a, b], given
  /// a precomputed Sturm chain for this polynomial. Requires a <= b and
  /// a squarefree-compatible chain (chain of this).
  static int SturmCountRoots(const std::vector<UPoly>& chain,
                             const Rational& a, const Rational& b);
  /// Sign variation count of the chain evaluated at x.
  static int SturmVariationsAt(const std::vector<UPoly>& chain,
                               const Rational& x);

  bool operator==(const UPoly& other) const { return coeffs_ == other.coeffs_; }
  bool operator!=(const UPoly& other) const { return !(*this == other); }

  std::string ToString(const std::string& var_name = "x") const;

 private:
  void Trim();
  std::vector<Rational> coeffs_;
};

std::ostream& operator<<(std::ostream& os, const UPoly& p);

}  // namespace ccdb

#endif  // CCDB_POLY_UPOLY_H_
