#ifndef CCDB_POLY_ROOT_ISOLATION_H_
#define CCDB_POLY_ROOT_ISOLATION_H_

#include <vector>

#include "arith/interval.h"
#include "base/resource.h"
#include "base/status.h"
#include "poly/upoly.h"

namespace ccdb {

/// An isolating interval for one real root of a squarefree polynomial:
/// either a point (the root is rational and equals lo == hi) or an open
/// interval (lo, hi) containing exactly one root, with the polynomial
/// nonzero at both endpoints.
struct IsolatedRoot {
  Interval interval;
  bool is_exact = false;  // true when interval is the point root itself
};

/// Isolates all distinct real roots of `p` (any nonzero polynomial; the
/// squarefree part is taken internally), returned in increasing order.
/// This is the base phase of the CAD algorithm ("all the roots are
/// identified [CL82]", paper Appendix I) and the heart of the paper's
/// NUMERICAL EVALUATION step.
std::vector<IsolatedRoot> IsolateRealRoots(const UPoly& p);

/// Governed variant: charges `gov` per Sturm bisection segment and fails
/// with kResourceExhausted when the budget trips (stage "poly.isolate").
/// Null governor = identical to the ungoverned overload.
StatusOr<std::vector<IsolatedRoot>> IsolateRealRoots(
    const UPoly& p, const ResourceGovernor* gov);

/// Shrinks an isolating interval of squarefree `p` below `width` by
/// bisection, preserving the isolation invariant. No-op for exact roots.
IsolatedRoot RefineRoot(const UPoly& p, IsolatedRoot root,
                        const Rational& width);

/// Convenience: all real roots of `p` to absolute precision `epsilon`
/// (midpoints of refined isolating intervals; exact roots returned
/// exactly). Implements Theorem 3.2's ε-approximation for the univariate
/// case.
std::vector<Rational> ApproximateRealRoots(const UPoly& p,
                                           const Rational& epsilon);

}  // namespace ccdb

#endif  // CCDB_POLY_ROOT_ISOLATION_H_
