#include "poly/resultant.h"

#include <algorithm>
#include <utility>

#include "base/logging.h"
#include "base/memo.h"

namespace ccdb {

namespace {

// Leading term (in the global lex term order) of a nonzero polynomial.
std::pair<Monomial, Rational> LeadingTerm(const Polynomial& p) {
  CCDB_DCHECK(!p.is_zero());
  auto it = p.terms().rbegin();
  return {it->first, it->second};
}

// Passes budget trips through; any other error from an exact division in
// the PRS machinery is a broken invariant, not an input condition.
StatusOr<Polynomial> ExactOrDie(StatusOr<Polynomial> divided,
                                const char* what) {
  if (!divided.ok() &&
      divided.status().code() != StatusCode::kResourceExhausted) {
    CCDB_CHECK_MSG(false, what);
  }
  return divided;
}

}  // namespace

StatusOr<Polynomial> DivideExactMv(const Polynomial& a, const Polynomial& b,
                                   const ResourceGovernor* gov) {
  CCDB_CHECK_MSG(!b.is_zero(), "multivariate division by zero");
  if (a.is_zero()) return Polynomial();
  Polynomial remainder = a;
  Polynomial quotient;
  auto [lead_b_mono, lead_b_coeff] = LeadingTerm(b);
  while (!remainder.is_zero()) {
    CCDB_CHECK_BUDGET(gov, "poly.divide");
    auto [lead_r_mono, lead_r_coeff] = LeadingTerm(remainder);
    auto mono = lead_r_mono.Divide(lead_b_mono);
    if (!mono.ok()) {
      return Status::InvalidArgument("inexact multivariate division");
    }
    Polynomial term =
        Polynomial::Term(lead_r_coeff / lead_b_coeff, *mono);
    quotient += term;
    remainder -= term * b;
  }
  return quotient;
}

namespace {

// Governed pseudo-remainder core; the public PseudoRem wraps it with a null
// governor (which can never trip).
StatusOr<Polynomial> PseudoRemGoverned(const Polynomial& a,
                                       const Polynomial& b, int var,
                                       const ResourceGovernor* gov) {
  std::uint32_t deg_b = b.DegreeIn(var);
  CCDB_CHECK_MSG(!b.is_zero(), "pseudo-remainder by zero");
  Polynomial lc_b = b.LeadingCoefficientIn(var);
  Polynomial r = a;
  std::uint32_t deg_a = a.DegreeIn(var);
  if (a.is_zero() || deg_a < deg_b) {
    return r;  // prem(a, b) = lc^{0} * a
  }
  std::int64_t steps_budget =
      static_cast<std::int64_t>(deg_a) - static_cast<std::int64_t>(deg_b) + 1;
  std::int64_t steps = 0;
  while (!r.is_zero() && r.DegreeIn(var) >= deg_b) {
    CCDB_CHECK_BUDGET(gov, "poly.prs");
    std::uint32_t deg_r = r.DegreeIn(var);
    Polynomial lc_r = r.LeadingCoefficientIn(var);
    Polynomial shift =
        Polynomial::Term(Rational(1), Monomial::Var(var, deg_r - deg_b));
    r = lc_b * r - lc_r * shift * b;
    ++steps;
  }
  // Scale so the result equals lc_b^{deg_a - deg_b + 1} * a mod b exactly.
  for (; steps < steps_budget; ++steps) {
    CCDB_CHECK_BUDGET(gov, "poly.prs");
    r *= lc_b;
  }
  return r;
}

}  // namespace

Polynomial PseudoRem(const Polynomial& a, const Polynomial& b, int var) {
  auto r = PseudoRemGoverned(a, b, var, nullptr);
  CCDB_CHECK(r.ok());
  return *std::move(r);
}

namespace {

// Subresultant PRS core (Cohen, "A Course in Computational Algebraic Number
// Theory", algorithms 3.3.1/3.3.7). Returns the resultant of a and b with
// respect to `var`; both must be nonzero with deg_var(a) >= deg_var(b) >= 0.
// The PRS iterations are where the coefficient swell happens, so each one
// charges the governor (steps, plus the bytes of the new remainder).
StatusOr<Polynomial> ResultantOrdered(Polynomial a, Polynomial b, int var,
                                      const ResourceGovernor* gov) {
  std::uint32_t deg_a = a.DegreeIn(var);
  std::uint32_t deg_b = b.DegreeIn(var);
  CCDB_DCHECK(deg_a >= deg_b);
  if (deg_b == 0) {
    // res(a, const-in-var) = b^{deg_a}.
    return b.Pow(deg_a);
  }
  int sign = 1;
  Polynomial g(Rational(1));
  Polynomial h(Rational(1));
  while (true) {
    CCDB_CHECK_BUDGET(gov, "poly.prs");
    deg_a = a.DegreeIn(var);
    deg_b = b.DegreeIn(var);
    std::uint32_t delta = deg_a - deg_b;
    if ((deg_a % 2 == 1) && (deg_b % 2 == 1)) sign = -sign;
    CCDB_ASSIGN_OR_RETURN(Polynomial r, PseudoRemGoverned(a, b, var, gov));
    if (gov != nullptr) gov->ChargeBytes(r.EstimateBytes());
    a = b;
    // b = r / (g * h^delta), exact by the subresultant theorem.
    Polynomial divisor = g * h.Pow(delta);
    if (r.is_zero()) {
      // Common factor of positive degree: resultant is zero.
      return Polynomial();
    }
    CCDB_ASSIGN_OR_RETURN(
        b, ExactOrDie(DivideExactMv(r, divisor, gov),
                      "subresultant PRS division not exact"));
    g = a.LeadingCoefficientIn(var);
    // h = g^delta * h^{1-delta} (exact division when delta > 1).
    if (delta == 0) {
      // h unchanged.
    } else if (delta == 1) {
      h = g;
    } else {
      CCDB_ASSIGN_OR_RETURN(
          h, ExactOrDie(DivideExactMv(g.Pow(delta), h.Pow(delta - 1), gov),
                        "subresultant h-update division not exact"));
    }
    if (b.DegreeIn(var) == 0) break;
  }
  // Tail: res = sign * lc(b)^{deg_var(a)} / h^{deg_var(a) - 1}.
  std::uint32_t final_deg_a = a.DegreeIn(var);
  Polynomial numerator = b.Pow(final_deg_a);
  Polynomial result;
  if (final_deg_a == 0) {
    result = Polynomial(Rational(1));
  } else {
    CCDB_ASSIGN_OR_RETURN(
        result,
        ExactOrDie(DivideExactMv(numerator, h.Pow(final_deg_a - 1), gov),
                   "subresultant tail division not exact"));
  }
  return sign < 0 ? -result : result;
}

// Memo table for the expensive PRS-backed operations (resultant,
// discriminant, gcd). Keys hold the operand polynomials themselves —
// structural equality is pointer-fast for interned operands and exact
// otherwise — so a hash collision can never return a wrong result. The
// operations are pure, so entries never need invalidation; lookups are
// skipped under an armed governor (see base/memo.h) but successful
// results are inserted either way.
enum PolyOpKind { kOpResultant = 0, kOpDiscriminant = 1, kOpGcd = 2 };

struct PolyOpKey {
  Polynomial a;
  Polynomial b;
  int var = -1;
  int kind = kOpResultant;

  bool operator==(const PolyOpKey& other) const {
    return kind == other.kind && var == other.var && a == other.a &&
           b == other.b;
  }
};

struct PolyOpKeyHash {
  std::size_t operator()(const PolyOpKey& key) const {
    std::size_t h = 1469598103934665603ull;
    h = h * 1099511628211ull + key.a.Hash();
    h = h * 1099511628211ull + key.b.Hash();
    h = h * 1099511628211ull + static_cast<std::size_t>(key.var);
    h = h * 1099511628211ull + static_cast<std::size_t>(key.kind);
    return h;
  }
};

ShardedMemoCache<PolyOpKey, Polynomial, PolyOpKeyHash>& PolyOpCache() {
  static auto* cache = new ShardedMemoCache<PolyOpKey, Polynomial, PolyOpKeyHash>(
      "resultant_cache", 8192);
  return *cache;
}

StatusOr<Polynomial> ResultantUncached(const Polynomial& a,
                                       const Polynomial& b, int var,
                                       const ResourceGovernor* gov) {
  if (a.is_zero() || b.is_zero()) return Polynomial();
  std::uint32_t deg_a = a.DegreeIn(var);
  std::uint32_t deg_b = b.DegreeIn(var);
  if (deg_a == 0 && deg_b == 0) return Polynomial(Rational(1));
  if (deg_a >= deg_b) return ResultantOrdered(a, b, var, gov);
  CCDB_ASSIGN_OR_RETURN(Polynomial swapped, ResultantOrdered(b, a, var, gov));
  // res(a,b) = (-1)^{deg_a * deg_b} res(b,a).
  if ((static_cast<std::uint64_t>(deg_a) * deg_b) % 2 == 1) {
    return -swapped;
  }
  return swapped;
}

}  // namespace

StatusOr<Polynomial> Resultant(const Polynomial& a, const Polynomial& b,
                               int var, const ResourceGovernor* gov) {
  if (!MemoCachesEnabled()) return ResultantUncached(a, b, var, gov);
  PolyOpKey key{a, b, var, kOpResultant};
  Polynomial cached;
  if (gov == nullptr && PolyOpCache().Lookup(key, &cached)) return cached;
  CCDB_ASSIGN_OR_RETURN(Polynomial result,
                        ResultantUncached(a, b, var, gov));
  PolyOpCache().Insert(std::move(key), result);
  return result;
}

Polynomial Resultant(const Polynomial& a, const Polynomial& b, int var) {
  auto result = Resultant(a, b, var, nullptr);
  CCDB_CHECK(result.ok());
  return *std::move(result);
}

namespace {

StatusOr<Polynomial> DiscriminantUncached(const Polynomial& p, int var,
                                          const ResourceGovernor* gov) {
  std::uint32_t d = p.DegreeIn(var);
  CCDB_CHECK_MSG(d >= 1, "discriminant requires positive degree");
  CCDB_ASSIGN_OR_RETURN(Polynomial res,
                        Resultant(p, p.Derivative(var), var, gov));
  Polynomial lc = p.LeadingCoefficientIn(var);
  CCDB_ASSIGN_OR_RETURN(Polynomial result,
                        ExactOrDie(DivideExactMv(res, lc, gov),
                                   "discriminant division not exact"));
  // Sign (-1)^{d(d-1)/2}.
  if ((static_cast<std::uint64_t>(d) * (d - 1) / 2) % 2 == 1) {
    return -result;
  }
  return result;
}

}  // namespace

StatusOr<Polynomial> Discriminant(const Polynomial& p, int var,
                                  const ResourceGovernor* gov) {
  if (!MemoCachesEnabled()) return DiscriminantUncached(p, var, gov);
  PolyOpKey key{p, Polynomial(), var, kOpDiscriminant};
  Polynomial cached;
  if (gov == nullptr && PolyOpCache().Lookup(key, &cached)) return cached;
  CCDB_ASSIGN_OR_RETURN(Polynomial result,
                        DiscriminantUncached(p, var, gov));
  PolyOpCache().Insert(std::move(key), result);
  return result;
}

Polynomial Discriminant(const Polynomial& p, int var) {
  auto result = Discriminant(p, var, nullptr);
  CCDB_CHECK(result.ok());
  return *std::move(result);
}

namespace {

StatusOr<Polynomial> ContentInGoverned(const Polynomial& p, int var,
                                       const ResourceGovernor* gov) {
  if (p.is_zero()) return Polynomial();
  Polynomial content;
  for (const Polynomial& coeff : p.CoefficientsIn(var)) {
    CCDB_CHECK_BUDGET(gov, "poly.gcd");
    if (coeff.is_zero()) continue;
    CCDB_ASSIGN_OR_RETURN(content, MvGcd(content, coeff, gov));
    // Stop only at a unit: for univariate inputs the content is a
    // CONSTANT rational gcd that must keep accumulating (it is what keeps
    // the pseudo-remainder sequences primitive).
    if (content.is_constant() && content.constant_value() == Rational(1)) {
      break;
    }
  }
  return content;
}

StatusOr<Polynomial> PrimitivePartInGoverned(const Polynomial& p, int var,
                                             const ResourceGovernor* gov) {
  if (p.is_zero()) return Polynomial();
  CCDB_ASSIGN_OR_RETURN(Polynomial content, ContentInGoverned(p, var, gov));
  return ExactOrDie(DivideExactMv(p, content, gov),
                    "content division not exact");
}

}  // namespace

Polynomial ContentIn(const Polynomial& p, int var) {
  auto content = ContentInGoverned(p, var, nullptr);
  CCDB_CHECK(content.ok());
  return *std::move(content);
}

Polynomial PrimitivePartIn(const Polynomial& p, int var) {
  auto pp = PrimitivePartInGoverned(p, var, nullptr);
  CCDB_CHECK(pp.ok());
  return *std::move(pp);
}

namespace {

// gcd(0, p): |p| for constants (content semantics), the primitive
// normalization otherwise (gcd is defined up to units of Q[x]).
Polynomial GcdWithZero(const Polynomial& p) {
  if (p.is_constant()) return Polynomial(p.constant_value().Abs());
  return p.IntegerNormalized();
}

// The gcd algorithm proper; the public MvGcd wraps it with the memo table.
// Internal recursion goes through the public entry so shared subproblems
// (contents, primitive parts) memoize too.
StatusOr<Polynomial> MvGcdUncached(const Polynomial& a, const Polynomial& b,
                                   const ResourceGovernor* gov) {
  CCDB_CHECK_BUDGET(gov, "poly.gcd");
  if (a.is_zero()) return b.is_zero() ? Polynomial() : GcdWithZero(b);
  if (b.is_zero()) return GcdWithZero(a);
  if (a.is_constant() && b.is_constant()) {
    // Rational gcd — the base case that makes ContentIn effective (it is
    // what keeps the pseudo-remainder sequences primitive; returning 1
    // here would make content removal a no-op and the PRS coefficients
    // blow up exponentially with the degree).
    const Rational& x = a.constant_value();
    const Rational& y = b.constant_value();
    BigInt num = BigInt::Gcd(x.numerator() * y.denominator(),
                             y.numerator() * x.denominator());
    return Polynomial(Rational(num, x.denominator() * y.denominator()));
  }
  if (a.is_constant() || b.is_constant()) {
    const Polynomial& constant = a.is_constant() ? a : b;
    const Polynomial& poly = a.is_constant() ? b : a;
    // gcd(c, p) = gcd(c, content of p in every variable) — reduce through
    // the full content.
    Polynomial content = poly;
    while (!content.is_constant()) {
      CCDB_CHECK_BUDGET(gov, "poly.gcd");
      CCDB_ASSIGN_OR_RETURN(
          content, ContentInGoverned(content, content.max_var(), gov));
    }
    return MvGcd(constant, content, gov);
  }
  int var = std::max(a.max_var(), b.max_var());
  bool a_has = a.Mentions(var);
  bool b_has = b.Mentions(var);
  if (!a_has && !b_has) {
    // Should not happen given max_var, but stay safe.
    return Polynomial(Rational(1));
  }
  if (!a_has) {
    // gcd(a, b) divides a (free of var) hence divides content_var(b).
    CCDB_ASSIGN_OR_RETURN(Polynomial content, ContentInGoverned(b, var, gov));
    return MvGcd(a, content, gov);
  }
  if (!b_has) {
    CCDB_ASSIGN_OR_RETURN(Polynomial content, ContentInGoverned(a, var, gov));
    return MvGcd(b, content, gov);
  }
  CCDB_ASSIGN_OR_RETURN(Polynomial content_a, ContentInGoverned(a, var, gov));
  CCDB_ASSIGN_OR_RETURN(Polynomial content_b, ContentInGoverned(b, var, gov));
  CCDB_ASSIGN_OR_RETURN(Polynomial pp_a, PrimitivePartInGoverned(a, var, gov));
  CCDB_ASSIGN_OR_RETURN(Polynomial pp_b, PrimitivePartInGoverned(b, var, gov));
  // Primitive PRS on the primitive parts.
  if (pp_a.DegreeIn(var) < pp_b.DegreeIn(var)) std::swap(pp_a, pp_b);
  while (!pp_b.is_zero()) {
    CCDB_CHECK_BUDGET(gov, "poly.gcd");
    CCDB_ASSIGN_OR_RETURN(Polynomial r,
                          PseudoRemGoverned(pp_a, pp_b, var, gov));
    if (gov != nullptr) gov->ChargeBytes(r.EstimateBytes());
    pp_a = std::move(pp_b);
    if (r.is_zero()) {
      pp_b = Polynomial();
    } else {
      CCDB_ASSIGN_OR_RETURN(pp_b, PrimitivePartInGoverned(r, var, gov));
    }
  }
  Polynomial gcd_pp =
      pp_a.DegreeIn(var) == 0 ? Polynomial(Rational(1)) : pp_a;
  CCDB_ASSIGN_OR_RETURN(Polynomial content_gcd,
                        MvGcd(content_a, content_b, gov));
  Polynomial result = content_gcd * gcd_pp;
  return result.IntegerNormalized();
}

}  // namespace

StatusOr<Polynomial> MvGcd(const Polynomial& a, const Polynomial& b,
                           const ResourceGovernor* gov) {
  if (!MemoCachesEnabled()) return MvGcdUncached(a, b, gov);
  // gcd is symmetric: order the operands so (a,b) and (b,a) share an entry.
  PolyOpKey key = b < a ? PolyOpKey{b, a, -1, kOpGcd}
                        : PolyOpKey{a, b, -1, kOpGcd};
  Polynomial cached;
  if (gov == nullptr && PolyOpCache().Lookup(key, &cached)) return cached;
  CCDB_ASSIGN_OR_RETURN(Polynomial result, MvGcdUncached(a, b, gov));
  PolyOpCache().Insert(std::move(key), result);
  return result;
}

Polynomial MvGcd(const Polynomial& a, const Polynomial& b) {
  auto result = MvGcd(a, b, nullptr);
  CCDB_CHECK(result.ok());
  return *std::move(result);
}

namespace {

StatusOr<Polynomial> SquarefreePartInGoverned(const Polynomial& p, int var,
                                              const ResourceGovernor* gov) {
  if (p.is_zero()) return Polynomial();
  if (p.DegreeIn(var) == 0) return p.IntegerNormalized();
  CCDB_ASSIGN_OR_RETURN(Polynomial g, MvGcd(p, p.Derivative(var), gov));
  if (g.is_constant()) return p.IntegerNormalized();
  auto divided = DivideExactMv(p, g, gov);
  if (!divided.ok()) {
    if (divided.status().code() == StatusCode::kResourceExhausted) {
      return divided.status();
    }
    // MvGcd is normalized up to a rational unit; retry against the exact
    // (non-normalized) gcd scale by dividing the product form.
    // gcd divides p over Q, so scaling g to match p's content fixes it.
    CCDB_ASSIGN_OR_RETURN(
        Polynomial retry,
        ExactOrDie(DivideExactMv(p.IntegerNormalized(), g, gov),
                   "squarefree division not exact"));
    return retry.IntegerNormalized();
  }
  return divided->IntegerNormalized();
}

}  // namespace

Polynomial SquarefreePartIn(const Polynomial& p, int var) {
  auto result = SquarefreePartInGoverned(p, var, nullptr);
  CCDB_CHECK(result.ok());
  return *std::move(result);
}

StatusOr<std::vector<Polynomial>> SquarefreeBasis(
    const std::vector<Polynomial>& polys, const ResourceGovernor* gov) {
  std::vector<Polynomial> basis;
  auto push_unique = [&basis](const Polynomial& p) {
    if (p.is_constant()) return;
    Polynomial normalized = p.IntegerNormalized();
    for (const Polynomial& existing : basis) {
      if (existing == normalized) return;
    }
    basis.push_back(std::move(normalized));
  };
  for (const Polynomial& p : polys) {
    CCDB_CHECK_BUDGET(gov, "poly.gcd");
    if (p.is_constant()) continue;
    CCDB_ASSIGN_OR_RETURN(Polynomial part,
                          SquarefreePartInGoverned(p, p.max_var(), gov));
    push_unique(part);
  }
  // Refine until pairwise coprime.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < basis.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < basis.size() && !changed; ++j) {
        CCDB_CHECK_BUDGET(gov, "poly.gcd");
        CCDB_ASSIGN_OR_RETURN(Polynomial g, MvGcd(basis[i], basis[j], gov));
        if (g.is_constant()) continue;
        CCDB_ASSIGN_OR_RETURN(
            Polynomial pi, ExactOrDie(DivideExactMv(basis[i], g, gov),
                                      "basis refinement division failed"));
        CCDB_ASSIGN_OR_RETURN(
            Polynomial pj, ExactOrDie(DivideExactMv(basis[j], g, gov),
                                      "basis refinement division failed"));
        std::vector<Polynomial> next;
        for (std::size_t t = 0; t < basis.size(); ++t) {
          if (t != i && t != j) next.push_back(basis[t]);
        }
        basis = std::move(next);
        push_unique(pi);
        push_unique(pj);
        push_unique(g);
        changed = true;
      }
    }
  }
  std::sort(basis.begin(), basis.end());
  return basis;
}

std::vector<Polynomial> SquarefreeBasis(const std::vector<Polynomial>& polys) {
  auto basis = SquarefreeBasis(polys, nullptr);
  CCDB_CHECK(basis.ok());
  return *std::move(basis);
}

}  // namespace ccdb
