#include "poly/upoly.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "base/logging.h"

namespace ccdb {

UPoly::UPoly(std::vector<Rational> coefficients)
    : coeffs_(std::move(coefficients)) {
  Trim();
}

void UPoly::Trim() {
  while (!coeffs_.empty() && coeffs_.back().is_zero()) coeffs_.pop_back();
}

UPoly UPoly::Constant(Rational value) {
  UPoly p;
  if (!value.is_zero()) p.coeffs_.push_back(std::move(value));
  return p;
}

UPoly UPoly::Monomial(Rational coefficient, std::uint32_t degree) {
  UPoly p;
  if (!coefficient.is_zero()) {
    p.coeffs_.assign(degree + 1, Rational(0));
    p.coeffs_[degree] = std::move(coefficient);
  }
  return p;
}

UPoly UPoly::X() { return Monomial(Rational(1), 1); }

StatusOr<UPoly> UPoly::FromPolynomial(const Polynomial& p, int var) {
  std::vector<Rational> coeffs(p.DegreeIn(var) + 1, Rational(0));
  for (const auto& [monomial, coeff] : p.terms()) {
    std::uint32_t e = monomial.exponent(var);
    if (monomial.total_degree() != e) {
      return Status::InvalidArgument(
          "polynomial mentions variables other than the requested one");
    }
    coeffs[e] += coeff;
  }
  return UPoly(std::move(coeffs));
}

Polynomial UPoly::ToPolynomial(int var) const {
  Polynomial result;
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    result += Polynomial::Term(coeffs_[i],
                               Monomial::Var(var, static_cast<std::uint32_t>(i)));
  }
  return result;
}

const Rational& UPoly::leading_coefficient() const {
  CCDB_CHECK_MSG(!coeffs_.empty(), "leading coefficient of zero polynomial");
  return coeffs_.back();
}

UPoly UPoly::operator-() const {
  UPoly result = *this;
  for (auto& c : result.coeffs_) c = -c;
  return result;
}

UPoly UPoly::operator+(const UPoly& other) const {
  std::vector<Rational> coeffs(std::max(coeffs_.size(), other.coeffs_.size()),
                               Rational(0));
  for (std::size_t i = 0; i < coeffs_.size(); ++i) coeffs[i] += coeffs_[i];
  for (std::size_t i = 0; i < other.coeffs_.size(); ++i) {
    coeffs[i] += other.coeffs_[i];
  }
  return UPoly(std::move(coeffs));
}

UPoly UPoly::operator-(const UPoly& other) const { return *this + (-other); }

UPoly UPoly::operator*(const UPoly& other) const {
  if (is_zero() || other.is_zero()) return UPoly();
  std::vector<Rational> coeffs(coeffs_.size() + other.coeffs_.size() - 1,
                               Rational(0));
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i].is_zero()) continue;
    for (std::size_t j = 0; j < other.coeffs_.size(); ++j) {
      coeffs[i + j] += coeffs_[i] * other.coeffs_[j];
    }
  }
  return UPoly(std::move(coeffs));
}

UPoly UPoly::Scale(const Rational& factor) const {
  if (factor.is_zero()) return UPoly();
  UPoly result = *this;
  for (auto& c : result.coeffs_) c *= factor;
  return result;
}

std::pair<UPoly, UPoly> UPoly::DivMod(const UPoly& divisor) const {
  CCDB_CHECK_MSG(!divisor.is_zero(), "polynomial division by zero");
  UPoly remainder = *this;
  if (degree() < divisor.degree()) return {UPoly(), remainder};
  std::vector<Rational> quotient(degree() - divisor.degree() + 1, Rational(0));
  Rational lead_inv = divisor.leading_coefficient().Inverse();
  while (!remainder.is_zero() && remainder.degree() >= divisor.degree()) {
    int shift = remainder.degree() - divisor.degree();
    Rational factor = remainder.leading_coefficient() * lead_inv;
    quotient[shift] = factor;
    // remainder -= factor * x^shift * divisor
    for (std::size_t i = 0; i < divisor.coeffs_.size(); ++i) {
      remainder.coeffs_[i + shift] -= factor * divisor.coeffs_[i];
    }
    remainder.Trim();
  }
  return {UPoly(std::move(quotient)), std::move(remainder)};
}

StatusOr<UPoly> UPoly::DivideExact(const UPoly& divisor) const {
  auto [quotient, remainder] = DivMod(divisor);
  if (!remainder.is_zero()) {
    return Status::InvalidArgument("inexact polynomial division");
  }
  return quotient;
}

namespace {

// Scales a polynomial by a positive rational so its coefficients become
// coprime integers (leading sign preserved). Positive scalings leave every
// sign evaluation unchanged, so this is sound inside Euclidean remainder
// sequences and Sturm chains — and it is what keeps their coefficient bit
// lengths from swelling exponentially.
UPoly NormalizePositive(const UPoly& p) {
  if (p.is_zero()) return p;
  BigInt den_lcm(1);
  for (const Rational& c : p.coefficients()) {
    const BigInt& d = c.denominator();
    den_lcm = den_lcm / BigInt::Gcd(den_lcm, d) * d;
  }
  BigInt num_gcd(0);
  for (const Rational& c : p.coefficients()) {
    num_gcd = BigInt::Gcd(num_gcd, c.numerator() * (den_lcm / c.denominator()));
  }
  return p.Scale(Rational(den_lcm, num_gcd));
}

}  // namespace

UPoly UPoly::Gcd(const UPoly& a, const UPoly& b) {
  UPoly x = NormalizePositive(a);
  UPoly y = NormalizePositive(b);
  while (!y.is_zero()) {
    UPoly r = NormalizePositive(x.DivMod(y).second);
    x = std::move(y);
    y = std::move(r);
  }
  return x.MakeMonic();
}

UPoly UPoly::Derivative() const {
  if (coeffs_.size() <= 1) return UPoly();
  std::vector<Rational> coeffs(coeffs_.size() - 1, Rational(0));
  for (std::size_t i = 1; i < coeffs_.size(); ++i) {
    coeffs[i - 1] = coeffs_[i] * Rational(static_cast<std::int64_t>(i));
  }
  return UPoly(std::move(coeffs));
}

UPoly UPoly::MakeMonic() const {
  if (is_zero()) return UPoly();
  return Scale(leading_coefficient().Inverse());
}

UPoly UPoly::SquarefreePart() const {
  if (degree() <= 1) return MakeMonic();
  UPoly g = Gcd(*this, Derivative());
  if (g.degree() == 0) return MakeMonic();
  auto result = DivideExact(g);
  CCDB_CHECK(result.ok());
  return result->MakeMonic();
}

std::vector<UPoly> UPoly::SquarefreeDecomposition() const {
  // Yun's algorithm over a field of characteristic 0.
  std::vector<UPoly> factors;
  if (degree() <= 0) return factors;
  UPoly f = MakeMonic();
  UPoly fp = f.Derivative();
  UPoly a = Gcd(f, fp);
  UPoly b = *f.DivideExact(a);
  UPoly c = *fp.DivideExact(a);
  UPoly d = c - b.Derivative();
  while (b.degree() > 0) {
    UPoly factor = Gcd(b, d);
    factors.push_back(factor);
    b = *b.DivideExact(factor);
    c = *d.DivideExact(factor);
    d = c - b.Derivative();
  }
  return factors;
}

Rational UPoly::Evaluate(const Rational& x) const {
  Rational result(0);
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    result = result * x + coeffs_[i];
  }
  return result;
}

Interval UPoly::EvaluateInterval(const Interval& x) const {
  Interval result{Rational(0)};
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    result = result * x + Interval(coeffs_[i]);
  }
  return result;
}

UPoly UPoly::Compose(const UPoly& inner) const {
  UPoly result;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    result = result * inner + Constant(coeffs_[i]);
  }
  return result;
}

int UPoly::SignVariations() const {
  int variations = 0;
  int last = 0;
  for (const Rational& c : coeffs_) {
    int s = c.sign();
    if (s == 0) continue;
    if (last != 0 && s != last) ++variations;
    last = s;
  }
  return variations;
}

Rational UPoly::CauchyRootBound() const {
  CCDB_CHECK_MSG(!is_zero(), "root bound of zero polynomial");
  Rational lead = leading_coefficient().Abs();
  Rational max_ratio(0);
  for (std::size_t i = 0; i + 1 < coeffs_.size(); ++i) {
    Rational ratio = coeffs_[i].Abs() / lead;
    if (ratio > max_ratio) max_ratio = ratio;
  }
  return max_ratio + Rational(1);
}

std::vector<UPoly> UPoly::SturmChain() const {
  std::vector<UPoly> chain;
  if (is_zero()) return chain;
  chain.push_back(NormalizePositive(*this));
  UPoly d = NormalizePositive(Derivative());
  if (d.is_zero()) return chain;
  chain.push_back(std::move(d));
  while (true) {
    const UPoly& a = chain[chain.size() - 2];
    const UPoly& b = chain[chain.size() - 1];
    UPoly r = a.DivMod(b).second;
    if (r.is_zero()) break;
    chain.push_back(NormalizePositive(-r));
  }
  return chain;
}

int UPoly::SturmVariationsAt(const std::vector<UPoly>& chain,
                             const Rational& x) {
  int variations = 0;
  int last = 0;
  for (const UPoly& p : chain) {
    int s = p.Evaluate(x).sign();
    if (s == 0) continue;
    if (last != 0 && s != last) ++variations;
    last = s;
  }
  return variations;
}

int UPoly::SturmCountRoots(const std::vector<UPoly>& chain, const Rational& a,
                           const Rational& b) {
  CCDB_CHECK(a <= b);
  if (chain.empty()) return 0;
  return SturmVariationsAt(chain, a) - SturmVariationsAt(chain, b);
}

std::string UPoly::ToString(const std::string& var_name) const {
  if (is_zero()) return "0";
  std::ostringstream out;
  bool first = true;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    const Rational& c = coeffs_[i];
    if (c.is_zero()) continue;
    Rational magnitude = c.Abs();
    if (first) {
      if (c.sign() < 0) out << "-";
      first = false;
    } else {
      out << (c.sign() < 0 ? " - " : " + ");
    }
    if (i == 0) {
      out << magnitude.ToString();
    } else {
      if (magnitude != Rational(1)) out << magnitude.ToString() << "*";
      out << var_name;
      if (i > 1) out << "^" << i;
    }
  }
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const UPoly& p) {
  return os << p.ToString();
}

}  // namespace ccdb
