#ifndef CCDB_POLY_POLYNOMIAL_H_
#define CCDB_POLY_POLYNOMIAL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arith/interval.h"
#include "arith/rational.h"
#include "base/status.h"

namespace ccdb {

/// A power product x_0^{e_0} ... x_{n-1}^{e_{n-1}}. Variables are dense
/// indices; names live at the query-language layer.
///
/// Invariant: the exponent vector carries no trailing zeros, so equal
/// monomials have equal representations regardless of ambient dimension.
class Monomial {
 public:
  /// Constructs the empty product (the constant monomial 1).
  Monomial() = default;
  /// Constructs from raw exponents (trailing zeros are trimmed).
  explicit Monomial(std::vector<std::uint32_t> exponents);

  /// The monomial x_var^exponent.
  static Monomial Var(int var, std::uint32_t exponent = 1);

  bool is_one() const { return exponents_.empty(); }
  /// Exponent of x_var (0 when the monomial does not mention it).
  std::uint32_t exponent(int var) const;
  /// Largest variable index with a positive exponent, or -1 for the
  /// constant monomial.
  int max_var() const { return static_cast<int>(exponents_.size()) - 1; }
  std::uint32_t total_degree() const;

  Monomial operator*(const Monomial& other) const;
  /// Exact division; returns kInvalidArgument if some exponent would go
  /// negative.
  StatusOr<Monomial> Divide(const Monomial& other) const;
  bool Divides(const Monomial& into) const;

  /// Pointwise power.
  Monomial Pow(std::uint32_t exponent) const;

  /// Lexicographic order with higher variables more significant: this is a
  /// term order compatible with treating the highest variable as the CAD
  /// "main" variable.
  bool operator<(const Monomial& other) const;
  bool operator==(const Monomial& other) const {
    return exponents_ == other.exponents_;
  }
  bool operator!=(const Monomial& other) const { return !(*this == other); }

  std::string ToString(const std::vector<std::string>& names = {}) const;

 private:
  void Trim();
  std::vector<std::uint32_t> exponents_;
};

/// Occupancy of the process-wide polynomial intern pool (for REPL `.stats`
/// and bench node-count columns).
struct PolyInternStats {
  std::size_t entries = 0;
};

/// Sparse multivariate polynomial over the rationals.
///
/// This is the atom type of the constraint model: a generalized tuple is a
/// conjunction of atoms "p(x) θ 0" with p a Polynomial (paper, Section 3).
/// The representation is a sorted term map, so iteration order (and thus
/// printing, hashing, and the QE algorithm's behaviour) is deterministic —
/// which the paper's finite-precision semantics requires ("imposing some
/// systematic choice", Section 4).
///
/// Polynomials are IMMUTABLE shared values: a Polynomial is a handle to a
/// refcounted term-map representation with an eagerly computed structural
/// hash, so copies are O(1) and equality is pointer comparison in the
/// common case (hash-guarded structural comparison otherwise). Canonical
/// construction points (atom canonicalization, CAD factor sets) intern the
/// representation into a process-wide pool via Interned(), after which
/// structurally equal polynomials share one representation.
class Polynomial {
 public:
  /// Constructs the zero polynomial.
  Polynomial();
  /// Implicit from a constant: arithmetic like p + 1 is pervasive.
  Polynomial(Rational constant);      // NOLINT
  Polynomial(std::int64_t constant);  // NOLINT

  /// The polynomial x_var.
  static Polynomial Var(int var);
  /// The polynomial c * m.
  static Polynomial Term(Rational coefficient, Monomial monomial);

  bool is_zero() const { return terms().empty(); }
  bool is_constant() const {
    return terms().empty() ||
           (terms().size() == 1 && terms().begin()->first.is_one());
  }
  /// Constant term value (the whole value when is_constant()).
  Rational constant_value() const;

  /// Number of terms.
  std::size_t term_count() const { return terms().size(); }
  /// Read-only access to the term map (sorted by monomial).
  const std::map<Monomial, Rational>& terms() const { return rep_->terms; }

  /// Largest variable index mentioned, or -1 for constants.
  int max_var() const;
  std::uint32_t TotalDegree() const;
  std::uint32_t DegreeIn(int var) const;
  /// True iff x_var appears.
  bool Mentions(int var) const { return DegreeIn(var) > 0; }

  Polynomial operator-() const;
  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator-(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial& operator+=(const Polynomial& o) { return *this = *this + o; }
  Polynomial& operator-=(const Polynomial& o) { return *this = *this - o; }
  Polynomial& operator*=(const Polynomial& o) { return *this = *this * o; }

  Polynomial Scale(const Rational& factor) const;
  Polynomial Pow(std::uint32_t exponent) const;

  /// Partial derivative with respect to x_var.
  Polynomial Derivative(int var) const;

  /// Full evaluation; point must cover every mentioned variable.
  Rational Evaluate(const std::vector<Rational>& point) const;
  /// Substitutes x_var := value, returning a polynomial in the remaining
  /// variables.
  Polynomial Substitute(int var, const Rational& value) const;
  /// Substitutes x_var := replacement (polynomial composition).
  Polynomial SubstitutePoly(int var, const Polynomial& replacement) const;
  /// Renames variables: x_i becomes x_{mapping[i]}. mapping must cover
  /// max_var()+1 entries.
  Polynomial RenameVars(const std::vector<int>& mapping) const;

  /// Interval enclosure of the value over a box (monomial-wise; correct but
  /// not tight). `box` must cover every mentioned variable.
  Interval EvaluateInterval(const std::vector<Interval>& box) const;

  /// Dense coefficient list of this viewed as a univariate polynomial in
  /// x_var: result[i] is the coefficient (a polynomial not mentioning
  /// x_var) of x_var^i; size DegreeIn(var)+1 (a single zero for the zero
  /// polynomial).
  std::vector<Polynomial> CoefficientsIn(int var) const;
  /// Inverse of CoefficientsIn: sum coefficients[i] * x_var^i.
  static Polynomial FromCoefficientsIn(int var,
                                       const std::vector<Polynomial>& coeffs);
  /// Leading coefficient in x_var (constant polynomial if var is absent).
  Polynomial LeadingCoefficientIn(int var) const;

  /// Multiplies by the lcm of coefficient denominators and divides by the
  /// gcd of numerators, yielding the primitive integer-coefficient multiple
  /// with positive leading coefficient (in the term order). The result
  /// defines the same variety; *this == result * factor (factor is
  /// negative when the leading sign flipped).
  Polynomial IntegerNormalized(Rational* factor = nullptr) const;

  /// The canonical pooled instance of this polynomial: structurally equal
  /// polynomials returned by Interned() share one representation, so
  /// equality between them is a single pointer comparison. Thread-safe;
  /// pool entries live for the process lifetime.
  Polynomial Interned() const;

  /// Largest coefficient bit length (numerator or denominator): the size
  /// measure of the paper's complexity bounds.
  std::uint64_t MaxCoefficientBitLength() const;

  /// Rough heap footprint of this polynomial (term-map nodes, exponent
  /// vectors, coefficient limbs). Used as the tracked-allocation unit for
  /// ResourceGovernor byte budgets; an estimate, not an exact accounting.
  std::size_t EstimateBytes() const;

  bool operator==(const Polynomial& other) const {
    if (rep_ == other.rep_) return true;
    if (rep_->hash != other.rep_->hash) return false;
    return rep_->terms == other.rep_->terms;
  }
  bool operator!=(const Polynomial& other) const { return !(*this == other); }
  /// Deterministic total order (for canonical sets of polynomials).
  bool operator<(const Polynomial& other) const;

  /// Structural hash, computed once at construction: O(1) to read.
  std::size_t Hash() const { return rep_->hash; }

  /// Human-readable rendering, e.g. "4*x^2 - y - 20*x + 25". Default names
  /// are x0, x1, ...; pass names to use query-level variable names.
  std::string ToString(const std::vector<std::string>& names = {}) const;

  /// Occupancy of the process-wide intern pool.
  static PolyInternStats InternStats();

 private:
  /// Immutable shared representation: the sorted term map plus its
  /// structural hash, computed once. `interned` marks representations that
  /// are the pooled canonical instance of their equivalence class.
  struct Rep {
    std::map<Monomial, Rational> terms;
    std::size_t hash = 0;
    mutable std::atomic<bool> interned{false};
  };
  struct Pool;

  explicit Polynomial(std::shared_ptr<const Rep> rep);
  /// The single construction funnel: hashes the term map and wraps it.
  static Polynomial FromTerms(std::map<Monomial, Rational> terms);

  std::shared_ptr<const Rep> rep_;  // never null; terms carry no zeros
};

std::ostream& operator<<(std::ostream& os, const Polynomial& p);

PolyInternStats GetPolyInternStats();

}  // namespace ccdb

#endif  // CCDB_POLY_POLYNOMIAL_H_
