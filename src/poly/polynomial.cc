#include "poly/polynomial.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "base/logging.h"
#include "base/metrics.h"

namespace ccdb {

Monomial::Monomial(std::vector<std::uint32_t> exponents)
    : exponents_(std::move(exponents)) {
  Trim();
}

void Monomial::Trim() {
  while (!exponents_.empty() && exponents_.back() == 0) exponents_.pop_back();
}

Monomial Monomial::Var(int var, std::uint32_t exponent) {
  CCDB_CHECK(var >= 0);
  if (exponent == 0) return Monomial();
  std::vector<std::uint32_t> exps(var + 1, 0);
  exps[var] = exponent;
  return Monomial(std::move(exps));
}

std::uint32_t Monomial::exponent(int var) const {
  if (var < 0 || var >= static_cast<int>(exponents_.size())) return 0;
  return exponents_[var];
}

std::uint32_t Monomial::total_degree() const {
  std::uint32_t sum = 0;
  for (std::uint32_t e : exponents_) sum += e;
  return sum;
}

Monomial Monomial::operator*(const Monomial& other) const {
  std::vector<std::uint32_t> exps(
      std::max(exponents_.size(), other.exponents_.size()), 0);
  for (std::size_t i = 0; i < exponents_.size(); ++i) exps[i] += exponents_[i];
  for (std::size_t i = 0; i < other.exponents_.size(); ++i) {
    exps[i] += other.exponents_[i];
  }
  return Monomial(std::move(exps));
}

StatusOr<Monomial> Monomial::Divide(const Monomial& other) const {
  if (!other.Divides(*this)) {
    return Status::InvalidArgument("monomial does not divide");
  }
  std::vector<std::uint32_t> exps = exponents_;
  for (std::size_t i = 0; i < other.exponents_.size(); ++i) {
    exps[i] -= other.exponents_[i];
  }
  return Monomial(std::move(exps));
}

bool Monomial::Divides(const Monomial& into) const {
  if (exponents_.size() > into.exponents_.size()) return false;
  for (std::size_t i = 0; i < exponents_.size(); ++i) {
    if (exponents_[i] > into.exponents_[i]) return false;
  }
  return true;
}

Monomial Monomial::Pow(std::uint32_t exponent) const {
  std::vector<std::uint32_t> exps = exponents_;
  for (auto& e : exps) e *= exponent;
  return Monomial(std::move(exps));
}

bool Monomial::operator<(const Monomial& other) const {
  // Lex with higher variable indices more significant.
  std::size_t n = std::max(exponents_.size(), other.exponents_.size());
  for (std::size_t i = n; i-- > 0;) {
    std::uint32_t a = i < exponents_.size() ? exponents_[i] : 0;
    std::uint32_t b = i < other.exponents_.size() ? other.exponents_[i] : 0;
    if (a != b) return a < b;
  }
  return false;
}

std::string Monomial::ToString(const std::vector<std::string>& names) const {
  if (is_one()) return "1";
  std::string out;
  for (std::size_t i = 0; i < exponents_.size(); ++i) {
    if (exponents_[i] == 0) continue;
    if (!out.empty()) out += "*";
    if (i < names.size()) {
      out += names[i];
    } else {
      out += "x" + std::to_string(i);
    }
    if (exponents_[i] > 1) out += "^" + std::to_string(exponents_[i]);
  }
  return out;
}

namespace {

using TermMap = std::map<Monomial, Rational>;

std::size_t HashTerms(const TermMap& terms) {
  std::size_t h = 1469598103934665603ull;
  for (const auto& [monomial, coeff] : terms) {
    for (int v = 0; v <= monomial.max_var(); ++v) {
      h = h * 1099511628211ull + monomial.exponent(v);
    }
    h = h * 1099511628211ull + coeff.Hash();
  }
  return h;
}

// Adds c*m into a term map under construction, dropping cancelled terms.
void AddTermTo(TermMap* terms, const Monomial& monomial,
               const Rational& coefficient) {
  if (coefficient.is_zero()) return;
  auto [it, inserted] = terms->emplace(monomial, coefficient);
  if (!inserted) {
    it->second += coefficient;
    if (it->second.is_zero()) terms->erase(it);
  }
}

}  // namespace

/// Process-wide polynomial intern pool: hash → representations. Entries
/// are never evicted (they are the identity of the canonical instances);
/// the pool holds strong references so pooled reps live for the process
/// lifetime. Sharded to keep concurrent canonicalization cheap.
struct Polynomial::Pool {
  static constexpr std::size_t kShards = 16;

  struct Shard {
    std::mutex mu;
    std::unordered_map<std::size_t, std::vector<std::shared_ptr<const Rep>>>
        buckets;
  };
  Shard shards[kShards];
  std::atomic<std::size_t> entries{0};

  static Pool& Global() {
    static Pool* pool = new Pool();  // leaked: process lifetime
    return *pool;
  }

  std::shared_ptr<const Rep> Intern(const std::shared_ptr<const Rep>& rep) {
    Shard& shard = shards[rep->hash % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto& bucket = shard.buckets[rep->hash];
    for (const auto& existing : bucket) {
      if (existing->terms == rep->terms) {
        CCDB_METRIC_COUNT("poly_intern_hits", 1);
        return existing;
      }
    }
    rep->interned.store(true, std::memory_order_relaxed);
    bucket.push_back(rep);
    entries.fetch_add(1, std::memory_order_relaxed);
    return rep;
  }
};

Polynomial::Polynomial(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

Polynomial::Polynomial() {
  static const std::shared_ptr<const Rep>* zero = [] {
    auto rep = std::make_shared<Rep>();
    rep->hash = HashTerms(rep->terms);
    return new std::shared_ptr<const Rep>(
        Pool::Global().Intern(std::move(rep)));
  }();
  rep_ = *zero;
}

Polynomial Polynomial::FromTerms(TermMap terms) {
  auto rep = std::make_shared<Rep>();
  rep->hash = HashTerms(terms);
  rep->terms = std::move(terms);
  return Polynomial(std::move(rep));
}

Polynomial Polynomial::Interned() const {
  if (rep_->interned.load(std::memory_order_relaxed)) return *this;
  return Polynomial(Pool::Global().Intern(rep_));
}

PolyInternStats Polynomial::InternStats() {
  PolyInternStats stats;
  stats.entries = Pool::Global().entries.load(std::memory_order_relaxed);
  return stats;
}

PolyInternStats GetPolyInternStats() { return Polynomial::InternStats(); }

Polynomial::Polynomial(Rational constant) {
  TermMap terms;
  if (!constant.is_zero()) terms.emplace(Monomial(), std::move(constant));
  *this = FromTerms(std::move(terms));
}

Polynomial::Polynomial(std::int64_t constant) : Polynomial(Rational(constant)) {}

Polynomial Polynomial::Var(int var) {
  return Term(Rational(1), Monomial::Var(var));
}

Polynomial Polynomial::Term(Rational coefficient, Monomial monomial) {
  TermMap terms;
  if (!coefficient.is_zero()) {
    terms.emplace(std::move(monomial), std::move(coefficient));
  }
  return FromTerms(std::move(terms));
}

Rational Polynomial::constant_value() const {
  auto it = terms().find(Monomial());
  return it == terms().end() ? Rational(0) : it->second;
}

int Polynomial::max_var() const {
  int result = -1;
  for (const auto& [monomial, coeff] : terms()) {
    result = std::max(result, monomial.max_var());
  }
  return result;
}

std::uint32_t Polynomial::TotalDegree() const {
  std::uint32_t degree = 0;
  for (const auto& [monomial, coeff] : terms()) {
    degree = std::max(degree, monomial.total_degree());
  }
  return degree;
}

std::uint32_t Polynomial::DegreeIn(int var) const {
  std::uint32_t degree = 0;
  for (const auto& [monomial, coeff] : terms()) {
    degree = std::max(degree, monomial.exponent(var));
  }
  return degree;
}

Polynomial Polynomial::operator-() const {
  TermMap result = terms();
  for (auto& [monomial, coeff] : result) coeff = -coeff;
  return FromTerms(std::move(result));
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  TermMap result = terms();
  for (const auto& [monomial, coeff] : other.terms()) {
    AddTermTo(&result, monomial, coeff);
  }
  return FromTerms(std::move(result));
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  TermMap result = terms();
  for (const auto& [monomial, coeff] : other.terms()) {
    AddTermTo(&result, monomial, -coeff);
  }
  return FromTerms(std::move(result));
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  TermMap result;
  for (const auto& [m1, c1] : terms()) {
    for (const auto& [m2, c2] : other.terms()) {
      AddTermTo(&result, m1 * m2, c1 * c2);
    }
  }
  return FromTerms(std::move(result));
}

Polynomial Polynomial::Scale(const Rational& factor) const {
  if (factor.is_zero()) return Polynomial();
  TermMap result = terms();
  for (auto& [monomial, coeff] : result) coeff *= factor;
  return FromTerms(std::move(result));
}

Polynomial Polynomial::Pow(std::uint32_t exponent) const {
  Polynomial result(Rational(1));
  Polynomial base = *this;
  while (exponent != 0) {
    if (exponent & 1u) result *= base;
    base *= base;
    exponent >>= 1;
  }
  return result;
}

Polynomial Polynomial::Derivative(int var) const {
  TermMap result;
  for (const auto& [monomial, coeff] : terms()) {
    std::uint32_t e = monomial.exponent(var);
    if (e == 0) continue;
    auto reduced = monomial.Divide(Monomial::Var(var));
    CCDB_CHECK(reduced.ok());
    AddTermTo(&result, *reduced,
              coeff * Rational(static_cast<std::int64_t>(e)));
  }
  return FromTerms(std::move(result));
}

Rational Polynomial::Evaluate(const std::vector<Rational>& point) const {
  Rational total(0);
  for (const auto& [monomial, coeff] : terms()) {
    Rational term = coeff;
    for (int v = 0; v <= monomial.max_var(); ++v) {
      std::uint32_t e = monomial.exponent(v);
      if (e == 0) continue;
      CCDB_CHECK_MSG(v < static_cast<int>(point.size()),
                     "evaluation point does not cover variable " << v);
      term *= point[v].Pow(static_cast<std::int32_t>(e));
    }
    total += term;
  }
  return total;
}

Polynomial Polynomial::Substitute(int var, const Rational& value) const {
  TermMap result;
  for (const auto& [monomial, coeff] : terms()) {
    std::uint32_t e = monomial.exponent(var);
    if (e == 0) {
      AddTermTo(&result, monomial, coeff);
      continue;
    }
    auto reduced = monomial.Divide(Monomial::Var(var, e));
    CCDB_CHECK(reduced.ok());
    AddTermTo(&result, *reduced,
              coeff * value.Pow(static_cast<std::int32_t>(e)));
  }
  return FromTerms(std::move(result));
}

Polynomial Polynomial::SubstitutePoly(int var,
                                      const Polynomial& replacement) const {
  Polynomial result;
  for (const auto& [monomial, coeff] : terms()) {
    std::uint32_t e = monomial.exponent(var);
    auto reduced = monomial.Divide(Monomial::Var(var, e));
    CCDB_CHECK(reduced.ok());
    Polynomial term = Polynomial::Term(coeff, *reduced);
    if (e > 0) term *= replacement.Pow(e);
    result += term;
  }
  return result;
}

Polynomial Polynomial::RenameVars(const std::vector<int>& mapping) const {
  TermMap result;
  for (const auto& [monomial, coeff] : terms()) {
    Monomial renamed;
    for (int v = 0; v <= monomial.max_var(); ++v) {
      std::uint32_t e = monomial.exponent(v);
      if (e == 0) continue;
      CCDB_CHECK_MSG(v < static_cast<int>(mapping.size()),
                     "rename mapping does not cover variable " << v);
      renamed = renamed * Monomial::Var(mapping[v], e);
    }
    AddTermTo(&result, renamed, coeff);
  }
  return FromTerms(std::move(result));
}

Interval Polynomial::EvaluateInterval(const std::vector<Interval>& box) const {
  Interval total(Rational(0));
  for (const auto& [monomial, coeff] : terms()) {
    Interval term(coeff);
    for (int v = 0; v <= monomial.max_var(); ++v) {
      std::uint32_t e = monomial.exponent(v);
      if (e == 0) continue;
      CCDB_CHECK_MSG(v < static_cast<int>(box.size()),
                     "interval box does not cover variable " << v);
      term = term * box[v].Pow(e);
    }
    total = total + term;
  }
  return total;
}

std::vector<Polynomial> Polynomial::CoefficientsIn(int var) const {
  std::vector<TermMap> maps(DegreeIn(var) + 1);
  for (const auto& [monomial, coeff] : terms()) {
    std::uint32_t e = monomial.exponent(var);
    auto reduced = monomial.Divide(Monomial::Var(var, e));
    CCDB_CHECK(reduced.ok());
    AddTermTo(&maps[e], *reduced, coeff);
  }
  std::vector<Polynomial> coeffs;
  coeffs.reserve(maps.size());
  for (TermMap& map : maps) coeffs.push_back(FromTerms(std::move(map)));
  return coeffs;
}

Polynomial Polynomial::FromCoefficientsIn(
    int var, const std::vector<Polynomial>& coeffs) {
  Polynomial result;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    result += coeffs[i] * Polynomial::Term(
                              Rational(1),
                              Monomial::Var(var, static_cast<std::uint32_t>(i)));
  }
  return result;
}

Polynomial Polynomial::LeadingCoefficientIn(int var) const {
  if (is_zero()) return Polynomial();
  return CoefficientsIn(var).back();
}

Polynomial Polynomial::IntegerNormalized(Rational* factor) const {
  if (is_zero()) {
    if (factor != nullptr) *factor = Rational(1);
    return Polynomial();
  }
  // lcm of denominators.
  BigInt den_lcm(1);
  for (const auto& [monomial, coeff] : terms()) {
    const BigInt& den = coeff.denominator();
    den_lcm = den_lcm / BigInt::Gcd(den_lcm, den) * den;
  }
  // gcd of scaled numerators.
  BigInt num_gcd(0);
  for (const auto& [monomial, coeff] : terms()) {
    BigInt scaled = coeff.numerator() * (den_lcm / coeff.denominator());
    num_gcd = BigInt::Gcd(num_gcd, scaled);
  }
  Rational scale(den_lcm, num_gcd);  // multiply by this
  // Positive leading coefficient in the term order.
  const Rational& leading = terms().rbegin()->second;
  if ((leading * scale).sign() < 0) scale = -scale;
  if (factor != nullptr) *factor = scale.Inverse();
  return Scale(scale);
}

std::uint64_t Polynomial::MaxCoefficientBitLength() const {
  std::uint64_t bits = 0;
  for (const auto& [monomial, coeff] : terms()) {
    bits = std::max(bits, coeff.bit_length());
  }
  return bits;
}

std::size_t Polynomial::EstimateBytes() const {
  std::size_t bytes = sizeof(Polynomial) + sizeof(Rep);
  for (const auto& [monomial, coeff] : terms()) {
    // Map node + monomial exponent vector + coefficient limbs.
    bytes += 64;
    bytes += static_cast<std::size_t>(monomial.max_var() + 1) *
             sizeof(std::uint32_t);
    bytes += static_cast<std::size_t>(coeff.bit_length() / 8) + 8;
  }
  return bytes;
}

bool Polynomial::operator<(const Polynomial& other) const {
  if (rep_ == other.rep_) return false;
  auto it = terms().begin();
  auto jt = other.terms().begin();
  for (; it != terms().end() && jt != other.terms().end(); ++it, ++jt) {
    if (it->first != jt->first) return it->first < jt->first;
    int cmp = it->second.Compare(jt->second);
    if (cmp != 0) return cmp < 0;
  }
  return it == terms().end() && jt != other.terms().end();
}

std::string Polynomial::ToString(const std::vector<std::string>& names) const {
  if (is_zero()) return "0";
  std::ostringstream out;
  bool first = true;
  // Print highest monomial first for conventional reading order.
  for (auto it = terms().rbegin(); it != terms().rend(); ++it) {
    const auto& [monomial, coeff] = *it;
    Rational magnitude = coeff.Abs();
    if (first) {
      if (coeff.sign() < 0) out << "-";
      first = false;
    } else {
      out << (coeff.sign() < 0 ? " - " : " + ");
    }
    if (monomial.is_one()) {
      out << magnitude.ToString();
    } else if (magnitude == Rational(1)) {
      out << monomial.ToString(names);
    } else {
      out << magnitude.ToString() << "*" << monomial.ToString(names);
    }
  }
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Polynomial& p) {
  return os << p.ToString();
}

}  // namespace ccdb
