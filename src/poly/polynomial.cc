#include "poly/polynomial.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "base/logging.h"

namespace ccdb {

Monomial::Monomial(std::vector<std::uint32_t> exponents)
    : exponents_(std::move(exponents)) {
  Trim();
}

void Monomial::Trim() {
  while (!exponents_.empty() && exponents_.back() == 0) exponents_.pop_back();
}

Monomial Monomial::Var(int var, std::uint32_t exponent) {
  CCDB_CHECK(var >= 0);
  if (exponent == 0) return Monomial();
  std::vector<std::uint32_t> exps(var + 1, 0);
  exps[var] = exponent;
  return Monomial(std::move(exps));
}

std::uint32_t Monomial::exponent(int var) const {
  if (var < 0 || var >= static_cast<int>(exponents_.size())) return 0;
  return exponents_[var];
}

std::uint32_t Monomial::total_degree() const {
  std::uint32_t sum = 0;
  for (std::uint32_t e : exponents_) sum += e;
  return sum;
}

Monomial Monomial::operator*(const Monomial& other) const {
  std::vector<std::uint32_t> exps(
      std::max(exponents_.size(), other.exponents_.size()), 0);
  for (std::size_t i = 0; i < exponents_.size(); ++i) exps[i] += exponents_[i];
  for (std::size_t i = 0; i < other.exponents_.size(); ++i) {
    exps[i] += other.exponents_[i];
  }
  return Monomial(std::move(exps));
}

StatusOr<Monomial> Monomial::Divide(const Monomial& other) const {
  if (!other.Divides(*this)) {
    return Status::InvalidArgument("monomial does not divide");
  }
  std::vector<std::uint32_t> exps = exponents_;
  for (std::size_t i = 0; i < other.exponents_.size(); ++i) {
    exps[i] -= other.exponents_[i];
  }
  return Monomial(std::move(exps));
}

bool Monomial::Divides(const Monomial& into) const {
  if (exponents_.size() > into.exponents_.size()) return false;
  for (std::size_t i = 0; i < exponents_.size(); ++i) {
    if (exponents_[i] > into.exponents_[i]) return false;
  }
  return true;
}

Monomial Monomial::Pow(std::uint32_t exponent) const {
  std::vector<std::uint32_t> exps = exponents_;
  for (auto& e : exps) e *= exponent;
  return Monomial(std::move(exps));
}

bool Monomial::operator<(const Monomial& other) const {
  // Lex with higher variable indices more significant.
  std::size_t n = std::max(exponents_.size(), other.exponents_.size());
  for (std::size_t i = n; i-- > 0;) {
    std::uint32_t a = i < exponents_.size() ? exponents_[i] : 0;
    std::uint32_t b = i < other.exponents_.size() ? other.exponents_[i] : 0;
    if (a != b) return a < b;
  }
  return false;
}

std::string Monomial::ToString(const std::vector<std::string>& names) const {
  if (is_one()) return "1";
  std::string out;
  for (std::size_t i = 0; i < exponents_.size(); ++i) {
    if (exponents_[i] == 0) continue;
    if (!out.empty()) out += "*";
    if (i < names.size()) {
      out += names[i];
    } else {
      out += "x" + std::to_string(i);
    }
    if (exponents_[i] > 1) out += "^" + std::to_string(exponents_[i]);
  }
  return out;
}

Polynomial::Polynomial(Rational constant) {
  if (!constant.is_zero()) terms_.emplace(Monomial(), std::move(constant));
}

Polynomial::Polynomial(std::int64_t constant) : Polynomial(Rational(constant)) {}

Polynomial Polynomial::Var(int var) {
  return Term(Rational(1), Monomial::Var(var));
}

Polynomial Polynomial::Term(Rational coefficient, Monomial monomial) {
  Polynomial p;
  if (!coefficient.is_zero()) {
    p.terms_.emplace(std::move(monomial), std::move(coefficient));
  }
  return p;
}

Rational Polynomial::constant_value() const {
  auto it = terms_.find(Monomial());
  return it == terms_.end() ? Rational(0) : it->second;
}

int Polynomial::max_var() const {
  int result = -1;
  for (const auto& [monomial, coeff] : terms_) {
    result = std::max(result, monomial.max_var());
  }
  return result;
}

std::uint32_t Polynomial::TotalDegree() const {
  std::uint32_t degree = 0;
  for (const auto& [monomial, coeff] : terms_) {
    degree = std::max(degree, monomial.total_degree());
  }
  return degree;
}

std::uint32_t Polynomial::DegreeIn(int var) const {
  std::uint32_t degree = 0;
  for (const auto& [monomial, coeff] : terms_) {
    degree = std::max(degree, monomial.exponent(var));
  }
  return degree;
}

void Polynomial::AddTerm(const Monomial& monomial,
                         const Rational& coefficient) {
  if (coefficient.is_zero()) return;
  auto [it, inserted] = terms_.emplace(monomial, coefficient);
  if (!inserted) {
    it->second += coefficient;
    if (it->second.is_zero()) terms_.erase(it);
  }
}

Polynomial Polynomial::operator-() const {
  Polynomial result = *this;
  for (auto& [monomial, coeff] : result.terms_) coeff = -coeff;
  return result;
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  Polynomial result = *this;
  for (const auto& [monomial, coeff] : other.terms_) {
    result.AddTerm(monomial, coeff);
  }
  return result;
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  Polynomial result = *this;
  for (const auto& [monomial, coeff] : other.terms_) {
    result.AddTerm(monomial, -coeff);
  }
  return result;
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  Polynomial result;
  for (const auto& [m1, c1] : terms_) {
    for (const auto& [m2, c2] : other.terms_) {
      result.AddTerm(m1 * m2, c1 * c2);
    }
  }
  return result;
}

Polynomial Polynomial::Scale(const Rational& factor) const {
  if (factor.is_zero()) return Polynomial();
  Polynomial result = *this;
  for (auto& [monomial, coeff] : result.terms_) coeff *= factor;
  return result;
}

Polynomial Polynomial::Pow(std::uint32_t exponent) const {
  Polynomial result(Rational(1));
  Polynomial base = *this;
  while (exponent != 0) {
    if (exponent & 1u) result *= base;
    base *= base;
    exponent >>= 1;
  }
  return result;
}

Polynomial Polynomial::Derivative(int var) const {
  Polynomial result;
  for (const auto& [monomial, coeff] : terms_) {
    std::uint32_t e = monomial.exponent(var);
    if (e == 0) continue;
    auto reduced = monomial.Divide(Monomial::Var(var));
    CCDB_CHECK(reduced.ok());
    result.AddTerm(*reduced, coeff * Rational(static_cast<std::int64_t>(e)));
  }
  return result;
}

Rational Polynomial::Evaluate(const std::vector<Rational>& point) const {
  Rational total(0);
  for (const auto& [monomial, coeff] : terms_) {
    Rational term = coeff;
    for (int v = 0; v <= monomial.max_var(); ++v) {
      std::uint32_t e = monomial.exponent(v);
      if (e == 0) continue;
      CCDB_CHECK_MSG(v < static_cast<int>(point.size()),
                     "evaluation point does not cover variable " << v);
      term *= point[v].Pow(static_cast<std::int32_t>(e));
    }
    total += term;
  }
  return total;
}

Polynomial Polynomial::Substitute(int var, const Rational& value) const {
  Polynomial result;
  for (const auto& [monomial, coeff] : terms_) {
    std::uint32_t e = monomial.exponent(var);
    if (e == 0) {
      result.AddTerm(monomial, coeff);
      continue;
    }
    auto reduced = monomial.Divide(Monomial::Var(var, e));
    CCDB_CHECK(reduced.ok());
    result.AddTerm(*reduced, coeff * value.Pow(static_cast<std::int32_t>(e)));
  }
  return result;
}

Polynomial Polynomial::SubstitutePoly(int var,
                                      const Polynomial& replacement) const {
  Polynomial result;
  for (const auto& [monomial, coeff] : terms_) {
    std::uint32_t e = monomial.exponent(var);
    auto reduced = monomial.Divide(Monomial::Var(var, e));
    CCDB_CHECK(reduced.ok());
    Polynomial term = Polynomial::Term(coeff, *reduced);
    if (e > 0) term *= replacement.Pow(e);
    result += term;
  }
  return result;
}

Polynomial Polynomial::RenameVars(const std::vector<int>& mapping) const {
  Polynomial result;
  for (const auto& [monomial, coeff] : terms_) {
    Monomial renamed;
    for (int v = 0; v <= monomial.max_var(); ++v) {
      std::uint32_t e = monomial.exponent(v);
      if (e == 0) continue;
      CCDB_CHECK_MSG(v < static_cast<int>(mapping.size()),
                     "rename mapping does not cover variable " << v);
      renamed = renamed * Monomial::Var(mapping[v], e);
    }
    result.AddTerm(renamed, coeff);
  }
  return result;
}

Interval Polynomial::EvaluateInterval(const std::vector<Interval>& box) const {
  Interval total(Rational(0));
  for (const auto& [monomial, coeff] : terms_) {
    Interval term(coeff);
    for (int v = 0; v <= monomial.max_var(); ++v) {
      std::uint32_t e = monomial.exponent(v);
      if (e == 0) continue;
      CCDB_CHECK_MSG(v < static_cast<int>(box.size()),
                     "interval box does not cover variable " << v);
      term = term * box[v].Pow(e);
    }
    total = total + term;
  }
  return total;
}

std::vector<Polynomial> Polynomial::CoefficientsIn(int var) const {
  std::vector<Polynomial> coeffs(DegreeIn(var) + 1);
  for (const auto& [monomial, coeff] : terms_) {
    std::uint32_t e = monomial.exponent(var);
    auto reduced = monomial.Divide(Monomial::Var(var, e));
    CCDB_CHECK(reduced.ok());
    coeffs[e].AddTerm(*reduced, coeff);
  }
  return coeffs;
}

Polynomial Polynomial::FromCoefficientsIn(
    int var, const std::vector<Polynomial>& coeffs) {
  Polynomial result;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    result += coeffs[i] * Polynomial::Term(
                              Rational(1),
                              Monomial::Var(var, static_cast<std::uint32_t>(i)));
  }
  return result;
}

Polynomial Polynomial::LeadingCoefficientIn(int var) const {
  if (is_zero()) return Polynomial();
  return CoefficientsIn(var).back();
}

Polynomial Polynomial::IntegerNormalized(Rational* factor) const {
  if (is_zero()) {
    if (factor != nullptr) *factor = Rational(1);
    return Polynomial();
  }
  // lcm of denominators.
  BigInt den_lcm(1);
  for (const auto& [monomial, coeff] : terms_) {
    const BigInt& den = coeff.denominator();
    den_lcm = den_lcm / BigInt::Gcd(den_lcm, den) * den;
  }
  // gcd of scaled numerators.
  BigInt num_gcd(0);
  for (const auto& [monomial, coeff] : terms_) {
    BigInt scaled = coeff.numerator() * (den_lcm / coeff.denominator());
    num_gcd = BigInt::Gcd(num_gcd, scaled);
  }
  Rational scale(den_lcm, num_gcd);  // multiply by this
  // Positive leading coefficient in the term order.
  const Rational& leading = terms_.rbegin()->second;
  if ((leading * scale).sign() < 0) scale = -scale;
  if (factor != nullptr) *factor = scale.Inverse();
  return Scale(scale);
}

std::uint64_t Polynomial::MaxCoefficientBitLength() const {
  std::uint64_t bits = 0;
  for (const auto& [monomial, coeff] : terms_) {
    bits = std::max(bits, coeff.bit_length());
  }
  return bits;
}

std::size_t Polynomial::EstimateBytes() const {
  std::size_t bytes = sizeof(Polynomial);
  for (const auto& [monomial, coeff] : terms_) {
    // Map node + monomial exponent vector + coefficient limbs.
    bytes += 64;
    bytes += static_cast<std::size_t>(monomial.max_var() + 1) *
             sizeof(std::uint32_t);
    bytes += static_cast<std::size_t>(coeff.bit_length() / 8) + 8;
  }
  return bytes;
}

bool Polynomial::operator<(const Polynomial& other) const {
  auto it = terms_.begin();
  auto jt = other.terms_.begin();
  for (; it != terms_.end() && jt != other.terms_.end(); ++it, ++jt) {
    if (it->first != jt->first) return it->first < jt->first;
    int cmp = it->second.Compare(jt->second);
    if (cmp != 0) return cmp < 0;
  }
  return it == terms_.end() && jt != other.terms_.end();
}

std::size_t Polynomial::Hash() const {
  std::size_t h = 1469598103934665603ull;
  for (const auto& [monomial, coeff] : terms_) {
    for (int v = 0; v <= monomial.max_var(); ++v) {
      h = h * 1099511628211ull + monomial.exponent(v);
    }
    h = h * 1099511628211ull + coeff.Hash();
  }
  return h;
}

std::string Polynomial::ToString(const std::vector<std::string>& names) const {
  if (is_zero()) return "0";
  std::ostringstream out;
  bool first = true;
  // Print highest monomial first for conventional reading order.
  for (auto it = terms_.rbegin(); it != terms_.rend(); ++it) {
    const auto& [monomial, coeff] = *it;
    Rational magnitude = coeff.Abs();
    if (first) {
      if (coeff.sign() < 0) out << "-";
      first = false;
    } else {
      out << (coeff.sign() < 0 ? " - " : " + ");
    }
    if (monomial.is_one()) {
      out << magnitude.ToString();
    } else if (magnitude == Rational(1)) {
      out << monomial.ToString(names);
    } else {
      out << magnitude.ToString() << "*" << monomial.ToString(names);
    }
  }
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Polynomial& p) {
  return os << p.ToString();
}

}  // namespace ccdb
