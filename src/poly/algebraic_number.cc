#include "poly/algebraic_number.h"

#include "base/logging.h"

namespace ccdb {

AlgebraicNumber::AlgebraicNumber(Rational value)
    : poly_(UPoly({-value, Rational(1)})), root_{Interval(value), true} {}

AlgebraicNumber::AlgebraicNumber(const UPoly& defining, IsolatedRoot root)
    : poly_(defining.SquarefreePart()), root_(std::move(root)) {
  CCDB_CHECK_MSG(poly_.degree() >= 1, "defining polynomial must be nonconstant");
  if (root_.is_exact) {
    CCDB_CHECK_MSG(poly_.Evaluate(root_.interval.lo()).sign() == 0,
                   "exact root does not satisfy defining polynomial");
  } else {
    CCDB_CHECK_MSG(
        poly_.Evaluate(root_.interval.lo()).sign() *
                poly_.Evaluate(root_.interval.hi()).sign() <
            0,
        "isolating interval endpoints must straddle a sign change");
  }
}

std::vector<AlgebraicNumber> AlgebraicNumber::RootsOf(const UPoly& p) {
  auto numbers = RootsOf(p, nullptr);
  CCDB_CHECK(numbers.ok());  // a null governor never trips
  return *std::move(numbers);
}

StatusOr<std::vector<AlgebraicNumber>> AlgebraicNumber::RootsOf(
    const UPoly& p, const ResourceGovernor* gov) {
  std::vector<AlgebraicNumber> numbers;
  UPoly f = p.SquarefreePart();
  CCDB_ASSIGN_OR_RETURN(std::vector<IsolatedRoot> isolated,
                        IsolateRealRoots(f, gov));
  for (IsolatedRoot& root : isolated) {
    if (root.is_exact) {
      numbers.emplace_back(root.interval.lo());
    } else {
      numbers.emplace_back(f, std::move(root));
    }
  }
  return numbers;
}

const Rational& AlgebraicNumber::rational_value() const {
  CCDB_CHECK(root_.is_exact);
  return root_.interval.lo();
}

void AlgebraicNumber::RefineTo(const Rational& width) const {
  root_ = RefineRoot(poly_, std::move(root_), width);
}

int AlgebraicNumber::Sign() const {
  if (root_.is_exact) return root_.interval.lo().sign();
  return SignOfPolyAt(UPoly::X());
}

int AlgebraicNumber::SignOfPolyAt(const UPoly& q) const {
  if (q.is_zero()) return 0;
  if (root_.is_exact) return q.Evaluate(root_.interval.lo()).sign();
  // q(alpha) == 0 iff alpha is a common root of q and the defining
  // polynomial, iff gcd(q, poly_) has a root in the isolating interval.
  UPoly g = UPoly::Gcd(q, poly_);
  if (g.degree() >= 1) {
    std::vector<UPoly> chain = g.SturmChain();
    const Interval& iv = root_.interval;
    // The interval is open with poly_ (hence g) nonzero at endpoints; the
    // half-open Sturm count equals the open count.
    if (UPoly::SturmCountRoots(chain, iv.lo(), iv.hi()) > 0) return 0;
  }
  // Nonzero: refine until the interval enclosure of q has a certain sign.
  while (true) {
    Interval value = q.EvaluateInterval(root_.interval);
    int sign = value.CertainSign();
    if (sign != Interval::kAmbiguousSign) return sign;
    Rational half_width =
        root_.interval.Width() * Rational(BigInt(1), BigInt(2));
    root_ = RefineRoot(poly_, std::move(root_), half_width);
    if (root_.is_exact) return q.Evaluate(root_.interval.lo()).sign();
  }
}

int AlgebraicNumber::Compare(const AlgebraicNumber& other) const {
  if (root_.is_exact && other.root_.is_exact) {
    return root_.interval.lo().Compare(other.root_.interval.lo());
  }
  if (other.root_.is_exact) return CompareRational(other.root_.interval.lo());
  if (root_.is_exact) return -other.CompareRational(root_.interval.lo());
  // Equality test via the shared factor.
  UPoly g = UPoly::Gcd(poly_, other.poly_);
  if (g.degree() >= 1 && root_.interval.Intersects(other.root_.interval)) {
    Rational lo = std::max(root_.interval.lo(), other.root_.interval.lo());
    Rational hi = std::min(root_.interval.hi(), other.root_.interval.hi());
    if (lo <= hi) {
      std::vector<UPoly> chain = g.SturmChain();
      // Count roots of g in [lo, hi]; endpoints of either isolating
      // interval are not roots of the respective polynomial, but may be
      // roots of g only if they are the other number — handle by closing
      // the interval with the half-open count from a nudged left end.
      int count = UPoly::SturmCountRoots(chain, lo, hi);
      if (g.Evaluate(lo).sign() == 0) ++count;
      if (count > 0) {
        // A common root gamma lies in both isolating intervals; gamma is a
        // root of poly_ in this interval, hence equals *this; likewise for
        // other. So the numbers are equal.
        return 0;
      }
    }
  }
  // Distinct: refine until the intervals separate.
  while (root_.interval.Intersects(other.root_.interval)) {
    Rational w1 = root_.interval.Width() * Rational(BigInt(1), BigInt(2));
    Rational w2 =
        other.root_.interval.Width() * Rational(BigInt(1), BigInt(2));
    root_ = RefineRoot(poly_, std::move(root_), w1);
    other.root_ = RefineRoot(other.poly_, std::move(other.root_), w2);
    if (root_.is_exact && other.root_.is_exact) {
      return root_.interval.lo().Compare(other.root_.interval.lo());
    }
    if (root_.is_exact) return -other.CompareRational(root_.interval.lo());
    if (other.root_.is_exact) {
      return CompareRational(other.root_.interval.lo());
    }
  }
  return root_.interval.hi() <= other.root_.interval.lo() ? -1 : 1;
}

int AlgebraicNumber::CompareRational(const Rational& value) const {
  if (root_.is_exact) return root_.interval.lo().Compare(value);
  // alpha == value iff poly_(value) == 0 and value is in the interval.
  if (root_.interval.Contains(value) &&
      poly_.Evaluate(value).sign() == 0) {
    return 0;
  }
  while (root_.interval.Contains(value)) {
    Rational w = root_.interval.Width() * Rational(BigInt(1), BigInt(2));
    root_ = RefineRoot(poly_, std::move(root_), w);
    if (root_.is_exact) return root_.interval.lo().Compare(value);
  }
  return root_.interval.hi() <= value ? -1 : 1;
}

Rational AlgebraicNumber::Approximate(const Rational& epsilon) const {
  CCDB_CHECK(epsilon.sign() > 0);
  if (root_.is_exact) return root_.interval.lo();
  root_ = RefineRoot(poly_, std::move(root_), epsilon);
  if (root_.is_exact) return root_.interval.lo();
  return root_.interval.Midpoint();
}

double AlgebraicNumber::ToDouble() const {
  return Approximate(Rational(BigInt(1), BigInt::Pow2(60))).ToDouble();
}

std::string AlgebraicNumber::ToString() const {
  if (root_.is_exact) return root_.interval.lo().ToString();
  return "root of " + poly_.ToString() + " in " + root_.interval.ToString();
}

}  // namespace ccdb
