#include "poly/number_field.h"

#include <algorithm>

#include "base/logging.h"

namespace ccdb {

NumberField::NumberField(AlgebraicNumber alpha)
    : modulus_(alpha.defining_polynomial().MakeMonic()),
      alpha_(std::move(alpha)) {}

UPoly NumberField::Reduce(const UPoly& q) const {
  if (q.degree() < modulus_.degree()) return q;
  return q.DivMod(modulus_).second;
}

int NumberField::Sign(const UPoly& a) const {
  return alpha_.SignOfPolyAt(Reduce(a));
}

void NumberField::SplitModulus(const UPoly& factor) {
  UPoly monic = factor.MakeMonic();
  CCDB_CHECK_MSG(monic.degree() >= 1 && monic.degree() < modulus_.degree(),
                 "split factor must be proper");
  // alpha must be a root of exactly one of {factor, modulus/factor}.
  UPoly cofactor = *modulus_.DivideExact(monic);
  const UPoly& keep =
      alpha_.SignOfPolyAt(monic) == 0 ? monic : cofactor;
  CCDB_CHECK_MSG(alpha_.SignOfPolyAt(keep) == 0,
                 "alpha lost during modulus split");
  modulus_ = keep.MakeMonic();
  // Rebuild alpha over the smaller defining polynomial. The current
  // isolating interval still isolates alpha among the (fewer) roots.
  if (alpha_.is_rational()) return;
  IsolatedRoot root{alpha_.isolating_interval(), false};
  alpha_ = AlgebraicNumber(modulus_, std::move(root));
}

UPoly NumberField::Inverse(const UPoly& a) {
  while (true) {
    UPoly r = Reduce(a);
    CCDB_CHECK_MSG(!IsZero(r), "inverse of zero field element");
    // Extended Euclid: maintain r0 = s0*m + t0*a-ish; we only need the
    // cofactor of `r` against the modulus.
    UPoly r0 = modulus_;
    UPoly r1 = r;
    UPoly t0;                      // coefficient of r in r0's combination
    UPoly t1 = UPoly::Constant(Rational(1));
    while (!r1.is_zero()) {
      auto [q, rem] = r0.DivMod(r1);
      UPoly t2 = t0 - q * t1;
      r0 = std::move(r1);
      r1 = std::move(rem);
      t0 = std::move(t1);
      t1 = std::move(t2);
    }
    // r0 = gcd(modulus, r), t0 satisfies t0*r ≡ r0 (mod modulus).
    if (r0.degree() == 0) {
      return Reduce(t0.Scale(r0.leading_coefficient().Inverse()));
    }
    // Zero divisor found: r vanishes on the roots of r0 but not at alpha
    // (r(alpha) != 0), so alpha is a root of modulus/r0 — split and retry.
    SplitModulus(r0);
  }
}

Interval NumberField::Enclose(const UPoly& a, const Rational& width) const {
  UPoly r = Reduce(a);
  if (r.is_constant()) {
    Rational v = r.is_zero() ? Rational(0) : r.coefficient(0);
    return Interval(v);
  }
  const AlgebraicNumber& alpha = alpha_;
  while (true) {
    Interval value = r.EvaluateInterval(alpha.isolating_interval());
    if (value.Width() <= width) return value;
    Rational half =
        alpha.isolating_interval().Width() * Rational(BigInt(1), BigInt(2));
    alpha.RefineTo(half);
    if (alpha.is_rational()) {
      return Interval(r.Evaluate(alpha.rational_value()));
    }
  }
}

FieldPoly::FieldPoly(std::vector<UPoly> coefficients)
    : coeffs_(std::move(coefficients)) {}

void FieldPoly::Normalize(const NumberField& field) {
  for (UPoly& c : coeffs_) c = field.Reduce(c);
  while (!coeffs_.empty() && field.IsZero(coeffs_.back())) {
    coeffs_.pop_back();
  }
}

const UPoly& FieldPoly::leading_coefficient() const {
  CCDB_CHECK(!coeffs_.empty());
  return coeffs_.back();
}

FieldPoly FieldPoly::operator-() const {
  FieldPoly result = *this;
  for (UPoly& c : result.coeffs_) c = -c;
  return result;
}

FieldPoly FieldPoly::Add(const FieldPoly& other,
                         const NumberField& field) const {
  std::vector<UPoly> coeffs(std::max(coeffs_.size(), other.coeffs_.size()));
  for (std::size_t i = 0; i < coeffs_.size(); ++i) coeffs[i] = coeffs_[i];
  for (std::size_t i = 0; i < other.coeffs_.size(); ++i) {
    coeffs[i] = coeffs[i] + other.coeffs_[i];
  }
  FieldPoly result(std::move(coeffs));
  result.Normalize(field);
  return result;
}

FieldPoly FieldPoly::Sub(const FieldPoly& other,
                         const NumberField& field) const {
  return Add(-other, field);
}

FieldPoly FieldPoly::Mul(const FieldPoly& other,
                         const NumberField& field) const {
  if (coeffs_.empty() || other.coeffs_.empty()) return FieldPoly();
  std::vector<UPoly> coeffs(coeffs_.size() + other.coeffs_.size() - 1);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    for (std::size_t j = 0; j < other.coeffs_.size(); ++j) {
      coeffs[i + j] = coeffs[i + j] + field.Mul(coeffs_[i], other.coeffs_[j]);
    }
  }
  FieldPoly result(std::move(coeffs));
  result.Normalize(field);
  return result;
}

FieldPoly FieldPoly::Derivative(const NumberField& field) const {
  if (coeffs_.size() <= 1) return FieldPoly();
  std::vector<UPoly> coeffs(coeffs_.size() - 1);
  for (std::size_t i = 1; i < coeffs_.size(); ++i) {
    coeffs[i - 1] = coeffs_[i].Scale(Rational(static_cast<std::int64_t>(i)));
  }
  FieldPoly result(std::move(coeffs));
  result.Normalize(field);
  return result;
}

FieldPoly FieldPoly::Rem(const FieldPoly& divisor, NumberField& field) const {
  CCDB_CHECK_MSG(!divisor.is_zero(), "field polynomial division by zero");
  FieldPoly remainder = *this;
  remainder.Normalize(field);
  UPoly lead_inv = field.Inverse(divisor.leading_coefficient());
  while (!remainder.is_zero() && remainder.degree() >= divisor.degree()) {
    int shift = remainder.degree() - divisor.degree();
    UPoly factor = field.Mul(remainder.leading_coefficient(), lead_inv);
    for (int i = 0; i <= divisor.degree(); ++i) {
      remainder.coeffs_[i + shift] = field.Sub(
          remainder.coeffs_[i + shift], field.Mul(factor, divisor.coeffs_[i]));
    }
    remainder.Normalize(field);
  }
  return remainder;
}

FieldPoly FieldPoly::Gcd(FieldPoly a, FieldPoly b, NumberField& field) {
  a.Normalize(field);
  b.Normalize(field);
  while (!b.is_zero()) {
    FieldPoly r = a.Rem(b, field);
    a = std::move(b);
    b = std::move(r);
  }
  return a.MakeMonic(field);
}

FieldPoly FieldPoly::MakeMonic(NumberField& field) const {
  if (is_zero()) return FieldPoly();
  FieldPoly result = *this;
  UPoly lead_inv = field.Inverse(result.leading_coefficient());
  for (UPoly& c : result.coeffs_) c = field.Mul(c, lead_inv);
  return result;
}

FieldPoly FieldPoly::SquarefreePart(NumberField& field) const {
  FieldPoly f = *this;
  f.Normalize(field);
  if (f.degree() <= 1) return f.is_zero() ? f : f.MakeMonic(field);
  FieldPoly g = Gcd(f, f.Derivative(field), field);
  if (g.degree() == 0) return f.MakeMonic(field);
  // Exact division f / g via repeated remainder-free long division.
  FieldPoly quotient;
  {
    FieldPoly remainder = f;
    std::vector<UPoly> qc(f.degree() - g.degree() + 1);
    UPoly lead_inv = field.Inverse(g.leading_coefficient());
    while (!remainder.is_zero() && remainder.degree() >= g.degree()) {
      int shift = remainder.degree() - g.degree();
      UPoly factor = field.Mul(remainder.leading_coefficient(), lead_inv);
      qc[shift] = factor;
      for (int i = 0; i <= g.degree(); ++i) {
        remainder.coeffs_[i + shift] = field.Sub(
            remainder.coeffs_[i + shift], field.Mul(factor, g.coeffs_[i]));
      }
      remainder.Normalize(field);
    }
    CCDB_CHECK_MSG(remainder.is_zero(), "squarefree division not exact");
    quotient = FieldPoly(std::move(qc));
    quotient.Normalize(field);
  }
  return quotient.MakeMonic(field);
}

UPoly FieldPoly::EvaluateAtRational(const Rational& r,
                                    const NumberField& field) const {
  UPoly value;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    value = field.Reduce(value.Scale(r) + coeffs_[i]);
  }
  return value;
}

int FieldPoly::SignAtRational(const Rational& r,
                              const NumberField& field) const {
  return field.Sign(EvaluateAtRational(r, field));
}

namespace {

// Sturm chain of a squarefree FieldPoly.
std::vector<FieldPoly> FieldSturmChain(const FieldPoly& f,
                                       NumberField& field) {
  std::vector<FieldPoly> chain;
  if (f.is_zero()) return chain;
  chain.push_back(f);
  FieldPoly d = f.Derivative(field);
  if (d.is_zero()) return chain;
  chain.push_back(d);
  while (true) {
    FieldPoly r = chain[chain.size() - 2].Rem(chain.back(), field);
    if (r.is_zero()) break;
    chain.push_back(-r);
  }
  return chain;
}

int FieldSturmVariationsAt(const std::vector<FieldPoly>& chain,
                           const Rational& x, const NumberField& field) {
  int variations = 0;
  int last = 0;
  for (const FieldPoly& p : chain) {
    int s = p.SignAtRational(x, field);
    if (s == 0) continue;
    if (last != 0 && s != last) ++variations;
    last = s;
  }
  return variations;
}

}  // namespace

std::vector<Interval> FieldPoly::IsolateRealRoots(NumberField& field) const {
  std::vector<Interval> roots;
  FieldPoly f = *this;
  f.Normalize(field);
  if (f.degree() <= 0) return roots;
  f = f.MakeMonic(field);

  std::vector<FieldPoly> chain = FieldSturmChain(f, field);

  // Root bound: 1 + max |c_i(alpha)| over the monic coefficients, using
  // certified enclosures.
  Rational bound(1);
  for (int i = 0; i < f.degree(); ++i) {
    Interval enclosure =
        field.Enclose(f.coefficients()[i], Rational(BigInt(1), BigInt(16)));
    Rational magnitude = std::max(enclosure.lo().Abs(), enclosure.hi().Abs());
    if (magnitude + Rational(1) > bound) bound = magnitude + Rational(1);
  }
  Rational lo = -bound;
  Rational hi = bound;

  struct Segment {
    Rational lo, hi;
    int count;
  };
  std::vector<Segment> work;
  int total = FieldSturmVariationsAt(chain, lo, field) -
              FieldSturmVariationsAt(chain, hi, field);
  if (total > 0) work.push_back({lo, hi, total});

  auto count_roots = [&](const Rational& a, const Rational& b) {
    return FieldSturmVariationsAt(chain, a, field) -
           FieldSturmVariationsAt(chain, b, field);
  };

  while (!work.empty()) {
    Segment seg = work.back();
    work.pop_back();
    if (seg.count == 1) {
      roots.emplace_back(seg.lo, seg.hi);
      continue;
    }
    Rational mid = Rational::Midpoint(seg.lo, seg.hi);
    if (f.SignAtRational(mid, field) == 0) {
      roots.emplace_back(mid, mid);
      Rational delta = (seg.hi - seg.lo) * Rational(BigInt(1), BigInt(4));
      while (f.SignAtRational(mid - delta, field) == 0 ||
             f.SignAtRational(mid + delta, field) == 0 ||
             count_roots(mid - delta, mid + delta) > 1) {
        delta = delta * Rational(BigInt(1), BigInt(2));
      }
      int left = count_roots(seg.lo, mid - delta);
      int right = count_roots(mid + delta, seg.hi);
      if (left > 0) work.push_back({seg.lo, mid - delta, left});
      if (right > 0) work.push_back({mid + delta, seg.hi, right});
      continue;
    }
    int left = count_roots(seg.lo, mid);
    int right = seg.count - left;
    if (left > 0) work.push_back({seg.lo, mid, left});
    if (right > 0) work.push_back({mid, seg.hi, right});
  }

  std::sort(roots.begin(), roots.end(),
            [](const Interval& a, const Interval& b) { return a.lo() < b.lo(); });
  return roots;
}

}  // namespace ccdb
