#ifndef CCDB_POLY_ALGEBRAIC_NUMBER_H_
#define CCDB_POLY_ALGEBRAIC_NUMBER_H_

#include <string>
#include <vector>

#include "arith/interval.h"
#include "arith/rational.h"
#include "poly/root_isolation.h"
#include "poly/upoly.h"

namespace ccdb {

/// A real algebraic number, represented the way the paper's Appendix I
/// describes CAD sample points: "an algebraic number is defined by its
/// minimal polynomial p and an isolating interval for the particular root
/// of p". We relax "minimal" to "squarefree" (a squarefree polynomial with
/// exactly one root in the isolating interval), which every exact operation
/// below tolerates.
///
/// Mutable only through refinement, which shrinks the isolating interval
/// while always containing the same real number.
class AlgebraicNumber {
 public:
  /// The rational number r (defining polynomial x - r, point interval).
  explicit AlgebraicNumber(Rational value);
  /// A root of `defining` (made squarefree internally) isolated by
  /// `root`, as produced by IsolateRealRoots(defining).
  AlgebraicNumber(const UPoly& defining, IsolatedRoot root);

  /// All real roots of p, in increasing order, as algebraic numbers.
  static std::vector<AlgebraicNumber> RootsOf(const UPoly& p);

  /// Governed variant: root isolation charges `gov` and fails with
  /// kResourceExhausted on budget trip. Null governor never fails.
  static StatusOr<std::vector<AlgebraicNumber>> RootsOf(
      const UPoly& p, const ResourceGovernor* gov);

  /// True iff the number is (known) rational. Numbers constructed from
  /// irrational roots stay non-exact even when the underlying value happens
  /// to be rational but undetected; exactness is a representation property.
  bool is_rational() const { return root_.is_exact; }
  /// The exact rational value; requires is_rational().
  const Rational& rational_value() const;

  /// Squarefree defining polynomial.
  const UPoly& defining_polynomial() const { return poly_; }
  /// Current isolating interval (always contains the number).
  const Interval& isolating_interval() const { return root_.interval; }

  /// Shrinks the isolating interval to at most `width`.
  void RefineTo(const Rational& width) const;

  /// Sign of this number: refined until certain.
  int Sign() const;

  /// Exact sign of q evaluated at this number (0 iff q(alpha) == 0, decided
  /// exactly via gcd with the defining polynomial).
  int SignOfPolyAt(const UPoly& q) const;

  /// Exact three-way comparison with another algebraic number.
  int Compare(const AlgebraicNumber& other) const;
  /// Exact three-way comparison with a rational.
  int CompareRational(const Rational& value) const;

  bool operator==(const AlgebraicNumber& other) const {
    return Compare(other) == 0;
  }
  bool operator<(const AlgebraicNumber& other) const {
    return Compare(other) < 0;
  }

  /// Rational approximation within `epsilon` of the true value.
  Rational Approximate(const Rational& epsilon) const;
  double ToDouble() const;

  std::string ToString() const;

 private:
  UPoly poly_;               // squarefree, nonzero at non-exact endpoints
  mutable IsolatedRoot root_;  // refined lazily by const operations
};

}  // namespace ccdb

#endif  // CCDB_POLY_ALGEBRAIC_NUMBER_H_
