// Experiment E1 — Figure 1 of the paper: the query evaluation pipeline on
// the running example.
//
//   Constraint relation: S(x,y) = 4x^2 - y - 20x + 25 <= 0
//   Query:               Q(x) = exists y (S(x,y) and y <= 0)
//   Paper's pipeline:    instantiate -> eliminate quantifier
//                        -> 4x^2 - 20x + 25 = 0 -> numerical evaluation
//                        -> x = 2.5
//
// The harness prints every stage's actual output next to the paper's and
// times each stage.

#include "bench_util.h"
#include "engine/database.h"
#include "numeric/numerical_eval.h"
#include "qe/qe.h"
#include "qe/qe_cache.h"
#include "query/lower.h"
#include "query/parser.h"

using namespace ccdb;

int main(int argc, char** argv) {
  ccdb_bench::InitBenchTracing(argc, argv);
  ccdb_bench::Header(
      "E1: Figure 1 query evaluation pipeline",
      "QE yields 4x^2-20x+25 = 0; numerical evaluation yields x = 2.5");

  ConstraintDatabase db;
  CCDB_CHECK(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());

  // Stage 1: INSTANTIATION.
  auto parsed = ParseFormula("exists y (S(x, y) and y <= 0)");
  CCDB_CHECK(parsed.ok());
  VarEnv env;
  env.Intern("x");
  Formula lowered = *LowerFormula(**parsed, &env);
  Formula instantiated = Formula::True();
  double t_instantiate = ccdb_bench::TimeSeconds([&] {
    auto result = lowered.InstantiateRelations(
        [&db](const std::string& name) { return db.Relation(name); });
    CCDB_CHECK(result.ok());
    instantiated = *result;
  });
  ccdb_bench::RecordCell("instantiation", t_instantiate);
  ccdb_bench::Row("stage 1 INSTANTIATION   : %s",
                  instantiated.ToString({"x", "y"}).c_str());
  ccdb_bench::Row("  paper                 : exists y (4x^2-y-20x+25 <= 0 "
                  "and y <= 0)");

  // Stage 2: QUANTIFIER ELIMINATION (governed when --deadline-ms is set).
  ConstraintRelation closed_form;
  QeStats stats;
  std::optional<double> t_qe =
      ccdb_bench::GovernedCell([&](const ResourceGovernor* gov) -> Status {
        QeOptions options;
        options.governor = gov;
        options.pool = ccdb_bench::Pool();
        auto result = EliminateQuantifiers(instantiated, 1, options, &stats);
        CCDB_RETURN_IF_ERROR(result.status());
        closed_form = *std::move(result);
        return Status::Ok();
      });
  ccdb_bench::RecordCell("qe", t_qe);
  if (!t_qe.has_value()) {
    ccdb_bench::Row("stage 2 QE              : exhausted (deadline)");
    ccdb_bench::RecordCell("numerical_eval", std::nullopt);
    return 1;
  }
  ccdb_bench::Row("stage 2 QE              : %s",
                  closed_form.ToString({"x"}).c_str());
  ccdb_bench::Row("  paper                 : 4x^2 - 20x + 25 = 0  "
                  "(equivalently 2x - 5 = 0)");
  ccdb_bench::Row("  CAD cells: %zu, projection factors: %zu",
                  stats.cad_cells, stats.projection_factors);

  // Stage 3: NUMERICAL EVALUATION.
  std::vector<std::vector<Rational>> solutions;
  std::optional<double> t_numeric =
      ccdb_bench::GovernedCell([&](const ResourceGovernor* gov) -> Status {
        auto result = ApproximateSolutions(
            closed_form, Rational(BigInt(1), BigInt(1000000)), gov);
        CCDB_RETURN_IF_ERROR(result.status());
        solutions = *std::move(result);
        return Status::Ok();
      });
  ccdb_bench::RecordCell("numerical_eval", t_numeric);
  if (!t_numeric.has_value()) {
    ccdb_bench::Row("stage 3 NUMERICAL EVAL  : exhausted (deadline)");
    return 1;
  }
  std::string rendered;
  for (const auto& point : solutions) {
    rendered += "x = " + point[0].ToString() + " ";
  }
  ccdb_bench::Row("stage 3 NUMERICAL EVAL  : %s", rendered.c_str());
  ccdb_bench::Row("  paper                 : x = 2.5");

  // Scaled Figure 1: the same query shape over a union of m shifted,
  // scaled parabola bands — exists y (∨_k  a_k(x-k)^2 - y - c_k <= 0 and
  // y <= b_k). The all-existential prefix distributes over the union, so
  // QE runs m independent CADs; this is the engine's parallel fan-out
  // instance. Sweep with --threads=1 / --threads=8 and compare the
  // scaled_qe_m* cells (the answers are identical at every width).
  ccdb_bench::Row("");
  ccdb_bench::Row("scaled pipeline: union of m parabola bands (threads=%d)",
                  ccdb_bench::BenchThreads());
  ccdb_bench::Row("%-10s %10s %12s %12s", "disjuncts", "tuples", "CAD cells",
                  "time [ms]");
  auto make_scaled = [](int m) {
    std::vector<Formula> bands;
    for (int k = 1; k <= m; ++k) {
      Polynomial x = Polynomial::Var(0), y = Polynomial::Var(1);
      Polynomial shifted = (x - Polynomial(k)) * (x - Polynomial(k));
      // Vary curvature and clip each band against a shifted circle so
      // every CAD has distinct projection factors (no sharing between
      // disjuncts) while staying at degree 2.
      Polynomial circle = shifted + (y - Polynomial(k)) * (y - Polynomial(k));
      bands.push_back(Formula::And(
          {Formula::Compare(Polynomial(1 + k % 3) * shifted - y,
                            RelOp::kLe, Polynomial(k)),
           Formula::Compare(y, RelOp::kLe, Polynomial(2 * k + 1)),
           Formula::Compare(circle, RelOp::kLe,
                            Polynomial((k + 2) * (k + 2)))}));
    }
    return Formula::Exists(1, Formula::Or(bands));
  };
  for (int m : {4, 8, 16}) {
    Formula scaled = make_scaled(m);
    ConstraintRelation scaled_answer;
    QeStats scaled_stats;
    std::optional<double> t_scaled =
        ccdb_bench::GovernedCell([&](const ResourceGovernor* gov) -> Status {
          QeOptions options;
          options.governor = gov;
          options.pool = ccdb_bench::Pool();
          scaled_stats = QeStats{};
          auto result = EliminateQuantifiers(scaled, 1, options,
                                             &scaled_stats);
          CCDB_RETURN_IF_ERROR(result.status());
          scaled_answer = *std::move(result);
          return Status::Ok();
        });
    ccdb_bench::RecordCell("scaled_qe_m" + std::to_string(m), t_scaled);
    ccdb_bench::Row("%-10d %10zu %12zu %12s", m,
                    scaled_answer.tuples().size(), scaled_stats.cad_cells,
                    ccdb_bench::TableCell(t_scaled).c_str());
  }

  // Warm vs cold memo caches: the same scaled query is rebuilt from
  // scratch and eliminated twice. Hash-consing makes the rebuilt formula
  // the same interned node, so with the caches on the second elimination
  // is one QE-cache lookup; with `--qe-cache=0` both runs pay full price.
  // The outputs are byte-identical either way (pure memo contract) — only
  // the timing moves.
  ccdb_bench::Row("");
  ccdb_bench::Row("warm vs cold QE result cache (qe_cache=%d)",
                  ccdb_bench::BenchQeCacheEnabled() ? 1 : 0);
  QeResultCache().Clear();
  std::string cold_text, warm_text;
  double t_cold = ccdb_bench::TimeSeconds([&] {
    QeOptions options;
    options.pool = ccdb_bench::Pool();
    QeStats cache_stats;
    auto result = EliminateQuantifiers(make_scaled(16), 1, options,
                                       &cache_stats);
    CCDB_CHECK(result.ok());
    cold_text = result->ToString({"x"});
  });
  ccdb_bench::RecordCell("qe_cache_cold", t_cold);
  double t_warm = ccdb_bench::TimeSeconds([&] {
    QeOptions options;
    options.pool = ccdb_bench::Pool();
    QeStats cache_stats;
    auto result = EliminateQuantifiers(make_scaled(16), 1, options,
                                       &cache_stats);
    CCDB_CHECK(result.ok());
    warm_text = result->ToString({"x"});
  });
  ccdb_bench::RecordCell("qe_cache_warm", t_warm);
  CCDB_CHECK_MSG(cold_text == warm_text,
                 "warm run output differs from cold run");
  ccdb_bench::Row("%-24s %12.3f", "cold run [ms]", t_cold * 1e3);
  ccdb_bench::Row("%-24s %12.3f", "warm run [ms]", t_warm * 1e3);
  ccdb_bench::Row("%-24s %12.1fx", "speedup",
                  t_warm > 0.0 ? t_cold / t_warm : 0.0);

  // Planned vs monolithic elimination on a mixed-fragment query:
  //   exists y ( (x <= y and y <= 3)               -- dense-order block
  //           or (x + 2y <= 4 and -1 <= y)         -- linear block
  //           or (x < 5 and x^2 + y^2 <= 4) )      -- free leaf + CAD block
  // The planner miniscopes x < 5 out of the quantifier scope and
  // dispatches the first two disjuncts to dense-order/Fourier-Motzkin, so
  // CAD only ever sees the circle — strictly fewer cells than the
  // monolithic disjunct on {x-5, x^2+y^2-4}. The answers are
  // byte-identical (both paths sort the canonicalized union).
  ccdb_bench::Row("");
  ccdb_bench::Row("planned vs monolithic: mixed-fragment query (threads=%d)",
                  ccdb_bench::BenchThreads());
  Formula mixed = [] {
    Polynomial x = Polynomial::Var(0), y = Polynomial::Var(1);
    Formula dense = Formula::And({Formula::Compare(x, RelOp::kLe, y),
                                  Formula::Compare(y, RelOp::kLe,
                                                   Polynomial(3))});
    Formula linear = Formula::And(
        {Formula::Compare(x + Polynomial(2) * y, RelOp::kLe, Polynomial(4)),
         Formula::Compare(Polynomial(-1), RelOp::kLe, y)});
    Formula poly = Formula::And(
        {Formula::Compare(x, RelOp::kLt, Polynomial(5)),
         Formula::Compare(x * x + y * y, RelOp::kLe, Polynomial(4))});
    return Formula::Exists(1, Formula::Or({dense, linear, poly}));
  }();
  std::string mixed_text[2];
  std::size_t mixed_cells[2] = {0, 0};
  std::optional<double> mixed_ms[2];
  for (int planned = 0; planned < 2; ++planned) {
    mixed_ms[planned] =
        ccdb_bench::GovernedCell([&](const ResourceGovernor* gov) -> Status {
          QeOptions options;
          options.governor = gov;
          options.pool = ccdb_bench::Pool();
          options.plan = planned ? PlanToggle::kOn : PlanToggle::kOff;
          QeStats mixed_stats;
          auto result = EliminateQuantifiers(mixed, 1, options, &mixed_stats);
          CCDB_RETURN_IF_ERROR(result.status());
          mixed_text[planned] = result->ToString({"x"});
          mixed_cells[planned] = mixed_stats.cad_cells;
          if (planned) {
            ccdb_bench::Row("plan: %s", mixed_stats.plan.c_str());
          }
          return Status::Ok();
        });
    ccdb_bench::RecordCell(planned ? "mixed_fragment_planned"
                                   : "mixed_fragment_monolithic",
                           mixed_ms[planned]);
  }
  if (mixed_ms[0].has_value() && mixed_ms[1].has_value()) {
    CCDB_CHECK_MSG(mixed_text[0] == mixed_text[1],
                   "planned output differs from monolithic output");
    CCDB_CHECK_MSG(mixed_cells[1] < mixed_cells[0],
                   "planner did not reduce CAD cells on the mixed query");
    ccdb_bench::Row("%-24s %12s %12s", "path", "CAD cells", "time [ms]");
    ccdb_bench::Row("%-24s %12zu %12s", "monolithic", mixed_cells[0],
                    ccdb_bench::TableCell(mixed_ms[0]).c_str());
    ccdb_bench::Row("%-24s %12zu %12s", "planned", mixed_cells[1],
                    ccdb_bench::TableCell(mixed_ms[1]).c_str());
    ccdb_bench::Row("outputs byte-identical: yes");
  }

  // EXPLAIN ANALYZE over the same mixed-fragment query as text
  // (Observability v2, DESIGN.md §12): the profiled execution reports
  // per-plan-node wall time, CAD cells, FM rounds, and cache temperature,
  // and the answer stays byte-identical to the unprofiled Query —
  // profiling is observation only.
  ccdb_bench::Row("");
  ccdb_bench::Row("EXPLAIN ANALYZE: mixed-fragment query");
  const std::string mixed_text_query =
      "exists y ((x <= y and y <= 3) or (x + 2*y <= 4 and -1 <= y) or "
      "(x < 5 and x^2 + y^2 <= 4))";
  auto plain = db.Query(mixed_text_query);
  CCDB_CHECK(plain.ok());
  // Cold QE cache so the profile shows the full annotated plan tree
  // (warm runs collapse to a single qe[cached] node).
  QeResultCache().Clear();
  ExplainAnalyzeResult analyzed;
  double t_analyze = ccdb_bench::TimeSeconds([&] {
    auto result = db.ExplainAnalyze(mixed_text_query);
    CCDB_CHECK(result.ok());
    analyzed = *std::move(result);
  });
  ccdb_bench::RecordCell("explain_analyze_mixed", t_analyze);
  CCDB_CHECK_MSG(
      plain->relation.ToString(plain->column_names) ==
          analyzed.result.relation.ToString(analyzed.result.column_names),
      "profiled answer differs from the unprofiled Query");
  std::printf("%s", analyzed.profile.ToString().c_str());
  ccdb_bench::Row("profiled answer byte-identical to Query: yes");

  // Repeated-latency cell: the planned mixed-fragment elimination run
  // cold 20 times (QE result cache cleared before each sample), reported
  // with the Histogram percentile estimator as p50/p90/p99 columns.
  std::vector<double> mixed_samples;
  for (int rep = 0; rep < 20; ++rep) {
    QeResultCache().Clear();
    mixed_samples.push_back(ccdb_bench::TimeSeconds([&] {
      QeOptions options;
      options.pool = ccdb_bench::Pool();
      auto result = EliminateQuantifiers(mixed, 1, options);
      CCDB_CHECK(result.ok());
    }));
  }
  ccdb_bench::RecordLatencyCell("mixed_fragment_repeat", mixed_samples);

  bool match = solutions.size() == 1 &&
               solutions[0][0] == Rational(BigInt(5), BigInt(2));
  ccdb_bench::Row("");
  ccdb_bench::Row("%-24s %12s %12s", "stage", "time [ms]", "matches paper");
  ccdb_bench::Row("%-24s %12.3f %12s", "instantiation",
                  t_instantiate * 1e3, "n/a");
  ccdb_bench::Row("%-24s %12s %12s", "quantifier elimination",
                  ccdb_bench::TableCell(t_qe).c_str(),
                  closed_form.Contains({Rational(BigInt(5), BigInt(2))})
                      ? "yes"
                      : "NO");
  ccdb_bench::Row("%-24s %12s %12s", "numerical evaluation",
                  ccdb_bench::TableCell(t_numeric).c_str(),
                  match ? "yes" : "NO");
  ccdb_bench::WriteRunRecord("pipeline");
  return match ? 0 : 1;
}
