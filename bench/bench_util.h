#ifndef CCDB_BENCH_BENCH_UTIL_H_
#define CCDB_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment harness: wall-clock timing, table
// printing in the EXPERIMENTS.md format, and synthetic workload
// generators over the class K_{d,m} of the paper (constraint databases
// with at most m distinct polynomials of degree at most d).

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "base/logging.h"
#include "base/memo.h"
#include "base/metrics.h"
#include "base/profile.h"
#include "base/resource.h"
#include "base/thread_pool.h"
#include "base/trace.h"
#include "constraint/atom.h"
#include "constraint/formula.h"
#include "plan/planner.h"
#include "poly/polynomial.h"
#include "poly/upoly.h"

namespace ccdb_bench {

/// Per-cell deadline of the run in seconds; 0 = ungoverned (set by the
/// `--deadline-ms=` flag or the CCDB_BENCH_DEADLINE_MS env var).
inline double& BenchDeadlineSeconds() {
  static double deadline = 0.0;
  return deadline;
}

/// Worker count of the run (set by `--threads=N` or CCDB_THREADS; defaults
/// to 1 = the serial engine). Also the value of the JSON report's
/// "threads" column, so sweep runs at several widths can be merged into
/// one speedup plot.
inline int& BenchThreads() {
  static int threads = ccdb::ThreadPool::DefaultThreads();
  return threads;
}

/// The pool every bench cell should hand to QeOptions/DatalogOptions —
/// the process-wide shared pool, sized by InitBenchTracing.
inline ccdb::ThreadPool* Pool() { return ccdb::ThreadPool::Shared(); }

/// Whether the memo caches are on for this run (set by `--qe-cache=0|1`
/// or CCDB_QE_CACHE; defaults to on). Also the value of the JSON report's
/// "qe_cache" column, so cache-on/cache-off runs can be diffed row by row.
inline bool& BenchQeCacheEnabled() {
  static bool enabled = ccdb::MemoCachesEnabled();
  return enabled;
}

/// Whether the structure-aware planner is on for this run (set by
/// `--plan=0|1` or CCDB_PLAN; defaults to on). Also the value of the JSON
/// report's "plan" column, so planned/monolithic runs can be diffed row by
/// row.
inline bool& BenchPlanEnabled() {
  static bool enabled = ccdb::PlannerEnabled();
  return enabled;
}

/// Whether `--profile` was passed: span tracing is enabled for the whole
/// run and the aggregated span profile (base/profile.h) is printed to
/// stderr at exit, flamegraph-style — one line per call path with count
/// and inclusive/exclusive totals.
inline bool& BenchProfileEnabled() {
  static bool enabled = false;
  return enabled;
}

/// Destination of the run record written by WriteRunRecord (set by
/// `--bench-out=<path>` or CCDB_BENCH_OUT); "" = `BENCH_<name>.json` in
/// the current directory.
inline std::string& BenchOutPath() {
  static std::string path;
  return path;
}

/// Processes the standard harness flags. Call first thing in main().
///
///   --trace-out=<file>    (or CCDB_TRACE_OUT) span tracing for the run,
///                         written as a Chrome trace_event JSON at exit
///   --deadline-ms=<N>     (or CCDB_BENCH_DEADLINE_MS) per-cell resource
///                         deadline: cells run under a ResourceGovernor
///                         (GovernedCell) and report `null` instead of a
///                         timing when the budget is exhausted
///   --threads=<N>         (or CCDB_THREADS) size the process-wide worker
///                         pool; N = total runners, 1 = serial. Results
///                         are identical at every N (see DESIGN.md), only
///                         the timings change.
///   --qe-cache=<0|1>      (or CCDB_QE_CACHE) toggle the memo caches (QE
///                         result / resultant / query caches). Results are
///                         byte-identical either way (pure memo contract),
///                         only the timings change.
///   --plan=<0|1>          (or CCDB_PLAN) toggle the structure-aware query
///                         planner; 0 = the monolithic elimination path.
///   --profile             enable span tracing and print the aggregated
///                         span profile (path -> count, inclusive µs,
///                         exclusive µs) to stderr at exit
///   --bench-out=<path>    (or CCDB_BENCH_OUT) where WriteRunRecord puts
///                         the BENCH_<name>.json run record
inline void InitBenchTracing(int argc, char** argv) {
  static std::string trace_path;
  if (const char* env = std::getenv("CCDB_TRACE_OUT")) trace_path = env;
  if (const char* env = std::getenv("CCDB_BENCH_DEADLINE_MS")) {
    BenchDeadlineSeconds() = std::atof(env) / 1e3;
  }
  if (const char* env = std::getenv("CCDB_BENCH_OUT")) BenchOutPath() = env;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kFlag[] = "--trace-out=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      trace_path = argv[i] + (sizeof(kFlag) - 1);
    }
    constexpr const char kDeadlineFlag[] = "--deadline-ms=";
    if (std::strncmp(argv[i], kDeadlineFlag, sizeof(kDeadlineFlag) - 1) ==
        0) {
      BenchDeadlineSeconds() =
          std::atof(argv[i] + (sizeof(kDeadlineFlag) - 1)) / 1e3;
    }
    constexpr const char kThreadsFlag[] = "--threads=";
    if (std::strncmp(argv[i], kThreadsFlag, sizeof(kThreadsFlag) - 1) == 0) {
      BenchThreads() = std::atoi(argv[i] + (sizeof(kThreadsFlag) - 1));
    }
    constexpr const char kQeCacheFlag[] = "--qe-cache=";
    if (std::strncmp(argv[i], kQeCacheFlag, sizeof(kQeCacheFlag) - 1) == 0) {
      BenchQeCacheEnabled() =
          std::atoi(argv[i] + (sizeof(kQeCacheFlag) - 1)) != 0;
      ccdb::SetMemoCachesEnabled(BenchQeCacheEnabled());
    }
    constexpr const char kPlanFlag[] = "--plan=";
    if (std::strncmp(argv[i], kPlanFlag, sizeof(kPlanFlag) - 1) == 0) {
      BenchPlanEnabled() = std::atoi(argv[i] + (sizeof(kPlanFlag) - 1)) != 0;
      ccdb::SetPlannerEnabled(BenchPlanEnabled());
    }
    if (std::strcmp(argv[i], "--profile") == 0) BenchProfileEnabled() = true;
    constexpr const char kBenchOutFlag[] = "--bench-out=";
    if (std::strncmp(argv[i], kBenchOutFlag, sizeof(kBenchOutFlag) - 1) ==
        0) {
      BenchOutPath() = argv[i] + (sizeof(kBenchOutFlag) - 1);
    }
  }
  if (BenchThreads() < 1) BenchThreads() = 1;
  ccdb::ThreadPool::ConfigureShared(BenchThreads());
  if (BenchProfileEnabled()) {
    ccdb::Tracer::Global().SetEnabled(true);
    std::atexit(+[] {
      ccdb::SpanProfile profile = ccdb::BuildSpanProfile();
      std::fprintf(stderr, "%s", profile.ToString().c_str());
    });
  }
  if (trace_path.empty()) return;
  ccdb::Tracer::Global().SetEnabled(true);
  std::atexit(+[] {
    ccdb::Status status = ccdb::Tracer::Global().WriteChromeTrace(trace_path);
    if (status.ok()) {
      std::fprintf(stderr, "trace: wrote %zu span(s) to %s\n",
                   ccdb::Tracer::Global().size(), trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace: %s\n", status.ToString().c_str());
    }
  });
}

/// Runs one bench cell under the harness deadline (when set) and returns
/// its wall time — or nullopt when the budget was exhausted. The body
/// receives the cell's governor (null when ungoverned) and reports
/// failure by returning a non-OK status; non-exhaustion errors abort the
/// bench (they are bugs, not budget verdicts).
inline std::optional<double> GovernedCell(
    const std::function<ccdb::Status(const ccdb::ResourceGovernor*)>& body) {
  double deadline = BenchDeadlineSeconds();
  std::optional<ccdb::ResourceGovernor> governor;
  if (deadline > 0.0) {
    governor.emplace(ccdb::ResourceLimits::Deadline(deadline));
  }
  auto start = std::chrono::steady_clock::now();
  ccdb::Status status = body(governor ? &*governor : nullptr);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (status.ok()) return seconds;
  CCDB_CHECK_MSG(status.code() == ccdb::StatusCode::kResourceExhausted,
                 status.ToString().c_str());
  return std::nullopt;
}

/// Renders a timing cell for the JSON report: milliseconds, or `null` for
/// a cell that exhausted its budget (so downstream plots can gap it
/// instead of charting a lie).
inline std::string JsonCell(const std::optional<double>& seconds) {
  if (!seconds.has_value()) return "null";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", *seconds * 1e3);
  return buffer;
}

/// Renders a printf table cell: "12.345" ms or "exhausted".
inline std::string TableCell(const std::optional<double>& seconds) {
  if (!seconds.has_value()) return "exhausted";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", *seconds * 1e3);
  return buffer;
}

/// Collects `{"cell": <name>, "threads": <N>, "qe_cache": <0|1>,
/// "plan": <0|1>, "ms": <value-or-null>, "qe_cache_hit_rate":
/// <rate-or-null>, "formula_nodes": <N>, "poly_nodes": <N>}` rows; the
/// report is printed as one JSON array line at exit (after the
/// human-readable table), machine-readable for the experiment plots. The
/// "threads" column lets a sweep (`--threads=1`, `--threads=8`, ...)
/// concatenate its reports into one speedup table; "qe_cache" and "plan"
/// do the same for `--qe-cache=0/1` and `--plan=0/1` differential runs. The hit rate is per cell (delta of the qe_cache
/// hit/miss counters since the previous RecordCell, null when the cell
/// never consulted the cache); the node counts are the live hash-consed
/// formula arena and interned polynomial pool sizes at record time.
inline std::vector<std::string>& JsonReportRows() {
  // Leaked on purpose: must stay alive for the atexit printer.
  static auto* rows = new std::vector<std::string>();
  return *rows;
}

/// Registers the atexit hook that prints the `json: [...]` report line
/// (idempotent; shared by RecordCell and RecordLatencyCell).
inline void EnsureJsonReportPrinter() {
  static bool hooked = [] {
    std::atexit(+[] {
      std::printf("json: [");
      const std::vector<std::string>& rows = JsonReportRows();
      for (std::size_t i = 0; i < rows.size(); ++i) {
        std::printf("%s%s", i > 0 ? ", " : "", rows[i].c_str());
      }
      std::printf("]\n");
    });
    return true;
  }();
  (void)hooked;
}

inline void RecordCell(const std::string& name,
                       const std::optional<double>& seconds) {
  EnsureJsonReportPrinter();
  static ccdb::Counter* hits =
      ccdb::MetricsRegistry::Global().GetCounter("qe_cache_hits");
  static ccdb::Counter* misses =
      ccdb::MetricsRegistry::Global().GetCounter("qe_cache_misses");
  static std::uint64_t prev_hits = hits->value();
  static std::uint64_t prev_misses = misses->value();
  std::uint64_t cell_hits = hits->value() - prev_hits;
  std::uint64_t cell_misses = misses->value() - prev_misses;
  prev_hits = hits->value();
  prev_misses = misses->value();
  std::string hit_rate = "null";
  if (cell_hits + cell_misses > 0) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.4f",
                  static_cast<double>(cell_hits) /
                      static_cast<double>(cell_hits + cell_misses));
    hit_rate = buffer;
  }
  ccdb::FormulaArenaStats arena = ccdb::GetFormulaArenaStats();
  ccdb::PolyInternStats poly = ccdb::GetPolyInternStats();
  JsonReportRows().push_back(
      "{\"cell\": \"" + name +
      "\", \"threads\": " + std::to_string(BenchThreads()) +
      ", \"qe_cache\": " + (BenchQeCacheEnabled() ? "1" : "0") +
      ", \"plan\": " + (BenchPlanEnabled() ? "1" : "0") +
      ", \"ms\": " + JsonCell(seconds) +
      ", \"qe_cache_hit_rate\": " + hit_rate +
      ", \"formula_nodes\": " + std::to_string(arena.live_nodes) +
      ", \"poly_nodes\": " + std::to_string(poly.entries) + "}");
}

/// Records a repeated-measurement cell: every sample is fed to the
/// registry histogram `bench.<cell>.us`, so MetricsRegistry::SnapshotJson
/// and this report share one estimator, and the row carries the mean plus
/// interpolated p50/p90/p99 (Histogram::Percentile over the power-of-two
/// microsecond buckets) as `p50_ms`/`p90_ms`/`p99_ms` columns.
inline void RecordLatencyCell(const std::string& name,
                              const std::vector<double>& samples_seconds) {
  EnsureJsonReportPrinter();
  ccdb::Histogram* hist =
      ccdb::MetricsRegistry::Global().GetHistogram("bench." + name + ".us");
  double total = 0.0;
  for (double s : samples_seconds) {
    hist->Record(static_cast<std::uint64_t>(s * 1e6));
    total += s;
  }
  double mean_ms =
      samples_seconds.empty()
          ? 0.0
          : total / static_cast<double>(samples_seconds.size()) * 1e3;
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "{\"cell\": \"%s\", \"threads\": %d, \"qe_cache\": %d, "
                "\"plan\": %d, \"ms\": %.6f, \"samples\": %zu, "
                "\"p50_ms\": %.6f, \"p90_ms\": %.6f, \"p99_ms\": %.6f}",
                name.c_str(), BenchThreads(),
                BenchQeCacheEnabled() ? 1 : 0, BenchPlanEnabled() ? 1 : 0,
                mean_ms, samples_seconds.size(), hist->Percentile(0.50) / 1e3,
                hist->Percentile(0.90) / 1e3, hist->Percentile(0.99) / 1e3);
  JsonReportRows().push_back(buffer);
}

/// Writes the canonical run record `BENCH_<name>.json` (schema_version 1;
/// DESIGN.md §12): the harness configuration plus every recorded row, in
/// record order. Call at the end of a bench's main() so the trajectory of
/// a bench across commits is a diffable committed artifact. The path is
/// overridden by `--bench-out=` / CCDB_BENCH_OUT;
/// scripts/check_bench_schema.py validates the schema.
inline void WriteRunRecord(const std::string& name) {
  std::string path =
      BenchOutPath().empty() ? "BENCH_" + name + ".json" : BenchOutPath();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"schema_version\": 1,\n"
               "  \"bench\": \"%s\",\n"
               "  \"threads\": %d,\n"
               "  \"qe_cache\": %d,\n"
               "  \"plan\": %d,\n"
               "  \"rows\": [\n",
               name.c_str(), BenchThreads(), BenchQeCacheEnabled() ? 1 : 0,
               BenchPlanEnabled() ? 1 : 0);
  const std::vector<std::string>& rows = JsonReportRows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out, "    %s%s\n", rows[i].c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "bench: wrote run record %s (%zu row(s))\n",
               path.c_str(), rows.size());
}

inline double TimeSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

inline void Header(const std::string& experiment, const std::string& claim) {
  std::printf("=======================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("=======================================================\n");
}

inline void Row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vprintf(format, args);
  va_end(args);
  std::printf("\n");
}

/// Random band relation over (x, y): a union of `tuples` generalized
/// tuples "a*x + b*y + c <= 0 and bounds", linear, with coefficient bit
/// length ~ `bits`.
inline ccdb::ConstraintRelation RandomLinearRelation(int tuples, int bits,
                                                     std::uint64_t seed,
                                                     bool bounded = true) {
  std::mt19937_64 rng(seed);
  std::int64_t bound = (1ll << std::min(bits, 40)) - 1;
  std::uniform_int_distribution<std::int64_t> dist(-bound, bound);
  ccdb::ConstraintRelation rel(2);
  for (int t = 0; t < tuples; ++t) {
    ccdb::GeneralizedTuple tuple;
    std::int64_t a = dist(rng), b = dist(rng), c = dist(rng);
    if (a == 0 && b == 0) a = 1;
    tuple.atoms.emplace_back(
        ccdb::Polynomial(a) * ccdb::Polynomial::Var(0) +
            ccdb::Polynomial(b) * ccdb::Polynomial::Var(1) +
            ccdb::Polynomial(c),
        ccdb::RelOp::kLe);
    // Keep every tuple bounded so aggregates stay defined. Unbounded
    // single-atom tuples keep DNF negation linear (for forall workloads).
    if (bounded)
    tuple.atoms.emplace_back(ccdb::Polynomial::Var(0).Pow(1) -
                                 ccdb::Polynomial(100),
                             ccdb::RelOp::kLe);
    if (bounded) {
      tuple.atoms.emplace_back(-ccdb::Polynomial::Var(0) -
                                   ccdb::Polynomial(100),
                               ccdb::RelOp::kLe);
      tuple.atoms.emplace_back(ccdb::Polynomial::Var(1) -
                                   ccdb::Polynomial(100),
                               ccdb::RelOp::kLe);
      tuple.atoms.emplace_back(-ccdb::Polynomial::Var(1) -
                                   ccdb::Polynomial(100),
                               ccdb::RelOp::kLe);
    }
    rel.AddTuple(std::move(tuple));
  }
  return rel;
}

/// Random univariate polynomial with `degree` and coefficients of bit
/// length ~ `bits`, guaranteed nonzero leading coefficient.
inline ccdb::UPoly RandomUPoly(int degree, int bits, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::int64_t bound = (1ll << std::min(bits, 40)) - 1;
  std::uniform_int_distribution<std::int64_t> dist(-bound, bound);
  std::vector<ccdb::Rational> coeffs;
  for (int i = 0; i <= degree; ++i) {
    coeffs.emplace_back(ccdb::BigInt(dist(rng)));
  }
  if (coeffs.back().is_zero()) coeffs.back() = ccdb::Rational(1);
  return ccdb::UPoly(std::move(coeffs));
}

}  // namespace ccdb_bench

#endif  // CCDB_BENCH_BENCH_UTIL_H_
