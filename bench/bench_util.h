#ifndef CCDB_BENCH_BENCH_UTIL_H_
#define CCDB_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment harness: wall-clock timing, table
// printing in the EXPERIMENTS.md format, and synthetic workload
// generators over the class K_{d,m} of the paper (constraint databases
// with at most m distinct polynomials of degree at most d).

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "base/logging.h"
#include "base/trace.h"
#include "constraint/atom.h"
#include "poly/upoly.h"

namespace ccdb_bench {

/// Processes the standard harness flags: `--trace-out=<file>` (or the
/// `CCDB_TRACE_OUT` env var) enables span tracing for the run and writes a
/// Chrome trace_event JSON file at exit. Call first thing in main().
inline void InitBenchTracing(int argc, char** argv) {
  static std::string trace_path;
  if (const char* env = std::getenv("CCDB_TRACE_OUT")) trace_path = env;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kFlag[] = "--trace-out=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      trace_path = argv[i] + (sizeof(kFlag) - 1);
    }
  }
  if (trace_path.empty()) return;
  ccdb::Tracer::Global().SetEnabled(true);
  std::atexit(+[] {
    ccdb::Status status = ccdb::Tracer::Global().WriteChromeTrace(trace_path);
    if (status.ok()) {
      std::fprintf(stderr, "trace: wrote %zu span(s) to %s\n",
                   ccdb::Tracer::Global().size(), trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace: %s\n", status.ToString().c_str());
    }
  });
}

inline double TimeSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

inline void Header(const std::string& experiment, const std::string& claim) {
  std::printf("=======================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("=======================================================\n");
}

inline void Row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vprintf(format, args);
  va_end(args);
  std::printf("\n");
}

/// Random band relation over (x, y): a union of `tuples` generalized
/// tuples "a*x + b*y + c <= 0 and bounds", linear, with coefficient bit
/// length ~ `bits`.
inline ccdb::ConstraintRelation RandomLinearRelation(int tuples, int bits,
                                                     std::uint64_t seed,
                                                     bool bounded = true) {
  std::mt19937_64 rng(seed);
  std::int64_t bound = (1ll << std::min(bits, 40)) - 1;
  std::uniform_int_distribution<std::int64_t> dist(-bound, bound);
  ccdb::ConstraintRelation rel(2);
  for (int t = 0; t < tuples; ++t) {
    ccdb::GeneralizedTuple tuple;
    std::int64_t a = dist(rng), b = dist(rng), c = dist(rng);
    if (a == 0 && b == 0) a = 1;
    tuple.atoms.emplace_back(
        ccdb::Polynomial(a) * ccdb::Polynomial::Var(0) +
            ccdb::Polynomial(b) * ccdb::Polynomial::Var(1) +
            ccdb::Polynomial(c),
        ccdb::RelOp::kLe);
    // Keep every tuple bounded so aggregates stay defined. Unbounded
    // single-atom tuples keep DNF negation linear (for forall workloads).
    if (bounded)
    tuple.atoms.emplace_back(ccdb::Polynomial::Var(0).Pow(1) -
                                 ccdb::Polynomial(100),
                             ccdb::RelOp::kLe);
    if (bounded) {
      tuple.atoms.emplace_back(-ccdb::Polynomial::Var(0) -
                                   ccdb::Polynomial(100),
                               ccdb::RelOp::kLe);
      tuple.atoms.emplace_back(ccdb::Polynomial::Var(1) -
                                   ccdb::Polynomial(100),
                               ccdb::RelOp::kLe);
      tuple.atoms.emplace_back(-ccdb::Polynomial::Var(1) -
                                   ccdb::Polynomial(100),
                               ccdb::RelOp::kLe);
    }
    rel.AddTuple(std::move(tuple));
  }
  return rel;
}

/// Random univariate polynomial with `degree` and coefficients of bit
/// length ~ `bits`, guaranteed nonzero leading coefficient.
inline ccdb::UPoly RandomUPoly(int degree, int bits, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::int64_t bound = (1ll << std::min(bits, 40)) - 1;
  std::uniform_int_distribution<std::int64_t> dist(-bound, bound);
  std::vector<ccdb::Rational> coeffs;
  for (int i = 0; i <= degree; ++i) {
    coeffs.emplace_back(ccdb::BigInt(dist(rng)));
  }
  if (coeffs.back().is_zero()) coeffs.back() = ccdb::Rational(1);
  return ccdb::UPoly(std::move(coeffs));
}

}  // namespace ccdb_bench

#endif  // CCDB_BENCH_BENCH_UTIL_H_
