// Experiment E5 — Theorem 4.1: FO^R_QE is strictly more expressive than
// FO^F_QE, because the QE algorithm must manipulate integers polynomially
// larger than the input: under a fixed bit budget k, multiplicative
// queries whose inputs fit comfortably become UNDEFINED.
//
// The harness measures, for multiplication-heavy queries over inputs of
// bit length l, the bit length the pipeline actually materializes, and the
// fraction of random queries that are undefined at budget k = 2l (defined
// would mean no growth; Theorem 4.1 predicts undefined outcomes).

#include "bench_util.h"
#include "fp/fp_semantics.h"

using namespace ccdb;

namespace {

// exists y (y = a*x^2 + b and y^2 = c): squaring forces coefficient
// products of bit length ~2l.
Formula MultiplicativeQuery(std::int64_t a, std::int64_t b, std::int64_t c) {
  Polynomial x = Polynomial::Var(0);
  Polynomial y = Polynomial::Var(1);
  return Formula::Exists(
      1, Formula::And(
             Formula::MakeAtom(
                 Atom(y - Polynomial(a) * x.Pow(2) - Polynomial(b),
                      RelOp::kEq)),
             Formula::MakeAtom(
                 Atom(y.Pow(2) - Polynomial(c), RelOp::kEq))));
}

}  // namespace

int main(int argc, char** argv) {
  ccdb_bench::InitBenchTracing(argc, argv);
  ccdb_bench::Header(
      "E5: finite precision is strictly weaker (Theorem 4.1)",
      "the QE algorithm needs integers polynomially larger than the input; "
      "multiplicative queries overflow Z_k for k proportional to the input");

  ccdb_bench::Row("%-8s %12s %14s %16s %16s", "l bits", "input max",
                  "pipeline bits", "defined @ k=l", "defined @ k=4l");
  std::mt19937_64 rng(99);
  for (int l : {4, 6, 8, 10, 12}) {
    std::int64_t bound = (1ll << l) - 1;
    std::uniform_int_distribution<std::int64_t> dist(bound / 2 + 1, bound);
    int defined_tight = 0, defined_loose = 0, trials = 5;
    std::uint64_t max_pipeline_bits = 0;
    for (int t = 0; t < trials; ++t) {
      Formula query =
          MultiplicativeQuery(dist(rng), dist(rng), dist(rng));
      FpQeStats stats;
      auto tight = EliminateQuantifiersFp(query, 1,
                                          FpContext{static_cast<uint32_t>(l)},
                                          &stats);
      if (tight.ok()) ++defined_tight;
      max_pipeline_bits = std::max(max_pipeline_bits, stats.max_bits);
      auto loose = EliminateQuantifiersFp(
          query, 1, FpContext{static_cast<uint32_t>(4 * l)}, &stats);
      if (loose.ok()) ++defined_loose;
    }
    ccdb_bench::Row("%-8d %12lld %14llu %13d/%d %13d/%d", l,
                    static_cast<long long>(bound),
                    static_cast<unsigned long long>(max_pipeline_bits),
                    defined_tight, trials, defined_loose, trials);
  }
  ccdb_bench::Row("");
  ccdb_bench::Row(
      "expected shape: pipeline bits ~ 2-3x input bits (growth from "
      "products/resultants), so k = l is mostly undefined while k = 4l is "
      "defined — the separation engine of Theorem 4.1");
  return 0;
}
