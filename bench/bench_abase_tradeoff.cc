// Experiment E11 — the a-base trade-off discussed in Section 5/6 of the
// paper: "small intervals reduce the errors but increase the complexity.
// A good compromise seems to select an a-base according to the database".
//
// The harness sweeps (a) the approximation order k at a fixed a-base and
// (b) the number of a-base pieces at a fixed order, reporting the
// measured max error of the piecewise approximant and its construction
// cost — the two axes of the paper's compromise.

#include <cmath>

#include "bench_util.h"
#include "numeric/approx.h"

using namespace ccdb;

namespace {

// Max error of the piecewise approximant of `kind` over the a-base.
double PiecewiseError(const ApproxModule& module, AnalyticKind kind,
                      const ABase& abase) {
  double max_error = 0.0;
  for (const Interval& piece : abase.Intervals()) {
    auto result = module.Approximate(kind, piece);
    if (!result.ok()) continue;
    max_error = std::max(max_error, result->max_error_estimate);
  }
  return max_error;
}

}  // namespace

int main(int argc, char** argv) {
  ccdb_bench::InitBenchTracing(argc, argv);
  ccdb_bench::Header(
      "E11: a-base granularity vs approximation error (Section 5 "
      "discussion)",
      "smaller intervals / higher order reduce error but cost more "
      "approximation work");

  ABase coarse = ABase::Uniform(Rational(-4), Rational(4), 4);

  ccdb_bench::Row("sweep 1: order k, fixed a-base of 4 pieces on [-4, 4]");
  ccdb_bench::Row("%-6s %14s %14s %12s", "k", "exp max err", "sin max err",
                  "time [ms]");
  for (int order : {2, 4, 6, 8, 12, 16}) {
    ApproxModule module(order);
    double exp_err = 0.0, sin_err = 0.0;
    double elapsed = ccdb_bench::TimeSeconds([&] {
      exp_err = PiecewiseError(module, AnalyticKind::kExp, coarse);
      sin_err = PiecewiseError(module, AnalyticKind::kSin, coarse);
    });
    ccdb_bench::Row("%-6d %14.3e %14.3e %12.3f", order, exp_err, sin_err,
                    elapsed * 1e3);
  }

  ccdb_bench::Row("");
  ccdb_bench::Row("sweep 2: number of pieces, fixed order k = 4");
  ccdb_bench::Row("%-8s %14s %14s %14s %12s", "pieces", "exp max err",
                  "sin max err", "approx calls", "time [ms]");
  for (int pieces : {2, 4, 8, 16, 32, 64}) {
    ABase abase = ABase::Uniform(Rational(-4), Rational(4), pieces);
    ApproxModule module(4);
    double exp_err = 0.0, sin_err = 0.0;
    double elapsed = ccdb_bench::TimeSeconds([&] {
      exp_err = PiecewiseError(module, AnalyticKind::kExp, abase);
      sin_err = PiecewiseError(module, AnalyticKind::kSin, abase);
    });
    ccdb_bench::Row("%-8d %14.3e %14.3e %14llu %12.3f", pieces, exp_err,
                    sin_err,
                    static_cast<unsigned long long>(module.call_count()),
                    elapsed * 1e3);
  }

  ccdb_bench::Row("");
  ccdb_bench::Row("singular functions near a-base boundaries (the paper's "
                  "log(x-3) caveat): pieces touching the singularity admit "
                  "no bounded-error approximation and are excluded");
  ccdb_bench::Row("%-24s %10s", "piece", "log approx");
  for (int lo : {-1, 0, 1}) {
    Interval piece{Rational(lo), Rational(lo + 1)};
    ApproxModule module(6);
    auto result = module.Approximate(AnalyticKind::kLog, piece);
    ccdb_bench::Row("[%3d, %3d]%14s %10s", lo, lo + 1, "",
                    result.ok() ? "ok" : "rejected");
  }
  ccdb_bench::Row("");
  ccdb_bench::Row("expected shape: error falls geometrically in k and "
                  "polynomially in piece count, while work grows linearly "
                  "in piece count — the paper's stated compromise");
  return 0;
}
