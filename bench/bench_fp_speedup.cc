// Experiment E12 — the efficiency motivation of finite precision (paper,
// Sections 5/6): "finite precision computation to speed-up the costly CAD
// algorithm".
//
// In an exact pipeline, input coefficients of high precision (e.g. 53-bit
// dyadics from measured doubles) inflate every subresultant and
// sample-point computation. Rounding the DATA into F_k (the paper's
// approximate-values data model) before evaluation shrinks the bit
// lengths that flow through CAD. The harness runs the same nonlinear
// query over the same geometric configuration represented at different
// precisions and reports time, pipeline bit length, and answer drift.

#include <cmath>

#include "arith/floatk.h"
#include "bench_util.h"
#include "constraint/formula.h"
#include "qe/qe.h"

using namespace ccdb;

namespace {

// Rounds every coefficient of a polynomial into F_k.
Polynomial RoundPoly(const Polynomial& p, const FpFormat& format) {
  Polynomial out;
  for (const auto& [monomial, coeff] : p.terms()) {
    auto rounded = FloatK::FromRational(coeff, format, FpMode::kRound);
    Rational value = rounded.ok() ? rounded->ToRational() : coeff;
    out += Polynomial::Term(value, monomial);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ccdb_bench::InitBenchTracing(argc, argv);
  ccdb_bench::Header(
      "E12: finite precision speeds up the costly CAD (Sections 5/6)",
      "rounding data into F_k shrinks CAD coefficient growth; low k is "
      "faster at bounded answer drift");

  // An ellipse with "measured" (full double precision) coefficients.
  double a = 1.2345678901234567, b = 0.7654321098765432,
         c = 2.3456789012345678;
  Polynomial x = Polynomial::Var(0);
  Polynomial y = Polynomial::Var(1);
  Polynomial ellipse_exact =
      Polynomial(FloatK::FromDouble(a).ToRational()) * x.Pow(2) +
      Polynomial(FloatK::FromDouble(b).ToRational()) * y.Pow(2) -
      Polynomial(FloatK::FromDouble(c).ToRational());

  // Query: the x-extent of the ellipse: exists y (E(x,y) = 0).
  auto run = [&](const Polynomial& ellipse, double* seconds,
                 QeStats* stats) -> ConstraintRelation {
    Formula query =
        Formula::Exists(1, Formula::MakeAtom(Atom(ellipse, RelOp::kLe)));
    ConstraintRelation out;
    *seconds = ccdb_bench::TimeSeconds([&] {
      auto result = EliminateQuantifiers(query, 1, QeOptions{}, stats);
      CCDB_CHECK(result.ok());
      out = *result;
    });
    return out;
  };

  double exact_seconds = 0.0;
  QeStats exact_stats;
  ConstraintRelation exact_answer =
      run(ellipse_exact, &exact_seconds, &exact_stats);
  double true_extent = std::sqrt(c / a);

  ccdb_bench::Row("%-14s %12s %14s %16s %14s", "precision", "time [ms]",
                  "pipeline bits", "extent boundary", "drift");
  auto boundary_of = [](const ConstraintRelation& rel) -> double {
    // Largest x in the answer: bisection on membership over [0, 4].
    double lo = 0.0, hi = 4.0;
    for (int i = 0; i < 48; ++i) {
      double mid = 0.5 * (lo + hi);
      if (rel.Contains({FloatK::FromDouble(mid).ToRational()})) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  };
  double exact_boundary = boundary_of(exact_answer);
  ccdb_bench::Row("%-14s %12.2f %14llu %16.9f %14.2e", "exact (53b)",
                  exact_seconds * 1e3,
                  static_cast<unsigned long long>(
                      exact_stats.max_intermediate_bits),
                  exact_boundary, std::abs(exact_boundary - true_extent));

  for (std::uint32_t k : {24u, 16u, 12u, 8u}) {
    FpFormat format{k, 64};
    Polynomial rounded = RoundPoly(ellipse_exact, format);
    double seconds = 0.0;
    QeStats stats;
    ConstraintRelation answer = run(rounded, &seconds, &stats);
    double boundary = boundary_of(answer);
    char label[32];
    std::snprintf(label, sizeof(label), "F_%u rounded", k);
    ccdb_bench::Row("%-14s %12.2f %14llu %16.9f %14.2e", label,
                    seconds * 1e3,
                    static_cast<unsigned long long>(
                        stats.max_intermediate_bits),
                    boundary, std::abs(boundary - true_extent));
  }
  ccdb_bench::Row("");
  ccdb_bench::Row("true extent sqrt(c/a) = %.9f", true_extent);
  ccdb_bench::Row(
      "expected shape: pipeline bits drop with k (the resource the paper's "
      "efficiency argument is about) while the answer drifts only by "
      "~2^-k; wall-clock follows the bits once degrees grow");
  return 0;
}
