// Experiment E9 — Theorems 4.7/4.8: Datalog¬ with inflationary semantics
// under the finite precision semantics is in PTIME (it contrasts with the
// exact semantics, where Datalog¬ captures all Turing-computable queries).
//
// The harness evaluates the transitive closure of a unit-step segment
// relation with growing diameter D: the inflationary fixpoint needs ~D
// iterations and each iteration is one QE call — total time polynomial in
// D. It also shows the Z_k budget turning a diverging program into a
// defined "undefined" answer after polynomially many rounds.

#include "bench_util.h"
#include "datalog/datalog.h"

using namespace ccdb;

namespace {

Polynomial V(int i) { return Polynomial::Var(i); }

DatalogProgram ClosureProgram() {
  DatalogProgram program;
  program.idb_arities["Reach"] = 2;
  DatalogRule base;
  base.head = "Reach";
  base.head_vars = {0, 1};
  base.body.push_back(DatalogLiteral::Rel("Edge", {0, 1}));
  program.rules.push_back(base);
  DatalogRule inductive;
  inductive.head = "Reach";
  inductive.head_vars = {0, 1};
  inductive.body.push_back(DatalogLiteral::Rel("Reach", {0, 2}));
  inductive.body.push_back(DatalogLiteral::Rel("Edge", {2, 1}));
  program.rules.push_back(inductive);
  return program;
}

ConstraintRelation SegmentEdge(int diameter) {
  // Edge(x, y) := y = x + 1 and 0 <= x <= diameter - 1.
  ConstraintRelation edge(2);
  GeneralizedTuple t;
  t.atoms.emplace_back(V(1) - V(0) - Polynomial(1), RelOp::kEq);
  t.atoms.emplace_back(-V(0), RelOp::kLe);
  t.atoms.emplace_back(V(0) - Polynomial(diameter - 1), RelOp::kLe);
  edge.AddTuple(std::move(t));
  return edge;
}

}  // namespace

int main(int argc, char** argv) {
  ccdb_bench::InitBenchTracing(argc, argv);
  ccdb_bench::Header(
      "E9: inflationary Datalog fixpoint in PTIME (Theorems 4.7/4.8)",
      "iterations grow linearly with the diameter, total time "
      "polynomially; a Z_k budget cuts diverging programs off");

  ccdb_bench::Row("%-10s %12s %10s %12s %10s", "diameter", "iterations",
                  "QE calls", "time [ms]", "ratio");
  double previous = 0.0;
  for (int diameter : {2, 4, 8, 16}) {
    DatalogProgram program = ClosureProgram();
    std::map<std::string, ConstraintRelation> edb;
    edb.emplace("Edge", SegmentEdge(diameter));
    DatalogOptions options;
    options.max_iterations = diameter + 8;
    options.qe.pool = ccdb_bench::Pool();
    DatalogStats stats;
    double elapsed = ccdb_bench::TimeSeconds([&] {
      auto result = EvaluateDatalog(program, edb, options, &stats);
      CCDB_CHECK_MSG(result.ok(), result.status().ToString());
    });
    ccdb_bench::RecordCell("closure_d" + std::to_string(diameter), elapsed);
    ccdb_bench::Row("%-10d %12d %10llu %12.2f %10.2f", diameter,
                    stats.iterations,
                    static_cast<unsigned long long>(stats.qe_calls),
                    elapsed * 1e3, previous > 0 ? elapsed / previous : 0.0);
    previous = elapsed;
  }

  // Wide program: one closure per independent segment relation — R rules
  // with disjoint heads, so every inflationary round evaluates R rule
  // bodies that the pool can fan out (--threads sweep; rule-order merge
  // keeps the fixpoint identical at every width).
  ccdb_bench::Row("");
  ccdb_bench::Row("wide program (threads=%d):", ccdb_bench::BenchThreads());
  ccdb_bench::Row("%-10s %12s %10s %12s", "rules", "iterations", "QE calls",
                  "time [ms]");
  for (int width : {4, 16}) {
    DatalogProgram wide;
    std::map<std::string, ConstraintRelation> edb;
    for (int r = 0; r < width; ++r) {
      std::string reach = "Reach" + std::to_string(r);
      std::string edge = "Edge" + std::to_string(r);
      wide.idb_arities[reach] = 2;
      DatalogRule base;
      base.head = reach;
      base.head_vars = {0, 1};
      base.body.push_back(DatalogLiteral::Rel(edge, {0, 1}));
      wide.rules.push_back(base);
      DatalogRule inductive;
      inductive.head = reach;
      inductive.head_vars = {0, 1};
      inductive.body.push_back(DatalogLiteral::Rel(reach, {0, 2}));
      inductive.body.push_back(DatalogLiteral::Rel(edge, {2, 1}));
      wide.rules.push_back(inductive);
      edb.emplace(edge, SegmentEdge(6 + r % 4));
    }
    DatalogOptions options;
    options.max_iterations = 24;
    options.qe.pool = ccdb_bench::Pool();
    DatalogStats stats;
    double elapsed = ccdb_bench::TimeSeconds([&] {
      auto result = EvaluateDatalog(wide, edb, options, &stats);
      CCDB_CHECK_MSG(result.ok(), result.status().ToString());
    });
    ccdb_bench::RecordCell("wide_r" + std::to_string(width), elapsed);
    ccdb_bench::Row("%-10d %12d %10llu %12.2f", 2 * width, stats.iterations,
                    static_cast<unsigned long long>(stats.qe_calls),
                    elapsed * 1e3);
  }

  ccdb_bench::Row("");
  ccdb_bench::Row("diverging doubling program under Z_k budgets:");
  ccdb_bench::Row("%-8s %14s %14s", "k", "outcome", "iterations");
  for (std::uint32_t k : {4u, 8u, 16u, 32u}) {
    DatalogProgram doubling;
    doubling.idb_arities["D"] = 1;
    DatalogRule seed;
    seed.head = "D";
    seed.head_vars = {0};
    seed.body.push_back(
        DatalogLiteral::Constraint(Atom(V(0) - Polynomial(1), RelOp::kEq)));
    doubling.rules.push_back(seed);
    DatalogRule twice;
    twice.head = "D";
    twice.head_vars = {0};
    twice.body.push_back(DatalogLiteral::Rel("D", {1}));
    twice.body.push_back(DatalogLiteral::Constraint(
        Atom(V(0) - Polynomial(2) * V(1), RelOp::kEq)));
    doubling.rules.push_back(twice);
    DatalogOptions options;
    options.precision_k = k;
    options.max_iterations = 200;
    DatalogStats stats;
    auto result = EvaluateDatalog(doubling, {}, options, &stats);
    ccdb_bench::Row("%-8u %14s %14d", k,
                    result.ok() ? "fixpoint" : "undefined",
                    stats.iterations);
  }
  ccdb_bench::Row("");
  ccdb_bench::Row(
      "expected shape: closure iterations = diameter + 1 (then one "
      "confirming round); undefined cutoff arrives after ~k iterations of "
      "the doubling program (bit length grows by 1 per round) — exactly "
      "the PTIME-in-k bound of Theorem 4.7");
  return 0;
}
