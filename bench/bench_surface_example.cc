// Experiment E2 — Example 5.1/5.4 of the paper: the SURFACE aggregate.
//
//   SURFACE[x,y](S(x,y) and y <= 9)(z) = 27 - (F(4) - F(1)) = 18
//   with F(x) = 4/3 x^3 - 10 x^2 + 25 x.
//
// The harness evaluates the paper's query exactly, checks the
// antiderivative identity the paper spells out, and sweeps the clipping
// height to show the aggregate responds exactly to the region.

#include "bench_util.h"
#include "engine/database.h"
#include "numeric/quadrature.h"

using namespace ccdb;

int main(int argc, char** argv) {
  ccdb_bench::InitBenchTracing(argc, argv);
  ccdb_bench::Header("E2: SURFACE aggregate (Example 5.1/5.4)",
                     "SURFACE(S and y <= 9) = 18, via the primitive "
                     "F(x) = 4/3 x^3 - 10x^2 + 25x");

  // The paper's own computation: 27 - (F(4) - F(1)) = 18 where F is the
  // antiderivative of -(-4x^2 + 20x - 25)... reproduce it symbolically.
  UPoly integrand({Rational(-25), Rational(20), Rational(-4)});
  UPoly primitive = AntiDerivative(integrand);
  Rational f4 = primitive.Evaluate(Rational(4));
  Rational f1 = primitive.Evaluate(Rational(1));
  ccdb_bench::Row("F(4) - F(1) = %s (paper: -9)",
                  (f4 - f1).ToString().c_str());
  ccdb_bench::Row("27 - (F(4) - F(1)) = %s (paper: 18)",
                  (Rational(27) + (f4 - f1)).ToString().c_str());

  ConstraintDatabase db;
  CCDB_CHECK(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());

  double elapsed = 0.0;
  StatusOr<CalcFResult> area = Status::Internal("unset");
  elapsed = ccdb_bench::TimeSeconds([&] {
    area = db.Query("SURFACE[x, y](S(x, y) and y <= 9)(z)");
  });
  CCDB_CHECK(area.ok());
  ccdb_bench::Row("");
  ccdb_bench::Row("engine SURFACE = %s (%s) in %.3f ms",
                  area->scalar.exact_value.ToString().c_str(),
                  area->scalar.exact ? "exact" : "approx", elapsed * 1e3);

  // Sweep the clipping height: area(h) = integral over the clipped
  // parabola = (4/3) * ((h/4)^{3/2}) * 4 ... closed form: width at height
  // h is sqrt(h), region area = 2/3 * w * h with w = half-width... check
  // against independently computed exact values at perfect-square heights.
  ccdb_bench::Row("");
  ccdb_bench::Row("%-10s %16s %16s %8s", "clip h", "engine area",
                  "expected (2/3)wh", "exact?");
  for (int h : {1, 4, 9, 16, 25}) {
    std::string query = "SURFACE[x, y](S(x, y) and y <= " +
                        std::to_string(h) + ")(z)";
    auto result = db.Query(query);
    CCDB_CHECK(result.ok());
    // The parabola y = (2x-5)^2 clipped at height h spans half-width
    // sqrt(h)/2; area = (2/3) * (2 * sqrt(h)/2) * h = (2/3) sqrt(h) h.
    double expected = 2.0 / 3.0 * std::sqrt(static_cast<double>(h)) * h;
    ccdb_bench::Row("%-10d %16s %16.4f %8s", h,
                    result->scalar.exact
                        ? result->scalar.exact_value.ToString().c_str()
                        : "-",
                    expected, result->scalar.exact ? "yes" : "no");
  }
  bool match = area->scalar.exact && area->scalar.exact_value == Rational(18);
  ccdb_bench::Row("");
  ccdb_bench::Row("headline result matches paper: %s", match ? "yes" : "NO");
  return match ? 0 : 1;
}
