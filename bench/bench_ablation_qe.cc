// Ablation — the QE engine's design choices (DESIGN.md): the linear
// Fourier-Motzkin fast path, the equation-substitution pass, and the Thom
// derivative augmentation. Each is toggled independently on a workload
// that exercises it; the table shows what each buys.

#include "bench_util.h"
#include "constraint/formula.h"
#include "qe/qe.h"

using namespace ccdb;

namespace {

Polynomial X() { return Polynomial::Var(0); }
Polynomial Y() { return Polynomial::Var(1); }
Polynomial Z() { return Polynomial::Var(2); }

// Runs one configuration cell under the harness deadline (--deadline-ms):
// an exhausted cell reports nullopt and lands as `null` in the JSON row.
std::optional<double> RunQe(const Formula& query, int free_vars,
                            QeOptions options, QeStats* stats, bool* ok) {
  return ccdb_bench::GovernedCell(
      [&](const ResourceGovernor* gov) -> Status {
        options.governor = gov;
        auto result = EliminateQuantifiers(query, free_vars, options, stats);
        *ok = result.ok();
        if (!result.ok() &&
            result.status().code() == StatusCode::kResourceExhausted) {
          return result.status();
        }
        return Status::Ok();  // solver-level failures are reported via *ok
      });
}

}  // namespace

int main(int argc, char** argv) {
  ccdb_bench::InitBenchTracing(argc, argv);
  ccdb_bench::Header(
      "Ablation: QE engine design choices",
      "linear fast path, equation substitution, and Thom augmentation each "
      "carry a workload class");

  // Workload A: a linear query with many tuples — exercised by the
  // Fourier-Motzkin fast path; without it, the CAD pipeline does the same
  // job much more expensively.
  {
    ConstraintRelation data = ccdb_bench::RandomLinearRelation(6, 6, 12345);
    Formula query = Formula::Exists(1, Formula::Relation("R", {0, 1}));
    auto lookup = [&data](const std::string&) -> StatusOr<ConstraintRelation> {
      return data;
    };
    Formula instantiated = *query.InstantiateRelations(lookup);
    ccdb_bench::Row("workload A: linear projection, 6 tuples");
    ccdb_bench::Row("%-28s %12s %10s %12s", "configuration", "time [ms]",
                    "path", "cells");
    for (bool linear : {true, false}) {
      QeOptions options;
      options.allow_linear_fast_path = linear;
      QeStats stats;
      bool ok = false;
      std::optional<double> t = RunQe(instantiated, 1, options, &stats, &ok);
      ccdb_bench::RecordCell(linear ? "A/linear_on" : "A/linear_off", t);
      ccdb_bench::Row("%-28s %12s %10s %12zu",
                      linear ? "linear fast path ON" : "linear fast path OFF",
                      ccdb_bench::TableCell(t).c_str(),
                      stats.used_linear_path ? "FM" : "CAD",
                      stats.cad_cells);
    }
  }

  // Workload B: CALC_F-style defining equations — exists t1 t2
  // (t1 = h1(x) and t2 = h2(t1) and t2 <= c): the substitution pass peels
  // both quantifiers; without it, a 3-variable CAD over degree-8
  // polynomials runs.
  {
    // h1, h2: degree-4 dense polynomials with awkward dyadic coefficients.
    Polynomial h1;
    Polynomial h2;
    for (int i = 0; i <= 4; ++i) {
      Rational c1(BigInt(3 * i * i + 1), BigInt(1 << (i + 1)));
      Rational c2(BigInt(5 * i + 2), BigInt(1 << (5 - i)));
      h1 += Polynomial::Term(c1, Monomial::Var(0, i));
      h2 += Polynomial::Term(c2, Monomial::Var(1, i));
    }
    Formula query = Formula::Exists(
        1, Formula::Exists(
               2, Formula::And(
                      Formula::And(
                          Formula::MakeAtom(Atom(Y() - h1, RelOp::kEq)),
                          Formula::MakeAtom(Atom(Z() - h2, RelOp::kEq))),
                      Formula::MakeAtom(
                          Atom(Z() - Polynomial(100), RelOp::kLe)))));
    ccdb_bench::Row("");
    ccdb_bench::Row("workload B: chained defining equations (CALC_F shape)");
    ccdb_bench::Row("%-28s %12s %12s", "configuration", "time [ms]", "cells");
    for (bool substitution : {true, false}) {
      QeOptions options;
      options.allow_equation_substitution = substitution;
      QeStats stats;
      bool ok = false;
      std::optional<double> t = RunQe(query, 1, options, &stats, &ok);
      ccdb_bench::RecordCell(substitution ? "B/subst_on" : "B/subst_off", t);
      ccdb_bench::Row("%-28s %12s %12zu",
                      substitution ? "equation substitution ON"
                                   : "equation substitution OFF",
                      ccdb_bench::TableCell(t).c_str(), stats.cad_cells);
    }
  }

  // Workload C: a query whose output needs Thom augmentation — the answer
  // {x : x^2 = 2} has two cells (±sqrt 2) with the same sign vector on
  // {x^2 - 2} but here we ask for just one of them, so plain sign vectors
  // cannot express the answer and the derivative x is added.
  {
    // Q(x) = exists y (y^2 = 2 and x = y + y^2 and y > 0): the answer is
    // the single algebraic point x = 2 + sqrt2; its mirror 2 - sqrt2 is a
    // false cell on the same projection factor, so plain sign vectors
    // collide and the derivative (Thom) augmentation must discriminate.
    Formula query = Formula::Exists(
        1, Formula::And(
               Formula::MakeAtom(
                   Atom(Y().Pow(2) - Polynomial(2), RelOp::kEq)),
               Formula::And(
                   Formula::MakeAtom(
                       Atom(X() - Y() - Y().Pow(2), RelOp::kEq)),
                   Formula::MakeAtom(Atom(Y(), RelOp::kGt)))));
    ccdb_bench::Row("");
    ccdb_bench::Row("workload C: asymmetric root selection (x = 2 + sqrt2 "
                    "only)");
    ccdb_bench::Row("%-28s %12s %10s %8s", "configuration", "time [ms]",
                    "thom used", "solved");
    for (bool thom : {true, false}) {
      QeOptions options;
      options.allow_thom_augmentation = thom;
      QeStats stats;
      bool ok = false;
      std::optional<double> t = RunQe(query, 1, options, &stats, &ok);
      ccdb_bench::RecordCell(thom ? "C/thom_on" : "C/thom_off", t);
      ccdb_bench::Row("%-28s %12s %10s %8s",
                      thom ? "Thom augmentation ON" : "Thom augmentation OFF",
                      ccdb_bench::TableCell(t).c_str(),
                      stats.used_thom_augmentation ? "yes" : "no",
                      ok ? "yes" : "NO");
    }
  }

  ccdb_bench::Row("");
  ccdb_bench::Row(
      "expected shape: each switch carries its workload — FM beats CAD on "
      "linear data, substitution avoids a 3-var CAD entirely, and the "
      "asymmetric-root query is UNSOLVABLE without Thom augmentation");
  return 0;
}
