// Experiment E4 — Theorem 3.2: the NUMERICAL EVALUATION step (extracting
// eps-approximate solutions from quantifier-free output) is PTIME in the
// data: polynomial in the coefficient bit length l, the number of distinct
// polynomials m, and the degree d, for fixed arity and fixed eps.
//
// Sweeps each of the three parameters independently.

#include "bench_util.h"
#include "numeric/numerical_eval.h"
#include "poly/root_isolation.h"

using namespace ccdb;

namespace {

ConstraintRelation EquationRelation(const UPoly& p) {
  ConstraintRelation rel(1);
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(p.ToPolynomial(0), RelOp::kEq);
  rel.AddTuple(std::move(tuple));
  return rel;
}

}  // namespace

int main(int argc, char** argv) {
  ccdb_bench::InitBenchTracing(argc, argv);
  ccdb_bench::Header(
      "E4: NUMERICAL EVALUATION in PTIME (Theorem 3.2)",
      "eps-approximation of all solutions is polynomial in bit length, "
      "polynomial count, and degree");

  Rational eps(BigInt(1), BigInt::Pow2(30));

  ccdb_bench::Row("sweep 1: coefficient bit length l (degree 6, eps = 2^-30)");
  ccdb_bench::Row("%-8s %8s %12s %10s", "l bits", "roots", "time [ms]",
                  "ratio");
  double previous = 0.0;
  for (int bits : {4, 8, 16, 32}) {
    UPoly p = ccdb_bench::RandomUPoly(6, bits, 1000 + bits);
    std::size_t roots = 0;
    double elapsed = ccdb_bench::TimeSeconds([&] {
      auto result = ApproximateSolutions(EquationRelation(p), eps);
      CCDB_CHECK(result.ok());
      roots = result->size();
    });
    ccdb_bench::Row("%-8d %8zu %12.3f %10.2f", bits, roots, elapsed * 1e3,
                    previous > 0 ? elapsed / previous : 0.0);
    previous = elapsed;
  }

  ccdb_bench::Row("");
  ccdb_bench::Row("sweep 2: number of polynomials m (conjunction of point "
                  "sets, degree 4, 8-bit coefficients)");
  ccdb_bench::Row("%-8s %12s %10s", "m", "time [ms]", "ratio");
  previous = 0.0;
  for (int m : {1, 2, 4, 8, 16}) {
    ConstraintRelation rel(1);
    for (int i = 0; i < m; ++i) {
      GeneralizedTuple tuple;
      UPoly p = ccdb_bench::RandomUPoly(4, 8, 500 + i);
      tuple.atoms.emplace_back(p.ToPolynomial(0), RelOp::kEq);
      rel.AddTuple(std::move(tuple));
    }
    double elapsed = ccdb_bench::TimeSeconds([&] {
      auto result = ApproximateSolutions(rel, eps);
      CCDB_CHECK(result.ok());
    });
    ccdb_bench::Row("%-8d %12.3f %10.2f", m, elapsed * 1e3,
                    previous > 0 ? elapsed / previous : 0.0);
    previous = elapsed;
  }

  ccdb_bench::Row("");
  ccdb_bench::Row("sweep 3: degree d (8-bit coefficients)");
  ccdb_bench::Row("%-8s %8s %12s %10s", "d", "roots", "time [ms]", "ratio");
  previous = 0.0;
  for (int degree : {2, 4, 8, 12, 16}) {
    UPoly p = ccdb_bench::RandomUPoly(degree, 8, 2000 + degree);
    std::size_t roots = 0;
    double elapsed = ccdb_bench::TimeSeconds([&] {
      auto result = ApproximateSolutions(EquationRelation(p), eps);
      CCDB_CHECK(result.ok());
      roots = result->size();
    });
    ccdb_bench::Row("%-8d %8zu %12.3f %10.2f", degree, roots, elapsed * 1e3,
                    previous > 0 ? elapsed / previous : 0.0);
    previous = elapsed;
  }

  ccdb_bench::Row("");
  ccdb_bench::Row("sweep 4: precision eps = 2^-b (fixed degree-6 input) — "
                  "paper: complexity polynomial in log(1/eps)");
  ccdb_bench::Row("%-8s %12s %10s", "b", "time [ms]", "ratio");
  previous = 0.0;
  UPoly fixed = ccdb_bench::RandomUPoly(6, 8, 77);
  for (int b : {10, 20, 40, 80, 160}) {
    Rational fine_eps(BigInt(1), BigInt::Pow2(b));
    double elapsed = ccdb_bench::TimeSeconds([&] {
      auto result = ApproximateSolutions(EquationRelation(fixed), fine_eps);
      CCDB_CHECK(result.ok());
    });
    ccdb_bench::Row("%-8d %12.3f %10.2f", b, elapsed * 1e3,
                    previous > 0 ? elapsed / previous : 0.0);
    previous = elapsed;
  }
  ccdb_bench::Row("");
  ccdb_bench::Row("expected shape: all four sweeps polynomial (bounded "
                  "ratios); doubling precision roughly doubles work");
  return 0;
}
