// Experiment E3 — Theorem 3.1 [KKR90]: first-order queries on constraint
// databases have PTIME data complexity.
//
// The harness grows the DATA (number of generalized tuples) while keeping
// the QUERY fixed, and reports evaluation time. PTIME data complexity
// predicts polynomial growth; the time ratio column should stay roughly
// bounded as n doubles (a super-polynomial blowup would show exploding
// ratios).

#include "bench_util.h"
#include "constraint/formula.h"
#include "qe/qe.h"

using namespace ccdb;

int main(int argc, char** argv) {
  ccdb_bench::InitBenchTracing(argc, argv);
  ccdb_bench::Header(
      "E3: PTIME data complexity of FO queries (Theorem 3.1)",
      "evaluation time grows polynomially with the number of generalized "
      "tuples");

  // Fixed query: Q(x) = exists y R(x, y) — projection of a 2-ary linear
  // constraint relation.
  ccdb_bench::Row("%-10s %14s %14s %12s", "tuples n", "output tuples",
                  "time [ms]", "ratio vs n/2");
  double previous = 0.0;
  for (int n : {4, 8, 16, 32, 64, 128}) {
    ConstraintRelation data = ccdb_bench::RandomLinearRelation(n, 8, 42 + n);
    Formula query = Formula::Exists(1, Formula::Relation("R", {0, 1}));
    auto lookup = [&data](const std::string&) -> StatusOr<ConstraintRelation> {
      return data;
    };
    Formula instantiated = *query.InstantiateRelations(lookup);
    ConstraintRelation output;
    double elapsed = ccdb_bench::TimeSeconds([&] {
      auto result = EliminateQuantifiers(instantiated, 1);
      CCDB_CHECK(result.ok());
      output = *result;
    });
    ccdb_bench::Row("%-10d %14zu %14.3f %12.2f", n, output.tuples().size(),
                    elapsed * 1e3,
                    previous > 0 ? elapsed / previous : 0.0);
    previous = elapsed;
  }

  ccdb_bench::Row("");
  ccdb_bench::Row("Same sweep with a quantifier alternation "
                  "(forall y exists z):");
  ccdb_bench::Row("%-10s %14s %12s", "tuples n", "time [ms]", "ratio");
  previous = 0.0;
  for (int n : {2, 4, 8, 16, 32}) {
    ConstraintRelation data =
        ccdb_bench::RandomLinearRelation(n, 6, 7 + n, /*bounded=*/false);
    // Q(x) = forall y (R(x,y) -> exists z (R(x,z) and z >= y)).
    Formula query = Formula::Forall(
        1, Formula::Or(
               Formula::Not(Formula::Relation("R", {0, 1})),
               Formula::Exists(
                   2, Formula::And(
                          Formula::Relation("R", {0, 2}),
                          Formula::MakeAtom(Atom(
                              Polynomial::Var(1) - Polynomial::Var(2),
                              RelOp::kLe))))));
    auto lookup = [&data](const std::string&) -> StatusOr<ConstraintRelation> {
      return data;
    };
    Formula instantiated = *query.InstantiateRelations(lookup);
    double elapsed = ccdb_bench::TimeSeconds([&] {
      auto result = EliminateQuantifiers(instantiated, 1);
      CCDB_CHECK(result.ok());
    });
    ccdb_bench::Row("%-10d %14.3f %12.2f", n, elapsed * 1e3,
                    previous > 0 ? elapsed / previous : 0.0);
    previous = elapsed;
  }
  ccdb_bench::Row("");
  ccdb_bench::Row("expected shape: ratios bounded by a constant power of 2 "
                  "(polynomial scaling), no doubly-exponential blowup in n");
  return 0;
}
