// Experiment E6 — Theorem 4.2 / Lemma 4.4 (linear case): over linear
// constraints, "all the integers obtained during the computation of a
// linear query have a bit length linearly bounded by the bit length of the
// coefficients of the input database": max_bits <= c * k with a constant c
// depending only on the query.
//
// The harness sweeps the input bit length over two fixed linear queries
// and prints the growth factor max_bits / input_bits, which must stay
// bounded by a constant (compare E5 where multiplication breaks this).

#include "bench_util.h"
#include "fp/fp_semantics.h"

using namespace ccdb;

namespace {

Formula ProjectionQuery(const ConstraintRelation& data) {
  Formula query = Formula::Exists(1, Formula::Relation("R", {0, 1}));
  auto lookup = [&data](const std::string&) -> StatusOr<ConstraintRelation> {
    return data;
  };
  return *query.InstantiateRelations(lookup);
}

Formula AlternationQuery(const ConstraintRelation& data) {
  // forall y (R(x,y) -> exists z (R(x,z) and z <= y)).
  Formula query = Formula::Forall(
      1,
      Formula::Or(Formula::Not(Formula::Relation("R", {0, 1})),
                  Formula::Exists(
                      2, Formula::And(Formula::Relation("R", {0, 2}),
                                      Formula::MakeAtom(Atom(
                                          Polynomial::Var(2) -
                                              Polynomial::Var(1),
                                          RelOp::kLe))))));
  auto lookup = [&data](const std::string&) -> StatusOr<ConstraintRelation> {
    return data;
  };
  return *query.InstantiateRelations(lookup);
}

}  // namespace

int main(int argc, char** argv) {
  ccdb_bench::InitBenchTracing(argc, argv);
  ccdb_bench::Header(
      "E6: linear queries have linear bit growth (Theorem 4.2, Lemma 4.4)",
      "max intermediate bit length <= c * input bit length, c "
      "query-dependent only");

  ccdb_bench::Row("query 1: exists y R(x, y)  (projection)");
  ccdb_bench::Row("%-10s %14s %14s %8s", "input bits", "pipeline bits",
                  "growth c", "defined");
  for (int bits : {4, 8, 12, 16, 20, 24, 28, 32}) {
    ConstraintRelation data =
        ccdb_bench::RandomLinearRelation(6, bits, 300 + bits);
    std::uint64_t input_bits = data.MaxCoefficientBitLength();
    FpQeStats stats;
    StatusOr<ConstraintRelation> result = Status::Internal("unreached");
    double seconds = ccdb_bench::TimeSeconds([&] {
      result = EliminateQuantifiersFp(ProjectionQuery(data), 1,
                                      FpContext{1u << 20}, &stats);
    });
    ccdb_bench::RecordCell("projection_b" + std::to_string(bits), seconds);
    ccdb_bench::Row("%-10llu %14llu %14.2f %8s",
                    static_cast<unsigned long long>(input_bits),
                    static_cast<unsigned long long>(stats.max_bits),
                    input_bits > 0
                        ? static_cast<double>(stats.max_bits) / input_bits
                        : 0.0,
                    result.ok() ? "yes" : "no");
  }

  ccdb_bench::Row("");
  ccdb_bench::Row("query 2: forall y (R(x,y) -> exists z (R(x,z), z <= y))");
  ccdb_bench::Row("%-10s %14s %14s %8s", "input bits", "pipeline bits",
                  "growth c", "defined");
  for (int bits : {4, 8, 12, 16, 20}) {
    ConstraintRelation data = ccdb_bench::RandomLinearRelation(
        3, bits, 800 + bits, /*bounded=*/false);
    std::uint64_t input_bits = data.MaxCoefficientBitLength();
    FpQeStats stats;
    StatusOr<ConstraintRelation> result = Status::Internal("unreached");
    double seconds = ccdb_bench::TimeSeconds([&] {
      result = EliminateQuantifiersFp(AlternationQuery(data), 1,
                                      FpContext{1u << 20}, &stats);
    });
    ccdb_bench::RecordCell("alternation_b" + std::to_string(bits), seconds);
    ccdb_bench::Row("%-10llu %14llu %14.2f %8s",
                    static_cast<unsigned long long>(input_bits),
                    static_cast<unsigned long long>(stats.max_bits),
                    input_bits > 0
                        ? static_cast<double>(stats.max_bits) / input_bits
                        : 0.0,
                    result.ok() ? "yes" : "no");
  }
  ccdb_bench::Row("");
  ccdb_bench::Row(
      "expected shape: the growth column approaches a constant per query "
      "as input bits grow (Theorem 4.2: total linear queries never go "
      "undefined once k exceeds c * input bits); contrast with E5");
  return 0;
}
