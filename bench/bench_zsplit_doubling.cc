// Experiment E7 — Lemma 4.5 / Theorem 4.3: the relations of Z^{l/u}_{2k}
// are first-order definable in Z^{l/u}_k (and, iterating, any Z^{l/u}_{2^i k}).
//
// The harness (a) validates the doubling construction EXHAUSTIVELY for
// small k against native 2k-bit arithmetic, (b) reports the simulation
// cost: how many k-bit primitive operations one 2k-bit operation costs,
// and (c) stacks two levels (4k from k).

#include "arith/zsplit.h"
#include "bench_util.h"

using namespace ccdb;

int main(int argc, char** argv) {
  ccdb_bench::InitBenchTracing(argc, argv);
  ccdb_bench::Header(
      "E7: the Z^{l/u}_2k doubling construction (Lemma 4.5, Theorem 4.3)",
      "2k-bit split arithmetic is definable from k-bit split arithmetic");

  ccdb_bench::Row("%-6s %10s %12s %12s %14s %14s", "k", "pairs",
                  "add errors", "mul errors", "ops/AddL(2k)", "ops/MulL(2k)");
  for (std::uint32_t k : {1u, 2u, 3u, 4u, 5u}) {
    SplitZk base(k);
    DoubledSplitZk doubled(&base);
    const std::int64_t modulus = 1ll << (2 * k);
    std::uint64_t add_errors = 0, mul_errors = 0;
    std::uint64_t add_ops = 0, mul_ops = 0, add_count = 0, mul_count = 0;
    for (std::int64_t a = 0; a < modulus; ++a) {
      for (std::int64_t b = 0; b < modulus; ++b) {
        SplitPair pa = doubled.Encode(BigInt(a));
        SplitPair pb = doubled.Encode(BigInt(b));
        base.ResetOpCount();
        BigInt add_l = doubled.Decode(doubled.AddL(pa, pb));
        add_ops += base.op_count();
        ++add_count;
        if (add_l.ToInt64() != (a + b) % modulus) ++add_errors;
        BigInt add_u = doubled.Decode(doubled.AddU(pa, pb));
        if (add_u.ToInt64() != (a + b) / modulus) ++add_errors;
        base.ResetOpCount();
        BigInt mul_l = doubled.Decode(doubled.MulL(pa, pb));
        mul_ops += base.op_count();
        ++mul_count;
        if (mul_l.ToInt64() != (a * b) % modulus) ++mul_errors;
        BigInt mul_u = doubled.Decode(doubled.MulU(pa, pb));
        if (mul_u.ToInt64() != (a * b) / modulus) ++mul_errors;
        if (doubled.Less(pa, pb) != (a < b)) ++add_errors;
      }
    }
    ccdb_bench::Row("%-6u %10lld %12llu %12llu %14.1f %14.1f", k,
                    static_cast<long long>(modulus * modulus),
                    static_cast<unsigned long long>(add_errors),
                    static_cast<unsigned long long>(mul_errors),
                    static_cast<double>(add_ops) / add_count,
                    static_cast<double>(mul_ops) / mul_count);
  }

  // Partial (Theorem 4.2 encoding) doubling: exhaustive for k = 3.
  ccdb_bench::Row("");
  ccdb_bench::Row("Theorem 4.2 partial-arithmetic doubling (k = 3):");
  {
    PartialZk base(3);
    DoubledPartialZk doubled(&base);
    const std::int64_t lo = -((1ll << 6) - (1ll << 3));
    const std::int64_t hi = (1ll << 6) - 1;
    std::uint64_t errors = 0, cases = 0, undefined_agree = 0;
    for (std::int64_t a = lo; a <= hi; ++a) {
      for (std::int64_t b = lo; b <= hi; ++b) {
        ++cases;
        auto sum = doubled.Add(doubled.Encode(BigInt(a)),
                               doubled.Encode(BigInt(b)));
        bool representable = a + b >= lo && a + b <= hi;
        if (sum.ok() != representable) {
          ++errors;
        } else if (sum.ok() && doubled.Decode(*sum).ToInt64() != a + b) {
          ++errors;
        } else if (!sum.ok()) {
          ++undefined_agree;
        }
      }
    }
    ccdb_bench::Row("  %llu cases, %llu errors, %llu correctly undefined",
                    static_cast<unsigned long long>(cases),
                    static_cast<unsigned long long>(errors),
                    static_cast<unsigned long long>(undefined_agree));
  }

  // Iterated doubling: 4k-bit words built from k-bit primitives only.
  ccdb_bench::Row("");
  ccdb_bench::Row("iterated doubling 4k <- 2k <- k (spot check, k = 2):");
  {
    SplitZk base(2);
    DoubledSplitZk level1(&base);
    SplitZk native4(4);
    std::uint64_t errors = 0;
    for (std::int64_t a = 0; a < 16; ++a) {
      for (std::int64_t b = 0; b < 16; ++b) {
        if (level1.Decode(level1.MulL(level1.Encode(BigInt(a)),
                                      level1.Encode(BigInt(b)))) !=
            native4.MulL(BigInt(a), BigInt(b))) {
          ++errors;
        }
      }
    }
    ccdb_bench::Row("  256 cases, %llu errors",
                    static_cast<unsigned long long>(errors));
  }
  ccdb_bench::Row("");
  ccdb_bench::Row("expected shape: zero errors everywhere; one simulated "
                  "2k-bit multiplication costs a constant (~20) k-bit ops — "
                  "the constant-depth FO-definability of Lemma 4.5");
  return 0;
}
