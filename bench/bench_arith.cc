// Arithmetic-substrate microbench: the small-value-optimized BigInt and
// Rational kernels in isolation, word-sized vs spilled operand mixes, so
// the inline-representation fast paths (DESIGN.md §14) have a trajectory
// of their own next to the end-to-end pipeline benches.
//
// Cells:
//   bigint_add_word / bigint_add_spilled     running sums
//   bigint_mul_word / bigint_mul_spilled     pairwise products
//   bigint_gcd_word / bigint_gcd_spilled     pairwise gcds
//   bigint_divmod_boundary                   quotients straddling the word
//   rational_add_integer                     den == 1: normalization skipped
//   rational_add_word                        word components: hardware gcd
//   rational_add_spilled                     limb components: generic path
//   rational_mul_word / rational_mul_spilled cross-reduction paths
//
// Every cell folds its results into a checksum that is printed in the
// table, so the work cannot be dead-code-eliminated and a representation
// bug shows up as a checksum diff across commits, not just a timing blip.

#include <cstdint>
#include <random>
#include <vector>

#include "bench_util.h"

using namespace ccdb;

namespace {

// Word-sized operands (never spill on add; products of the 30-bit slice
// stay inline too).
std::vector<BigInt> WordOperands(int count, int bits, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::int64_t bound = (1ll << bits) - 1;
  std::uniform_int_distribution<std::int64_t> dist(-bound, bound);
  std::vector<BigInt> values;
  values.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) values.emplace_back(dist(rng));
  return values;
}

// Spilled operands: `limbs` 32-bit limbs, always beyond the inline word.
std::vector<BigInt> SpilledOperands(int count, int limbs, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<BigInt> values;
  values.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    BigInt value = BigInt::Pow2(static_cast<std::uint64_t>(limbs) * 32 + 1);
    for (int l = 0; l < limbs; ++l) {
      value = value + BigInt(static_cast<std::int64_t>(rng() & 0x7fffffff))
                          .ShiftLeft(static_cast<std::uint64_t>(l) * 32);
    }
    values.push_back(rng() % 2 == 0 ? value : -value);
  }
  return values;
}

std::uint64_t Fold(std::uint64_t checksum, const BigInt& value) {
  return checksum * 1099511628211ull + value.Hash();
}

std::uint64_t Fold(std::uint64_t checksum, const Rational& value) {
  return checksum * 1099511628211ull + value.Hash();
}

struct CellResult {
  double seconds;
  std::uint64_t checksum;
};

template <typename Body>
CellResult RunCell(int repeats, const Body& body) {
  std::uint64_t checksum = 0;
  double seconds = ccdb_bench::TimeSeconds([&] {
    for (int r = 0; r < repeats; ++r) checksum = body(checksum);
  });
  return {seconds, checksum};
}

void Report(const char* name, const CellResult& result) {
  ccdb_bench::Row("%-24s %12.3f ms   checksum %016llx", name,
                  result.seconds * 1e3,
                  static_cast<unsigned long long>(result.checksum));
  ccdb_bench::RecordCell(name, result.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  ccdb_bench::InitBenchTracing(argc, argv);
  ccdb_bench::Header(
      "A1: small-value arithmetic kernels (DESIGN.md §14)",
      "word-sized operands run on checked hardware arithmetic; limb "
      "operands pay the generic path — the gap is the point");

  const int kCount = 4096;
  const std::vector<BigInt> word = WordOperands(kCount, 60, 11);
  const std::vector<BigInt> word30 = WordOperands(kCount, 30, 12);
  const std::vector<BigInt> spilled = SpilledOperands(kCount, 4, 13);

  ccdb_bench::Row("%-24s %15s   %s", "cell", "time", "result");

  // Pairwise ops (not running sums): a running word sum would spill after a
  // few terms and silently measure the limb path under a "word" label.
  Report("bigint_add_word", RunCell(64, [&](std::uint64_t checksum) {
           for (std::size_t i = 0; i + 1 < word.size(); i += 2) {
             checksum = Fold(checksum, word[i] + word[i + 1]);
           }
           return checksum;
         }));
  Report("bigint_add_spilled", RunCell(64, [&](std::uint64_t checksum) {
           for (std::size_t i = 0; i + 1 < spilled.size(); i += 2) {
             checksum = Fold(checksum, spilled[i] + spilled[i + 1]);
           }
           return checksum;
         }));
  Report("bigint_mul_word", RunCell(64, [&](std::uint64_t checksum) {
           for (std::size_t i = 0; i + 1 < word30.size(); i += 2) {
             checksum = Fold(checksum, word30[i] * word30[i + 1]);
           }
           return checksum;
         }));
  Report("bigint_mul_spilled", RunCell(16, [&](std::uint64_t checksum) {
           for (std::size_t i = 0; i + 1 < spilled.size(); i += 2) {
             checksum = Fold(checksum, spilled[i] * spilled[i + 1]);
           }
           return checksum;
         }));
  Report("bigint_gcd_word", RunCell(16, [&](std::uint64_t checksum) {
           for (std::size_t i = 0; i + 1 < word.size(); i += 2) {
             checksum = Fold(checksum, BigInt::Gcd(word[i], word[i + 1]));
           }
           return checksum;
         }));
  Report("bigint_gcd_spilled", RunCell(2, [&](std::uint64_t checksum) {
           for (std::size_t i = 0; i + 1 < spilled.size(); i += 2) {
             checksum = Fold(checksum, BigInt::Gcd(spilled[i], spilled[i + 1]));
           }
           return checksum;
         }));
  Report("bigint_divmod_boundary", RunCell(16, [&](std::uint64_t checksum) {
           for (std::size_t i = 0; i + 1 < spilled.size(); i += 2) {
             auto [q, r] = spilled[i].DivMod(word[i].is_zero() ? BigInt(3)
                                                               : word[i]);
             checksum = Fold(Fold(checksum, q), r);
           }
           return checksum;
         }));

  // Rational mixes. Integer rationals never touch a gcd at all; word
  // fractions reduce with the hardware gcd; spilled fractions take the
  // generic mpq-style path.
  std::vector<Rational> integers;
  std::vector<Rational> fractions;
  std::vector<Rational> wide;
  for (int i = 0; i < 512; ++i) {
    integers.emplace_back(word[static_cast<std::size_t>(i)]);
    fractions.emplace_back(word30[static_cast<std::size_t>(i)],
                           word30[static_cast<std::size_t>(i) + 512].Abs() +
                               BigInt(1));
    wide.emplace_back(spilled[static_cast<std::size_t>(i)],
                      spilled[static_cast<std::size_t>(i) + 512].Abs() +
                          BigInt(1));
  }

  Report("rational_add_integer", RunCell(64, [&](std::uint64_t checksum) {
           for (std::size_t i = 0; i + 1 < integers.size(); i += 2) {
             checksum = Fold(checksum, integers[i] + integers[i + 1]);
           }
           return checksum;
         }));
  Report("rational_add_word", RunCell(16, [&](std::uint64_t checksum) {
           for (std::size_t i = 0; i + 1 < fractions.size(); i += 2) {
             checksum = Fold(checksum, fractions[i] + fractions[i + 1]);
           }
           return checksum;
         }));
  Report("rational_add_spilled", RunCell(4, [&](std::uint64_t checksum) {
           for (std::size_t i = 0; i + 1 < wide.size(); i += 2) {
             checksum = Fold(checksum, wide[i] + wide[i + 1]);
           }
           return checksum;
         }));
  Report("rational_mul_word", RunCell(16, [&](std::uint64_t checksum) {
           for (std::size_t i = 0; i + 1 < fractions.size(); i += 2) {
             checksum = Fold(checksum, fractions[i] * fractions[i + 1]);
           }
           return checksum;
         }));
  Report("rational_mul_spilled", RunCell(4, [&](std::uint64_t checksum) {
           for (std::size_t i = 0; i + 1 < wide.size(); i += 2) {
             checksum = Fold(checksum, wide[i] * wide[i + 1]);
           }
           return checksum;
         }));

  ccdb_bench::Row("");
  ccdb_bench::Row(
      "expected shape: *_word cells sit well under their *_spilled "
      "counterparts; checksums are commit-stable (a diff means an "
      "arithmetic change, not noise)");
  ccdb_bench::WriteRunRecord("arith");
  return 0;
}
