// Experiment E10 — Theorem 5.5 / Corollary 5.6: every CALC_F query is
// evaluated in PTIME data complexity with polynomially many k-order
// approximation calls and aggregate module calls.
//
// The harness grows the database (tuples of a region relation) under a
// fixed CALC_F query mixing an aggregate and an analytic function, and
// reports time plus the two module-call counters the theorem bounds.

#include "bench_util.h"
#include "engine/database.h"

using namespace ccdb;

int main(int argc, char** argv) {
  ccdb_bench::InitBenchTracing(argc, argv);
  ccdb_bench::Header(
      "E10: CALC_F evaluation is PTIME with polynomially many module calls "
      "(Theorem 5.5, Corollary 5.6)",
      "time, approximation calls, and aggregate calls grow polynomially "
      "with the database size");

  ccdb_bench::Row("aggregate query: LENGTH[t](exists v (Bond(t, v)))(len) "
                  "over a piecewise relation with n pieces");
  ccdb_bench::Row("%-8s %10s %12s %12s %12s", "n", "agg calls",
                  "approx calls", "time [ms]", "ratio");
  double previous = 0.0;
  for (int n : {2, 4, 8, 16, 32}) {
    // Piecewise constant "price path" with n pieces on [0, n].
    std::string def = "Bond(t, v) := ";
    for (int i = 0; i < n; ++i) {
      if (i > 0) def += " or ";
      def += "(" + std::to_string(i) + " <= t and t <= " +
             std::to_string(i + 1) + " and v = " + std::to_string(100 + i) +
             ")";
    }
    ConstraintDatabase db;
    CCDB_CHECK(db.Define(def).ok());
    StatusOr<CalcFResult> result = Status::Internal("unset");
    double elapsed = ccdb_bench::TimeSeconds([&] {
      result = db.Query("LENGTH[t](exists v (Bond(t, v)))(len)");
    });
    CCDB_CHECK_MSG(result.ok(), result.status().ToString());
    ccdb_bench::Row("%-8d %10llu %12llu %12.2f %12.2f", n,
                    static_cast<unsigned long long>(
                        result->stats.aggregate_calls),
                    static_cast<unsigned long long>(
                        result->stats.approximation_calls),
                    elapsed * 1e3,
                    previous > 0 ? elapsed / previous : 0.0);
    previous = elapsed;
    // Sanity: length equals n exactly.
    CCDB_CHECK(result->scalar.exact_value ==
               Rational(static_cast<std::int64_t>(n)));
  }

  ccdb_bench::Row("");
  ccdb_bench::Row("analytic-function query: exists x (P(x) and y = exp(x)) "
                  "over a point relation with n points");
  ccdb_bench::Row("%-8s %12s %12s %12s", "n", "approx calls", "time [ms]",
                  "ratio");
  previous = 0.0;
  for (int n : {1, 2, 4, 8}) {
    std::string def = "P(x) := ";
    for (int i = 0; i < n; ++i) {
      if (i > 0) def += " or ";
      def += "x = " + std::to_string(i);
    }
    CalcFOptions options;
    options.approx_order = 6;
    options.abase = ABase::Uniform(Rational(-1), Rational(9), 10);
    ConstraintDatabase db(options);
    CCDB_CHECK(db.Define(def).ok());
    StatusOr<CalcFResult> result = Status::Internal("unset");
    double elapsed = ccdb_bench::TimeSeconds([&] {
      result = db.Query("exists x (P(x) and y = exp(x))");
    });
    CCDB_CHECK_MSG(result.ok(), result.status().ToString());
    ccdb_bench::Row("%-8d %12llu %12.2f %12.2f", n,
                    static_cast<unsigned long long>(
                        result->stats.approximation_calls),
                    elapsed * 1e3,
                    previous > 0 ? elapsed / previous : 0.0);
    previous = elapsed;
  }
  ccdb_bench::Row("");
  ccdb_bench::Row(
      "expected shape: aggregate calls stay at 1 per aggregate predicate; "
      "approximation calls are one per (function, a-base piece) — both "
      "polynomial (here: constant / linear), matching Theorem 5.5");
  return 0;
}
