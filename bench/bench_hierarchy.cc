// Experiment E8 — Proposition 4.6: the arithmetic hierarchy
// FO(<=) ⊂ FO(<=, +) ⊂ FO(<=, +, *) carries over to the finite precision
// semantics.
//
// The harness demonstrates each level with witness queries whose answers
// need exactly that level's arithmetic, and reports evaluation cost and
// engine path (order/linear levels ride Fourier-Motzkin, the
// multiplicative level needs CAD).

#include "bench_util.h"
#include "qe/qe.h"

using namespace ccdb;

int main(int argc, char** argv) {
  ccdb_bench::InitBenchTracing(argc, argv);
  ccdb_bench::Header(
      "E8: the arithmetic hierarchy FO(<=) < FO(<=,+) < FO(<=,+,*) "
      "(Proposition 4.6)",
      "each added operation strictly increases expressive power; engine "
      "cost rises with the level");

  Polynomial x = Polynomial::Var(0);
  Polynomial y = Polynomial::Var(1);
  Polynomial z = Polynomial::Var(2);

  struct Level {
    const char* name;
    const char* description;
    Formula query;
    std::vector<Rational> inside;
    std::vector<Rational> outside;
  };

  std::vector<Level> levels;
  // FO(<=): betweenness — definable with order alone.
  levels.push_back({"FO(<=)", "exists y (0 <= y and y <= x)  [x >= 0]",
                    Formula::Exists(
                        1, Formula::And(
                               Formula::MakeAtom(Atom(-y, RelOp::kLe)),
                               Formula::MakeAtom(Atom(y - x, RelOp::kLe)))),
                    {Rational(3)},
                    {Rational(-1)}});
  // FO(<=, +): midpoint — needs addition (not definable from order alone:
  // order queries are invariant under monotone bijections, which do not
  // preserve midpoints).
  levels.push_back(
      {"FO(<=,+)", "exists y (y + y = x and y >= 1)  [x >= 2]",
       Formula::Exists(
           1, Formula::And(
                  Formula::MakeAtom(Atom(y + y - x, RelOp::kEq)),
                  Formula::MakeAtom(Atom(Polynomial(1) - y, RelOp::kLe)))),
       {Rational(2), Rational(10)},
       {Rational(1)}});
  // FO(<=, +, *): squaring — needs multiplication (not definable with
  // linear constraints: linear queries preserve semi-linearity, and
  // {(x, x^2)} is not semi-linear).
  levels.push_back(
      {"FO(<=,+,*)", "exists y (y*y = x and y >= 0)  [x is a square]",
       Formula::Exists(
           1, Formula::And(Formula::MakeAtom(Atom(y * y - x, RelOp::kEq)),
                           Formula::MakeAtom(Atom(-y, RelOp::kLe)))),
       {Rational(4), Rational(2)},
       {Rational(-1)}});
  (void)z;

  ccdb_bench::Row("%-12s %10s %12s %16s", "level", "path", "time [ms]",
                  "answers check");
  for (Level& level : levels) {
    QeStats stats;
    ConstraintRelation result;
    double elapsed = ccdb_bench::TimeSeconds([&] {
      auto r = EliminateQuantifiers(level.query, 1, QeOptions{}, &stats);
      CCDB_CHECK(r.ok());
      result = *r;
    });
    bool ok = true;
    for (const Rational& v : level.inside) {
      if (!result.Contains({v})) ok = false;
    }
    for (const Rational& v : level.outside) {
      if (result.Contains({v})) ok = false;
    }
    ccdb_bench::Row("%-12s %10s %12.3f %16s", level.name,
                    stats.used_linear_path ? "linear" : "CAD",
                    elapsed * 1e3, ok ? "yes" : "NO");
    ccdb_bench::Row("    query: %s", level.description);
  }

  ccdb_bench::Row("");
  ccdb_bench::Row(
      "separation witnesses (semantic, spot-checked): the FO(<=,+) query "
      "distinguishes inputs that every order-automorphism-invariant FO(<=) "
      "query must identify (x -> x^3 preserves order but not midpoints); "
      "the FO(<=,+,*) answer set {x : x = y^2} is not semi-linear, hence "
      "outside FO(<=,+).");

  // Planned vs monolithic across the hierarchy: the structure-aware
  // planner classifies each witness into its level's fragment and
  // dispatches the matching engine (dense-order / Fourier-Motzkin / CAD),
  // while the monolithic path probes the whole matrix. Answers are
  // byte-identical either way; the per-level plan summary documents the
  // dispatch.
  ccdb_bench::Row("");
  ccdb_bench::Row("planned vs monolithic per level (threads=%d)",
                  ccdb_bench::BenchThreads());
  ccdb_bench::Row("%-12s %14s %14s", "level", "monolithic[ms]",
                  "planned[ms]");
  for (Level& level : levels) {
    std::string text[2];
    double ms[2] = {0.0, 0.0};
    std::string summary;
    for (int planned = 0; planned < 2; ++planned) {
      ms[planned] = ccdb_bench::TimeSeconds([&] {
        QeOptions options;
        options.pool = ccdb_bench::Pool();
        options.plan = planned ? PlanToggle::kOn : PlanToggle::kOff;
        QeStats stats;
        auto r = EliminateQuantifiers(level.query, 1, options, &stats);
        CCDB_CHECK(r.ok());
        text[planned] = r->ToString({"x"});
        if (planned) summary = stats.plan;
      });
      ccdb_bench::RecordCell(std::string("hier_") + level.name +
                                 (planned ? "_planned" : "_monolithic"),
                             ms[planned]);
    }
    CCDB_CHECK_MSG(text[0] == text[1],
                   "planned output differs from monolithic output");
    ccdb_bench::Row("%-12s %14.3f %14.3f", level.name, ms[0] * 1e3,
                    ms[1] * 1e3);
    ccdb_bench::Row("    plan: %s", summary.c_str());
  }
  return 0;
}
