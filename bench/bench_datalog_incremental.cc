// Experiment E13 — incremental re-fixpoint vs cold recompute.
//
// The closed loop a live deductive database runs: materialize the
// transitive closure of a unit-step chain, then repeatedly Insert one
// more segment and bring the closure up to date. The incremental path
// (ConstraintDatabase::Fixpoint resuming from the materialized state,
// semi-naive deltas seeded from the inserted tuples) needs O(1) small
// rounds per insert; the cold baseline (EvaluateDatalog from scratch on
// the same EDB) pays the full ~diameter rounds every time. The gap
// widens linearly with the diameter — the whole point of keeping
// per-relation versions and delta state around.

#include "bench_util.h"
#include "base/metrics.h"
#include "datalog/datalog.h"
#include "engine/database.h"

using namespace ccdb;

namespace {

DatalogProgram ClosureProgram() {
  DatalogProgram program;
  program.idb_arities["Reach"] = 2;
  DatalogRule base;
  base.head = "Reach";
  base.head_vars = {0, 1};
  base.body.push_back(DatalogLiteral::Rel("Edge", {0, 1}));
  program.rules.push_back(base);
  DatalogRule inductive;
  inductive.head = "Reach";
  inductive.head_vars = {0, 1};
  inductive.body.push_back(DatalogLiteral::Rel("Reach", {0, 2}));
  inductive.body.push_back(DatalogLiteral::Rel("Edge", {2, 1}));
  program.rules.push_back(inductive);
  return program;
}

std::string SegmentText(int lo, int hi) {
  return "Edge(x, y) := y - x - 1 = 0 and x >= " + std::to_string(lo) +
         " and x <= " + std::to_string(hi);
}

}  // namespace

int main(int argc, char** argv) {
  ccdb_bench::InitBenchTracing(argc, argv);
  ccdb_bench::Header(
      "E13: incremental re-fixpoint vs cold recompute (closed loop)",
      "after an Insert, resuming the materialized semi-naive state costs "
      "O(1) delta rounds; a cold recompute pays ~diameter rounds — the "
      "speedup grows linearly with the diameter");

  constexpr int kInserts = 6;
  Counter* resumes =
      MetricsRegistry::Global().GetCounter("datalog_fixpoint_resumes");

  ccdb_bench::Row("%-10s %12s %14s %14s %10s", "diameter", "cold [ms]",
                  "recompute[ms]", "increment[ms]", "speedup");
  for (int diameter : {4, 8, 12, 16}) {
    ConstraintDatabase db;
    Status defined = db.Define(SegmentText(0, diameter - 1));
    CCDB_CHECK_MSG(defined.ok(), defined.ToString().c_str());

    DatalogProgram program = ClosureProgram();
    DatalogOptions options;
    options.max_iterations = diameter + kInserts + 8;
    options.qe.pool = ccdb_bench::Pool();

    // Cold materialization: the one full fixpoint the loop amortizes.
    double cold = ccdb_bench::TimeSeconds([&] {
      auto result = db.Fixpoint(program, options);
      CCDB_CHECK_MSG(result.ok(), result.status().ToString());
    });
    ccdb_bench::RecordCell("cold_d" + std::to_string(diameter), cold);

    // Closed loop: Insert one segment, then bring Reach up to date both
    // ways. The recompute leg runs first so any memo warmth it leaves
    // behind can only help itself on the next lap, never the resume.
    double recompute_total = 0.0;
    double incremental_total = 0.0;
    std::uint64_t resumes_before = resumes->value();
    for (int i = 0; i < kInserts; ++i) {
      int next = diameter - 1 + i;
      Status inserted = db.Insert(SegmentText(next, next));
      CCDB_CHECK_MSG(inserted.ok(), inserted.ToString().c_str());

      auto edge = db.Relation("Edge");
      CCDB_CHECK_MSG(edge.ok(), edge.status().ToString());
      std::map<std::string, ConstraintRelation> edb;
      edb.emplace("Edge", *edge);
      recompute_total += ccdb_bench::TimeSeconds([&] {
        auto result = EvaluateDatalog(program, edb, options);
        CCDB_CHECK_MSG(result.ok(), result.status().ToString());
      });

      incremental_total += ccdb_bench::TimeSeconds([&] {
        auto result = db.Fixpoint(program, options);
        CCDB_CHECK_MSG(result.ok(), result.status().ToString());
      });
    }
    // Bench integrity: every lap of the loop must have taken the resume
    // path — otherwise the "incremental" column would be recompute noise.
    CCDB_CHECK_MSG(resumes->value() == resumes_before + kInserts,
                   "incremental path did not resume on every insert");

    ccdb_bench::RecordCell("recompute_d" + std::to_string(diameter),
                           recompute_total);
    ccdb_bench::RecordCell("incremental_d" + std::to_string(diameter),
                           incremental_total);
    ccdb_bench::Row("%-10d %12.2f %14.2f %14.2f %9.1fx", diameter, cold * 1e3,
                    recompute_total * 1e3, incremental_total * 1e3,
                    incremental_total > 0 ? recompute_total / incremental_total
                                          : 0.0);
  }

  ccdb_bench::Row("");
  ccdb_bench::Row(
      "expected shape: recompute/increment grows ~linearly with the "
      "diameter (cold pays diameter+1 rounds per insert, the resume pays "
      "2-3 delta rounds); at the largest diameter the closed loop is >5x "
      "cheaper incrementally");
  ccdb_bench::WriteRunRecord("datalog");
  return 0;
}
