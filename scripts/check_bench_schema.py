#!/usr/bin/env python3
"""Validates BENCH_<name>.json run records (schema_version 1).

The bench harness (bench/bench_util.h WriteRunRecord) emits one run
record per bench binary; this script is the schema contract both for the
committed trajectory artifacts at the repo root and for the fresh records
CI's bench-smoke leg produces. Exit 0 = every file valid.

Usage:
  check_bench_schema.py BENCH_pipeline.json [more.json ...]
  check_bench_schema.py --query-log ccdb_query_log.jsonl   # JSONL records

Schema (DESIGN.md §12):
  top level: schema_version == 1, bench (str), threads (int >= 1),
             qe_cache (0|1), plan (0|1), rows (list)
  row:       cell (str), threads (int), qe_cache (0|1), plan (0|1),
             ms (number or null), and either
               plain cell:   qe_cache_hit_rate (number-or-null),
                             formula_nodes, poly_nodes (ints)
               latency cell: samples (int >= 1), p50_ms, p90_ms, p99_ms
                             (numbers, p50 <= p90 <= p99)
"""

import json
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    return 1


def check_row(path, i, row):
    errors = 0
    where = f"rows[{i}]"
    for key, typ in (("cell", str), ("threads", int), ("qe_cache", int),
                     ("plan", int)):
        if not isinstance(row.get(key), typ):
            errors += fail(path, f"{where}: missing or mistyped '{key}'")
    if row.get("ms") is not None and not isinstance(row["ms"], (int, float)):
        errors += fail(path, f"{where}: 'ms' must be a number or null")
    if row.get("qe_cache") not in (0, 1) or row.get("plan") not in (0, 1):
        errors += fail(path, f"{where}: 'qe_cache'/'plan' must be 0 or 1")
    if "samples" in row:  # latency cell with percentile columns
        if not isinstance(row["samples"], int) or row["samples"] < 1:
            errors += fail(path, f"{where}: 'samples' must be an int >= 1")
        ps = []
        for key in ("p50_ms", "p90_ms", "p99_ms"):
            if not isinstance(row.get(key), (int, float)):
                errors += fail(path, f"{where}: missing percentile '{key}'")
            else:
                ps.append(row[key])
        if len(ps) == 3 and not (ps[0] <= ps[1] <= ps[2]):
            errors += fail(path, f"{where}: percentiles not monotone: {ps}")
    else:
        if "qe_cache_hit_rate" not in row:
            errors += fail(path, f"{where}: missing 'qe_cache_hit_rate'")
        for key in ("formula_nodes", "poly_nodes"):
            if not isinstance(row.get(key), int):
                errors += fail(path, f"{where}: missing or mistyped '{key}'")
    return errors


def check_bench(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")
    errors = 0
    if doc.get("schema_version") != 1:
        errors += fail(path, f"schema_version must be 1, "
                             f"got {doc.get('schema_version')!r}")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        errors += fail(path, "missing or empty 'bench'")
    if not isinstance(doc.get("threads"), int) or doc["threads"] < 1:
        errors += fail(path, "'threads' must be an int >= 1")
    if doc.get("qe_cache") not in (0, 1) or doc.get("plan") not in (0, 1):
        errors += fail(path, "'qe_cache'/'plan' must be 0 or 1")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        return errors + fail(path, "'rows' must be a non-empty list")
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errors += fail(path, f"rows[{i}] is not an object")
            continue
        errors += check_row(path, i, row)
    if errors == 0:
        print(f"{path}: ok ({len(rows)} row(s), bench={doc['bench']}, "
              f"threads={doc['threads']})")
    return errors


# Required keys of every query-log record (base/query_log.h, schema 3).
QUERY_LOG_KEYS = ("schema_version", "ts_us", "session_id", "config", "kind",
                  "text_hash", "text_len", "catalog_version", "ok",
                  "cache_hit", "elapsed_seconds", "read_set", "invalidation")


def check_read_set(path, lineno, rec):
    """Schema >= 2: 'read_set' is the sorted relation names the query reads;
    'invalidation' is the cache scope a mutation must hit to invalidate the
    answer ('relations:[...]' matching the read_set, or 'global' when the
    read-set is unknown, e.g. unparsable text)."""
    errors = 0
    rs = rec.get("read_set")
    if not (isinstance(rs, list)
            and all(isinstance(name, str) for name in rs)):
        return fail(path, f"line {lineno}: 'read_set' must be a list of str")
    if rs != sorted(rs):
        errors += fail(path, f"line {lineno}: 'read_set' must be sorted")
    inv = rec.get("invalidation")
    if inv == "global":
        return errors
    if not isinstance(inv, str) or not inv.startswith("relations:["):
        return errors + fail(
            path, f"line {lineno}: 'invalidation' must be 'global' or "
                  f"'relations:[...]', got {inv!r}")
    if inv != "relations:[" + ",".join(rs) + "]":
        errors += fail(path, f"line {lineno}: 'invalidation' scope does not "
                             f"match 'read_set'")
    return errors


def check_query_log(path):
    errors = 0
    records = 0
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    errors += fail(path, f"line {lineno}: invalid JSON: {e}")
                    continue
                records += 1
                for key in QUERY_LOG_KEYS:
                    if key not in rec:
                        errors += fail(path,
                                       f"line {lineno}: missing '{key}'")
                if rec.get("schema_version") != 3:
                    errors += fail(path, f"line {lineno}: schema_version "
                                         f"must be 3")
                errors += check_read_set(path, lineno, rec)
                sid = rec.get("session_id")
                if not isinstance(sid, int) or sid < 0:
                    errors += fail(path, f"line {lineno}: session_id must be "
                                         f"a non-negative int")
                cfg = rec.get("config", "")
                if not (isinstance(cfg, str) and len(cfg) == 16
                        and all(c in "0123456789abcdef" for c in cfg)):
                    errors += fail(path, f"line {lineno}: config must be "
                                         f"16 lowercase hex digits")
                h = rec.get("text_hash", "")
                if not (isinstance(h, str) and len(h) == 16
                        and all(c in "0123456789abcdef" for c in h)):
                    errors += fail(path, f"line {lineno}: text_hash must be "
                                         f"16 lowercase hex digits")
                if rec.get("kind") not in ("query", "governed",
                                           "explain_analyze"):
                    errors += fail(path, f"line {lineno}: unknown kind "
                                         f"{rec.get('kind')!r}")
    except OSError as e:
        return fail(path, f"unreadable: {e}")
    if records == 0:
        errors += fail(path, "no records")
    if errors == 0:
        print(f"{path}: ok ({records} record(s))")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors = 0
    query_log_mode = False
    for arg in argv[1:]:
        if arg == "--query-log":
            query_log_mode = True
            continue
        if query_log_mode:
            errors += check_query_log(arg)
        else:
            errors += check_bench(arg)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
