#!/usr/bin/env bash
# Configuration hygiene gate: every CCDB_* knob is resolved in exactly one
# place — EngineConfig::FromEnv (src/base/config.cc). Any other getenv in
# src/ reintroduces scattered env-sniffing (per-subsystem first-use reads
# that sessions can't override and tests can't scope), so this gate fails
# the build when one appears.
#
# Allowlist:
#   src/base/config.cc    — the one resolver (EngineConfig::FromEnv)
#   src/base/failpoint.cc — CCDB_FAILPOINTS, the fault-injection registry:
#                           deliberately independent of EngineConfig so a
#                           failpoint build can arm faults inside config
#                           resolution itself.
#
# Usage: scripts/check_no_getenv.sh [repo-root]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
allowlist=("src/base/config.cc" "src/base/failpoint.cc")

# Call syntax only ("getenv(" modulo whitespace): prose mentions of the
# symbol in doc comments are fine.
offenders="$(grep -rn --include='*.cc' --include='*.h' 'getenv[[:space:]]*(' "$root/src" |
  { while IFS= read -r line; do
      rel="${line#"$root"/}"
      file="${rel%%:*}"
      allowed=0
      for ok in "${allowlist[@]}"; do
        [ "$file" = "$ok" ] && allowed=1 && break
      done
      [ "$allowed" = 0 ] && printf '%s\n' "$rel"
    done; })"

if [ -n "$offenders" ]; then
  echo "check_no_getenv: getenv outside the allowlisted resolver:" >&2
  printf '%s\n' "$offenders" >&2
  echo "Route the knob through EngineConfig (src/base/config.h) instead." >&2
  exit 1
fi
echo "check_no_getenv: ok (getenv confined to: ${allowlist[*]})"
