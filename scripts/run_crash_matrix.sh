#!/usr/bin/env bash
# Runs the crash-recovery matrix (tests/durability_test.cc) against a built
# tree: every schedule x crash-site combo re-execs the test binary as a
# child, kills it at an injected fault, and checks recovery restores
# exactly a prefix of the acknowledged mutations.
#
# Usage: scripts/run_crash_matrix.sh [build-dir]     (default: build)
#
# Env:
#   CCDB_CRASH_SCHEDULES=N   widen the sweep to N schedules x 9 sites
#                            (default 24 -> 216 combos).
#
# On failure the harness keeps each failing combo's WAL/checkpoint
# directory under <build-dir>/tests/ccdb_durability_scratch/ for autopsy
# (CI uploads it as an artifact).
set -euo pipefail

BUILD_DIR="${1:-build}"
BIN="$BUILD_DIR/tests/durability_test"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not found or not executable (build the tests first)" >&2
  exit 2
fi

# The harness writes its scratch relative to the cwd, matching where ctest
# runs the binary.
cd "$(dirname "$BIN")"
exec ./durability_test --gtest_filter='CrashRecoveryMatrix.*'
