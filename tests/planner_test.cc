// Unit tests for the structure-aware query planner (plan/planner.h) and
// the shared fragment classifier (plan/fragment.h): atom/tuple
// classification into the FO(<=) ⊂ FO(<=,+) ⊂ FO(<=,+,*) hierarchy,
// miniscoping of ∃ past non-mentioning conjuncts, independent-component
// splitting, the min-occurrence elimination order, per-fragment engine
// dispatch, the CCDB_PLAN / QeOptions::plan toggles, the plan memo cache,
// and the database-level .plan / EXPLAIN surfaces.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/metrics.h"
#include "base/memo.h"
#include "constraint/atom.h"
#include "constraint/formula.h"
#include "engine/database.h"
#include "plan/fragment.h"
#include "plan/planner.h"
#include "qe/qe.h"

namespace ccdb {
namespace {

Polynomial X() { return Polynomial::Var(0); }
Polynomial Y() { return Polynomial::Var(1); }
Polynomial Z() { return Polynomial::Var(2); }

Atom A(const Polynomial& p, RelOp op = RelOp::kLe) { return Atom(p, op); }

// Restores the process-wide planner switch on scope exit so tests that
// flip it cannot leak state into the rest of the suite.
class PlannerToggleGuard {
 public:
  explicit PlannerToggleGuard(bool enabled) : before_(PlannerEnabled()) {
    SetPlannerEnabled(enabled);
  }
  ~PlannerToggleGuard() { SetPlannerEnabled(before_); }

 private:
  bool before_;
};

// ---------------------------------------------------------------------------
// Fragment classification (the shared linearity/degree helper).

TEST(FragmentTest, DenseOrderAtoms) {
  EXPECT_TRUE(IsDenseOrderAtom(A(X() - Y())));          // x <= y
  EXPECT_TRUE(IsDenseOrderAtom(A(Y() - X(), RelOp::kLt)));
  EXPECT_TRUE(IsDenseOrderAtom(A(X() - Polynomial(3))));  // x <= 3
  EXPECT_TRUE(IsDenseOrderAtom(A(-X() + Polynomial(7), RelOp::kEq)));
  EXPECT_TRUE(IsDenseOrderAtom(A(Polynomial(0))));        // constant atom
}

TEST(FragmentTest, LinearButNotDenseOrderAtoms) {
  // A constant offset on a two-variable difference encodes addition.
  EXPECT_FALSE(IsDenseOrderAtom(A(X() - Y() + Polynomial(1))));
  // Non-unit coefficients encode addition (x + x).
  EXPECT_FALSE(IsDenseOrderAtom(A(Polynomial(2) * X())));
  // Same-sign coefficients (x + y) are not an order comparison.
  EXPECT_FALSE(IsDenseOrderAtom(A(X() + Y())));
  // Three variables cannot be a single comparison.
  EXPECT_FALSE(IsDenseOrderAtom(A(X() + Y() - Z())));
  for (const Atom& atom :
       {A(X() - Y() + Polynomial(1)), A(Polynomial(2) * X()), A(X() + Y()),
        A(X() + Y() - Z())}) {
    EXPECT_TRUE(IsLinearAtom(atom));
    EXPECT_EQ(ClassifyAtom(atom), Fragment::kLinear);
  }
}

TEST(FragmentTest, PolynomialAtoms) {
  EXPECT_FALSE(IsLinearAtom(A(X() * Y())));
  EXPECT_EQ(ClassifyAtom(A(X() * X() - Y())), Fragment::kPolynomial);
  EXPECT_EQ(ClassifyAtom(A(X().Pow(3))), Fragment::kPolynomial);
}

TEST(FragmentTest, TupleAndSystemWidening) {
  EXPECT_EQ(ClassifyTuple(GeneralizedTuple{}), Fragment::kDenseOrder);
  EXPECT_EQ(ClassifyTuples({}), Fragment::kDenseOrder);
  GeneralizedTuple dense({A(X() - Y()), A(X() - Polynomial(1))});
  GeneralizedTuple linear({A(X() - Y()), A(Polynomial(2) * X() + Y())});
  GeneralizedTuple poly({A(X() - Y()), A(X() * X())});
  EXPECT_EQ(ClassifyTuple(dense), Fragment::kDenseOrder);
  EXPECT_EQ(ClassifyTuple(linear), Fragment::kLinear);
  EXPECT_EQ(ClassifyTuple(poly), Fragment::kPolynomial);
  EXPECT_EQ(ClassifyTuples({dense, linear}), Fragment::kLinear);
  EXPECT_EQ(ClassifyTuples({dense, linear, poly}), Fragment::kPolynomial);
}

TEST(FragmentTest, NamesAndWidening) {
  EXPECT_STREQ(FragmentName(Fragment::kDenseOrder), "dense_order");
  EXPECT_STREQ(FragmentName(Fragment::kLinear), "linear");
  EXPECT_STREQ(FragmentName(Fragment::kPolynomial), "polynomial");
  EXPECT_STREQ(FragmentEngine(Fragment::kDenseOrder), "dense_order");
  EXPECT_STREQ(FragmentEngine(Fragment::kLinear), "fourier_motzkin");
  EXPECT_STREQ(FragmentEngine(Fragment::kPolynomial), "cad");
  EXPECT_EQ(WidenFragment(Fragment::kDenseOrder, Fragment::kPolynomial),
            Fragment::kPolynomial);
  EXPECT_EQ(WidenFragment(Fragment::kLinear, Fragment::kDenseOrder),
            Fragment::kLinear);
}

// ---------------------------------------------------------------------------
// Plan construction: miniscoping, component splitting, elimination order,
// dispatch, fallback.

TEST(PlanQueryTest, QuantifierFreeInputIsALeaf) {
  QueryPlan plan = PlanQuery(Formula::Compare(X(), RelOp::kLe, Polynomial(1)),
                             1, QeOptions{});
  ASSERT_NE(plan.root, nullptr);
  EXPECT_EQ(plan.root->kind, PlanNode::Kind::kLeaf);
  EXPECT_EQ(plan.blocks, 0u);
  EXPECT_EQ(plan.Summary(), "quantifier_free");
}

TEST(PlanQueryTest, MiniscopingPushesNonMentioningConjunctsIntoALeaf) {
  // exists y (x <= 3 and y <= x): the x <= 3 conjunct does not mention y,
  // so it must be pushed out of the quantifier scope (∃y(A ∧ B) ≡ A ∧ ∃yB
  // when y is not free in A).
  Formula query = Formula::Exists(
      1, Formula::And(Formula::Compare(X(), RelOp::kLe, Polynomial(3)),
                      Formula::Compare(Y(), RelOp::kLe, X())));
  QueryPlan plan = PlanQuery(query, 1, QeOptions{});
  EXPECT_EQ(plan.miniscope_pushes, 1u);
  EXPECT_EQ(plan.blocks, 1u);
  EXPECT_FALSE(plan.fallback);
  ASSERT_EQ(plan.root->kind, PlanNode::Kind::kUnion);
  ASSERT_EQ(plan.root->children.size(), 1u);
  const PlanNode& disjunct = *plan.root->children[0];
  ASSERT_EQ(disjunct.kind, PlanNode::Kind::kProduct);
  ASSERT_EQ(disjunct.children.size(), 2u);
  EXPECT_EQ(disjunct.children[0]->kind, PlanNode::Kind::kLeaf);
  EXPECT_EQ(disjunct.children[1]->kind, PlanNode::Kind::kBlock);
  // The block only eliminates y over the atoms that mention it.
  EXPECT_EQ(disjunct.children[1]->vars, std::vector<int>({1}));
  EXPECT_EQ(disjunct.children[1]->tuples.size(), 1u);
  EXPECT_EQ(disjunct.children[1]->tuples[0].atoms.size(), 1u);
}

TEST(PlanQueryTest, IndependentVariableComponentsSplitIntoSeparateBlocks) {
  // exists y exists z (y <= x and z <= x): y and z never share an atom, so
  // the block splits into two independent single-variable eliminations
  // (∃y∃z(C1 ∧ C2) ≡ ∃yC1 ∧ ∃zC2 for disjoint supports).
  Formula query = Formula::Exists(
      1, Formula::Exists(
             2, Formula::And(Formula::Compare(Y(), RelOp::kLe, X()),
                             Formula::Compare(Z(), RelOp::kLe, X()))));
  QueryPlan plan = PlanQuery(query, 1, QeOptions{});
  EXPECT_EQ(plan.component_splits, 1u);
  EXPECT_EQ(plan.blocks, 2u);
  EXPECT_EQ(plan.miniscope_pushes, 0u);
  ASSERT_EQ(plan.root->kind, PlanNode::Kind::kUnion);
  ASSERT_EQ(plan.root->children.size(), 1u);
  const PlanNode& disjunct = *plan.root->children[0];
  ASSERT_EQ(disjunct.kind, PlanNode::Kind::kProduct);
  ASSERT_EQ(disjunct.children.size(), 2u);
  for (const auto& child : disjunct.children) {
    EXPECT_EQ(child->kind, PlanNode::Kind::kBlock);
    EXPECT_EQ(child->vars.size(), 1u);
  }
}

TEST(PlanQueryTest, MinOccurrenceVariableGoesInnermost) {
  // exists y exists z (y <= z and z <= x and 0 <= z): one connected
  // component; z occurs in three atoms, y in one. The executor eliminates
  // innermost-first, so the least-constrained variable (y) must be last in
  // the outermost-first `vars` order.
  Formula query = Formula::Exists(
      1, Formula::Exists(
             2, Formula::And({Formula::Compare(Y(), RelOp::kLe, Z()),
                              Formula::Compare(Z(), RelOp::kLe, X()),
                              Formula::Compare(Polynomial(0), RelOp::kLe,
                                               Z())})));
  QueryPlan plan = PlanQuery(query, 1, QeOptions{});
  EXPECT_EQ(plan.blocks, 1u);
  EXPECT_EQ(plan.component_splits, 0u);
  ASSERT_EQ(plan.root->kind, PlanNode::Kind::kUnion);
  const PlanNode* block = plan.root->children[0].get();
  ASSERT_EQ(block->kind, PlanNode::Kind::kBlock);
  EXPECT_EQ(block->vars, std::vector<int>({2, 1}));  // z outermost, y inner
}

TEST(PlanQueryTest, DispatchClassifiesEachDisjunctIntoItsCheapestEngine) {
  // A three-way union mixing the hierarchy's levels plans to one block per
  // fragment: dense-order, Fourier-Motzkin, and CAD.
  Formula dense = Formula::And(Formula::Compare(X(), RelOp::kLe, Y()),
                               Formula::Compare(Y(), RelOp::kLe, Polynomial(3)));
  Formula linear =
      Formula::And(Formula::Compare(X() + Polynomial(2) * Y(), RelOp::kLe,
                                    Polynomial(4)),
                   Formula::Compare(Polynomial(-1), RelOp::kLe, Y()));
  Formula poly =
      Formula::And(Formula::Compare(X(), RelOp::kLt, Polynomial(5)),
                   Formula::Compare(X() * X() + Y() * Y(), RelOp::kLe,
                                    Polynomial(4)));
  Formula query = Formula::Exists(1, Formula::Or({dense, linear, poly}));
  QueryPlan plan = PlanQuery(query, 1, QeOptions{});
  EXPECT_EQ(plan.blocks, 3u);
  EXPECT_EQ(plan.dispatch[0], 1u);  // dense order
  EXPECT_EQ(plan.dispatch[1], 1u);  // Fourier-Motzkin
  EXPECT_EQ(plan.dispatch[2], 1u);  // CAD
  EXPECT_EQ(plan.Summary(),
            "union=3 blocks=3 [dense_order=1 fourier_motzkin=1 cad=1] "
            "miniscoped=1 split=0");
  // The tree rendering names the engines and the quantified variable.
  std::string tree = plan.ToString({"x", "y"});
  EXPECT_NE(tree.find("plan ("), std::string::npos);
  EXPECT_NE(tree.find("dense_order"), std::string::npos);
  EXPECT_NE(tree.find("fourier_motzkin"), std::string::npos);
  EXPECT_NE(tree.find("cad"), std::string::npos);
  EXPECT_NE(tree.find("exists y"), std::string::npos);
}

TEST(PlanQueryTest, DisabledLinearFastPathForcesCadDispatch) {
  QeOptions options;
  options.allow_linear_fast_path = false;
  Formula query = Formula::Exists(1, Formula::Compare(Y(), RelOp::kLe, X()));
  QueryPlan plan = PlanQuery(query, 1, options);
  EXPECT_EQ(plan.dispatch[0], 0u);
  EXPECT_EQ(plan.dispatch[2], 1u);
}

TEST(PlanQueryTest, UniversalPrefixFallsBackToMonolithic) {
  Formula query = Formula::Forall(
      1, Formula::Compare(Y() * Y() + X(), RelOp::kGe, Polynomial(0)));
  QueryPlan plan = PlanQuery(query, 1, QeOptions{});
  EXPECT_TRUE(plan.fallback);
  ASSERT_EQ(plan.root->kind, PlanNode::Kind::kMonolithic);
  EXPECT_EQ(plan.Summary().rfind("monolithic", 0), 0u);
}

TEST(PlanQueryTest, DisabledDisjunctSplitFallsBackOnMultiDisjunctInputs) {
  QeOptions options;
  options.allow_disjunct_split = false;
  Formula query = Formula::Exists(
      1, Formula::Or(Formula::Compare(Y(), RelOp::kLe, X()),
                     Formula::Compare(X(), RelOp::kLe, Y())));
  QueryPlan plan = PlanQuery(query, 1, options);
  EXPECT_TRUE(plan.fallback);
}

// ---------------------------------------------------------------------------
// Execution: toggles, byte identity, and the planner's cost advantage.

TEST(PlanExecTest, PerCallToggleOverridesTheProcessSwitch) {
  QeOptions on, off, follow;
  on.plan = PlanToggle::kOn;
  off.plan = PlanToggle::kOff;
  EXPECT_TRUE(PlannerResolved(on));
  EXPECT_FALSE(PlannerResolved(off));
  {
    PlannerToggleGuard guard(false);
    EXPECT_FALSE(PlannerResolved(follow));  // kAuto follows the switch
    EXPECT_TRUE(PlannerResolved(on));       // per-call force wins
  }
  {
    PlannerToggleGuard guard(true);
    EXPECT_TRUE(PlannerResolved(follow));
    EXPECT_FALSE(PlannerResolved(off));
  }
}

TEST(PlanExecTest, StatsCarryThePlanOnlyOnThePlannedPath) {
  Formula query = Formula::Exists(
      1, Formula::And(Formula::Compare(Y(), RelOp::kLe, X()),
                      Formula::Compare(Polynomial(0), RelOp::kLe, Y())));
  QeOptions options;
  options.plan = PlanToggle::kOn;
  QeStats planned_stats;
  auto planned = EliminateQuantifiers(query, 1, options, &planned_stats);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_FALSE(planned_stats.plan.empty());
  EXPECT_NE(planned_stats.ToString().find("plan={"), std::string::npos);

  options.plan = PlanToggle::kOff;
  QeStats monolithic_stats;
  auto monolithic = EliminateQuantifiers(query, 1, options, &monolithic_stats);
  ASSERT_TRUE(monolithic.ok()) << monolithic.status().ToString();
  EXPECT_TRUE(monolithic_stats.plan.empty());

  EXPECT_EQ(planned->ToString(), monolithic->ToString());
}

TEST(PlanExecTest, MixedFragmentQueryPlansFewerCadCellsThanMonolithic) {
  // The acceptance query: a union mixing all three fragments. The planner
  // must route only the genuinely polynomial disjunct through CAD, so its
  // cad_cells count is strictly below the monolithic run's — with byte-
  // identical answers.
  Formula dense = Formula::And(Formula::Compare(X(), RelOp::kLe, Y()),
                               Formula::Compare(Y(), RelOp::kLe, Polynomial(3)));
  Formula linear =
      Formula::And(Formula::Compare(X() + Polynomial(2) * Y(), RelOp::kLe,
                                    Polynomial(4)),
                   Formula::Compare(Polynomial(-1), RelOp::kLe, Y()));
  Formula poly =
      Formula::And(Formula::Compare(X(), RelOp::kLt, Polynomial(5)),
                   Formula::Compare(X() * X() + Y() * Y(), RelOp::kLe,
                                    Polynomial(4)));
  Formula query = Formula::Exists(1, Formula::Or({dense, linear, poly}));

  QeOptions options;
  options.plan = PlanToggle::kOff;
  QeStats monolithic_stats;
  auto monolithic = EliminateQuantifiers(query, 1, options, &monolithic_stats);
  ASSERT_TRUE(monolithic.ok()) << monolithic.status().ToString();

  options.plan = PlanToggle::kOn;
  QeStats planned_stats;
  auto planned = EliminateQuantifiers(query, 1, options, &planned_stats);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();

  EXPECT_EQ(planned->ToString(), monolithic->ToString());
  EXPECT_LT(planned_stats.cad_cells, monolithic_stats.cad_cells);
}

TEST(PlanExecTest, ExecutionFoldsPlanCountersIntoTheMetricsRegistry) {
  Counter* executions =
      MetricsRegistry::Global().GetCounter("qe.plan.executions");
  Counter* blocks = MetricsRegistry::Global().GetCounter("qe.plan.blocks");
  const std::uint64_t executions_before = executions->value();
  const std::uint64_t blocks_before = blocks->value();
  Formula query = Formula::Exists(
      1, Formula::Or(Formula::Compare(Y(), RelOp::kLe, X()),
                     Formula::Compare(X(), RelOp::kLe, Y())));
  QeOptions options;
  options.plan = PlanToggle::kOn;
  auto result = EliminateQuantifiers(query, 1, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(executions->value(), executions_before);
  EXPECT_GT(blocks->value(), blocks_before);
}

TEST(PlanCacheTest, RepeatedPlanningHitsTheMemo) {
  if (!MemoCachesEnabled()) GTEST_SKIP() << "memo caches disabled";
  // A formula unlikely to be planned elsewhere in the suite: distinctive
  // constants keep the first build a miss, the second a hit.
  Formula query = Formula::Exists(
      1, Formula::And(Formula::Compare(Y(), RelOp::kLe,
                                       X() + Polynomial(7919)),
                      Formula::Compare(Polynomial(6311), RelOp::kLe, Y())));
  Counter* hits = MetricsRegistry::Global().GetCounter("plan_cache_hits");
  const std::uint64_t hits_before = hits->value();
  QueryPlan first = GetOrBuildPlan(query, 1, QeOptions{});
  QueryPlan second = GetOrBuildPlan(query, 1, QeOptions{});
  EXPECT_GT(hits->value(), hits_before);
  EXPECT_EQ(first.Summary(), second.Summary());
  EXPECT_EQ(first.ToString(), second.ToString());
}

// ---------------------------------------------------------------------------
// Database surfaces: .plan and EXPLAIN.

TEST(DatabasePlanTest, PlanRendersTheTreeWithoutExecuting) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x, y) := x <= y and y <= 3").ok());
  auto plan = db.Plan("exists y (S(x, y) and 0 <= x)");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->rfind("plan (", 0), 0u);
  EXPECT_NE(plan->find("exists"), std::string::npos);
  EXPECT_NE(plan->find("x"), std::string::npos);
}

TEST(DatabasePlanTest, AggregateQueriesAreNotPlannable) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());
  auto plan = db.Plan("SURFACE[x, y](S(x, y) and y <= 9)(z)");
  EXPECT_FALSE(plan.ok());
}

TEST(DatabasePlanTest, ExplainReportsTheCachedPlanOnAWholeQueryCacheHit) {
  if (!MemoCachesEnabled()) GTEST_SKIP() << "memo caches disabled";
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("T(x, y) := x <= y and y <= 5").ok());
  const std::string query = "exists y (T(x, y) and 1 <= x)";
  auto first = db.Explain(query);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->from_cache);
  auto second = db.Explain(query);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->from_cache);
  // The cached result still carries the original evaluation's plan, and
  // the rendering marks both the hit and the plan's provenance.
  EXPECT_EQ(second->result.stats.plan, first->result.stats.plan);
  if (!second->result.stats.plan.empty()) {
    EXPECT_NE(second->ToString().find("PLAN"), std::string::npos);
    EXPECT_NE(second->ToString().find("(cached)"), std::string::npos);
  }
  EXPECT_NE(second->ToString().find("whole-query cache hit"),
            std::string::npos);
}

}  // namespace
}  // namespace ccdb
